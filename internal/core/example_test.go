package core_test

import (
	"fmt"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// ExampleSolveLaplacian demonstrates Theorem 1.1 on a small cycle: the
// effective resistance between opposite vertices of C4 is 1 ohm (two
// 2-ohm paths in parallel).
func ExampleSolveLaplacian() {
	g, _ := graph.Cycle(4)
	b := linalg.NewVec(4)
	b[0], b[2] = 1, -1
	res, _ := core.SolveLaplacian(g, b, 1e-10)
	fmt.Printf("R_eff = %.4f\n", res.X[0]-res.X[2])
	// Output: R_eff = 1.0000
}

// ExampleMaxFlow demonstrates Theorem 1.2 on a two-path network.
func ExampleMaxFlow() {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 2, 0)
	dg.MustAddArc(1, 3, 2, 0)
	dg.MustAddArc(0, 2, 3, 0)
	dg.MustAddArc(2, 3, 1, 0)
	res, _ := core.MaxFlow(dg, 0, 3)
	fmt.Println("max flow:", res.Value)
	// Output: max flow: 3
}

// ExampleMinCostFlow demonstrates Theorem 1.3: one unit routed over the
// cheaper of two unit-capacity paths.
func ExampleMinCostFlow() {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 9)
	dg.MustAddArc(1, 3, 1, 9)
	dg.MustAddArc(0, 2, 1, 2)
	dg.MustAddArc(2, 3, 1, 2)
	res, _ := core.MinCostFlow(dg, []int64{1, 0, 0, -1})
	fmt.Println("min cost:", res.Cost)
	// Output: min cost: 4
}
