// Package core is the public facade of the library: one entry point per
// headline result of "The Laplacian Paradigm in Deterministic Congested
// Clique" (Forster & de Vos, PODC 2023), each returning both the answer and
// a round report.
//
//   - SolveLaplacianWith — Theorem 1.1: n^{o(1)} log(U/eps)-round solver
//   - MaxFlowWith        — Theorem 1.2: m^{3/7+o(1)} U^{1/7}-round max flow
//   - MinCostFlowWith    — Theorem 1.3: Õ(m^{3/7}(n^0.158 + polylog W)) rounds
//   - EulerianOrientWith — Theorem 1.4: O(log n log* n) rounds
//   - SparsifyWith       — Theorem 3.3: deterministic spectral sparsifier
//   - RoundFlowWith      — Lemma 4.2: Cohen rounding in O(log n log* n log(1/Δ))
//
// Each algorithm has exactly one canonical entry point, taking RunOptions
// for the cross-cutting knobs (tracing, faults, budgets, metrics, workers);
// the zero options value is a plain run. On top of them, Do(Request) is the
// request-oriented form the serving daemon and the CLIs use: one Op tag, one
// graph, one Args struct — the in-process mirror of the daemon's JSON
// surface.
//
// Lower-level control (options, ablations, oracles, baselines) lives in the
// internal packages; this facade wires them together with a shared ledger.
package core

import (
	"lapcc/internal/cc"
	"lapcc/internal/euler"
	"lapcc/internal/flowround"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// RunOptions carries the cross-cutting robustness and observability knobs of
// the facade. The zero value is a plain run: no tracing, no faults, no
// budget.
type RunOptions struct {
	// Trace, if non-nil, receives hierarchical span and cost events.
	Trace *trace.Tracer
	// Faults, if non-nil, subjects every network primitive of the run to
	// the given deterministic fault plan, with delivery restored by the
	// reliable retransmission layer (see internal/cc). Answers are
	// bit-identical to a fault-free run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every network primitive of
	// the run through the given delivery backend — the in-process wire
	// codec (transport.Mem) or the multi-process TCP clique (transport/tcp)
	// — instead of the default in-process delivery. Answers, charged
	// ledgers, and fault statistics are bit-identical across backends; the
	// caller owns the transport's lifecycle (Close).
	Transport cc.Transport
	// Budget, if non-nil, bounds the run's rounds and/or wall clock.
	// Exhaustion aborts at the next phase boundary with an error unwrapping
	// to rounds.ErrBudgetExceeded that carries the partial round stats.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live counters and histograms from every
	// stage of the run, plus a mirror of the ledger's cost stream — the
	// registry the debug HTTP endpoint exposes (see internal/metrics). A
	// nil registry records nothing and costs nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count of the numerical core for the run —
	// Laplacian matvecs, CG/Chebyshev vector kernels, per-part sparsifier
	// builds (0 = GOMAXPROCS, 1 = sequential, restoring the exact
	// single-threaded code path). Parallelism is internal computation and
	// free in the congested-clique model; answers and round accounting are
	// bit-identical at any worker count.
	Workers int
}

// RoundReport summarizes where an algorithm's congested-clique rounds went.
type RoundReport struct {
	// Total is the total number of rounds.
	Total int64
	// Measured is the part executed by the message-passing simulator.
	Measured int64
	// Charged is the part charged per cited theorems (see DESIGN.md).
	Charged int64
	// Breakdown is the human-readable ledger dump.
	Breakdown string
}

func report(led *rounds.Ledger) RoundReport {
	return RoundReport{
		Total:     led.Total(),
		Measured:  led.TotalOf(rounds.Measured),
		Charged:   led.TotalOf(rounds.Charged),
		Breakdown: led.Report(),
	}
}

// LaplacianResult is the output of SolveLaplacianWith.
type LaplacianResult struct {
	// X approximates L_G^+ b with ||X - L^+b||_L <= eps ||L^+b||_L.
	X linalg.Vec
	// Iterations is the Chebyshev iteration count.
	Iterations int
	// SparsifierEdges is the size of the globally-known sparsifier.
	SparsifierEdges int
	Rounds          RoundReport
}

// SolveLaplacianWith solves L_G x = b to relative precision eps in the L_G
// norm (Theorem 1.1) under the given run options. g must be connected with
// positive edge weights.
func SolveLaplacianWith(g *graph.Graph, b linalg.Vec, eps float64, ro RunOptions) (*LaplacianResult, error) {
	led := rounds.New()
	s, err := lapsolver.NewSolver(g, lapsolver.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
		Workers: ro.Workers,
	})
	if err != nil {
		return nil, err
	}
	x, st, err := s.Solve(b, eps)
	if err != nil {
		return nil, err
	}
	return &LaplacianResult{
		X:               x,
		Iterations:      st.Iterations,
		SparsifierEdges: s.Sparsifier().M(),
		Rounds:          report(led),
	}, nil
}

// SessionOptions configures NewLaplacianSession.
type SessionOptions struct {
	// Run carries the cross-cutting knobs shared with the one-shot entry
	// points; the session binds them once at construction.
	Run RunOptions
	// Warm seeds every solve from the previous accepted potentials and
	// kappa (lapsolver.Options.WarmStart). Convergence is still judged by
	// the usual residual certificate and charged rounds match a fresh
	// solver exactly, but the returned potentials may differ from a cold
	// solve in low-order bits — both within the eps certificate. Callers
	// that need pooled responses bit-identical to fresh runs (the serving
	// layer's differential contract) leave it off.
	Warm bool
	// ExactReuse restricts Reweight's sparsifier-chain policy to tier-1
	// reuse (unchanged weight-class partition, where reuse is bit-identical
	// to a rebuild) and rebuilds otherwise, instead of the default
	// α-drift-certified reuse tiers. Same differential motivation as Warm.
	ExactReuse bool
}

// LaplacianSession is SolveLaplacianWith in build-once/solve-many form: the
// Theorem 1.1 preprocessing (sparsifier chain, solver scratch) runs once at
// construction, after which any number of right-hand sides — and, via
// Reweight, any number of weight settings on the fixed topology — are
// solved against the same structure.
type LaplacianSession struct {
	solver *lapsolver.Solver
	led    *rounds.Ledger
}

// NewLaplacianSession preprocesses g for repeated Laplacian solves under the
// given session options. g must be connected with positive edge weights; the
// session takes a private copy.
func NewLaplacianSession(g *graph.Graph, so SessionOptions) (*LaplacianSession, error) {
	ro := so.Run
	led := rounds.New()
	s, err := lapsolver.NewSolver(g, lapsolver.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
		Workers: ro.Workers, WarmStart: so.Warm,
		Chain: sparsify.ChainOptions{ExactOnly: so.ExactReuse},
	})
	if err != nil {
		return nil, err
	}
	return &LaplacianSession{solver: s, led: led}, nil
}

// Solve solves L_G x = b to relative precision eps in the L_G norm. The
// result's Rounds carries only this call's delta (its Breakdown is empty);
// the session's cumulative ledger, including the one-time preprocessing
// cost, is available from Rounds.
func (s *LaplacianSession) Solve(b linalg.Vec, eps float64) (*LaplacianResult, error) {
	snap := rounds.Snap(s.led)
	x, st, err := s.solver.Solve(b, eps)
	if err != nil {
		return nil, err
	}
	d := snap.Stats()
	return &LaplacianResult{
		X:               x,
		Iterations:      st.Iterations,
		SparsifierEdges: s.solver.Sparsifier().M(),
		Rounds: RoundReport{
			Total:    d.TotalRounds(),
			Measured: d.MeasuredRounds,
			Charged:  d.ChargedRounds,
		},
	}, nil
}

// Reweight swaps the per-edge weights (indexed by edge id) on the fixed
// topology. The sparsifier chain is reused outright while the weights stay
// within its reuse policy (α-drift budget by default, exact tier-1 only
// under SessionOptions.ExactReuse) and is rebuilt — with the rebuild's
// rounds charged to the session ledger — only when they leave it.
func (s *LaplacianSession) Reweight(w []float64) error {
	return s.solver.Reweight(w)
}

// Rounds returns the session's cumulative round report: preprocessing plus
// every Solve and Reweight so far.
func (s *LaplacianSession) Rounds() RoundReport { return report(s.led) }

// SetBudget applies a per-call budget to subsequent Solve and Reweight
// calls, metered from the session's current round totals. A nil budget
// removes the limit. The serving layer calls this around each request so
// pooled sessions honor per-request admission budgets without rebinding at
// construction.
func (s *LaplacianSession) SetBudget(b *rounds.Budget) { s.solver.SetBudget(b) }

// ChainStats exposes the sparsifier chain's reuse counters: how many
// Reweight calls were absorbed by exact (tier-1) reuse versus forcing a
// rebuild. The serving layer's tests pin pool reuse with it.
func (s *LaplacianSession) ChainStats() sparsify.ChainStats { return s.solver.ChainStats() }

// SparsifyResult is the output of SparsifyWith.
type SparsifyResult struct {
	// H is the sparsifier, known to every clique node.
	H *graph.Graph
	// Alpha is the measured approximation factor.
	Alpha  float64
	Rounds RoundReport
}

// SparsifyWith computes the deterministic spectral sparsifier of Theorem 3.3
// under the given run options and measures its approximation factor.
func SparsifyWith(g *graph.Graph, ro RunOptions) (*SparsifyResult, error) {
	led := rounds.New()
	res, err := sparsify.Sparsify(g, sparsify.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
		Workers: ro.Workers,
	})
	if err != nil {
		return nil, err
	}
	alpha := 0.0
	if g.IsConnected() {
		alpha, err = sparsify.MeasureAlpha(g, res.H, 150)
		if err != nil {
			return nil, err
		}
	}
	return &SparsifyResult{H: res.H, Alpha: alpha, Rounds: report(led)}, nil
}

// EulerianResult is the output of EulerianOrientWith.
type EulerianResult struct {
	// Orient has one entry per edge: true = oriented U -> V.
	Orient []bool
	// Iterations is the number of cycle-contraction iterations (O(log n)).
	Iterations int
	Rounds     RoundReport
}

// EulerianOrientWith orients every edge of an even-degree graph so each
// vertex has equal in- and out-degree (Theorem 1.4) under the given run
// options.
func EulerianOrientWith(g *graph.Graph, ro RunOptions) (*EulerianResult, error) {
	led := rounds.New()
	orient, st, err := euler.Orient(g, nil, euler.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &EulerianResult{Orient: orient, Iterations: st.Iterations, Rounds: report(led)}, nil
}

// RoundFlowRequest is the argument struct of RoundFlowWith, mirroring the
// daemon's JSON request shape (see internal/serve) instead of the historical
// six-positional-argument signature.
type RoundFlowRequest struct {
	// Graph is the unit-structure digraph carrying the flow's arcs.
	Graph *graph.DiGraph
	// Flow is the fractional flow to round, per arc; values must be
	// multiples of Delta.
	Flow []float64
	// Source and Sink are the flow poles.
	Source, Sink int
	// Delta is the fractional granularity of Flow.
	Delta float64
	// UseCosts makes the rounding cost-aware: the cost does not increase
	// when the input value is integral.
	UseCosts bool
}

// RoundFlowResult is the output of RoundFlowWith.
type RoundFlowResult struct {
	// Flow is the integral flow, per arc.
	Flow   []int64
	Rounds RoundReport
}

// RoundFlowWith rounds a fractional s-t flow (values multiples of
// req.Delta) to an integral flow without decreasing its value (Lemma 4.2)
// under the given run options.
func RoundFlowWith(req RoundFlowRequest, ro RunOptions) (*RoundFlowResult, error) {
	led := rounds.New()
	out, err := flowround.RoundWith(req.Graph, req.Flow, req.Source, req.Sink, req.Delta, req.UseCosts, flowround.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
	})
	if err != nil {
		return nil, err
	}
	return &RoundFlowResult{Flow: out, Rounds: report(led)}, nil
}

// MaxFlowResult is the output of MaxFlowWith.
type MaxFlowResult struct {
	// Value is the exact maximum flow value.
	Value int64
	// Flow is the per-arc optimal integral flow.
	Flow []int64
	// IPMIterations and FinalAugmentations expose the Theorem 1.2 shape.
	IPMIterations      int
	FinalAugmentations int
	Rounds             RoundReport
}

// MaxFlowWith computes the exact maximum s-t flow (Theorem 1.2) under the
// given run options.
func MaxFlowWith(dg *graph.DiGraph, s, t int, ro RunOptions) (*MaxFlowResult, error) {
	led := rounds.New()
	res, err := maxflow.MaxFlow(dg, s, t, maxflow.Options{
		Ledger: led, FastSolve: true,
		Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
		Workers: ro.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &MaxFlowResult{
		Value:              res.Value,
		Flow:               res.Flow,
		IPMIterations:      res.IPMIterations,
		FinalAugmentations: res.FinalAugmentations,
		Rounds:             report(led),
	}, nil
}

// MinCostFlowResult is the output of MinCostFlowWith.
type MinCostFlowResult struct {
	// Flow is the optimal per-arc 0/1 flow.
	Flow []int64
	// Cost is the exact minimum cost.
	Cost int64
	// ProgressIterations and RepairAugmentations expose the Theorem 1.3
	// shape.
	ProgressIterations  int
	RepairAugmentations int
	Rounds              RoundReport
}

// MinCostFlowWith routes the demand vector sigma on a unit-capacity digraph
// at exactly minimum cost (Theorem 1.3) under the given run options.
func MinCostFlowWith(dg *graph.DiGraph, sigma []int64, ro RunOptions) (*MinCostFlowResult, error) {
	led := rounds.New()
	res, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{
		Ledger: led, Trace: ro.Trace, Faults: ro.Faults, Transport: ro.Transport, Budget: ro.Budget, Metrics: ro.Metrics,
		Workers: ro.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &MinCostFlowResult{
		Flow:                res.Flow,
		Cost:                res.Cost,
		ProgressIterations:  res.ProgressIterations,
		RepairAugmentations: res.RepairAugmentations,
		Rounds:              report(led),
	}, nil
}
