package cc

import "fmt"

// This file defines the engine's delivery boundary. Everything between
// "workers fill outboxes" and "inboxes are populated for round r+1" goes
// through a Transport; the default localTransport is the historical
// in-process counting-sort merge, bit-identical to the pre-interface engine
// and allocation-free in steady state. External transports (the wire-codec
// round-trip in internal/transport and the multi-process TCP backend in
// internal/transport/tcp) implement the same contract, so a program — and
// the round ledger — cannot tell which medium carried its messages.
//
// Fault injection deliberately sits above the boundary: the engine applies
// its FaultPlan to whatever a transport delivered (see injectFaults in
// engine.go), so drop/corrupt/delay/stall/crash semantics are uniform across
// backends and a faulty TCP run replays the in-process run bit for bit.

// OutMsg is one buffered send in a worker outbox: the payload lives in the
// outbox's arena at [Off, Off+Width).
type OutMsg struct {
	From, To   int32
	Off, Width int32
}

// Outbox is one sender block's round output: the send records plus the arena
// holding their payload words. Within an Outbox, Msgs appear in send order;
// across the slice passed to Deliver, blocks cover ascending disjoint source
// ranges (the engine's workers own contiguous node blocks).
type Outbox struct {
	Msgs  []OutMsg
	Arena []int64
}

// Data returns the payload of m, aliasing the outbox arena.
func (ob Outbox) Data(m OutMsg) []int64 {
	return ob.Arena[m.Off : m.Off+m.Width : m.Off+m.Width]
}

// DeliveryStats reports what one Deliver call moved, including any wire-level
// overhead the backend paid. The logical message count is identical across
// backends; the frame counters are zero for the in-process merge.
type DeliveryStats struct {
	// Messages is the number of logical messages delivered.
	Messages int64
	// Frames and FrameBytes count the encoded wire frames carrying them
	// (data frames only; zero when no codec is involved).
	Frames     int64
	FrameBytes int64
	// Retransmits counts data frames re-sent by the backend's reliability
	// loop; Acks counts acknowledgement frames.
	Retransmits int64
	// Acks counts acknowledgement frames sent by receivers.
	Acks int64
}

func (s *DeliveryStats) add(o DeliveryStats) {
	s.Messages += o.Messages
	s.Frames += o.Frames
	s.FrameBytes += o.FrameBytes
	s.Retransmits += o.Retransmits
	s.Acks += o.Acks
}

// Transport moves one round's outboxes to the next round's inboxes.
//
// The delivery contract, identical for every backend:
//
//   - inboxes[d] holds destination d's messages ordered by ascending From,
//     and messages sharing a From keep their send order (the model sends at
//     most one message per ordered pair per engine round, but routed packet
//     sets may carry several);
//   - the returned slices are valid until the next Deliver call on the same
//     transport (backends may recycle buffers; the in-process backend
//     aliases sender arenas that are rewritten one round later);
//   - Deliver is a synchronous barrier: when it returns, every message of
//     round `round` is accounted for.
//
// n is the logical node count of this delivery (destinations are 0..n-1); a
// transport serves successive calls with differing n.
type Transport interface {
	Deliver(round, n int, out []Outbox) ([][]Message, DeliveryStats, error)
	// Close releases the backend's resources (worker processes, sockets).
	// The in-process backends are no-ops.
	Close() error
}

// localTransport is the default in-process backend: the engine's historical
// counting-sort merge over recycled buffers. It is bound to one engine (its
// scratch is the engine's) and delivers with zero allocations in steady
// state.
type localTransport struct {
	e *Engine
}

func (t *localTransport) Deliver(_ int, n int, out []Outbox) ([][]Message, DeliveryStats, error) {
	e := t.e
	if n != e.n {
		return nil, DeliveryStats{}, fmt.Errorf("cc: local transport bound to n=%d, delivery wants n=%d", e.n, n)
	}
	dc := e.dstCount
	for i := range dc {
		dc[i] = 0
	}
	total := 0
	for _, ob := range out {
		total += len(ob.Msgs)
		for i := range ob.Msgs {
			dc[ob.Msgs[i].To]++
		}
	}
	if cap(e.inboxFlat) < total {
		e.inboxFlat = make([]Message, total)
	}
	flat := e.inboxFlat[:total]
	off := e.dstOff
	sum := 0
	for d := 0; d < n; d++ {
		off[d] = sum
		sum += dc[d]
	}
	off[n] = sum
	for _, ob := range out {
		for _, m := range ob.Msgs {
			p := off[m.To]
			off[m.To] = p + 1
			flat[p] = Message{From: int(m.From), Data: ob.Arena[m.Off : m.Off+m.Width : m.Off+m.Width]}
		}
	}
	sum = 0
	for d := 0; d < n; d++ {
		e.inboxes[d] = flat[sum : sum+dc[d] : sum+dc[d]]
		sum += dc[d]
	}
	e.inboxFlat = flat
	return e.inboxes, DeliveryStats{Messages: int64(total)}, nil
}

func (t *localTransport) Close() error { return nil }

// SetTransport installs the delivery backend for subsequent Run calls; nil
// restores the default in-process merge. The engine does not own the
// transport: callers that install an external backend close it themselves.
// All backends deliver bit-identically (same inboxes, same order, same round
// and fault accounting); they differ only in which medium carries the bytes.
func (e *Engine) SetTransport(t Transport) {
	e.external = t
}

// Transport returns the installed external transport (nil when the engine is
// on the default in-process merge).
func (e *Engine) Transport() Transport { return e.external }
