package maxflow

import (
	"errors"
	"strings"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// TestMaxFlowBudgetExhaustion: a one-round budget must abort the IPM at an
// iteration boundary with the typed error — the progress loop never runs
// unmetered past an exhausted budget.
func TestMaxFlowBudgetExhaustion(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	led := rounds.New()
	_, err := MaxFlow(dg, 0, dg.N()-1, Options{
		FastSolve: true,
		Ledger:    led,
		Budget:    rounds.NewBudget(1, 0),
	})
	if !errors.Is(err, rounds.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *rounds.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if !strings.HasPrefix(be.Phase, "maxflow-iter-") {
		t.Fatalf("exhausted at %q, want an IPM iteration boundary", be.Phase)
	}
}

// TestMaxFlowBudgetAllowsCompletion: a generous budget must not perturb the
// flow at all.
func TestMaxFlowBudgetAllowsCompletion(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	s, tt := 0, dg.N()-1
	want, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	got, err := MaxFlow(dg, s, tt, Options{
		FastSolve: true,
		Ledger:    led,
		Budget:    rounds.NewBudget(100_000_000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Value != want.Value {
		t.Fatalf("budgeted value %d != unbudgeted %d", got.Value, want.Value)
	}
	for i := range want.Flow {
		if got.Flow[i] != want.Flow[i] {
			t.Fatalf("budgeted flow diverged at arc %d", i)
		}
	}
}
