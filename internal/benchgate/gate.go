package benchgate

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
)

// Suite describes one gated baseline: where its BENCH_*.json lives and how
// to re-measure it. Timing suites re-run `go test -bench`; the faults suite
// re-executes its workloads in-process (Measure is set instead of Bench).
type Suite struct {
	Name     string // "engine", "solver", "faults", "scaling"
	Baseline string // baseline file name, relative to the repo root
	// Bench/Packages re-run a `go test` benchmark suite (timing suites).
	Bench    string   // -bench regexp
	Packages []string // package patterns
	// Measure re-computes deterministic results in-process (round suites).
	Measure func() (map[string]Workload, error)
	// MeasureBench re-measures benchmark-shaped ns/op figures in-process
	// (the serve suite: an in-process daemon driven by the deterministic
	// loadgen workload).
	MeasureBench func() (map[string]Metrics, error)
	// Tol, if non-nil, overrides the gate-wide tolerance for this suite.
	// The serve suite uses it: end-to-end latencies need a wider ns ratio
	// than microbenchmarks.
	Tol *Tolerance
	// KeepProcs records the GOMAXPROCS suffix in normalised names instead of
	// stripping it, and restricts the diff to procs levels the fresh run
	// measured. Set for suites whose figures depend on the processor count.
	KeepProcs bool
	// Bootstrap makes a missing baseline file a first-run measurement (the
	// fresh results gate nothing and are written out to seed the baseline)
	// instead of an error.
	Bootstrap bool
}

// Suites is the gate's registry, one entry per checked-in BENCH_*.json.
// The Bench/Packages pairs are the same ones the Makefile's bench-engine
// and bench-solver targets run.
var Suites = []Suite{
	{
		Name:     "engine",
		Baseline: "BENCH_engine.json",
		Bench:    "BenchmarkEngineRun|BenchmarkRoute",
		Packages: []string{"./internal/cc/"},
	},
	{
		Name:     "solver",
		Baseline: "BENCH_solver.json",
		Bench:    "BenchmarkIPM|BenchmarkSolverSession",
		Packages: []string{"./internal/maxflow/", "./internal/lapsolver/"},
	},
	{
		Name:     "faults",
		Baseline: "BENCH_faults.json",
		Measure:  MeasureFaultWorkloads,
	},
	{
		Name:      "scaling",
		Baseline:  "BENCH_scaling.json",
		Bench:     "BenchmarkScaling",
		Packages:  []string{"./internal/linalg/"},
		KeepProcs: true,
		Bootstrap: true,
	},
	{
		Name:         "serve",
		Baseline:     "BENCH_serve.json",
		MeasureBench: MeasureServeWorkload,
		Tol:          &ServeTolerance,
		Bootstrap:    true,
	},
	{
		Name:         "net",
		Baseline:     "BENCH_net.json",
		MeasureBench: MeasureNetWorkload,
		Tol:          &NetTolerance,
		Bootstrap:    true,
	},
	{
		Name:      "chaos",
		Baseline:  "BENCH_chaos.json",
		Measure:   MeasureChaosWorkloads,
		Bootstrap: true,
	},
}

// SuiteByName returns the registered suite with the given name.
func SuiteByName(name string) (Suite, error) {
	for _, s := range Suites {
		if s.Name == name {
			return s, nil
		}
	}
	known := make([]string, 0, len(Suites))
	for _, s := range Suites {
		known = append(known, s.Name)
	}
	return Suite{}, fmt.Errorf("benchgate: unknown suite %q (known: %s)", name, strings.Join(known, ", "))
}

// Result is the outcome of gating one suite.
type Result struct {
	Suite       Suite
	Baseline    *File
	Fresh       *File // baseline metadata with fresh measurements
	Regressions []Regression
}

// Passed reports whether the suite stayed within tolerance.
func (r *Result) Passed() bool { return len(r.Regressions) == 0 }

// RunGoBench executes one `go test -bench` suite in dir and returns its raw
// output (also streamed to echo if non-nil, so the caller can show
// progress). benchtime is passed through to -benchtime.
func RunGoBench(dir, bench, benchtime string, packages []string, echo io.Writer) ([]byte, error) {
	args := []string{"test", "-run", "xxx", "-bench", bench, "-benchmem", "-benchtime", benchtime}
	args = append(args, packages...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var buf bytes.Buffer
	if echo != nil {
		cmd.Stdout = io.MultiWriter(&buf, echo)
		cmd.Stderr = echo
	} else {
		cmd.Stdout = &buf
		cmd.Stderr = &buf
	}
	if err := cmd.Run(); err != nil {
		if echo == nil {
			return nil, fmt.Errorf("go %s: %w\n%s", strings.Join(args, " "), err, buf.Bytes())
		}
		return nil, fmt.Errorf("go %s: %w", strings.Join(args, " "), err)
	}
	return buf.Bytes(), nil
}

// GateSuite loads the suite's baseline from dir, re-measures, and diffs.
// recorded stamps the fresh file's "recorded" field (the baseline's stamp
// is kept when empty). The fresh measurements are returned in Result.Fresh
// as a complete File ready to write to BENCH_<name>.new.json; the caller
// decides whether to persist it.
func GateSuite(s Suite, dir, benchtime, recorded string, tol Tolerance, echo io.Writer) (*Result, error) {
	base, err := Load(dir + "/" + s.Baseline)
	if err != nil {
		if s.Bootstrap && errors.Is(err, os.ErrNotExist) {
			// First run on this checkout: measure, gate nothing, and let the
			// caller write the fresh file to seed the baseline.
			base = &File{Description: fmt.Sprintf("bootstrap baseline for suite %s", s.Name)}
		} else {
			return nil, err
		}
	}
	fresh := *base // carry description/host/headline through to the .new file
	if recorded != "" {
		fresh.Recorded = recorded
	}

	if s.Tol != nil {
		tol = *s.Tol
	}
	res := &Result{Suite: s, Baseline: base, Fresh: &fresh}
	if s.MeasureBench != nil {
		got, err := s.MeasureBench()
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", s.Name, err)
		}
		fresh.Benchmarks = got
		res.Regressions = Diff(base.Benchmarks, got, tol)
		return res, nil
	}
	if s.Measure != nil {
		got, err := s.Measure()
		if err != nil {
			return nil, fmt.Errorf("suite %s: %w", s.Name, err)
		}
		fresh.Workloads = got
		res.Regressions = DiffWorkloads(base.Workloads, got)
		return res, nil
	}

	out, err := RunGoBench(dir, s.Bench, benchtime, s.Packages, echo)
	if err != nil {
		return nil, fmt.Errorf("suite %s: %w", s.Name, err)
	}
	got, err := ParseBenchOutputProcs(bytes.NewReader(out), s.KeepProcs)
	if err != nil {
		return nil, fmt.Errorf("suite %s: %w", s.Name, err)
	}
	fresh.Benchmarks = got
	fresh.Command = fmt.Sprintf("go test -run xxx -bench '%s' -benchmem -benchtime %s %s",
		s.Bench, benchtime, strings.Join(s.Packages, " "))
	gated := base.Benchmarks
	if s.KeepProcs {
		gated = FilterByProcs(gated, got)
	}
	res.Regressions = Diff(gated, got, tol)
	return res, nil
}
