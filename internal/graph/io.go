package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Plain-text graph formats used by the command-line tools:
//
//	edge list:  "u v [weight]"   one per line, weight defaults to 1
//	arc list:   "from to cap [cost]"
//
// Blank lines and lines starting with '#' are ignored. Vertex count is
// 1 + the largest index seen.

// ReadEdgeList parses an undirected weighted graph.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	type edge struct {
		u, v int
		w    float64
	}
	var edges []edge
	maxV := -1
	if err := scanLines(r, func(line int, fields []string) error {
		if len(fields) < 2 || len(fields) > 3 {
			return fmt.Errorf("line %d: need 'u v [w]', got %d fields", line, len(fields))
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		w := 1.0
		if len(fields) == 3 {
			if w, err = strconv.ParseFloat(fields[2], 64); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
		}
		edges = append(edges, edge{u, v, w})
		if u > maxV {
			maxV = u
		}
		if v > maxV {
			maxV = v
		}
		return nil
	}); err != nil {
		return nil, err
	}
	g := New(maxV + 1)
	for _, e := range edges {
		if _, err := g.AddEdge(e.u, e.v, e.w); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// WriteEdgeList writes g in the edge-list format.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# undirected graph: n=%d m=%d\n", g.N(), g.M())
	for _, e := range g.Edges() {
		fmt.Fprintf(bw, "%d %d %g\n", e.U, e.V, e.W)
	}
	return bw.Flush()
}

// ReadArcList parses a directed capacitated graph.
func ReadArcList(r io.Reader) (*DiGraph, error) {
	type arc struct {
		from, to  int
		cap, cost int64
	}
	var arcs []arc
	maxV := -1
	if err := scanLines(r, func(line int, fields []string) error {
		if len(fields) < 3 || len(fields) > 4 {
			return fmt.Errorf("line %d: need 'from to cap [cost]', got %d fields", line, len(fields))
		}
		from, err := strconv.Atoi(fields[0])
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		to, err := strconv.Atoi(fields[1])
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		capacity, err := strconv.ParseInt(fields[2], 10, 64)
		if err != nil {
			return fmt.Errorf("line %d: %v", line, err)
		}
		cost := int64(0)
		if len(fields) == 4 {
			if cost, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return fmt.Errorf("line %d: %v", line, err)
			}
		}
		arcs = append(arcs, arc{from, to, capacity, cost})
		if from > maxV {
			maxV = from
		}
		if to > maxV {
			maxV = to
		}
		return nil
	}); err != nil {
		return nil, err
	}
	dg := NewDi(maxV + 1)
	for _, a := range arcs {
		if _, err := dg.AddArc(a.from, a.to, a.cap, a.cost); err != nil {
			return nil, err
		}
	}
	return dg, nil
}

// WriteArcList writes dg in the arc-list format.
func WriteArcList(w io.Writer, dg *DiGraph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# directed graph: n=%d m=%d\n", dg.N(), dg.M())
	for _, a := range dg.Arcs() {
		fmt.Fprintf(bw, "%d %d %d %d\n", a.From, a.To, a.Cap, a.Cost)
	}
	return bw.Flush()
}

func scanLines(r io.Reader, fn func(line int, fields []string) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		if err := fn(line, strings.Fields(text)); err != nil {
			return err
		}
	}
	return sc.Err()
}
