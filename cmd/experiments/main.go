// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1-E14), reproducing the quantitative claims of the paper's theorems as
// scaling measurements plus the simulator's own instrumentation profile
// (E10). See DESIGN.md section 5 for the experiment index.
//
//	go run ./cmd/experiments            # all experiments
//	go run ./cmd/experiments -run E3,E5 # a subset
//	go run ./cmd/experiments -quick     # smaller sweeps
//	go run ./cmd/experiments -trace out.json  # traced stack profile only
//	go run ./cmd/experiments -faults seed=1,drop=0.01 -run E2
//	go run ./cmd/experiments -debug-addr localhost:6060 -run E5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/experiments"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/trace"
)

func main() {
	runFlag := flag.String("run", "all", "comma-separated experiment ids (E1..E14) or 'all'")
	quick := flag.Bool("quick", false, "smaller parameter sweeps")
	trOut := flag.String("trace", "", "run one traced solve per algorithm and write a Chrome trace_event file")
	trEv := flag.String("trace-events", "", "like -trace but writing the deterministic JSONL event stream")
	faults := flag.String("faults", "", "deterministic fault plan applied to every solver run, e.g. 'seed=1,drop=0.01' (see cc.ParseFaultPlan)")
	budget := flag.String("budget", "", "per-solver-run budget: 'rounds=N,wall=DUR' or bare round count 'N'")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address (e.g. localhost:6060) for the duration of the run")
	debugHold := flag.Duration("debug-hold", 0, "keep the -debug-addr server up this long after the run (for scraping short runs)")
	workers := flag.Int("workers", 0, "worker count for the numerical core (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at any setting")
	flag.Parse()

	if err := run(*runFlag, *quick, *trOut, *trEv, *faults, *budget, *debugAddr, *debugHold, *workers); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(runFlag string, quick bool, trOut, trEv, faults, budget, debugAddr string, debugHold time.Duration, workers int) error {
	cfg := experiments.Config{BudgetSpec: budget, Workers: workers}
	if faults != "" {
		plan, err := cc.ParseFaultPlan(faults)
		if err != nil {
			return err
		}
		cfg.Faults = plan
		fmt.Printf("faults: %s\n", plan)
	}
	if debugAddr != "" {
		reg := metrics.NewRegistry()
		cc.SetMetrics(reg)
		linalg.SetMetrics(reg)
		srv, err := metrics.StartDebugServer(debugAddr, reg)
		if err != nil {
			return err
		}
		fmt.Printf("debug: serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
		defer func() {
			if debugHold > 0 {
				fmt.Printf("debug: holding %s for scrapes of http://%s\n", debugHold, srv.Addr())
				time.Sleep(debugHold)
			}
			srv.Close()
			cc.SetMetrics(nil)
			linalg.SetMetrics(nil)
		}()
		cfg.Metrics = reg
	}
	if err := experiments.Configure(cfg); err != nil {
		return err
	}

	if trOut != "" || trEv != "" {
		tr := trace.New()
		if err := experiments.TraceProfile(os.Stdout, quick, tr); err != nil {
			return fmt.Errorf("trace profile failed: %w", err)
		}
		if err := tr.WriteFiles(trOut, trEv); err != nil {
			return fmt.Errorf("trace export failed: %w", err)
		}
		for _, p := range []string{trOut, trEv} {
			if p != "" {
				fmt.Printf("trace: wrote %s\n", p)
			}
		}
		return nil
	}

	want := map[string]bool{}
	if runFlag == "all" {
		for _, e := range experiments.All() {
			want[e.ID] = true
		}
	} else {
		for _, id := range strings.Split(runFlag, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}
	for _, e := range experiments.All() {
		if !want[e.ID] {
			continue
		}
		fmt.Printf("\n================================================================\n%s\n================================================================\n", e.Title)
		if err := e.Run(os.Stdout, quick); err != nil {
			return fmt.Errorf("%s failed: %w", e.ID, err)
		}
	}
	return nil
}
