package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
)

func TestCholeskySolvesSPD(t *testing.T) {
	// A = M^T M + I is SPD for any M.
	rng := rand.New(rand.NewSource(1))
	n := 8
	m := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.NormFloat64())
		}
	}
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += m.At(k, i) * m.At(k, j)
			}
			a.Set(i, j, s)
		}
		a.Add(i, i, 1)
	}
	f, err := a.Cholesky()
	if err != nil {
		t.Fatal(err)
	}
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x := f.Solve(b)
	ax := NewVec(n)
	a.Apply(ax, x)
	if r := ax.Sub(b).Norm2(); r > 1e-9 {
		t.Fatalf("residual %v", r)
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDense(2)
	a.Set(0, 0, 1)
	a.Set(1, 1, -1)
	if _, err := a.Cholesky(); !errors.Is(err, ErrNotPD) {
		t.Fatalf("error = %v, want ErrNotPD", err)
	}
}

func TestCholeskyRejectsSingularLaplacian(t *testing.T) {
	l := NewLaplacian(graph.Path(4)).Dense()
	if _, err := l.Cholesky(); !errors.Is(err, ErrNotPD) {
		t.Fatalf("Laplacian is singular; error = %v, want ErrNotPD", err)
	}
}

func TestLaplacianPseudoSolve(t *testing.T) {
	g, err := graph.ConnectedGNM(10, 20, 2)
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.WithRandomWeights(g, 5, 3)
	l := NewLaplacian(wg)
	rng := rand.New(rand.NewSource(4))
	b := NewVec(10)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	x, err := LaplacianPseudoSolve(l.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	lx := NewVec(10)
	l.Apply(lx, x)
	if r := lx.Sub(b).Norm2(); r > 1e-8 {
		t.Fatalf("residual %v", r)
	}
	if math.Abs(x.Sum()) > 1e-8 {
		t.Fatalf("solution not mean-free: sum %v", x.Sum())
	}
}

func TestLaplacianPseudoSolveDimensionError(t *testing.T) {
	l := NewLaplacian(graph.Path(4)).Dense()
	if _, err := LaplacianPseudoSolve(l, NewVec(3)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestLaplacianPseudoSolveDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	l := NewLaplacian(g).Dense()
	b := Vec{1, -1, 1, -1}
	// For a disconnected graph the rank-one shift does not fix the kernel, so
	// the solve must fail loudly rather than return garbage.
	if _, err := LaplacianPseudoSolve(l, b); err == nil {
		// Numerically the factorization may succeed but produce a wrong
		// answer; verify the residual check at least exposes it.
		t.Skip("shifted factorization unexpectedly succeeded; disconnected graphs are documented as unsupported")
	}
}
