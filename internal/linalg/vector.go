// Package linalg provides the numerical kernels of the reproduction: vector
// arithmetic, graph Laplacian operators, conjugate gradients for internal
// high-precision solves, the preconditioned Chebyshev iteration of
// Theorem 2.2, and eigenvalue estimation for measuring the effective
// approximation factor of a spectral sparsifier.
//
// All routines use exact-size float64 slices; per the paper (footnote on
// precision), Omega(1/poly(m)) precision suffices for the interior point
// methods, which float64 comfortably provides.
package linalg

import (
	"fmt"
	"math"
)

// Vec is a dense vector of float64.
type Vec []float64

// NewVec returns a zero vector of length n.
func NewVec(n int) Vec { return make(Vec, n) }

// Clone returns a copy of v.
func (v Vec) Clone() Vec {
	c := make(Vec, len(v))
	copy(c, v)
	return c
}

// Zero sets all entries of v to 0 in place.
func (v Vec) Zero() {
	for i := range v {
		v[i] = 0
	}
}

// Dot returns the inner product of v and w. It panics on length mismatch,
// which always indicates a programming error rather than bad input.
//
// The reduction is the package's single numeric definition of a dot product
// — the fixed-block, fixed-order tree reduction of parallel.go run on the
// sequential (nil) pool — so Dot agrees bit-for-bit with the pooled kernel
// at any worker count. Vectors up to one block (reduceBlock entries) reduce
// in the plain left-to-right order.
func (v Vec) Dot(w Vec) float64 {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: dot of vectors with lengths %d and %d", len(v), len(w)))
	}
	return (*Pool)(nil).Dot(v, w)
}

// Norm2 returns the Euclidean norm of v.
func (v Vec) Norm2() float64 { return math.Sqrt(v.Dot(v)) }

// NormInf returns the maximum absolute entry of v.
func (v Vec) NormInf() float64 {
	var m float64
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// AXPY sets v = v + a*w in place.
func (v Vec) AXPY(a float64, w Vec) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: axpy of vectors with lengths %d and %d", len(v), len(w)))
	}
	for i := range v {
		v[i] += a * w[i]
	}
}

// Scale sets v = a*v in place.
func (v Vec) Scale(a float64) {
	for i := range v {
		v[i] *= a
	}
}

// Sub returns v - w as a new vector.
func (v Vec) Sub(w Vec) Vec {
	r := v.Clone()
	r.AXPY(-1, w)
	return r
}

// Add returns v + w as a new vector.
func (v Vec) Add(w Vec) Vec {
	r := v.Clone()
	r.AXPY(1, w)
	return r
}

// Sum returns the sum of the entries of v, under the same fixed-block
// reduction as Dot (see parallel.go).
func (v Vec) Sum() float64 { return (*Pool)(nil).Sum(v) }

// Mean returns the average entry of v (0 for the empty vector).
func (v Vec) Mean() float64 {
	if len(v) == 0 {
		return 0
	}
	return v.Sum() / float64(len(v))
}

// RemoveMean subtracts the mean from every entry in place, projecting v onto
// the subspace orthogonal to the all-ones vector. Laplacian systems L x = b
// are solvable exactly when b lies in this subspace (for connected graphs).
func (v Vec) RemoveMean() {
	m := v.Mean()
	for i := range v {
		v[i] -= m
	}
}

// RemoveMeanOn subtracts, for each index group, the group's mean — the
// per-connected-component generalization of RemoveMean. comp[i] gives the
// component id of index i; ids must be in [0, numComp). Component ids with
// no members are skipped: their (undefined, 0/0) mean is never formed, so an
// empty group can never inject NaN into the vector.
func (v Vec) RemoveMeanOn(comp []int, numComp int) {
	if len(comp) != len(v) {
		panic(fmt.Sprintf("linalg: component labels length %d for vector length %d", len(comp), len(v)))
	}
	sums := make([]float64, numComp)
	counts := make([]int, numComp)
	for i, c := range comp {
		sums[c] += v[i]
		counts[c]++
	}
	means := make([]float64, numComp)
	for c := range means {
		if counts[c] > 0 {
			means[c] = sums[c] / float64(counts[c])
		}
	}
	for i, c := range comp {
		v[i] -= means[c]
	}
}

// IsFinite reports whether every entry of v is finite.
func (v Vec) IsFinite() bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return false
		}
	}
	return true
}
