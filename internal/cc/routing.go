package cc

import (
	"errors"
	"fmt"
	"sort"

	"lapcc/internal/rounds"
)

// Packet is a source-routed message for the Lenzen routing primitive.
type Packet struct {
	Src, Dst int
	Data     []int64
}

// RouteResult reports how a routing invocation was executed and charged.
type RouteResult struct {
	// Executed is the number of rounds the simulator's two-phase relay
	// scheduler actually used.
	Executed int64
	// LinkMessages is the number of physical link messages moved (relay
	// hops count; locally-held packets do not) — the message-complexity
	// counterpart to the round counts.
	LinkMessages int64
	// Charged is the number of rounds recorded in the ledger:
	// min(Executed, rounds.LenzenRoundBound). Lenzen's theorem [Len13]
	// guarantees a (more intricate) deterministic scheduler delivers any
	// admissible message set in at most 16 rounds, so charging that bound
	// when our simple relay needs longer is faithful to the paper's
	// accounting; the Executed figure is kept for transparency.
	Charged int64
	// Overflowed records whether Executed exceeded the Lenzen bound.
	Overflowed bool
}

// ErrRoutingOverload reports a message set violating the admissibility
// condition of Lenzen routing: some node is the source or destination of
// more than n messages.
var ErrRoutingOverload = errors.New("cc: node exceeds n messages in routing instance")

// Route delivers the packets on an n-clique using a two-phase relay
// (round-robin distribution to intermediates, then delivery), enforcing the
// model's one-message-per-ordered-pair-per-round constraint in every phase.
// It requires the Lenzen admissibility condition: every node is the source
// of at most n packets and the destination of at most n packets.
//
// The returned slice is indexed by destination; packets for the same
// destination preserve no particular order (the model delivers a round's
// messages as a set). The ledger, if non-nil, is charged Result.Charged
// measured rounds under the given tag.
func Route(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	srcCount := make([]int, n)
	dstCount := make([]int, n)
	for _, p := range packets {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			return nil, RouteResult{}, fmt.Errorf("%w: packet %d -> %d with n=%d", ErrBadRecipient, p.Src, p.Dst, n)
		}
		srcCount[p.Src]++
		dstCount[p.Dst]++
	}
	for v := 0; v < n; v++ {
		if srcCount[v] > n || dstCount[v] > n {
			return nil, RouteResult{}, fmt.Errorf("%w: node %d sends %d, receives %d (n=%d)",
				ErrRoutingOverload, v, srcCount[v], dstCount[v], n)
		}
	}

	// Phase 1 (1 round): source s relays its j-th packet to intermediate
	// (s+j+1) mod n; the ≤ n packets of one source go to distinct
	// intermediates, so each ordered pair carries at most one message.
	// Packets whose intermediate equals the source or the destination stay
	// put / go direct without consuming the pair twice.
	bySrc := make([][]Packet, n)
	for _, p := range packets {
		bySrc[p.Src] = append(bySrc[p.Src], p)
	}
	atInter := make([][]Packet, n)
	var executed int64
	var linkMessages int64
	phase1Sent := false
	for s := 0; s < n; s++ {
		for j, p := range bySrc[s] {
			inter := (s + j + 1) % n
			if inter != s {
				phase1Sent = true
				linkMessages++
			}
			atInter[inter] = append(atInter[inter], p)
		}
	}
	if phase1Sent {
		executed++
	}

	// Phase 2: intermediates deliver to destinations, one message per
	// ordered pair per round. The number of rounds is the maximum, over
	// intermediates w, of the largest per-destination multiplicity at w.
	out := make([][]Packet, n)
	var phase2 int64
	for w := 0; w < n; w++ {
		perDst := make(map[int]int64)
		for _, p := range atInter[w] {
			if p.Dst == w {
				out[w] = append(out[w], p) // already local: no round needed
				continue
			}
			linkMessages++
			perDst[p.Dst]++
			if perDst[p.Dst] > phase2 {
				phase2 = perDst[p.Dst]
			}
			out[p.Dst] = append(out[p.Dst], p)
		}
	}
	executed += phase2

	res := RouteResult{Executed: executed, Charged: executed, LinkMessages: linkMessages}
	if executed > rounds.LenzenRoundBound {
		res.Charged = rounds.LenzenRoundBound
		res.Overflowed = true
	}
	if ledger != nil && res.Charged > 0 {
		ledger.Add(tag, rounds.Measured, res.Charged, rounds.CiteLenzen)
	}
	// Deterministic per-destination order (by source, then payload) so the
	// overall simulation is reproducible even though the model itself
	// delivers unordered sets.
	for d := 0; d < n; d++ {
		sort.Slice(out[d], func(i, j int) bool {
			if out[d][i].Src != out[d][j].Src {
				return out[d][i].Src < out[d][j].Src
			}
			return lessData(out[d][i].Data, out[d][j].Data)
		})
	}
	return out, res, nil
}

func lessData(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// BroadcastAll performs the one-round primitive in which every node
// announces one word to all others; it returns the announced values and
// charges one measured round. This is the "each node broadcasts its ID"
// step used when constructing product demand graphs (Theorem 3.3).
func BroadcastAll(n int, values []int64, ledger *rounds.Ledger, tag string) ([]int64, error) {
	if len(values) != n {
		return nil, fmt.Errorf("cc: %d values for %d nodes", len(values), n)
	}
	if ledger != nil {
		ledger.Add(tag, rounds.Measured, 1, "all-to-all broadcast, 1 round")
	}
	return append([]int64(nil), values...), nil
}
