// Package flowround implements Cohen's deterministic flow-rounding
// algorithm (Algorithm 1 / Lemma 4.2): given an s-t flow whose values are
// multiples of Delta (1/Delta a power of two), round every edge flow to an
// integer such that conservation is preserved, the flow value does not
// decrease, and — when the total flow is integral and costs are given — the
// total cost does not increase. Each of the log2(1/Delta) scaling levels
// pairs the "odd" edges into an Eulerian subgraph and orients it with the
// Theorem 1.4 algorithm (package euler), so the whole procedure takes
// O(log n log* n log(1/Delta)) congested-clique rounds.
package flowround

import (
	"errors"
	"fmt"
	"math"

	"lapcc/internal/cc"
	"lapcc/internal/euler"
	"lapcc/internal/graph"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// Options configures RoundWith.
type Options struct {
	// Ledger, if non-nil, records the round costs of the run.
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// EulerMode, if non-zero, selects the orientation marking strategy of
	// each scaling level (defaults to euler.Deterministic).
	EulerMode euler.Mode
	// EulerSeed drives euler.Randomized markings.
	EulerSeed int64
	// Faults, if non-nil, injects the given fault plan into every network
	// primitive of each level's Eulerian orientation; results are
	// bit-identical to a fault-free run at a larger round cost.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every routing step of each
	// level's Eulerian orientation through the given delivery backend (see
	// cc.Transport); nil keeps the in-process path. The rounded flow is
	// bit-identical either way.
	Transport cc.Transport
	// Budget, if non-nil, is checked at every scaling level; exhaustion
	// aborts with an error unwrapping to rounds.ErrBudgetExceeded.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live counters (rounding calls, scaling
	// levels) and a mirror of the ledger's cost stream, and is propagated
	// to each level's Eulerian orientation. A nil registry records nothing
	// and costs nothing.
	Metrics *metrics.Registry
}

// forcedCost is the sentinel cost forcing the virtual (t,s) arc to be a
// forward edge of any cycle containing it (Algorithm 1, line 8).
const forcedCost = int64(1) << 40

// ErrBadDelta reports a Delta that is not a power of two in (0, 1].
var ErrBadDelta = errors.New("flowround: 1/Delta must be a power of two")

// ErrNotOnGrid reports a flow value that is not a multiple of Delta.
var ErrNotOnGrid = errors.New("flowround: flow value not a multiple of Delta")

// ErrNotConserved reports a flow violating conservation at some vertex.
var ErrNotConserved = errors.New("flowround: flow does not satisfy conservation")

// Round rounds the s-t flow f on dg to integer values. f[i] is the flow on
// arc i and must be a non-negative multiple of delta; conservation must
// hold at every vertex except s and t. useCosts selects the cost-aware
// variant (arc costs are read from dg); per Cohen, the cost guarantee
// applies when the total flow value is integral. Rounds are recorded in led
// (may be nil).
//
// The returned flow has, for every arc, a value in {floor(f), ceil(f)},
// conserves at every vertex except s and t, and has value at least the
// input's.
func Round(dg *graph.DiGraph, f []float64, s, t int, delta float64, useCosts bool, led *rounds.Ledger) ([]int64, error) {
	return RoundWith(dg, f, s, t, delta, useCosts, Options{Ledger: led})
}

// RoundWith is Round with full Options (tracing, orientation mode).
func RoundWith(dg *graph.DiGraph, f []float64, s, t int, delta float64, useCosts bool, opts Options) ([]int64, error) {
	led, tr := opts.Ledger, opts.Trace
	tr.Attach(led)
	opts.Metrics.MirrorLedger(led)
	sp := tr.Start("flowround")
	defer sp.End()
	if len(f) != dg.M() {
		return nil, fmt.Errorf("flowround: %d flow values for %d arcs", len(f), dg.M())
	}
	if err := checkDelta(delta); err != nil {
		return nil, err
	}
	// Work in integer units of delta to avoid float drift across levels.
	unit := make([]int64, len(f)+1) // +1 for the virtual (t,s) arc
	for i, v := range f {
		if v < 0 {
			return nil, fmt.Errorf("flowround: negative flow %v on arc %d", v, i)
		}
		u := math.Round(v / delta)
		if math.Abs(v-u*delta) > 1e-9*delta+1e-12 {
			return nil, fmt.Errorf("%w: arc %d has flow %v at delta %v", ErrNotOnGrid, i, v, delta)
		}
		unit[i] = int64(u)
	}
	if v := conservationViolator(dg, unit[:len(f)], s, t); v >= 0 {
		return nil, fmt.Errorf("%w: vertex %d", ErrNotConserved, v)
	}

	// Virtual (t,s) arc carrying the total flow value turns the flow into a
	// circulation (Algorithm 1, lines 1-2).
	var value int64
	for _, ai := range dg.Out(s) {
		value += unit[ai]
	}
	for _, ai := range dg.In(s) {
		value -= unit[ai]
	}
	if value < 0 {
		return nil, fmt.Errorf("flowround: negative flow value %d*delta at source", value)
	}
	unit[len(f)] = value
	arcEnds := func(i int) (int, int, int64) {
		if i == len(f) {
			return t, s, 0
		}
		a := dg.Arc(i)
		return a.From, a.To, a.Cost
	}

	levels := int(math.Round(math.Log2(1 / delta)))
	if reg := opts.Metrics; reg != nil {
		reg.Counter("lapcc_flowround_rounds_total", "Flow-rounding calls.").Inc()
		reg.Counter("lapcc_flowround_levels_total", "Scaling levels executed.").Add(int64(levels))
	}
	opts.Budget.BindIfUnbound(led)
	for level := 0; level < levels; level++ {
		if err := opts.Budget.Check(fmt.Sprintf("flowround-level-%d", level)); err != nil {
			return nil, fmt.Errorf("flowround: %w", err)
		}
		lsp := tr.Startf("level-%d", level)
		// E' = arcs whose flow is an odd multiple of the current unit.
		var odd []int
		for i := range unit {
			if unit[i]%2 != 0 {
				odd = append(odd, i)
			}
		}
		if len(odd) > 0 {
			g := graph.New(dg.N())
			dirCost := make([]int64, 0, len(odd))
			for _, i := range odd {
				from, to, cost := arcEnds(i)
				id, err := g.AddEdge(from, to, 1)
				if err != nil {
					return nil, fmt.Errorf("flowround: building parity graph: %w", err)
				}
				if id != len(dirCost) {
					return nil, fmt.Errorf("flowround: edge id %d out of order", id)
				}
				// Orienting the undirected edge U->V means the cycle
				// traverses the arc forward exactly when the arc runs U->V.
				c := int64(0)
				if i == len(f) {
					c = -forcedCost // force the (t,s) arc forward
				} else if useCosts {
					c = cost
				}
				e := g.Edge(id)
				if e.U == from && e.V == to {
					dirCost = append(dirCost, c)
				} else {
					dirCost = append(dirCost, -c)
				}
			}
			orient, _, err := euler.Orient(g, dirCost, euler.Options{
				Mode: opts.EulerMode, Seed: opts.EulerSeed, Ledger: led, Trace: tr,
				Faults: opts.Faults, Transport: opts.Transport, Budget: opts.Budget, Metrics: opts.Metrics,
			})
			if err != nil {
				lsp.End()
				return nil, fmt.Errorf("flowround: level %d: %w", level, err)
			}
			for j, i := range odd {
				from, _, _ := arcEnds(i)
				e := g.Edge(j)
				forward := (orient[j] && e.U == from) || (!orient[j] && e.V == from)
				if forward {
					unit[i]++
				} else {
					unit[i]--
				}
				if unit[i] < 0 {
					lsp.End()
					return nil, fmt.Errorf("flowround: arc %d driven negative at level %d", i, level)
				}
			}
		}
		// Rescale: unit doubles, so halve the counters.
		for i := range unit {
			if unit[i]%2 != 0 {
				lsp.End()
				return nil, fmt.Errorf("flowround: arc %d still odd after level %d", i, level)
			}
			unit[i] /= 2
		}
		lsp.End()
	}

	out := make([]int64, len(f))
	copy(out, unit[:len(f)])
	return out, nil
}

// SnapToGrid rounds each flow value to the nearest multiple of delta and
// repairs the conservation error this introduces by routing per-vertex
// imbalances along a BFS spanning tree (internal computation). The result
// satisfies the preconditions of Round; each arc moves by at most
// n*delta from its snapped value. High-accuracy IPM solutions feed through
// this before rounding.
func SnapToGrid(dg *graph.DiGraph, f []float64, s, t int, delta float64) ([]float64, error) {
	if len(f) != dg.M() {
		return nil, fmt.Errorf("flowround: %d flow values for %d arcs", len(f), dg.M())
	}
	if err := checkDelta(delta); err != nil {
		return nil, err
	}
	unit := make([]int64, len(f))
	for i, v := range f {
		unit[i] = int64(math.Round(v / delta))
		if unit[i] < 0 {
			unit[i] = 0
		}
	}
	// Imbalance in delta units at every vertex except s and t.
	imbalance := make([]int64, dg.N())
	for i, a := range dg.Arcs() {
		imbalance[a.From] -= unit[i]
		imbalance[a.To] += unit[i]
	}
	// BFS tree over the undirected support, rooted at s; push imbalances
	// from the leaves toward the root.
	parentArc := make([]int, dg.N())
	parentDir := make([]int64, dg.N()) // +1: arc points to parent, -1: from parent
	order := make([]int, 0, dg.N())
	seen := make([]bool, dg.N())
	seen[s] = true
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order = append(order, v)
		for _, ai := range dg.Out(v) {
			if w := dg.Arc(ai).To; !seen[w] {
				seen[w] = true
				parentArc[w] = ai
				parentDir[w] = -1
				queue = append(queue, w)
			}
		}
		for _, ai := range dg.In(v) {
			if w := dg.Arc(ai).From; !seen[w] {
				seen[w] = true
				parentArc[w] = ai
				parentDir[w] = +1
				queue = append(queue, w)
			}
		}
	}
	for i := len(order) - 1; i >= 1; i-- {
		v := order[i]
		if v == t {
			continue // s and t absorb imbalance (it is the flow value)
		}
		d := imbalance[v]
		if d == 0 {
			continue
		}
		ai := parentArc[v]
		// Move d units of excess along the tree arc toward the parent:
		// excess d > 0 means too much inflow, so push out toward the parent
		// (increase flow on a v->parent arc, or reduce inflow on a
		// parent->v arc); deficits flow the other way by sign.
		a := dg.Arc(ai)
		if parentDir[v] == +1 { // arc runs v -> parent
			unit[ai] += d
		} else { // arc runs parent -> v
			unit[ai] -= d
		}
		parent := a.From
		if parent == v {
			parent = a.To
		}
		imbalance[v] = 0
		imbalance[parent] += d
	}
	out := make([]float64, len(f))
	for i := range out {
		if unit[i] < 0 {
			// Tree repair can drive a tree arc negative; shift is legal for
			// rounding purposes only if we clamp and re-route, but a clamp
			// breaks conservation. Fail loudly instead: callers with flows
			// this far from feasibility must repair upstream.
			return nil, fmt.Errorf("flowround: snap repair drove arc %d to %d*delta", i, unit[i])
		}
		out[i] = float64(unit[i]) * delta
	}
	if v := conservationViolator(dg, unit, s, t); v >= 0 {
		return nil, fmt.Errorf("%w after snap repair: vertex %d", ErrNotConserved, v)
	}
	return out, nil
}

func checkDelta(delta float64) error {
	if delta <= 0 || delta > 1 {
		return fmt.Errorf("%w: got %v", ErrBadDelta, delta)
	}
	inv := 1 / delta
	if math.Abs(inv-math.Round(inv)) > 1e-9 {
		return fmt.Errorf("%w: got %v", ErrBadDelta, delta)
	}
	k := int64(math.Round(inv))
	if k&(k-1) != 0 {
		return fmt.Errorf("%w: 1/Delta = %d", ErrBadDelta, k)
	}
	return nil
}

// conservationViolator returns the first vertex (other than s and t) whose
// in-flow differs from its out-flow, or -1.
func conservationViolator(dg *graph.DiGraph, unit []int64, s, t int) int {
	imbalance := make([]int64, dg.N())
	for i, a := range dg.Arcs() {
		imbalance[a.From] -= unit[i]
		imbalance[a.To] += unit[i]
	}
	for v, d := range imbalance {
		if v != s && v != t && d != 0 {
			return v
		}
	}
	return -1
}

// Value returns the s-t value of an integer flow.
func Value(dg *graph.DiGraph, f []int64, s int) int64 {
	var value int64
	for _, ai := range dg.Out(s) {
		value += f[ai]
	}
	for _, ai := range dg.In(s) {
		value -= f[ai]
	}
	return value
}

// Cost returns the total cost of an integer flow.
func Cost(dg *graph.DiGraph, f []int64) int64 {
	var c int64
	for i, a := range dg.Arcs() {
		c += a.Cost * f[i]
	}
	return c
}
