// Package sparsify implements the deterministic spectral sparsifier of
// Theorem 3.3, following the Chuzhoy-Gao-Li-Nanongkai-Peng-Saranurak
// [CGLN+20] construction:
//
//  1. split the weighted graph into binary weight classes;
//  2. for each class, repeatedly compute an expander decomposition
//     (internal/expander, eps = 1/2) and replace every certified part by a
//     sparsified *product demand graph*; the crossing edges form the next
//     level, so O(log m) levels exhaust the class;
//  3. the union of all pieces, rescaled per class, is the sparsifier.
//
// The product demand graph H(d) of a part with degree vector d is the
// complete graph with weights d_u * d_v / vol — a 4/phi^2-approximation of
// any phi-expander with those degrees. Its internal sparsification (the
// paper cites Kyng-Lee-Peng-Sachdeva-Spielman [KLPS+16]) is substituted by
// a deterministic weighted-expander construction: vertices are bucketed by
// degree, each bucket carries a circulant expander, and bucket pairs are
// joined by balanced cyclic connectors, all reweighted to preserve weighted
// degrees. The effective approximation factor alpha of the whole chain is
// *measured* (MeasureAlpha) rather than assumed; the preconditioned
// Chebyshev solver adapts to whatever alpha the chain achieves, which is
// exactly how Corollary 2.3 consumes the sparsifier. See DESIGN.md,
// "Substitutions".
//
// In the congested clique, each decomposition level costs one CS20
// decomposition (charged) plus one all-to-all broadcast round in which every
// node announces its part id and degree (measured); building and
// sparsifying the product demand graphs is internal computation. The final
// sparsifier has O(n polylog n log U) edges and is known to every node,
// which is what makes the Theorem 1.1 solver's preconditioner solves free.
package sparsify

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lapcc/internal/cc"
	"lapcc/internal/expander"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// Options configures Sparsify.
type Options struct {
	// Eps is the per-level fraction of crossing edges (default 1/2, as in
	// the paper's proof of Theorem 3.3).
	Eps float64
	// Gamma is the CS20 round-cost exponent n^O(gamma) charged per
	// decomposition (default 0.25, i.e. r = 2 in Theorem 3.3).
	Gamma float64
	// SmallPartCutoff: parts of at most this many vertices keep their exact
	// product demand graph instead of the expander-sparsified version
	// (default 32).
	SmallPartCutoff int
	// MaxLevels caps the number of decomposition levels (default
	// 2*log2(m)+6); remaining edges are then copied verbatim, which is
	// always spectrally safe.
	MaxLevels int
	// Ledger, if non-nil, receives the round costs.
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Faults, if non-nil, injects the given fault plan into every network
	// primitive this package executes (broadcasts run through the reliable
	// retransmission layer, cc.ReliableBroadcastAll). Results are
	// bit-identical to a fault-free run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries the per-level broadcast
	// through the given delivery backend (see cc.Transport); nil keeps the
	// in-process path. The sparsifier is bit-identical either way.
	Transport cc.Transport
	// Budget, if non-nil, is checked at every decomposition level;
	// exhaustion aborts with an error unwrapping to
	// rounds.ErrBudgetExceeded.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live phase counters (builds, levels,
	// parts, chain reuse decisions) and a mirror of the ledger's cost
	// stream; a nil registry records nothing and costs nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count for the per-part product-demand builds
	// within each decomposition level (0 = GOMAXPROCS, 1 = sequential).
	// Levels stay sequential — each level's input is the previous level's
	// crossing edges — but the certified parts of one level are independent,
	// and their pieces are merged into H in part order, so the sparsifier is
	// bit-identical at any worker count. Round accounting is untouched:
	// parallelism is internal computation, which is free in the model.
	Workers int
}

func (o *Options) defaults(m int) {
	if o.Eps == 0 {
		o.Eps = 0.5
	}
	if o.Gamma == 0 {
		o.Gamma = 0.25
	}
	if o.SmallPartCutoff == 0 {
		o.SmallPartCutoff = 32
	}
	if o.MaxLevels == 0 {
		o.MaxLevels = 2*int(math.Ceil(math.Log2(float64(m+2)))) + 6
	}
}

// Result is the output of Sparsify.
type Result struct {
	// H is the sparsifier; it spans the same vertex set as the input.
	H *graph.Graph
	// Levels is the number of decomposition levels actually used, per
	// weight class, summed.
	Levels int
	// Parts is the total number of certified expander parts across all
	// levels and classes.
	Parts int
	// LeftoverEdges counts input edges copied verbatim when MaxLevels was
	// reached (0 in healthy runs).
	LeftoverEdges int
}

// ErrEmptyGraph reports sparsification of a graph with no edges.
var ErrEmptyGraph = errors.New("sparsify: graph has no edges")

// Sparsify computes a deterministic spectral sparsifier of g. Edge weights
// must be positive; the result is known to every clique node by
// construction (everything global is O(n polylog n) words, broadcast as it
// is built).
func Sparsify(g *graph.Graph, opts Options) (*Result, error) {
	if g.M() == 0 {
		return nil, ErrEmptyGraph
	}
	opts.defaults(g.M())
	opts.Trace.Attach(opts.Ledger)
	opts.Metrics.MirrorLedger(opts.Ledger)
	sp := opts.Trace.Start("sparsify")
	defer sp.End()

	// Binary weight classes: class i holds edges with weight in [2^i, 2^{i+1}).
	classes := make(map[int][]int)
	for id, e := range g.Edges() {
		i := int(math.Floor(math.Log2(e.W)))
		classes[i] = append(classes[i], id)
	}
	classKeys := make([]int, 0, len(classes))
	for k := range classes {
		classKeys = append(classKeys, k)
	}
	sort.Ints(classKeys)

	h := graph.New(g.N())
	res := &Result{H: h}
	for _, ci := range classKeys {
		scale := math.Pow(2, float64(ci))
		csp := opts.Trace.Startf("class-%d", ci)
		err := sparsifyClass(g, classes[ci], scale, opts, res)
		csp.End()
		if err != nil {
			return nil, fmt.Errorf("sparsify: weight class 2^%d: %w", ci, err)
		}
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter("lapcc_sparsify_builds_total", "Deterministic sparsifier builds completed.").Inc()
		reg.Counter("lapcc_sparsify_levels_total", "Expander-decomposition levels executed across builds.").Add(int64(res.Levels))
		reg.Counter("lapcc_sparsify_parts_total", "Certified expander parts across builds.").Add(int64(res.Parts))
		reg.Counter("lapcc_sparsify_leftover_edges_total", "Edges copied verbatim after hitting the level cap.").Add(int64(res.LeftoverEdges))
	}
	return res, nil
}

// sparsifyClass runs the level loop for one (unit-treated) weight class.
func sparsifyClass(g *graph.Graph, edgeIDs []int, scale float64, opts Options, res *Result) error {
	cur := edgeIDs
	for level := 0; len(cur) > 0; level++ {
		if err := opts.Budget.Check(fmt.Sprintf("sparsify-level-%d", level)); err != nil {
			return err
		}
		lsp := opts.Trace.Startf("level-%d", level)
		done := sparsifyLevel(g, &cur, level, scale, opts, res)
		lsp.End()
		if done.err != nil || done.stop {
			return done.err
		}
	}
	return nil
}

type levelOutcome struct {
	stop bool
	err  error
}

// sparsifyLevel runs one decomposition level; split out of sparsifyClass so
// each level is one trace span with a single entry and exit.
func sparsifyLevel(g *graph.Graph, curp *[]int, level int, scale float64, opts Options, res *Result) levelOutcome {
	cur := *curp
	if level >= opts.MaxLevels {
		// Safety valve: copy the few remaining edges verbatim. A
		// subgraph copied at original weight only helps the sandwich.
		for _, id := range cur {
			e := g.Edge(id)
			res.H.MustAddEdge(e.U, e.V, e.W)
		}
		res.LeftoverEdges += len(cur)
		return levelOutcome{stop: true}
	}
	res.Levels++

	// Build the class subgraph of this level (unweighted view).
	lv := graph.New(g.N())
	for _, id := range cur {
		e := g.Edge(id)
		lv.MustAddEdge(e.U, e.V, 1)
	}
	phi := expander.PhiForEps(opts.Eps, lv.M())
	dec, err := expander.Decompose(lv, phi)
	if err != nil {
		return levelOutcome{err: err}
	}
	if opts.Ledger != nil {
		opts.Ledger.Add("sparsify-decomp", rounds.Charged,
			rounds.ExpanderDecompRounds(g.N(), opts.Eps, opts.Gamma), rounds.CiteCS20)
		// One broadcast round: every node announces its part id and
		// degree, making the product demand graphs globally known. Under a
		// fault plan the reliable layer retransmits until the values are
		// identical to the clean broadcast.
		if opts.Faults != nil {
			if _, _, err := cc.ReliableBroadcastAllVia(opts.Transport, g.N(), make([]int64, g.N()), opts.Ledger, "sparsify-bcast", opts.Faults); err != nil {
				return levelOutcome{err: err}
			}
		} else if _, err := cc.BroadcastAllVia(opts.Transport, g.N(), make([]int64, g.N()), opts.Ledger, "sparsify-bcast"); err != nil {
			return levelOutcome{err: err}
		}
	}
	if frac := dec.CrossingFraction(lv.M()); frac > opts.Eps {
		return levelOutcome{err: fmt.Errorf("crossing fraction %.3f exceeds eps %.3f at level %d", frac, opts.Eps, level)}
	}

	// Collect the certified parts first (serial: part counting and subgraph
	// validation keep their historical order), then build the per-part
	// product-demand pieces concurrently — parts are independent — and merge
	// them into H strictly in part order. Edge order, weights, and counters
	// are therefore identical at any worker count.
	type partJob struct {
		sub   *graph.Graph
		orig  []int
		piece *graph.Graph
	}
	var jobs []partJob
	for _, part := range dec.Parts {
		if len(part) < 2 {
			continue
		}
		sub, orig, err := lv.Subgraph(part)
		if err != nil {
			return levelOutcome{err: err}
		}
		if sub.M() == 0 {
			continue
		}
		res.Parts++
		jobs = append(jobs, partJob{sub: sub, orig: orig})
	}
	pool := linalg.SharedPool(opts.Workers)
	pool.ForBlocks(len(jobs), func(i int) {
		jobs[i].piece = productDemandSparsifier(jobs[i].sub, opts.SmallPartCutoff)
	})
	for _, j := range jobs {
		for _, e := range j.piece.Edges() {
			res.H.MustAddEdge(j.orig[e.U], j.orig[e.V], e.W*scale*phiBoost(phi))
		}
	}

	*curp = dec.Crossing
	return levelOutcome{}
}

// phiBoost is the weight normalization applied to product demand pieces.
// The CGLN analysis sandwiches a phi-expander between (phi^2/4) D and 4 D
// for the degree-matched product demand graph D; emitting D unscaled keeps
// the sandwich centered within the measured-alpha framework.
func phiBoost(float64) float64 { return 1 }

// productDemandSparsifier returns a sparse deterministic approximation of
// the product demand graph H(d) of sub, where d is sub's (unweighted)
// degree vector and edge {u,v} has weight d_u*d_v/vol. Parts up to cutoff
// vertices get the exact product demand graph; larger parts get the
// bucketed weighted-expander construction.
func productDemandSparsifier(sub *graph.Graph, cutoff int) *graph.Graph {
	k := sub.N()
	vol := float64(2 * sub.M())
	deg := make([]float64, k)
	var support []int
	for v := 0; v < k; v++ {
		deg[v] = float64(sub.Degree(v))
		if deg[v] > 0 {
			support = append(support, v)
		}
	}
	out := graph.New(k)
	if len(support) < 2 {
		return out
	}
	if len(support) <= cutoff {
		for i := 0; i < len(support); i++ {
			for j := i + 1; j < len(support); j++ {
				u, v := support[i], support[j]
				out.MustAddEdge(u, v, deg[u]*deg[v]/vol)
			}
		}
		return out
	}

	// Bucket the support by degree (powers of two).
	buckets := make(map[int][]int)
	for _, v := range support {
		b := int(math.Floor(math.Log2(deg[v])))
		buckets[b] = append(buckets[b], v)
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	for _, b := range keys {
		sort.Ints(buckets[b])
	}

	// Intra-bucket: a circulant expander reweighted to preserve each
	// vertex's weighted degree toward its own bucket.
	for _, b := range keys {
		vs := buckets[b]
		if len(vs) < 2 {
			continue
		}
		jumps := graph.GeometricJumps(len(vs))
		degC := 0
		for _, j := range jumps {
			if 2*j == len(vs) {
				degC++
			} else {
				degC += 2
			}
		}
		boost := float64(len(vs)-1) / float64(degC)
		for _, j := range jumps {
			for i := range vs {
				if 2*j == len(vs) && i >= len(vs)/2 {
					continue
				}
				u, v := vs[i], vs[(i+j)%len(vs)]
				if u == v {
					continue
				}
				out.MustAddEdge(u, v, deg[u]*deg[v]/vol*boost)
			}
		}
	}

	// Inter-bucket: balanced cyclic connectors between every bucket pair,
	// reweighted so each pair's total weight equals the complete bipartite
	// product demand weight between the buckets.
	for i := 0; i < len(keys); i++ {
		for j := i + 1; j < len(keys); j++ {
			small, big := buckets[keys[i]], buckets[keys[j]]
			if len(small) > len(big) {
				small, big = big, small
			}
			var dSmall, dBig float64
			for _, v := range small {
				dSmall += deg[v]
			}
			for _, v := range big {
				dBig += deg[v]
			}
			totalWeight := dSmall * dBig / vol
			// Each small-bucket vertex connects to `fan` cyclically spaced
			// big-bucket vertices; fan >= 2 keeps the connector expanding.
			fan := 2
			if len(big) < fan {
				fan = len(big)
			}
			type pair struct{ u, v int }
			conns := make([]pair, 0, len(small)*fan)
			var rawTotal float64
			for si, u := range small {
				for f := 0; f < fan; f++ {
					v := big[(si*fan+f*7+si/len(big)+f)%len(big)]
					conns = append(conns, pair{u, v})
					rawTotal += deg[u] * deg[v]
				}
			}
			if rawTotal == 0 {
				continue
			}
			for _, c := range conns {
				w := deg[c.u] * deg[c.v] / rawTotal * totalWeight
				if w > 0 {
					out.MustAddEdge(c.u, c.v, w)
				}
			}
		}
	}
	return out
}

// MeasureAlpha estimates the effective approximation factor alpha of h for
// g by pencil eigenvalue bounds: the smallest alpha with
// (1/alpha) L_H <= L_G <= alpha L_H on the measured spectrum. Both graphs
// must be connected with the same vertex set. iters controls power-
// iteration accuracy (100-300 is typical).
func MeasureAlpha(g, h *graph.Graph, iters int) (float64, error) {
	if g.N() != h.N() {
		return 0, fmt.Errorf("sparsify: vertex counts differ: %d vs %d", g.N(), h.N())
	}
	lg := linalg.NewLaplacian(g)
	lh := linalg.NewLaplacian(h)
	lamMin, lamMax, err := linalg.PencilBounds(lg, lh,
		linalg.LaplacianCGSolver(lg, 1e-11), linalg.LaplacianCGSolver(lh, 1e-11), iters)
	if err != nil {
		return 0, fmt.Errorf("sparsify: alpha measurement: %w", err)
	}
	if lamMin <= 0 || lamMax <= 0 {
		return 0, fmt.Errorf("sparsify: degenerate pencil bounds [%v, %v]", lamMin, lamMax)
	}
	return linalg.EffectiveAlpha(lamMin, lamMax), nil
}

// MeasureAlphaLanczos is MeasureAlpha accelerated by the generalized
// Lanczos pencil estimator, with a power-iteration guardrail: Krylov
// recurrences amplify inner-solver noise on pencils with extreme weight
// ranges (exactly what the CGLN chain produces) and can report spurious
// extremes, so the Lanczos bounds are accepted only when they extend the
// power-iteration bounds by a bounded factor; otherwise the robust power
// estimate is used. k is the Krylov dimension (30-80 typical).
func MeasureAlphaLanczos(g, h *graph.Graph, k int) (float64, error) {
	if g.N() != h.N() {
		return 0, fmt.Errorf("sparsify: vertex counts differ: %d vs %d", g.N(), h.N())
	}
	lg := linalg.NewLaplacian(g)
	lh := linalg.NewLaplacian(h)
	aSolve := linalg.LaplacianCGSolver(lg, 1e-12)
	bSolve := linalg.LaplacianCGSolver(lh, 1e-12)
	pLo, pHi, err := linalg.PencilBounds(lg, lh, aSolve, bSolve, 80)
	if err != nil {
		return 0, fmt.Errorf("sparsify: alpha measurement: %w", err)
	}
	lLo, lHi, lerr := linalg.PencilBoundsLanczos(lg, lh, aSolve, bSolve, k)
	lo, hi := pLo, pHi
	if lerr == nil && lLo > 0 && lHi > 0 {
		// Lanczos legitimately sees *more* spectrum than a short power
		// iteration, but not orders of magnitude more on one estimate.
		if lHi >= pHi && lHi <= 3*pHi {
			hi = lHi
		}
		if lLo <= pLo && lLo >= pLo/3 {
			lo = lLo
		}
	}
	if lo <= 0 || hi <= 0 {
		return 0, fmt.Errorf("sparsify: degenerate pencil bounds [%v, %v]", lo, hi)
	}
	return linalg.EffectiveAlpha(lo, hi), nil
}
