package metrics

import (
	"io"
	"math"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"lapcc/internal/rounds"
)

func TestCounterGaugeHistogramBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	c.Add(-2) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	g := r.Gauge("g", "a gauge")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
	h := r.Histogram("h", "a histogram")
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)
	h.Observe(-9) // clamps to 0
	h.ObserveDuration(3 * time.Nanosecond)
	if h.Count() != 5 || h.Sum() != 9 {
		t.Fatalf("hist count=%d sum=%d, want 5, 9", h.Count(), h.Sum())
	}
}

func TestNilRegistryAndInstrumentsAreNoOps(t *testing.T) {
	var r *Registry
	if r.Enabled() {
		t.Fatal("nil registry reports enabled")
	}
	c := r.Counter("c_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry returned non-nil instruments")
	}
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments recorded state")
	}
	if s := r.Snapshot(); s != nil {
		t.Fatalf("nil registry snapshot = %v, want nil", s)
	}
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil || sb.Len() != 0 {
		t.Fatalf("nil WritePrometheus: err=%v out=%q", err, sb.String())
	}
}

func TestDisabledAndEnabledRecordingDoesNotAllocate(t *testing.T) {
	var nilC *Counter
	var nilH *Histogram
	if n := testing.AllocsPerRun(100, func() {
		nilC.Add(1)
		nilH.Observe(7)
	}); n != 0 {
		t.Fatalf("nil instruments allocate %v allocs/op", n)
	}
	r := NewRegistry()
	c := r.Counter("c_total", "")
	h := r.Histogram("h", "")
	if n := testing.AllocsPerRun(100, func() {
		c.Add(1)
		h.Observe(1 << 20)
	}); n != 0 {
		t.Fatalf("enabled instruments allocate %v allocs/op", n)
	}
}

func TestLookupIsGetOrCreateAndKindChecked(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "", "k", "v")
	b := r.Counter("x_total", "", "k", "v")
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if r.Counter("x_total", "", "k", "w") == a {
		t.Fatal("different label value returned same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind mismatch did not panic")
		}
	}()
	r.Gauge("x_total", "", "k", "v")
}

func TestHistogramBucketBounds(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", "")
	// One observation per bit-length class boundary: 0, 1, 2, 3, 4.
	for _, v := range []int64{0, 1, 2, 3, 4} {
		h.Observe(v)
	}
	var s Sample
	for _, smp := range r.Snapshot() {
		if smp.Name == "h" {
			s = smp
		}
	}
	want := []BucketCount{
		{UpperBound: 0, Count: 1}, // v=0
		{UpperBound: 1, Count: 2}, // v=1
		{UpperBound: 3, Count: 4}, // v in {2,3}
		{UpperBound: 7, Count: 5}, // v=4
	}
	if !reflect.DeepEqual(s.Buckets, want) {
		t.Fatalf("buckets = %+v, want %+v", s.Buckets, want)
	}
	if bucketUpperBound(63) != math.MaxInt64 {
		t.Fatalf("top bucket bound = %d, want MaxInt64", bucketUpperBound(63))
	}
}

func TestSnapshotIsSortedAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "").Add(2)
	r.Gauge("a", "").Set(1)
	r.Counter("b_total", "", "k", "z").Add(3)
	r.Counter("b_total", "", "k", "a").Add(4)
	s1 := r.Snapshot()
	s2 := r.Snapshot()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("two snapshots of identical state differ")
	}
	var ids []string
	for _, s := range s1 {
		ids = append(ids, metricID(s.Name, s.Labels))
	}
	want := []string{"a", "b_total", `b_total{k="a"}`, `b_total{k="z"}`}
	if !reflect.DeepEqual(ids, want) {
		t.Fatalf("snapshot order = %v, want %v", ids, want)
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("req_total", "Requests served.", "code", "200").Add(3)
	r.Counter("req_total", "Requests served.", "code", "500").Add(1)
	r.Gauge("depth", "Queue depth.").Set(7)
	h := r.Histogram("lat_ns", "Latency.")
	h.Observe(0)
	h.Observe(5)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP depth Queue depth.
# TYPE depth gauge
depth 7
# HELP lat_ns Latency.
# TYPE lat_ns histogram
lat_ns_bucket{le="0"} 1
lat_ns_bucket{le="1"} 1
lat_ns_bucket{le="3"} 1
lat_ns_bucket{le="7"} 2
lat_ns_bucket{le="+Inf"} 2
lat_ns_sum 5
lat_ns_count 2
# HELP req_total Requests served.
# TYPE req_total counter
req_total{code="200"} 3
req_total{code="500"} 1
`
	if sb.String() != want {
		t.Fatalf("prometheus output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

func TestWritePrometheusLabeledHistogram(t *testing.T) {
	r := NewRegistry()
	r.Histogram("dur_ns", "", "phase", "merge").Observe(2)
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`dur_ns_bucket{phase="merge",le="3"} 1`,
		`dur_ns_bucket{phase="merge",le="+Inf"} 1`,
		`dur_ns_sum{phase="merge"} 2`,
		`dur_ns_count{phase="merge"} 1`,
	} {
		if !strings.Contains(sb.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, sb.String())
		}
	}
}

func TestPrometheusEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "help with \\ and\nnewline", "k", "quote\"back\\slash\nnl").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `# HELP esc_total help with \\ and\nnewline`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	if !strings.Contains(out, `esc_total{k="quote\"back\\slash\nnl"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
}

func TestWriteJSONSnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("c_total", "count", "k", "v").Add(2)
	h := r.Histogram("h", "")
	h.Observe(3)
	var sb strings.Builder
	if err := r.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, frag := range []string{
		`"name": "c_total"`, `"kind": "counter"`, `"value": 2`,
		`"key": "k"`, `"value": "v"`,
		`"name": "h"`, `"kind": "histogram"`, `"count": 1`, `"sum": 3`, `"le": 3`,
	} {
		if !strings.Contains(out, frag) {
			t.Fatalf("JSON snapshot missing %s:\n%s", frag, out)
		}
	}
	var sb2 strings.Builder
	r.WriteJSON(&sb2)
	if sb.String() != sb2.String() {
		t.Fatal("JSON snapshot is not deterministic")
	}
}

func TestMirrorLedgerCountsRoundsAndTraffic(t *testing.T) {
	r := NewRegistry()
	led := rounds.New()
	r.MirrorLedger(led)
	r.MirrorLedger(led) // idempotent: must not double-count
	led.Add("phase/a", rounds.Measured, 5, "")
	led.Add("phase/b", rounds.Charged, 11, "cite")
	led.AddTraffic("phase/a", 100, 700)
	snap := map[string]int64{}
	for _, s := range r.Snapshot() {
		snap[metricID(s.Name, s.Labels)] = s.Value
	}
	want := map[string]int64{
		`lapcc_ledger_rounds_total{kind="measured"}`: 5,
		`lapcc_ledger_rounds_total{kind="charged"}`:  11,
		`lapcc_ledger_rounds_total{kind="other"}`:    0,
		"lapcc_ledger_traffic_messages_total":        100,
		"lapcc_ledger_traffic_words_total":           700,
	}
	for k, v := range want {
		if snap[k] != v {
			t.Fatalf("%s = %d, want %d (snapshot %v)", k, snap[k], v, snap)
		}
	}
}

// otherSink is a second ledger sink used to check AttachSink composition.
type otherSink struct{ costs, traffic int64 }

func (o *otherSink) RoundCost(tag string, kind rounds.Kind, r int64) { o.costs += r }
func (o *otherSink) LinkTraffic(tag string, messages, words int64)   { o.traffic += words }

func TestMirrorLedgerComposesWithExistingSink(t *testing.T) {
	r := NewRegistry()
	led := rounds.New()
	prior := &otherSink{}
	led.SetSink(prior)
	r.MirrorLedger(led)
	r.MirrorLedger(led)
	led.Add("x", rounds.Measured, 3, "")
	led.AddTraffic("x", 1, 9)
	if prior.costs != 3 || prior.traffic != 9 {
		t.Fatalf("prior sink lost events: costs=%d traffic=%d", prior.costs, prior.traffic)
	}
	m := r.Counter("lapcc_ledger_rounds_total", "", "kind", "measured")
	if m.Value() != 3 {
		t.Fatalf("metrics mirror = %d, want 3 (double-attach must not double-count)", m.Value())
	}
}

func TestDebugServerEndpoints(t *testing.T) {
	r := NewRegistry()
	r.Counter("up_total", "Up.").Inc()
	srv, err := StartDebugServer("127.0.0.1:0", r)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	get := func(path string) (string, string) {
		resp, err := http.Get("http://" + srv.Addr() + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body), resp.Header.Get("Content-Type")
	}
	if body, ct := get("/metrics"); !strings.Contains(body, "up_total 1") || !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics body=%q content-type=%q", body, ct)
	}
	if body, ct := get("/metrics.json"); !strings.Contains(body, `"up_total"`) || ct != "application/json" {
		t.Fatalf("/metrics.json body=%q content-type=%q", body, ct)
	}
	if body, _ := get("/debug/pprof/"); !strings.Contains(body, "goroutine") {
		t.Fatalf("/debug/pprof/ index missing profiles:\n%s", body)
	}
	if body, _ := get("/"); !strings.Contains(body, "lapcc debug server") {
		t.Fatalf("index page: %q", body)
	}
	resp, err := http.Get("http://" + srv.Addr() + "/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path status = %d, want 404", resp.StatusCode)
	}
}
