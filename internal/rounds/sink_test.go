package rounds

import (
	"testing"
	"time"
)

// recordingSink captures every forwarded cost; the traffic variant also
// captures link-traffic reports.
type recordingSink struct {
	costs []struct {
		tag  string
		kind Kind
		r    int64
	}
}

func (s *recordingSink) RoundCost(tag string, kind Kind, r int64) {
	s.costs = append(s.costs, struct {
		tag  string
		kind Kind
		r    int64
	}{tag, kind, r})
}

type trafficSink struct {
	recordingSink
	messages, words int64
}

func (s *trafficSink) LinkTraffic(tag string, messages, words int64) {
	s.messages += messages
	s.words += words
}

func TestSinkReceivesEveryAdd(t *testing.T) {
	l := New()
	if l.HasSink() {
		t.Fatal("fresh ledger has a sink")
	}
	sink := &recordingSink{}
	l.SetSink(sink)
	if !l.HasSink() {
		t.Fatal("HasSink false after SetSink")
	}
	l.Add("a", Measured, 3, "why")
	l.Add("b", Charged, 5, "cite")
	l.Add("a", Measured, 1, "why")
	if len(sink.costs) != 3 {
		t.Fatalf("%d forwarded costs, want 3", len(sink.costs))
	}
	if c := sink.costs[1]; c.tag != "b" || c.kind != Charged || c.r != 5 {
		t.Fatalf("forwarded cost %+v", c)
	}
	// The ledger itself still accumulates normally.
	if l.Total() != 9 {
		t.Fatalf("ledger total %d, want 9", l.Total())
	}
}

func TestAddTrafficRequiresTrafficSink(t *testing.T) {
	l := New()
	l.AddTraffic("x", 1, 2) // no sink: silently dropped
	plain := &recordingSink{}
	l.SetSink(plain)
	l.AddTraffic("x", 1, 2) // sink without LinkTraffic: dropped
	ts := &trafficSink{}
	l.SetSink(ts)
	l.AddTraffic("x", 10, 40)
	l.AddTraffic("y", 1, 2)
	if ts.messages != 11 || ts.words != 42 {
		t.Fatalf("traffic sink got %d msgs %d words, want 11 and 42", ts.messages, ts.words)
	}
	if len(plain.costs) != 0 {
		t.Fatal("plain sink received traffic as costs")
	}
}

func TestSnapshotDeltas(t *testing.T) {
	l := New()
	l.Add("before", Measured, 100, "excluded from the delta")
	snap := Snap(l)
	l.Add("m", Measured, 7, "in window")
	l.Add("c", Charged, 5, "in window")
	st := snap.Stats()
	if st.MeasuredRounds != 7 || st.ChargedRounds != 5 {
		t.Fatalf("delta %+v, want measured 7 charged 5", st)
	}
	if st.TotalRounds() != 12 {
		t.Fatalf("TotalRounds %d, want 12", st.TotalRounds())
	}
	if st.WallTime < 0 || st.WallTime > time.Minute {
		t.Fatalf("implausible wall time %v", st.WallTime)
	}
}

func TestSnapshotNilLedger(t *testing.T) {
	snap := Snap(nil)
	st := snap.Stats()
	if st.MeasuredRounds != 0 || st.ChargedRounds != 0 {
		t.Fatalf("nil-ledger snapshot deltas %+v, want zero", st)
	}
}
