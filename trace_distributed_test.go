package lapcc_test

// Distributed trace-plane tests: with a tracer attached to the supervised
// TCP coordinator, every barrier also collects each worker's local span
// records and merges them into the global timeline as node-%d subtrees,
// and supervision transitions (kills, mesh teardown/respawn, barrier
// replay) appear as mark events. The merged JSONL stream must be
// schema-clean and — for a fixed kill schedule — byte-identical across
// runs, because everything in it is derived from deterministic quantities
// (the wall clock stays in the Chrome export and the flight recorder).

import (
	"bytes"
	"io"
	"strings"
	"testing"
	"time"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

// tracedChaosSolve runs the standard differential instance over a
// supervised 4-worker in-process clique with a kill-only chaos plan and a
// tracer attached to both the run and the transport. It returns the merged
// JSONL stream, the tracer, the solution, and the attached flight recorder.
// Kill-only matters: kills execute and recover inside Deliver under the
// coordinator lock, so heartbeat probes never observe a dead mesh and the
// mark sequence is reproducible; write-fault plans race the heartbeat and
// forfeit byte determinism by design.
func tracedChaosSolve(t *testing.T) (string, *trace.Tracer, []float64, *trace.Flight) {
	t.Helper()
	g, err := graph.ConnectedGNM(48, 140, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1

	tr, err := tcp.New(tcp.Options{
		Procs:          4,
		Supervise:      true,
		BarrierTimeout: 30 * time.Second,
		Chaos: &transport.ChaosPlan{Seed: 7, Kills: []transport.Kill{
			{Barrier: 1, Proc: 1},
			{Barrier: 2, Proc: 3},
		}},
		Stderr: io.Discard,
	})
	if err != nil {
		t.Fatalf("booting supervised tcp transport: %v", err)
	}
	tracer := trace.New()
	tr.SetTracer(tracer)
	fl := trace.NewFlight(512)
	tr.SetFlight(fl, "")

	// The batched solver fits an undisturbed run into a single barrier;
	// the deterministic drop plan forces retransmission rounds so the kill
	// schedule at barriers 1 and 2 actually lands (engine-level faults are
	// seeded, so they do not perturb byte determinism).
	res, err := core.SolveLaplacianWith(g, b, 1e-8, core.RunOptions{
		Transport: tr, Trace: tracer, Faults: dropPlan(101),
	})
	rec := tr.Recovery()
	tr.Close()
	if err != nil {
		t.Fatalf("traced chaotic solve: %v", err)
	}
	if rec.Kills != 2 {
		t.Fatalf("scheduled 2 kills, executed %d (recovery %+v)", rec.Kills, rec)
	}

	var buf bytes.Buffer
	if err := tracer.WriteJSONL(&buf); err != nil {
		t.Fatalf("writing merged JSONL: %v", err)
	}
	return buf.String(), tracer, res.X, fl
}

// TestDistributedTraceDeterminism runs the traced chaos solve twice and
// requires the merged timelines to be byte-identical: worker subtree merge
// order is fixed (node index, then span open sequence), supervision marks
// carry no wall-clock or error text, and only committed barrier attempts
// contribute worker records.
func TestDistributedTraceDeterminism(t *testing.T) {
	j1, _, x1, _ := tracedChaosSolve(t)
	j2, _, x2, _ := tracedChaosSolve(t)
	for i := range x1 {
		if x1[i] != x2[i] {
			t.Fatalf("solutions diverge at %d across traced runs", i)
		}
	}
	if j1 != j2 {
		l1, l2 := strings.Split(j1, "\n"), strings.Split(j2, "\n")
		n := len(l1)
		if len(l2) < n {
			n = len(l2)
		}
		for i := 0; i < n; i++ {
			if l1[i] != l2[i] {
				t.Fatalf("merged JSONL diverges at line %d:\n  run1: %s\n  run2: %s\n(%d vs %d lines)",
					i+1, l1[i], l2[i], len(l1), len(l2))
			}
		}
		t.Fatalf("merged JSONL diverges in length: %d vs %d lines", len(l1), len(l2))
	}
	if err := trace.ValidateJSONL(strings.NewReader(j1)); err != nil {
		t.Fatalf("merged JSONL fails validation: %v", err)
	}

	// The merged timeline must contain every worker's subtree and the
	// supervision story of the kill schedule.
	for _, want := range []string{
		`"name":"node-0"`, `"name":"node-1"`, `"name":"node-2"`, `"name":"node-3"`,
		`"name":"chaos-kill"`, `"name":"mesh-teardown"`, `"name":"mesh-respawn"`,
		`"name":"barrier-failed"`, `"name":"replay"`, `"name":"replay-verified"`,
	} {
		if !strings.Contains(j1, want) {
			t.Fatalf("merged JSONL missing %s", want)
		}
	}
}

// TestDistributedTraceFlightRecorder checks the wall-clock side channel:
// the flight ring holds the kill/teardown/respawn/replay story with
// timestamps, its JSONL dump is schema-clean, and the deterministic trace
// plane never absorbed any of it.
func TestDistributedTraceFlightRecorder(t *testing.T) {
	_, _, _, fl := tracedChaosSolve(t)
	if fl.Len() == 0 {
		t.Fatal("flight recorder saw no transport events")
	}
	kinds := map[string]int{}
	for _, ev := range fl.Events() {
		kinds[ev.Kind]++
	}
	for _, want := range []string{"kill", "mesh-teardown", "mesh-respawn", "replay", "barrier-commit"} {
		if kinds[want] == 0 {
			t.Fatalf("flight recorder missing %q events (saw %v)", want, kinds)
		}
	}
	if kinds["kill"] != 2 {
		t.Fatalf("flight recorder saw %d kills, want 2 (%v)", kinds["kill"], kinds)
	}
	var buf bytes.Buffer
	if err := fl.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateFlightJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("flight JSONL fails validation: %v", err)
	}
}

// TestDistributedTraceLocalEquivalence compares the traced tcp run against
// a plain local traced run at the phase level: outside the node-%d worker
// subtrees, the two runs must attribute identical measured/charged rounds
// and messages to identical span paths — the observability mirror of the
// bit-identical-answers transport contract.
func TestDistributedTraceLocalEquivalence(t *testing.T) {
	g, err := graph.ConnectedGNM(48, 140, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1

	localTr := trace.New()
	localRes, err := core.SolveLaplacianWith(g, b, 1e-8, core.RunOptions{Trace: localTr, Faults: dropPlan(101)})
	if err != nil {
		t.Fatal(err)
	}

	_, meshTracer, x, _ := tracedChaosSolve(t)
	for i := range x {
		if x[i] != localRes.X[i] {
			t.Fatalf("traced tcp solution diverges from local at %d", i)
		}
	}

	type row struct {
		calls             int
		measured, charged int64
		messages          int64
	}
	phaseRows := func(tr *trace.Tracer) map[string]row {
		out := map[string]row{}
		for _, ph := range tr.Phases() {
			if strings.Contains(ph.Path, "node-") {
				continue
			}
			out[ph.Path] = row{ph.Calls, ph.MeasuredRounds, ph.ChargedRounds, ph.Messages}
		}
		return out
	}

	localRows, tcpRows := phaseRows(localTr), phaseRows(meshTracer)
	if len(localRows) == 0 {
		t.Fatal("local run attributed no phases")
	}
	for path, lr := range localRows {
		if tr, ok := tcpRows[path]; !ok {
			t.Fatalf("phase %q missing from the tcp run", path)
		} else if tr != lr {
			t.Fatalf("phase %q diverges: local %+v, tcp %+v", path, lr, tr)
		}
	}
	for path := range tcpRows {
		if _, ok := localRows[path]; !ok {
			t.Fatalf("tcp run has extra non-worker phase %q", path)
		}
	}
}
