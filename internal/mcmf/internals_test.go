package mcmf

import (
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/shortestpath"
)

func TestFindNegativeCycleSimple(t *testing.T) {
	// 0 -> 1 (2), 1 -> 2 (3), 2 -> 0 (-7): one negative cycle.
	adj := [][]shortestpath.Arc{
		{{To: 1, Weight: 2, ID: 0}},
		{{To: 2, Weight: 3, ID: 1}},
		{{To: 0, Weight: -7, ID: 2}},
	}
	cyc, err := findNegativeCycle(adj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(cyc) != 3 {
		t.Fatalf("cycle = %v, want all 3 arcs", cyc)
	}
	seen := map[int]bool{}
	for _, id := range cyc {
		seen[id] = true
	}
	if !seen[0] || !seen[1] || !seen[2] {
		t.Fatalf("cycle arcs = %v", cyc)
	}
}

func TestFindNegativeCycleNone(t *testing.T) {
	// Positive cycle and negative arcs without a negative cycle.
	adj := [][]shortestpath.Arc{
		{{To: 1, Weight: -5, ID: 0}},
		{{To: 2, Weight: 3, ID: 1}},
		{{To: 0, Weight: 3, ID: 2}},
	}
	cyc, err := findNegativeCycle(adj, 3)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != nil {
		t.Fatalf("found spurious cycle %v", cyc)
	}
}

func TestFindNegativeCycleZeroCycleIgnored(t *testing.T) {
	adj := [][]shortestpath.Arc{
		{{To: 1, Weight: 4, ID: 0}},
		{{To: 0, Weight: -4, ID: 1}},
	}
	cyc, err := findNegativeCycle(adj, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cyc != nil {
		t.Fatalf("zero-weight cycle reported negative: %v", cyc)
	}
}

// Property: on random graphs, any cycle returned has strictly negative
// total weight and is a genuine directed cycle.
func TestFindNegativeCycleProperty(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(10)
		adj := make([][]shortestpath.Arc, n)
		heads := map[int][2]int{} // arc id -> (from, to)
		weights := map[int]int64{}
		id := 0
		for v := 0; v < n; v++ {
			for k := 0; k < 2+rng.Intn(3); k++ {
				w := rng.Intn(n)
				if w == v {
					continue
				}
				wt := int64(rng.Intn(21) - 8)
				adj[v] = append(adj[v], shortestpath.Arc{To: w, Weight: wt, ID: id})
				heads[id] = [2]int{v, w}
				weights[id] = wt
				id++
			}
		}
		cyc, err := findNegativeCycle(adj, n)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if cyc == nil {
			continue
		}
		var total int64
		for _, a := range cyc {
			total += weights[a]
		}
		if total >= 0 {
			t.Fatalf("seed %d: returned cycle weight %d >= 0", seed, total)
		}
		// Arcs must chain into a closed directed walk.
		for i := range cyc {
			cur := heads[cyc[i]]
			next := heads[cyc[(i+1)%len(cyc)]]
			// cycle collected in predecessor order: arc into w precedes the
			// arc into w's predecessor; verify connectivity in either order.
			if cur[0] != next[1] && cur[1] != next[0] {
				t.Fatalf("seed %d: arcs %v do not chain", seed, cyc)
			}
		}
	}
}

func TestProgressMaintainsInvariants(t *testing.T) {
	dg, sigma := bipartiteInstance(6, 6, 3, 9, 5)
	l, err := newLifted(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	st := newCMSVState(l, Options{BudgetFactor: 2, SolveEps: 1e-10})
	res := &Result{}
	for iter := 0; iter < 10; iter++ {
		if err := st.progress(res); err != nil {
			t.Fatal(err)
		}
		// f > 0, s > 0 everywhere.
		for i := range st.f {
			if st.f[i] <= 0 || st.s[i] <= 0 {
				t.Fatalf("iter %d: f=%v s=%v at edge %d", iter, st.f[i], st.s[i], i)
			}
		}
		// Demands approximately satisfied: every Q vertex absorbs ~1.
		nb := l.nP + l.nQ
		sums := make([]float64, nb)
		for i := range st.f {
			u, q := l.ends(i)
			sums[u] += st.f[i]
			sums[q] += st.f[i]
		}
		for q := 0; q < l.nQ; q++ {
			if math.Abs(sums[l.nP+q]-1) > 1e-4 {
				t.Fatalf("iter %d: Q %d absorbs %v, want 1", iter, q, sums[l.nP+q])
			}
		}
	}
	if res.ProgressIterations != 10 {
		t.Fatalf("ProgressIterations = %d", res.ProgressIterations)
	}
}

func TestPerturbShiftsWeightsAndSlacks(t *testing.T) {
	dg, sigma := bipartiteInstance(4, 4, 2, 5, 9)
	l, err := newLifted(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	st := newCMSVState(l, Options{})
	// Fabricate a congested edge.
	st.rho[2] = 10
	sBefore := st.s[2]
	nuBefore := st.nu[2]
	res := &Result{}
	st.perturb(res)
	if res.Perturbations != 1 {
		t.Fatal("perturbation not counted")
	}
	if st.s[2] != 2*sBefore {
		t.Fatalf("slack %v, want doubled %v", st.s[2], 2*sBefore)
	}
	if st.nu[2] != 2*nuBefore {
		t.Fatalf("nu %v, want doubled %v", st.nu[2], 2*nuBefore)
	}
	if st.rho[2] != 0 {
		t.Fatal("treated edge should have rho reset")
	}
}

func TestDecodeRejectsAuxUsage(t *testing.T) {
	dg := graph.NewDi(2)
	dg.MustAddArc(0, 1, 1, 3)
	sigma := []int64{1, -1}
	l, err := newLifted(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Force a "matching" that uses an aux arc (if any exists).
	auxArc := -1
	for q := 0; q < l.nQ; q++ {
		if l.origArc[q] < 0 {
			auxArc = q
			break
		}
	}
	if auxArc < 0 {
		t.Skip("instance generated no aux arcs")
	}
	match := make([]int64, l.edges())
	match[2*auxArc] = 1
	if _, err := l.decode(match); err == nil {
		t.Fatal("aux usage should be rejected as infeasible")
	}
}
