package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestGenerateKinds(t *testing.T) {
	for _, kind := range []string{"regular", "grid", "complete"} {
		g, err := generate(kind, 30)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if g.N() < 30 {
			t.Fatalf("%s: n = %d < 30", kind, g.N())
		}
		if !g.IsConnected() {
			t.Fatalf("%s: disconnected", kind)
		}
	}
	if _, err := generate("nope", 10); err == nil {
		t.Fatal("unknown generator accepted")
	}
}

func TestReadGraphFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "edges.txt")
	if err := os.WriteFile(path, []byte("# test\n0 1 2\n1 2\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	g, err := readGraph(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if _, err := readGraph(filepath.Join(dir, "missing.txt")); err == nil {
		t.Fatal("missing file accepted")
	}
}
