// Spectral sparsification (Theorem 3.3): build the deterministic sparsifier
// of a dense graph, measure its approximation factor against the exact
// dense oracle, and compare with the randomized effective-resistance
// sampler of the paper's closing remark.
//
//	go run ./examples/sparsifier
package main

import (
	"fmt"
	"os"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sparsifier:", err)
		os.Exit(1)
	}
}

func run() error {
	g := graph.Complete(96)
	fmt.Printf("input: K%d with %d edges\n\n", g.N(), g.M())

	detLed := rounds.New()
	det, err := sparsify.Sparsify(g, sparsify.Options{Ledger: detLed})
	if err != nil {
		return err
	}
	detAlpha, err := sparsify.MeasureAlpha(g, det.H, 200)
	if err != nil {
		return err
	}
	fmt.Printf("deterministic (Thm 3.3):  %5d edges, alpha = %.2f, %d rounds (%d levels, %d parts)\n",
		det.H.M(), detAlpha, detLed.Total(), det.Levels, det.Parts)

	rndLed := rounds.New()
	rnd, err := sparsify.RandomizedSparsify(g, sparsify.RandomOptions{Seed: 1, Ledger: rndLed})
	if err != nil {
		return err
	}
	rndAlpha, err := sparsify.MeasureAlpha(g, rnd.H, 200)
	if err != nil {
		return err
	}
	fmt.Printf("randomized ([FV22] remark):%4d edges, alpha = %.2f, %d rounds\n",
		rnd.H.M(), rndAlpha, rndLed.Total())

	// Ground-truth the deterministic alpha with the dense pencil oracle.
	exact, err := linalg.PencilEigenDense(
		linalg.NewLaplacian(g).Dense(), linalg.NewLaplacian(det.H).Dense(), 1e-10)
	if err != nil {
		return err
	}
	fmt.Printf("\nexact pencil spectrum of the deterministic sparsifier: [%.4f, %.4f]\n",
		exact[0], exact[len(exact)-1])
	fmt.Printf("=> solving with it costs sqrt(kappa)=%.1fx more Chebyshev iterations than exact preconditioning\n",
		detAlpha)
	fmt.Println("\nthe sparsifier is what every clique node holds; its size is what makes the")
	fmt.Println("Theorem 1.1 preconditioner solves free (internal) in the congested clique.")
	return nil
}
