// Package rounds provides the round-cost accounting for the congested
// clique reproduction.
//
// The congested clique charges one round per synchronous communication step;
// local computation is free. Two kinds of costs flow into a Ledger:
//
//   - measured costs: rounds actually executed by the message-passing
//     simulator in internal/cc (broadcasts, routing, cycle contraction);
//   - charged costs: rounds for subroutines the paper uses as cited black
//     boxes (e.g. the O(n^0.158) APSP of CKKL+19, the CS20 expander
//     decomposition), whose distributed implementations are out of scope for
//     any reproduction. Each charge carries a citation tag so experiment
//     reports can separate the two.
package rounds

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"time"
)

// Kind distinguishes measured from charged costs.
type Kind int

// Kinds of ledger entries.
const (
	// Measured marks rounds actually executed by the simulator.
	Measured Kind = iota + 1
	// Charged marks rounds charged per a cited theorem.
	Charged
)

// String returns "measured" or "charged".
func (k Kind) String() string {
	switch k {
	case Measured:
		return "measured"
	case Charged:
		return "charged"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Entry aggregates all costs recorded under one tag.
type Entry struct {
	Tag    string
	Kind   Kind
	Rounds int64
	Calls  int64
	Cite   string
}

// Sink receives every cost the moment it is recorded in a Ledger, before
// aggregation collapses it into per-tag entries. It is the hook that lets a
// tracer (internal/trace) attribute rounds to the algorithm phase that was
// active when they were spent. Implementations must be safe for concurrent
// use and must not call back into the Ledger.
type Sink interface {
	RoundCost(tag string, kind Kind, r int64)
}

// TrafficSink is optionally implemented by a Sink that also wants
// link-traffic counters (message and payload-word counts) from the
// simulator's routing primitives. Traffic is observational only: it never
// changes the ledger's round totals.
type TrafficSink interface {
	LinkTraffic(tag string, messages, words int64)
}

// Ledger accumulates round costs. The zero value is not usable; call New.
// A Ledger is safe for concurrent use.
type Ledger struct {
	mu      sync.Mutex
	entries map[string]*Entry
	order   []string
	sink    Sink
	err     error
	debug   bool
}

// New returns an empty ledger.
func New() *Ledger {
	return &Ledger{entries: make(map[string]*Entry)}
}

// ErrNegativeCharge reports an Add call with a negative round count.
var ErrNegativeCharge = errors.New("rounds: negative charge")

// ErrKindConflict reports a tag re-registered with a different Kind:
// silently merging measured and charged rounds under one tag would corrupt
// the measured/charged split the ledger exists to report.
var ErrKindConflict = errors.New("rounds: tag re-registered with a different kind")

// Add records r rounds under the given tag. The cite string documents the
// source of a Charged formula (ignored for Measured entries after first
// use). Negative r and re-registering an existing tag with a different Kind
// are programming errors: the offending record is discarded and the first
// such error is retained for Ledger.Err, so library callers can surface it
// without crashing. SetDebug(true) restores the old fail-fast panic for
// tests and development.
func (l *Ledger) Add(tag string, kind Kind, r int64, cite string) {
	if r < 0 {
		l.fail(fmt.Errorf("%w: %d for %q", ErrNegativeCharge, r, tag))
		return
	}
	l.mu.Lock()
	e, ok := l.entries[tag]
	if !ok {
		e = &Entry{Tag: tag, Kind: kind, Cite: cite}
		l.entries[tag] = e
		l.order = append(l.order, tag)
	} else if e.Kind != kind {
		l.mu.Unlock()
		l.fail(fmt.Errorf("%w: tag %q added as %v, was recorded as %v", ErrKindConflict, tag, kind, e.Kind))
		return
	}
	e.Rounds += r
	e.Calls++
	sink := l.sink
	l.mu.Unlock()
	// The sink runs outside the ledger lock so a slow sink cannot serialize
	// concurrent Add calls and a sink is free to take its own locks.
	if sink != nil {
		sink.RoundCost(tag, kind, r)
	}
}

// fail records (or, in debug mode, panics on) an accounting error. Only the
// first error is kept — later ones are usually cascades of the first.
func (l *Ledger) fail(err error) {
	l.mu.Lock()
	debug := l.debug
	if l.err == nil {
		l.err = err
	}
	l.mu.Unlock()
	if debug {
		panic(err.Error())
	}
}

// Err returns the first accounting error recorded by Add (nil when the
// ledger is consistent). Callers that accumulate costs across a whole solver
// run check it once at the end rather than wrapping every Add.
func (l *Ledger) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// SetDebug switches accounting errors from the recorded-error path to an
// immediate panic, restoring fail-fast behavior for tests and development.
func (l *Ledger) SetDebug(debug bool) {
	l.mu.Lock()
	l.debug = debug
	l.mu.Unlock()
}

// SetSink installs (or, with nil, removes) the sink notified on every Add.
// The sink sees costs after they are committed to the ledger.
func (l *Ledger) SetSink(s Sink) {
	l.mu.Lock()
	l.sink = s
	l.mu.Unlock()
}

// AttachSink installs s alongside any sink already present, composing
// rather than replacing: a tracer and a metrics mirror can both observe one
// ledger. Attaching is idempotent — re-attaching a sink that is already
// installed (directly or as a member of the composite) is a no-op, so
// solver constructors may attach unconditionally without double-counting.
// A nil s is ignored.
func (l *Ledger) AttachSink(s Sink) {
	if s == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	switch cur := l.sink.(type) {
	case nil:
		l.sink = s
	case *multiSink:
		l.sink = cur.with(s)
	default:
		if cur == s {
			return
		}
		l.sink = (&multiSink{members: []Sink{cur}}).with(s)
	}
}

// multiSink fans one ledger's cost stream out to several sinks. It is
// immutable after construction (AttachSink builds a new one to grow it), so
// Add can call it outside the ledger lock like any other sink.
type multiSink struct {
	members []Sink
}

// with returns m extended by s, or m itself if s is already a member.
func (m *multiSink) with(s Sink) *multiSink {
	for _, have := range m.members {
		if have == s {
			return m
		}
	}
	grown := make([]Sink, 0, len(m.members)+1)
	grown = append(grown, m.members...)
	grown = append(grown, s)
	return &multiSink{members: grown}
}

// RoundCost implements Sink.
func (m *multiSink) RoundCost(tag string, kind Kind, r int64) {
	for _, s := range m.members {
		s.RoundCost(tag, kind, r)
	}
}

// LinkTraffic implements TrafficSink, forwarding to the members that care.
func (m *multiSink) LinkTraffic(tag string, messages, words int64) {
	for _, s := range m.members {
		if ts, ok := s.(TrafficSink); ok {
			ts.LinkTraffic(tag, messages, words)
		}
	}
}

// HasSink reports whether a sink is installed; callers use it to skip
// computing observational statistics nobody will consume.
func (l *Ledger) HasSink() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sink != nil
}

// AddTraffic forwards link-traffic counters to the installed sink if it
// implements TrafficSink. Ledger state is unchanged: traffic is not rounds.
func (l *Ledger) AddTraffic(tag string, messages, words int64) {
	l.mu.Lock()
	sink := l.sink
	l.mu.Unlock()
	if ts, ok := sink.(TrafficSink); ok {
		ts.LinkTraffic(tag, messages, words)
	}
}

// Total returns the sum of all recorded rounds.
func (l *Ledger) Total() int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for _, e := range l.entries {
		t += e.Rounds
	}
	return t
}

// TotalOf returns the sum of rounds of the given kind.
func (l *Ledger) TotalOf(kind Kind) int64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	var t int64
	for _, e := range l.entries {
		if e.Kind == kind {
			t += e.Rounds
		}
	}
	return t
}

// Entries returns a copy of all entries in first-recorded order.
func (l *Ledger) Entries() []Entry {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Entry, 0, len(l.order))
	for _, tag := range l.order {
		out = append(out, *l.entries[tag])
	}
	return out
}

// Report renders a human-readable multi-line summary, entries sorted by
// descending round count. The header totals and the rows are computed from
// one atomic snapshot, so a report rendered during concurrent Add calls is
// internally consistent (the header always equals the sum of its rows).
func (l *Ledger) Report() string {
	es := l.Entries()
	sort.Slice(es, func(i, j int) bool { return es[i].Rounds > es[j].Rounds })
	var total, measured, charged int64
	for _, e := range es {
		total += e.Rounds
		switch e.Kind {
		case Measured:
			measured += e.Rounds
		case Charged:
			charged += e.Rounds
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "total rounds: %d (measured %d, charged %d)\n",
		total, measured, charged)
	for _, e := range es {
		fmt.Fprintf(&b, "  %-28s %10d rounds  %6d calls  [%s] %s\n",
			e.Tag, e.Rounds, e.Calls, e.Kind, e.Cite)
	}
	return b.String()
}

// Reset clears the ledger.
func (l *Ledger) Reset() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = make(map[string]*Entry)
	l.order = nil
}

// Stats is the shared round-accounting shape embedded in every solver
// result (maxflow.Result, mcmf.Result, euler.Stats, lapsolver.Stats), so
// callers read round costs the same way across the whole algorithm stack.
type Stats struct {
	// MeasuredRounds is the number of simulator-executed rounds the call
	// added to its ledger.
	MeasuredRounds int64
	// ChargedRounds is the number of cited black-box rounds the call added
	// to its ledger.
	ChargedRounds int64
	// WallTime is the wall-clock duration of the call.
	WallTime time.Duration
	// Spans is the number of trace spans the call recorded (zero when no
	// tracer was attached).
	Spans int
}

// TotalRounds returns MeasuredRounds + ChargedRounds.
func (s Stats) TotalRounds() int64 { return s.MeasuredRounds + s.ChargedRounds }

// Snapshot captures a ledger's totals at one instant so the delta a call
// contributed can be computed on return; see Snap.
type Snapshot struct {
	l        *Ledger
	measured int64
	charged  int64
	start    time.Time
}

// Snap starts a Stats measurement against l (which may be nil: the round
// deltas then stay zero and only WallTime is filled).
func Snap(l *Ledger) Snapshot {
	s := Snapshot{l: l, start: time.Now()}
	if l != nil {
		s.measured = l.TotalOf(Measured)
		s.charged = l.TotalOf(Charged)
	}
	return s
}

// Stats returns the ledger and wall-clock deltas since Snap.
func (s Snapshot) Stats() Stats {
	st := Stats{WallTime: time.Since(s.start)}
	if s.l != nil {
		st.MeasuredRounds = s.l.TotalOf(Measured) - s.measured
		st.ChargedRounds = s.l.TotalOf(Charged) - s.charged
	}
	return st
}

// Cost formulas for cited subroutines. Constants are the smallest the cited
// statements support; EXPERIMENTS.md reports them alongside results.

// APSPRounds returns the round cost of one (1+o(1))-approximate weighted
// directed APSP in the congested clique: O(n^0.158) per Censor-Hillel,
// Kaski, Korhonen, Lenzen, Paz, Suomela [CKKL+19].
func APSPRounds(n int) int64 {
	if n <= 1 {
		return 1
	}
	return int64(math.Ceil(math.Pow(float64(n), 0.158)))
}

// CiteAPSP is the citation string for APSPRounds charges.
const CiteAPSP = "CKKL+19 approx APSP, O(n^0.158)"

// LenzenRoundBound is the constant-round bound for delivering any message
// set in which every node sends and receives at most n messages (Lenzen's
// routing theorem); the paper charges 16 rounds per invocation.
const LenzenRoundBound = 16

// CiteLenzen is the citation string for Lenzen routing charges.
const CiteLenzen = "Len13 deterministic routing, <= 16 rounds"

// ExpanderDecompRounds returns the round cost of one (eps, phi)-expander
// decomposition per Chang-Saranurak [CS20]: eps^{-O(1)} * n^{O(gamma)}
// deterministic rounds. We instantiate the O(1) exponents at 2 and 1, the
// smallest the theorem statement supports.
func ExpanderDecompRounds(n int, eps, gamma float64) int64 {
	if n <= 1 {
		return 1
	}
	r := math.Pow(eps, -2) * math.Pow(float64(n), gamma)
	return int64(math.Ceil(r))
}

// CiteCS20 is the citation string for expander decomposition charges.
const CiteCS20 = "CS20 deterministic expander decomposition"

// TrivialGatherRounds returns the round count of the trivial deterministic
// algorithm of section 1.1: make all m edges (with log U-bit capacities)
// global and solve internally. Each edge description is
// O(log n + log U) bits = O(1 + log U / log n) machine words; the clique
// moves n(n-1) words per round.
func TrivialGatherRounds(n, m int, maxWeight int64) int64 {
	if n <= 1 {
		return 0
	}
	wordsPerEdge := 1 + int64(math.Ceil(bitsOf(maxWeight)/math.Log2(float64(n)+1)))
	totalWords := int64(m) * wordsPerEdge
	perRound := int64(n) * int64(n-1)
	r := (totalWords + perRound - 1) / perRound
	if r < 1 {
		r = 1
	}
	return r
}

// CiteTrivial is the citation string for the trivial gather baseline.
const CiteTrivial = "trivial gather-all baseline, O(n log U)"

// FordFulkersonRounds returns the round count of the Ford-Fulkerson baseline
// of section 1.1: |f*| iterations of s-t reachability at O(n^0.158) rounds
// each (via CKKL+19).
func FordFulkersonRounds(flowValue int64, n int) int64 {
	return flowValue * APSPRounds(n)
}

// CiteFF is the citation string for the Ford-Fulkerson baseline.
const CiteFF = "FF56 + CKKL+19 reachability, O(|f*| n^0.158)"

func bitsOf(v int64) float64 {
	if v <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(v) + 1))
}

// LogStar returns the iterated logarithm log* n (base 2): the number of
// times log2 must be applied before the value drops to <= 1. It appears in
// the Cole-Vishkin bound of Theorem 1.4.
func LogStar(n int) int {
	count := 0
	x := float64(n)
	for x > 1 {
		x = math.Log2(x)
		count++
		if count > 8 { // log* of anything representable is < 6
			break
		}
	}
	return count
}

// Related-work round formulas for the section 1.1 comparison (experiment
// E9). These are the *claimed* complexities of the cited algorithms,
// instantiated with explicit constants of 1 and log base 2 — the comparison
// is between growth laws, exactly as the paper argues.

// CongestMaxFlowRounds is the FGLP+21 CONGEST max flow bound
// m^{3/7} U^{1/7} (n^{o(1)}(sqrt(n)+D) + sqrt(n) D^{1/4}) + sqrt(m),
// with the n^{o(1)} factor instantiated as log^2 n.
func CongestMaxFlowRounds(n, m int, maxCap int64, diameter int) int64 {
	fn := float64(n)
	fm := float64(m)
	d := float64(diameter)
	iters := math.Pow(fm, 3.0/7.0) * math.Pow(float64(maxCap), 1.0/7.0)
	perIter := math.Pow(math.Log2(fn+2), 2)*(math.Sqrt(fn)+d) + math.Sqrt(fn)*math.Pow(d, 0.25)
	return int64(math.Ceil(iters*perIter + math.Sqrt(fm)))
}

// CiteCongestMaxFlow is the citation for CongestMaxFlowRounds.
const CiteCongestMaxFlow = "FGLP+21 CONGEST max flow"

// CongestMinCostFlowRounds is the FGLP+21 CONGEST unit-capacity min-cost
// flow bound m^{3/7+o(1)} (sqrt(n) D^{1/4} + D) polylog W, with o(1) and
// polylog instantiated as log^2.
func CongestMinCostFlowRounds(n, m int, maxCost int64, diameter int) int64 {
	fn := float64(n)
	fm := float64(m)
	d := float64(diameter)
	iters := math.Pow(fm, 3.0/7.0) * math.Pow(math.Log2(fm+2), 2)
	perIter := (math.Sqrt(fn)*math.Pow(d, 0.25) + d) * math.Pow(math.Log2(float64(maxCost)+2), 2)
	return int64(math.Ceil(iters * perIter))
}

// CiteCongestMinCostFlow is the citation for CongestMinCostFlowRounds.
const CiteCongestMinCostFlow = "FGLP+21 CONGEST min-cost flow"

// BCCMinCostFlowRounds is the FV22 Broadcast Congested Clique min-cost
// flow bound Õ(sqrt(n)), with the hidden polylog instantiated as log^2 n.
// (Randomized; the paper's §1.1 notes it beats the clique algorithms on
// sufficiently dense graphs.)
func BCCMinCostFlowRounds(n int) int64 {
	fn := float64(n)
	return int64(math.Ceil(math.Sqrt(fn) * math.Pow(math.Log2(fn+2), 2)))
}

// CiteBCCMinCostFlow is the citation for BCCMinCostFlowRounds.
const CiteBCCMinCostFlow = "FV22 BCC min-cost flow, Õ(sqrt n) randomized"

// CongestLaplacianRounds is the FGLP+21 CONGEST Laplacian solver bound
// n^{o(1)} (sqrt(n) + D) log(1/eps), o(1) as log^2 n.
func CongestLaplacianRounds(n, diameter int, eps float64) int64 {
	fn := float64(n)
	return int64(math.Ceil(math.Pow(math.Log2(fn+2), 2) * (math.Sqrt(fn) + float64(diameter)) * math.Log2(1/eps+2)))
}

// CiteCongestLaplacian is the citation for CongestLaplacianRounds.
const CiteCongestLaplacian = "FGLP+21 CONGEST Laplacian solver"
