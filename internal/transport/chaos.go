package transport

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ChaosPlan describes a deterministic socket-level fault schedule for the
// multi-process TCP backend: the layer *below* the transport, complementing
// cc.FaultPlan which injects *above* it. Where a FaultPlan decides the fate
// of logical messages the engine already received, a ChaosPlan attacks the
// machinery that moves the bytes — mesh connections are reset mid-stream,
// frame writes are fragmented or stalled, and whole worker processes are
// killed at chosen barriers. The supervised coordinator
// (internal/transport/tcp with Options.Supervise) must recover from all of
// it with bit-identical output, which is what the chaos differential suites
// assert.
//
// Every decision is a pure function of (Seed, epoch, connection endpoints,
// write index) in the splitmix64 idiom of cc.FaultPlan, so a plan replays
// identically across runs. The epoch — the coordinator's mesh incarnation
// counter, incremented on every supervised restart — is mixed in so a
// respawned mesh does not deterministically re-trigger the reset that
// killed its predecessor; connection resets additionally fire only in
// epochs below ResetEpochs (default 1), guaranteeing the run converges.
type ChaosPlan struct {
	// Seed drives every injection decision. Two plans with equal rates and
	// seeds inject exactly the same faults.
	Seed uint64
	// Reset, Partial, Stall are per-frame-write fault probabilities in
	// [0, 1]. At most one applies to a write; when the rates sum past 1 the
	// plan is invalid. Precedence of the single uniform draw: reset, then
	// partial, then stall.
	//
	// Reset closes the connection under the writer mid-protocol (the far
	// side observes ECONNRESET/EOF). Partial fragments the write into two
	// socket writes, exercising the reader's reassembly. Stall delays the
	// write by StallDelay, exercising acknowledgement timeouts and the
	// retransmission path.
	Reset   float64
	Partial float64
	Stall   float64
	// StallDelay is how long a stalled write waits (default 5ms).
	StallDelay time.Duration
	// ResetEpochs bounds reset injection to mesh epochs < ResetEpochs
	// (default 1: only the first incarnation is reset). Without a bound a
	// reset rate would collapse every respawned mesh too and the run could
	// never converge.
	ResetEpochs int
	// Kills schedules worker-process kills: before dispatching barrier
	// Kill.Barrier, the supervisor SIGKILLs worker Kill.Proc (in-process
	// workers have their coordinator connection severed instead). Each
	// entry fires exactly once.
	Kills []Kill
}

// Kill schedules the death of one worker process immediately before the
// coordinator dispatches the given barrier.
type Kill struct {
	Barrier uint64
	Proc    int
}

// ErrBadChaosPlan reports an invalid chaos plan.
var ErrBadChaosPlan = errors.New("transport: invalid chaos plan")

// ErrChaosReset is returned by a chaos-wrapped connection whose write was
// chosen for a reset; the connection is closed before the error returns.
var ErrChaosReset = errors.New("transport: chaos-injected connection reset")

// Validate checks the plan's rates and kill schedule.
func (p *ChaosPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range [...]float64{p.Reset, p.Partial, p.Stall} {
		if r < 0 || r > 1 || r != r {
			return fmt.Errorf("%w: rate %v outside [0,1]", ErrBadChaosPlan, r)
		}
	}
	if sum := p.Reset + p.Partial + p.Stall; sum > 1 {
		return fmt.Errorf("%w: rates sum to %v > 1", ErrBadChaosPlan, sum)
	}
	if p.StallDelay < 0 {
		return fmt.Errorf("%w: StallDelay %v", ErrBadChaosPlan, p.StallDelay)
	}
	if p.ResetEpochs < 0 {
		return fmt.Errorf("%w: ResetEpochs %d", ErrBadChaosPlan, p.ResetEpochs)
	}
	for _, k := range p.Kills {
		if k.Proc < 0 {
			return fmt.Errorf("%w: kill %+v", ErrBadChaosPlan, k)
		}
	}
	return nil
}

func (p *ChaosPlan) stallDelay() time.Duration {
	if p.StallDelay > 0 {
		return p.StallDelay
	}
	return 5 * time.Millisecond
}

func (p *ChaosPlan) resetEpochs() int {
	if p.ResetEpochs > 0 {
		return p.ResetEpochs
	}
	return 1
}

// KillsAt returns the workers scheduled to die before the given barrier, in
// ascending order.
func (p *ChaosPlan) KillsAt(barrier uint64) []int {
	if p == nil {
		return nil
	}
	var procs []int
	for _, k := range p.Kills {
		if k.Barrier == barrier {
			procs = append(procs, k.Proc)
		}
	}
	sort.Ints(procs)
	return procs
}

// HasWriteFaults reports whether the plan injects at the write level (so
// callers can skip wrapping connections for a kill-only plan).
func (p *ChaosPlan) HasWriteFaults() bool {
	return p != nil && (p.Reset > 0 || p.Partial > 0 || p.Stall > 0)
}

// splitmix64 is the finalizer of the SplitMix64 generator — the same
// bijective mixer cc.FaultPlan uses, so chaos decisions inherit its
// statistical quality and its replayability.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// draw returns a uniform value in [0, 1) for one write decision.
func (p *ChaosPlan) draw(epoch uint64, self, peer int32, write uint64) float64 {
	h := splitmix64(p.Seed ^ 0x7c3a9d1e5b82f604)
	h = splitmix64(h ^ epoch)
	h = splitmix64(h ^ uint64(uint32(self))<<32 ^ uint64(uint32(peer)))
	h = splitmix64(h ^ write)
	return float64(h>>11) / float64(1<<53)
}

// chaosAction is the fate of one write.
type chaosAction uint8

const (
	chaosNone chaosAction = iota
	chaosReset
	chaosPartial
	chaosStall
)

// action decides the fate of the write-th frame write on the (self, peer)
// connection in the given mesh epoch.
func (p *ChaosPlan) action(epoch uint64, self, peer int32, write uint64) chaosAction {
	u := p.draw(epoch, self, peer, write)
	if u < p.Reset {
		if int(epoch) < p.resetEpochs() {
			return chaosReset
		}
		return chaosNone
	}
	u -= p.Reset
	if u < p.Partial {
		return chaosPartial
	}
	u -= p.Partial
	if u < p.Stall {
		return chaosStall
	}
	return chaosNone
}

// Process-wide injection counters, incremented as chaosConn executes each
// fate. With in-process workers (the default for lapccd and the test
// harnesses) every mesh connection lives in this process, so the counters
// see the whole clique; with -transport tcp,bin=1 each worker counts its
// own injections and the coordinator's figures cover only its side.
var (
	chaosResets   atomic.Uint64
	chaosPartials atomic.Uint64
	chaosStalls   atomic.Uint64
)

// ChaosCounters returns the number of connection resets, fragmented
// writes, and stalled writes this process has injected since start.
func ChaosCounters() (resets, partials, stalls uint64) {
	return chaosResets.Load(), chaosPartials.Load(), chaosStalls.Load()
}

// chaosConn injects the plan's write-level faults on one connection. Reads
// pass through untouched: a reset injected by the writer side surfaces on
// the peer as a genuine connection error.
type chaosConn struct {
	net.Conn
	plan       *ChaosPlan
	epoch      uint64
	self, peer int32

	mu    sync.Mutex
	write uint64
}

// WrapConn returns conn with the plan's write-level faults injected, keyed
// by (epoch, self, peer). A nil plan or one without write faults returns
// conn unchanged.
func (p *ChaosPlan) WrapConn(conn net.Conn, epoch uint64, self, peer int32) net.Conn {
	if !p.HasWriteFaults() {
		return conn
	}
	return &chaosConn{Conn: conn, plan: p, epoch: epoch, self: self, peer: peer}
}

func (c *chaosConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	idx := c.write
	c.write++
	c.mu.Unlock()
	switch c.plan.action(c.epoch, c.self, c.peer, idx) {
	case chaosReset:
		chaosResets.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("%w (conn %d->%d, epoch %d, write %d)",
			ErrChaosReset, c.self, c.peer, c.epoch, idx)
	case chaosPartial:
		chaosPartials.Add(1)
		if len(b) > 1 {
			half := len(b) / 2
			n, err := c.Conn.Write(b[:half])
			if err != nil {
				return n, err
			}
			m, err := c.Conn.Write(b[half:])
			return n + m, err
		}
	case chaosStall:
		chaosStalls.Add(1)
		time.Sleep(c.plan.stallDelay())
	}
	return c.Conn.Write(b)
}

// ParseChaosPlan parses the -chaos flag syntax: comma-separated key=value
// pairs.
//
//	seed=7,reset=0.002,partial=0.05,stall=0.01,stalldelay=5ms,epochs=1,kill=6:1,kill=20:2
//
// kill=B:P kills worker P before barrier B and may repeat. An empty spec
// returns (nil, nil).
func ParseChaosPlan(spec string) (*ChaosPlan, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	p := &ChaosPlan{}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return nil, fmt.Errorf("%w: malformed option %q (want key=value)", ErrBadChaosPlan, kv)
		}
		var err error
		switch k {
		case "seed":
			p.Seed, err = strconv.ParseUint(v, 10, 64)
		case "reset":
			p.Reset, err = strconv.ParseFloat(v, 64)
		case "partial":
			p.Partial, err = strconv.ParseFloat(v, 64)
		case "stall":
			p.Stall, err = strconv.ParseFloat(v, 64)
		case "stalldelay":
			p.StallDelay, err = time.ParseDuration(v)
		case "epochs":
			p.ResetEpochs, err = strconv.Atoi(v)
		case "kill":
			b, pr, ok := strings.Cut(v, ":")
			if !ok {
				return nil, fmt.Errorf("%w: kill %q (want barrier:proc)", ErrBadChaosPlan, v)
			}
			var kill Kill
			kill.Barrier, err = strconv.ParseUint(b, 10, 64)
			if err == nil {
				kill.Proc, err = strconv.Atoi(pr)
			}
			p.Kills = append(p.Kills, kill)
		default:
			return nil, fmt.Errorf("%w: unknown option %q", ErrBadChaosPlan, k)
		}
		if err != nil {
			return nil, fmt.Errorf("%w: bad %s value %q: %v", ErrBadChaosPlan, k, v, err)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the plan in ParseChaosPlan syntax (the canonical form: the
// coordinator uses it to hand the plan to spawned worker processes).
func (p *ChaosPlan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	add := func(s string) { parts = append(parts, s) }
	add("seed=" + strconv.FormatUint(p.Seed, 10))
	if p.Reset > 0 {
		add("reset=" + strconv.FormatFloat(p.Reset, 'g', -1, 64))
	}
	if p.Partial > 0 {
		add("partial=" + strconv.FormatFloat(p.Partial, 'g', -1, 64))
	}
	if p.Stall > 0 {
		add("stall=" + strconv.FormatFloat(p.Stall, 'g', -1, 64))
	}
	if p.StallDelay > 0 {
		add("stalldelay=" + p.StallDelay.String())
	}
	if p.ResetEpochs > 0 {
		add("epochs=" + strconv.Itoa(p.ResetEpochs))
	}
	for _, k := range p.Kills {
		add(fmt.Sprintf("kill=%d:%d", k.Barrier, k.Proc))
	}
	return strings.Join(parts, ",")
}
