package lapsolver

import (
	"errors"
	"strings"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// TestSolveBudgetExhaustion: a tiny round budget must abort the kappa loop
// with the typed error carrying partial stats, never run it unbounded.
func TestSolveBudgetExhaustion(t *testing.T) {
	g, err := graph.ConnectedGNM(48, 140, 17)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	s, err := NewSolver(g, Options{Ledger: led, Budget: rounds.NewBudget(1, 0)})
	if err != nil {
		t.Fatal(err)
	}
	// Construction already spends rounds, so the 1-round budget is exhausted
	// before the first attempt.
	_, stats, err := s.Solve(meanFreeVec(48, 3), 1e-6)
	if !errors.Is(err, rounds.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *rounds.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if be.Phase != "lapsolve-attempt-1" {
		t.Fatalf("exhausted at %q, want the first attempt boundary", be.Phase)
	}
	if stats.Attempts != 0 {
		t.Fatalf("ran %d attempts past an exhausted budget", stats.Attempts)
	}
}

// TestSolveBudgetAllowsCompletion: a generous budget must not perturb the
// result at all.
func TestSolveBudgetAllowsCompletion(t *testing.T) {
	g, err := graph.ConnectedGNM(32, 90, 19)
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(32, 5)
	sFree, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := sFree.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	sBud, err := NewSolver(g, Options{Ledger: led, Budget: rounds.NewBudget(1_000_000, 0)})
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := sBud.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("budgeted solve diverged at %d: %v != %v", i, got[i], want[i])
		}
	}
}

// TestSolveEscalatesToDenseFallback: a hopelessly loose internal tolerance
// floors every iterative attempt; the ladder must first tighten, then hand
// the solve to the exact dense path — and the answer must still certify
// against the reference solution.
func TestSolveEscalatesToDenseFallback(t *testing.T) {
	g, err := graph.ConnectedGNM(40, 120, 23)
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(40, 7)
	led := rounds.New()
	tr := trace.New()
	s, err := NewSolver(g, Options{
		Ledger:      led,
		Trace:       tr,
		InternalTol: 1e-2, // sloppy inner solves: iterative attempts floor out
		MaxKappa:    16,   // small cap: reach the ladder quickly
	})
	if err != nil {
		t.Fatal(err)
	}
	x, stats, err := s.Solve(b, 1e-9)
	if err != nil {
		t.Fatalf("ladder failed to recover: %v", err)
	}
	if !stats.DenseFallback {
		t.Fatalf("expected the dense fallback, stats %+v", stats)
	}
	if stats.Escalations < 2 {
		t.Fatalf("escalations %d, want tighten + dense", stats.Escalations)
	}
	// The dense fallback must be exact: compare against the reference solve.
	want, err := linalg.LaplacianPseudoSolve(linalg.NewLaplacian(g).Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Clone()
	diff.AXPY(-1, want)
	if rel := diff.Norm2() / want.Norm2(); rel > 1e-10 {
		t.Fatalf("dense fallback inexact: relative error %v", rel)
	}
	// The gather cost of the fallback is charged, and the spans are visible.
	tags := map[string]bool{}
	for _, e := range led.Entries() {
		tags[e.Tag] = true
	}
	if !tags["lapsolve-dense-gather"] {
		t.Fatalf("dense gather not charged: %v", tags)
	}
	var sawTighten, sawDense bool
	for _, ph := range tr.Phases() {
		if strings.Contains(ph.Path, "escalate-tighten") {
			sawTighten = true
		}
		if strings.Contains(ph.Path, "escalate-dense") {
			sawDense = true
		}
	}
	if !sawTighten || !sawDense {
		t.Fatalf("escalation spans missing: tighten=%v dense=%v", sawTighten, sawDense)
	}
}

// TestSolveNoEscalationPinsHistoricalFailure: with the ladder disabled the
// kappa cap is a hard error, as it always was.
func TestSolveNoEscalationPinsHistoricalFailure(t *testing.T) {
	g, err := graph.ConnectedGNM(40, 120, 23)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{
		InternalTol:  1e-2,
		MaxKappa:     16,
		NoEscalation: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(meanFreeVec(40, 7), 1e-9); err == nil {
		t.Fatal("NoEscalation solve succeeded where the iterative path cannot")
	}
}
