package cc

import (
	"testing"

	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
)

// counterValue reads a counter's current value from a snapshot-independent
// lookup (the registry returns the same instrument it recorded into).
func counterValue(reg *metrics.Registry, name string, labels ...string) int64 {
	return reg.Counter(name, "", labels...).Value()
}

func TestEngineMetricsPerRound(t *testing.T) {
	const n, rounds = 16, 4
	reg := metrics.NewRegistry()
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetMetrics(reg)
	got, err := e.Run(broadcastStyleStep(n, rounds), rounds+1)
	if err != nil {
		t.Fatal(err)
	}
	if v := counterValue(reg, "lapcc_engine_rounds_total"); v != got {
		t.Fatalf("rounds_total = %d, want %d", v, got)
	}
	wantMsgs := int64(rounds * n * (n - 1))
	if v := counterValue(reg, "lapcc_engine_messages_total"); v != wantMsgs {
		t.Fatalf("messages_total = %d, want %d", v, wantMsgs)
	}
	// broadcastStyleStep sends 3-word payloads.
	if v := counterValue(reg, "lapcc_engine_words_total"); v != 3*wantMsgs {
		t.Fatalf("words_total = %d, want %d", v, 3*wantMsgs)
	}
	h := reg.Histogram("lapcc_engine_round_messages", "")
	if h.Count() != got {
		t.Fatalf("round_messages histogram count = %d, want %d", h.Count(), got)
	}
	if h.Sum() != wantMsgs {
		t.Fatalf("round_messages histogram sum = %d, want %d", h.Sum(), wantMsgs)
	}
	if reg.Histogram("lapcc_engine_step_duration_ns", "").Count() != got {
		t.Fatal("step-duration histogram missing observations")
	}
}

func TestEngineMetricsFaultCounters(t *testing.T) {
	const n = 16
	reg := metrics.NewRegistry()
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetMetrics(reg)
	e.SetFaults(&FaultPlan{Seed: 7, Drop: 0.2})
	if _, err := e.Run(broadcastStyleStep(n, 4), 8); err != nil {
		t.Fatal(err)
	}
	fs := e.FaultStats()
	if fs.Dropped == 0 {
		t.Fatal("fault plan injected no drops; test needs a higher rate")
	}
	if v := counterValue(reg, "lapcc_engine_faults_total", "type", "dropped"); v != fs.Dropped {
		t.Fatalf("dropped counter = %d, want %d", v, fs.Dropped)
	}
}

func TestEngineUsesGlobalRegistry(t *testing.T) {
	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	if MetricsRegistry() != reg {
		t.Fatal("MetricsRegistry did not return the installed registry")
	}
	e := NewEngine(8)
	e.SetSequential(true)
	got, err := e.Run(broadcastStyleStep(8, 2), 4)
	if err != nil {
		t.Fatal(err)
	}
	if v := counterValue(reg, "lapcc_engine_rounds_total"); v != got {
		t.Fatalf("global registry rounds_total = %d, want %d", v, got)
	}
	// A pinned registry overrides the global one.
	pinned := metrics.NewRegistry()
	e2 := NewEngine(8)
	e2.SetSequential(true)
	e2.SetMetrics(pinned)
	if _, err := e2.Run(broadcastStyleStep(8, 2), 4); err != nil {
		t.Fatal(err)
	}
	if counterValue(pinned, "lapcc_engine_rounds_total") == 0 {
		t.Fatal("pinned registry saw no rounds")
	}
	if v := counterValue(reg, "lapcc_engine_rounds_total"); v != got {
		t.Fatalf("global registry advanced by a pinned engine: %d != %d", v, got)
	}
}

// engineAllocsPerRun measures steady-state allocations of a warm engine
// running the n=64 broadcast workload with the given registry binding.
func engineAllocsPerRun(t *testing.T, reg *metrics.Registry) float64 {
	t.Helper()
	const n = 64
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetMetrics(reg)
	step := broadcastStyleStep(n, 4)
	run := func() {
		if _, err := e.Run(step, 8); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the recycled buffers (and resolve instruments)
	return testing.AllocsPerRun(20, run)
}

// TestEngineMetricsZeroAllocOverhead pins the acceptance criterion: metrics
// recording is atomic adds into pre-resolved instruments, so enabling a
// registry adds exactly zero heap allocations to the engine hot path, and
// the disabled path stays at the seed's steady-state noise floor (the same
// "(close to) zero" bound TestEngineSteadyStateAllocations has pinned since
// PR 1 — on some hosts the runtime itself contributes a few objects per
// measured run, which is why the disabled figure is bounded rather than
// compared to a literal 0).
func TestEngineMetricsZeroAllocOverhead(t *testing.T) {
	disabled := engineAllocsPerRun(t, nil)
	enabled := engineAllocsPerRun(t, metrics.NewRegistry())
	if disabled > 16 {
		t.Fatalf("metrics-disabled steady-state Run allocates %.0f objects; want ~0", disabled)
	}
	if enabled > disabled {
		t.Fatalf("metrics enabled allocates %.0f objects vs %.0f disabled; want zero overhead", enabled, disabled)
	}
}

func TestReliableRouteRecordsProtocolCounters(t *testing.T) {
	reg := metrics.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)
	const n = 8
	var packets []Packet
	for s := 0; s < n; s++ {
		packets = append(packets, Packet{Src: s, Dst: (s + 1) % n, Data: []int64{int64(s)}})
	}
	plan := &FaultPlan{Seed: 5, Drop: 0.3}
	_, res, err := ReliableRoute(n, packets, rounds.New(), "t", plan)
	if err != nil {
		t.Fatal(err)
	}
	if v := counterValue(reg, "lapcc_reliable_waves_total"); v != int64(res.Attempts) {
		t.Fatalf("waves_total = %d, want %d", v, res.Attempts)
	}
	if v := counterValue(reg, "lapcc_reliable_retransmitted_packets_total"); v != res.Retransmitted {
		t.Fatalf("retransmitted_packets_total = %d, want %d", v, res.Retransmitted)
	}
	if v := counterValue(reg, "lapcc_reliable_ack_rounds_total"); v != res.AckRounds {
		t.Fatalf("ack_rounds_total = %d, want %d", v, res.AckRounds)
	}
	if res.Attempts < 2 {
		t.Fatal("drop plan forced no retransmission; test needs a higher rate")
	}
	// A clean plan must record nothing (the fast path delegates).
	before := counterValue(reg, "lapcc_reliable_waves_total")
	if _, _, err := ReliableRoute(n, packets, rounds.New(), "t2", nil); err != nil {
		t.Fatal(err)
	}
	if counterValue(reg, "lapcc_reliable_waves_total") != before {
		t.Fatal("clean-path ReliableRoute recorded protocol counters")
	}
}
