package tcp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"lapcc/internal/trace"
	"lapcc/internal/transport"
)

// nodeOptions tunes a worker's delivery loop. The exported RunNode uses the
// defaults; the in-process mode threads the coordinator's settings (and the
// test-only drop hook) through, and cmd/lapccnode threads its flags through
// NodeConfig.
type nodeOptions struct {
	ackTimeout  time.Duration
	maxRetries  int
	dialTimeout time.Duration
	epoch       uint64
	chaos       *transport.ChaosPlan
	dropData    func(round uint64, from, to int32, seq uint32, wave int) bool
}

func (o *nodeOptions) defaults() {
	if o.ackTimeout <= 0 {
		o.ackTimeout = 200 * time.Millisecond
	}
	if o.maxRetries <= 0 {
		o.maxRetries = 8
	}
	if o.dialTimeout <= 0 {
		o.dialTimeout = 10 * time.Second
	}
}

// NodeConfig carries a worker's tunables, mirroring the coordinator's
// Options: the supervisor passes them to respawned lapccnode processes as
// flags so both ends of the protocol agree on timeouts, the mesh epoch, and
// the chaos plan. Zero values take the worker defaults.
type NodeConfig struct {
	// AckTimeout is the base retransmission timeout (default 200ms).
	AckTimeout time.Duration
	// MaxRetries bounds retransmission waves per stream (default 8).
	MaxRetries int
	// DialTimeout bounds the coordinator and mesh-peer dials and the mesh
	// accept window (default 10s).
	DialTimeout time.Duration
	// Epoch is the coordinator's mesh incarnation; it keys the chaos
	// plan's injection decisions.
	Epoch uint64
	// Chaos injects socket-level write faults into this worker's mesh
	// connections (nil: none).
	Chaos *transport.ChaosPlan
}

// RunNode runs one worker of a multi-process clique: it dials the
// coordinator, joins the TCP mesh, and serves delivery barriers until the
// coordinator shuts it down or a connection drops. It is the entire body of
// cmd/lapccnode.
func RunNode(coordAddr string, id, procs int) error {
	return RunNodeWith(coordAddr, id, procs, NodeConfig{})
}

// RunNodeWith is RunNode with explicit tunables.
func RunNodeWith(coordAddr string, id, procs int, cfg NodeConfig) error {
	return runNode(coordAddr, id, procs, nodeOptions{
		ackTimeout:  cfg.AckTimeout,
		maxRetries:  cfg.MaxRetries,
		dialTimeout: cfg.DialTimeout,
		epoch:       cfg.Epoch,
		chaos:       cfg.Chaos,
	})
}

// event is one unit of work for the node's single-threaded main loop: a
// decoded frame from a connection, a retransmission timer firing, or a read
// error.
type event struct {
	frame   *transport.Frame
	peer    int32 // sending worker; -1 for the coordinator
	err     error
	retrans uint64 // retransmission timer for this round (frame == nil)
	isTimer bool
}

// stream is one peer's incoming chunk sequence for one round.
type stream struct {
	chunks   map[uint32][]transport.Msg
	total    uint32 // 0 until the chunk count is known
	complete bool
}

// roundState tracks one barrier in flight on a worker.
type roundState struct {
	haveRound bool
	local     []transport.Msg // sends owned by this worker for itself

	in map[int32]*stream // per sending peer

	outFrames map[int32][]*transport.Frame // per receiving peer, for retransmit
	acked     map[int32]bool
	wave      int
	timer     *time.Timer

	stats transport.WireStats
	done  bool

	traced    bool  // round was flagged RoundFlagTrace
	sentMsgs  int64 // messages this worker's owned sources sent
	sentWords int64 // payload words across them
}

// writer drains an unbounded frame queue onto one mesh connection. Mesh
// sends must never block the protocol loop: two workers simultaneously
// blocked writing large frames to each other, with their loops unable to
// drain reads, would deadlock. Queueing decouples the loop from socket
// backpressure; a write error is latched and the connection's reader
// surfaces it to the loop.
type writer struct {
	mu     sync.Mutex
	cond   *sync.Cond
	q      [][]byte
	closed bool
}

func newWriter(conn net.Conn) *writer {
	w := &writer{}
	w.cond = sync.NewCond(&w.mu)
	go func() {
		for {
			w.mu.Lock()
			for len(w.q) == 0 && !w.closed {
				w.cond.Wait()
			}
			if w.closed && len(w.q) == 0 {
				w.mu.Unlock()
				return
			}
			batch := w.q
			w.q = nil
			w.mu.Unlock()
			for _, b := range batch {
				if _, err := conn.Write(b); err != nil {
					w.mu.Lock()
					w.closed = true // drop the rest; the reader reports the error
					w.q = nil
					w.mu.Unlock()
					return
				}
			}
		}
	}()
	return w
}

func (w *writer) enqueue(b []byte) {
	w.mu.Lock()
	if !w.closed {
		w.q = append(w.q, b)
		w.cond.Signal()
	}
	w.mu.Unlock()
}

func (w *writer) close() {
	w.mu.Lock()
	w.closed = true
	w.cond.Signal()
	w.mu.Unlock()
}

// node is a worker's full connection and round state. All state is owned by
// the run loop; reader goroutines only feed the event channel.
type node struct {
	id    int32
	procs int
	opts  nodeOptions

	coord net.Conn
	peers []net.Conn      // peers[id] == nil
	prd   []*bufio.Reader // per-peer readers, created at mesh time
	pw    []*writer       // per-peer async writers

	cwmu   sync.Mutex
	events chan event

	rounds map[uint64]*roundState
}

func runNode(coordAddr string, id, procs int, opts nodeOptions) error {
	opts.defaults()
	nd := &node{
		id:     int32(id),
		procs:  procs,
		opts:   opts,
		peers:  make([]net.Conn, procs),
		prd:    make([]*bufio.Reader, procs),
		pw:     make([]*writer, procs),
		events: make(chan event, 4*procs),
		rounds: make(map[uint64]*roundState),
	}
	defer nd.closeAll()

	if err := nd.join(coordAddr); err != nil {
		// Best effort: tell the coordinator why bootstrap failed before
		// giving up, so the failure surfaces there rather than as a hang.
		if nd.coord != nil {
			nd.sendCoord(&transport.Frame{Type: transport.FrameError, Addr: err.Error()})
		}
		return err
	}
	return nd.loop()
}

// join performs the mesh bootstrap: hello to the coordinator, receive the
// peer table, dial lower-id peers, accept higher-id peers, report ready.
func (nd *node) join(coordAddr string) error {
	coord, err := net.DialTimeout("tcp", coordAddr, nd.opts.dialTimeout)
	if err != nil {
		return fmt.Errorf("node %d: dialing coordinator: %w", nd.id, err)
	}
	nd.coord = coord
	crd := bufio.NewReader(coord)

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("node %d: mesh listen: %w", nd.id, err)
	}
	defer ln.Close()

	if _, err := transport.WriteFrame(coord, &transport.Frame{
		Type: transport.FrameHello, Node: nd.id, Addr: ln.Addr().String(),
	}); err != nil {
		return fmt.Errorf("node %d: hello: %w", nd.id, err)
	}
	pf, err := transport.ReadFrame(crd)
	if err != nil {
		return fmt.Errorf("node %d: reading peer table: %w", nd.id, err)
	}
	if pf.Type != transport.FramePeers || len(pf.Addrs) != nd.procs {
		return fmt.Errorf("node %d: bad peer table (type %d, %d addrs)", nd.id, pf.Type, len(pf.Addrs))
	}

	// Dial every lower id; accept every higher id. Accepted peers identify
	// themselves with a mesh hello; dialed ones get ours. Acceptance runs
	// concurrently with dialing so no ordering deadlocks the mesh.
	expect := nd.procs - 1 - int(nd.id)
	type accepted struct {
		conn net.Conn
		rd   *bufio.Reader // keeps bytes buffered past the hello
		id   int32
		err  error
	}
	accCh := make(chan accepted, expect)
	go func() {
		// Peers dial shortly after receiving the same peer table, so the
		// dial timeout also bounds the accept window. Without it a worker
		// whose higher-id peers died during bootstrap would wait here
		// forever, which the supervisor's teardown could never unblock.
		if l, ok := ln.(*net.TCPListener); ok {
			l.SetDeadline(time.Now().Add(nd.opts.dialTimeout))
		}
		for i := 0; i < expect; i++ {
			conn, err := ln.Accept()
			if err != nil {
				accCh <- accepted{err: err}
				return
			}
			rd := bufio.NewReader(conn)
			hf, err := transport.ReadFrame(rd)
			if err != nil || hf.Type != transport.FrameHello {
				conn.Close()
				accCh <- accepted{err: fmt.Errorf("bad mesh hello: %v", err)}
				return
			}
			accCh <- accepted{conn: conn, rd: rd, id: hf.Node}
		}
	}()
	for j := int32(0); j < nd.id; j++ {
		conn, err := net.DialTimeout("tcp", pf.Addrs[j], nd.opts.dialTimeout)
		if err != nil {
			return fmt.Errorf("node %d: dialing peer %d: %w", nd.id, j, err)
		}
		if _, err := transport.WriteFrame(conn, &transport.Frame{Type: transport.FrameHello, Node: nd.id}); err != nil {
			return fmt.Errorf("node %d: mesh hello to peer %d: %w", nd.id, j, err)
		}
		// Chaos wraps only mesh connections (writes after the hello): the
		// coordinator link stays clean so an injected fault is never
		// mistaken for a dead supervisor.
		nd.peers[j] = nd.opts.chaos.WrapConn(conn, nd.opts.epoch, nd.id, j)
		nd.prd[j] = bufio.NewReader(conn)
	}
	for i := 0; i < expect; i++ {
		acc := <-accCh
		if acc.err != nil {
			return fmt.Errorf("node %d: accepting mesh peer: %w", nd.id, acc.err)
		}
		if acc.id <= nd.id || int(acc.id) >= nd.procs || nd.peers[acc.id] != nil {
			acc.conn.Close()
			return fmt.Errorf("node %d: duplicate or invalid mesh peer %d", nd.id, acc.id)
		}
		nd.peers[acc.id] = nd.opts.chaos.WrapConn(acc.conn, nd.opts.epoch, nd.id, acc.id)
		nd.prd[acc.id] = acc.rd
	}

	// Mesh complete: spawn one reader and one async writer per peer
	// connection, then report ready.
	go nd.read(crd, -1)
	for j := int32(0); int(j) < nd.procs; j++ {
		if j == nd.id {
			continue
		}
		nd.pw[j] = newWriter(nd.peers[j])
		go nd.read(nd.prd[j], j)
	}
	if err := nd.sendCoord(&transport.Frame{Type: transport.FrameReady, Node: nd.id}); err != nil {
		return fmt.Errorf("node %d: ready: %w", nd.id, err)
	}
	return nil
}

// read pumps decoded frames from one connection into the event channel.
func (nd *node) read(rd *bufio.Reader, peer int32) {
	for {
		f, err := transport.ReadFrame(rd)
		if err != nil {
			nd.events <- event{peer: peer, err: err}
			return
		}
		nd.events <- event{frame: f, peer: peer}
		if f.Type == transport.FrameShutdown {
			return
		}
	}
}

func (nd *node) sendCoord(f *transport.Frame) error {
	nd.cwmu.Lock()
	defer nd.cwmu.Unlock()
	_, err := transport.WriteFrame(nd.coord, f)
	return err
}

// sendPeer encodes the frame and queues it on the peer's async writer,
// returning the wire size. Socket errors surface through the connection's
// reader, never here.
func (nd *node) sendPeer(p int32, f *transport.Frame) (int, error) {
	buf, err := transport.Append(nil, f)
	if err != nil {
		return 0, err
	}
	nd.pw[p].enqueue(buf)
	return len(buf), nil
}

func (nd *node) closeAll() {
	if nd.coord != nil {
		nd.coord.Close()
	}
	for _, w := range nd.pw {
		if w != nil {
			w.close()
		}
	}
	for _, c := range nd.peers {
		if c != nil {
			c.Close()
		}
	}
	for _, rs := range nd.rounds {
		if rs.timer != nil {
			rs.timer.Stop()
		}
	}
}

// inFlight reports whether any delivery barrier is unfinished.
func (nd *node) inFlight() bool {
	for _, rs := range nd.rounds {
		if !rs.done && (rs.haveRound || len(rs.in) > 0) {
			return true
		}
	}
	return false
}

// loop is the worker's single-threaded protocol engine.
func (nd *node) loop() error {
	for ev := range nd.events {
		switch {
		case ev.err != nil:
			// A connection dropping while a barrier is in flight is a real
			// failure. Between barriers it is the normal shutdown race: the
			// coordinator's Shutdown frames race the mesh teardown of
			// workers that processed theirs first.
			if !nd.inFlight() {
				return nil
			}
			return fmt.Errorf("node %d: connection to %d: %w", nd.id, ev.peer, ev.err)
		case ev.isTimer:
			if err := nd.onTimer(ev.retrans); err != nil {
				nd.sendCoord(&transport.Frame{Type: transport.FrameError, Addr: err.Error()})
				return err
			}
		default:
			f := ev.frame
			var err error
			switch f.Type {
			case transport.FrameShutdown:
				return nil
			case transport.FramePing:
				// Supervisor liveness probe; only sent between barriers.
				err = nd.sendCoord(&transport.Frame{Type: transport.FramePong, Node: nd.id})
			case transport.FrameRound:
				err = nd.onRound(f)
			case transport.FrameData:
				err = nd.onData(f)
			case transport.FrameAck:
				err = nd.onAck(f)
			default:
				err = fmt.Errorf("node %d: unexpected frame type %d from %d", nd.id, f.Type, ev.peer)
			}
			if err != nil {
				nd.sendCoord(&transport.Frame{Type: transport.FrameError, Addr: err.Error()})
				return err
			}
		}
	}
	return nil
}

// state returns (creating if needed) the round's state. Data frames may
// arrive before our own Round frame — peers that received theirs first start
// sending immediately.
func (nd *node) state(rc uint64) *roundState {
	rs := nd.rounds[rc]
	if rs == nil {
		rs = &roundState{
			in:        make(map[int32]*stream),
			outFrames: make(map[int32][]*transport.Frame),
			acked:     make(map[int32]bool),
		}
		nd.rounds[rc] = rs
	}
	return rs
}

// onRound chunks this worker's owned sends to their destination owners and
// starts the acknowledgement clock.
func (nd *node) onRound(f *transport.Frame) error {
	rs := nd.state(f.Round)
	if rs.haveRound {
		return fmt.Errorf("node %d: duplicate round %d", nd.id, f.Round)
	}
	rs.haveRound = true
	if f.Flags&transport.RoundFlagTrace != 0 {
		rs.traced = true
		rs.sentMsgs = int64(len(f.Msgs))
		for _, m := range f.Msgs {
			rs.sentWords += int64(len(m.Data))
		}
	}

	// Partition by destination owner, preserving order (the coordinator
	// sends in ascending-source order; per (src,dst) order rides along).
	perPeer := make(map[int32][]transport.Msg, nd.procs)
	for _, m := range f.Msgs {
		p := owner(m.To, nd.procs)
		if p == nd.id {
			rs.local = append(rs.local, m)
			continue
		}
		perPeer[p] = append(perPeer[p], m)
	}
	for j := int32(0); int(j) < nd.procs; j++ {
		if j == nd.id {
			continue
		}
		msgs := perPeer[j]
		// Every peer pair exchanges at least one (possibly empty) chunk per
		// round, so stream completion doubles as the round barrier even when
		// nothing is sent.
		nchunks := (len(msgs) + chunkMsgs - 1) / chunkMsgs
		if nchunks == 0 {
			nchunks = 1
		}
		frames := make([]*transport.Frame, nchunks)
		for c := 0; c < nchunks; c++ {
			lo := c * chunkMsgs
			hi := lo + chunkMsgs
			if hi > len(msgs) {
				hi = len(msgs)
			}
			frames[c] = &transport.Frame{
				Type: transport.FrameData, Round: f.Round, Node: nd.id,
				Seq: uint32(c), Total: uint32(nchunks), Msgs: msgs[lo:hi],
			}
		}
		rs.outFrames[j] = frames
		for _, df := range frames {
			if nd.opts.dropData != nil && nd.opts.dropData(f.Round, nd.id, j, df.Seq, 0) {
				continue // simulated loss; the retransmission wave recovers it
			}
			nb, err := nd.sendPeer(j, df)
			if err != nil {
				return fmt.Errorf("node %d: sending data to %d: %w", nd.id, j, err)
			}
			rs.stats.Frames++
			rs.stats.FrameBytes += uint64(nb)
		}
	}
	if len(rs.outFrames) > 0 {
		nd.armTimer(f.Round, rs, nd.opts.ackTimeout)
	}
	return nd.maybeFinish(f.Round, rs)
}

// chunkMsgs mirrors the Mem backend's chunk size; both keep frames far below
// MaxFrameBytes at any legal width.
const chunkMsgs = 1024

func (nd *node) armTimer(rc uint64, rs *roundState, d time.Duration) {
	if rs.timer != nil {
		rs.timer.Stop()
	}
	rs.timer = time.AfterFunc(d, func() {
		nd.events <- event{isTimer: true, retrans: rc}
	})
}

// onTimer retransmits every unacknowledged stream of the round, with
// exponential backoff between waves.
func (nd *node) onTimer(rc uint64) error {
	rs := nd.rounds[rc]
	if rs == nil || rs.done {
		return nil
	}
	pending := false
	for j := range rs.outFrames {
		if !rs.acked[j] {
			pending = true
			break
		}
	}
	if !pending {
		return nil
	}
	rs.wave++
	if rs.wave > nd.opts.maxRetries {
		return fmt.Errorf("node %d: round %d undelivered after %d retransmission waves", nd.id, rc, nd.opts.maxRetries)
	}
	for j, frames := range rs.outFrames {
		if rs.acked[j] {
			continue
		}
		for _, df := range frames {
			if nd.opts.dropData != nil && nd.opts.dropData(rc, nd.id, j, df.Seq, rs.wave) {
				continue
			}
			nb, err := nd.sendPeer(j, df)
			if err != nil {
				return fmt.Errorf("node %d: retransmit to %d: %w", nd.id, j, err)
			}
			rs.stats.Frames++
			rs.stats.FrameBytes += uint64(nb)
			rs.stats.Retransmits++
		}
	}
	nd.armTimer(rc, rs, nd.opts.ackTimeout<<uint(rs.wave))
	return nil
}

// onData stores a peer's chunk (idempotently — retransmitted duplicates are
// dropped) and acknowledges the stream whenever it is complete, so a lost
// ack is repaired by the duplicate data that follows it.
func (nd *node) onData(f *transport.Frame) error {
	rs := nd.state(f.Round)
	if rs.done {
		// Stale retransmission of an already-assembled round: re-ack so the
		// sender stops, but the shard is sealed.
		nd.sendPeer(f.Node, &transport.Frame{
			Type: transport.FrameAck, Round: f.Round, Node: nd.id, Seq: f.Total,
		})
		return nil
	}
	st := rs.in[f.Node]
	if st == nil {
		st = &stream{chunks: make(map[uint32][]transport.Msg)}
		rs.in[f.Node] = st
	}
	if f.Total == 0 || f.Seq >= f.Total {
		return fmt.Errorf("node %d: bad chunk %d/%d from %d", nd.id, f.Seq, f.Total, f.Node)
	}
	st.total = f.Total
	if _, dup := st.chunks[f.Seq]; !dup {
		st.chunks[f.Seq] = f.Msgs
	}
	if uint32(len(st.chunks)) == st.total {
		st.complete = true
		if _, err := nd.sendPeer(f.Node, &transport.Frame{
			Type: transport.FrameAck, Round: f.Round, Node: nd.id, Seq: st.total,
		}); err != nil {
			return fmt.Errorf("node %d: ack to %d: %w", nd.id, f.Node, err)
		}
		rs.stats.Acks++
	}
	return nd.maybeFinish(f.Round, rs)
}

// onAck marks a receiving peer's stream as delivered once it has everything.
func (nd *node) onAck(f *transport.Frame) error {
	rs := nd.state(f.Round)
	frames, ok := rs.outFrames[f.Node]
	if ok && f.Seq >= uint32(len(frames)) {
		rs.acked[f.Node] = true
	}
	return nd.maybeFinish(f.Round, rs)
}

// maybeFinish assembles and sends the worker's inbox shard once the barrier
// condition holds: the round's sends are placed, every incoming stream is
// complete, and every outgoing stream is acknowledged.
func (nd *node) maybeFinish(rc uint64, rs *roundState) error {
	if rs.done || !rs.haveRound {
		return nil
	}
	for j := int32(0); int(j) < nd.procs; j++ {
		if j == nd.id {
			continue
		}
		st := rs.in[j]
		if st == nil || !st.complete {
			return nil
		}
	}
	for j := range rs.outFrames {
		if !rs.acked[j] {
			return nil
		}
	}
	rs.done = true
	if rs.timer != nil {
		rs.timer.Stop()
	}

	// Shard order: sending workers ascending, chunks in sequence. The
	// coordinator's stable per-destination sort on top of this reproduces
	// the canonical merge order.
	var shard []transport.Msg
	for j := int32(0); int(j) < nd.procs; j++ {
		if j == nd.id {
			shard = append(shard, rs.local...)
			continue
		}
		st := rs.in[j]
		for c := uint32(0); c < st.total; c++ {
			shard = append(shard, st.chunks[c]...)
		}
	}
	if rs.traced {
		if err := nd.sendTrace(rc, rs, shard); err != nil {
			return err
		}
	}
	if err := nd.sendCoord(&transport.Frame{
		Type: transport.FrameInbox, Round: rc, Node: nd.id, Msgs: shard, Stats: rs.stats,
	}); err != nil {
		return fmt.Errorf("node %d: inbox for round %d: %w", nd.id, rc, err)
	}
	// Keep a tombstone so stale retransmissions still get acked, but drop
	// the payloads; reap tombstones two rounds back (the coordinator's
	// barrier guarantees no traffic that old is still in flight).
	rs.in = nil
	rs.local = nil
	rs.outFrames = nil
	if rc >= 2 {
		delete(nd.rounds, rc-2)
	}
	return nil
}

// sendTrace ships the barrier's trace records to the coordinator,
// immediately before the inbox frame on the same connection and goroutine,
// so the coordinator reads trace-then-inbox in order. Only
// seed-reproducible quantities are recorded: the worker's sent and
// assembled-shard traffic. Retransmission and frame counts depend on
// wall-clock timing, so they travel in the inbox's wire stats and the
// coordinator's flight recorder instead of the deterministic trace stream.
func (nd *node) sendTrace(rc uint64, rs *roundState, shard []transport.Msg) error {
	buf := trace.NewBuffer()
	buf.Beginf("barrier-%d", rc)
	buf.Traffic("sent", rs.sentMsgs, rs.sentWords)
	var shardWords int64
	for _, m := range shard {
		shardWords += int64(len(m.Data))
	}
	buf.Traffic("shard", int64(len(shard)), shardWords)
	buf.End()
	blob, err := trace.AppendRecs(nil, buf.Take())
	if err != nil {
		return fmt.Errorf("node %d: encoding trace for round %d: %w", nd.id, rc, err)
	}
	if err := nd.sendCoord(&transport.Frame{
		Type: transport.FrameTrace, Round: rc, Node: nd.id, Blob: blob,
	}); err != nil {
		return fmt.Errorf("node %d: trace for round %d: %w", nd.id, rc, err)
	}
	return nil
}
