// Package serve is the solver-as-a-service layer behind cmd/lapccd: a
// stdlib-only HTTP/JSON daemon exposing the facade's algorithms as RPCs
// (POST /v1/solve, /v1/sparsify, /v1/orient, /v1/maxflow, /v1/mincostflow).
//
// The layer adds three things on top of core.Do:
//
//   - Session pooling. Solve and sparsify requests are keyed by the
//     canonical structural fingerprint of their graph (graph.Fingerprint,
//     weights excluded). Repeat topologies hit a pooled
//     core.LaplacianSession / sparsify.Chain, so only the weights are
//     swapped (the warm reweight path) instead of re-running the full
//     Theorem 3.3 preprocessing. Pooled sessions run with warm starting off
//     and exact-only chain reuse, which keeps every response bit-identical
//     to a direct one-shot facade call — the differential contract the e2e
//     tests pin.
//
//   - Admission control. A bounded in-flight slot count sheds load with a
//     typed 429 ("overloaded"), and each request may carry a rounds.Budget
//     ("budget": {"rounds": N, "wall_ms": M}) that propagates to every
//     phase boundary of the run; exhaustion surfaces as a typed 429
//     ("budget_exceeded") carrying the partial round count.
//
//   - Batched lanes. A solve request carries any number of right-hand
//     sides; they share one admission slot, one reweight, and one pooled
//     preprocessing, and the response reports the lane's round total.
package serve

import (
	"fmt"
	"math"
	"time"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// WireGraph is the JSON form of an undirected weighted graph: edge i is
// [u, v, w] and edge ids are positions in the list, matching
// graph.Graph edge ids (and therefore the weight vector of a reweight).
type WireGraph struct {
	N     int          `json:"n"`
	Edges [][3]float64 `json:"edges"`
}

// WireDiGraph is the JSON form of a directed capacitated graph: arc i is
// [from, to, cap, cost].
type WireDiGraph struct {
	N    int        `json:"n"`
	Arcs [][4]int64 `json:"arcs"`
}

// WireBudget is the JSON form of a per-request rounds.Budget. Zero fields
// are unlimited.
type WireBudget struct {
	Rounds int64 `json:"rounds,omitempty"`
	WallMS int64 `json:"wall_ms,omitempty"`
}

// WireRounds is the JSON form of a core.RoundReport. The human-readable
// Breakdown string stays server-side.
type WireRounds struct {
	Total    int64 `json:"total"`
	Measured int64 `json:"measured"`
	Charged  int64 `json:"charged"`
}

// SolveRequest asks for L_G x = b at relative precision eps for each
// right-hand side in RHS (the batched lane).
type SolveRequest struct {
	Graph  *WireGraph  `json:"graph"`
	RHS    [][]float64 `json:"rhs"`
	Eps    float64     `json:"eps,omitempty"` // default 1e-8
	Budget *WireBudget `json:"budget,omitempty"`
}

// SolveResponse carries one potential vector per requested right-hand side.
type SolveResponse struct {
	X               [][]float64 `json:"x"`
	Iterations      []int       `json:"iterations"`
	SparsifierEdges int         `json:"sparsifier_edges"`
	Cached          bool        `json:"cached"`
	Rounds          WireRounds  `json:"rounds"`
	Trace           *WireTrace  `json:"trace,omitempty"`
}

// SparsifyRequest asks for the Theorem 3.3 sparsifier of Graph.
type SparsifyRequest struct {
	Graph  *WireGraph  `json:"graph"`
	Budget *WireBudget `json:"budget,omitempty"`
}

// SparsifyResponse carries the sparsifier and its measured quality.
type SparsifyResponse struct {
	H      WireGraph  `json:"h"`
	Alpha  float64    `json:"alpha"`
	Cached bool       `json:"cached"`
	Rounds WireRounds `json:"rounds"`
	Trace  *WireTrace `json:"trace,omitempty"`
}

// OrientRequest asks for the Theorem 1.4 Eulerian orientation of Graph.
type OrientRequest struct {
	Graph  *WireGraph  `json:"graph"`
	Budget *WireBudget `json:"budget,omitempty"`
}

// OrientResponse carries one orientation bit per edge (true = U -> V).
type OrientResponse struct {
	Orient     []bool     `json:"orient"`
	Iterations int        `json:"iterations"`
	Rounds     WireRounds `json:"rounds"`
	Trace      *WireTrace `json:"trace,omitempty"`
}

// MaxFlowRequest asks for the exact maximum Source->Sink flow on Graph.
type MaxFlowRequest struct {
	Graph  *WireDiGraph `json:"graph"`
	Source int          `json:"source"`
	Sink   int          `json:"sink"`
	Budget *WireBudget  `json:"budget,omitempty"`
}

// MaxFlowResponse carries the optimal value and per-arc flow.
type MaxFlowResponse struct {
	Value              int64      `json:"value"`
	Flow               []int64    `json:"flow"`
	IPMIterations      int        `json:"ipm_iterations"`
	FinalAugmentations int        `json:"final_augmentations"`
	Rounds             WireRounds `json:"rounds"`
	Trace              *WireTrace `json:"trace,omitempty"`
}

// MinCostFlowRequest asks for a minimum-cost routing of the demand vector
// Sigma on Graph.
type MinCostFlowRequest struct {
	Graph  *WireDiGraph `json:"graph"`
	Sigma  []int64      `json:"sigma"`
	Budget *WireBudget  `json:"budget,omitempty"`
}

// MinCostFlowResponse carries the optimal cost and per-arc flow.
type MinCostFlowResponse struct {
	Flow                []int64    `json:"flow"`
	Cost                int64      `json:"cost"`
	ProgressIterations  int        `json:"progress_iterations"`
	RepairAugmentations int        `json:"repair_augmentations"`
	Rounds              WireRounds `json:"rounds"`
	Trace               *WireTrace `json:"trace,omitempty"`
}

// WireTrace is the span summary of a traced request (?trace=1 or the
// X-Lapcc-Trace header): the request ID keys the full JSONL stream at
// /v1/trace/{id}, Attributed is the fraction of recorded rounds landing
// inside some span, and Spans aggregates per phase path. Wall-clock times
// are deliberately absent — the summary, like the JSONL stream, carries
// only deterministic quantities.
type WireTrace struct {
	ID         string      `json:"id"`
	Attributed float64     `json:"attributed"`
	Spans      []WirePhase `json:"spans"`
}

// WirePhase is one aggregated row of a WireTrace.
type WirePhase struct {
	Path     string `json:"path"`
	Calls    int    `json:"calls"`
	Measured int64  `json:"measured"`
	Charged  int64  `json:"charged"`
	Messages int64  `json:"messages"`
}

// WireError is the daemon's error body, wrapped as {"error": {...}}. Codes:
// "bad_request" (400), "overloaded" and "budget_exceeded" (429),
// "internal" (500).
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
	// Rounds carries the partial rounds consumed before a budget ran out
	// (budget_exceeded only).
	Rounds int64 `json:"rounds,omitempty"`
	// RequestID echoes the request's ID (also on the X-Lapcc-Request-Id
	// response header) so client-side failures join to the daemon's
	// access-log lines.
	RequestID string `json:"request_id,omitempty"`
}

type errorEnvelope struct {
	Error WireError `json:"error"`
}

// ToWireGraph converts g to its JSON form, preserving edge ids.
func ToWireGraph(g *graph.Graph) WireGraph {
	wg := WireGraph{N: g.N(), Edges: make([][3]float64, g.M())}
	for i, e := range g.Edges() {
		wg.Edges[i] = [3]float64{float64(e.U), float64(e.V), e.W}
	}
	return wg
}

// Graph materializes the wire form, assigning edge ids in list order.
func (wg *WireGraph) Graph() (*graph.Graph, error) {
	if wg == nil {
		return nil, fmt.Errorf("missing graph")
	}
	if wg.N <= 0 {
		return nil, fmt.Errorf("graph: n must be positive, got %d", wg.N)
	}
	g := graph.New(wg.N)
	for i, e := range wg.Edges {
		u, v, w := e[0], e[1], e[2]
		if u != math.Trunc(u) || v != math.Trunc(v) {
			return nil, fmt.Errorf("graph: edge %d endpoints [%g %g] not integral", i, u, v)
		}
		if _, err := g.AddEdge(int(u), int(v), w); err != nil {
			return nil, fmt.Errorf("graph: edge %d: %w", i, err)
		}
	}
	return g, nil
}

// ToWireDiGraph converts dg to its JSON form, preserving arc ids.
func ToWireDiGraph(dg *graph.DiGraph) WireDiGraph {
	wd := WireDiGraph{N: dg.N(), Arcs: make([][4]int64, dg.M())}
	for i, a := range dg.Arcs() {
		wd.Arcs[i] = [4]int64{int64(a.From), int64(a.To), a.Cap, a.Cost}
	}
	return wd
}

// DiGraph materializes the wire form, assigning arc ids in list order.
func (wd *WireDiGraph) DiGraph() (*graph.DiGraph, error) {
	if wd == nil {
		return nil, fmt.Errorf("missing graph")
	}
	if wd.N <= 0 {
		return nil, fmt.Errorf("graph: n must be positive, got %d", wd.N)
	}
	dg := graph.NewDi(wd.N)
	for i, a := range wd.Arcs {
		if _, err := dg.AddArc(int(a[0]), int(a[1]), a[2], a[3]); err != nil {
			return nil, fmt.Errorf("graph: arc %d: %w", i, err)
		}
	}
	return dg, nil
}

// Budget materializes the wire form (nil for no limits).
func (wb *WireBudget) Budget() (*rounds.Budget, error) {
	if wb == nil || (wb.Rounds == 0 && wb.WallMS == 0) {
		return nil, nil
	}
	if wb.Rounds < 0 || wb.WallMS < 0 {
		return nil, fmt.Errorf("budget: limits must be non-negative")
	}
	return rounds.NewBudget(wb.Rounds, time.Duration(wb.WallMS)*time.Millisecond), nil
}
