package tcp

import (
	"io"
	"reflect"
	"testing"
	"time"

	"lapcc/internal/cc"
)

// mix is a tiny deterministic hash for building pseudo-random but
// repeatable programs (no shared RNG: step functions run concurrently).
func mix(vals ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	return h
}

// program returns a deterministic step function plus per-node transcripts;
// two engine runs are equivalent iff transcripts, rounds, and messages all
// match (order included).
func program(n int, seed int64) (cc.Step, [][]int64) {
	tr := make([][]int64, n)
	step := func(node, round int, inbox []cc.Message, send func(int, ...int64)) bool {
		for _, m := range inbox {
			tr[node] = append(tr[node], int64(round), int64(m.From), int64(len(m.Data)))
			tr[node] = append(tr[node], m.Data...)
		}
		if round >= 1+int(mix(seed, int64(node))%5) {
			return true
		}
		h := mix(seed, int64(node), int64(round))
		k := int(h % 4)
		if k > n-1 {
			k = n - 1
		}
		start := int((h >> 8) % uint64(n-1))
		width := 1 + int((h>>32)%3)
		var payload [3]int64
		for w := 0; w < width; w++ {
			payload[w] = int64(mix(seed, int64(node), int64(round), int64(w)))
		}
		for i := 0; i < k; i++ {
			send((node+1+(start+i)%(n-1))%n, payload[:width]...)
		}
		return false
	}
	return step, tr
}

type outcome struct {
	used, rounds, messages int64
	faults                 cc.FaultStats
}

// runEngine executes the seeded program on a fresh engine with the given
// transport (nil = in-process merge) and optional fault plan.
func runEngine(t *testing.T, n int, seed int64, tr cc.Transport, plan *cc.FaultPlan) (outcome, [][]int64) {
	t.Helper()
	e := cc.NewEngine(n)
	if tr != nil {
		e.SetTransport(tr)
	}
	if plan != nil {
		e.SetFaults(plan)
	}
	step, transcripts := program(n, seed)
	used, err := e.Run(step, 256)
	if err != nil {
		t.Fatalf("run(n=%d, seed=%d): %v", n, seed, err)
	}
	return outcome{used: used, rounds: e.Rounds(), messages: e.Messages(), faults: e.FaultStats()}, transcripts
}

func diffTranscripts(t *testing.T, label string, want, got [][]int64) {
	t.Helper()
	for node := range want {
		if !reflect.DeepEqual(want[node], got[node]) {
			t.Fatalf("%s: node %d transcript diverges\nlocal: %v\ntcp:   %v", label, node, want[node], got[node])
		}
	}
}

// TestEngineDifferentialTCP: the multi-process backend reproduces the
// in-process merge bit for bit — transcripts, round counts, message counts —
// across several clique sizes, including n not divisible by the process
// count and n smaller than it.
func TestEngineDifferentialTCP(t *testing.T) {
	tr, err := New(Options{Procs: 4, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for seed := int64(1); seed <= 6; seed++ {
		n := []int{3, 7, 8, 12, 17, 25}[seed-1]
		base, baseTr := runEngine(t, n, seed, nil, nil)
		got, gotTr := runEngine(t, n, seed, tr, nil)
		if got != base {
			t.Fatalf("n=%d seed=%d: tcp outcome %+v != local %+v", n, seed, got, base)
		}
		diffTranscripts(t, "clean", baseTr, gotTr)
	}
}

// TestEngineDifferentialTCPFaulted: a fault plan injected above the
// transport boundary charges the same fates and yields the same transcripts
// no matter which backend delivered the clean messages underneath.
func TestEngineDifferentialTCPFaulted(t *testing.T) {
	tr, err := New(Options{Procs: 3, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	plan := func() *cc.FaultPlan {
		return &cc.FaultPlan{Seed: 77, Drop: 0.05, Duplicate: 0.04, Delay: 0.05, MaxDelay: 2}
	}
	for seed := int64(1); seed <= 4; seed++ {
		n := []int{5, 9, 13, 20}[seed-1]
		base, baseTr := runEngine(t, n, seed, nil, plan())
		got, gotTr := runEngine(t, n, seed, tr, plan())
		if got != base {
			t.Fatalf("n=%d seed=%d: faulted tcp outcome %+v != local %+v", n, seed, got, base)
		}
		diffTranscripts(t, "faulted", baseTr, gotTr)
	}
}

// TestRetransmission: dropped first-wave data frames are recovered by the
// acknowledgement-timeout retransmission path, invisibly to the engine.
func TestRetransmission(t *testing.T) {
	tr, err := New(Options{
		Procs:      3,
		AckTimeout: 20 * time.Millisecond,
		Stderr:     io.Discard,
		// Drop every first-wave data frame from worker 1; waves > 0 go
		// through, so one retransmission round recovers each stream.
		dropData: func(round uint64, from, to int32, seq uint32, wave int) bool {
			return wave == 0 && from == 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	base, baseTr := runEngine(t, 9, 3, nil, nil)
	got, gotTr := runEngine(t, 9, 3, tr, nil)
	if got != base {
		t.Fatalf("tcp outcome %+v != local %+v", got, base)
	}
	diffTranscripts(t, "retransmit", baseTr, gotTr)
	st := tr.Stats()
	if st.Retransmits == 0 {
		t.Fatal("drop hook was active but no retransmissions were counted")
	}
}

// TestSubprocessWorkers boots the exec mode against a prebuilt lapccnode
// binary when available (the net-smoke target and the differential suite
// build it); without one the in-process modes above cover the protocol.
func TestOpenSpecs(t *testing.T) {
	if tr, err := Open("local"); err != nil || tr != nil {
		t.Fatalf("local: got (%v, %v), want (nil, nil)", tr, err)
	}
	tr, err := Open("mem")
	if err != nil || tr == nil {
		t.Fatalf("mem: got (%v, %v)", tr, err)
	}
	tr.Close()
	tr, err = Open("tcp,procs=2")
	if err != nil {
		t.Fatalf("tcp,procs=2: %v", err)
	}
	if tr.(*Transport).Procs() != 2 {
		t.Fatalf("procs = %d, want 2", tr.(*Transport).Procs())
	}
	tr.Close()
	for _, bad := range []string{"carrier-pigeon", "tcp,procs=zero", "tcp,frobnicate=1", "mem,x=1", "local,x=1", "tcp,procs"} {
		if _, err := Open(bad); err == nil {
			t.Fatalf("Open(%q) accepted", bad)
		}
	}
}
