package transport

import (
	"reflect"
	"testing"

	"lapcc/internal/cc"
)

// TestMemEngineDifferential: an engine delivering through the wire codec
// produces bit-identical transcripts, round counts, and message counts to
// the in-process merge, with and without an injected fault plan.
func TestMemEngineDifferential(t *testing.T) {
	mix := func(vals ...int64) uint64 {
		h := uint64(0x9e3779b97f4a7c15)
		for _, v := range vals {
			h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
			h *= 0xbf58476d1ce4e5b9
			h ^= h >> 27
		}
		return h
	}
	program := func(n int, seed int64) (cc.Step, [][]int64) {
		tr := make([][]int64, n)
		step := func(node, round int, inbox []cc.Message, send func(int, ...int64)) bool {
			for _, m := range inbox {
				tr[node] = append(tr[node], int64(round), int64(m.From), int64(len(m.Data)))
				tr[node] = append(tr[node], m.Data...)
			}
			if round >= 1+int(mix(seed, int64(node))%5) {
				return true
			}
			h := mix(seed, int64(node), int64(round))
			for i, k := 0, int(h%4); i < k && k <= n-1; i++ {
				send((node+1+(int((h>>8)%uint64(n-1))+i)%(n-1))%n, int64(h>>16), int64(i))
			}
			return false
		}
		return step, tr
	}
	run := func(n int, seed int64, m *Mem, plan *cc.FaultPlan) (int64, int64, [][]int64) {
		e := cc.NewEngine(n)
		if m != nil {
			e.SetTransport(m)
		}
		if plan != nil {
			e.SetFaults(plan)
		}
		step, tr := program(n, seed)
		if _, err := e.Run(step, 256); err != nil {
			t.Fatalf("n=%d seed=%d: %v", n, seed, err)
		}
		return e.Rounds(), e.Messages(), tr
	}
	for seed := int64(1); seed <= 5; seed++ {
		n := []int{3, 6, 11, 17, 24}[seed-1]
		for _, plan := range []*cc.FaultPlan{nil, {Seed: 5, Drop: 0.05, Duplicate: 0.03, Delay: 0.05, MaxDelay: 2}} {
			m := NewMem()
			r1, m1, t1 := run(n, seed, nil, plan)
			r2, m2, t2 := run(n, seed, m, plan)
			if r1 != r2 || m1 != m2 {
				t.Fatalf("n=%d seed=%d plan=%v: local (%d rounds, %d msgs) != mem (%d, %d)", n, seed, plan, r1, m1, r2, m2)
			}
			for node := range t1 {
				if !reflect.DeepEqual(t1[node], t2[node]) {
					t.Fatalf("n=%d seed=%d plan=%v node=%d: transcript diverges\nlocal: %v\nmem:   %v",
						n, seed, plan, node, t1[node], t2[node])
				}
			}
			if st := m.Stats(); st.Messages == 0 || st.Frames == 0 || st.FrameBytes == 0 {
				t.Fatalf("n=%d seed=%d: wire stats not recorded: %+v", n, seed, st)
			}
		}
	}
}

// TestMemRejectsBadRecipient: recipient validation happens before encoding.
func TestMemRejectsBadRecipient(t *testing.T) {
	m := NewMem()
	out := []cc.Outbox{{Msgs: []cc.OutMsg{{From: 0, To: 9, Width: 0}}}}
	if _, _, err := m.Deliver(0, 3, out); err == nil {
		t.Fatal("out-of-range recipient accepted")
	}
}
