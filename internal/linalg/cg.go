package linalg

import (
	"errors"
	"fmt"
)

// ErrNoConvergence reports that an iterative solver hit its iteration cap
// before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// CGOptions configures conjugate-gradient solves.
type CGOptions struct {
	// Tol is the relative residual tolerance ||b - Ax|| <= Tol * ||b||.
	// Zero means 1e-12.
	Tol float64
	// MaxIter caps iterations. Zero means 20*n + 200.
	MaxIter int
	// Precond, if non-nil, holds the diagonal of a Jacobi preconditioner;
	// entries must be positive.
	Precond Vec
	// ProjectMean, when true, keeps iterates orthogonal to the all-ones
	// vector — required when A is a connected graph's Laplacian so that CG
	// computes the pseudoinverse action.
	ProjectMean bool
}

// CGResult reports how a CG solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
}

// SolveCG solves A x = b for a symmetric positive (semi-)definite operator
// using preconditioned conjugate gradients. For Laplacians, set
// opts.ProjectMean and pass a right-hand side orthogonal to the all-ones
// vector (SolveCG projects b defensively as well).
func SolveCG(a Operator, b Vec, opts CGOptions) (Vec, CGResult, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, CGResult{}, fmt.Errorf("linalg: rhs length %d for operator dimension %d", len(b), n)
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 20*n + 200
	}

	rhs := b.Clone()
	if opts.ProjectMean {
		rhs.RemoveMean()
	}
	bnorm := rhs.Norm2()
	x := NewVec(n)
	if bnorm == 0 {
		return x, CGResult{}, nil
	}

	applyPrecond := func(dst, r Vec) {
		if opts.Precond == nil {
			copy(dst, r)
			return
		}
		for i := range dst {
			dst[i] = r[i] / opts.Precond[i]
		}
	}

	r := rhs.Clone()
	z := NewVec(n)
	applyPrecond(z, r)
	if opts.ProjectMean {
		z.RemoveMean()
	}
	p := z.Clone()
	ap := NewVec(n)
	rz := r.Dot(z)

	var res CGResult
	for k := 0; k < maxIter; k++ {
		a.Apply(ap, p)
		pap := p.Dot(ap)
		if pap <= 0 {
			// Numerically singular direction; bail with what we have.
			res.Iterations = k
			res.Residual = r.Norm2() / bnorm
			if res.Residual <= tol {
				return x, res, nil
			}
			return x, res, fmt.Errorf("%w: curvature %v at iteration %d (residual %v)",
				ErrNoConvergence, pap, k, res.Residual)
		}
		alpha := rz / pap
		x.AXPY(alpha, p)
		r.AXPY(-alpha, ap)
		if opts.ProjectMean {
			r.RemoveMean()
		}
		res.Iterations = k + 1
		res.Residual = r.Norm2() / bnorm
		if res.Residual <= tol {
			if opts.ProjectMean {
				x.RemoveMean()
			}
			return x, res, nil
		}
		applyPrecond(z, r)
		if opts.ProjectMean {
			z.RemoveMean()
		}
		rzNew := r.Dot(z)
		beta := rzNew / rz
		rz = rzNew
		for i := range p {
			p[i] = z[i] + beta*p[i]
		}
	}
	if opts.ProjectMean {
		x.RemoveMean()
	}
	return x, res, fmt.Errorf("%w: residual %v after %d iterations (tol %v)",
		ErrNoConvergence, res.Residual, res.Iterations, tol)
}

// LaplacianCGSolver returns a high-precision internal solver for a graph
// Laplacian: a closure mapping b to an approximate L^+ b. It uses Jacobi-
// preconditioned CG with mean projection. This models a node solving a
// globally-known sparsifier internally, which costs zero communication
// rounds in the congested clique.
func LaplacianCGSolver(l *Laplacian, tol float64) func(Vec) (Vec, error) {
	precond := l.Degrees().Clone()
	for i := range precond {
		if precond[i] <= 0 {
			precond[i] = 1 // isolated vertex: identity row in the preconditioner
		}
	}
	return func(b Vec) (Vec, error) {
		x, _, err := SolveCG(l, b, CGOptions{Tol: tol, Precond: precond, ProjectMean: true})
		if err != nil {
			return nil, fmt.Errorf("linalg: internal sparsifier solve: %w", err)
		}
		return x, nil
	}
}
