package lapcc_test

// One testing.B benchmark per experiment of EXPERIMENTS.md (E1-E8). Each
// reports the congested-clique round count of a representative instance as
// the custom metric "rounds/op" alongside wall-clock time; the full
// parameter sweeps live in cmd/experiments.
//
//	go test -bench=. -benchmem

import (
	"math"
	"testing"

	"lapcc/internal/euler"
	"lapcc/internal/flowround"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
)

// BenchmarkE1Sparsifier measures Theorem 3.3: building the deterministic
// spectral sparsifier of a 256-node 8-regular graph.
func BenchmarkE1Sparsifier(b *testing.B) {
	g, err := graph.RandomRegular(256, 8, 1)
	if err != nil {
		b.Fatal(err)
	}
	var lastRounds int64
	var lastEdges int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led := rounds.New()
		res, err := sparsify.Sparsify(g, sparsify.Options{Ledger: led})
		if err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
		lastEdges = res.H.M()
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
	b.ReportMetric(float64(lastEdges), "sparsifier-edges")
}

// BenchmarkE2LaplacianSolve measures Theorem 1.1: one eps=1e-8 solve on a
// 256-node graph (sparsifier construction amortized outside the loop).
func BenchmarkE2LaplacianSolve(b *testing.B) {
	g, err := graph.RandomRegular(256, 8, 2)
	if err != nil {
		b.Fatal(err)
	}
	led := rounds.New()
	s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led})
	if err != nil {
		b.Fatal(err)
	}
	rhs := linalg.NewVec(256)
	rhs[0] = 1
	rhs[255] = -1
	var lastRounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led.Reset()
		if _, _, err := s.Solve(rhs, 1e-8); err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
}

// BenchmarkE3Eulerian measures Theorem 1.4: orienting a 1024-node Eulerian
// graph with real message passing.
func BenchmarkE3Eulerian(b *testing.B) {
	g, err := graph.RandomEulerian(1024, 66, 3, 3)
	if err != nil {
		b.Fatal(err)
	}
	var lastRounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led := rounds.New()
		if _, _, err := euler.Orient(g, nil, euler.Options{Ledger: led}); err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
	b.ReportMetric(math.Log2(1024)*float64(rounds.LogStar(1024)), "lgn-logstar-bound")
}

// BenchmarkE4FlowRounding measures Lemma 4.2 at Delta = 2^-12.
func BenchmarkE4FlowRounding(b *testing.B) {
	const delta = 1.0 / 4096
	dg := graph.NewDi(24)
	var flows []float64
	rng := newBenchRng(4)
	for p := 0; p < 10; p++ {
		cur := 0
		var arcs []int
		for cur != 23 {
			next := cur + 1 + rng.Intn(23-cur)
			arcs = append(arcs, dg.MustAddArc(cur, next, 1<<20, 1))
			cur = next
		}
		amount := delta * float64(1+rng.Intn(4096))
		for range arcs {
			flows = append(flows, amount)
		}
	}
	var lastRounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led := rounds.New()
		if _, err := flowround.Round(dg, flows, 0, 23, delta, false, led); err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
}

// BenchmarkE5MaxFlow measures Theorem 1.2 end to end on a layered network.
func BenchmarkE5MaxFlow(b *testing.B) {
	dg := graph.LayeredDAG(3, 5, 2, 8, 5)
	s, t := 0, dg.N()-1
	var lastRounds int64
	var lastIters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led := rounds.New()
		res, err := maxflow.MaxFlow(dg, s, t, maxflow.Options{Ledger: led, FastSolve: true})
		if err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
		lastIters = res.IPMIterations
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
	b.ReportMetric(float64(lastIters), "ipm-iterations")
	shape := math.Pow(float64(dg.M()), 3.0/7.0) * math.Pow(float64(dg.MaxCapacity()), 1.0/7.0)
	b.ReportMetric(shape, "m37U17-shape")
}

// BenchmarkE6MinCostFlow measures Theorem 1.3 end to end on an assignment
// instance.
func BenchmarkE6MinCostFlow(b *testing.B) {
	rng := newBenchRng(6)
	dg := graph.NewDi(12)
	sigma := make([]int64, 12)
	for u := 0; u < 6; u++ {
		partner := u % 6
		dg.MustAddArc(u, 6+partner, 1, 1+rng.Int63n(16))
		dg.MustAddArc(u, 6+rng.Intn(6), 1, 1+rng.Int63n(16))
		dg.MustAddArc(u, 6+rng.Intn(6), 1, 1+rng.Int63n(16))
		sigma[u] = 1
		sigma[6+partner]--
	}
	var lastRounds int64
	var lastRepairs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		led := rounds.New()
		res, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{Ledger: led})
		if err != nil {
			b.Fatal(err)
		}
		lastRounds = led.Total()
		lastRepairs = res.RepairAugmentations
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
	b.ReportMetric(float64(lastRepairs), "repair-augmentations")
}

// BenchmarkE7Baselines measures the section 1.1 Ford-Fulkerson baseline on
// the same instance as E5, for direct comparison of rounds/op.
func BenchmarkE7Baselines(b *testing.B) {
	dg := graph.LayeredDAG(3, 5, 2, 8, 5)
	s, t := 0, dg.N()-1
	var lastRounds int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ff, err := maxflow.FordFulkerson(dg, s, t, nil)
		if err != nil {
			b.Fatal(err)
		}
		lastRounds = ff.Rounds
	}
	b.ReportMetric(float64(lastRounds), "rounds/op")
	b.ReportMetric(float64(maxflow.TrivialRounds(dg)), "trivial-rounds")
}

// BenchmarkE8Chebyshev measures the Corollary 2.3 kernel: a kappa=4
// preconditioned Chebyshev solve to eps=1e-8 (iterations ~ sqrt(kappa)
// log(1/eps)).
func BenchmarkE8Chebyshev(b *testing.B) {
	g, err := graph.ConnectedGNM(60, 150, 7)
	if err != nil {
		b.Fatal(err)
	}
	lg := linalg.NewLaplacian(graph.WithRandomWeights(g, 6, 8))
	h := graph.New(60)
	const p = 1.0
	for i, e := range lg.Graph().Edges() {
		w := e.W
		if i%2 == 0 {
			w *= 1 + p
		} else {
			w /= 1 + p
		}
		h.MustAddEdge(e.U, e.V, w)
	}
	lh := linalg.NewLaplacian(h)
	inner := linalg.LaplacianCGSolver(lh, 1e-13)
	bSolve := func(r linalg.Vec) (linalg.Vec, error) {
		y, err := inner(r)
		if err != nil {
			return nil, err
		}
		y.Scale(1 / (1 + p))
		return y, nil
	}
	rhs := linalg.NewVec(60)
	rhs[0] = 1
	rhs[59] = -1
	kappa := (1 + p) * (1 + p)
	var lastIters int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, res, err := linalg.PreconCheby(lg, bSolve, rhs, linalg.ChebyOptions{Kappa: kappa, Eps: 1e-8})
		if err != nil {
			b.Fatal(err)
		}
		lastIters = res.Iterations
	}
	b.ReportMetric(float64(lastIters), "rounds/op") // one round per iteration
	b.ReportMetric(float64(linalg.ChebyIterationBound(kappa, 1e-8)), "theory-bound")
}
