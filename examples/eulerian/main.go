// Eulerian orientation (Theorem 1.4): orient a large even-degree graph so
// that every vertex has equal in- and out-degree, in O(log n log* n)
// simulated congested-clique rounds, and verify the balance.
//
//	go run ./examples/eulerian
package main

import (
	"fmt"
	"os"

	"lapcc/internal/core"
	"lapcc/internal/euler"
	"lapcc/internal/graph"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "eulerian:", err)
		os.Exit(1)
	}
}

func run() error {
	// A union of 40 random cycles on 512 vertices: every degree is even.
	g, err := graph.RandomEulerian(512, 40, 3, 2024)
	if err != nil {
		return err
	}
	fmt.Printf("graph: n=%d m=%d (union of 40 random cycles)\n", g.N(), g.M())

	res, err := core.EulerianOrientWith(g, core.RunOptions{})
	if err != nil {
		return err
	}
	if v := euler.CheckOrientation(g, res.Orient); v != -1 {
		return fmt.Errorf("orientation unbalanced at vertex %d", v)
	}
	forward := 0
	for _, o := range res.Orient {
		if o {
			forward++
		}
	}
	fmt.Printf("orientation valid: every vertex has in-degree == out-degree\n")
	fmt.Printf("  %d of %d edges oriented low->high endpoint\n", forward, g.M())
	fmt.Printf("  contraction iterations: %d (O(log n))\n", res.Iterations)
	fmt.Printf("  rounds: %d, all measured by the message-passing simulator\n", res.Rounds.Total)
	fmt.Println()
	fmt.Print(res.Rounds.Breakdown)
	return nil
}
