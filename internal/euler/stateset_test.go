package euler

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
)

// The directed-state machinery underlying Theorem 1.4 rests on two facts
// (see the package comment): the successor map is a permutation of the 2m
// states, and the mirror involution conjugates succ to pred — which is what
// guarantees each undirected closed walk appears as two *disjoint* directed
// cycles. These tests pin both on random Eulerian multigraphs.

func buildStates(t *testing.T, seed int64) (*graph.Graph, *stateSet) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g, err := graph.RandomEulerian(10+rng.Intn(20), 2+rng.Intn(5), 3, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g, newStateSet(g, nil, Options{Mode: Deterministic})
}

func TestStateSuccIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		g, s := buildStates(t, seed)
		m := g.M()
		seen := make([]bool, 2*m)
		for st := 0; st < 2*m; st++ {
			nx := s.succ[st]
			if nx < 0 || nx >= 2*m || seen[nx] {
				return false
			}
			seen[nx] = true
		}
		// Pred must invert succ.
		for st := 0; st < 2*m; st++ {
			if s.pred[s.succ[st]] != st {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateMirrorConjugatesSuccToPred(t *testing.T) {
	// mirror(succ(mirror(s))) == pred(s): the anti-automorphism property.
	f := func(seed int64) bool {
		g, s := buildStates(t, seed)
		m := g.M()
		for st := 0; st < 2*m; st++ {
			mirror := st ^ 1
			if s.succ[mirror]^1 != s.pred[st] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateMirrorCyclesDisjoint(t *testing.T) {
	// No directed cycle may contain both states of one edge (self-mirror
	// cycles are impossible; see the package comment's argument).
	f := func(seed int64) bool {
		g, s := buildStates(t, seed)
		m := g.M()
		cycleOf := make([]int, 2*m)
		for i := range cycleOf {
			cycleOf[i] = -1
		}
		c := 0
		for st := 0; st < 2*m; st++ {
			if cycleOf[st] != -1 {
				continue
			}
			for v := st; cycleOf[v] == -1; v = s.succ[v] {
				cycleOf[v] = c
			}
			c++
		}
		for e := 0; e < m; e++ {
			if cycleOf[2*e] == cycleOf[2*e+1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestStateOwnersMatchEndpoints(t *testing.T) {
	g, s := buildStates(t, 7)
	for e := 0; e < g.M(); e++ {
		if s.owner[2*e] != g.Edge(e).U {
			t.Fatalf("state %d owner %d, want U=%d", 2*e, s.owner[2*e], g.Edge(e).U)
		}
		if s.owner[2*e+1] != g.Edge(e).V {
			t.Fatalf("state %d owner %d, want V=%d", 2*e+1, s.owner[2*e+1], g.Edge(e).V)
		}
	}
}

func TestStateCostAntisymmetry(t *testing.T) {
	// The cost of traversing a ring hop equals minus the cost of the
	// mirrored hop (same edges, opposite directions), so every directed
	// cycle's total is minus its mirror's — the basis of the S <= 0 rule.
	rng := rand.New(rand.NewSource(3))
	g, err := graph.RandomEulerian(16, 4, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	dirCost := make([]int64, g.M())
	for i := range dirCost {
		dirCost[i] = rng.Int63n(19) - 9
	}
	s := newStateSet(g, dirCost, Options{Mode: Deterministic})
	m := g.M()
	// Sum costs around each directed cycle; mirror cycles must negate.
	cycleCost := map[int]int64{}
	cycleOf := make([]int, 2*m)
	for i := range cycleOf {
		cycleOf[i] = -1
	}
	c := 0
	for st := 0; st < 2*m; st++ {
		if cycleOf[st] != -1 {
			continue
		}
		var total int64
		for v := st; cycleOf[v] == -1; v = s.succ[v] {
			cycleOf[v] = c
			total += s.cost[v]
		}
		cycleCost[c] = total
		c++
	}
	for e := 0; e < m; e++ {
		c1, c2 := cycleOf[2*e], cycleOf[2*e+1]
		if cycleCost[c1] != -cycleCost[c2] {
			t.Fatalf("mirror cycles %d,%d have costs %d,%d (not negated)",
				c1, c2, cycleCost[c1], cycleCost[c2])
		}
	}
}
