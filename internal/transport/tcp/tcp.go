// Package tcp is the multi-process delivery backend of the engine's
// transport boundary: the clique's nodes run as separate OS processes
// (cmd/lapccnode) connected by a full TCP mesh, and the engine side acts as
// the round coordinator. Every frame is length-prefixed and checksummed
// (internal/transport's codec), chunk streams between peers are sequenced
// and acknowledged, and unacknowledged chunks are retransmitted with
// exponential backoff — the reliable-delivery protocol the in-process
// simulator models analytically, promoted to the actual correctness layer of
// the delivery loop.
//
// The delivery contract matches every other backend bit for bit: inboxes per
// destination in ascending source order, per-source send order preserved.
// The differential suites pin solver outputs and charged ledgers across
// local, Mem, and TCP runs.
//
// Topology: P worker processes serve any logical node count n; logical node
// v is owned by process v mod P. One Deliver is one barrier:
//
//	coordinator --Round--> every process   (its owned sources' sends)
//	process     --Data---> peer processes  (chunked, sequenced, acked,
//	                                        retransmitted on timeout)
//	process     --Inbox--> coordinator     (its shard, wire stats piggybacked)
//
// The coordinator concatenates shards in process order and stable-sorts each
// destination's messages by source, which reproduces the in-process merge
// order exactly.
//
// # Supervision
//
// With Options.Supervise the coordinator also owns worker liveness. The
// barrier is the recovery unit: workers hold no solver state between
// barriers (everything lives on the engine side), so when a worker dies —
// detected by a heartbeat between barriers or a connection error/deadline
// during one — the supervisor tears the whole mesh down, respawns every
// worker under a new epoch, and replays the in-flight barrier from its
// checkpoint. Replaying the full barrier rather than one worker is not a
// shortcut: the peer-to-peer mesh collapses when any member dies (peers
// treat mid-stream connection errors as fatal), and because workers are
// stateless between barriers the replay is bit-identical, which the chaos
// differential suites pin. The per-barrier Checkpoint records the committed
// round counter and splitmix64 digests of the barrier's inputs and inbox
// shards; a replay re-digests its inputs and refuses to proceed if they
// changed. Scheduled faults come from a transport.ChaosPlan: process kills
// executed by the coordinator at chosen barriers, and socket-level write
// faults injected inside the workers' mesh connections.
package tcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
)

// Options configures the coordinator.
type Options struct {
	// Procs is the number of worker processes (default 4). Logical node v
	// is owned by process v mod Procs.
	Procs int
	// Binary is the lapccnode worker binary to exec, one process per
	// worker. Empty runs the workers as in-process goroutines speaking the
	// same protocol over real loopback sockets — same frames, same barrier,
	// no process isolation (used by tests and the benchmark suite).
	Binary string
	// AckTimeout is the base retransmission timeout (default 200ms,
	// doubled per wave).
	AckTimeout time.Duration
	// MaxRetries bounds the retransmission waves per stream (default 8).
	MaxRetries int
	// Stderr receives the worker processes' stderr and the supervisor's
	// recovery log (default os.Stderr).
	Stderr io.Writer

	// DialTimeout bounds every worker-side dial (coordinator and mesh
	// peers) and the worker's mesh accept window (default 10s).
	DialTimeout time.Duration
	// AcceptTimeout bounds the coordinator's mesh bootstrap: all workers
	// must connect and report ready within it (default 30s).
	AcceptTimeout time.Duration

	// Supervise enables crash recovery: worker death is detected
	// (heartbeat between barriers, connection errors and BarrierTimeout
	// during one), the worker set is respawned under a new epoch, and the
	// in-flight barrier is replayed from its checkpoint. Without it a dead
	// worker fails the run, as a transport error (the pre-supervision
	// behavior).
	Supervise bool
	// MaxRestarts bounds mesh restarts per barrier when supervising
	// (default 3).
	MaxRestarts int
	// BarrierTimeout is the per-attempt deadline on every coordinator
	// connection during a barrier, so a dead worker cannot stall the
	// coordinator for the full retransmission backoff schedule (default
	// 60s when supervising; 0 means no deadline otherwise).
	BarrierTimeout time.Duration
	// HeartbeatInterval paces the ping/pong liveness probe between
	// barriers (default 1s when supervising; negative disables). The probe
	// never contends with a barrier: it skips any tick where a Deliver
	// holds the transport.
	HeartbeatInterval time.Duration
	// Chaos schedules deterministic faults: worker kills executed by the
	// coordinator before chosen barriers, and socket-level write faults
	// (resets, partial writes, stalls) injected inside the workers' mesh
	// connections. Recovery from every scheduled fault requires Supervise.
	Chaos *transport.ChaosPlan

	// dropData, test-only (in-process workers): return true to suppress a
	// data frame send, forcing the retransmission path.
	dropData func(round uint64, from, to int32, seq uint32, wave int) bool
}

func (o *Options) defaults() {
	if o.Procs <= 0 {
		o.Procs = 4
	}
	if o.AckTimeout <= 0 {
		o.AckTimeout = 200 * time.Millisecond
	}
	if o.MaxRetries <= 0 {
		o.MaxRetries = 8
	}
	if o.Stderr == nil {
		o.Stderr = os.Stderr
	}
	if o.DialTimeout <= 0 {
		o.DialTimeout = 10 * time.Second
	}
	if o.AcceptTimeout <= 0 {
		o.AcceptTimeout = 30 * time.Second
	}
	if o.MaxRestarts <= 0 {
		o.MaxRestarts = 3
	}
	if o.Supervise {
		if o.BarrierTimeout <= 0 {
			o.BarrierTimeout = 60 * time.Second
		}
		if o.HeartbeatInterval == 0 {
			o.HeartbeatInterval = time.Second
		}
	}
}

// owner maps a logical clique node to its worker process.
func owner(v int32, procs int) int32 { return v % int32(procs) }

// Checkpoint is the supervisor's snapshot of the last committed barrier. It
// is what a replay is checked against: the round counter the next barrier
// must use, digests of the inputs and the per-worker inbox shards, and the
// committed cumulative delivery counters (recovery re-runs a barrier, so
// only committed attempts count).
type Checkpoint struct {
	// Barriers is the number of committed barriers — equally, the sequence
	// number the next barrier will use.
	Barriers uint64
	// Epoch is the mesh incarnation that committed the last barrier.
	Epoch uint64
	// InDigest fingerprints the last committed barrier's input sends.
	InDigest uint64
	// ShardDigests fingerprints each worker's inbox shard of the last
	// committed barrier, in process order.
	ShardDigests []uint64
	// Stats is the cumulative committed delivery counters.
	Stats cc.DeliveryStats
}

// RecoveryStats counts the supervisor's interventions.
type RecoveryStats struct {
	// Kills is the number of scheduled chaos kills executed.
	Kills uint64
	// Restarts is the number of full mesh restarts.
	Restarts uint64
	// Respawns is the number of workers spawned beyond the initial boot.
	Respawns uint64
	// ReplayedBarriers counts barrier replay attempts after a failed
	// delivery attempt.
	ReplayedBarriers uint64
	// HeartbeatFailures counts liveness probes that found a dead mesh.
	HeartbeatFailures uint64
}

// Transport is the coordinator side of the multi-process backend. It
// implements cc.Transport; Deliver calls serialize on an internal lock (one
// barrier at a time, matching the synchronous model).
type Transport struct {
	opts  Options
	procs int

	mu       sync.Mutex
	ln       net.Listener
	conns    []net.Conn
	rds      []*bufio.Reader
	cmds     []*exec.Cmd
	wg       sync.WaitGroup // in-process workers of the current epoch
	round    uint64
	epoch    uint64
	booted   bool // a boot has succeeded at least once
	meshDown bool
	closed   bool
	cum      cc.DeliveryStats // cumulative across committed rounds
	ckpt     Checkpoint
	rec      RecoveryStats
	killed   map[transport.Kill]bool
	stopHB   chan struct{}

	tracer     *trace.Tracer // merged distributed trace plane (nil: untraced)
	flight     *trace.Flight // crash flight recorder (nil: disabled)
	flightDump string        // JSONL dump path on unrecoverable failure
}

// New boots a coordinator and its worker processes and blocks until the full
// mesh is connected and every worker reported Ready.
func New(opts Options) (*Transport, error) {
	opts.defaults()
	if err := opts.Chaos.Validate(); err != nil {
		return nil, err
	}
	if opts.Chaos != nil {
		for _, k := range opts.Chaos.Kills {
			if k.Proc >= opts.Procs {
				return nil, fmt.Errorf("%w: kill targets worker %d of %d", transport.ErrBadChaosPlan, k.Proc, opts.Procs)
			}
		}
	}
	t := &Transport{
		opts:   opts,
		procs:  opts.Procs,
		killed: make(map[transport.Kill]bool),
		stopHB: make(chan struct{}),
	}
	if err := t.boot(); err != nil {
		t.Close()
		return nil, err
	}
	if opts.Supervise && opts.HeartbeatInterval > 0 {
		go t.heartbeatLoop(opts.HeartbeatInterval)
	}
	return t, nil
}

// SetTracer attaches the distributed trace plane: every subsequent barrier
// is dispatched with transport.RoundFlagTrace, each worker's barrier-local
// records are merged into tr as "node-%d" subtrees in ascending worker
// order, and supervision transitions become mark events. A nil tr detaches
// (the default; the barrier path then adds zero cost). Do not attach a
// per-request tracer to a transport shared across concurrent requests — the
// merged subtrees would interleave across requests.
func (t *Transport) SetTracer(tr *trace.Tracer) {
	t.mu.Lock()
	t.tracer = tr
	t.mu.Unlock()
}

// SetFlight attaches the flight recorder: transport events (barrier
// commits, kills, restarts, replays) are recorded into f, and on an
// unrecoverable failure the ring is dumped to dumpPath (empty: no file; the
// ring is still readable via Flight.Events/Handler). A nil f detaches.
func (t *Transport) SetFlight(f *trace.Flight, dumpPath string) {
	t.mu.Lock()
	t.flight = f
	t.flightDump = dumpPath
	t.mu.Unlock()
}

// Flight returns the attached flight recorder (nil when detached).
func (t *Transport) Flight() *trace.Flight {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flight
}

// dumpFlight writes the flight ring to the configured dump path; the
// unrecoverable-failure path. Called under mu.
func (t *Transport) dumpFlight() {
	if t.flight == nil || t.flightDump == "" {
		return
	}
	if err := t.flight.DumpFile(t.flightDump); err != nil {
		fmt.Fprintf(t.opts.Stderr, "tcp: writing flight dump: %v\n", err)
	} else {
		fmt.Fprintf(t.opts.Stderr, "tcp: flight dump written to %s\n", t.flightDump)
	}
}

// boot spawns the full worker set for the current epoch and bootstraps the
// mesh. Each epoch gets a fresh coordinator listener: closing the old one
// resets any stale worker still parked in its accept backlog, and a new
// address guarantees a leftover from the previous epoch can never join the
// new mesh. Called under mu (or before the transport is shared).
func (t *Transport) boot() error {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return fmt.Errorf("tcp: coordinator listen: %w", err)
	}
	t.ln = ln
	coordAddr := ln.Addr().String()
	if t.booted {
		t.rec.Respawns += uint64(t.procs)
	}

	if t.opts.Binary != "" {
		t.cmds = make([]*exec.Cmd, t.procs)
		for i := 0; i < t.procs; i++ {
			args := []string{
				"-coord", coordAddr,
				"-id", strconv.Itoa(i),
				"-procs", strconv.Itoa(t.procs),
				"-dial-timeout", t.opts.DialTimeout.String(),
				"-ack-timeout", t.opts.AckTimeout.String(),
				"-retries", strconv.Itoa(t.opts.MaxRetries),
				"-epoch", strconv.FormatUint(t.epoch, 10),
			}
			if t.opts.Chaos.HasWriteFaults() {
				args = append(args, "-chaos", t.opts.Chaos.String())
			}
			cmd := exec.Command(t.opts.Binary, args...)
			cmd.Stderr = t.opts.Stderr
			if err := cmd.Start(); err != nil {
				return fmt.Errorf("tcp: starting worker %d: %w", i, err)
			}
			t.cmds[i] = cmd
		}
	} else {
		no := nodeOptions{
			ackTimeout:  t.opts.AckTimeout,
			maxRetries:  t.opts.MaxRetries,
			dialTimeout: t.opts.DialTimeout,
			epoch:       t.epoch,
			chaos:       t.opts.Chaos,
			dropData:    t.opts.dropData,
		}
		for i := 0; i < t.procs; i++ {
			t.wg.Add(1)
			go func(id int) {
				defer t.wg.Done()
				if err := runNode(coordAddr, id, t.procs, no); err != nil {
					fmt.Fprintf(t.opts.Stderr, "tcp: in-process worker %d: %v\n", id, err)
				}
			}(i)
		}
	}

	if err := t.bootstrap(); err != nil {
		return err
	}
	t.booted = true
	t.meshDown = false
	return nil
}

// bootstrap accepts the worker connections, distributes the mesh address
// table, and waits for every worker's Ready.
func (t *Transport) bootstrap() error {
	t.conns = make([]net.Conn, t.procs)
	t.rds = make([]*bufio.Reader, t.procs)
	addrs := make([]string, t.procs)
	deadline := time.Now().Add(t.opts.AcceptTimeout)
	for i := 0; i < t.procs; i++ {
		if l, ok := t.ln.(*net.TCPListener); ok {
			l.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: accepting worker %d/%d: %w", i, t.procs, err)
		}
		rd := bufio.NewReader(conn)
		f, err := transport.ReadFrame(rd)
		if err != nil {
			return fmt.Errorf("tcp: worker hello: %w", err)
		}
		if f.Type != transport.FrameHello || f.Node < 0 || int(f.Node) >= t.procs || t.conns[f.Node] != nil {
			return fmt.Errorf("tcp: bad hello (type %d, node %d)", f.Type, f.Node)
		}
		t.conns[f.Node] = conn
		t.rds[f.Node] = rd
		addrs[f.Node] = f.Addr
	}
	for i, conn := range t.conns {
		if _, err := transport.WriteFrame(conn, &transport.Frame{Type: transport.FramePeers, Addrs: addrs}); err != nil {
			return fmt.Errorf("tcp: sending peer table to worker %d: %w", i, err)
		}
	}
	for i := range t.conns {
		f, err := transport.ReadFrame(t.rds[i])
		if err != nil {
			return fmt.Errorf("tcp: waiting for worker %d ready: %w", i, err)
		}
		if f.Type == transport.FrameError {
			return fmt.Errorf("tcp: worker %d failed during mesh bootstrap: %s", i, f.Addr)
		}
		if f.Type != transport.FrameReady {
			return fmt.Errorf("tcp: worker %d sent frame type %d instead of ready", i, f.Type)
		}
	}
	return nil
}

// teardownWorkers kills and reaps the current epoch's worker set. Closing
// the coordinator connections (and the listener, which resets any worker
// still in its accept backlog) is what unblocks live workers: they exit on
// the resulting read errors, so the in-process WaitGroup drains. Called
// under mu.
func (t *Transport) teardownWorkers() {
	for i, conn := range t.conns {
		if conn != nil {
			conn.Close()
			t.conns[i] = nil
		}
	}
	if t.ln != nil {
		t.ln.Close()
		t.ln = nil
	}
	for i, cmd := range t.cmds {
		if cmd == nil {
			continue
		}
		cmd.Process.Kill()
		cmd.Wait()
		t.cmds[i] = nil
	}
	t.cmds = nil
	t.wg.Wait()
	t.conns, t.rds = nil, nil
}

// restartMesh tears the current worker set down and boots a fresh one under
// the next epoch. Called under mu.
func (t *Transport) restartMesh() error {
	t.rec.Restarts++
	t.tracer.Mark("mesh-teardown", t.round, t.epoch, -1)
	t.flight.Record(trace.FlightEvent{Kind: "mesh-teardown", Barrier: t.round, Epoch: t.epoch, Node: -1})
	t.teardownWorkers()
	t.epoch++
	fmt.Fprintf(t.opts.Stderr, "tcp: restarting mesh (epoch %d, restart %d)\n", t.epoch, t.rec.Restarts)
	if err := t.boot(); err != nil {
		return err
	}
	t.tracer.Mark("mesh-respawn", t.round, t.epoch, -1)
	t.flight.Record(trace.FlightEvent{Kind: "mesh-respawn", Barrier: t.round, Epoch: t.epoch, Node: -1})
	return nil
}

// executeKills runs the chaos plan's scheduled kills for a barrier, each
// exactly once (a replayed barrier does not re-kill). Real worker processes
// are SIGKILLed; in-process workers have their coordinator connection
// severed, which collapses them the same way. Called under mu.
func (t *Transport) executeKills(rc uint64) {
	for _, p := range t.opts.Chaos.KillsAt(rc) {
		k := transport.Kill{Barrier: rc, Proc: p}
		if p >= t.procs || t.killed[k] {
			continue
		}
		t.killed[k] = true
		t.rec.Kills++
		t.tracer.Mark("chaos-kill", rc, t.epoch, p)
		t.flight.Record(trace.FlightEvent{Kind: "kill", Barrier: rc, Epoch: t.epoch, Node: p})
		fmt.Fprintf(t.opts.Stderr, "tcp: chaos: killing worker %d before barrier %d\n", p, rc)
		if t.cmds != nil && t.cmds[p] != nil {
			t.cmds[p].Process.Kill()
		} else if t.conns != nil && t.conns[p] != nil {
			t.conns[p].Close()
		}
	}
}

// splitmix64 is the same finalizer transport.ChaosPlan and cc.FaultPlan use;
// checkpoint digests inherit its replayability.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// digestMsgs folds a message list into a running digest: endpoints, length,
// and every payload word.
func digestMsgs(h uint64, msgs []transport.Msg) uint64 {
	for _, m := range msgs {
		h = splitmix64(h ^ uint64(uint32(m.From))<<32 ^ uint64(uint32(m.To)))
		h = splitmix64(h ^ uint64(len(m.Data)))
		for _, w := range m.Data {
			h = splitmix64(h ^ uint64(w))
		}
	}
	return h
}

// digestRound fingerprints one barrier's input: every process's send list,
// in process order.
func digestRound(perProc [][]transport.Msg) uint64 {
	h := splitmix64(0x5ca1ab1e0ddba11)
	for p, msgs := range perProc {
		h = splitmix64(h ^ uint64(p))
		h = digestMsgs(h, msgs)
	}
	return h
}

// splitSends partitions a round's sends by owning process, preserving the
// global ascending-source order within each process's list, and counts
// messages per destination.
func (t *Transport) splitSends(n int, out []cc.Outbox) (perProc [][]transport.Msg, dc []int, total int, err error) {
	perProc = make([][]transport.Msg, t.procs)
	dc = make([]int, n)
	for _, ob := range out {
		for _, om := range ob.Msgs {
			if om.To < 0 || int(om.To) >= n {
				return nil, nil, 0, fmt.Errorf("tcp: recipient %d out of range (n=%d)", om.To, n)
			}
			p := owner(om.From, t.procs)
			perProc[p] = append(perProc[p], transport.Msg{From: om.From, To: om.To, Data: ob.Data(om)})
			dc[om.To]++
			total++
		}
	}
	return perProc, dc, total, nil
}

// Deliver implements cc.Transport: one synchronous barrier across the worker
// processes. The round argument is informational (engine rounds restart per
// Run); the coordinator sequences barriers with its own monotone counter,
// which advances only when the barrier commits — a supervised replay reuses
// the same sequence number. Under Options.Supervise a failed attempt tears
// the mesh down, respawns the workers, and replays the barrier, up to
// MaxRestarts times.
func (t *Transport) Deliver(_ int, n int, out []cc.Outbox) ([][]cc.Message, cc.DeliveryStats, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return nil, cc.DeliveryStats{}, errors.New("tcp: transport is closed")
	}
	rc := t.round
	perProc, dc, total, err := t.splitSends(n, out)
	if err != nil {
		return nil, cc.DeliveryStats{}, err
	}
	inDigest := digestRound(perProc)

	t.executeKills(rc)

	traced := t.tracer != nil
	var lastErr error
	for attempt := 0; ; attempt++ {
		if t.meshDown && t.opts.Supervise {
			if rerr := t.restartMesh(); rerr != nil {
				t.flight.Record(trace.FlightEvent{Kind: "unrecoverable", Barrier: rc, Epoch: t.epoch, Node: -1, Detail: rerr.Error()})
				t.dumpFlight()
				return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: restarting mesh for barrier %d: %w", rc, rerr)
			}
			if attempt > 0 {
				// Replaying a failed attempt: the checkpoint contract says
				// the inputs must be exactly what the failed attempt saw.
				if d := digestRound(perProc); d != inDigest {
					t.flight.Record(trace.FlightEvent{Kind: "replay-digest-mismatch", Barrier: rc, Epoch: t.epoch, Node: -1})
					t.dumpFlight()
					return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: barrier %d input digest changed across replay (%#x != %#x)", rc, d, inDigest)
				}
				t.rec.ReplayedBarriers++
				t.tracer.Mark("replay", rc, t.epoch, -1)
				t.flight.Record(trace.FlightEvent{Kind: "replay", Barrier: rc, Epoch: t.epoch, Node: -1})
			}
		}
		inboxes, stats, shardDigests, recs, err := t.deliverOnce(rc, n, perProc, dc, total, traced)
		if err == nil {
			// Only the committed attempt's worker records reach the trace:
			// a failed attempt's mesh is torn down with its partial spans,
			// so the merged timeline stays deterministic for a fixed kill
			// schedule. Merge order is the contract: ascending worker
			// index, each worker's records in open sequence.
			for p := 0; p < len(recs); p++ {
				t.tracer.Merge(fmt.Sprintf("node-%d", p), recs[p])
			}
			if attempt > 0 {
				t.tracer.Mark("replay-verified", rc, t.epoch, -1)
				t.flight.Record(trace.FlightEvent{Kind: "replay-verified", Barrier: rc, Epoch: t.epoch, Node: -1})
			}
			t.commit(rc, inDigest, shardDigests, stats)
			t.flight.Record(trace.FlightEvent{
				Kind: "barrier-commit", Barrier: rc, Epoch: t.epoch, Node: -1,
				Messages: stats.Messages, Frames: stats.Frames,
				Retransmits: stats.Retransmits, Acks: stats.Acks,
			})
			return inboxes, stats, nil
		}
		lastErr = err
		t.meshDown = true
		// The mark carries only the barrier/epoch position — error text is
		// wall-clock-shaped (which syscall lost the race varies) and
		// belongs in the flight recorder.
		t.tracer.Mark("barrier-failed", rc, t.epoch, -1)
		t.flight.Record(trace.FlightEvent{Kind: "barrier-attempt-failed", Barrier: rc, Epoch: t.epoch, Node: -1, Detail: err.Error()})
		if !t.opts.Supervise {
			return nil, cc.DeliveryStats{}, lastErr
		}
		if attempt >= t.opts.MaxRestarts {
			t.flight.Record(trace.FlightEvent{Kind: "unrecoverable", Barrier: rc, Epoch: t.epoch, Node: -1, Detail: lastErr.Error()})
			t.dumpFlight()
			return nil, cc.DeliveryStats{}, fmt.Errorf("tcp: barrier %d failed after %d mesh restarts: %w", rc, t.opts.MaxRestarts, lastErr)
		}
		fmt.Fprintf(t.opts.Stderr, "tcp: barrier %d attempt %d failed: %v\n", rc, attempt, lastErr)
	}
}

// readWorker reads one frame from a worker's coordinator connection,
// surfacing a FrameError as the worker's own failure description.
func (t *Transport) readWorker(p int, rc uint64) (*transport.Frame, error) {
	f, err := transport.ReadFrame(t.rds[p])
	if err != nil {
		return nil, fmt.Errorf("tcp: reading from worker %d in round %d: %w", p, rc, err)
	}
	if f.Type == transport.FrameError {
		return nil, fmt.Errorf("tcp: worker %d failed in round %d: %s", p, rc, f.Addr)
	}
	return f, nil
}

// deliverOnce runs one delivery attempt for one barrier against the current
// mesh: dispatch the Round frames, collect every worker's inbox shard (each
// preceded by a trace frame when traced), and assemble the per-destination
// inboxes. With a BarrierTimeout every coordinator connection carries an
// absolute deadline for the attempt, so a dead worker surfaces as an error
// here instead of stalling the coordinator through the workers' full
// retransmission schedule.
func (t *Transport) deliverOnce(rc uint64, n int, perProc [][]transport.Msg, dc []int, total int, traced bool) ([][]cc.Message, cc.DeliveryStats, []uint64, [][]trace.Rec, error) {
	if t.opts.BarrierTimeout > 0 {
		deadline := time.Now().Add(t.opts.BarrierTimeout)
		for _, conn := range t.conns {
			conn.SetDeadline(deadline)
		}
		defer func() {
			for _, conn := range t.conns {
				if conn != nil {
					conn.SetDeadline(time.Time{})
				}
			}
		}()
	}
	var flags uint32
	if traced {
		flags = transport.RoundFlagTrace
	}
	for p := 0; p < t.procs; p++ {
		if _, err := transport.WriteFrame(t.conns[p], &transport.Frame{
			Type: transport.FrameRound, Round: rc, Flags: flags, Msgs: perProc[p],
		}); err != nil {
			return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: sending round %d to worker %d: %w", rc, p, err)
		}
	}

	// Collect every worker's inbox shard. Shards arrive in any order across
	// connections but reading sequentially is fine: TCP buffers them.
	shards := make([][]transport.Msg, t.procs)
	shardDigests := make([]uint64, t.procs)
	var recs [][]trace.Rec
	if traced {
		recs = make([][]trace.Rec, t.procs)
	}
	stats := cc.DeliveryStats{Messages: int64(total)}
	for p := 0; p < t.procs; p++ {
		f, err := t.readWorker(p, rc)
		if err != nil {
			return nil, cc.DeliveryStats{}, nil, nil, err
		}
		if traced {
			if f.Type != transport.FrameTrace || f.Round != rc {
				return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: worker %d sent frame type %d (round %d) instead of trace for round %d", p, f.Type, f.Round, rc)
			}
			rr, derr := trace.DecodeRecs(f.Blob)
			if derr != nil {
				return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: decoding trace records of worker %d in round %d: %w", p, rc, derr)
			}
			recs[p] = rr
			if f, err = t.readWorker(p, rc); err != nil {
				return nil, cc.DeliveryStats{}, nil, nil, err
			}
		}
		if f.Type != transport.FrameInbox || f.Round != rc {
			return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: worker %d sent frame type %d (round %d) instead of inbox for round %d", p, f.Type, f.Round, rc)
		}
		shards[p] = f.Msgs
		shardDigests[p] = digestMsgs(splitmix64(uint64(p)), f.Msgs)
		stats.Frames += int64(f.Stats.Frames)
		stats.FrameBytes += int64(f.Stats.FrameBytes)
		stats.Retransmits += int64(f.Stats.Retransmits)
		stats.Acks += int64(f.Stats.Acks)
	}

	// Assemble: process order first, then a stable per-destination sort by
	// source. Messages sharing (source, destination) travel in one chunk
	// stream, so stability preserves their send order — together this
	// reproduces the in-process merge order exactly.
	inboxes := make([][]cc.Message, n)
	for d := 0; d < n; d++ {
		if dc[d] > 0 {
			inboxes[d] = make([]cc.Message, 0, dc[d])
		}
	}
	got := 0
	for p := 0; p < t.procs; p++ {
		for _, wm := range shards[p] {
			if wm.To < 0 || int(wm.To) >= n {
				return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: worker %d delivered recipient %d out of range", p, wm.To)
			}
			inboxes[wm.To] = append(inboxes[wm.To], cc.Message{From: int(wm.From), Data: wm.Data})
			got++
		}
	}
	if got != total {
		return nil, cc.DeliveryStats{}, nil, nil, fmt.Errorf("tcp: round %d delivered %d of %d messages", rc, got, total)
	}
	for d := 0; d < n; d++ {
		msgs := inboxes[d]
		sort.SliceStable(msgs, func(i, j int) bool { return msgs[i].From < msgs[j].From })
	}
	return inboxes, stats, shardDigests, recs, nil
}

// commit seals a barrier: advance the round counter, fold the attempt's
// stats into the committed totals, and snapshot the checkpoint. Called
// under mu.
func (t *Transport) commit(rc, inDigest uint64, shardDigests []uint64, stats cc.DeliveryStats) {
	t.round = rc + 1
	t.cum.Messages += stats.Messages
	t.cum.Frames += stats.Frames
	t.cum.FrameBytes += stats.FrameBytes
	t.cum.Retransmits += stats.Retransmits
	t.cum.Acks += stats.Acks
	t.ckpt = Checkpoint{
		Barriers:     rc + 1,
		Epoch:        t.epoch,
		InDigest:     inDigest,
		ShardDigests: shardDigests,
		Stats:        t.cum,
	}
}

// heartbeatLoop probes worker liveness between barriers. It never contends
// with a Deliver: a tick that cannot take the lock is skipped (the barrier
// itself detects failures while it runs). On a failed probe the mesh is
// restarted eagerly so the next barrier starts against live workers; if the
// restart itself fails the mesh stays down and Deliver retries it.
func (t *Transport) heartbeatLoop(interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-t.stopHB:
			return
		case <-tick.C:
		}
		if !t.mu.TryLock() {
			continue
		}
		if t.closed {
			t.mu.Unlock()
			return
		}
		if !t.meshDown {
			if err := t.pingAll(interval); err != nil {
				t.rec.HeartbeatFailures++
				t.meshDown = true
				// Flight only, no trace mark: the heartbeat races the
				// solver's barriers, so a mark here would break the traced
				// stream's byte determinism.
				t.flight.Record(trace.FlightEvent{Kind: "heartbeat-failure", Barrier: t.round, Epoch: t.epoch, Node: -1, Detail: err.Error()})
				fmt.Fprintf(t.opts.Stderr, "tcp: heartbeat: %v\n", err)
				if rerr := t.restartMesh(); rerr != nil {
					fmt.Fprintf(t.opts.Stderr, "tcp: mesh restart after heartbeat failure: %v\n", rerr)
				}
			}
		}
		t.mu.Unlock()
	}
}

// pingAll sends one Ping to every worker and reads the Pongs back, under a
// deadline. Called under mu, strictly between barriers, so the ping/pong
// exchange is the only traffic on the coordinator connections.
func (t *Transport) pingAll(interval time.Duration) error {
	timeout := interval
	if timeout < time.Second {
		timeout = time.Second
	}
	deadline := time.Now().Add(timeout)
	for p := 0; p < t.procs; p++ {
		if t.conns[p] == nil {
			return fmt.Errorf("tcp: worker %d has no connection", p)
		}
		t.conns[p].SetDeadline(deadline)
	}
	defer func() {
		for _, conn := range t.conns {
			if conn != nil {
				conn.SetDeadline(time.Time{})
			}
		}
	}()
	for p := 0; p < t.procs; p++ {
		if _, err := transport.WriteFrame(t.conns[p], &transport.Frame{Type: transport.FramePing}); err != nil {
			return fmt.Errorf("tcp: ping to worker %d: %w", p, err)
		}
	}
	for p := 0; p < t.procs; p++ {
		f, err := transport.ReadFrame(t.rds[p])
		if err != nil {
			return fmt.Errorf("tcp: pong from worker %d: %w", p, err)
		}
		if f.Type != transport.FramePong {
			return fmt.Errorf("tcp: worker %d answered ping with frame type %d", p, f.Type)
		}
	}
	return nil
}

// Stats returns the cumulative delivery counters across all committed
// rounds.
func (t *Transport) Stats() cc.DeliveryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.cum
}

// Recovery returns the supervisor's intervention counters.
func (t *Transport) Recovery() RecoveryStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// Checkpoint returns the snapshot of the last committed barrier.
func (t *Transport) Checkpoint() Checkpoint {
	t.mu.Lock()
	defer t.mu.Unlock()
	ck := t.ckpt
	ck.ShardDigests = append([]uint64(nil), t.ckpt.ShardDigests...)
	return ck
}

// Epoch returns the current mesh incarnation (0 before any restart).
func (t *Transport) Epoch() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// Close shuts the workers down and releases every connection. Safe to call
// more than once and on a partially constructed transport.
func (t *Transport) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	if t.stopHB != nil {
		close(t.stopHB)
	}
	conns, cmds, ln := t.conns, t.cmds, t.ln
	t.mu.Unlock()

	for _, conn := range conns {
		if conn != nil {
			transport.WriteFrame(conn, &transport.Frame{Type: transport.FrameShutdown})
		}
	}
	var firstErr error
	for i, cmd := range cmds {
		if cmd == nil {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("tcp: worker %d exit: %w", i, err)
			}
		case <-time.After(5 * time.Second):
			cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("tcp: worker %d did not exit; killed", i)
			}
		}
	}
	for _, conn := range conns {
		if conn != nil {
			conn.Close()
		}
	}
	if ln != nil {
		ln.Close()
	}
	t.wg.Wait() // in-process workers exit on conn close/shutdown
	return firstErr
}

// Procs returns the worker process count.
func (t *Transport) Procs() int { return t.procs }
