package euler

import (
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func TestOrientRandomizedValid(t *testing.T) {
	g, err := graph.RandomEulerian(128, 20, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	orient, st, err := Orient(g, nil, Options{Mode: Randomized, Seed: 42, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
	if st.Iterations == 0 || led.Total() == 0 {
		t.Fatalf("suspicious stats: %+v, rounds %d", st, led.Total())
	}
}

func TestOrientRandomizedDeterministicPerSeed(t *testing.T) {
	g, err := graph.RandomEulerian(64, 10, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	a, _, err := Orient(g, nil, Options{Mode: Randomized, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Orient(g, nil, Options{Mode: Randomized, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should give identical orientations")
		}
	}
}

func TestOrientRandomizedCostGuarantee(t *testing.T) {
	g, err := graph.RandomEulerian(48, 8, 3, 17)
	if err != nil {
		t.Fatal(err)
	}
	cost := make([]int64, g.M())
	for i := range cost {
		cost[i] = int64(i%21) - 10
	}
	orient, _, err := Orient(g, cost, Options{Mode: Randomized, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if v := CheckOrientation(g, orient); v != -1 {
		t.Fatalf("vertex %d unbalanced", v)
	}
	var total int64
	for i := range cost {
		if orient[i] {
			total += cost[i]
		} else {
			total -= cost[i]
		}
	}
	if total > 0 {
		t.Fatalf("signed cost %d > 0", total)
	}
}

func TestOrientRandomizedSkipsColoringRounds(t *testing.T) {
	// The randomized mode's whole point (paper remark after Theorem 1.4):
	// no Cole-Vishkin coloring rounds. Its ledger must contain no cv-*
	// or match-* entries.
	g, err := graph.RandomEulerian(96, 12, 3, 21)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	if _, _, err := Orient(g, nil, Options{Mode: Randomized, Seed: 1, Ledger: led}); err != nil {
		t.Fatal(err)
	}
	for _, e := range led.Entries() {
		switch e.Tag {
		case "cv-color", "cv-shiftdown", "match-propose", "match-accept":
			t.Fatalf("randomized mode recorded %s rounds", e.Tag)
		}
	}
}

// Property: both modes produce valid orientations on the same graphs.
func TestOrientModesAgreeOnValidity(t *testing.T) {
	f := func(seed int64) bool {
		g, err := graph.RandomEulerian(32, 5, 3, seed)
		if err != nil {
			return false
		}
		d, _, err := Orient(g, nil, Options{Mode: Deterministic})
		if err != nil {
			return false
		}
		r, _, err := Orient(g, nil, Options{Mode: Randomized, Seed: seed})
		if err != nil {
			return false
		}
		return CheckOrientation(g, d) == -1 && CheckOrientation(g, r) == -1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
