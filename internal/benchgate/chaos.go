package benchgate

import (
	"fmt"
	"io"
	"math"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

// The chaos suite records the recovery overhead of the supervised TCP
// backend under deterministic worker-kill plans: CleanRounds is the number
// of committed barriers of the run, FaultyRounds the number of delivery
// attempts (committed barriers plus kill-forced replays), and OverheadPct
// the replay overhead. Kills are barrier-indexed and fire exactly once, so
// unlike socket-level resets (whose restart count depends on how far a
// write raced the collapse) every figure here is host-independent and gates
// exactly. The measurement also cross-checks that the killed run's results
// are bit-identical to an undisturbed one and that the supervisor executed
// exactly the scheduled kills — a divergence fails the measurement itself,
// mirroring the net suite's transcript checksum.

// chaosTransport boots a supervised in-process TCP clique (real sockets and
// frames, no subprocess spawn cost) under the given kill plan. The
// heartbeat is disabled so every restart is attributable to a kill.
func chaosTransport(kills ...transport.Kill) (*tcp.Transport, error) {
	var plan *transport.ChaosPlan
	if len(kills) > 0 {
		plan = &transport.ChaosPlan{Seed: 1, Kills: kills}
	}
	return tcp.New(tcp.Options{
		Procs:             netProcs,
		Supervise:         true,
		HeartbeatInterval: -1,
		BarrierTimeout:    30 * time.Second,
		Chaos:             plan,
		Stderr:            io.Discard,
	})
}

// chaosRecord folds one clean/killed run pair into a Workload entry after
// verifying the supervisor's ledger adds up.
func chaosRecord(out map[string]Workload, name, instance string, kills int,
	cleanCk, killedCk tcp.Checkpoint, rec tcp.RecoveryStats) error {
	if killedCk.Barriers != cleanCk.Barriers || killedCk.InDigest != cleanCk.InDigest {
		return fmt.Errorf("benchgate: chaos/%s: checkpoints diverge: clean %+v killed %+v",
			name, cleanCk, killedCk)
	}
	if rec.Kills != uint64(kills) || rec.ReplayedBarriers != uint64(kills) {
		return fmt.Errorf("benchgate: chaos/%s: scheduled %d kills, recovery shows %+v",
			name, kills, rec)
	}
	clean := int64(cleanCk.Barriers)
	attempts := clean + int64(rec.ReplayedBarriers)
	overhead := 0.0
	if clean > 0 {
		overhead = math.Round(float64(attempts-clean)/float64(clean)*1000) / 10
	}
	out[name] = Workload{
		Instance:     instance,
		CleanRounds:  clean,
		FaultyRounds: attempts,
		OverheadPct:  overhead,
	}
	return nil
}

// measureChaosEngine runs the net suite's engine workload through one
// supervised clique and returns the final checkpoint, recovery stats, and
// transcript checksum.
func measureChaosEngine(kills ...transport.Kill) (tcp.Checkpoint, tcp.RecoveryStats, uint64, error) {
	tr, err := chaosTransport(kills...)
	if err != nil {
		return tcp.Checkpoint{}, tcp.RecoveryStats{}, 0, err
	}
	defer tr.Close()
	e := cc.NewEngine(netN)
	e.SetTransport(tr)
	step, sum := netStep()
	if _, err := e.Run(step, netRounds+8); err != nil {
		return tcp.Checkpoint{}, tcp.RecoveryStats{}, 0, err
	}
	return tr.Checkpoint(), tr.Recovery(), *sum, nil
}

// MeasureChaosWorkloads re-measures BENCH_chaos.json: the engine workload
// and a Laplacian solve through supervised TCP cliques with worker kills
// scheduled mid-run, recording the barrier-replay overhead of recovery.
func MeasureChaosWorkloads() (map[string]Workload, error) {
	out := map[string]Workload{}

	// Engine workload, clean supervised baseline.
	cleanCk, cleanRec, cleanSum, err := measureChaosEngine()
	if err != nil {
		return nil, fmt.Errorf("benchgate: chaos/engine clean: %w", err)
	}
	if cleanRec.Restarts != 0 {
		return nil, fmt.Errorf("benchgate: chaos/engine clean run restarted: %+v", cleanRec)
	}

	engineKills := [][]transport.Kill{
		{{Barrier: 3, Proc: 1}},
		{{Barrier: 1, Proc: 2}, {Barrier: 9, Proc: 0}},
	}
	for i, kills := range engineKills {
		name := fmt.Sprintf("engine-kill%d", len(kills))
		ck, rec, sum, err := measureChaosEngine(kills...)
		if err != nil {
			return nil, fmt.Errorf("benchgate: chaos/%s: %w", name, err)
		}
		if sum != cleanSum {
			return nil, fmt.Errorf("benchgate: chaos/%s: transcript checksum diverges: clean=%x killed=%x",
				name, cleanSum, sum)
		}
		instance := fmt.Sprintf("net workload n=%d fan=%d rounds=%d procs=%d, %d kill(s), plan %d",
			netN, netFan, netRounds, netProcs, len(kills), i+1)
		if err := chaosRecord(out, name, instance, len(kills), cleanCk, ck, rec); err != nil {
			return nil, err
		}
	}

	// Lapsolver: the batched solver packs a fault-free solve into a single
	// transport barrier, so a kill at barrier 0 replays the whole run.
	{
		g, err := graph.ConnectedGNM(48, 140, 11)
		if err != nil {
			return nil, fmt.Errorf("benchgate: chaos/lapsolver: %w", err)
		}
		b := linalg.NewVec(48)
		b[0], b[47] = 1, -1

		solve := func(kills ...transport.Kill) (*core.LaplacianResult, tcp.Checkpoint, tcp.RecoveryStats, error) {
			tr, err := chaosTransport(kills...)
			if err != nil {
				return nil, tcp.Checkpoint{}, tcp.RecoveryStats{}, err
			}
			defer tr.Close()
			res, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Transport: tr})
			if err != nil {
				return nil, tcp.Checkpoint{}, tcp.RecoveryStats{}, err
			}
			return res, tr.Checkpoint(), tr.Recovery(), nil
		}
		clean, cleanCk, _, err := solve()
		if err != nil {
			return nil, fmt.Errorf("benchgate: chaos/lapsolver clean: %w", err)
		}
		killed, ck, rec, err := solve(transport.Kill{Barrier: 0, Proc: 3})
		if err != nil {
			return nil, fmt.Errorf("benchgate: chaos/lapsolver killed: %w", err)
		}
		for i := range clean.X {
			if clean.X[i] != killed.X[i] {
				return nil, fmt.Errorf("benchgate: chaos/lapsolver: potentials diverge at %d", i)
			}
		}
		if clean.Rounds != killed.Rounds {
			return nil, fmt.Errorf("benchgate: chaos/lapsolver: round ledgers diverge: %+v != %+v",
				clean.Rounds, killed.Rounds)
		}
		if err := chaosRecord(out, "lapsolver-kill1",
			"ConnectedGNM n=48 m=140 eps=1e-8, 1 kill at barrier 0", 1, cleanCk, ck, rec); err != nil {
			return nil, err
		}
	}

	return out, nil
}
