package cc

import (
	"errors"
	"fmt"
	"reflect"
	"testing"
)

// hashMix is a small deterministic mixer used to derive per-(node, round)
// program behavior without any shared RNG state — the step functions built
// from it are safe to call concurrently, as the parallel engine requires.
func hashMix(vals ...int64) uint64 {
	h := uint64(0x9e3779b97f4a7c15)
	for _, v := range vals {
		h ^= uint64(v) + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
	}
	return h
}

// randomProgram builds a pseudo-random but fully deterministic step
// function: each node is active for a seed-dependent number of rounds,
// sending seed-dependent payloads to seed-dependent distinct destinations.
// Every message a node receives is appended to its transcript, so two runs
// are equivalent iff their transcripts (order included), round counts, and
// message counts all match.
func randomProgram(n int, seed int64) (Step, [][]int64) {
	transcripts := make([][]int64, n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		for _, m := range inbox {
			transcripts[node] = append(transcripts[node], int64(round), int64(m.From), int64(len(m.Data)))
			transcripts[node] = append(transcripts[node], m.Data...)
		}
		active := 1 + int(hashMix(seed, int64(node))%6)
		if round >= active {
			return true
		}
		h := hashMix(seed, int64(node), int64(round))
		k := int(h % 4)
		if k > n-1 {
			k = n - 1
		}
		start := int((h >> 8) % uint64(n-1))
		width := 1 + int((h>>32)%3)
		var payload [3]int64
		for w := 0; w < width; w++ {
			payload[w] = int64(hashMix(seed, int64(node), int64(round), int64(w)))
		}
		for i := 0; i < k; i++ {
			to := (node + 1 + (start+i)%(n-1)) % n
			send(to, payload[:width]...)
		}
		return false
	}
	return step, transcripts
}

type engineOutcome struct {
	used     int64
	err      error
	rounds   int64
	messages int64
}

func runVariant(t *testing.T, name string, n int, seed int64, configure func(*Engine), reference bool) (engineOutcome, [][]int64) {
	t.Helper()
	e := NewEngine(n)
	if configure != nil {
		configure(e)
	}
	step, transcripts := randomProgram(n, seed)
	var used int64
	var err error
	if reference {
		used, err = e.runReference(step, 64)
	} else {
		used, err = e.Run(step, 64)
	}
	if err != nil {
		t.Fatalf("%s(n=%d, seed=%d): %v", name, n, seed, err)
	}
	return engineOutcome{used: used, err: err, rounds: e.Rounds(), messages: e.Messages()}, transcripts
}

// TestEngineEquivalenceRandomPrograms is the determinism guarantee: across
// randomized programs, the parallel engine (several worker counts), the
// sequential escape hatch, and the retained legacy reference implementation
// produce identical round counts, message counts, and per-node inbox
// transcripts — order included, since the merge is deterministic.
func TestEngineEquivalenceRandomPrograms(t *testing.T) {
	variants := []struct {
		name      string
		configure func(*Engine)
		reference bool
	}{
		{"reference", nil, true},
		{"sequential", func(e *Engine) { e.SetSequential(true) }, false},
		{"workers=2", func(e *Engine) { e.SetWorkers(2) }, false},
		{"workers=3", func(e *Engine) { e.SetWorkers(3) }, false},
		{"workers=8", func(e *Engine) { e.SetWorkers(8) }, false},
	}
	for seed := int64(1); seed <= 12; seed++ {
		n := 4 + int(hashMix(seed)%29)
		base, baseTr := runVariant(t, variants[0].name, n, seed, variants[0].configure, variants[0].reference)
		for _, v := range variants[1:] {
			got, gotTr := runVariant(t, v.name, n, seed, v.configure, v.reference)
			if got != base {
				t.Fatalf("n=%d seed=%d: %s outcome %+v != reference %+v", n, seed, v.name, got, base)
			}
			for node := range baseTr {
				if !reflect.DeepEqual(baseTr[node], gotTr[node]) {
					t.Fatalf("n=%d seed=%d node=%d: %s transcript diverges\nref: %v\ngot: %v",
						n, seed, node, v.name, baseTr[node], gotTr[node])
				}
			}
		}
	}
}

// TestEngineEquivalenceBCC runs the equivalence check with the Broadcast
// Congested Clique restriction on, using a program in which every node
// sends one identical word to all peers per active round.
func TestEngineEquivalenceBCC(t *testing.T) {
	n := 9
	run := func(configure func(*Engine)) ([][]int64, int64, int64) {
		e := NewEngine(n)
		e.SetBroadcastOnly(true)
		if configure != nil {
			configure(e)
		}
		transcripts := make([][]int64, n)
		step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
			for _, m := range inbox {
				transcripts[node] = append(transcripts[node], int64(m.From), m.Data[0])
			}
			if round >= 1+node%3 {
				return true
			}
			word := int64(hashMix(int64(node), int64(round)))
			for v := 0; v < n; v++ {
				if v != node {
					send(v, word)
				}
			}
			return false
		}
		used, err := e.Run(step, 16)
		if err != nil {
			t.Fatal(err)
		}
		return transcripts, used, e.Messages()
	}
	seqTr, seqUsed, seqMsgs := run(func(e *Engine) { e.SetSequential(true) })
	parTr, parUsed, parMsgs := run(func(e *Engine) { e.SetWorkers(4) })
	if seqUsed != parUsed || seqMsgs != parMsgs {
		t.Fatalf("BCC sequential (%d, %d) != parallel (%d, %d)", seqUsed, seqMsgs, parUsed, parMsgs)
	}
	if !reflect.DeepEqual(seqTr, parTr) {
		t.Fatal("BCC transcripts diverge between sequential and parallel")
	}
}

// TestEngineErrorEquivalence: model violations yield the same error class
// and consumed-round count under every execution mode.
func TestEngineErrorEquivalence(t *testing.T) {
	n := 8
	badStep := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 2 && node == 5 {
			send(1, 1)
			send(1, 2)
		} else if node != round%n {
			send(round%n, int64(node))
		}
		return false
	}
	type result struct {
		used int64
		ok   bool
	}
	run := func(configure func(*Engine), reference bool) result {
		e := NewEngine(n)
		if configure != nil {
			configure(e)
		}
		var used int64
		var err error
		if reference {
			used, err = e.runReference(badStep, 10)
		} else {
			used, err = e.Run(badStep, 10)
		}
		return result{used: used, ok: errors.Is(err, ErrDuplicatePair)}
	}
	ref := run(nil, true)
	if !ref.ok {
		t.Fatal("reference did not report ErrDuplicatePair")
	}
	for _, cfg := range []func(*Engine){
		func(e *Engine) { e.SetSequential(true) },
		func(e *Engine) { e.SetWorkers(3) },
		func(e *Engine) { e.SetWorkers(8) },
	} {
		if got := run(cfg, false); got != ref {
			t.Fatalf("error outcome %+v != reference %+v", got, ref)
		}
	}
}

// TestEngineParallelStress exists to run under -race: many workers, many
// rounds, every node both sending and receiving every round, with engine
// state recycled across repeated Run calls on the same Engine.
func TestEngineParallelStress(t *testing.T) {
	n := 48
	e := NewEngine(n)
	e.SetWorkers(8)
	for rep := 0; rep < 3; rep++ {
		received := make([]int64, n)
		step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
			for _, m := range inbox {
				received[node] += m.Data[0]
			}
			if round >= 20 {
				return true
			}
			for i := 1; i <= 4; i++ {
				send((node+i)%n, int64(node+round), int64(i))
			}
			return false
		}
		used, err := e.Run(step, 32)
		if err != nil {
			t.Fatal(err)
		}
		if used != 20 {
			t.Fatalf("rep %d: used %d rounds, want 20", rep, used)
		}
		want := received[0]
		for v := 1; v < n; v++ {
			// Symmetric program: every node receives the same aggregate
			// modulo its index offset; just check nothing was lost.
			if received[v] == 0 {
				t.Fatalf("rep %d: node %d received nothing", rep, v)
			}
		}
		_ = want
	}
	if e.Messages() != int64(3*20*4*48) {
		t.Fatalf("Messages = %d, want %d", e.Messages(), 3*20*4*48)
	}
}

// TestEngineSteadyStateAllocations: after warm-up, a sequential-mode Run
// recycles every buffer — the engine itself performs (close to) zero heap
// allocations per run even though each run moves thousands of messages.
func TestEngineSteadyStateAllocations(t *testing.T) {
	n := 64
	e := NewEngine(n)
	e.SetSequential(true)
	payload := []int64{1, 2, 3}
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round >= 4 {
			return true
		}
		for i := 1; i <= 8; i++ {
			send((node+i)%n, payload...)
		}
		return false
	}
	run := func() {
		if _, err := e.Run(step, 8); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm-up sizes all recycled buffers
	allocs := testing.AllocsPerRun(20, run)
	// 5 rounds x 64 nodes x 8 sends = 2560 messages per run; the old
	// engine allocated several objects per message. Allow a little noise.
	if allocs > 16 {
		t.Fatalf("steady-state Run allocates %.0f objects; want ~0", allocs)
	}
}

// TestRouteBatchedOutOfRangeEndpoints covers the RouteBatched bad-endpoint
// path directly for every flavor of out-of-range Src/Dst, including the
// negative indices that would panic the counting arrays if the delegated
// error check ever fell through.
func TestRouteBatchedOutOfRangeEndpoints(t *testing.T) {
	n := 4
	cases := []Packet{
		{Src: -1, Dst: 0},
		{Src: 0, Dst: -2},
		{Src: n, Dst: 0},
		{Src: 0, Dst: n},
		{Src: -5, Dst: n + 3},
	}
	for _, bad := range cases {
		t.Run(fmt.Sprintf("src=%d,dst=%d", bad.Src, bad.Dst), func(t *testing.T) {
			// The bad packet is surrounded by valid traffic so the batching
			// bookkeeping is active when it is hit.
			pkts := []Packet{
				{Src: 0, Dst: 1, Data: []int64{1}},
				bad,
				{Src: 2, Dst: 3, Data: []int64{2}},
			}
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("RouteBatched panicked: %v", r)
				}
			}()
			_, _, err := RouteBatched(n, pkts, nil, "")
			if !errors.Is(err, ErrBadRecipient) {
				t.Fatalf("error = %v, want ErrBadRecipient", err)
			}
		})
	}
}
