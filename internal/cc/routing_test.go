package cc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/rounds"
)

func TestRouteDeliversAllPackets(t *testing.T) {
	n := 10
	var pkts []Packet
	for s := 0; s < n; s++ {
		for k := 0; k < 3; k++ {
			pkts = append(pkts, Packet{Src: s, Dst: (s + k + 1) % n, Data: []int64{int64(s*10 + k)}})
		}
	}
	led := rounds.New()
	out, res, err := Route(n, pkts, led, "test-route")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for d := 0; d < n; d++ {
		total += len(out[d])
		for _, p := range out[d] {
			if p.Dst != d {
				t.Fatalf("packet for %d delivered to %d", p.Dst, d)
			}
		}
	}
	if total != len(pkts) {
		t.Fatalf("delivered %d of %d packets", total, len(pkts))
	}
	if res.Executed <= 0 {
		t.Fatalf("executed rounds = %d", res.Executed)
	}
	if led.Total() != res.Charged {
		t.Fatalf("ledger %d != charged %d", led.Total(), res.Charged)
	}
}

func TestRouteHotDestinationWithinLenzenBound(t *testing.T) {
	// All n sources send one packet to the same destination: admissible
	// (destination receives exactly n), and the relay spreads them over
	// distinct intermediates so delivery stays within the Lenzen bound.
	n := 32
	var pkts []Packet
	for s := 0; s < n; s++ {
		if s == 0 {
			continue
		}
		pkts = append(pkts, Packet{Src: s, Dst: 0, Data: []int64{int64(s)}})
	}
	out, res, err := Route(n, pkts, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out[0]) != n-1 {
		t.Fatalf("destination received %d, want %d", len(out[0]), n-1)
	}
	if res.Overflowed {
		t.Fatalf("hot destination overflowed Lenzen bound: executed %d", res.Executed)
	}
}

func TestRouteManyParallelPairMessages(t *testing.T) {
	// One source sends k messages to one destination. Direct delivery would
	// need k rounds; the relay must do much better.
	n := 64
	k := 48
	var pkts []Packet
	for i := 0; i < k; i++ {
		pkts = append(pkts, Packet{Src: 3, Dst: 9, Data: []int64{int64(i)}})
	}
	out, res, err := Route(n, pkts, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out[9]) != k {
		t.Fatalf("delivered %d of %d", len(out[9]), k)
	}
	if res.Executed >= int64(k) {
		t.Fatalf("relay no better than direct: %d rounds for %d duplicates", res.Executed, k)
	}
}

func TestRouteRejectsOverload(t *testing.T) {
	n := 4
	var pkts []Packet
	for i := 0; i < n+1; i++ {
		pkts = append(pkts, Packet{Src: 0, Dst: 1 + i%(n-1), Data: nil})
	}
	// Source 0 sends n+1 > n packets.
	if _, _, err := Route(n, pkts, nil, ""); !errors.Is(err, ErrRoutingOverload) {
		t.Fatalf("error = %v, want ErrRoutingOverload", err)
	}
}

func TestRouteRejectsBadEndpoints(t *testing.T) {
	if _, _, err := Route(4, []Packet{{Src: 0, Dst: 4}}, nil, ""); !errors.Is(err, ErrBadRecipient) {
		t.Fatalf("error = %v, want ErrBadRecipient", err)
	}
	if _, _, err := Route(4, []Packet{{Src: -1, Dst: 0}}, nil, ""); !errors.Is(err, ErrBadRecipient) {
		t.Fatalf("error = %v, want ErrBadRecipient", err)
	}
}

func TestRouteEmptyCostsNothing(t *testing.T) {
	led := rounds.New()
	_, res, err := Route(5, nil, led, "noop")
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 || led.Total() != 0 {
		t.Fatalf("empty route executed %d rounds, ledger %d", res.Executed, led.Total())
	}
}

// Property: every admissible random instance is delivered completely, to the
// right nodes, within the charged bound.
func TestRouteDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(30)
		perSrc := rng.Intn(n + 1)
		var pkts []Packet
		dstCount := make([]int, n)
		for s := 0; s < n; s++ {
			for k := 0; k < perSrc; k++ {
				d := rng.Intn(n)
				if dstCount[d] >= n {
					continue
				}
				dstCount[d]++
				pkts = append(pkts, Packet{Src: s, Dst: d, Data: []int64{int64(s), int64(k)}})
			}
		}
		out, res, err := Route(n, pkts, nil, "")
		if err != nil {
			return false
		}
		got := 0
		for d := 0; d < n; d++ {
			got += len(out[d])
			for _, p := range out[d] {
				if p.Dst != d {
					return false
				}
			}
		}
		return got == len(pkts) && res.Charged <= rounds.LenzenRoundBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastAll(t *testing.T) {
	led := rounds.New()
	vals := []int64{5, 6, 7}
	got, err := BroadcastAll(3, vals, led, "bcast")
	if err != nil {
		t.Fatal(err)
	}
	for i := range vals {
		if got[i] != vals[i] {
			t.Fatalf("got %v", got)
		}
	}
	if led.Total() != 1 {
		t.Fatalf("broadcast charged %d rounds, want 1", led.Total())
	}
	if _, err := BroadcastAll(3, []int64{1}, nil, ""); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestRouteCountsLinkMessages(t *testing.T) {
	n := 8
	pkts := []Packet{
		{Src: 0, Dst: 3, Data: []int64{1}},
		{Src: 1, Dst: 4, Data: []int64{2}},
	}
	_, res, err := Route(n, pkts, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	// Each packet: one relay hop + one delivery hop (unless the intermediate
	// happens to be the destination).
	if res.LinkMessages < 2 || res.LinkMessages > 4 {
		t.Fatalf("LinkMessages = %d, want 2..4 for 2 packets", res.LinkMessages)
	}
}

func TestEngineCountsMessages(t *testing.T) {
	e := NewEngine(4)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 {
			for v := 0; v < 4; v++ {
				if v != node {
					send(v, 1)
				}
			}
			return false
		}
		return true
	}
	if _, err := e.Run(step, 3); err != nil {
		t.Fatal(err)
	}
	if e.Messages() != 12 {
		t.Fatalf("Messages = %d, want 12 (all-to-all on 4 nodes)", e.Messages())
	}
}
