package core

import (
	"errors"
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// Op names one of the facade's algorithms in the request-oriented API. The
// values are the wire names the serving daemon (internal/serve, cmd/lapccd)
// exposes as RPC endpoints.
type Op string

const (
	// OpSolve is SolveLaplacian (Theorem 1.1).
	OpSolve Op = "solve"
	// OpSparsify is Sparsify (Theorem 3.3).
	OpSparsify Op = "sparsify"
	// OpOrient is EulerianOrient (Theorem 1.4).
	OpOrient Op = "orient"
	// OpRoundFlow is RoundFlow (Lemma 4.2).
	OpRoundFlow Op = "roundflow"
	// OpMaxFlow is MaxFlow (Theorem 1.2).
	OpMaxFlow Op = "maxflow"
	// OpMinCostFlow is MinCostFlow (Theorem 1.3).
	OpMinCostFlow Op = "mincostflow"
)

// Ops lists every operation Do dispatches, in stable order.
var Ops = []Op{OpSolve, OpSparsify, OpOrient, OpRoundFlow, OpMaxFlow, OpMinCostFlow}

// ErrBadRequest reports a Request that fails validation before any solver
// runs: unknown op, missing graph, or malformed op arguments. Errors wrap it
// so transport layers can map validation failures to client errors
// (HTTP 400) while solver failures stay server-side.
var ErrBadRequest = errors.New("core: bad request")

// Args carries the per-op arguments of a Request. Only the fields the
// requested Op reads are consulted; the rest are ignored.
type Args struct {
	// B is the right-hand side (OpSolve).
	B linalg.Vec
	// Eps is the target relative error in the L_G norm (OpSolve).
	Eps float64
	// Source and Sink are the flow poles (OpMaxFlow, OpRoundFlow).
	Source, Sink int
	// Sigma is the demand vector (OpMinCostFlow).
	Sigma []int64
	// Flow is the fractional flow to round, per arc (OpRoundFlow).
	Flow []float64
	// Delta is the fractional granularity of Flow (OpRoundFlow).
	Delta float64
	// UseCosts makes the rounding cost-aware (OpRoundFlow).
	UseCosts bool
}

// Request is the facade's single request shape: one Op, the graph it runs
// on (undirected ops read Graph, flow ops read DiGraph), its Args, and the
// cross-cutting RunOptions. It is the in-process mirror of the daemon's
// JSON request body, so CLIs, tests, and the serving layer all drive the
// solvers through the same surface.
type Request struct {
	Op      Op
	Graph   *graph.Graph   // OpSolve, OpSparsify, OpOrient
	DiGraph *graph.DiGraph // OpMaxFlow, OpMinCostFlow, OpRoundFlow
	Args    Args
	Run     RunOptions
}

// Response is the facade's single response shape: exactly one result field
// is non-nil, matching the request's Op, and Rounds mirrors that result's
// round report for uniform access.
type Response struct {
	Op          Op
	Laplacian   *LaplacianResult
	Sparsifier  *SparsifyResult
	Eulerian    *EulerianResult
	RoundedFlow *RoundFlowResult
	MaxFlow     *MaxFlowResult
	MinCostFlow *MinCostFlowResult
	Rounds      RoundReport
}

// Validate checks the request's shape without running anything. All errors
// wrap ErrBadRequest.
func (r *Request) Validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: op %s: %s", ErrBadRequest, r.Op, fmt.Sprintf(format, args...))
	}
	needGraph := func() error {
		if r.Graph == nil {
			return bad("missing undirected graph")
		}
		return nil
	}
	needDiGraph := func() error {
		if r.DiGraph == nil {
			return bad("missing directed graph")
		}
		return nil
	}
	switch r.Op {
	case OpSolve:
		if err := needGraph(); err != nil {
			return err
		}
		if len(r.Args.B) != r.Graph.N() {
			return bad("right-hand side has %d entries for n=%d", len(r.Args.B), r.Graph.N())
		}
		if !(r.Args.Eps > 0 && r.Args.Eps <= 0.5) {
			return bad("eps %v outside (0, 1/2]", r.Args.Eps)
		}
	case OpSparsify, OpOrient:
		if err := needGraph(); err != nil {
			return err
		}
	case OpMaxFlow:
		if err := needDiGraph(); err != nil {
			return err
		}
		n := r.DiGraph.N()
		if r.Args.Source < 0 || r.Args.Source >= n || r.Args.Sink < 0 || r.Args.Sink >= n || r.Args.Source == r.Args.Sink {
			return bad("bad poles (%d, %d) for n=%d", r.Args.Source, r.Args.Sink, n)
		}
	case OpMinCostFlow:
		if err := needDiGraph(); err != nil {
			return err
		}
		if len(r.Args.Sigma) != r.DiGraph.N() {
			return bad("demand vector has %d entries for n=%d", len(r.Args.Sigma), r.DiGraph.N())
		}
	case OpRoundFlow:
		if err := needDiGraph(); err != nil {
			return err
		}
		n := r.DiGraph.N()
		if r.Args.Source < 0 || r.Args.Source >= n || r.Args.Sink < 0 || r.Args.Sink >= n || r.Args.Source == r.Args.Sink {
			return bad("bad poles (%d, %d) for n=%d", r.Args.Source, r.Args.Sink, n)
		}
		if len(r.Args.Flow) != r.DiGraph.M() {
			return bad("flow vector has %d entries for m=%d", len(r.Args.Flow), r.DiGraph.M())
		}
		if !(r.Args.Delta > 0) {
			return bad("delta %v must be positive", r.Args.Delta)
		}
	default:
		return fmt.Errorf("%w: unknown op %q", ErrBadRequest, r.Op)
	}
	return nil
}

// Do validates req and dispatches it to the matching entry point. It is the
// single call surface behind the daemon handlers and the CLIs; the typed
// XxxWith functions remain for callers that want compile-time argument
// checking, and Do adds nothing on top of them but the dispatch.
func Do(req Request) (*Response, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	resp := &Response{Op: req.Op}
	switch req.Op {
	case OpSolve:
		res, err := SolveLaplacianWith(req.Graph, req.Args.B, req.Args.Eps, req.Run)
		if err != nil {
			return nil, err
		}
		resp.Laplacian, resp.Rounds = res, res.Rounds
	case OpSparsify:
		res, err := SparsifyWith(req.Graph, req.Run)
		if err != nil {
			return nil, err
		}
		resp.Sparsifier, resp.Rounds = res, res.Rounds
	case OpOrient:
		res, err := EulerianOrientWith(req.Graph, req.Run)
		if err != nil {
			return nil, err
		}
		resp.Eulerian, resp.Rounds = res, res.Rounds
	case OpRoundFlow:
		res, err := RoundFlowWith(RoundFlowRequest{
			Graph:    req.DiGraph,
			Flow:     req.Args.Flow,
			Source:   req.Args.Source,
			Sink:     req.Args.Sink,
			Delta:    req.Args.Delta,
			UseCosts: req.Args.UseCosts,
		}, req.Run)
		if err != nil {
			return nil, err
		}
		resp.RoundedFlow, resp.Rounds = res, res.Rounds
	case OpMaxFlow:
		res, err := MaxFlowWith(req.DiGraph, req.Args.Source, req.Args.Sink, req.Run)
		if err != nil {
			return nil, err
		}
		resp.MaxFlow, resp.Rounds = res, res.Rounds
	case OpMinCostFlow:
		res, err := MinCostFlowWith(req.DiGraph, req.Args.Sigma, req.Run)
		if err != nil {
			return nil, err
		}
		resp.MinCostFlow, resp.Rounds = res, res.Rounds
	}
	return resp, nil
}
