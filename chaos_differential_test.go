package lapcc_test

// Chaos differential tests: the supervised TCP backend must survive real
// worker-process deaths (SIGKILL) and socket-level mesh faults (connection
// resets, fragmented writes) injected mid-solve, and still produce solution
// vectors, flow values, round ledgers, and injected-fault stats that are
// bit-identical to an undisturbed in-process run. This is the acceptance
// gate of the crash-recovery layer: supervision may change how often bytes
// move, never what the solver computes or what it is charged.

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

// chaosKillPlan schedules two worker kills plus socket faults: epoch 0
// resets on 90% of mesh writes (the first mesh incarnation is guaranteed to
// collapse under a reset), later epochs fragment 10% of writes so the
// recovered run keeps exercising reassembly.
func chaosKillPlan(kills ...transport.Kill) *transport.ChaosPlan {
	return &transport.ChaosPlan{Seed: 7, Reset: 0.9, Partial: 0.1, Kills: kills}
}

// chaosTransport boots a supervised 4-process clique of real lapccnode
// subprocesses under the given plan, with a flight recorder attached. When
// the test fails, the recorder's recent-event ring is dumped to
// $LAPCC_ARTIFACT_DIR (or the working directory) so CI preserves the
// transport's last moments alongside the failure.
func chaosTransport(t *testing.T, plan *transport.ChaosPlan) *tcp.Transport {
	t.Helper()
	tr, err := tcp.New(tcp.Options{
		Procs:          4,
		Binary:         nodeBinary(t),
		Supervise:      true,
		BarrierTimeout: 30 * time.Second,
		Chaos:          plan,
		Stderr:         io.Discard,
	})
	if err != nil {
		t.Fatalf("booting supervised tcp transport: %v", err)
	}
	fl := trace.NewFlight(trace.DefaultFlightSize)
	tr.SetFlight(fl, "")
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("LAPCC_ARTIFACT_DIR")
		if dir == "" {
			dir = "."
		}
		path := filepath.Join(dir, strings.ReplaceAll(t.Name(), "/", "_")+".flight.jsonl")
		if err := fl.DumpFile(path); err != nil {
			t.Logf("flight dump: %v", err)
		} else {
			t.Logf("flight dump written to %s (%d events)", path, fl.Len())
		}
	})
	return tr
}

// faultCounts reads the engine's injected-fault counters (the metrics
// mirror of cc.FaultStats) out of a run's registry.
func faultCounts(reg *metrics.Registry) [5]int64 {
	var out [5]int64
	for i, typ := range []string{"dropped", "corrupted", "duplicated", "delayed", "stalled_steps"} {
		out[i] = reg.Counter("lapcc_engine_faults_total", "", "type", typ).Value()
	}
	return out
}

// checkRecovery asserts the supervisor actually did what the plan
// scheduled: both kills executed, at least one extra restart came from a
// socket-level reset, and every restart replayed its barrier.
func checkRecovery(t *testing.T, rec tcp.RecoveryStats) {
	t.Helper()
	if rec.Kills != 2 {
		t.Fatalf("scheduled 2 kills, executed %d (recovery %+v)", rec.Kills, rec)
	}
	if resets := rec.Restarts - rec.Kills - rec.HeartbeatFailures; resets < 1 {
		t.Fatalf("no restart attributable to a connection reset (recovery %+v)", rec)
	}
	if rec.ReplayedBarriers < 3 {
		t.Fatalf("expected >= 3 barrier replays (1 reset + 2 kills), got %d (recovery %+v)", rec.ReplayedBarriers, rec)
	}
	if rec.Respawns < 4 {
		t.Fatalf("workers were never respawned (recovery %+v)", rec)
	}
}

// TestChaosDifferentialLapsolver kills worker 1 before barrier 1 and worker
// 3 before barrier 2 of a supervised Laplacian solve (the batched solver
// packs the whole run into a handful of barriers) (plus an epoch-0 mesh
// reset) and requires the recovered run to match the in-process baseline
// bit for bit: potentials, the full round ledger, and the injected-fault
// counters.
func TestChaosDifferentialLapsolver(t *testing.T) {
	g, err := graph.ConnectedGNM(48, 140, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1

	baseReg := metrics.NewRegistry()
	base, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{
		Faults: dropPlan(101), Metrics: baseReg,
	})
	if err != nil {
		t.Fatal(err)
	}

	tr := chaosTransport(t, chaosKillPlan(
		transport.Kill{Barrier: 1, Proc: 1},
		transport.Kill{Barrier: 2, Proc: 3},
	))
	reg := metrics.NewRegistry()
	got, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{
		Faults: dropPlan(101), Transport: tr, Metrics: reg,
	})
	rec := tr.Recovery()
	tr.Close()
	if err != nil {
		t.Fatalf("chaotic solve: %v", err)
	}

	for i := range base.X {
		if base.X[i] != got.X[i] {
			t.Fatalf("potentials diverge at %d: %v != %v", i, got.X[i], base.X[i])
		}
	}
	sameRounds(t, "chaos", base.Rounds, got.Rounds)
	if bf, gf := faultCounts(baseReg), faultCounts(reg); bf != gf {
		t.Fatalf("fault stats diverge: %v != %v", gf, bf)
	}
	checkRecovery(t, rec)
}

// TestChaosDifferentialMaxflow runs the same gauntlet over MaxFlowWith:
// value, per-arc flows, and the charged ledger survive two mid-solve worker
// kills and an epoch-0 mesh reset unchanged.
func TestChaosDifferentialMaxflow(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	s, tt := 0, dg.N()-1
	base, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Faults: dropPlan(102)})
	if err != nil {
		t.Fatal(err)
	}

	tr := chaosTransport(t, chaosKillPlan(
		transport.Kill{Barrier: 1, Proc: 2},
		transport.Kill{Barrier: 4, Proc: 0},
	))
	got, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{
		Faults: dropPlan(102), Transport: tr,
	})
	rec := tr.Recovery()
	tr.Close()
	if err != nil {
		t.Fatalf("chaotic maxflow: %v", err)
	}

	if base.Value != got.Value {
		t.Fatalf("flow values diverge: %d != %d", got.Value, base.Value)
	}
	for i := range base.Flow {
		if base.Flow[i] != got.Flow[i] {
			t.Fatalf("flows diverge at arc %d", i)
		}
	}
	sameRounds(t, "chaos-flow", base.Rounds, got.Rounds)
	checkRecovery(t, rec)
}
