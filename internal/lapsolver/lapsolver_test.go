package lapsolver

import (
	"errors"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

func meanFreeVec(n int, seed int64) linalg.Vec {
	rng := rand.New(rand.NewSource(seed))
	b := linalg.NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	return b
}

func TestNewSolverRejectsDisconnected(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	if _, err := NewSolver(g, Options{}); !errors.Is(err, ErrDisconnected) {
		t.Fatalf("error = %v, want ErrDisconnected", err)
	}
}

func TestSolveAgainstDenseOracle(t *testing.T) {
	g, err := graph.RandomRegular(48, 6, 31)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(48, 37)
	want, err := linalg.LaplacianPseudoSolve(s.Laplacian().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	for _, eps := range []float64{0.5, 1e-2, 1e-6, 1e-10} {
		x, st, err := s.Solve(b, eps)
		if err != nil {
			t.Fatalf("eps=%v: %v", eps, err)
		}
		diff := x.Sub(want)
		rel := s.Laplacian().Norm(diff) / s.Laplacian().Norm(want)
		if rel > eps {
			t.Fatalf("eps=%v: relative L_G error %v (kappa=%v, iters=%d)", eps, rel, st.KappaUsed, st.Iterations)
		}
	}
}

func TestSolveWeightedGraph(t *testing.T) {
	base, err := graph.RandomRegular(40, 6, 41)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.WithRandomWeights(base, 100, 43)
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(40, 47)
	x, _, err := s.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := linalg.LaplacianPseudoSolve(s.Laplacian().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Sub(want)
	if rel := s.Laplacian().Norm(diff) / s.Laplacian().Norm(want); rel > 1e-8 {
		t.Fatalf("relative error %v", rel)
	}
}

func TestSolveZeroRHS(t *testing.T) {
	g := graph.Complete(10)
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	x, st, err := s.Solve(linalg.NewVec(10), 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if x.Norm2() != 0 || st.Iterations != 0 {
		t.Fatalf("zero rhs: x norm %v, iters %d", x.Norm2(), st.Iterations)
	}
}

func TestSolveValidation(t *testing.T) {
	g := graph.Complete(6)
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(linalg.NewVec(5), 1e-3); !errors.Is(err, ErrBadRHS) {
		t.Fatalf("bad rhs error = %v", err)
	}
	if _, _, err := s.Solve(linalg.NewVec(6), 0.9); err == nil {
		t.Fatal("eps > 1/2 should error")
	}
	if _, _, err := s.Solve(linalg.NewVec(6), 0); err == nil {
		t.Fatal("eps = 0 should error")
	}
}

func TestSolveRoundsScaleWithLogEps(t *testing.T) {
	// Theorem 1.1: rounds grow like log(1/eps). Squaring the precision must
	// grow the ledger by a bounded factor, not multiplicatively in 1/eps.
	g, err := graph.RandomRegular(64, 8, 53)
	if err != nil {
		t.Fatal(err)
	}
	roundsFor := func(eps float64) int64 {
		led := rounds.New()
		// NoEscalation pins the theory accounting: every attempt runs its
		// full prescribed O(sqrt(kappa) log(1/eps)) iterations. The default
		// mode's stagnation window stops at the floating-point floor, which
		// deliberately flattens exactly the growth this test measures.
		s, err := NewSolver(g, Options{Ledger: led, NoEscalation: true})
		if err != nil {
			t.Fatal(err)
		}
		led.Reset() // isolate solve cost from construction cost
		if _, _, err := s.Solve(meanFreeVec(64, 59), eps); err != nil {
			t.Fatal(err)
		}
		return led.Total()
	}
	r3 := roundsFor(1e-3)
	r9 := roundsFor(1e-9)
	if r9 > 5*r3 {
		t.Fatalf("rounds grew from %d (1e-3) to %d (1e-9); want ~3x (log scaling)", r3, r9)
	}
	if r9 <= r3 {
		t.Fatalf("rounds did not grow with precision: %d vs %d", r3, r9)
	}
}

func TestSolverReusableAcrossRHS(t *testing.T) {
	g := graph.Complete(20)
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	dense := s.Laplacian().Dense()
	for seed := int64(0); seed < 3; seed++ {
		b := meanFreeVec(20, 100+seed)
		x, _, err := s.Solve(b, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		want, err := linalg.LaplacianPseudoSolve(dense, b)
		if err != nil {
			t.Fatal(err)
		}
		diff := x.Sub(want)
		if rel := s.Laplacian().Norm(diff) / s.Laplacian().Norm(want); rel > 1e-8 {
			t.Fatalf("seed %d: relative error %v", seed, rel)
		}
	}
}

func TestPredictedRoundsShape(t *testing.T) {
	if PredictedRounds(4, 1e-6) <= PredictedRounds(4, 1e-2) {
		t.Fatal("predicted rounds must grow with precision")
	}
}
