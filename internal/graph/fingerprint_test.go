package graph

import "testing"

func buildFingerprintGraph() *Graph {
	g := New(6)
	g.MustAddEdge(0, 1, 1.0)
	g.MustAddEdge(1, 2, 2.0)
	g.MustAddEdge(2, 3, 0.5)
	g.MustAddEdge(3, 4, 7.0)
	g.MustAddEdge(4, 5, 1.25)
	g.MustAddEdge(0, 5, 3.0)
	return g
}

// The fingerprint is a pure function of the structure: a clone and an
// independently re-built twin agree, and weight-only mutations (SetWeight,
// SetWeights) never move it.
func TestFingerprintStableAcrossWeights(t *testing.T) {
	g := buildFingerprintGraph()
	fp := g.Fingerprint()
	if fp2 := buildFingerprintGraph().Fingerprint(); fp2 != fp {
		t.Fatalf("identical builds disagree: %x vs %x", fp, fp2)
	}
	if fp2 := g.Clone().Fingerprint(); fp2 != fp {
		t.Fatalf("clone disagrees: %x vs %x", fp, fp2)
	}
	if err := g.SetWeight(2, 99.5); err != nil {
		t.Fatal(err)
	}
	if got := g.Fingerprint(); got != fp {
		t.Fatalf("SetWeight moved the fingerprint: %x -> %x", fp, got)
	}
	w := g.Weights()
	for i := range w {
		w[i] = float64(i + 1)
	}
	if err := g.SetWeights(w); err != nil {
		t.Fatal(err)
	}
	if got := g.Fingerprint(); got != fp {
		t.Fatalf("SetWeights moved the fingerprint: %x -> %x", fp, got)
	}
	if !g.SameStructure(buildFingerprintGraph()) {
		t.Fatal("SameStructure must ignore weights")
	}
}

// Structural mutations must move the fingerprint: RewireEdge keeps M
// constant but changes endpoints, and AddEdge grows the list.
func TestFingerprintTracksStructure(t *testing.T) {
	g := buildFingerprintGraph()
	fp := g.Fingerprint()
	if err := g.RewireEdge(1, 1, 4); err != nil {
		t.Fatal(err)
	}
	rewired := g.Fingerprint()
	if rewired == fp {
		t.Fatal("RewireEdge left the fingerprint unchanged")
	}
	if g.SameStructure(buildFingerprintGraph()) {
		t.Fatal("SameStructure missed a rewire")
	}
	// Rewiring back restores the original structure exactly.
	if err := g.RewireEdge(1, 1, 2); err != nil {
		t.Fatal(err)
	}
	if got := g.Fingerprint(); got != fp {
		t.Fatalf("round-trip rewire: %x != %x", got, fp)
	}
	g.MustAddEdge(2, 5, 1.0)
	if got := g.Fingerprint(); got == fp {
		t.Fatal("AddEdge left the fingerprint unchanged")
	}
	// Same endpoints in a different edge-id order is a different structure:
	// sessions reweight by edge id, so the order is load-bearing.
	a := New(3)
	a.MustAddEdge(0, 1, 1)
	a.MustAddEdge(1, 2, 1)
	b := New(3)
	b.MustAddEdge(1, 2, 1)
	b.MustAddEdge(0, 1, 1)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("edge-id order must be part of the fingerprint")
	}
}

// The directed fingerprint covers capacities and costs: flow instances with
// different capacities are different problems, not reweightings.
func TestDiGraphFingerprint(t *testing.T) {
	build := func(capacity, cost int64) *DiGraph {
		dg := NewDi(4)
		dg.MustAddArc(0, 1, capacity, cost)
		dg.MustAddArc(1, 2, 2, 1)
		dg.MustAddArc(2, 3, 3, 2)
		return dg
	}
	fp := build(5, 1).Fingerprint()
	if got := build(5, 1).Fingerprint(); got != fp {
		t.Fatalf("identical builds disagree: %x vs %x", fp, got)
	}
	if got := build(5, 1).Clone().Fingerprint(); got != fp {
		t.Fatal("clone disagrees")
	}
	if build(6, 1).Fingerprint() == fp {
		t.Fatal("capacity change must move the fingerprint")
	}
	if build(5, 9).Fingerprint() == fp {
		t.Fatal("cost change must move the fingerprint")
	}
	if !build(5, 1).SameStructure(build(5, 1)) || build(5, 1).SameStructure(build(6, 1)) {
		t.Fatal("DiGraph.SameStructure must compare full arc tuples")
	}
}

func TestFingerprintString(t *testing.T) {
	if got := FingerprintString(0xab); got != "00000000000000ab" {
		t.Fatalf("FingerprintString(0xab) = %q", got)
	}
	if got := FingerprintString(0xdeadbeefdeadbeef); got != "deadbeefdeadbeef" {
		t.Fatalf("FingerprintString = %q", got)
	}
}
