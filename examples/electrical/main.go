// Electrical networks: compute node potentials, effective resistance, and
// edge currents on a 2D grid with the internal/electrical package — the
// workhorse primitive inside both flow IPMs (each interior-point iteration
// is exactly one such electrical solve).
//
//	go run ./examples/electrical
package main

import (
	"fmt"
	"os"

	"lapcc/internal/electrical"
	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "electrical:", err)
		os.Exit(1)
	}
}

func run() error {
	const rows, cols = 12, 12
	g := graph.Grid(rows, cols)
	corner := 0
	center := (rows/2)*cols + cols/2

	led := rounds.New()
	nw, err := electrical.NewNetwork(g, electrical.Options{Ledger: led})
	if err != nil {
		return err
	}

	phi, err := nw.PolePotentials(corner, center, 1e-10)
	if err != nil {
		return err
	}
	fmt.Printf("%dx%d grid: R_eff(corner, center) = %.6f ohms\n", rows, cols, phi[corner]-phi[center])
	fmt.Printf("dissipated energy at unit current: %.6f W (Thomson: equals R_eff)\n", nw.Energy(phi))

	idx, mag := nw.MaxCurrentEdge(phi)
	e := g.Edge(idx)
	fmt.Printf("most loaded edge: {%d,%d} carrying %.4f A of the 1 A injected\n", e.U, e.V, mag)

	// Amortization: more queries on the same network reuse the sparsifier.
	r2, err := nw.EffectiveResistance(0, rows*cols-1, 1e-10)
	if err != nil {
		return err
	}
	fmt.Printf("R_eff(corner, opposite corner) = %.6f ohms\n", r2)
	fmt.Printf("rounds: %d total (%d measured + %d charged)\n",
		led.Total(), led.TotalOf(rounds.Measured), led.TotalOf(rounds.Charged))
	return nil
}
