package sparsify

import (
	"fmt"
	"math"
	"math/rand"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// Randomized sparsification — the paper's closing remark: "replacing the
// Laplacian solver by a simpler, randomized solver (see [FV22]), we can
// convert the n^{o(1)} in both flow theorems into a polylog n factor."
// This file provides that simpler randomized ingredient: a
// Spielman-Srivastava effective-resistance sampling sparsifier. Effective
// resistances are estimated with the standard Johnson-Lindenstrauss
// sketch (O(log n) random +-1 edge projections, each one internal CG
// solve), edges are sampled with probability proportional to w_e * R_eff(e)
// and reweighted by 1/(q p_e). The round cost charged follows the [FV22]
// polylog regime.

// RandomOptions configures RandomizedSparsify.
type RandomOptions struct {
	// Eps is the target spectral error (default 0.5); the sample count is
	// O(n log n / Eps^2).
	Eps float64
	// SketchDim is the number of JL projections (default 4*ceil(log2 n)+8).
	SketchDim int
	// Seed drives sampling; runs are reproducible per seed.
	Seed int64
	// Ledger, if non-nil, receives the round costs.
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Metrics, if non-nil, receives live phase counters and a mirror of the
	// ledger's cost stream.
	Metrics *metrics.Registry
}

// CiteFV22 is the citation string for randomized-sparsifier round charges.
const CiteFV22 = "FV22 randomized Laplacian paradigm, polylog n rounds"

// RandomizedSparsifyRounds is the polylog round formula charged per
// randomized sparsifier construction.
func RandomizedSparsifyRounds(n int) int64 {
	if n < 2 {
		return 1
	}
	lg := math.Log2(float64(n))
	return int64(math.Ceil(lg * lg))
}

// RandomizedSparsify computes a randomized spectral sparsifier of the
// connected graph g. Unlike Sparsify it is not deterministic — it exists to
// quantify, per the paper's remark, what randomization buys (polylog rounds
// instead of n^{o(1)}); EXPERIMENTS.md E2b reports the comparison.
func RandomizedSparsify(g *graph.Graph, opts RandomOptions) (*Result, error) {
	if g.M() == 0 {
		return nil, ErrEmptyGraph
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("sparsify: randomized sparsifier requires a connected graph")
	}
	opts.Trace.Attach(opts.Ledger)
	opts.Metrics.MirrorLedger(opts.Ledger)
	opts.Metrics.Counter("lapcc_sparsify_random_builds_total", "Randomized sparsifier builds.").Inc()
	sp := opts.Trace.Start("sparsify-randomized")
	defer sp.End()
	if opts.Eps == 0 {
		opts.Eps = 0.5
	}
	n := g.N()
	if opts.SketchDim == 0 {
		opts.SketchDim = 4*int(math.Ceil(math.Log2(float64(n)+2))) + 8
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	lg := linalg.NewLaplacian(g)
	solve := linalg.LaplacianCGSolver(lg, 1e-10)

	// JL sketch of the effective-resistance embedding: for each random
	// +-1 edge vector r, solve L z = B^T W^{1/2} r; then
	// R_eff(u,v) ~ sum_k (z_k[u] - z_k[v])^2 (all internal computation).
	k := opts.SketchDim
	zs := make([]linalg.Vec, k)
	for i := 0; i < k; i++ {
		b := linalg.NewVec(n)
		for _, e := range g.Edges() {
			r := float64(rng.Intn(2)*2-1) * math.Sqrt(e.W)
			b[e.U] += r
			b[e.V] -= r
		}
		b.RemoveMean()
		z, err := solve(b)
		if err != nil {
			return nil, fmt.Errorf("sparsify: resistance sketch: %w", err)
		}
		zs[i] = z
	}
	reff := make([]float64, g.M())
	var totalScore float64
	for id, e := range g.Edges() {
		var r float64
		for i := 0; i < k; i++ {
			d := zs[i][e.U] - zs[i][e.V]
			r += d * d
		}
		r /= float64(k)
		// Clamp into the valid range (JL noise can stray slightly).
		if max := 1 / e.W; r > max {
			r = max
		}
		if r < 1e-15 {
			r = 1e-15
		}
		reff[id] = r
		totalScore += e.W * r
	}

	// Sample q = O(n log n / eps^2) edges with replacement, reweighted.
	q := int(math.Ceil(4 * float64(n) * math.Log2(float64(n)+2) / (opts.Eps * opts.Eps)))
	cum := make([]float64, g.M())
	var acc float64
	for id, e := range g.Edges() {
		acc += e.W * reff[id]
		cum[id] = acc
	}
	weights := make(map[int]float64)
	for s := 0; s < q; s++ {
		x := rng.Float64() * totalScore
		lo, hi := 0, g.M()-1
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		e := g.Edge(lo)
		p := e.W * reff[lo] / totalScore
		weights[lo] += e.W / (float64(q) * p)
	}
	h := graph.New(n)
	for id, w := range weights {
		e := g.Edge(id)
		h.MustAddEdge(e.U, e.V, w)
	}
	// Guarantee connectivity (sampling theory gives it whp; enforce it so
	// downstream CG solvers never see a broken preconditioner): add any
	// input edge joining distinct components at its original weight.
	if !h.IsConnected() {
		comp := componentLabels(h)
		for _, e := range g.Edges() {
			if comp[e.U] != comp[e.V] {
				h.MustAddEdge(e.U, e.V, e.W)
				merge(comp, comp[e.U], comp[e.V])
			}
		}
	}

	if opts.Ledger != nil {
		opts.Ledger.Add("sparsify-randomized", rounds.Charged, RandomizedSparsifyRounds(n), CiteFV22)
	}
	return &Result{H: h, Levels: 1, Parts: 1}, nil
}

func componentLabels(g *graph.Graph) []int {
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	var queue []int
	for s := 0; s < g.N(); s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = next
		queue = append(queue[:0], s)
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, h := range g.Adj(v) {
				if labels[h.To] == -1 {
					labels[h.To] = next
					queue = append(queue, h.To)
				}
			}
		}
		next++
	}
	return labels
}

func merge(labels []int, a, b int) {
	for i := range labels {
		if labels[i] == b {
			labels[i] = a
		}
	}
}
