module lapcc

go 1.22
