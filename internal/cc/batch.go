package cc

import (
	"sync"

	"lapcc/internal/rounds"
)

// batchScratch holds the reusable working state of one RouteBatched
// invocation: the per-node admissibility counters and the current batch's
// packet arena. Instances are recycled through batchPool so steady-state
// RouteBatched calls allocate only their output (matching Route, whose own
// scratch is pooled in routing.go).
type batchScratch struct {
	srcCount, dstCount []int
	batch              []Packet
}

var batchPool = sync.Pool{New: func() any { return new(batchScratch) }}

func (s *batchScratch) resize(n, m int) {
	if cap(s.srcCount) < n {
		s.srcCount = make([]int, n)
		s.dstCount = make([]int, n)
	}
	s.srcCount = s.srcCount[:n]
	s.dstCount = s.dstCount[:n]
	for i := 0; i < n; i++ {
		s.srcCount[i] = 0
		s.dstCount[i] = 0
	}
	if cap(s.batch) < m {
		s.batch = make([]Packet, 0, m)
	}
	s.batch = s.batch[:0]
}

// release zeroes the batch arena's payload pointers so pooled scratch does
// not pin caller data, then returns the scratch to the pool.
func (s *batchScratch) release() {
	for i := range s.batch[:cap(s.batch)] {
		s.batch[:cap(s.batch)][i] = Packet{}
	}
	batchPool.Put(s)
}

// RouteBatched delivers an arbitrary packet set by splitting it into
// admissible batches (every node source and destination of at most n packets
// per batch) and routing each batch with Route. Nodes owning many virtual
// objects (e.g. a flow-network vertex with many parallel edges) legitimately
// need more rounds to move proportionally more messages; batching charges
// exactly that.
func RouteBatched(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	return routeBatchedVia(nil, n, packets, ledger, tag)
}

// routeBatchedVia is the batching loop with an optional transport threaded
// into every flush, so each admissible batch is physically delivered on its
// own barrier and the per-destination concatenation order matches the
// in-process version batch for batch.
func routeBatchedVia(t Transport, n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	out := make([][]Packet, n)
	var agg RouteResult
	s := batchPool.Get().(*batchScratch)
	defer s.release()
	s.resize(n, len(packets))
	srcCount := s.srcCount
	dstCount := s.dstCount
	batch := s.batch

	// Final per-destination totals are known upfront; sizing the output
	// exactly once replaces the per-flush append-growth reallocations.
	for _, p := range packets {
		if p.Dst >= 0 && p.Dst < n {
			dstCount[p.Dst]++
		}
	}
	for d := 0; d < n; d++ {
		if dstCount[d] > 0 {
			out[d] = make([]Packet, 0, dstCount[d])
		}
		dstCount[d] = 0
	}

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		delivered, res, err := RouteVia(t, n, batch, ledger, tag)
		if err != nil {
			return err
		}
		agg.Executed += res.Executed
		agg.Charged += res.Charged
		agg.LinkMessages += res.LinkMessages
		agg.Overflowed = agg.Overflowed || res.Overflowed
		for d := 0; d < n; d++ {
			out[d] = append(out[d], delivered[d]...)
		}
		batch = batch[:0]
		for i := range srcCount {
			srcCount[i] = 0
			dstCount[i] = 0
		}
		return nil
	}

	for _, p := range packets {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			// Let Route produce the canonical error for bad endpoints. The
			// continue is load-bearing: without it a (hypothetically)
			// non-erroring delegated call would fall through to the
			// srcCount/dstCount indexing below and panic on a negative or
			// out-of-range index.
			if err := flush(); err != nil {
				return nil, agg, err
			}
			if _, _, err := Route(n, []Packet{p}, nil, tag); err != nil {
				return nil, agg, err
			}
			continue
		}
		if srcCount[p.Src] >= n || dstCount[p.Dst] >= n {
			if err := flush(); err != nil {
				return nil, agg, err
			}
		}
		srcCount[p.Src]++
		dstCount[p.Dst]++
		batch = append(batch, p)
	}
	if err := flush(); err != nil {
		return nil, agg, err
	}
	return out, agg, nil
}
