package cc

import (
	"fmt"

	"lapcc/internal/rounds"
)

// This file adds transport-backed variants of the routing primitives. The
// plain functions (Route, RouteBatched, BroadcastAll, Reliable*) compute
// deliveries analytically — packets move as Go slices, rounds are charged
// from the relay schedule. The *Via variants keep that accounting unchanged
// (same admissibility checks, same ledger charges, same RouteResult) but
// additionally push every payload through a Transport and re-materialize the
// output from what came back, so with the TCP backend the bytes genuinely
// cross process boundaries and sockets. The canonical per-destination order
// makes the result bit-identical to the in-process computation; the
// differential suites pin exactly that.
//
// A nil transport makes every *Via function identical to its plain
// counterpart, which is how the solver stack is wired: options thread one
// optional Transport down to these call sites.

// transportDeliver ships packets through t as one delivery barrier and
// returns them re-materialized per destination, in the transport's
// ascending-source order. It requires a backend whose delivered payloads are
// freshly allocated (true of the wire backends; the engine-internal local
// merge, which recycles arenas, is not reachable here).
func transportDeliver(t Transport, n int, packets []Packet) ([][]Packet, DeliveryStats, error) {
	// Stable counting sort by source: the transport contract wants ascending
	// source order across the outbox.
	starts := make([]int, n+1)
	for _, p := range packets {
		starts[p.Src+1]++
	}
	for v := 0; v < n; v++ {
		starts[v+1] += starts[v]
	}
	order := make([]int, len(packets))
	for i, p := range packets {
		order[starts[p.Src]] = i
		starts[p.Src]++
	}
	words := 0
	for _, p := range packets {
		words += len(p.Data)
	}
	msgs := make([]OutMsg, len(packets))
	arena := make([]int64, 0, words)
	for pos, idx := range order {
		p := packets[idx]
		off := len(arena)
		arena = append(arena, p.Data...)
		msgs[pos] = OutMsg{From: int32(p.Src), To: int32(p.Dst), Off: int32(off), Width: int32(len(p.Data))}
	}
	inb, stats, err := t.Deliver(0, n, []Outbox{{Msgs: msgs, Arena: arena}})
	if err != nil {
		return nil, stats, err
	}
	out := make([][]Packet, n)
	for d := 0; d < n; d++ {
		if len(inb[d]) == 0 {
			continue
		}
		pk := make([]Packet, len(inb[d]))
		for i, m := range inb[d] {
			pk[i] = Packet{Src: m.From, Dst: d, Data: m.Data}
		}
		out[d] = pk
	}
	return out, stats, nil
}

// RouteVia is Route with the payload bytes physically carried by t: the
// packet set is routed normally for admissibility checking, round charging,
// and metrics (the ledger records exactly what Route records), then shipped
// through the transport and rebuilt from its wire output in canonical order.
// A nil transport is plain Route. Outputs are bit-identical either way.
func RouteVia(t Transport, n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	out, res, err := Route(n, packets, ledger, tag)
	if t == nil || err != nil {
		return out, res, err
	}
	phys, _, err := transportDeliver(t, n, packets)
	if err != nil {
		return nil, res, fmt.Errorf("cc: transport route %q: %w", tag, err)
	}
	canonicalOrder(phys)
	return phys, res, nil
}

// RouteBatchedVia is RouteBatched over a transport: each admissible batch is
// carried by t, preserving the per-destination batch concatenation order of
// the in-process version. A nil transport is plain RouteBatched.
func RouteBatchedVia(t Transport, n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	return routeBatchedVia(t, n, packets, ledger, tag)
}

// BroadcastAllVia is BroadcastAll with the announcements physically carried
// by t: every node's word is shipped to all n-1 others and the returned
// vector is assembled from the wire copies (each node's own value needs no
// network). A nil transport is plain BroadcastAll.
func BroadcastAllVia(t Transport, n int, values []int64, ledger *rounds.Ledger, tag string) ([]int64, error) {
	if t == nil {
		return BroadcastAll(n, values, ledger, tag)
	}
	vals, err := BroadcastAll(n, values, ledger, tag)
	if err != nil {
		return nil, err
	}
	pkts := make([]Packet, 0, n*(n-1))
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if dst != src {
				pkts = append(pkts, Packet{Src: src, Dst: dst, Data: values[src : src+1]})
			}
		}
	}
	inb, _, err := transportDeliver(t, n, pkts)
	if err != nil {
		return nil, fmt.Errorf("cc: transport broadcast %q: %w", tag, err)
	}
	got := make([]int64, n)
	copy(got, vals)
	for d := 0; d < n; d++ {
		for _, p := range inb[d] {
			got[p.Src] = p.Data[0]
		}
	}
	return got, nil
}

// routerFor binds a transport into the routerFunc shape the reliable wave
// loop consumes.
func routerFor(t Transport, batched bool) routerFunc {
	if t == nil {
		if batched {
			return RouteBatched
		}
		return Route
	}
	if batched {
		return func(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
			return RouteBatchedVia(t, n, packets, ledger, tag)
		}
	}
	return func(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
		return RouteVia(t, n, packets, ledger, tag)
	}
}
