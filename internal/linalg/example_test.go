package linalg_test

import (
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// ExamplePreconCheby solves a Laplacian system with an exact preconditioner
// (kappa = 1): the potential difference across a path of three unit
// resistors is 3 volts at 1 ampere.
func ExamplePreconCheby() {
	g := graph.Path(4)
	l := linalg.NewLaplacian(g)
	b := linalg.Vec{1, 0, 0, -1}
	solve := linalg.LaplacianCGSolver(l, 1e-13)
	x, _, _ := linalg.PreconCheby(l, solve, b, linalg.ChebyOptions{Kappa: 1, Eps: 1e-10})
	fmt.Printf("%.3f\n", x[0]-x[3])
	// Output: 3.000
}

// ExampleLaplacian_Quad evaluates the Laplacian quadratic form, the energy
// of a vertex potential.
func ExampleLaplacian_Quad() {
	l := linalg.NewLaplacian(graph.Path(3))
	fmt.Println(l.Quad(linalg.Vec{0, 1, 2}))
	// Output: 2
}
