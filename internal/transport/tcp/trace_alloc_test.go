package tcp

import (
	"io"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/trace"
)

// barrierAllocsPerDeliver measures steady-state coordinator-side heap
// allocations of one Deliver barrier over a warm 2-worker in-process mesh
// with a small fixed payload.
func barrierAllocsPerDeliver(t *testing.T, attach func(*Transport)) float64 {
	t.Helper()
	const n = 4
	tr, err := New(Options{Procs: 2, HeartbeatInterval: -1, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	if attach != nil {
		attach(tr)
	}

	arena := []int64{1, 2, 3, 4}
	out := []cc.Outbox{
		{Msgs: []cc.OutMsg{{From: 0, To: 2, Off: 0, Width: 2}}, Arena: arena},
		{Msgs: []cc.OutMsg{{From: 2, To: 0, Off: 2, Width: 2}}, Arena: arena},
	}
	deliver := func() {
		if _, _, err := tr.Deliver(0, n, out); err != nil {
			t.Fatal(err)
		}
	}
	deliver() // warm connections and reusable buffers
	return testing.AllocsPerRun(30, deliver)
}

// TestBarrierTraceZeroAllocOverhead pins the trace plane's disabled-cost
// contract on the TCP barrier path: a nil tracer and an attached flight
// recorder each add zero steady-state allocations per Deliver. (An enabled
// tracer allocates spans by design and is excluded; Flight.Record writes
// plain values into a pre-sized ring, so even the *enabled* recorder is
// free.) The in-process mesh still crosses real sockets, so the baseline
// figure is whatever the socket path costs — only the deltas are pinned.
func TestBarrierTraceZeroAllocOverhead(t *testing.T) {
	disabled := barrierAllocsPerDeliver(t, nil)
	detached := barrierAllocsPerDeliver(t, func(tr *Transport) {
		tr.SetTracer(nil)
		tr.SetFlight(nil, "")
	})
	flight := barrierAllocsPerDeliver(t, func(tr *Transport) {
		tr.SetFlight(trace.NewFlight(64), "")
	})
	if detached > disabled {
		t.Fatalf("explicitly detached tracer/flight allocates %.0f objects vs %.0f untouched; want zero overhead", detached, disabled)
	}
	if flight > disabled {
		t.Fatalf("enabled flight recorder allocates %.0f objects vs %.0f disabled; want zero overhead", flight, disabled)
	}
}
