package maxflow

import (
	"errors"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func TestDinicKnownValue(t *testing.T) {
	// Classic example: value 19... build a small network with known answer.
	dg := graph.NewDi(6)
	dg.MustAddArc(0, 1, 10, 0)
	dg.MustAddArc(0, 2, 10, 0)
	dg.MustAddArc(1, 2, 2, 0)
	dg.MustAddArc(1, 3, 4, 0)
	dg.MustAddArc(1, 4, 8, 0)
	dg.MustAddArc(2, 4, 9, 0)
	dg.MustAddArc(3, 5, 10, 0)
	dg.MustAddArc(4, 3, 6, 0)
	dg.MustAddArc(4, 5, 10, 0)
	value, flows, err := Dinic(dg, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if value != 19 {
		t.Fatalf("Dinic value = %d, want 19", value)
	}
	if got, err := CheckFlow(dg, flows, 0, 5); err != nil || got != 19 {
		t.Fatalf("CheckFlow = %d, %v", got, err)
	}
}

func TestDinicDisconnected(t *testing.T) {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 5, 0)
	dg.MustAddArc(2, 3, 5, 0)
	value, _, err := Dinic(dg, 0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if value != 0 {
		t.Fatalf("value = %d, want 0", value)
	}
}

func TestDinicBadEndpoints(t *testing.T) {
	dg := graph.NewDi(3)
	if _, _, err := Dinic(dg, 1, 1); !errors.Is(err, ErrBadEndpoints) {
		t.Fatalf("error = %v, want ErrBadEndpoints", err)
	}
	if _, _, err := Dinic(dg, 0, 5); !errors.Is(err, ErrBadEndpoints) {
		t.Fatalf("error = %v, want ErrBadEndpoints", err)
	}
}

func TestFordFulkersonMatchesDinic(t *testing.T) {
	dg := graph.RandomDiGraph(12, 40, 9, 1, 5)
	led := rounds.New()
	ff, err := FordFulkerson(dg, 0, 11, led)
	if err != nil {
		t.Fatal(err)
	}
	dv, _, err := Dinic(dg, 0, 11)
	if err != nil {
		t.Fatal(err)
	}
	if ff.Value != dv {
		t.Fatalf("FF value %d != Dinic %d", ff.Value, dv)
	}
	if ff.Rounds != int64(ff.Augmentations)*rounds.APSPRounds(12) {
		t.Fatalf("FF rounds %d inconsistent with %d augmentations", ff.Rounds, ff.Augmentations)
	}
	if led.Total() != ff.Rounds {
		t.Fatalf("ledger %d != result rounds %d", led.Total(), ff.Rounds)
	}
}

func TestCheckFlowRejections(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 2, 0)
	dg.MustAddArc(1, 2, 2, 0)
	if _, err := CheckFlow(dg, []int64{3, 3}, 0, 2); err == nil {
		t.Fatal("over-capacity flow accepted")
	}
	if _, err := CheckFlow(dg, []int64{-1, -1}, 0, 2); err == nil {
		t.Fatal("negative flow accepted")
	}
	if _, err := CheckFlow(dg, []int64{2, 1}, 0, 2); err == nil {
		t.Fatal("non-conserving flow accepted")
	}
	if _, err := CheckFlow(dg, []int64{1}, 0, 2); err == nil {
		t.Fatal("wrong length accepted")
	}
}

func TestMaxFlowIPMLayeredDAG(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	s, tt := 0, dg.N()-1
	want, _, err := Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	res, err := MaxFlow(dg, s, tt, Options{FastSolve: true, Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("IPM value %d != Dinic %d", res.Value, want)
	}
	if got, err := CheckFlow(dg, res.Flow, s, tt); err != nil || got != want {
		t.Fatalf("returned flow invalid: value %d err %v", got, err)
	}
	if res.IPMIterations == 0 {
		t.Fatal("IPM did no iterations")
	}
	if led.Total() == 0 {
		t.Fatal("no rounds recorded")
	}
	t.Logf("layered: F*=%d ipmIters=%d/%d boosts=%d ipmValue=%.2f negArcs=%d finalAugs=%d rounds=%d",
		want, res.IPMIterations, res.IterBudget, res.Boostings, res.IPMValue, res.NegativeArcs, res.FinalAugmentations, led.Total())
}

func TestMaxFlowIPMRandomDirected(t *testing.T) {
	dg := graph.RandomDiGraph(10, 30, 5, 1, 31)
	s, tt := 0, 9
	want, _, err := Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("IPM value %d != Dinic %d", res.Value, want)
	}
	if _, err := CheckFlow(dg, res.Flow, s, tt); err != nil {
		t.Fatalf("flow invalid: %v", err)
	}
}

func TestMaxFlowZeroFlow(t *testing.T) {
	dg := graph.NewDi(4)
	dg.MustAddArc(1, 0, 5, 0) // only arc points away from t-side
	res, err := MaxFlow(dg, 0, 3, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 0 {
		t.Fatalf("value = %d, want 0", res.Value)
	}
}

func TestMaxFlowUnitCapacities(t *testing.T) {
	dg := graph.LayeredDAG(2, 5, 2, 1, 41)
	s, tt := 0, dg.N()-1
	want, _, err := Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("value %d != %d", res.Value, want)
	}
}

func TestMaxFlowBoostingAblation(t *testing.T) {
	dg := graph.LayeredDAG(3, 3, 2, 6, 51)
	s, tt := 0, dg.N()-1
	with, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	without, err := MaxFlow(dg, s, tt, Options{FastSolve: true, DisableBoosting: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Value != without.Value {
		t.Fatalf("ablation changed the answer: %d vs %d", with.Value, without.Value)
	}
	if without.Boostings != 0 {
		t.Fatalf("boosting disabled but %d boostings recorded", without.Boostings)
	}
}

func TestTrivialRoundsPositive(t *testing.T) {
	dg := graph.RandomDiGraph(10, 30, 5, 1, 61)
	if TrivialRounds(dg) < 1 {
		t.Fatal("trivial baseline should cost at least one round")
	}
}

// Property: the IPM pipeline matches the Dinic oracle on random layered
// networks.
func TestMaxFlowMatchesOracleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("IPM property test is slow")
	}
	f := func(seed int64) bool {
		dg := graph.LayeredDAG(2, 3, 2, 4, seed)
		s, tt := 0, dg.N()-1
		want, _, err := Dinic(dg, s, tt)
		if err != nil {
			return false
		}
		res, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
		if err != nil {
			return false
		}
		if res.Value != want {
			return false
		}
		_, err = CheckFlow(dg, res.Flow, s, tt)
		return err == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

func TestMaxFlowGridNetwork(t *testing.T) {
	dg := graph.GridFlowNetwork(3, 3, 6, 71)
	s, tt := 0, dg.N()-1
	want, _, err := Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("grid network: IPM value %d != Dinic %d", res.Value, want)
	}
	if _, err := CheckFlow(dg, res.Flow, s, tt); err != nil {
		t.Fatal(err)
	}
}
