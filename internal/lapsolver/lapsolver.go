// Package lapsolver implements the deterministic congested-clique Laplacian
// solver of Theorem 1.1: build a deterministic spectral sparsifier H of G
// (Theorem 3.3, package sparsify), make it known to every node, and run the
// preconditioned Chebyshev iteration of Theorem 2.2 (Corollary 2.3). Each
// Chebyshev iteration consists of one matvec with L_G — one round, because
// node v holds row v and the iterate entry x_v — plus a solve with the
// globally-known sparsifier and a constant number of vector operations,
// both internal.
//
// The paper knows the approximation factor alpha analytically
// (log^{O(r^2)} n); our substituted sparsifier's alpha is not known a
// priori, so the solver doubles a guess kappa = alpha^2 until the
// preconditioner-norm residual certifies the target error. Each rejected
// guess costs its iterations, which the ledger records; the doubling adds
// at most a constant factor over knowing alpha exactly — the standard
// trick, and the experiments (E8) also report measured alpha directly.
package lapsolver

import (
	"errors"
	"fmt"
	"math"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// ErrDisconnected reports an input graph that is not connected; Laplacian
// systems are solved per connected component, and this package requires the
// caller to pass one component.
var ErrDisconnected = errors.New("lapsolver: graph must be connected")

// ErrBadRHS reports a right-hand side of the wrong length.
var ErrBadRHS = errors.New("lapsolver: right-hand side has wrong length")

// Options configures NewSolver.
type Options struct {
	// Sparsify configures the sparsifier chain (zero value = defaults).
	Sparsify sparsify.Options
	// Randomized switches to the randomized effective-resistance sampling
	// sparsifier — the paper's closing remark: a simpler randomized solver
	// turns the n^{o(1)} factor into polylog n. Runs are reproducible per
	// RandomSeed. The solver itself stays the same deterministic
	// preconditioned Chebyshev iteration.
	Randomized bool
	// RandomSeed drives the randomized sparsifier.
	RandomSeed int64
	// KappaHint, if positive, is the initial relative-condition guess
	// (kappa = alpha^2). Default 4.
	KappaHint float64
	// MaxKappa caps the adaptive doubling (default 1e8).
	MaxKappa float64
	// InternalTol is the tolerance of the internal CG solves of the
	// globally-known sparsifier (default 1e-13). These solves cost zero
	// rounds in the model.
	InternalTol float64
	// Ledger, if non-nil, receives round costs.
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
}

func (o *Options) defaults() {
	if o.KappaHint == 0 {
		o.KappaHint = 4
	}
	if o.MaxKappa == 0 {
		o.MaxKappa = 1e8
	}
	if o.InternalTol == 0 {
		o.InternalTol = 1e-13
	}
	if o.Ledger != nil && o.Sparsify.Ledger == nil {
		o.Sparsify.Ledger = o.Ledger
	}
	if o.Trace != nil && o.Sparsify.Trace == nil {
		o.Sparsify.Trace = o.Trace
	}
}

// Solver solves systems L_G x = b to relative precision eps in the L_G
// norm. One Solver instance amortizes its sparsifier across many solves
// (the flow IPMs re-solve on re-weighted graphs, so they rebuild; see
// NewSolver's cost notes).
type Solver struct {
	g      *graph.Graph
	lg     *linalg.Laplacian
	h      *graph.Graph
	lh     *linalg.Laplacian
	hSolve func(linalg.Vec) (linalg.Vec, error)
	opts   Options
}

// Stats reports one Solve call.
type Stats struct {
	// Stats carries the shared round accounting of the call.
	rounds.Stats
	// Iterations is the total number of Chebyshev iterations across all
	// kappa attempts; each iteration costs one measured round.
	Iterations int
	// KappaUsed is the accepted relative-condition bound.
	KappaUsed float64
	// Attempts is the number of kappa guesses tried.
	Attempts int
}

// NewSolver builds the sparsifier for g and prepares internal solvers.
// Construction costs the Theorem 3.3 rounds (charged/measured through the
// ledger inside sparsify).
func NewSolver(g *graph.Graph, opts Options) (*Solver, error) {
	opts.defaults()
	if !g.IsConnected() {
		return nil, ErrDisconnected
	}
	opts.Trace.Attach(opts.Ledger)
	sp := opts.Trace.Start("lapsolve-build")
	defer sp.End()
	var res *sparsify.Result
	var err error
	if opts.Randomized {
		res, err = sparsify.RandomizedSparsify(g, sparsify.RandomOptions{
			Seed:   opts.RandomSeed,
			Ledger: opts.Ledger,
			Trace:  opts.Trace,
		})
	} else {
		res, err = sparsify.Sparsify(g, opts.Sparsify)
	}
	if err != nil {
		return nil, fmt.Errorf("lapsolver: %w", err)
	}
	lh := linalg.NewLaplacian(res.H)
	return &Solver{
		g:      g,
		lg:     linalg.NewLaplacian(g),
		h:      res.H,
		lh:     lh,
		hSolve: linalg.LaplacianCGSolver(lh, opts.InternalTol),
		opts:   opts,
	}, nil
}

// Sparsifier returns the sparsifier graph H (globally known to all nodes).
func (s *Solver) Sparsifier() *graph.Graph { return s.h }

// Laplacian returns the input graph's Laplacian operator.
func (s *Solver) Laplacian() *linalg.Laplacian { return s.lg }

// Solve returns x with ||x - L_G^+ b||_{L_G} <= eps * ||L_G^+ b||_{L_G}.
// b is projected onto the solvable subspace (mean removed); eps must lie in
// (0, 1/2].
func (s *Solver) Solve(b linalg.Vec, eps float64) (linalg.Vec, Stats, error) {
	snap := rounds.Snap(s.opts.Ledger)
	spansBefore := s.opts.Trace.SpanCount()
	x, stats, err := s.solve(b, eps)
	stats.Stats = snap.Stats()
	stats.Spans = s.opts.Trace.SpanCount() - spansBefore
	return x, stats, err
}

func (s *Solver) solve(b linalg.Vec, eps float64) (linalg.Vec, Stats, error) {
	sp := s.opts.Trace.Start("lapsolve")
	defer sp.End()
	if len(b) != s.g.N() {
		return nil, Stats{}, fmt.Errorf("%w: %d for n=%d", ErrBadRHS, len(b), s.g.N())
	}
	if eps <= 0 || eps > 0.5 {
		return nil, Stats{}, fmt.Errorf("lapsolver: eps %v outside (0, 1/2]", eps)
	}
	rhs := b.Clone()
	rhs.RemoveMean()
	var stats Stats
	if rhs.Norm2() == 0 {
		return linalg.NewVec(s.g.N()), stats, nil
	}

	// Residual acceptance in the preconditioner norm: with
	// (1/a) L_H <= L_G <= a L_H and a^2 <= kappa,
	//   ||x - x*||_A / ||x*||_A <= a * ||r||_{B+} / ||b||_{B+},
	// so accepting at ratio <= eps/sqrt(kappa) certifies the target.
	bNorm, err := s.precondNorm(rhs)
	if err != nil {
		return nil, stats, err
	}

	kappa := s.opts.KappaHint
	for {
		stats.Attempts++
		asp := s.opts.Trace.Startf("attempt-%d", stats.Attempts)
		scale := math.Sqrt(kappa)
		bSolve := func(r linalg.Vec) (linalg.Vec, error) {
			y, err := s.hSolve(r)
			if err != nil {
				return nil, err
			}
			y.Scale(1 / scale) // (sqrt(kappa) L_H)^+
			return y, nil
		}
		// Run at the tighter internal target eps/sqrt(kappa) so the
		// certificate below can fire.
		target := eps / scale
		if target < 1e-14 {
			target = 1e-14
		}
		chebyEps := target
		if chebyEps > 0.5 {
			chebyEps = 0.5
		}
		x, res, err := linalg.PreconCheby(s.lg, bSolve, rhs, linalg.ChebyOptions{
			Kappa: kappa,
			Eps:   chebyEps,
			OnIteration: func() {
				if s.opts.Ledger != nil {
					// One matvec with L_G per iteration: one round.
					s.opts.Ledger.Add("lapsolve-cheby-iter", rounds.Measured, 1, "matvec with L_G, Cor 2.3")
				}
			},
		})
		if err != nil {
			return nil, stats, fmt.Errorf("lapsolver: %w", err)
		}
		stats.Iterations += res.Iterations

		// Certificate: compute r = b - A x (one matvec round) and its
		// preconditioner norm (internal) plus one aggregation round.
		r := linalg.NewVec(len(rhs))
		s.lg.Apply(r, x)
		for i := range r {
			r[i] = rhs[i] - r[i]
		}
		r.RemoveMean()
		if s.opts.Ledger != nil {
			s.opts.Ledger.Add("lapsolve-residual", rounds.Measured, 2, "residual matvec + aggregation")
		}
		rNorm, err := s.precondNorm(r)
		if err != nil {
			return nil, stats, err
		}
		asp.End()
		if rNorm <= target*bNorm || kappa >= s.opts.MaxKappa {
			if rNorm > target*bNorm {
				return nil, stats, fmt.Errorf("lapsolver: kappa cap %v reached with residual ratio %v (target %v)",
					s.opts.MaxKappa, rNorm/bNorm, target)
			}
			stats.KappaUsed = kappa
			return x, stats, nil
		}
		kappa *= 4
	}
}

// precondNorm returns sqrt(v^T L_H^+ v), the preconditioner seminorm used
// by the acceptance certificate. Internal computation: L_H is globally
// known.
func (s *Solver) precondNorm(v linalg.Vec) (float64, error) {
	y, err := s.hSolve(v)
	if err != nil {
		return 0, fmt.Errorf("lapsolver: preconditioner norm: %w", err)
	}
	q := v.Dot(y)
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q), nil
}

// PredictedRounds returns the Theorem 1.1 round bound shape
// n^{o(1)} log(U/eps) instantiated with the measured sparsifier: the
// Chebyshev iteration count for the given kappa and eps. Exposed for the
// experiment harness.
func PredictedRounds(kappa, eps float64) int {
	return linalg.ChebyIterationBound(kappa, eps)
}
