// Package lapcc is a from-scratch Go reproduction of "Brief Announcement:
// The Laplacian Paradigm in Deterministic Congested Clique" (Sebastian
// Forster and Tijn de Vos, PODC 2023, arXiv:2304.02315).
//
// The paper's results — a deterministic n^{o(1)} log(U/eps)-round Laplacian
// solver (Theorem 1.1), an m^{3/7+o(1)} U^{1/7}-round exact maximum flow
// (Theorem 1.2), an Õ(m^{3/7}(n^{0.158} + polylog W))-round unit-capacity
// minimum cost flow (Theorem 1.3), and an O(log n log* n)-round Eulerian
// orientation (Theorem 1.4) — are implemented on a congested-clique
// simulator that executes real message passing for the communication
// primitives and charges cited black-box costs through an auditable
// round ledger.
//
// Start at internal/core for the public facade, DESIGN.md for the system
// inventory and substitution notes, and EXPERIMENTS.md for the measured
// reproduction of every quantitative claim. The benchmarks in this
// directory (bench_test.go) regenerate each experiment as a testing.B
// benchmark with rounds reported as custom metrics.
//
// # Simulator execution model
//
// The congested-clique simulator (internal/cc) executes each round's n node
// steps on a pool of worker goroutines with private, recycled send buffers,
// then merges the buffers deterministically in node order at the round
// barrier — so results are bit-identical to a sequential execution, while
// the hot path performs no steady-state allocation. Engine.SetSequential(true)
// forces inline single-goroutine execution as an escape hatch,
// Engine.SetWorkers overrides the worker count, and Engine.SetObserver opts
// into per-round instrumentation (message counts, link-load maxima, phase
// timings; see experiment E10). Randomized differential tests pin the
// parallel, sequential, and legacy-reference executions to each other, and
// `make check` runs the simulator's test suite under the race detector.
//
// # Tracing convention
//
// Every algorithm layer's Options struct carries the same optional field
// with the same doc comment:
//
//	// Trace, if non-nil, receives hierarchical span and cost events for
//	// this call (see internal/trace); a nil tracer records nothing and
//	// costs nothing.
//	Trace *trace.Tracer
//
// Entry points attach the tracer to their ledger (trace.Tracer.Attach) and
// open named spans around their phases, so ledger costs recorded anywhere
// below are attributed to the innermost open span. Layers that wrap other
// layers forward the tracer through the nested Options. Because every
// tracer method is safe on a nil receiver, call sites thread the field
// unconditionally — a disabled trace is a nil pointer, costs nothing, and
// allocates nothing. Results embed rounds.Stats (measured/charged rounds,
// wall time, span count) for the same call window. See internal/trace for
// the span model and the JSONL/Chrome exports, and the -trace flags on
// cmd/lapsolve, cmd/flowcc, and cmd/experiments for ready-made profiles.
package lapcc
