package linalg

import (
	"math"
	"testing"

	"lapcc/internal/graph"
)

func TestTridiagonalEigenRangeKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 1 and 3.
	td := &Tridiagonal{Alpha: []float64{2, 2}, Beta: []float64{1}}
	lo, hi := td.EigenRange()
	if math.Abs(lo-1) > 1e-9 || math.Abs(hi-3) > 1e-9 {
		t.Fatalf("range [%v, %v], want [1, 3]", lo, hi)
	}
}

func TestTridiagonalSingleEntry(t *testing.T) {
	td := &Tridiagonal{Alpha: []float64{5}}
	lo, hi := td.EigenRange()
	if math.Abs(lo-5) > 1e-9 || math.Abs(hi-5) > 1e-9 {
		t.Fatalf("range [%v, %v], want [5, 5]", lo, hi)
	}
}

func TestTridiagonalLaplacianChain(t *testing.T) {
	// The path Laplacian is itself tridiagonal; P4 eigenvalues are
	// 2 - 2cos(k pi / 4), k = 0..3: {0, 0.586, 2, 3.414}.
	td := &Tridiagonal{Alpha: []float64{1, 2, 2, 1}, Beta: []float64{-1, -1, -1}}
	lo, hi := td.EigenRange()
	if math.Abs(lo-0) > 1e-9 {
		t.Fatalf("lo = %v, want 0", lo)
	}
	want := 2 + math.Sqrt2
	if math.Abs(hi-want) > 1e-9 {
		t.Fatalf("hi = %v, want %v", hi, want)
	}
}

func TestLanczosOnLaplacian(t *testing.T) {
	// Euclidean Lanczos on K_n's Laplacian: nonzero eigenvalues all n.
	n := 16
	l := NewLaplacian(graph.Complete(n))
	apply := func(dst, src Vec) {
		l.Apply(dst, src)
		dst.RemoveMean()
	}
	inner := func(u, v Vec) float64 { return u.Dot(v) }
	start := deterministicStart(n)
	td, err := Lanczos(n, 12, start, apply, inner)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := td.EigenRange()
	if math.Abs(hi-float64(n)) > 1e-6 || math.Abs(lo-float64(n)) > 1e-6 {
		t.Fatalf("K%d restricted spectrum [%v, %v], want [%d, %d]", n, lo, hi, n, n)
	}
}

func TestPencilBoundsLanczosScaled(t *testing.T) {
	// H = c*G: pencil spectrum is exactly {1/c}.
	g, err := graph.ConnectedGNM(20, 50, 5)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(g)
	h := graph.New(g.N())
	const c = 3.0
	for _, e := range g.Edges() {
		h.MustAddEdge(e.U, e.V, c*e.W)
	}
	lh := NewLaplacian(h)
	lo, hi, err := PencilBoundsLanczos(lg, lh, LaplacianCGSolver(lg, 1e-12), LaplacianCGSolver(lh, 1e-12), 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lo-1/c) > 1e-6 || math.Abs(hi-1/c) > 1e-6 {
		t.Fatalf("pencil range [%v, %v], want 1/%v", lo, hi, c)
	}
}

func TestPencilBoundsLanczosMatchesPowerIteration(t *testing.T) {
	g, err := graph.ConnectedGNM(24, 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(graph.WithRandomWeights(g, 5, 8))
	const p = 0.7
	h := graph.New(g.N())
	for i, e := range lg.Graph().Edges() {
		w := e.W
		if i%2 == 0 {
			w *= 1 + p
		} else {
			w /= 1 + p
		}
		h.MustAddEdge(e.U, e.V, w)
	}
	lh := NewLaplacian(h)
	aSolve := LaplacianCGSolver(lg, 1e-12)
	bSolve := LaplacianCGSolver(lh, 1e-12)

	pLo, pHi, err := PencilBounds(lg, lh, aSolve, bSolve, 400)
	if err != nil {
		t.Fatal(err)
	}
	lLo, lHi, err := PencilBoundsLanczos(lg, lh, aSolve, bSolve, 40)
	if err != nil {
		t.Fatal(err)
	}
	// Lanczos must agree with (or beat) power iteration; both approach the
	// spectrum from inside.
	if lHi < pHi-1e-3 || lLo > pLo+1e-3 {
		t.Fatalf("Lanczos [%v,%v] narrower than power iteration [%v,%v]", lLo, lHi, pLo, pHi)
	}
	// Both must stay within the analytic sandwich [1/(1+p), 1+p].
	if lHi > (1+p)*1.001 || lLo < 1/(1+p)*0.999 {
		t.Fatalf("Lanczos [%v,%v] escapes sandwich [%v,%v]", lLo, lHi, 1/(1+p), 1+p)
	}
}

func TestLanczosBreakdownOnZeroStart(t *testing.T) {
	l := NewLaplacian(graph.Path(4))
	apply := func(dst, src Vec) { l.Apply(dst, src) }
	inner := func(u, v Vec) float64 { return u.Dot(v) }
	if _, err := Lanczos(4, 5, NewVec(4), apply, inner); err == nil {
		t.Fatal("zero start vector should break down")
	}
}
