package tcp

import (
	"fmt"
	"strconv"
	"strings"

	"lapcc/internal/cc"
	"lapcc/internal/transport"
)

// Open resolves a -transport flag value into a delivery backend:
//
//	local                     in-process merge (returns nil: the engine default)
//	mem                       wire-codec round trip in process
//	tcp[,procs=N][,bin=PATH]  multi-process loopback clique; bin execs that
//	                          lapccnode binary per worker, otherwise workers
//	                          run as in-process goroutines over real sockets
//
// The returned Transport is nil for "local" (callers pass it straight to
// Options; the engine treats nil as the built-in path). Callers own Close.
func Open(spec string) (cc.Transport, error) {
	parts := strings.Split(spec, ",")
	switch parts[0] {
	case "", "local":
		if len(parts) > 1 {
			return nil, fmt.Errorf("transport: %q takes no options", parts[0])
		}
		return nil, nil
	case "mem":
		if len(parts) > 1 {
			return nil, fmt.Errorf("transport: mem takes no options")
		}
		return transport.NewMem(), nil
	case "tcp":
		var opts Options
		for _, kv := range parts[1:] {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("transport: malformed option %q (want key=value)", kv)
			}
			switch k {
			case "procs":
				p, err := strconv.Atoi(v)
				if err != nil || p <= 0 {
					return nil, fmt.Errorf("transport: bad procs %q", v)
				}
				opts.Procs = p
			case "bin":
				opts.Binary = v
			default:
				return nil, fmt.Errorf("transport: unknown option %q", k)
			}
		}
		return New(opts)
	default:
		return nil, fmt.Errorf("transport: unknown backend %q (want local, mem, or tcp)", parts[0])
	}
}
