package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// ValidateJSONL checks a JSONL event stream against the schema WriteJSONL
// emits: every line a JSON object with a known "ev" type and exactly that
// type's fields (unknown fields are rejected — a field this validator does
// not know is one no consumer has agreed on, and silently passing it would
// let the writer and the schema drift apart), sequence numbers consecutive
// from 0, begin/end events properly nested, and every cost/traffic/round
// event referencing either a span that has begun or the sentinel -1. It
// returns nil for a valid stream and a line-numbered error otherwise —
// including for a stream whose final line was truncated mid-object (a
// killed writer), which fails JSON parsing. make trace-smoke and the cmd
// -trace flags run every exported stream through it.
func ValidateJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	wantSeq := 0
	begun := map[int]bool{}  // span id -> begin seen
	closed := map[int]bool{} // span id -> end seen
	var stack []int          // open span ids, innermost last
	for sc.Scan() {
		line++
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return fmt.Errorf("trace: line %d: not a JSON object: %w", line, err)
		}
		ev, err := strField(raw, "ev", line)
		if err != nil {
			return err
		}
		if allowed, ok := eventFields[ev]; ok {
			for key := range raw {
				if !allowed[key] {
					return fmt.Errorf("trace: line %d: unknown field %q on %q event", line, key, ev)
				}
			}
		}
		seq64, err := intField(raw, "seq", line)
		if err != nil {
			return err
		}
		if int(seq64) != wantSeq {
			return fmt.Errorf("trace: line %d: seq %d, want %d", line, seq64, wantSeq)
		}
		wantSeq++
		span64, err := intField(raw, "span", line)
		if err != nil {
			return err
		}
		span := int(span64)
		switch ev {
		case "begin":
			if begun[span] {
				return fmt.Errorf("trace: line %d: span %d begun twice", line, span)
			}
			parent64, err := intField(raw, "parent", line)
			if err != nil {
				return err
			}
			parent := int(parent64)
			curParent := -1
			if len(stack) > 0 {
				curParent = stack[len(stack)-1]
			}
			if parent != curParent {
				return fmt.Errorf("trace: line %d: span %d declares parent %d but innermost open span is %d", line, span, parent, curParent)
			}
			if _, err := strField(raw, "name", line); err != nil {
				return err
			}
			if _, err := strField(raw, "path", line); err != nil {
				return err
			}
			begun[span] = true
			stack = append(stack, span)
		case "end":
			if !begun[span] {
				return fmt.Errorf("trace: line %d: span %d ends before beginning", line, span)
			}
			if closed[span] {
				return fmt.Errorf("trace: line %d: span %d ends twice", line, span)
			}
			if len(stack) == 0 || stack[len(stack)-1] != span {
				return fmt.Errorf("trace: line %d: span %d ends out of nesting order", line, span)
			}
			for _, f := range []string{"measured", "charged"} {
				if _, err := intField(raw, f, line); err != nil {
					return err
				}
			}
			closed[span] = true
			stack = stack[:len(stack)-1]
		case "cost":
			if err := checkSpanRef(begun, span, line); err != nil {
				return err
			}
			if _, err := strField(raw, "tag", line); err != nil {
				return err
			}
			kind, err := strField(raw, "kind", line)
			if err != nil {
				return err
			}
			if kind != "measured" && kind != "charged" {
				return fmt.Errorf("trace: line %d: unknown cost kind %q", line, kind)
			}
			rr, err := intField(raw, "rounds", line)
			if err != nil {
				return err
			}
			if rr < 0 {
				return fmt.Errorf("trace: line %d: negative rounds %d", line, rr)
			}
		case "traffic":
			if err := checkSpanRef(begun, span, line); err != nil {
				return err
			}
			if _, err := strField(raw, "tag", line); err != nil {
				return err
			}
			for _, f := range []string{"messages", "words"} {
				if _, err := intField(raw, f, line); err != nil {
					return err
				}
			}
		case "round":
			if err := checkSpanRef(begun, span, line); err != nil {
				return err
			}
			for _, f := range []string{"messages", "words", "maxOut", "maxIn"} {
				if _, err := intField(raw, f, line); err != nil {
					return err
				}
			}
		case "mark":
			if err := checkSpanRef(begun, span, line); err != nil {
				return err
			}
			name, err := strField(raw, "name", line)
			if err != nil {
				return err
			}
			if name == "" {
				return fmt.Errorf("trace: line %d: empty mark name", line)
			}
			for _, f := range []string{"barrier", "epoch"} {
				if v, err := intField(raw, f, line); err != nil {
					return err
				} else if v < 0 {
					return fmt.Errorf("trace: line %d: negative %s %d", line, f, v)
				}
			}
			if node, err := intField(raw, "node", line); err != nil {
				return err
			} else if node < -1 {
				return fmt.Errorf("trace: line %d: bad node %d", line, node)
			}
		default:
			return fmt.Errorf("trace: line %d: unknown event type %q", line, ev)
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: reading stream: %w", err)
	}
	if len(stack) > 0 {
		return fmt.Errorf("trace: stream ends with %d span(s) still open (innermost id %d)", len(stack), stack[len(stack)-1])
	}
	return nil
}

// eventFields is the exact field set of each event type, mirroring the
// jsonl* structs in export.go. Unknown "ev" values fall through to the
// switch's default error, so they need no entry here.
var eventFields = map[string]map[string]bool{
	"begin":   set("ev", "seq", "span", "parent", "name", "path"),
	"end":     set("ev", "seq", "span", "measured", "charged"),
	"cost":    set("ev", "seq", "span", "tag", "kind", "rounds"),
	"traffic": set("ev", "seq", "span", "tag", "messages", "words"),
	"round":   set("ev", "seq", "span", "messages", "words", "maxOut", "maxIn"),
	"mark":    set("ev", "seq", "span", "name", "barrier", "epoch", "node"),
}

func set(keys ...string) map[string]bool {
	m := make(map[string]bool, len(keys))
	for _, k := range keys {
		m[k] = true
	}
	return m
}

func checkSpanRef(begun map[int]bool, span, line int) error {
	if span == -1 {
		return nil // unattributed: recorded with no span open
	}
	if !begun[span] {
		return fmt.Errorf("trace: line %d: event references span %d before it begins", line, span)
	}
	return nil
}

func strField(raw map[string]json.RawMessage, key string, line int) (string, error) {
	v, ok := raw[key]
	if !ok {
		return "", fmt.Errorf("trace: line %d: missing field %q", line, key)
	}
	var s string
	if err := json.Unmarshal(v, &s); err != nil {
		return "", fmt.Errorf("trace: line %d: field %q: %w", line, key, err)
	}
	return s, nil
}

func intField(raw map[string]json.RawMessage, key string, line int) (int64, error) {
	v, ok := raw[key]
	if !ok {
		return 0, fmt.Errorf("trace: line %d: missing field %q", line, key)
	}
	var n int64
	if err := json.Unmarshal(v, &n); err != nil {
		return 0, fmt.Errorf("trace: line %d: field %q: %w", line, key, err)
	}
	return n, nil
}
