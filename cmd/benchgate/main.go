// Command benchgate is the perf-regression gate behind `make bench-gate`:
// it re-measures the recorded benchmark suites, writes the fresh results to
// BENCH_<suite>.new.json next to the baselines, and diffs fresh against the
// checked-in BENCH_*.json under per-metric tolerances. Exit status is
// non-zero when any metric regressed past its threshold.
//
//	go run ./cmd/benchgate                    # gate all suites
//	go run ./cmd/benchgate -suites faults     # just the deterministic rounds
//	go run ./cmd/benchgate -benchtime 2s      # baseline-fidelity timings
//	go run ./cmd/benchgate -write-only        # refresh BENCH_*.new.json, no gate
//
// Timing suites (engine, solver) gate on ratios — ns/op within 1.75x,
// B/op within 1.5x, allocs/op within 1.25x of baseline — because wall
// time is host-noisy. The faults suite compares round counts exactly:
// rounds are deterministic model quantities, so any drift is a real
// behavioural change. To accept an intentional change, copy the written
// BENCH_<suite>.new.json over the baseline (restoring the headline
// commentary by hand where it changed).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"lapcc/internal/benchgate"
)

func main() {
	var (
		suites    = flag.String("suites", "engine,solver,faults,scaling,serve,net,chaos", "comma-separated suites to gate")
		benchtime = flag.String("benchtime", "1s", "-benchtime for the timing suites (the baselines were recorded at 2s)")
		dir       = flag.String("dir", ".", "repo root holding the BENCH_*.json baselines")
		writeNew  = flag.Bool("write", true, "write fresh results to BENCH_<suite>.new.json")
		writeOnly = flag.Bool("write-only", false, "re-measure and write BENCH_<suite>.new.json without gating")
		quiet     = flag.Bool("q", false, "suppress the streamed `go test -bench` output")
		nsTol     = flag.Float64("tol-ns", benchgate.DefaultTolerance.Ns, "ns/op regression ratio")
		bTol      = flag.Float64("tol-bytes", benchgate.DefaultTolerance.Bytes, "B/op regression ratio")
		aTol      = flag.Float64("tol-allocs", benchgate.DefaultTolerance.Allocs, "allocs/op regression ratio")
	)
	flag.Parse()

	tol := benchgate.Tolerance{Ns: *nsTol, Bytes: *bTol, Allocs: *aTol}
	recorded := time.Now().Format("2006-01-02")
	failed := false
	for _, name := range strings.Split(*suites, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		s, err := benchgate.SuiteByName(name)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("== suite %s (baseline %s)\n", s.Name, s.Baseline)
		var echo io.Writer
		if !*quiet {
			echo = os.Stdout
		}
		res, err := benchgate.GateSuite(s, *dir, *benchtime, recorded, tol, echo)
		if err != nil {
			fatal(err)
		}
		if *writeNew || *writeOnly {
			out := *dir + "/" + strings.TrimSuffix(s.Baseline, ".json") + ".new.json"
			if err := res.Fresh.WriteFile(out); err != nil {
				fatal(err)
			}
			fmt.Printf("   fresh results written to %s\n", out)
		}
		if *writeOnly {
			continue
		}
		if res.Passed() {
			fmt.Printf("   PASS: %d metrics within tolerance\n", gated(res))
			continue
		}
		failed = true
		fmt.Printf("   FAIL: %d regression(s)\n", len(res.Regressions))
		for _, r := range res.Regressions {
			fmt.Printf("     %s\n", r)
		}
	}
	if failed {
		fmt.Println("bench-gate: FAIL")
		os.Exit(1)
	}
	if !*writeOnly {
		fmt.Println("bench-gate: PASS")
	}
}

// gated counts the baseline entries the suite compared, for the PASS line.
func gated(res *benchgate.Result) int {
	if res.Baseline.Workloads != nil {
		return len(res.Baseline.Workloads)
	}
	return len(res.Baseline.Benchmarks)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchgate:", err)
	os.Exit(2)
}
