package electrical

import (
	"fmt"
	"math"

	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// cgStagnationWindow is the plateau-detection window for the session's
// internal CG solves: 1% improvement per 100 iterations is far below any
// healthy Jacobi-CG convergence rate, so the window only fires on runs that
// would otherwise burn to MaxIter and fail anyway.
const cgStagnationWindow = 100

// Session is the build-once/solve-many form of an electrical network over a
// *fixed topology*: construction captures the structure (graph, Laplacian,
// preconditioner, and — in Full mode — the whole Theorem 1.1 sparsifier
// chain) exactly once, and Reweight swaps the conductances in place without
// a single allocation on the internal path. Both interior point methods
// (Theorems 1.2 and 1.3) hold their support topology fixed for the entire
// run and only change weights per iteration, which is precisely this shape.
//
// Two modes, matching the two solve paths the IPMs already had:
//
//   - internal (default): the support is solved with Jacobi-preconditioned
//     CG as internal computation — zero measured rounds — and the *caller*
//     charges the Theorem 1.1 round formula per solve, exactly as the
//     FastSolve paths of maxflow/mcmf do. A cold-started session solve is
//     bit-identical to building the support graph and Laplacian from
//     scratch: same edge order, same degree summation order, same
//     deterministic CG.
//   - Full: a lapsolver.Solver (sparsifier chain + preconditioned
//     Chebyshev) is built once and reweighted through its sparsify.Chain,
//     with measured/charged rounds flowing to the configured ledger.
type Session struct {
	g       *graph.Graph
	lap     *linalg.Laplacian
	precond linalg.Vec
	solver  *lapsolver.Solver // non-nil in Full mode
	opts    SessionOptions

	pool  *linalg.Pool // nil = sequential kernels (the historical path)
	warmX map[string]linalg.Vec
	warmB map[string]linalg.Vec
	wbuf  []float64        // sanitized-weight scratch, reused across Reweights
	cg    linalg.CGScratch // CG work vectors, reused across Potentials calls
	stats SessionStats

	// Pre-resolved counters (nil without a registry) so the per-solve path
	// never touches the registry mutex.
	mSolves         *metrics.Counter
	mReweights      *metrics.Counter
	mDenseFallbacks *metrics.Counter
}

// SessionOptions configures NewSession.
type SessionOptions struct {
	// Full builds the complete Theorem 1.1 stack (sparsifier chain +
	// preconditioned Chebyshev, measured/charged rounds). The default runs
	// the zero-round internal CG path for callers that charge the
	// Theorem 1.1 formula themselves.
	Full bool
	// Solver configures the Full-mode solver (ledger, trace, sparsifier
	// chain policy). Ignored on the internal path.
	Solver lapsolver.Options
	// WarmStart seeds each solve slot with its previous potentials, scaled
	// by the projection of the new right-hand side onto the old one.
	// Convergence is still judged by the usual residual criteria, so warm
	// starting changes wall clock only.
	WarmStart bool
	// Trace, if non-nil, receives spans for guarded-recovery events (and is
	// propagated to the Full-mode solver when its own Trace is unset).
	Trace *trace.Tracer
	// Budget, if non-nil, is checked at every Potentials call and
	// propagated to the Full-mode solver. Exhaustion aborts with an error
	// unwrapping to rounds.ErrBudgetExceeded.
	Budget *rounds.Budget
	// NoFallback disables the internal path's exact dense fallback when CG
	// stagnates or fails to converge even after the cold retry, restoring
	// the historical fail-with-error behavior (and propagates to the
	// Full-mode solver as NoEscalation).
	NoFallback bool
	// Metrics, if non-nil, receives live session counters (solves,
	// reweights, dense fallbacks) and is propagated to the Full-mode
	// solver when its own Metrics is unset. A nil registry records nothing
	// and costs nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count for the session's numerical kernels
	// (Laplacian matvecs, CG vector ops) and for the concurrent per-slot
	// solves of PotentialsBatch (0 = GOMAXPROCS, 1 = sequential — today's
	// exact code path). Results are bit-identical at any worker count; the
	// knob is propagated to the Full-mode solver when its own Workers is
	// unset.
	Workers int
}

// SessionStats counts session activity.
type SessionStats struct {
	// Solves counts Potentials calls.
	Solves int
	// Reweights counts Reweight calls.
	Reweights int
	// DenseFallbacks counts Potentials calls rescued by the exact dense
	// solve after the iterative path (warm and cold) failed.
	DenseFallbacks int
}

// NewSession prepares a session over g. The session takes ownership of g:
// all weight changes must go through Reweight. In Full mode the underlying
// solver additionally requires g to be connected.
func NewSession(g *graph.Graph, opts SessionOptions) (*Session, error) {
	s := &Session{
		g:     g,
		lap:   linalg.NewLaplacian(g),
		opts:  opts,
		warmX: make(map[string]linalg.Vec),
		warmB: make(map[string]linalg.Vec),
	}
	s.precond = linalg.NewVec(g.N())
	s.refreshPrecond()
	s.pool = linalg.SharedPool(opts.Workers)
	s.lap.SetPool(s.pool)
	s.opts.Budget.BindIfUnbound(opts.Solver.Ledger)
	if reg := opts.Metrics; reg != nil {
		reg.MirrorLedger(opts.Solver.Ledger)
		s.mSolves = reg.Counter("lapcc_electrical_solves_total", "Electrical session Potentials calls.")
		s.mReweights = reg.Counter("lapcc_electrical_reweights_total", "Electrical session Reweight calls.")
		s.mDenseFallbacks = reg.Counter("lapcc_electrical_dense_fallbacks_total", "Potentials calls rescued by the exact dense fallback.")
	}
	if opts.Full {
		if opts.Trace != nil && s.opts.Solver.Trace == nil {
			s.opts.Solver.Trace = opts.Trace
		}
		if opts.Budget != nil && s.opts.Solver.Budget == nil {
			s.opts.Solver.Budget = opts.Budget
		}
		if opts.Metrics != nil && s.opts.Solver.Metrics == nil {
			s.opts.Solver.Metrics = opts.Metrics
		}
		if opts.NoFallback {
			s.opts.Solver.NoEscalation = true
		}
		if s.opts.Solver.Workers == 0 {
			s.opts.Solver.Workers = opts.Workers
		}
		solver, err := lapsolver.NewSolver(g, s.opts.Solver)
		if err != nil {
			return nil, fmt.Errorf("electrical: session: %w", err)
		}
		s.solver = solver
	}
	return s, nil
}

// refreshPrecond recomputes the Jacobi preconditioner diagonal in place,
// with the same isolated-vertex clamp as linalg.LaplacianCGSolver.
func (s *Session) refreshPrecond() {
	deg := s.lap.Degrees()
	for i := range s.precond {
		if deg[i] <= 0 {
			s.precond[i] = 1
		} else {
			s.precond[i] = deg[i]
		}
	}
}

// Graph returns the session's working graph with the current conductances.
// The caller must not mutate it; use Reweight.
func (s *Session) Graph() *graph.Graph { return s.g }

// Laplacian returns the Laplacian of the current conductances.
func (s *Session) Laplacian() *linalg.Laplacian { return s.lap }

// Solver returns the Full-mode solver, or nil on the internal path.
func (s *Session) Solver() *lapsolver.Solver { return s.solver }

// Stats returns the lifetime session counters.
func (s *Session) Stats() SessionStats { return s.stats }

// Reweight swaps the per-edge conductances (indexed by edge id) in place.
// Degenerate conductances — non-positive, NaN, or infinite — are clamped to
// 1e-12, the convention the flow IPMs apply to barrier weights at capacity
// walls. Topology, scratch, and (on reuse) the Full-mode sparsifier
// structure survive; nothing is reallocated on the internal path.
func (s *Session) Reweight(w []float64) error {
	if len(w) != s.g.M() {
		return fmt.Errorf("electrical: session reweight with %d weights for %d edges", len(w), s.g.M())
	}
	s.stats.Reweights++
	s.mReweights.Inc()
	if s.wbuf == nil {
		s.wbuf = make([]float64, len(w))
	}
	for i, weight := range w {
		if weight <= 0 || math.IsInf(weight, 0) || math.IsNaN(weight) {
			weight = 1e-12
		}
		s.wbuf[i] = weight
	}
	if err := s.g.SetWeights(s.wbuf); err != nil {
		return fmt.Errorf("electrical: session reweight: %w", err)
	}
	s.lap.Refresh()
	s.refreshPrecond()
	if s.solver != nil {
		// The solver works on its own clone; hand it the sanitized weights.
		return s.solver.Reweight(s.wbuf)
	}
	return nil
}

// Potentials solves L phi = b on the current conductances to precision eps
// (relative CG residual on the internal path, L_G-norm error in Full mode).
// slot names an independent warm-start lane — callers with several
// distinct right-hand-side families per iteration (e.g. the IPMs'
// augmentation and fixing solves) keep them from clobbering each other's
// seeds.
func (s *Session) Potentials(b linalg.Vec, eps float64, slot string) (linalg.Vec, error) {
	if err := s.opts.Budget.Check("potentials"); err != nil {
		return nil, fmt.Errorf("electrical: session potentials: %w", err)
	}
	s.stats.Solves++
	s.mSolves.Inc()
	if s.solver != nil {
		x, _, err := s.solver.Solve(b, eps)
		if err != nil {
			return nil, fmt.Errorf("electrical: session potentials: %w", err)
		}
		return x, nil
	}
	x, dense, err := s.solveInternal(b, eps, s.warmSeed(b, slot), &s.cg, true)
	if dense {
		s.stats.DenseFallbacks++
		s.mDenseFallbacks.Inc()
	}
	if err != nil {
		return nil, fmt.Errorf("electrical: session potentials: %w", err)
	}
	if s.opts.WarmStart {
		s.warmX[slot] = x.Clone()
		s.warmB[slot] = b.Clone()
	}
	return x, nil
}

// warmSeed returns the warm-start guess for slot against the new right-hand
// side b (nil when warm starting is off, the slot is cold, or the seed would
// be degenerate). It only reads session state.
func (s *Session) warmSeed(b linalg.Vec, slot string) linalg.Vec {
	if !s.opts.WarmStart {
		return nil
	}
	wx, wb := s.warmX[slot], s.warmB[slot]
	if wx == nil || wb == nil {
		return nil
	}
	den := wb.Dot(wb)
	if den <= 0 {
		return nil
	}
	c := b.Dot(wb) / den
	if math.IsNaN(c) || math.IsInf(c, 0) {
		return nil
	}
	x0 := wx.Clone()
	x0.Scale(c)
	return x0
}

// solveInternal runs the internal-path solve ladder — warm CG, cold retry,
// dense fallback — against the current Laplacian. It mutates only the given
// scratch, so concurrent calls with private scratch are safe; withTrace
// gates the fallback trace span (disabled on the concurrent batch path,
// where span interleaving would be nondeterministic). dense reports whether
// the exact fallback produced the result.
func (s *Session) solveInternal(b linalg.Vec, eps float64, x0 linalg.Vec, scratch *linalg.CGScratch, withTrace bool) (x linalg.Vec, dense bool, err error) {
	// The stagnation window turns a hopeless plateau into a prompt typed
	// error (and thus a dense fallback) instead of a full MaxIter burn; a
	// healthy CG run exits on tolerance long before any window matters.
	x, _, err = linalg.SolveCG(s.lap, b, linalg.CGOptions{
		Tol:              eps,
		Precond:          s.precond,
		ProjectMean:      true,
		X0:               x0,
		Scratch:          scratch,
		StagnationWindow: cgStagnationWindow,
		Pool:             s.pool,
	})
	if err != nil && x0 != nil {
		// Warm starting is an optimization, never a correctness dependency:
		// a degenerate seed must not fail a solve that succeeds cold.
		x, _, err = linalg.SolveCG(s.lap, b, linalg.CGOptions{
			Tol:              eps,
			Precond:          s.precond,
			ProjectMean:      true,
			Scratch:          scratch,
			StagnationWindow: cgStagnationWindow,
			Pool:             s.pool,
		})
	}
	if err != nil && !s.opts.NoFallback {
		// Guarded recovery: the support is globally known on this path, so
		// an exact dense solve costs zero extra rounds — it is pure internal
		// computation, just much more memory- and time-hungry.
		var sp *trace.Span
		if withTrace {
			sp = s.opts.Trace.Start("session-dense-fallback")
		}
		x, err = linalg.LaplacianPseudoSolve(s.lap.Dense(), b)
		sp.End()
		if err == nil {
			dense = true
		}
	}
	return x, dense, err
}

// PotentialsBatch solves L phi = b_i for every right-hand side concurrently,
// one independent warm-start lane per entry (slots must be pairwise
// distinct). It is the batch form of Potentials for callers with several
// independent solve families per iteration — the embarrassingly parallel
// multi-RHS schedules of the flow IPMs’ construction. Per-slot results are
// bit-identical to issuing the same Potentials calls sequentially: each
// solve reads the warm state from before the batch, runs on private
// scratch, and all session-state updates (stats, warm lanes, metrics) are
// applied after every solve finished, in slot order. Full mode serializes
// through the stateful chain solver.
func (s *Session) PotentialsBatch(bs []linalg.Vec, eps float64, slots []string) ([]linalg.Vec, error) {
	if len(bs) != len(slots) {
		return nil, fmt.Errorf("electrical: session potentials batch: %d right-hand sides for %d slots", len(bs), len(slots))
	}
	seen := make(map[string]struct{}, len(slots))
	for _, sl := range slots {
		if _, dup := seen[sl]; dup {
			return nil, fmt.Errorf("electrical: session potentials batch: duplicate slot %q", sl)
		}
		seen[sl] = struct{}{}
	}
	if s.solver != nil {
		// Full mode: the sparsifier-chain solver is stateful (ledger, chain
		// reuse policy), so the batch degrades to the sequential loop.
		out := make([]linalg.Vec, len(bs))
		for i := range bs {
			x, err := s.Potentials(bs[i], eps, slots[i])
			if err != nil {
				return nil, err
			}
			out[i] = x
		}
		return out, nil
	}
	if err := s.opts.Budget.Check("potentials-batch"); err != nil {
		return nil, fmt.Errorf("electrical: session potentials batch: %w", err)
	}
	// Read every warm seed before any solve runs: lanes are written only
	// post-barrier, so the seeds match a sequential replay of the batch.
	seeds := make([]linalg.Vec, len(bs))
	for i := range bs {
		seeds[i] = s.warmSeed(bs[i], slots[i])
	}
	type slotResult struct {
		x     linalg.Vec
		dense bool
		err   error
	}
	results := make([]slotResult, len(bs))
	s.pool.ForBlocks(len(bs), func(i int) {
		r := &results[i]
		r.x, r.dense, r.err = s.solveInternal(bs[i], eps, seeds[i], &linalg.CGScratch{}, false)
	})
	out := make([]linalg.Vec, len(bs))
	for i := range results {
		s.stats.Solves++
		s.mSolves.Inc()
		if results[i].dense {
			s.stats.DenseFallbacks++
			s.mDenseFallbacks.Inc()
		}
		if results[i].err != nil {
			return nil, fmt.Errorf("electrical: session potentials (slot %q): %w", slots[i], results[i].err)
		}
		out[i] = results[i].x
		if s.opts.WarmStart {
			s.warmX[slots[i]] = results[i].x.Clone()
			s.warmB[slots[i]] = bs[i].Clone()
		}
	}
	return out, nil
}
