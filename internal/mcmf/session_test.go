package mcmf

import (
	"testing"

	"lapcc/internal/rounds"
)

// The session path (build the lifted support's electrical session once,
// reweight per Progress iteration) must be a pure wall-clock optimization
// over the FreshBuild oracle: identical cost, identical flow, identical
// charged and measured round totals across the full run.
func TestMinCostFlowSessionMatchesFreshBuild(t *testing.T) {
	cases := []struct {
		name string
		l, r int
		deg  int
		cost int64
		seed int64
	}{
		{"bipartite-6x6", 6, 6, 3, 9, 31},
		{"bipartite-8x5", 8, 5, 2, 20, 32},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dg, sigma := bipartiteInstance(tc.l, tc.r, tc.deg, tc.cost, tc.seed)

			sessLed := rounds.New()
			sess, err := MinCostFlow(dg, sigma, Options{Ledger: sessLed})
			if err != nil {
				t.Fatal(err)
			}
			freshLed := rounds.New()
			fresh, err := MinCostFlow(dg, sigma, Options{Ledger: freshLed, FreshBuild: true})
			if err != nil {
				t.Fatal(err)
			}

			if sess.Cost != fresh.Cost {
				t.Fatalf("session cost %d != fresh-build cost %d", sess.Cost, fresh.Cost)
			}
			for i := range sess.Flow {
				if sess.Flow[i] != fresh.Flow[i] {
					t.Fatalf("flow[%d]: session %d != fresh build %d", i, sess.Flow[i], fresh.Flow[i])
				}
			}
			if sc, fc := sessLed.TotalOf(rounds.Charged), freshLed.TotalOf(rounds.Charged); sc != fc {
				t.Fatalf("charged rounds differ: session %d, fresh build %d", sc, fc)
			}
			if sm, fm := sessLed.TotalOf(rounds.Measured), freshLed.TotalOf(rounds.Measured); sm != fm {
				t.Fatalf("measured rounds differ: session %d, fresh build %d", sm, fm)
			}
			if sess.ProgressIterations != fresh.ProgressIterations {
				t.Fatalf("iteration trajectories diverged: session %d, fresh build %d",
					sess.ProgressIterations, fresh.ProgressIterations)
			}
		})
	}
}
