// Package lapsolver implements the deterministic congested-clique Laplacian
// solver of Theorem 1.1: build a deterministic spectral sparsifier H of G
// (Theorem 3.3, package sparsify), make it known to every node, and run the
// preconditioned Chebyshev iteration of Theorem 2.2 (Corollary 2.3). Each
// Chebyshev iteration consists of one matvec with L_G — one round, because
// node v holds row v and the iterate entry x_v — plus a solve with the
// globally-known sparsifier and a constant number of vector operations,
// both internal.
//
// The paper knows the approximation factor alpha analytically
// (log^{O(r^2)} n); our substituted sparsifier's alpha is not known a
// priori, so the solver doubles a guess kappa = alpha^2 until the
// preconditioner-norm residual certifies the target error. Each rejected
// guess costs its iterations, which the ledger records; the doubling adds
// at most a constant factor over knowing alpha exactly — the standard
// trick, and the experiments (E8) also report measured alpha directly.
package lapsolver

import (
	"errors"
	"fmt"
	"math"

	"lapcc/internal/cc"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// ErrDisconnected reports an input graph that is not connected; Laplacian
// systems are solved per connected component, and this package requires the
// caller to pass one component.
var ErrDisconnected = errors.New("lapsolver: graph must be connected")

// ErrBadRHS reports a right-hand side of the wrong length.
var ErrBadRHS = errors.New("lapsolver: right-hand side has wrong length")

// Options configures NewSolver.
type Options struct {
	// Sparsify configures the sparsifier chain (zero value = defaults).
	Sparsify sparsify.Options
	// Randomized switches to the randomized effective-resistance sampling
	// sparsifier — the paper's closing remark: a simpler randomized solver
	// turns the n^{o(1)} factor into polylog n. Runs are reproducible per
	// RandomSeed. The solver itself stays the same deterministic
	// preconditioned Chebyshev iteration.
	Randomized bool
	// RandomSeed drives the randomized sparsifier.
	RandomSeed int64
	// KappaHint, if positive, is the initial relative-condition guess
	// (kappa = alpha^2). Default 4.
	KappaHint float64
	// MaxKappa caps the adaptive doubling (default 1e8).
	MaxKappa float64
	// InternalTol is the tolerance of the internal CG solves of the
	// globally-known sparsifier (default 1e-13). These solves cost zero
	// rounds in the model.
	InternalTol float64
	// WarmStart keeps solver state across Solve calls: the previously
	// accepted kappa seeds the next attempt schedule (skipping re-rejected
	// doubling attempts) and the previous solve's potentials seed the
	// Chebyshev iteration (ChebyOptions.X0, scaled by the projection of the
	// new right-hand side onto the old one). Results still pass the same
	// residual certificate; only wall clock changes. Intended for session
	// use (many solves / reweights against one topology).
	WarmStart bool
	// Chain tunes the sparsifier session reuse policy (α-drift bound,
	// envelope certificate) used by Reweight; its Sparsify field is ignored
	// in favor of Options.Sparsify. Zero value = defaults.
	Chain sparsify.ChainOptions
	// Ledger, if non-nil, receives round costs.
	Ledger *rounds.Ledger
	// Faults, if non-nil, subjects every network primitive of the
	// sparsifier chain to the given fault plan, with delivery restored by
	// the reliable retransmission layer (propagated to Sparsify.Faults
	// when that field is unset). Results are bit-identical to a fault-free
	// run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every network primitive of
	// the sparsifier chain through the given delivery backend (propagated
	// to Sparsify.Transport when that field is unset; see cc.Transport).
	// Results are bit-identical to the in-process path.
	Transport cc.Transport
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
	// Budget, if non-nil, bounds each Solve: it is checked at every kappa
	// attempt, and exhaustion aborts with an error unwrapping to
	// rounds.ErrBudgetExceeded carrying the partial stats. A nil budget
	// never limits anything.
	Budget *rounds.Budget
	// Metrics, if non-nil, receives live phase counters (solves, Chebyshev
	// iterations, kappa attempts, escalations, dense fallbacks) and a
	// mirror of the ledger's cost stream; propagated to Sparsify.Metrics
	// when that field is unset. A nil registry records nothing and costs
	// nothing.
	Metrics *metrics.Registry
	// Workers sets the worker count for the solver's numerical kernels
	// (Laplacian matvecs, Chebyshev vector ops, internal CG) and is
	// propagated to Sparsify.Workers when that field is unset
	// (0 = GOMAXPROCS, 1 = sequential — today's exact code path). Results
	// are bit-identical at any worker count; see linalg's parallel runtime.
	Workers int
	// NoEscalation disables the guarded-recovery machinery — both the
	// Chebyshev stagnation window (so every attempt runs its full
	// prescribed iteration count) and the recovery ladder (stagnation →
	// tightened internal tolerance → exact dense fallback) — restoring the
	// historical run-to-the-bound, fail-with-error behavior. Intended for
	// tests and experiments that pin the theory's round accounting or the
	// failure modes themselves.
	NoEscalation bool
}

func (o *Options) defaults() {
	if o.KappaHint == 0 {
		o.KappaHint = 4
	}
	if o.MaxKappa == 0 {
		o.MaxKappa = 1e8
	}
	if o.InternalTol == 0 {
		o.InternalTol = 1e-13
	}
	if o.Ledger != nil && o.Sparsify.Ledger == nil {
		o.Sparsify.Ledger = o.Ledger
	}
	if o.Trace != nil && o.Sparsify.Trace == nil {
		o.Sparsify.Trace = o.Trace
	}
	o.Budget.BindIfUnbound(o.Ledger)
	if o.Faults != nil && o.Sparsify.Faults == nil {
		o.Sparsify.Faults = o.Faults
	}
	if o.Transport != nil && o.Sparsify.Transport == nil {
		o.Sparsify.Transport = o.Transport
	}
	if o.Metrics != nil && o.Sparsify.Metrics == nil {
		o.Sparsify.Metrics = o.Metrics
	}
	if o.Sparsify.Workers == 0 {
		o.Sparsify.Workers = o.Workers
	}
}

// Solver solves systems L_G x = b to relative precision eps in the L_G
// norm. One Solver instance amortizes its sparsifier across many solves,
// and — through Reweight — across many weightings of one topology: the
// flow IPMs build one Solver per support graph and reweight it every
// iteration instead of rebuilding (see sparsify.Chain for the reuse
// policy). The solver works on a private copy of the input graph, so
// Reweight never mutates the caller's graph.
type Solver struct {
	g      *graph.Graph // private working copy (reweighted in place)
	lg     *linalg.Laplacian
	h      *graph.Graph
	lh     *linalg.Laplacian
	hSolve func(linalg.Vec) (linalg.Vec, error)
	opts   Options
	pool   *linalg.Pool    // nil = sequential kernels
	chain  *sparsify.Chain // nil on the randomized path

	// Warm-start state (only written when opts.WarmStart is set).
	warmX     linalg.Vec // potentials of the last accepted solve
	warmB     linalg.Vec // right-hand side of the last accepted solve
	warmKappa float64    // kappa accepted by the last solve (0 = none)

	mi *lapMetrics // pre-resolved instruments (nil with metrics disabled)
}

// lapMetrics is the solver's pre-resolved instrument set; Solve records
// into it without touching the registry (it is called once per IPM
// iteration in the flow solvers).
type lapMetrics struct {
	solves         *metrics.Counter
	iterations     *metrics.Counter
	attempts       *metrics.Counter
	escalations    *metrics.Counter
	denseFallbacks *metrics.Counter
}

func newLapMetrics(reg *metrics.Registry) *lapMetrics {
	if reg == nil {
		return nil
	}
	return &lapMetrics{
		solves:         reg.Counter("lapcc_lapsolver_solves_total", "Laplacian Solve calls completed."),
		iterations:     reg.Counter("lapcc_lapsolver_cheby_iterations_total", "Preconditioned Chebyshev iterations across all solves."),
		attempts:       reg.Counter("lapcc_lapsolver_kappa_attempts_total", "Kappa guesses tried across all solves."),
		escalations:    reg.Counter("lapcc_lapsolver_escalations_total", "Guarded-recovery escalations (tolerance tightenings and dense fallbacks)."),
		denseFallbacks: reg.Counter("lapcc_lapsolver_dense_fallbacks_total", "Solves rescued by the exact dense fallback."),
	}
}

// record mirrors one Solve call's stats; nil-safe.
func (m *lapMetrics) record(stats Stats) {
	if m == nil {
		return
	}
	m.solves.Inc()
	m.iterations.Add(int64(stats.Iterations))
	m.attempts.Add(int64(stats.Attempts))
	m.escalations.Add(int64(stats.Escalations))
	if stats.DenseFallback {
		m.denseFallbacks.Inc()
	}
}

// Stats reports one Solve call.
type Stats struct {
	// Stats carries the shared round accounting of the call.
	rounds.Stats
	// Iterations is the total number of Chebyshev iterations across all
	// kappa attempts; each iteration costs one measured round.
	Iterations int
	// KappaUsed is the accepted relative-condition bound.
	KappaUsed float64
	// Attempts is the number of kappa guesses tried.
	Attempts int
	// Escalations counts guarded-recovery steps taken: each tightening of
	// the internal tolerance after a stagnated attempt is one escalation,
	// and the dense fallback is one more.
	Escalations int
	// DenseFallback reports that the iterative ladder was exhausted and the
	// result came from the exact dense solve (charged at the trivial-gather
	// round cost).
	DenseFallback bool
}

// NewSolver builds the sparsifier for g and prepares internal solvers.
// Construction costs the Theorem 3.3 rounds (charged/measured through the
// ledger inside sparsify). The solver clones g, so later Reweight calls
// leave the caller's graph untouched; the clone preserves edge order, so
// results are bit-identical to building on g directly.
func NewSolver(g *graph.Graph, opts Options) (*Solver, error) {
	opts.defaults()
	if !g.IsConnected() {
		return nil, ErrDisconnected
	}
	opts.Trace.Attach(opts.Ledger)
	opts.Metrics.MirrorLedger(opts.Ledger)
	sp := opts.Trace.Start("lapsolve-build")
	defer sp.End()
	gw := g.Clone()
	s := &Solver{g: gw, lg: linalg.NewLaplacian(gw), opts: opts, mi: newLapMetrics(opts.Metrics)}
	s.pool = linalg.SharedPool(opts.Workers)
	s.lg.SetPool(s.pool)
	if opts.Randomized {
		res, err := sparsify.RandomizedSparsify(gw, sparsify.RandomOptions{
			Seed:    opts.RandomSeed,
			Ledger:  opts.Ledger,
			Trace:   opts.Trace,
			Metrics: opts.Metrics,
		})
		if err != nil {
			return nil, fmt.Errorf("lapsolver: %w", err)
		}
		s.setSparsifier(res.H)
		return s, nil
	}
	chainOpts := opts.Chain
	chainOpts.Sparsify = opts.Sparsify
	chain, err := sparsify.NewChain(gw, chainOpts)
	if err != nil {
		return nil, fmt.Errorf("lapsolver: %w", err)
	}
	s.chain = chain
	s.setSparsifier(chain.H())
	return s, nil
}

// setSparsifier (re)wires the preconditioner side of the solver to h.
func (s *Solver) setSparsifier(h *graph.Graph) {
	s.h = h
	s.lh = linalg.NewLaplacian(h)
	s.lh.SetPool(s.pool)
	s.hSolve = linalg.LaplacianCGSolver(s.lh, s.opts.InternalTol)
}

// Reweight points the solver at new edge weights for its (fixed) topology:
// w is indexed by edge id of the graph NewSolver was given. The sparsifier
// chain decides between exact reuse, drift-certified reuse, and a full
// rebuild (sparsify.Chain); the ledger sees the same charged rounds a fresh
// build with the recorded level structure would add, so reuse changes only
// wall clock and allocations.
func (s *Solver) Reweight(w []float64) error {
	if len(w) != s.g.M() {
		return fmt.Errorf("lapsolver: reweight with %d weights for %d edges", len(w), s.g.M())
	}
	if s.chain != nil {
		reused, err := s.chain.Reweight(w)
		if err != nil {
			return fmt.Errorf("lapsolver: %w", err)
		}
		s.lg.Refresh()
		if !reused {
			// Fresh structure: rewire the preconditioner and drop the warm
			// kappa (it calibrated the old sparsifier); the warm potentials
			// stay — they approximate the solution, not the structure.
			s.setSparsifier(s.chain.H())
			s.warmKappa = 0
		}
		return nil
	}
	// Randomized path: no structural session; reweight in place and rebuild
	// with the same seed (reproducibility contract unchanged).
	for i := range w {
		if err := s.g.SetWeight(i, w[i]); err != nil {
			return fmt.Errorf("lapsolver: reweight: %w", err)
		}
	}
	s.lg.Refresh()
	res, err := sparsify.RandomizedSparsify(s.g, sparsify.RandomOptions{
		Seed:   s.opts.RandomSeed,
		Ledger: s.opts.Ledger,
		Trace:  s.opts.Trace,
	})
	if err != nil {
		return fmt.Errorf("lapsolver: %w", err)
	}
	s.setSparsifier(res.H)
	s.warmKappa = 0
	return nil
}

// SetBudget replaces the budget consulted at solve-attempt boundaries,
// binding it to the solver's ledger so its round limit meters from the
// current totals. A nil budget removes the limit. The serving layer uses
// this to apply per-request admission budgets to pooled solvers; the
// sparsifier chain's rebuild budget is set separately (sparsify.Chain).
func (s *Solver) SetBudget(b *rounds.Budget) {
	b.Bind(s.opts.Ledger)
	s.opts.Budget = b
}

// ChainStats returns the sparsifier session's reuse counters (zero value on
// the randomized path, which has no structural session).
func (s *Solver) ChainStats() sparsify.ChainStats {
	if s.chain == nil {
		return sparsify.ChainStats{}
	}
	return s.chain.Stats()
}

// Sparsifier returns the sparsifier graph H (globally known to all nodes).
func (s *Solver) Sparsifier() *graph.Graph { return s.h }

// Graph returns the solver's working graph (its private copy, carrying the
// current weights). The caller must not mutate it; use Reweight.
func (s *Solver) Graph() *graph.Graph { return s.g }

// Laplacian returns the input graph's Laplacian operator.
func (s *Solver) Laplacian() *linalg.Laplacian { return s.lg }

// Solve returns x with ||x - L_G^+ b||_{L_G} <= eps * ||L_G^+ b||_{L_G}.
// b is projected onto the solvable subspace (mean removed); eps must lie in
// (0, 1/2].
func (s *Solver) Solve(b linalg.Vec, eps float64) (linalg.Vec, Stats, error) {
	snap := rounds.Snap(s.opts.Ledger)
	spansBefore := s.opts.Trace.SpanCount()
	x, stats, err := s.solve(b, eps)
	stats.Stats = snap.Stats()
	stats.Spans = s.opts.Trace.SpanCount() - spansBefore
	s.mi.record(stats)
	return x, stats, err
}

func (s *Solver) solve(b linalg.Vec, eps float64) (linalg.Vec, Stats, error) {
	sp := s.opts.Trace.Start("lapsolve")
	defer sp.End()
	if len(b) != s.g.N() {
		return nil, Stats{}, fmt.Errorf("%w: %d for n=%d", ErrBadRHS, len(b), s.g.N())
	}
	if eps <= 0 || eps > 0.5 {
		return nil, Stats{}, fmt.Errorf("lapsolver: eps %v outside (0, 1/2]", eps)
	}
	rhs := b.Clone()
	s.pool.RemoveMean(rhs)
	var stats Stats
	if s.pool.Norm2(rhs) == 0 {
		return linalg.NewVec(s.g.N()), stats, nil
	}

	// Residual acceptance in the preconditioner norm: with
	// (1/a) L_H <= L_G <= a L_H and a^2 <= kappa,
	//   ||x - x*||_A / ||x*||_A <= a * ||r||_{B+} / ||b||_{B+},
	// so accepting at ratio <= eps/sqrt(kappa) certifies the target.
	bNorm, err := s.precondNorm(rhs)
	if err != nil {
		return nil, stats, err
	}

	kappa := s.opts.KappaHint
	var x0 linalg.Vec
	if s.opts.WarmStart {
		if s.warmKappa > 0 {
			// Start at the previously accepted kappa: skips the doubling
			// attempts the last solve already paid for.
			kappa = s.warmKappa
		}
		if s.warmX != nil && s.warmB != nil {
			// Seed Chebyshev with the previous potentials, scaled by the
			// projection of the new rhs onto the old one (IPM right-hand
			// sides keep their direction and shrink in magnitude).
			den := s.warmB.Dot(s.warmB)
			if den > 0 {
				c := rhs.Dot(s.warmB) / den
				if !math.IsNaN(c) && !math.IsInf(c, 0) {
					x0 = s.warmX.Clone()
					x0.Scale(c)
				}
			}
		}
	}
	tightened := false
	for {
		if err := s.opts.Budget.Check(fmt.Sprintf("lapsolve-attempt-%d", stats.Attempts+1)); err != nil {
			return nil, stats, fmt.Errorf("lapsolver: %w", err)
		}
		stats.Attempts++
		asp := s.opts.Trace.Startf("attempt-%d", stats.Attempts)
		scale := math.Sqrt(kappa)
		bSolve := func(r linalg.Vec) (linalg.Vec, error) {
			y, err := s.hSolve(r)
			if err != nil {
				return nil, err
			}
			y.Scale(1 / scale) // (sqrt(kappa) L_H)^+
			return y, nil
		}
		// Run at the tighter internal target eps/sqrt(kappa) so the
		// certificate below can fire.
		target := eps / scale
		if target < 1e-14 {
			target = 1e-14
		}
		chebyEps := target
		if chebyEps > 0.5 {
			chebyEps = 0.5
		}
		window := linalg.StagnationWindowFor(kappa)
		if s.opts.NoEscalation {
			window = 0
		}
		chebyOpts := linalg.ChebyOptions{
			Kappa:            kappa,
			Eps:              chebyEps,
			X0:               x0,
			StagnationWindow: window,
			// A plateau below the internal target is convergence at the FP
			// floor, not stagnation: finish the prescribed iterations so
			// round accounting matches the window-free solver exactly.
			StagnationTol: chebyEps,
			Pool:          s.pool,
			OnIteration: func() {
				if s.opts.Ledger != nil {
					// One matvec with L_G per iteration: one round.
					s.opts.Ledger.Add("lapsolve-cheby-iter", rounds.Measured, 1, "matvec with L_G, Cor 2.3")
				}
			},
		}
		x, res, err := linalg.PreconCheby(s.lg, bSolve, rhs, chebyOpts)
		if err != nil && x0 != nil {
			// A near-exact seed can push the shifted right-hand side b - A x0
			// to the inner CG's floating-point floor. Warm starting is an
			// optimization, never a correctness dependency: retry this
			// attempt cold.
			x0 = nil
			chebyOpts.X0 = nil
			x, res, err = linalg.PreconCheby(s.lg, bSolve, rhs, chebyOpts)
		}
		// A stagnated attempt still hands back its plateau iterate — often a
		// solution that already certifies (the plateau is the floating-point
		// floor, below the target). Run the certificate before deciding.
		stagnated := errors.Is(err, linalg.ErrStagnated)
		if err != nil && !stagnated {
			asp.End()
			return nil, stats, fmt.Errorf("lapsolver: %w", err)
		}
		stats.Iterations += res.Iterations

		// Certificate: compute r = b - A x (one matvec round) and its
		// preconditioner norm (internal) plus one aggregation round.
		r := linalg.NewVec(len(rhs))
		s.lg.Apply(r, x)
		s.pool.Range(len(r), func(lo, hi int) {
			rs, bs := r[lo:hi], rhs[lo:hi]
			for i := range rs {
				rs[i] = bs[i] - rs[i]
			}
		})
		s.pool.RemoveMean(r)
		if s.opts.Ledger != nil {
			s.opts.Ledger.Add("lapsolve-residual", rounds.Measured, 2, "residual matvec + aggregation")
		}
		rNorm, err := s.precondNorm(r)
		if err != nil {
			return nil, stats, err
		}
		asp.End()
		if rNorm <= target*bNorm {
			stats.KappaUsed = kappa
			if s.opts.WarmStart {
				s.warmKappa = kappa
				s.warmX = x.Clone()
				s.warmB = rhs.Clone()
			}
			return x, stats, nil
		}
		// Rejected. Doubling kappa cannot cure a plateau (the inner solve,
		// not the condition bound, is the floor), and at the cap there is no
		// kappa left to double to; both climb the recovery ladder instead —
		// unless the caller pinned the historical failure modes.
		if stagnated || kappa >= s.opts.MaxKappa {
			if s.opts.NoEscalation {
				if stagnated {
					return nil, stats, fmt.Errorf("lapsolver: %w", err)
				}
				return nil, stats, fmt.Errorf("lapsolver: kappa cap %v reached with residual ratio %v (target %v)",
					s.opts.MaxKappa, rNorm/bNorm, target)
			}
			if !tightened {
				// Rung 1: retry the same kappa with a 100x tighter internal
				// sparsifier solve. The certificate norm is defined by that
				// solve, so recompute the right-hand side's norm under it.
				tightened = true
				stats.Escalations++
				esp := s.opts.Trace.Start("escalate-tighten")
				s.opts.InternalTol /= 100
				s.setSparsifier(s.h)
				bNorm, err = s.precondNorm(rhs)
				esp.End()
				if err != nil {
					return nil, stats, err
				}
				x0 = nil
				continue
			}
			// Rung 2: exact dense solve, charged at the trivial-gather cost.
			stats.Escalations++
			stats.DenseFallback = true
			stats.KappaUsed = kappa
			xd, derr := s.denseFallback(rhs)
			if derr != nil {
				return nil, stats, derr
			}
			if s.opts.WarmStart {
				s.warmKappa = kappa
				s.warmX = xd.Clone()
				s.warmB = rhs.Clone()
			}
			return xd, stats, nil
		}
		kappa *= 4
		// A rejected warm start may itself be the problem (stale
		// potentials); continue the escalation cold.
		x0 = nil
	}
}

// denseFallback is the last rung of the guarded-recovery ladder: make the
// whole graph globally known — charged at the trivial deterministic gather
// cost of section 1.1 — and solve the system exactly with the dense
// pseudoinverse path. It cannot stagnate and needs no kappa.
func (s *Solver) denseFallback(rhs linalg.Vec) (linalg.Vec, error) {
	sp := s.opts.Trace.Start("escalate-dense")
	defer sp.End()
	if s.opts.Ledger != nil {
		s.opts.Ledger.Add("lapsolve-dense-gather", rounds.Charged,
			rounds.TrivialGatherRounds(s.g.N(), s.g.M(), int64(math.Ceil(s.g.MaxWeight()))),
			"trivial gather, section 1.1; exact dense fallback")
	}
	x, err := linalg.LaplacianPseudoSolve(s.lg.Dense(), rhs)
	if err != nil {
		return nil, fmt.Errorf("lapsolver: dense fallback: %w", err)
	}
	return x, nil
}

// precondNorm returns sqrt(v^T L_H^+ v), the preconditioner seminorm used
// by the acceptance certificate. Internal computation: L_H is globally
// known.
func (s *Solver) precondNorm(v linalg.Vec) (float64, error) {
	y, err := s.hSolve(v)
	if err != nil {
		return 0, fmt.Errorf("lapsolver: preconditioner norm: %w", err)
	}
	q := s.pool.Dot(v, y)
	if q < 0 {
		q = 0
	}
	return math.Sqrt(q), nil
}

// PredictedRounds returns the Theorem 1.1 round bound shape
// n^{o(1)} log(U/eps) instantiated with the measured sparsifier: the
// Chebyshev iteration count for the given kappa and eps. Exposed for the
// experiment harness.
func PredictedRounds(kappa, eps float64) int {
	return linalg.ChebyIterationBound(kappa, eps)
}
