// Package metrics is the live-observability counterpart of internal/trace:
// a dependency-free registry of counters, gauges, and log-bucketed
// histograms that the whole solver stack reports into while a run is in
// flight. Where a trace answers "where did the rounds go" after the fact,
// the registry answers "what is the engine doing right now" — it is what
// the CLIs' -debug-addr HTTP server scrapes.
//
// Design rules, in priority order:
//
//   - Zero-allocation hot path. Recording into an instrument is one or two
//     atomic adds; instruments are resolved (name -> pointer) once, outside
//     the hot loop, exactly like the PR 1 engine pre-sizes its arenas. The
//     cc engine's disabled path is untouched (a nil registry resolves to
//     nil instruments, and every method is a no-op on a nil receiver).
//   - Deterministic exposition. Snapshot, WritePrometheus, and WriteJSON
//     emit metrics sorted by name and label set, so two snapshots of equal
//     state are byte-identical — the same discipline as the JSONL trace
//     export.
//   - No dependencies. The Prometheus text format is simple enough to emit
//     by hand; pulling a client library would violate the repo's
//     stdlib-only constraint.
//
// Histograms use power-of-two buckets: bucket i counts observations v with
// bits.Len64(v) == i, i.e. bucket 0 holds v == 0 and bucket i >= 1 holds
// 2^(i-1) <= v < 2^i. The upper bound of bucket i is therefore 2^i - 1,
// which is what the Prometheus `le` label reports. One fixed 64-entry
// array covers every non-negative int64, so Observe never branches on
// range and never allocates.
package metrics

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Kind is the instrument type of a registered metric.
type Kind uint8

// Instrument kinds.
const (
	// KindCounter is a monotonically non-decreasing count.
	KindCounter Kind = iota + 1
	// KindGauge is a value that can go up and down.
	KindGauge
	// KindHistogram is a power-of-two-bucketed distribution.
	KindHistogram
)

// String returns the Prometheus TYPE keyword for the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Label is one name="value" pair attached to a metric.
type Label struct {
	Key   string
	Value string
}

// histBuckets is the number of finite histogram buckets: bucket i counts
// observations of bit length i, and 64 buckets cover every non-negative
// int64 (bits.Len64 of a positive int64 is at most 63).
const histBuckets = 64

// Counter is a monotonically non-decreasing counter. The zero value is
// ready to use; all methods are safe on a nil receiver (no-ops), so a
// disabled registry costs one nil check per record.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n. Negative n is ignored: counters are monotone by contract,
// and silently winding one backwards would corrupt rate computations on
// the scrape side.
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous value. The zero value is ready to use; all
// methods are no-ops on a nil receiver.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Add adds delta (which may be negative).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket power-of-two histogram of non-negative
// int64 observations (negative observations clamp to 0). The zero value is
// ready to use; all methods are no-ops on a nil receiver. Observe is one
// bits.Len64 plus three atomic adds — no branches on bucket boundaries, no
// allocation.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	h.buckets[bits.Len64(uint64(v))&(histBuckets-1)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations (0 on nil).
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// metric is one registered instrument plus its identity.
type metric struct {
	name   string
	help   string
	labels []Label
	id     string // name + canonical label rendering, the dedup key
	kind   Kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// Registry holds named instruments. A nil *Registry is a valid, disabled
// registry: every lookup returns a nil instrument whose methods are no-ops,
// so callers thread registries unconditionally instead of guarding every
// record site. Lookups (Counter, Gauge, Histogram) are get-or-create and
// take a mutex; record operations on the returned instruments are
// lock-free. Resolve instruments once per hot loop, not once per record.
type Registry struct {
	mu   sync.Mutex
	byID map[string]*metric
	sink any // lazily built rounds.Sink adapter; see ledger.go
}

// NewRegistry returns an empty, enabled registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*metric)}
}

// Enabled reports whether the registry records anything.
func (r *Registry) Enabled() bool { return r != nil }

// metricID renders the canonical identity of a metric: the name plus the
// label pairs in the given order. Label order is part of the identity on
// purpose — callers register a metric with one spelling, and the
// exposition sorts whole metrics, not label keys inside one metric.
func metricID(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(l.Value))
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

// pairLabels converts alternating key, value strings into Labels; an odd
// trailing key gets an empty value rather than being dropped, so a caller
// bug is visible in the exposition instead of silent.
func pairLabels(kv []string) []Label {
	if len(kv) == 0 {
		return nil
	}
	out := make([]Label, 0, (len(kv)+1)/2)
	for i := 0; i < len(kv); i += 2 {
		l := Label{Key: kv[i]}
		if i+1 < len(kv) {
			l.Value = kv[i+1]
		}
		out = append(out, l)
	}
	return out
}

// lookup returns the metric registered under (name, labels), creating it
// with the given kind if absent. Re-registering an existing metric with a
// different kind is a programming error and panics: two instruments cannot
// share one exposition name.
func (r *Registry) lookup(kind Kind, name, help string, kv []string) *metric {
	labels := pairLabels(kv)
	id := metricID(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.byID[id]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s registered as %v, requested as %v", id, m.kind, kind))
		}
		return m
	}
	m := &metric{name: name, help: help, labels: labels, id: id, kind: kind}
	switch kind {
	case KindCounter:
		m.counter = &Counter{}
	case KindGauge:
		m.gauge = &Gauge{}
	case KindHistogram:
		m.hist = &Histogram{}
	}
	r.byID[id] = m
	return m
}

// Counter returns the counter registered under name and the optional
// alternating key, value label pairs, creating it on first use. Returns
// nil (a no-op instrument) on a nil registry.
func (r *Registry) Counter(name, help string, labelPairs ...string) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(KindCounter, name, help, labelPairs).counter
}

// Gauge is Counter for gauges.
func (r *Registry) Gauge(name, help string, labelPairs ...string) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(KindGauge, name, help, labelPairs).gauge
}

// Histogram is Counter for histograms.
func (r *Registry) Histogram(name, help string, labelPairs ...string) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(KindHistogram, name, help, labelPairs).hist
}

// BucketCount is one cumulative histogram bucket of a Sample.
type BucketCount struct {
	// UpperBound is the bucket's inclusive upper bound (the `le` value).
	UpperBound int64
	// Count is the cumulative number of observations <= UpperBound.
	Count int64
}

// Sample is one metric in a deterministic snapshot.
type Sample struct {
	Name   string
	Help   string
	Labels []Label
	Kind   Kind
	// Value is the counter or gauge value (unused for histograms).
	Value int64
	// Count and Sum describe a histogram (unused otherwise).
	Count int64
	Sum   int64
	// Buckets are the cumulative finite buckets of a histogram, trimmed to
	// the highest occupied bucket; Count is the +Inf bucket.
	Buckets []BucketCount
}

// Snapshot returns every registered metric, sorted by name then label
// rendering, each read atomically per field. Two snapshots of identical
// state are deeply equal, which is what makes the expositions diffable.
func (r *Registry) Snapshot() []Sample {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := make([]*metric, 0, len(r.byID))
	for _, m := range r.byID {
		ms = append(ms, m)
	}
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].name != ms[j].name {
			return ms[i].name < ms[j].name
		}
		return ms[i].id < ms[j].id
	})
	out := make([]Sample, 0, len(ms))
	for _, m := range ms {
		s := Sample{Name: m.name, Help: m.help, Labels: m.labels, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			s.Value = m.counter.Value()
		case KindGauge:
			s.Value = m.gauge.Value()
		case KindHistogram:
			s.Count = m.hist.Count()
			s.Sum = m.hist.Sum()
			s.Buckets = cumulativeBuckets(m.hist)
		}
		out = append(out, s)
	}
	return out
}

// cumulativeBuckets renders a histogram's occupied finite buckets in
// cumulative (Prometheus le) form.
func cumulativeBuckets(h *Histogram) []BucketCount {
	top := -1
	var raw [histBuckets]int64
	for i := 0; i < histBuckets; i++ {
		raw[i] = h.buckets[i].Load()
		if raw[i] != 0 {
			top = i
		}
	}
	if top < 0 {
		return nil
	}
	out := make([]BucketCount, 0, top+1)
	var cum int64
	for i := 0; i <= top; i++ {
		cum += raw[i]
		out = append(out, BucketCount{UpperBound: bucketUpperBound(i), Count: cum})
	}
	return out
}

// bucketUpperBound returns the inclusive upper bound of bucket i: 0 for
// bucket 0 and 2^i - 1 for i >= 1 (bucket 63's bound saturates at
// MaxInt64).
func bucketUpperBound(i int) int64 {
	if i <= 0 {
		return 0
	}
	if i >= 63 {
		return int64(^uint64(0) >> 1) // MaxInt64
	}
	return int64(1)<<uint(i) - 1
}
