// Package transport implements the wire layer of the engine's pluggable
// delivery boundary (see internal/cc.Transport): a length-prefixed,
// checksummed frame codec shared by every backend that serializes messages,
// plus the in-process Mem backend that round-trips each round through the
// codec without sockets. The multi-process TCP backend in
// internal/transport/tcp speaks the same frames over real connections.
//
// Wire format, little-endian throughout:
//
//	frame   := u32 length | u32 crc32c | payload        (length = len(payload))
//	payload := u8 type | body
//	msg     := i32 from | i32 to | u32 width | width × u64
//	str     := u32 length | bytes
//
// The checksum is CRC-32C (Castagnoli) over the payload. Length and checksum
// protect against truncation, bit rot, and framing desynchronization; decode
// errors distinguish "need more bytes" (ErrTruncated) from "stream is
// corrupt" (ErrBadChecksum, ErrBadFrame) so stream readers can block on the
// former and fail loudly on the latter.
package transport

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// FrameType tags a frame's role in the coordinator/node protocol.
type FrameType uint8

const (
	// FrameHello introduces a node process to the coordinator (Node, Addr =
	// the node's mesh listen address) or to a mesh peer (Node only).
	FrameHello FrameType = 1 + iota
	// FramePeers broadcasts the full mesh address table to every node.
	FramePeers
	// FrameReady signals a node's mesh is fully connected.
	FrameReady
	// FrameRound carries one round's sends owned by the receiving node
	// (coordinator -> node).
	FrameRound
	// FrameData carries one chunk of a node's sends to a peer (node ->
	// node). Seq/Total sequence the chunks of one (round, sender) stream.
	FrameData
	// FrameAck acknowledges complete receipt of a (round, sender) stream
	// (receiver -> sender). Seq carries the cumulative chunk count seen.
	FrameAck
	// FrameInbox returns a node's assembled inbox shard for one round,
	// with its wire-level counters piggybacked (node -> coordinator).
	FrameInbox
	// FrameShutdown asks a node process to exit cleanly.
	FrameShutdown
	// FrameError carries a fatal error description (either direction).
	FrameError
	// FramePing is the coordinator's liveness probe between barriers; a
	// worker answers with FramePong. The supervised transport uses the
	// pair to detect dead workers while no delivery is in flight.
	FramePing
	// FramePong acknowledges a FramePing (node -> coordinator).
	FramePong
	// FrameTrace carries a node's serialized trace records for one barrier
	// (node -> coordinator), sent immediately before the barrier's
	// FrameInbox when the round was flagged RoundFlagTrace. Blob holds a
	// trace.AppendRecs stream; the transport layer does not interpret it.
	FrameTrace
)

// Round flags carried on FrameRound. RoundFlagTrace asks the worker to
// record its barrier-local spans and return them in a FrameTrace.
const (
	RoundFlagTrace uint32 = 1 << iota
)

// Msg is one logical clique message in wire form.
type Msg struct {
	From, To int32
	Data     []int64
}

// WireStats counts a backend's wire-level work; the TCP nodes piggyback
// their per-round counters on FrameInbox.
type WireStats struct {
	Frames, FrameBytes, Retransmits, Acks uint64
}

// Frame is the decoded form of one wire frame. Unused fields are zero for
// any given type.
type Frame struct {
	Type  FrameType
	Round uint64
	Node  int32
	// Seq/Total sequence FrameData chunks; Seq doubles as the cumulative
	// acknowledgement count in FrameAck.
	Seq, Total uint32
	Addr       string   // FrameHello (mesh listen address), FrameError (message)
	Addrs      []string // FramePeers
	Msgs       []Msg    // FrameRound, FrameData, FrameInbox
	Stats      WireStats
	Flags      uint32 // FrameRound (RoundFlag* bits)
	Blob       []byte // FrameTrace (opaque trace record stream)
}

// Defensive decode limits: a corrupt or hostile length field must not drive
// allocation. MaxFrameBytes bounds one frame's payload; the per-field caps
// bound counts before their bodies are read.
const (
	MaxFrameBytes = 1 << 24
	maxStrLen     = 1 << 12
	maxMsgWidth   = 1 << 16
)

const frameHeaderLen = 8

var (
	// ErrTruncated reports a buffer ending mid-frame: not corruption, the
	// reader just needs more bytes.
	ErrTruncated = errors.New("transport: truncated frame")
	// ErrBadChecksum reports a payload failing its CRC.
	ErrBadChecksum = errors.New("transport: frame checksum mismatch")
	// ErrBadFrame reports a structurally invalid frame (bad type, counts
	// that contradict the length, oversized fields).
	ErrBadFrame = errors.New("transport: malformed frame")
	// ErrFrameTooLarge reports a frame exceeding MaxFrameBytes on encode or
	// a length prefix exceeding it on decode.
	ErrFrameTooLarge = errors.New("transport: frame exceeds size limit")
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

func appendStr(b []byte, s string) []byte {
	b = appendU32(b, uint32(len(s)))
	return append(b, s...)
}

func appendMsg(b []byte, m Msg) []byte {
	b = appendU32(b, uint32(m.From))
	b = appendU32(b, uint32(m.To))
	b = appendU32(b, uint32(len(m.Data)))
	for _, w := range m.Data {
		b = appendU64(b, uint64(w))
	}
	return b
}

func appendMsgs(b []byte, msgs []Msg) []byte {
	b = appendU32(b, uint32(len(msgs)))
	for _, m := range msgs {
		b = appendMsg(b, m)
	}
	return b
}

// Append encodes f and appends the framed bytes to buf.
func Append(buf []byte, f *Frame) ([]byte, error) {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header patched below
	p := len(buf)
	buf = append(buf, byte(f.Type))
	switch f.Type {
	case FrameHello:
		buf = appendU32(buf, uint32(f.Node))
		buf = appendStr(buf, f.Addr)
	case FramePeers:
		buf = appendU32(buf, uint32(len(f.Addrs)))
		for _, a := range f.Addrs {
			buf = appendStr(buf, a)
		}
	case FrameReady, FrameShutdown, FramePing, FramePong:
		// type byte only
	case FrameRound:
		buf = appendU64(buf, f.Round)
		buf = appendU32(buf, f.Flags)
		buf = appendMsgs(buf, f.Msgs)
	case FrameTrace:
		buf = appendU64(buf, f.Round)
		buf = appendU32(buf, uint32(f.Node))
		buf = appendU32(buf, uint32(len(f.Blob)))
		buf = append(buf, f.Blob...)
	case FrameData:
		buf = appendU64(buf, f.Round)
		buf = appendU32(buf, uint32(f.Node))
		buf = appendU32(buf, f.Seq)
		buf = appendU32(buf, f.Total)
		buf = appendMsgs(buf, f.Msgs)
	case FrameAck:
		buf = appendU64(buf, f.Round)
		buf = appendU32(buf, uint32(f.Node))
		buf = appendU32(buf, f.Seq)
	case FrameInbox:
		buf = appendU64(buf, f.Round)
		buf = appendU32(buf, uint32(f.Node))
		buf = appendMsgs(buf, f.Msgs)
		buf = appendU64(buf, f.Stats.Frames)
		buf = appendU64(buf, f.Stats.FrameBytes)
		buf = appendU64(buf, f.Stats.Retransmits)
		buf = appendU64(buf, f.Stats.Acks)
	case FrameError:
		buf = appendStr(buf, f.Addr)
	default:
		return buf[:start], fmt.Errorf("%w: unknown type %d", ErrBadFrame, f.Type)
	}
	payload := buf[p:]
	if len(payload) > MaxFrameBytes {
		return buf[:start], fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf, nil
}

// decoder walks one payload with bounds checking.
type decoder struct {
	b   []byte
	off int
	err error
}

func (d *decoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: body ends at byte %d", ErrBadFrame, d.off)
	}
}

func (d *decoder) u8() byte {
	if d.err != nil || d.off+1 > len(d.b) {
		d.fail()
		return 0
	}
	v := d.b[d.off]
	d.off++
	return v
}

func (d *decoder) u32() uint32 {
	if d.err != nil || d.off+4 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.b[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if d.err != nil || d.off+8 > len(d.b) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.b[d.off:])
	d.off += 8
	return v
}

func (d *decoder) str() string {
	n := d.u32()
	if d.err != nil {
		return ""
	}
	if n > maxStrLen || d.off+int(n) > len(d.b) {
		d.fail()
		return ""
	}
	s := string(d.b[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// blob reads a u32-prefixed byte string bounded only by the remaining
// payload (the frame length prefix already caps it at MaxFrameBytes).
func (d *decoder) blob() []byte {
	n := d.u32()
	if d.err != nil {
		return nil
	}
	if d.off+int(n) > len(d.b) {
		d.fail()
		return nil
	}
	var b []byte
	if n > 0 {
		b = make([]byte, n)
		copy(b, d.b[d.off:d.off+int(n)])
	}
	d.off += int(n)
	return b
}

func (d *decoder) msgs() []Msg {
	count := d.u32()
	if d.err != nil || count == 0 {
		return nil
	}
	// Each message needs at least 12 bytes; reject counts the remaining
	// bytes cannot hold before allocating.
	if int64(count)*12 > int64(len(d.b)-d.off) {
		d.fail()
		return nil
	}
	msgs := make([]Msg, 0, count)
	for i := uint32(0); i < count; i++ {
		from := int32(d.u32())
		to := int32(d.u32())
		width := d.u32()
		if d.err != nil {
			return nil
		}
		if width > maxMsgWidth || d.off+int(width)*8 > len(d.b) {
			d.fail()
			return nil
		}
		var data []int64
		if width > 0 {
			data = make([]int64, width)
			for j := range data {
				data[j] = int64(binary.LittleEndian.Uint64(d.b[d.off:]))
				d.off += 8
			}
		}
		msgs = append(msgs, Msg{From: from, To: to, Data: data})
	}
	return msgs
}

// Decode decodes the first frame in b, returning it and the number of bytes
// consumed. ErrTruncated means b ends mid-frame (read more and retry); other
// errors mean the stream is corrupt at this position.
func Decode(b []byte) (*Frame, int, error) {
	if len(b) < frameHeaderLen {
		return nil, 0, ErrTruncated
	}
	length := binary.LittleEndian.Uint32(b)
	if length > MaxFrameBytes {
		return nil, 0, fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, length)
	}
	if length == 0 {
		return nil, 0, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	end := frameHeaderLen + int(length)
	if len(b) < end {
		return nil, 0, ErrTruncated
	}
	payload := b[frameHeaderLen:end]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(b[4:]) {
		return nil, 0, ErrBadChecksum
	}
	f, err := decodePayload(payload)
	if err != nil {
		return nil, 0, err
	}
	return f, end, nil
}

func decodePayload(payload []byte) (*Frame, error) {
	d := &decoder{b: payload}
	f := &Frame{Type: FrameType(d.u8())}
	switch f.Type {
	case FrameHello:
		f.Node = int32(d.u32())
		f.Addr = d.str()
	case FramePeers:
		count := d.u32()
		if d.err == nil && int64(count)*4 > int64(len(d.b)-d.off) {
			d.fail()
		}
		for i := uint32(0); d.err == nil && i < count; i++ {
			f.Addrs = append(f.Addrs, d.str())
		}
	case FrameReady, FrameShutdown, FramePing, FramePong:
		// type byte only
	case FrameRound:
		f.Round = d.u64()
		f.Flags = d.u32()
		f.Msgs = d.msgs()
	case FrameTrace:
		f.Round = d.u64()
		f.Node = int32(d.u32())
		f.Blob = d.blob()
	case FrameData:
		f.Round = d.u64()
		f.Node = int32(d.u32())
		f.Seq = d.u32()
		f.Total = d.u32()
		f.Msgs = d.msgs()
	case FrameAck:
		f.Round = d.u64()
		f.Node = int32(d.u32())
		f.Seq = d.u32()
	case FrameInbox:
		f.Round = d.u64()
		f.Node = int32(d.u32())
		f.Msgs = d.msgs()
		f.Stats.Frames = d.u64()
		f.Stats.FrameBytes = d.u64()
		f.Stats.Retransmits = d.u64()
		f.Stats.Acks = d.u64()
	case FrameError:
		f.Addr = d.str()
	default:
		return nil, fmt.Errorf("%w: unknown type %d", ErrBadFrame, f.Type)
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadFrame, len(d.b)-d.off)
	}
	return f, nil
}

// WriteFrame encodes f and writes the framed bytes to w in one Write call
// (one frame = one write keeps frames intact across most transports, though
// the reader never relies on it).
func WriteFrame(w io.Writer, f *Frame) (int, error) {
	buf, err := Append(nil, f)
	if err != nil {
		return 0, err
	}
	return w.Write(buf)
}

// ReadFrame reads exactly one frame from r, tolerating arbitrarily
// fragmented reads (partial writes on the other side). io.EOF is returned
// untouched at a clean frame boundary; mid-frame EOF becomes
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) (*Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	length := binary.LittleEndian.Uint32(hdr[:])
	if length > MaxFrameBytes {
		return nil, fmt.Errorf("%w: length prefix %d", ErrFrameTooLarge, length)
	}
	if length == 0 {
		return nil, fmt.Errorf("%w: empty payload", ErrBadFrame)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(hdr[4:]) {
		return nil, ErrBadChecksum
	}
	return decodePayload(payload)
}
