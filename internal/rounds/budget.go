package rounds

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrBudgetExceeded reports that a solver exhausted its round or wall-clock
// budget. Errors returned by Budget.Check unwrap to it; the concrete type is
// *BudgetError, which carries the partial statistics accumulated up to the
// point of exhaustion.
var ErrBudgetExceeded = errors.New("rounds: budget exceeded")

// Budget is a shared resource limit observed by every iterative phase of the
// solver stack: a maximum number of ledger rounds, a wall-clock deadline, or
// both. Solvers call Check at phase boundaries (a Chebyshev attempt, an IPM
// iteration, a contraction or scaling level); when the budget is exhausted
// Check returns a typed *BudgetError carrying the partial stats instead of
// letting the phase loop run unbounded.
//
// A nil *Budget is inert: Check returns nil, so callers thread the pointer
// unconditionally. The zero limits are also inert (MaxRounds == 0 means
// unlimited rounds, MaxWall == 0 means no deadline).
//
// Round usage is measured against a Ledger as the delta since Bind, so one
// budget naturally spans a pipeline of solver calls recording into one
// ledger. A Budget is not safe for concurrent use from multiple goroutines;
// the solver stack checks it only from the goroutine driving the phase loop.
type Budget struct {
	// MaxRounds caps the total (measured + charged) rounds recorded in the
	// bound ledger since Bind. Zero means unlimited.
	MaxRounds int64
	// MaxWall is the wall-clock deadline since Bind (or since the first
	// Check when never bound). Zero means no deadline.
	MaxWall time.Duration

	ledger *Ledger
	snap   Snapshot
	bound  bool
}

// NewBudget returns a budget with the given limits (either may be zero).
func NewBudget(maxRounds int64, maxWall time.Duration) *Budget {
	return &Budget{MaxRounds: maxRounds, MaxWall: maxWall}
}

// Bind anchors the budget's baseline to the ledger's current totals and
// starts the wall clock. Rebinding resets both. A nil receiver or ledger is
// allowed; with no ledger the budget meters wall clock only.
func (b *Budget) Bind(l *Ledger) *Budget {
	if b == nil {
		return nil
	}
	b.ledger = l
	b.snap = Snap(l)
	b.bound = true
	return b
}

// BindIfUnbound binds the budget to l only when no Bind has happened yet.
// Solver packages call it with their own ledger so a fresh budget (e.g. a
// parsed -budget flag) meters the ledger it rides with, while a budget the
// caller already bound — to span a whole pipeline — keeps its baseline.
func (b *Budget) BindIfUnbound(l *Ledger) {
	if b != nil && !b.bound {
		b.Bind(l)
	}
}

// ensure lazily starts the clock for budgets used without an explicit Bind.
func (b *Budget) ensure() {
	if !b.bound {
		b.snap = Snap(b.ledger)
		b.bound = true
	}
}

// Used returns the rounds consumed since Bind (zero without a ledger).
func (b *Budget) Used() int64 {
	if b == nil || b.ledger == nil {
		return 0
	}
	b.ensure()
	s := b.snap.Stats()
	return s.MeasuredRounds + s.ChargedRounds
}

// Elapsed returns the wall-clock time consumed since Bind.
func (b *Budget) Elapsed() time.Duration {
	if b == nil {
		return 0
	}
	b.ensure()
	return b.snap.Stats().WallTime
}

// Remaining returns the rounds left before MaxRounds, or -1 when rounds are
// unlimited.
func (b *Budget) Remaining() int64 {
	if b == nil || b.MaxRounds == 0 {
		return -1
	}
	r := b.MaxRounds - b.Used()
	if r < 0 {
		r = 0
	}
	return r
}

// Check returns nil while the budget holds and a *BudgetError (unwrapping to
// ErrBudgetExceeded) once it is exhausted. phase names the phase boundary
// performing the check and is carried in the error for attribution. Nil
// receivers always pass.
func (b *Budget) Check(phase string) error {
	if b == nil || (b.MaxRounds == 0 && b.MaxWall == 0) {
		return nil
	}
	b.ensure()
	partial := b.snap.Stats()
	used := partial.MeasuredRounds + partial.ChargedRounds
	if b.MaxRounds > 0 && b.ledger != nil && used >= b.MaxRounds {
		return &BudgetError{Phase: phase, Used: used, Limit: b.MaxRounds,
			Elapsed: partial.WallTime, WallLimit: b.MaxWall, Partial: partial}
	}
	if b.MaxWall > 0 && partial.WallTime >= b.MaxWall {
		return &BudgetError{Phase: phase, Used: used, Limit: b.MaxRounds,
			Elapsed: partial.WallTime, WallLimit: b.MaxWall, Partial: partial}
	}
	return nil
}

// BudgetError is the typed error returned when a Budget is exhausted. It
// unwraps to ErrBudgetExceeded and carries the partial round statistics
// accumulated between Bind and exhaustion, so callers can report how far the
// computation got.
type BudgetError struct {
	// Phase is the phase boundary at which exhaustion was detected.
	Phase string
	// Used and Limit are the consumed and allowed rounds (Limit 0 when the
	// wall clock, not the rounds, ran out).
	Used  int64
	Limit int64
	// Elapsed and WallLimit are the wall-clock counterparts.
	Elapsed   time.Duration
	WallLimit time.Duration
	// Partial is the full Stats delta since Bind — the work completed
	// before the budget ran out.
	Partial Stats
}

// Error renders the exhaustion cause and location.
func (e *BudgetError) Error() string {
	if e.Limit > 0 && e.Used >= e.Limit {
		return fmt.Sprintf("rounds: budget exceeded at %s: %d/%d rounds used (%.2fs elapsed)",
			e.Phase, e.Used, e.Limit, e.Elapsed.Seconds())
	}
	return fmt.Sprintf("rounds: budget exceeded at %s: %.2fs elapsed of %.2fs wall limit (%d rounds used)",
		e.Phase, e.Elapsed.Seconds(), e.WallLimit.Seconds(), e.Used)
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// ParseBudget parses the -budget flag syntax: "rounds=N,wall=DUR" with
// either part optional, or the shorthand of a bare integer meaning a round
// limit ("-budget 5000"). An empty string returns a nil (inert) budget.
func ParseBudget(s string) (*Budget, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	b := &Budget{}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return nil, fmt.Errorf("rounds: negative budget %q", s)
		}
		b.MaxRounds = n
		return b, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("rounds: bad budget field %q", field)
		}
		switch key {
		case "rounds":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("rounds: bad budget rounds %q", val)
			}
			b.MaxRounds = n
		case "wall":
			d, err := time.ParseDuration(val)
			if err != nil || d < 0 {
				return nil, fmt.Errorf("rounds: bad budget wall %q", val)
			}
			b.MaxWall = d
		default:
			return nil, fmt.Errorf("rounds: bad budget field %q", field)
		}
	}
	return b, nil
}
