package transport

import (
	"fmt"
	"sync"

	"lapcc/internal/cc"
)

// chunkMsgs bounds the messages per FrameData chunk so one frame stays well
// under MaxFrameBytes at any legal message width and large rounds exercise
// the multi-chunk path.
const chunkMsgs = 1024

// Mem is the in-process wire backend: every Deliver encodes the round's
// messages into FrameData chunks, decodes them back, and assembles the
// inboxes from the decoded copies. No sockets are involved, so the codec —
// the part of the TCP backend that handles real data — runs under the race
// detector and the fuzzers at full speed. Delivered payloads are freshly
// allocated by the decoder and never recycled.
//
// Mem is safe for concurrent Deliver calls (they serialize on an internal
// lock, matching the TCP coordinator's barrier semantics).
type Mem struct {
	mu  sync.Mutex
	buf []byte // recycled encode buffer

	stats cc.DeliveryStats // cumulative, for tests and metrics
}

// NewMem returns a Mem backend ready for delivery.
func NewMem() *Mem { return &Mem{} }

// Deliver implements cc.Transport by round-tripping every message through
// the frame codec.
func (m *Mem) Deliver(round, n int, out []cc.Outbox) ([][]cc.Message, cc.DeliveryStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()

	// Count per-destination totals up front for exact inbox sizing, and
	// validate recipients before anything is encoded.
	dc := make([]int, n)
	total := 0
	for _, ob := range out {
		for _, om := range ob.Msgs {
			if om.To < 0 || int(om.To) >= n {
				return nil, cc.DeliveryStats{}, fmt.Errorf("transport: recipient %d out of range (n=%d)", om.To, n)
			}
			dc[om.To]++
			total++
		}
	}

	// Encode in outbox order (= ascending source order per the transport
	// contract) as chunked data frames.
	buf := m.buf[:0]
	var frames int64
	chunk := make([]Msg, 0, chunkMsgs)
	var seq uint32
	flush := func() error {
		if len(chunk) == 0 {
			return nil
		}
		var err error
		buf, err = Append(buf, &Frame{
			Type: FrameData, Round: uint64(round), Seq: seq, Total: 0, Msgs: chunk,
		})
		if err != nil {
			return err
		}
		frames++
		seq++
		chunk = chunk[:0]
		return nil
	}
	for _, ob := range out {
		for _, om := range ob.Msgs {
			chunk = append(chunk, Msg{From: om.From, To: om.To, Data: ob.Data(om)})
			if len(chunk) == chunkMsgs {
				if err := flush(); err != nil {
					return nil, cc.DeliveryStats{}, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return nil, cc.DeliveryStats{}, err
	}
	m.buf = buf

	// Decode the byte stream back and assemble the inboxes. Chunks decode
	// in encode order, so per destination the messages arrive in ascending
	// source order — the same order the in-process merge produces.
	inboxes := make([][]cc.Message, n)
	for d := 0; d < n; d++ {
		if dc[d] > 0 {
			inboxes[d] = make([]cc.Message, 0, dc[d])
		}
	}
	decoded := 0
	for off := 0; off < len(buf); {
		f, consumed, err := Decode(buf[off:])
		if err != nil {
			return nil, cc.DeliveryStats{}, fmt.Errorf("transport: decoding round %d at byte %d: %w", round, off, err)
		}
		off += consumed
		if f.Type != FrameData || f.Round != uint64(round) {
			return nil, cc.DeliveryStats{}, fmt.Errorf("transport: unexpected frame type %d in round %d", f.Type, round)
		}
		for _, wm := range f.Msgs {
			if wm.To < 0 || int(wm.To) >= n {
				return nil, cc.DeliveryStats{}, fmt.Errorf("transport: decoded recipient %d out of range", wm.To)
			}
			inboxes[wm.To] = append(inboxes[wm.To], cc.Message{From: int(wm.From), Data: wm.Data})
			decoded++
		}
	}
	if decoded != total {
		return nil, cc.DeliveryStats{}, fmt.Errorf("transport: %d messages encoded, %d decoded", total, decoded)
	}
	st := cc.DeliveryStats{Messages: int64(total), Frames: frames, FrameBytes: int64(len(buf))}
	m.stats.Messages += st.Messages
	m.stats.Frames += st.Frames
	m.stats.FrameBytes += st.FrameBytes
	return inboxes, st, nil
}

// Close implements cc.Transport; Mem holds no external resources.
func (m *Mem) Close() error { return nil }

// Stats returns the cumulative delivery counters across all rounds.
func (m *Mem) Stats() cc.DeliveryStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}
