package core

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
)

// counter reads a registered counter's value (0 if never touched).
func counter(reg *metrics.Registry, name string, labels ...string) int64 {
	return reg.Counter(name, "", labels...).Value()
}

// TestFacadeMetricsEndToEnd drives the facade entry points with one shared
// registry and checks that every stage reported into it: solver counters,
// stage counters, and the ledger mirror matching the facade's own report.
func TestFacadeMetricsEndToEnd(t *testing.T) {
	reg := metrics.NewRegistry()

	g, err := graph.RandomRegular(48, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1
	lres, err := SolveLaplacianWith(g, b, 1e-8, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "lapcc_lapsolver_solves_total"); got != 1 {
		t.Fatalf("lapsolver solves counter = %d, want 1", got)
	}
	if got := counter(reg, "lapcc_lapsolver_cheby_iterations_total"); got != int64(lres.Iterations) {
		t.Fatalf("cheby iterations counter = %d, want %d", got, lres.Iterations)
	}
	if got := counter(reg, "lapcc_sparsify_builds_total"); got == 0 {
		t.Fatal("sparsify build not recorded")
	}
	measured := counter(reg, "lapcc_ledger_rounds_total", "kind", "measured")
	charged := counter(reg, "lapcc_ledger_rounds_total", "kind", "charged")
	if measured != lres.Rounds.Measured || charged != lres.Rounds.Charged {
		t.Fatalf("ledger mirror (%d measured, %d charged) disagrees with report %+v",
			measured, charged, lres.Rounds)
	}

	eg, err := graph.RandomEulerian(32, 6, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	eres, err := EulerianOrientWith(eg, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "lapcc_euler_orientations_total"); got != 1 {
		t.Fatalf("euler orientations counter = %d, want 1", got)
	}
	if got := counter(reg, "lapcc_euler_iterations_total"); got != int64(eres.Iterations) {
		t.Fatalf("euler iterations counter = %d, want %d", got, eres.Iterations)
	}

	dg := graph.LayeredDAG(3, 3, 2, 4, 9)
	mres, err := MaxFlowWith(dg, 0, dg.N()-1, RunOptions{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	if got := counter(reg, "lapcc_maxflow_runs_total"); got != 1 {
		t.Fatalf("maxflow runs counter = %d, want 1", got)
	}
	if got := counter(reg, "lapcc_maxflow_ipm_iterations_total"); got != int64(mres.IPMIterations) {
		t.Fatalf("maxflow IPM iterations counter = %d, want %d", got, mres.IPMIterations)
	}
	if mres.IPMIterations > 0 && counter(reg, "lapcc_electrical_solves_total") == 0 {
		t.Fatal("electrical session solves not recorded")
	}

	// Ledger mirrors stay per-run: the three runs used distinct ledgers, and
	// the shared registry must have accumulated all of them.
	wantMeasured := lres.Rounds.Measured + eres.Rounds.Measured + mres.Rounds.Measured
	if got := counter(reg, "lapcc_ledger_rounds_total", "kind", "measured"); got != wantMeasured {
		t.Fatalf("accumulated measured mirror = %d, want %d", got, wantMeasured)
	}
}
