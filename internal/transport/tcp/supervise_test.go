package tcp

import (
	"io"
	"reflect"
	"testing"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/transport"
)

// TestSuperviseKillRecovery: chaos-scheduled worker kills under supervision
// are invisible to the engine — the killed barrier replays on a respawned
// mesh and the run's outcome, transcripts, and final checkpoint digests are
// bit-identical to an undisturbed supervised run.
func TestSuperviseKillRecovery(t *testing.T) {
	const n, seed = 12, 4
	clean, err := New(Options{Procs: 4, Supervise: true, HeartbeatInterval: -1, Stderr: io.Discard})
	if err != nil {
		t.Fatal(err)
	}
	defer clean.Close()
	base, baseTr := runEngine(t, n, seed, clean, nil)
	ckClean := clean.Checkpoint()

	chaotic, err := New(Options{
		Procs: 4, Supervise: true, HeartbeatInterval: -1, Stderr: io.Discard,
		BarrierTimeout: 10 * time.Second,
		Chaos: &transport.ChaosPlan{Seed: 1, Kills: []transport.Kill{
			{Barrier: 1, Proc: 1},
			{Barrier: 3, Proc: 2},
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer chaotic.Close()
	got, gotTr := runEngine(t, n, seed, chaotic, nil)

	if got != base {
		t.Fatalf("killed outcome %+v != clean %+v", got, base)
	}
	diffTranscripts(t, "killed", baseTr, gotTr)

	rec := chaotic.Recovery()
	if rec.Kills == 0 || rec.Restarts == 0 || rec.Respawns == 0 || rec.ReplayedBarriers == 0 {
		t.Fatalf("kills were scheduled but recovery shows %+v", rec)
	}
	if chaotic.Epoch() == 0 {
		t.Fatal("mesh epoch never advanced across a restart")
	}

	ck := chaotic.Checkpoint()
	if ck.Barriers != ckClean.Barriers || ck.InDigest != ckClean.InDigest ||
		!reflect.DeepEqual(ck.ShardDigests, ckClean.ShardDigests) {
		t.Fatalf("final checkpoint diverges after recovery:\nclean %+v\nkilled %+v", ckClean, ck)
	}
	if ck.Epoch == 0 {
		t.Fatal("recovered checkpoint still claims epoch 0")
	}
}

// TestSuperviseResetRecovery: socket-level connection resets inside the
// mesh collapse the worker set; the supervisor respawns it (resets are
// bounded to epoch 0, so the run converges) and the engine sees nothing.
func TestSuperviseResetRecovery(t *testing.T) {
	tr, err := New(Options{
		Procs: 4, Supervise: true, HeartbeatInterval: -1, Stderr: io.Discard,
		BarrierTimeout: 10 * time.Second,
		Chaos:          &transport.ChaosPlan{Seed: 11, Reset: 0.05, Partial: 0.1},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	for seed := int64(1); seed <= 3; seed++ {
		n := []int{7, 12, 17}[seed-1]
		base, baseTr := runEngine(t, n, seed, nil, nil)
		got, gotTr := runEngine(t, n, seed, tr, nil)
		if got != base {
			t.Fatalf("n=%d seed=%d: reset-chaos outcome %+v != local %+v", n, seed, got, base)
		}
		diffTranscripts(t, "reset", baseTr, gotTr)
	}
	if rec := tr.Recovery(); rec.Restarts == 0 {
		t.Fatalf("reset rate 0.05 never collapsed the mesh: %+v", rec)
	}
}

// TestSuperviseHeartbeat: a worker dying *between* barriers is detected by
// the ping/pong probe, the mesh is respawned eagerly, and the next engine
// run proceeds as if nothing happened.
func TestSuperviseHeartbeat(t *testing.T) {
	tr, err := New(Options{
		Procs: 3, Supervise: true,
		HeartbeatInterval: 25 * time.Millisecond,
		BarrierTimeout:    10 * time.Second,
		Stderr:            io.Discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()

	// Sever one worker's coordinator link between barriers — for an
	// in-process worker that is exactly what a death looks like.
	tr.mu.Lock()
	tr.conns[1].Close()
	tr.mu.Unlock()

	deadline := time.Now().Add(15 * time.Second)
	for {
		rec := tr.Recovery()
		if rec.HeartbeatFailures >= 1 && rec.Restarts >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("heartbeat never detected the dead worker: %+v", rec)
		}
		time.Sleep(5 * time.Millisecond)
	}

	base, baseTr := runEngine(t, 8, 5, nil, nil)
	got, gotTr := runEngine(t, 8, 5, tr, nil)
	if got != base {
		t.Fatalf("post-recovery outcome %+v != local %+v", got, base)
	}
	diffTranscripts(t, "heartbeat", baseTr, gotTr)
	if tr.Epoch() == 0 {
		t.Fatal("mesh epoch never advanced")
	}
}

// TestUnsupervisedKillFails pins the pre-supervision contract: without
// Options.Supervise a dead worker is a run-failing transport error, not a
// silent retry.
func TestUnsupervisedKillFails(t *testing.T) {
	tr, err := New(Options{
		Procs: 2, Stderr: io.Discard,
		Chaos: &transport.ChaosPlan{Seed: 3, Kills: []transport.Kill{{Barrier: 0, Proc: 0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	e := cc.NewEngine(6)
	e.SetTransport(tr)
	step, _ := program(6, 2)
	if _, err := e.Run(step, 64); err == nil {
		t.Fatal("unsupervised run survived a worker kill")
	}
}

// TestSuperviseOptionDefaults: the robustness knobs default sanely and only
// activate the supervised ones under Supervise.
func TestSuperviseOptionDefaults(t *testing.T) {
	var o Options
	o.defaults()
	if o.DialTimeout != 10*time.Second || o.AcceptTimeout != 30*time.Second {
		t.Fatalf("timeout defaults: %+v", o)
	}
	if o.MaxRestarts != 3 {
		t.Fatalf("MaxRestarts default: %d", o.MaxRestarts)
	}
	if o.BarrierTimeout != 0 || o.HeartbeatInterval != 0 {
		t.Fatalf("unsupervised transport grew supervision deadlines: %+v", o)
	}
	s := Options{Supervise: true}
	s.defaults()
	if s.BarrierTimeout != 60*time.Second || s.HeartbeatInterval != time.Second {
		t.Fatalf("supervised defaults: %+v", s)
	}
	d := Options{Supervise: true, HeartbeatInterval: -1}
	d.defaults()
	if d.HeartbeatInterval != -1 {
		t.Fatalf("negative heartbeat interval was overridden: %v", d.HeartbeatInterval)
	}
	if _, err := New(Options{Procs: 2, Chaos: &transport.ChaosPlan{Reset: 7}}); err == nil {
		t.Fatal("New accepted an invalid chaos plan")
	}
	if _, err := New(Options{Procs: 2, Chaos: &transport.ChaosPlan{Kills: []transport.Kill{{Barrier: 0, Proc: 5}}}}); err == nil {
		t.Fatal("New accepted a kill targeting a worker outside the process set")
	}
}

// TestOpenSupervised: the -transport spec's robustness keys and the
// chaos-plan attachment point.
func TestOpenSupervised(t *testing.T) {
	tr, err := Open("tcp,procs=2,supervise=1,ack=50ms,retries=4,barrier=2s")
	if err != nil {
		t.Fatal(err)
	}
	tt := tr.(*Transport)
	if !tt.opts.Supervise || tt.opts.AckTimeout != 50*time.Millisecond ||
		tt.opts.MaxRetries != 4 || tt.opts.BarrierTimeout != 2*time.Second {
		t.Fatalf("spec options not applied: %+v", tt.opts)
	}
	tr.Close()

	plan := &transport.ChaosPlan{Seed: 9, Kills: []transport.Kill{{Barrier: 0, Proc: 1}}}
	tr, err = OpenWith("tcp,procs=2", plan)
	if err != nil {
		t.Fatal(err)
	}
	if tt := tr.(*Transport); !tt.opts.Supervise {
		t.Fatal("a chaos plan did not imply supervision")
	}
	tr.Close()

	for _, bad := range []string{"tcp,ack=fast", "tcp,supervise=maybe", "tcp,retries=many", "tcp,barrier=later"} {
		if _, err := Open(bad); err == nil {
			t.Fatalf("Open(%q) accepted", bad)
		}
	}
	if _, err := OpenWith("mem", plan); err == nil {
		t.Fatal("OpenWith attached a chaos plan to the mem backend")
	}
	if _, err := OpenWith("local", plan); err == nil {
		t.Fatal("OpenWith attached a chaos plan to the local backend")
	}
}
