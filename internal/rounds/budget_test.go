package rounds

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestBudgetNilIsInert(t *testing.T) {
	var b *Budget
	if err := b.Check("phase"); err != nil {
		t.Fatalf("nil budget: %v", err)
	}
	if b.Bind(New()) != nil {
		t.Fatal("nil budget must bind to nil")
	}
	if b.Used() != 0 || b.Elapsed() != 0 || b.Remaining() != -1 {
		t.Fatal("nil budget accessors must be zero/unlimited")
	}
}

func TestBudgetZeroLimitsAreInert(t *testing.T) {
	l := New()
	b := NewBudget(0, 0).Bind(l)
	l.Add("x", Measured, 1_000_000, "")
	if err := b.Check("phase"); err != nil {
		t.Fatalf("zero-limit budget tripped: %v", err)
	}
}

func TestBudgetRoundsExhaustion(t *testing.T) {
	l := New()
	b := NewBudget(10, 0).Bind(l)
	l.Add("cheby-iter", Measured, 4, "")
	if err := b.Check("attempt-0"); err != nil {
		t.Fatalf("under budget: %v", err)
	}
	if got := b.Remaining(); got != 6 {
		t.Fatalf("Remaining = %d, want 6", got)
	}
	l.Add("cheby-iter", Measured, 4, "")
	l.Add("gather", Charged, 4, "cite")
	err := b.Check("attempt-1")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	if be.Phase != "attempt-1" || be.Used != 12 || be.Limit != 10 {
		t.Fatalf("error fields: %+v", be)
	}
	// Partial stats carry the work done before exhaustion.
	if be.Partial.MeasuredRounds != 8 || be.Partial.ChargedRounds != 4 {
		t.Fatalf("partial stats: %+v", be.Partial)
	}
	if b.Remaining() != 0 {
		t.Fatalf("Remaining after exhaustion = %d, want 0", b.Remaining())
	}
}

func TestBudgetBindDelta(t *testing.T) {
	// A budget bound after earlier work only meters the delta.
	l := New()
	l.Add("warmup", Measured, 100, "")
	b := NewBudget(10, 0).Bind(l)
	l.Add("work", Measured, 5, "")
	if err := b.Check("phase"); err != nil {
		t.Fatalf("budget counted pre-bind rounds: %v", err)
	}
	if b.Used() != 5 {
		t.Fatalf("Used = %d, want 5", b.Used())
	}
}

func TestBudgetWallDeadline(t *testing.T) {
	b := NewBudget(0, time.Nanosecond).Bind(nil)
	time.Sleep(time.Millisecond)
	err := b.Check("slow-phase")
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.WallLimit != time.Nanosecond {
		t.Fatalf("wall fields: %v", err)
	}
}

func TestBudgetErrorMessages(t *testing.T) {
	roundErr := &BudgetError{Phase: "ipm-iter-3", Used: 12, Limit: 10}
	if msg := roundErr.Error(); !strings.Contains(msg, "ipm-iter-3") || !strings.Contains(msg, "12/10") {
		t.Fatalf("round message: %q", msg)
	}
	wallErr := &BudgetError{Phase: "level-2", WallLimit: time.Second, Elapsed: 2 * time.Second}
	if msg := wallErr.Error(); !strings.Contains(msg, "level-2") || !strings.Contains(msg, "wall") {
		t.Fatalf("wall message: %q", msg)
	}
}

func TestParseBudget(t *testing.T) {
	cases := []struct {
		in     string
		rounds int64
		wall   time.Duration
		nilOK  bool
		err    bool
	}{
		{in: "", nilOK: true},
		{in: "  ", nilOK: true},
		{in: "5000", rounds: 5000},
		{in: "rounds=123", rounds: 123},
		{in: "wall=2s", wall: 2 * time.Second},
		{in: "rounds=10,wall=500ms", rounds: 10, wall: 500 * time.Millisecond},
		{in: " rounds=7 , wall=1m ", rounds: 7, wall: time.Minute},
		{in: "-3", err: true},
		{in: "rounds=x", err: true},
		{in: "wall=banana", err: true},
		{in: "cycles=9", err: true},
		{in: "rounds", err: true},
	}
	for _, c := range cases {
		b, err := ParseBudget(c.in)
		if c.err {
			if err == nil {
				t.Fatalf("ParseBudget(%q): want error, got %+v", c.in, b)
			}
			continue
		}
		if err != nil {
			t.Fatalf("ParseBudget(%q): %v", c.in, err)
		}
		if c.nilOK {
			if b != nil {
				t.Fatalf("ParseBudget(%q) = %+v, want nil", c.in, b)
			}
			continue
		}
		if b.MaxRounds != c.rounds || b.MaxWall != c.wall {
			t.Fatalf("ParseBudget(%q) = {%d %v}, want {%d %v}",
				c.in, b.MaxRounds, b.MaxWall, c.rounds, c.wall)
		}
	}
}
