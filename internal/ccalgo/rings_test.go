package ccalgo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/rounds"
)

// buildRings constructs a Rings structure from explicit cycles given as slot
// sequences; owners are assigned round-robin over cliqueN nodes unless an
// explicit owner list is given.
func buildRings(cliqueN int, cycles [][]int) *Rings {
	total := 0
	for _, c := range cycles {
		total += len(c)
	}
	r := &Rings{
		CliqueN: cliqueN,
		Owner:   make([]int, total),
		Succ:    make([]int, total),
		Pred:    make([]int, total),
		Alive:   make([]bool, total),
	}
	for i := 0; i < total; i++ {
		r.Owner[i] = i % cliqueN
		r.Alive[i] = true
	}
	for _, c := range cycles {
		for j, s := range c {
			r.Succ[s] = c[(j+1)%len(c)]
			r.Pred[s] = c[(j-1+len(c))%len(c)]
		}
	}
	return r
}

func seqCycle(start, length int) []int {
	c := make([]int, length)
	for i := range c {
		c[i] = start + i
	}
	return c
}

func assertProperColoring(t *testing.T, r *Rings, colors []int) {
	t.Helper()
	for i := range r.Owner {
		if !r.Alive[i] || r.Succ[i] == i {
			continue
		}
		if colors[i] < 0 || colors[i] > 2 {
			t.Fatalf("slot %d has color %d outside {0,1,2}", i, colors[i])
		}
		if colors[i] == colors[r.Succ[i]] {
			t.Fatalf("slots %d and %d adjacent with same color %d", i, r.Succ[i], colors[i])
		}
	}
}

func TestThreeColorSingleCycle(t *testing.T) {
	for _, length := range []int{2, 3, 4, 5, 7, 16, 101} {
		r := buildRings(8, [][]int{seqCycle(0, length)})
		led := rounds.New()
		colors, err := r.ThreeColor(led)
		if err != nil {
			t.Fatalf("length %d: %v", length, err)
		}
		assertProperColoring(t, r, colors)
		if led.Total() == 0 {
			t.Fatalf("length %d: coloring consumed no rounds", length)
		}
	}
}

func TestThreeColorManyCyclesSimultaneously(t *testing.T) {
	cycles := [][]int{seqCycle(0, 5), seqCycle(5, 2), seqCycle(7, 9), seqCycle(16, 3)}
	r := buildRings(6, cycles)
	colors, err := r.ThreeColor(rounds.New())
	if err != nil {
		t.Fatal(err)
	}
	assertProperColoring(t, r, colors)
}

func TestThreeColorSkipsSelfRings(t *testing.T) {
	r := buildRings(4, [][]int{{0}, seqCycle(1, 4)})
	colors, err := r.ThreeColor(rounds.New())
	if err != nil {
		t.Fatal(err)
	}
	assertProperColoring(t, r, colors)
	if colors[0] != 0 {
		t.Fatalf("self-ring color = %d, want 0", colors[0])
	}
}

func TestThreeColorRoundsScaleLikeLogStar(t *testing.T) {
	// The number of measured rounds should be essentially flat in the cycle
	// length (log* growth), not linear.
	// Clique size is chosen so each node owns at most n slots (as in the
	// Eulerian-orientation application, where a node owns deg/2 < n slots);
	// otherwise batched routing legitimately adds rounds.
	roundsAt := func(length int) int64 {
		r := buildRings(80, [][]int{seqCycle(0, length)})
		led := rounds.New()
		if _, err := r.ThreeColor(led); err != nil {
			t.Fatal(err)
		}
		return led.Total()
	}
	small := roundsAt(8)
	big := roundsAt(4096)
	if big > 3*small {
		t.Fatalf("coloring rounds grew from %d (len 8) to %d (len 4096); expected log* growth", small, big)
	}
}

func TestMaximalMatchingProperties(t *testing.T) {
	for _, length := range []int{2, 3, 4, 5, 8, 33, 100} {
		r := buildRings(8, [][]int{seqCycle(0, length)})
		matchSucc, err := r.MaximalMatching(rounds.New())
		if err != nil {
			t.Fatalf("length %d: %v", length, err)
		}
		checkMatching(t, r, matchSucc, length)
	}
}

func checkMatching(t *testing.T, r *Rings, matchSucc []bool, length int) {
	t.Helper()
	matched := make([]bool, len(matchSucc))
	count := 0
	for i, m := range matchSucc {
		if !m {
			continue
		}
		count++
		if matched[i] || matched[r.Succ[i]] {
			t.Fatalf("slot %d or %d matched twice", i, r.Succ[i])
		}
		matched[i] = true
		matched[r.Succ[i]] = true
	}
	if count == 0 && length >= 2 {
		t.Fatalf("no matched pair on cycle of length %d", length)
	}
	// Maximality: no ring edge with both endpoints unmatched.
	for i := range matchSucc {
		if !r.Alive[i] || r.Succ[i] == i {
			continue
		}
		if !matched[i] && !matched[r.Succ[i]] {
			t.Fatalf("edge (%d,%d) has both endpoints unmatched", i, r.Succ[i])
		}
	}
}

func TestMaximalMatchingMarkedRunsShort(t *testing.T) {
	// Marking the higher-id endpoint of each matched pair must leave at most
	// 3 consecutive unmarked slots (the paper's step 2a invariant).
	length := 200
	r := buildRings(10, [][]int{seqCycle(0, length)})
	matchSucc, err := r.MaximalMatching(rounds.New())
	if err != nil {
		t.Fatal(err)
	}
	marked := make([]bool, length)
	for i, m := range matchSucc {
		if m {
			hi := i
			if r.Succ[i] > hi {
				hi = r.Succ[i]
			}
			marked[hi] = true
		}
	}
	run := 0
	// Traverse twice around to capture wraparound runs.
	cur := 0
	for step := 0; step < 2*length; step++ {
		if marked[cur] {
			run = 0
		} else {
			run++
			if run > 3 {
				t.Fatalf("found %d consecutive unmarked slots", run)
			}
		}
		cur = r.Succ[cur]
	}
}

func TestValidateCatchesBadStructure(t *testing.T) {
	r := buildRings(4, [][]int{seqCycle(0, 4)})
	r.Pred[1] = 3 // break inversion
	if err := r.Validate(); err == nil {
		t.Fatal("broken Pred should fail validation")
	}
	r2 := buildRings(4, [][]int{seqCycle(0, 3)})
	r2.Owner[0] = 9
	if err := r2.Validate(); err == nil {
		t.Fatal("bad owner should fail validation")
	}
	r3 := &Rings{CliqueN: 2, Owner: []int{0}, Succ: []int{0}, Pred: []int{0}, Alive: nil}
	if err := r3.Validate(); err == nil {
		t.Fatal("length mismatch should fail validation")
	}
}

// Property: random multi-cycle instances always produce proper colorings
// and valid maximal matchings.
func TestRingsRandomProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var cycles [][]int
		next := 0
		for c := 0; c < 1+rng.Intn(4); c++ {
			l := 2 + rng.Intn(20)
			cycles = append(cycles, seqCycle(next, l))
			next += l
		}
		r := buildRings(3+rng.Intn(10), cycles)
		colors, err := r.ThreeColor(rounds.New())
		if err != nil {
			return false
		}
		for i := range r.Owner {
			if r.Succ[i] != i && colors[i] == colors[r.Succ[i]] {
				return false
			}
		}
		matchSucc, err := r.MaximalMatching(rounds.New())
		if err != nil {
			return false
		}
		matched := make([]bool, len(matchSucc))
		for i, m := range matchSucc {
			if m {
				if matched[i] || matched[r.Succ[i]] {
					return false
				}
				matched[i] = true
				matched[r.Succ[i]] = true
			}
		}
		for i := range matchSucc {
			if r.Succ[i] != i && !matched[i] && !matched[r.Succ[i]] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
