package graph

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewEmpty(t *testing.T) {
	g := New(5)
	if g.N() != 5 {
		t.Fatalf("N() = %d, want 5", g.N())
	}
	if g.M() != 0 {
		t.Fatalf("M() = %d, want 0", g.M())
	}
	if !g.IsEulerian() {
		t.Fatal("empty graph should be Eulerian (all degrees 0)")
	}
}

func TestAddEdgeNormalizesEndpoints(t *testing.T) {
	g := New(3)
	id, err := g.AddEdge(2, 1, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	e := g.Edge(id)
	if e.U != 1 || e.V != 2 {
		t.Fatalf("edge stored as (%d,%d), want normalized (1,2)", e.U, e.V)
	}
	if e.W != 1.5 {
		t.Fatalf("weight %v, want 1.5", e.W)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	cases := []struct {
		name    string
		u, v    int
		w       float64
		wantErr error
	}{
		{"out of range low", -1, 0, 1, ErrVertexRange},
		{"out of range high", 0, 3, 1, ErrVertexRange},
		{"self loop", 1, 1, 1, ErrSelfLoop},
		{"zero weight", 0, 1, 0, ErrBadWeight},
		{"negative weight", 0, 1, -2, ErrBadWeight},
		{"nan weight", 0, 1, nan(), ErrBadWeight},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := g.AddEdge(c.u, c.v, c.w); !errors.Is(err, c.wantErr) {
				t.Fatalf("AddEdge(%d,%d,%v) error = %v, want %v", c.u, c.v, c.w, err, c.wantErr)
			}
		})
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}

func TestDegreesAndWeights(t *testing.T) {
	g := New(4)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(0, 2, 3)
	g.MustAddEdge(0, 1, 5) // parallel edge
	if got := g.Degree(0); got != 3 {
		t.Fatalf("Degree(0) = %d, want 3", got)
	}
	if got := g.WeightedDegree(0); got != 10 {
		t.Fatalf("WeightedDegree(0) = %v, want 10", got)
	}
	if got := g.WeightedDegree(3); got != 0 {
		t.Fatalf("WeightedDegree(3) = %v, want 0", got)
	}
	if got := g.TotalWeight(); got != 10 {
		t.Fatalf("TotalWeight() = %v, want 10", got)
	}
	if got := g.MaxWeight(); got != 5 {
		t.Fatalf("MaxWeight() = %v, want 5", got)
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := New(3)
	g.MustAddEdge(0, 1, 1)
	c := g.Clone()
	c.MustAddEdge(1, 2, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Fatalf("clone not independent: g.M()=%d c.M()=%d", g.M(), c.M())
	}
}

func TestSubgraph(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(2, 3, 3)
	g.MustAddEdge(3, 4, 4)
	s, orig, err := g.Subgraph([]int{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N() != 3 || s.M() != 2 {
		t.Fatalf("subgraph has n=%d m=%d, want 3, 2", s.N(), s.M())
	}
	if orig[0] != 1 || orig[1] != 2 || orig[2] != 3 {
		t.Fatalf("orig mapping = %v", orig)
	}
	if _, _, err := g.Subgraph([]int{1, 1}); err == nil {
		t.Fatal("duplicate vertex should error")
	}
	if _, _, err := g.Subgraph([]int{7}); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("out-of-range vertex error = %v", err)
	}
}

func TestComponents(t *testing.T) {
	g := New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 1)
	g.MustAddEdge(3, 4, 1)
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	want := [][]int{{0, 1}, {2, 3, 4}, {5}}
	for i := range want {
		if len(comps[i]) != len(want[i]) {
			t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
		}
		for j := range want[i] {
			if comps[i][j] != want[i][j] {
				t.Fatalf("component %d = %v, want %v", i, comps[i], want[i])
			}
		}
	}
	if g.IsConnected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestIsEulerian(t *testing.T) {
	c, err := Cycle(5)
	if err != nil {
		t.Fatal(err)
	}
	if !c.IsEulerian() {
		t.Fatal("cycle should be Eulerian")
	}
	p := Path(4)
	if p.IsEulerian() {
		t.Fatal("path should not be Eulerian")
	}
}

func TestVolume(t *testing.T) {
	g := Star(4)
	if got := g.Volume([]int{0}); got != 3 {
		t.Fatalf("Volume(center) = %d, want 3", got)
	}
	if got := g.Volume([]int{1, 2, 3}); got != 3 {
		t.Fatalf("Volume(leaves) = %d, want 3", got)
	}
}

// Property: adjacency structure is always consistent with the edge list.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		g := New(n)
		for i := 0; i < 30; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				g.MustAddEdge(u, v, 1+rng.Float64())
			}
		}
		// Sum of degrees must be 2m, and each half-edge must point back at a
		// real edge with the right endpoints.
		total := 0
		for v := 0; v < n; v++ {
			total += g.Degree(v)
			for _, h := range g.Adj(v) {
				e := g.Edge(h.Edge)
				if e.U != v && e.V != v {
					return false
				}
				other := e.U
				if other == v {
					other = e.V
				}
				if h.To != other {
					return false
				}
			}
		}
		return total == 2*g.M()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestMustAddEdgePanicsOnError pins the documented Must* split: the
// error-returning AddEdge is the library path for untrusted input, and the
// Must variant panics — it must never be reached for by code that can see
// malformed graphs.
func TestMustAddEdgePanicsOnError(t *testing.T) {
	g := New(3)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddEdge did not panic on a self-loop")
		}
	}()
	g.MustAddEdge(1, 1, 1)
}

// TestRewireEdge checks the endpoint-mutation primitive: the edge keeps its
// index and weight, both adjacency sides are rewritten, the generation
// counter moves, and invalid arguments leave the graph untouched.
func TestRewireEdge(t *testing.T) {
	g := New(5)
	g.MustAddEdge(0, 1, 1.5)
	g.MustAddEdge(1, 2, 2.5)
	g.MustAddEdge(2, 3, 3.5)
	gen := g.Gen()

	if err := g.RewireEdge(1, 4, 0); err != nil {
		t.Fatal(err)
	}
	if g.Gen() != gen+1 {
		t.Fatalf("gen = %d, want %d (rewire must bump the topology generation)", g.Gen(), gen+1)
	}
	e := g.Edge(1)
	if e.U != 0 || e.V != 4 || e.W != 2.5 {
		t.Fatalf("rewired edge = %+v, want {0 4 2.5} (normalized, weight kept)", e)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (rewire must not change the edge count)", g.M())
	}
	// Old endpoints no longer reference edge 1; new ones do, exactly once.
	count := func(v int) int {
		n := 0
		for _, h := range g.Adj(v) {
			if h.Edge == 1 {
				if other := g.Edge(1).U + g.Edge(1).V - v; h.To != other {
					t.Fatalf("adj[%d] half points at %d, want %d", v, h.To, other)
				}
				n++
			}
		}
		return n
	}
	for v, want := range map[int]int{0: 1, 4: 1, 1: 0, 2: 0} {
		if got := count(v); got != want {
			t.Fatalf("vertex %d references edge 1 %d times, want %d", v, got, want)
		}
	}

	// Degree bookkeeping survives: every half is consistent.
	if g.Degree(1) != 1 || g.Degree(0) != 2 || g.Degree(4) != 1 {
		t.Fatalf("degrees after rewire: %d %d %d", g.Degree(0), g.Degree(1), g.Degree(4))
	}

	for _, bad := range [][3]int{{-1, 0, 1}, {3, 0, 1}, {0, -1, 2}, {0, 0, 5}, {0, 2, 2}} {
		if err := g.RewireEdge(bad[0], bad[1], bad[2]); err == nil {
			t.Fatalf("RewireEdge(%v) accepted invalid arguments", bad)
		}
	}
	if g.Gen() != gen+1 {
		t.Fatal("failed rewires must not bump the generation")
	}

	// AddEdge also moves the generation; SetWeight must not.
	g.MustAddEdge(3, 4, 1)
	if g.Gen() != gen+2 {
		t.Fatalf("AddEdge gen = %d, want %d", g.Gen(), gen+2)
	}
	if err := g.SetWeight(0, 9); err != nil {
		t.Fatal(err)
	}
	if g.Gen() != gen+2 {
		t.Fatal("SetWeight must not bump the topology generation")
	}

	// Clone carries the generation, so caches keyed on Gen stay coherent
	// across clones.
	if c := g.Clone(); c.Gen() != g.Gen() {
		t.Fatalf("clone gen = %d, want %d", c.Gen(), g.Gen())
	}
}
