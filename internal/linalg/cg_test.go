package linalg

import (
	"errors"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
)

func meanFreeRandomVec(n int, seed int64) Vec {
	rng := rand.New(rand.NewSource(seed))
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	return b
}

func TestSolveCGLaplacianMatchesDense(t *testing.T) {
	g, err := graph.ConnectedGNM(15, 35, 6)
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.WithRandomWeights(g, 8, 7)
	l := NewLaplacian(wg)
	b := meanFreeRandomVec(15, 8)

	x, res, err := SolveCG(l, b, CGOptions{Tol: 1e-12, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Residual > 1e-12 {
		t.Fatalf("residual %v", res.Residual)
	}
	want, err := LaplacianPseudoSolve(l.Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	if d := x.Sub(want).Norm2(); d > 1e-8 {
		t.Fatalf("CG and dense pseudo-solve differ by %v", d)
	}
}

func TestSolveCGWithJacobiPreconditioner(t *testing.T) {
	g, err := graph.ConnectedGNM(30, 80, 9)
	if err != nil {
		t.Fatal(err)
	}
	wg := graph.WithRandomWeights(g, 1000, 10) // badly scaled weights
	l := NewLaplacian(wg)
	b := meanFreeRandomVec(30, 11)

	plain, resPlain, err := SolveCG(l, b, CGOptions{Tol: 1e-10, ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	pre, resPre, err := SolveCG(l, b, CGOptions{Tol: 1e-10, ProjectMean: true, Precond: l.Degrees()})
	if err != nil {
		t.Fatal(err)
	}
	if d := plain.Sub(pre).Norm2(); d > 1e-6*(1+plain.Norm2()) {
		t.Fatalf("preconditioned and plain solutions differ by %v", d)
	}
	t.Logf("iterations: plain=%d jacobi=%d", resPlain.Iterations, resPre.Iterations)
}

func TestSolveCGZeroRHS(t *testing.T) {
	l := NewLaplacian(graph.Path(5))
	x, res, err := SolveCG(l, NewVec(5), CGOptions{ProjectMean: true})
	if err != nil {
		t.Fatal(err)
	}
	if x.Norm2() != 0 || res.Iterations != 0 {
		t.Fatalf("zero rhs gave x=%v iters=%d", x, res.Iterations)
	}
}

func TestSolveCGDimensionError(t *testing.T) {
	l := NewLaplacian(graph.Path(5))
	if _, _, err := SolveCG(l, NewVec(4), CGOptions{}); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestSolveCGReportsNonConvergence(t *testing.T) {
	g, err := graph.ConnectedGNM(40, 80, 12)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaplacian(g)
	b := meanFreeRandomVec(40, 13)
	_, _, err = SolveCG(l, b, CGOptions{Tol: 1e-14, MaxIter: 2, ProjectMean: true})
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("error = %v, want ErrNoConvergence", err)
	}
}

func TestLaplacianCGSolverClosure(t *testing.T) {
	g, err := graph.ConnectedGNM(12, 24, 14)
	if err != nil {
		t.Fatal(err)
	}
	l := NewLaplacian(g)
	solve := LaplacianCGSolver(l, 1e-12)
	b := meanFreeRandomVec(12, 15)
	x, err := solve(b)
	if err != nil {
		t.Fatal(err)
	}
	lx := NewVec(12)
	l.Apply(lx, x)
	if r := lx.Sub(b).Norm2(); r > 1e-10 {
		t.Fatalf("residual %v", r)
	}
}
