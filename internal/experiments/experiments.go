// Package experiments contains the generators for every EXPERIMENTS.md
// table (E1-E16): each experiment reproduces one quantitative claim of the
// paper as a scaling measurement. The cmd/experiments CLI is a thin wrapper
// around this package; tests run the quick variants against a buffer.
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/euler"
	"lapcc/internal/flowround"
	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// Config carries the cross-cutting robustness and observability knobs of
// cmd/experiments: when set, every solver invocation of every experiment
// runs under the given fault plan, a fresh budget parsed from BudgetSpec,
// and/or reports into the given metrics registry. The zero value is the
// historical behavior (clean runs, no budget, no registry).
type Config struct {
	// Faults is applied to every solver invocation (experiments with their
	// own fault sweeps, like E13, keep their own plans).
	Faults *cc.FaultPlan
	// BudgetSpec is parsed into a fresh budget per solver invocation
	// (budgets are stateful: sharing one would charge all runs jointly).
	// See rounds.ParseBudget for the syntax.
	BudgetSpec string
	// Metrics, if non-nil, receives live counters from every solver run.
	Metrics *metrics.Registry
	// Workers sets the numerical core's worker count for every solver run
	// (0 = GOMAXPROCS, 1 = sequential). Results are bit-identical at any
	// setting, so the tables are reproducible regardless of the knob.
	Workers int
}

var config Config

// Configure sets the package-wide run configuration. A non-empty BudgetSpec
// is validated here so the CLI fails fast on a typo.
func Configure(c Config) error {
	if c.BudgetSpec != "" {
		if _, err := rounds.ParseBudget(c.BudgetSpec); err != nil {
			return err
		}
	}
	config = c
	return nil
}

// expFaults returns the configured fault plan (nil for clean runs).
func expFaults() *cc.FaultPlan { return config.Faults }

// expBudget returns a fresh budget per solver invocation, or nil.
func expBudget() *rounds.Budget {
	if config.BudgetSpec == "" {
		return nil
	}
	b, err := rounds.ParseBudget(config.BudgetSpec)
	if err != nil {
		return nil // validated in Configure; unreachable
	}
	return b
}

// expMetrics returns the configured metrics registry (nil records nothing).
func expMetrics() *metrics.Registry { return config.Metrics }

// expWorkers returns the configured numerical-core worker count.
func expWorkers() int { return config.Workers }

// Experiment is one reproducible table generator.
type Experiment struct {
	// ID is the experiment identifier (E1..E8).
	ID string
	// Title is the header line describing the claim.
	Title string
	// Run writes the experiment's tables to w; quick shrinks the sweeps.
	Run func(w io.Writer, quick bool) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{"E1", "E1 — Theorem 3.3: deterministic spectral sparsifier (size, quality, rounds)", e1Sparsifier},
		{"E2", "E2 — Theorem 1.1: Laplacian solver rounds ~ n^{o(1)} log(U/eps)", e2Laplacian},
		{"E3", "E3 — Theorem 1.4: Eulerian orientation rounds ~ O(log n log* n)", e3Eulerian},
		{"E4", "E4 — Lemma 4.2: flow rounding rounds ~ O(log n log* n log(1/Delta))", e4Rounding},
		{"E5", "E5 — Theorem 1.2: max flow rounds ~ m^{3/7+o(1)} U^{1/7}", e5MaxFlow},
		{"E6", "E6 — Theorem 1.3: min-cost flow rounds ~ m^{3/7}(n^0.158 + polylog W)", e6MinCostFlow},
		{"E7", "E7 — section 1.1: ours vs Ford-Fulkerson vs trivial gather; crossover", e7Baselines},
		{"E8", "E8 — Cor 2.3 ablation: Chebyshev iterations ~ sqrt(kappa) log(1/eps)", e8Chebyshev},
		{"E9", "E9 — section 1.1 model comparison: clique vs CONGEST vs BCC round formulas", e9RelatedWork},
		{"E10", "E10 — engine instrumentation: per-round load profile and parallel speedup", e10Instrumentation},
		{"E11", "E11 — trace profile: per-phase round attribution across the algorithm stack", e11TraceProfile},
		{"E12", "E12 — session layer: preprocess once, solve many (throughput vs #RHS)", e12Session},
		{"E13", "E13 — fault injection: reliable-delivery round overhead vs drop rate", e13FaultSweep},
		{"E14", "E14 — live metrics: /metrics scrape of retransmission counters vs drop rate", e14LiveMetrics},
		{"E15", "E15 — parallel numerics: worker scaling with bit-identical results and rounds", e15ParallelNumerics},
		{"E16", "E16 — distributed trace plane: merged worker timeline + flight recorder under chaos", e16DistributedTrace},
	}
}

func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// --- E1 -------------------------------------------------------------------

func e1Sparsifier(w io.Writer, quick bool) error {
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{64, 128}
	}
	fmt.Fprintf(w, "%-18s %6s %8s %8s %10s %8s %10s\n",
		"graph", "n", "m", "|E(H)|", "n·lg n", "alpha", "rounds")
	for _, n := range sizes {
		g, err := graph.RandomRegular(n, 8, int64(n))
		if err != nil {
			return err
		}
		if err := e1Row(w, "regular-8", g); err != nil {
			return err
		}
	}
	// Weight (U) sweep at fixed n: size grows with log U (weight classes).
	for _, u := range []int64{1, 16, 256} {
		base, err := graph.RandomRegular(128, 8, 99)
		if err != nil {
			return err
		}
		g := base
		if u > 1 {
			g = graph.WithRandomWeights(base, u, 100)
		}
		if err := e1Row(w, fmt.Sprintf("regular-8 U=%d", u), g); err != nil {
			return err
		}
	}
	// A low-conductance instance: decomposition must split it.
	tc, err := graph.TwoClusters(128, 8, 2, 5)
	if err != nil {
		return err
	}
	if err := e1Row(w, "two-clusters", tc); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nclaim shape: |E(H)| = O(n log n log U), alpha quasi-polylog, rounds ~ polylog per level.")
	return nil
}

func e1Row(w io.Writer, name string, g *graph.Graph) error {
	led := rounds.New()
	res, err := sparsify.Sparsify(g, sparsify.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
	if err != nil {
		return err
	}
	alpha := math.NaN()
	if g.IsConnected() {
		alpha, err = sparsify.MeasureAlpha(g, res.H, 150)
		if err != nil {
			return err
		}
	}
	nlogn := float64(g.N()) * math.Log2(float64(g.N()))
	fmt.Fprintf(w, "%-18s %6d %8d %8d %10.0f %8.2f %10d\n",
		name, g.N(), g.M(), res.H.M(), nlogn, alpha, led.Total())
	return nil
}

// --- E2 -------------------------------------------------------------------

func e2Laplacian(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "-- rounds vs n at eps = 1e-8 --")
	sizes := []int{64, 128, 256, 512}
	if quick {
		sizes = []int{64, 128}
	}
	fmt.Fprintf(w, "%6s %8s %12s %12s %14s\n", "n", "m", "solveRounds", "iters", "rounds/lg(n)")
	for _, n := range sizes {
		g, err := graph.RandomRegular(n, 8, int64(2*n))
		if err != nil {
			return err
		}
		led := rounds.New()
		s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		led.Reset()
		b := twoPole(n)
		_, st, err := s.Solve(b, 1e-8)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %8d %12d %12d %14.1f\n",
			n, g.M(), led.Total(), st.Iterations, float64(led.Total())/math.Log2(float64(n)))
	}

	fmt.Fprintln(w, "\n-- rounds vs eps at n = 128 (log(1/eps) scaling) --")
	g, err := graph.RandomRegular(128, 8, 7)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%10s %12s %12s %16s\n", "eps", "rounds", "iters", "rounds/ln(1/eps)")
	for _, eps := range []float64{1e-2, 1e-4, 1e-6, 1e-8, 1e-10} {
		led := rounds.New()
		s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		led.Reset()
		_, st, err := s.Solve(twoPole(128), eps)
		if err != nil {
			return err
		}
		_ = st
		fmt.Fprintf(w, "%10.0e %12d %12d %16.1f\n",
			eps, led.Total(), st.Iterations, float64(led.Total())/math.Log(1/eps))
	}
	fmt.Fprintln(w, "\n-- E2b ablation: deterministic vs randomized sparsifier (paper's closing remark) --")
	fmt.Fprintf(w, "%6s %16s %16s %18s %18s\n", "n", "det iters", "rand iters", "det build rounds", "rand build rounds")
	for _, n := range []int{64, 128, 256} {
		g, err := graph.RandomRegular(n, 8, int64(3*n))
		if err != nil {
			return err
		}
		b := twoPole(n)
		detLed := rounds.New()
		det, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: detLed, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		detBuild := detLed.Total()
		_, detStats, err := det.Solve(b, 1e-8)
		if err != nil {
			return err
		}
		rndLed := rounds.New()
		rnd, err := lapsolver.NewSolver(g, lapsolver.Options{Randomized: true, RandomSeed: int64(n), Ledger: rndLed, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		rndBuild := rndLed.Total()
		_, rndStats, err := rnd.Solve(b, 1e-8)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %16d %16d %18d %18d\n",
			n, detStats.Iterations, rndStats.Iterations, detBuild, rndBuild)
	}
	fmt.Fprintln(w, "\nclaim shape: rounds grow ~linearly in log(1/eps), sub-polynomially in n;")
	fmt.Fprintln(w, "the randomized sparsifier's tighter alpha buys ~3x fewer Chebyshev iterations,")
	fmt.Fprintln(w, "the paper's 'randomized solver => polylog' trade.")
	return nil
}

func twoPole(n int) linalg.Vec {
	b := linalg.NewVec(n)
	b[0] = 1
	b[n-1] = -1
	return b
}

// --- E3 -------------------------------------------------------------------

func e3Eulerian(w io.Writer, quick bool) error {
	sizes := []int{64, 128, 256, 512, 1024, 2048}
	if quick {
		sizes = []int{64, 256, 1024}
	}
	fmt.Fprintf(w, "%6s %8s %8s %10s %16s %8s\n", "n", "m", "iters", "rounds", "lg(n)·log*(n)", "ratio")
	for _, n := range sizes {
		g, err := graph.RandomEulerian(n, n/16+2, 3, int64(n))
		if err != nil {
			return err
		}
		led := rounds.New()
		_, st, err := euler.Orient(g, nil, euler.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics()})
		if err != nil {
			return err
		}
		pred := math.Log2(float64(n)) * float64(rounds.LogStar(n))
		fmt.Fprintf(w, "%6d %8d %8d %10d %16.1f %8.1f\n",
			n, g.M(), st.Iterations, led.Total(), pred, float64(led.Total())/pred)
	}
	fmt.Fprintln(w, "\n-- E3b ablation: deterministic vs randomized marking (remark after Thm 1.4) --")
	fmt.Fprintf(w, "%6s %12s %12s %12s %12s\n", "n", "det rounds", "rand rounds", "det iters", "rand iters")
	ablSizes := []int{128, 512, 2048}
	if quick {
		ablSizes = []int{128, 512}
	}
	for _, n := range ablSizes {
		g, err := graph.RandomEulerian(n, n/16+2, 3, int64(n))
		if err != nil {
			return err
		}
		detLed := rounds.New()
		_, detStats, err := euler.Orient(g, nil, euler.Options{Mode: euler.Deterministic, Ledger: detLed, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics()})
		if err != nil {
			return err
		}
		rndLed := rounds.New()
		_, rndStats, err := euler.Orient(g, nil, euler.Options{Mode: euler.Randomized, Seed: int64(n), Ledger: rndLed, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics()})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%6d %12d %12d %12d %12d\n",
			n, detLed.Total(), rndLed.Total(), detStats.Iterations, rndStats.Iterations)
	}
	fmt.Fprintln(w, "\nclaim shape: rounds/(log n log* n) stays bounded as n grows 32x; randomized")
	fmt.Fprintln(w, "marking drops the per-iteration Cole-Vishkin cost (the log* n factor).")
	return nil
}

// --- E4 -------------------------------------------------------------------

func e4Rounding(w io.Writer, quick bool) error {
	deltas := []float64{1.0 / 16, 1.0 / 64, 1.0 / 256, 1.0 / 4096, 1.0 / 65536}
	if quick {
		deltas = []float64{1.0 / 16, 1.0 / 256, 1.0 / 65536}
	}
	fmt.Fprintf(w, "%12s %10s %10s %18s\n", "Delta", "levels", "rounds", "rounds/log(1/Δ)")
	for _, delta := range deltas {
		dg, f, s, t := pathFlows(24, 10, delta, 31)
		led := rounds.New()
		if _, err := flowround.Round(dg, f, s, t, delta, false, led); err != nil {
			return err
		}
		levels := math.Log2(1 / delta)
		fmt.Fprintf(w, "%12.2e %10.0f %10d %18.1f\n",
			delta, levels, led.Total(), float64(led.Total())/levels)
	}
	fmt.Fprintln(w, "\nclaim shape: rounds per scaling level constant; total ~ log(1/Delta).")
	return nil
}

func pathFlows(n, paths int, delta float64, seed int64) (*graph.DiGraph, []float64, int, int) {
	dg := graph.NewDi(n)
	s, t := 0, n-1
	var f []float64
	rng := newRng(seed)
	for p := 0; p < paths; p++ {
		cur := s
		var arcs []int
		for cur != t {
			next := cur + 1 + rng.Intn(n-cur-1)
			arcs = append(arcs, dg.MustAddArc(cur, next, 1<<20, 1))
			cur = next
		}
		amount := delta * float64(1+rng.Intn(int(1/delta)))
		for range arcs {
			f = append(f, amount)
		}
	}
	return dg, f, s, t
}

// --- E5 -------------------------------------------------------------------

func e5MaxFlow(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "-- rounds vs m (layered DAGs, U = 8) --")
	widths := []int{3, 4, 6, 8}
	if quick {
		widths = []int{3, 5}
	}
	fmt.Fprintf(w, "%6s %6s %6s %8s %10s %10s %14s %8s\n",
		"n", "m", "F*", "ipmIt", "finalAug", "rounds", "m^(3/7)U^(1/7)", "ratio")
	for _, width := range widths {
		dg := graph.LayeredDAG(3, width, 2, 8, int64(width))
		if err := e5Row(w, dg); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n-- rounds vs U (fixed topology) --")
	fmt.Fprintf(w, "%6s %6s %6s %8s %10s %10s %14s %8s\n",
		"n", "m", "F*", "ipmIt", "finalAug", "rounds", "m^(3/7)U^(1/7)", "ratio")
	for _, u := range []int64{1, 8, 64} {
		dg := graph.LayeredDAG(3, 4, 2, u, 17)
		if err := e5Row(w, dg); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n-- grid networks (different topology family, U = 6) --")
	fmt.Fprintf(w, "%6s %6s %6s %8s %10s %10s %14s %8s\n",
		"n", "m", "F*", "ipmIt", "finalAug", "rounds", "m^(3/7)U^(1/7)", "ratio")
	grids := [][2]int{{3, 3}, {4, 4}}
	if quick {
		grids = [][2]int{{3, 3}}
	}
	for _, gsz := range grids {
		dg := graph.GridFlowNetwork(gsz[0], gsz[1], 6, 71)
		if err := e5Row(w, dg); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nclaim shape: rounds track m^{3/7}U^{1/7} x per-iteration solver cost; final augmentations <= 1.")
	return nil
}

func e5Row(w io.Writer, dg *graph.DiGraph) error {
	s, t := 0, dg.N()-1
	led := rounds.New()
	res, err := maxflow.MaxFlow(dg, s, t, maxflow.Options{Ledger: led, FastSolve: true, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
	if err != nil {
		return err
	}
	shape := math.Pow(float64(dg.M()), 3.0/7.0) * math.Pow(float64(dg.MaxCapacity()), 1.0/7.0)
	fmt.Fprintf(w, "%6d %6d %6d %8d %10d %10d %14.1f %8.0f\n",
		dg.N(), dg.M(), res.Value, res.IPMIterations, res.FinalAugmentations,
		led.Total(), shape, float64(led.Total())/shape)
	return nil
}

// --- E6 -------------------------------------------------------------------

func e6MinCostFlow(w io.Writer, quick bool) error {
	fmt.Fprintln(w, "-- rounds vs m (bipartite assignment, W = 16) --")
	sizes := []int{4, 6, 8, 12}
	if quick {
		sizes = []int{4, 8}
	}
	fmt.Fprintf(w, "%6s %6s %8s %8s %8s %10s %16s %8s\n",
		"n", "m", "progIt", "repairs", "cost", "rounds", "m^(3/7) shape", "ratio")
	for _, l := range sizes {
		dg, sigma := assignment(l, l, 3, 16, int64(l))
		if err := e6Row(w, dg, sigma); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\n-- rounds vs W (fixed topology) --")
	fmt.Fprintf(w, "%6s %6s %8s %8s %8s %10s %16s %8s\n",
		"n", "m", "progIt", "repairs", "cost", "rounds", "m^(3/7) shape", "ratio")
	for _, maxCost := range []int64{10, 1000, 1000000} {
		dg, sigma := assignment(6, 6, 3, maxCost, 77)
		if err := e6Row(w, dg, sigma); err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\nclaim shape: rounds ~ m^{3/7} x (n^0.158 per repair + polylog W per solve).")
	return nil
}

func e6Row(w io.Writer, dg *graph.DiGraph, sigma []int64) error {
	led := rounds.New()
	res, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
	if err != nil {
		return err
	}
	n := dg.N()
	shape := math.Pow(float64(dg.M()), 3.0/7.0) *
		(math.Pow(float64(n), 0.158) + math.Log(float64(dg.MaxCost())+2))
	fmt.Fprintf(w, "%6d %6d %8d %8d %8d %10d %16.1f %8.0f\n",
		n, dg.M(), res.ProgressIterations, res.RepairAugmentations, res.Cost,
		led.Total(), shape, float64(led.Total())/shape)
	return nil
}

func assignment(left, right, degree int, maxCost int64, seed int64) (*graph.DiGraph, []int64) {
	rng := newRng(seed)
	dg := graph.NewDi(left + right)
	sigma := make([]int64, left+right)
	for u := 0; u < left; u++ {
		partner := u % right
		dg.MustAddArc(u, left+partner, 1, 1+rng.Int63n(maxCost))
		for d := 1; d < degree; d++ {
			dg.MustAddArc(u, left+rng.Intn(right), 1, 1+rng.Int63n(maxCost))
		}
		sigma[u] = 1
		sigma[left+partner]--
	}
	return dg, sigma
}

// --- E7 -------------------------------------------------------------------

func e7Baselines(w io.Writer, quick bool) error {
	// Section 1.1 comparison. Two parts: (a) measured rounds of all three
	// algorithms while |f*| scales (FF grows ~linearly in |f*|, ours is
	// ~flat in |f*| at fixed topology); (b) the crossover extrapolation —
	// at simulator sizes every instance fits in one trivial-gather round,
	// so the comparison the paper makes is between the *growth laws*, and
	// we locate the |f*| where FF's measured cost overtakes ours.
	caps := []int64{1, 4, 16, 64, 256}
	if quick {
		caps = []int64{1, 16, 256}
	}
	fmt.Fprintf(w, "%6s %8s %10s %12s %14s %12s\n", "U", "F*", "ours", "FF(meas)", "FF(|f*| bound)", "trivial")
	type row struct {
		u          int64
		fstar      int64
		ours, ff   int64
		ffBound    int64
		trivial    int64
		apspPerRnd int64
	}
	var rows []row
	for _, u := range caps {
		dg := graph.LayeredDAG(3, 4, 2, u, 23)
		s, t := 0, dg.N()-1
		led := rounds.New()
		res, err := maxflow.MaxFlow(dg, s, t, maxflow.Options{Ledger: led, FastSolve: true, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		ff, err := maxflow.FordFulkerson(dg, s, t, nil)
		if err != nil {
			return err
		}
		r := row{
			u: u, fstar: res.Value, ours: led.Total(), ff: ff.Rounds,
			ffBound:    rounds.FordFulkersonRounds(res.Value, dg.N()),
			trivial:    maxflow.TrivialRounds(dg),
			apspPerRnd: rounds.APSPRounds(dg.N()),
		}
		rows = append(rows, r)
		fmt.Fprintf(w, "%6d %8d %10d %12d %14d %12d\n",
			r.u, r.fstar, r.ours, r.ff, r.ffBound, r.trivial)
	}
	fmt.Fprintln(w, "\ncrossover extrapolation (per instance, from measured costs):")
	fmt.Fprintf(w, "%6s %16s %16s %14s\n", "U", "ours (rounds)", "crossover |f*|", "max |f*|=nU")
	for _, r := range rows {
		crossover := r.ours / r.apspPerRnd
		fmt.Fprintf(w, "%6d %16d %16d %14d\n", r.u, r.ours, crossover, int64(26)*r.u)
	}
	fmt.Fprintln(w, "\nclaim shape: FF's |f*|-bound grows linearly in |f*| while ours is ~flat at")
	fmt.Fprintln(w, "fixed m (only U^{1/7} inside the iteration budget); instances with")
	fmt.Fprintln(w, "|f*| above the crossover (reachable, since |f*| can reach nU) favor ours,")
	fmt.Fprintln(w, "matching section 1.1's |f*| = o(n^0.842 log U) boundary for FF's viability.")
	fmt.Fprintln(w, "At simulator sizes the trivial gather fits everything in ~1 round because")
	fmt.Fprintln(w, "m << n(n-1) words; its O(n log U) growth is the asymptote the paper compares against.")
	return nil
}

// --- E8 -------------------------------------------------------------------

func e8Chebyshev(w io.Writer, quick bool) error {
	// Isolate the sqrt(kappa) log(1/eps) dependence of Corollary 2.3 by
	// preconditioning a fixed graph with edge-perturbed copies of itself of
	// known alpha.
	g, err := graph.ConnectedGNM(60, 150, 3)
	if err != nil {
		return err
	}
	lg := linalg.NewLaplacian(graph.WithRandomWeights(g, 6, 4))
	b := twoPole(60)
	b.RemoveMean()
	perturbs := []float64{0.1, 0.5, 1.0, 2.0, 4.0}
	if quick {
		perturbs = []float64{0.1, 1.0, 4.0}
	}
	fmt.Fprintf(w, "%8s %10s %10s %10s %10s %18s\n", "perturb", "kappa", "eps", "iters", "bound", "iters/sqrt(kappa)")
	for _, p := range perturbs {
		h := graph.New(lg.Graph().N())
		for i, e := range lg.Graph().Edges() {
			w := e.W
			if i%2 == 0 {
				w *= 1 + p
			} else {
				w /= 1 + p
			}
			h.MustAddEdge(e.U, e.V, w)
		}
		alpha := 1 + p
		kappa := alpha * alpha
		lh := linalg.NewLaplacian(h)
		inner := linalg.LaplacianCGSolver(lh, 1e-13)
		bSolve := func(r linalg.Vec) (linalg.Vec, error) {
			y, err := inner(r)
			if err != nil {
				return nil, err
			}
			y.Scale(1 / alpha)
			return y, nil
		}
		for _, eps := range []float64{1e-4, 1e-8} {
			_, res, err := linalg.PreconCheby(lg, bSolve, b, linalg.ChebyOptions{Kappa: kappa, Eps: eps})
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "%8.1f %10.2f %10.0e %10d %10d %18.1f\n",
				p, kappa, eps, res.Iterations, linalg.ChebyIterationBound(kappa, eps),
				float64(res.Iterations)/math.Sqrt(kappa))
		}
	}
	fmt.Fprintln(w, "\nclaim shape: iterations/sqrt(kappa) constant per eps; doubling log(1/eps) doubles iterations.")
	return nil
}

// --- E9 -------------------------------------------------------------------

func e9RelatedWork(w io.Writer, quick bool) error {
	// Section 1.1's model comparison as growth laws: for each theorem,
	// tabulate the claimed round formulas of the CONGEST algorithms
	// (FGLP+21), the BCC algorithm (FV22), and our measured clique rounds,
	// across n. CONGEST formulas are instantiated at diameter D = log2(n)
	// (an expander-like topology) — the regime where the paper notes the
	// clique algorithms always win against CONGEST.
	sizes := []int{256, 1024, 4096, 16384}
	if quick {
		sizes = []int{256, 4096}
	}

	fmt.Fprintln(w, "-- Laplacian solver (Thm 1.1 vs FGLP+21 CONGEST), eps = 1e-8, m = 8n --")
	fmt.Fprintf(w, "%8s %16s %18s\n", "n", "clique (meas)", "CONGEST (claim)")
	for _, n := range sizes {
		// Measure the clique solver only at feasible sizes; extrapolate the
		// iteration-count shape beyond (the per-iteration cost is 1 round).
		var clique int64
		if n <= 1024 {
			g, err := graph.RandomRegular(n, 8, int64(n))
			if err != nil {
				return err
			}
			led := rounds.New()
			s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			if err != nil {
				return err
			}
			led.Reset()
			b := twoPole(n)
			if _, _, err := s.Solve(b, 1e-8); err != nil {
				return err
			}
			clique = led.Total()
		} else {
			clique = -1 // beyond simulator scale; the shape is n^{o(1)} log(1/eps)
		}
		congest := rounds.CongestLaplacianRounds(n, int(math.Log2(float64(n))), 1e-8)
		if clique >= 0 {
			fmt.Fprintf(w, "%8d %16d %18d\n", n, clique, congest)
		} else {
			fmt.Fprintf(w, "%8d %16s %18d\n", n, "~130 (flat)", congest)
		}
	}

	fmt.Fprintln(w, "\n-- max flow (Thm 1.2 vs FGLP+21 CONGEST), m = 8n, U = 8, D = log n --")
	fmt.Fprintf(w, "%8s %20s %20s\n", "n", "clique m^(3/7)U^(1/7)", "CONGEST (claim)")
	for _, n := range sizes {
		ours := math.Pow(float64(8*n), 3.0/7.0) * math.Pow(8, 1.0/7.0) * 600 // measured ~600 rounds/iter (E5)
		congest := rounds.CongestMaxFlowRounds(n, 8*n, 8, int(math.Log2(float64(n))))
		fmt.Fprintf(w, "%8d %20.0f %20d\n", n, ours, congest)
	}

	fmt.Fprintln(w, "\n-- min-cost flow (Thm 1.3 vs FGLP+21 CONGEST vs FV22 BCC), m = 8n, W = 64 --")
	fmt.Fprintf(w, "%8s %16s %18s %14s\n", "n", "clique (shape)", "CONGEST (claim)", "BCC (claim)")
	for _, n := range sizes {
		ours := math.Pow(float64(8*n), 3.0/7.0) *
			(math.Pow(float64(n), 0.158) + math.Log2(64)) * 600
		congest := rounds.CongestMinCostFlowRounds(n, 8*n, 64, int(math.Log2(float64(n))))
		bcc := rounds.BCCMinCostFlowRounds(n)
		fmt.Fprintf(w, "%8d %16.0f %18d %14d\n", n, ours, congest, bcc)
	}

	fmt.Fprintln(w, "\n-- min-cost flow growth in density (n = 4096): clique m^{3/7} vs BCC sqrt(n) --")
	fmt.Fprintf(w, "%10s %16s %14s %10s\n", "m", "clique (shape)", "BCC (claim)", "winner")
	for _, m := range []int{8 * 4096, 64 * 4096, 1024 * 4096, 4096 * 4095 / 2} {
		ours := math.Pow(float64(m), 3.0/7.0) * (math.Pow(4096, 0.158) + math.Log2(64)) * 600
		bcc := rounds.BCCMinCostFlowRounds(4096)
		winner := "clique"
		if float64(bcc) < ours {
			winner = "BCC"
		}
		fmt.Fprintf(w, "%10d %16.0f %14d %10s\n", m, ours, bcc, winner)
	}

	fmt.Fprintln(w, "\nclaim shape: CONGEST pays sqrt(n)+D per iteration, so 'the CONGEST")
	fmt.Fprintln(w, "algorithms are clearly always slower than ours' (1.1) — visible at every n.")
	fmt.Fprintln(w, "Against the randomized Õ(sqrt n) BCC algorithm, the asymptotic boundary is")
	fmt.Fprintln(w, "density: m^{3/7} < sqrt(n) for sparse graphs and > for dense ones — 'faster")
	fmt.Fprintln(w, "than our algorithms for sufficiently dense graphs' (1.1); at table sizes the")
	fmt.Fprintln(w, "per-iteration solver constant (~600 rounds) also favors BCC, and BCC is")
	fmt.Fprintln(w, "randomized while everything measured here is deterministic.")
	return nil
}

// --- E10 ------------------------------------------------------------------

// e10Step builds the three-phase profile program: an all-to-all gossip
// (round 0), a gather of local sums at node 0 (round 1), and a broadcast of
// the grand total (round 2). Each phase stresses a different link-load
// shape, which the engine's instrumentation hook makes visible per round.
func e10Step(n int, sums []int64, totals []int64) cc.Step {
	return func(node, round int, inbox []cc.Message, send func(int, ...int64)) bool {
		switch round {
		case 0:
			sums[node] = int64(node + 1)
			for v := 0; v < n; v++ {
				if v != node {
					send(v, int64(node+1))
				}
			}
			return false
		case 1:
			for _, m := range inbox {
				sums[node] += m.Data[0]
			}
			if node != 0 {
				send(0, sums[node])
				return false
			}
			return false
		case 2:
			if node == 0 {
				// Every gathered sum equals the grand total already; the
				// gather is kept to profile the n-into-1 load shape.
				totals[0] = sums[0]
				for v := 1; v < n; v++ {
					send(v, totals[0])
				}
			}
			return node != 0
		default:
			for _, m := range inbox {
				totals[node] = m.Data[0]
			}
			return true
		}
	}
}

func e10Run(n int, sequential bool, observe func(cc.RoundStats)) (time.Duration, error) {
	e := cc.NewEngine(n)
	e.SetSequential(sequential)
	if observe != nil {
		e.SetObserver(observe)
	}
	sums := make([]int64, n)
	totals := make([]int64, n)
	t0 := time.Now()
	if _, err := e.Run(e10Step(n, sums, totals), 8); err != nil {
		return 0, err
	}
	elapsed := time.Since(t0)
	want := int64(n) * int64(n+1) / 2
	for v := 0; v < n; v++ {
		if totals[v] != want {
			return 0, fmt.Errorf("e10: node %d total %d, want %d", v, totals[v], want)
		}
	}
	return elapsed, nil
}

func e10Instrumentation(w io.Writer, quick bool) error {
	n := 256
	reps := 5
	if quick {
		n = 64
		reps = 2
	}
	fmt.Fprintf(w, "-- per-round load profile, n = %d (gossip / gather / broadcast) --\n", n)
	fmt.Fprintf(w, "%6s %10s %10s %8s %8s %8s %12s %12s\n",
		"round", "messages", "words", "maxOut", "maxIn", "busy", "step", "merge")
	var stats []cc.RoundStats
	if _, err := e10Run(n, false, func(s cc.RoundStats) { stats = append(stats, s) }); err != nil {
		return err
	}
	for _, s := range stats {
		fmt.Fprintf(w, "%6d %10d %10d %8d %8d %8d %12s %12s\n",
			s.Round, s.Messages, s.Words, s.MaxOut, s.MaxIn, s.Busy,
			s.StepDuration.Round(time.Microsecond), s.MergeDuration.Round(time.Microsecond))
	}

	fmt.Fprintln(w, "\n-- wall clock: sequential escape hatch vs worker-pool engine --")
	best := func(sequential bool) (time.Duration, error) {
		var min time.Duration
		for i := 0; i < reps; i++ {
			d, err := e10Run(n, sequential, nil)
			if err != nil {
				return 0, err
			}
			if min == 0 || d < min {
				min = d
			}
		}
		return min, nil
	}
	seq, err := best(true)
	if err != nil {
		return err
	}
	par, err := best(false)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-12s %12s\n%-12s %12s\nspeedup %.2fx\n",
		"sequential", seq.Round(time.Microsecond), "parallel", par.Round(time.Microsecond),
		float64(seq)/float64(par))

	fmt.Fprintln(w, "\nclaim shape: link load peaks at n-1 exactly in the all-to-all, gather, and")
	fmt.Fprintln(w, "broadcast phases (the clique's per-pair capacity is never exceeded); results")
	fmt.Fprintln(w, "are bit-identical in both modes, and the parallel/sequential ratio tracks the")
	fmt.Fprintln(w, "host's core count (~1x on single-core machines, where the engine's win is the")
	fmt.Fprintln(w, "allocation-free hot path). Wall-clock rows vary per host; the count columns do not.")
	return nil
}

// --- E11 ------------------------------------------------------------------

// e11Workloads returns one traced run per algorithm layer: each entry
// builds a fresh tracer, runs the workload with it attached, and hands the
// tracer back for summarizing. This is the structured replacement for the
// ad-hoc per-phase printing the older experiments did by hand.
func e11Workloads(quick bool) []struct {
	Name string
	Run  func(tr *trace.Tracer) error
} {
	n := 128
	if quick {
		n = 64
	}
	return []struct {
		Name string
		Run  func(tr *trace.Tracer) error
	}{
		{"lapsolve", func(tr *trace.Tracer) error {
			g, err := graph.RandomRegular(n, 8, int64(n))
			if err != nil {
				return err
			}
			led := rounds.New()
			s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: led, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			if err != nil {
				return err
			}
			_, _, err = s.Solve(twoPole(n), 1e-8)
			return err
		}},
		{"sparsify", func(tr *trace.Tracer) error {
			g, err := graph.RandomRegular(n, 8, int64(n)+1)
			if err != nil {
				return err
			}
			led := rounds.New()
			_, err = sparsify.Sparsify(g, sparsify.Options{Ledger: led, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			return err
		}},
		{"euler", func(tr *trace.Tracer) error {
			g, err := graph.RandomEulerian(n, n/16+2, 3, int64(n))
			if err != nil {
				return err
			}
			led := rounds.New()
			_, _, err = euler.Orient(g, nil, euler.Options{Ledger: led, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics()})
			return err
		}},
		{"flowround", func(tr *trace.Tracer) error {
			dg, f, s, t := pathFlows(24, 10, 1.0/256, 31)
			led := rounds.New()
			_, err := flowround.RoundWith(dg, f, s, t, 1.0/256, false, flowround.Options{Ledger: led, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics()})
			return err
		}},
		{"maxflow", func(tr *trace.Tracer) error {
			dg := graph.LayeredDAG(3, 4, 2, 8, 17)
			led := rounds.New()
			_, err := maxflow.MaxFlow(dg, 0, dg.N()-1, maxflow.Options{Ledger: led, FastSolve: true, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			return err
		}},
		{"mcmf", func(tr *trace.Tracer) error {
			dg, sigma := assignment(4, 4, 3, 16, 5)
			led := rounds.New()
			_, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{Ledger: led, Trace: tr, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			return err
		}},
	}
}

// TraceProfile runs one traced workload per algorithm layer on the single
// tracer tr, wrapping each workload in a top-level span named after its
// algorithm, and prints the combined per-phase summary to w. The
// cmd/experiments -trace flag drives this; the caller exports tr
// afterwards.
func TraceProfile(w io.Writer, quick bool, tr *trace.Tracer) error {
	for _, wl := range e11Workloads(quick) {
		sp := tr.Start(wl.Name)
		err := wl.Run(tr)
		sp.End()
		if err != nil {
			return fmt.Errorf("trace profile: %s: %w", wl.Name, err)
		}
	}
	fmt.Fprintln(w, tr.Summary())
	return nil
}

// --- E12 ------------------------------------------------------------------

// e12Session measures the build-once/solve-many session layer: k pole-pair
// right-hand sides are pushed through (a) one warm-started session and
// (b) a freshly built solver per right-hand side. Charged rounds per solve
// are identical by construction — reuse buys wall clock, not round count.
func e12Session(w io.Writer, quick bool) error {
	n := 256
	ks := []int{1, 2, 4, 8, 16}
	if quick {
		n = 96
		ks = []int{1, 2, 4}
	}
	g, err := graph.RandomRegular(n, 8, 12)
	if err != nil {
		return err
	}
	const eps = 1e-8
	rhs := func(i int) linalg.Vec {
		b := linalg.NewVec(n)
		b[0] = 1
		b[1+i%(n-1)] = -1
		return b
	}

	fmt.Fprintf(w, "n=%d m=%d eps=%g; charged columns are cumulative preprocessing rounds\n", n, g.M(), eps)
	fmt.Fprintf(w, "%6s %14s %14s %10s %14s %14s\n",
		"#rhs", "session s/sec", "rebuild s/sec", "speedup", "sess charged", "fresh charged")
	for _, k := range ks {
		sessLed := rounds.New()
		sess, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: sessLed, WarmStart: true, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
		if err != nil {
			return err
		}
		start := time.Now()
		for i := 0; i < k; i++ {
			if _, _, err := sess.Solve(rhs(i), eps); err != nil {
				return err
			}
		}
		sessTime := time.Since(start)

		freshLed := rounds.New()
		start = time.Now()
		for i := 0; i < k; i++ {
			s, err := lapsolver.NewSolver(g, lapsolver.Options{Ledger: freshLed, Faults: expFaults(), Budget: expBudget(), Metrics: expMetrics(), Workers: expWorkers()})
			if err != nil {
				return err
			}
			if _, _, err := s.Solve(rhs(i), eps); err != nil {
				return err
			}
		}
		freshTime := time.Since(start)

		perSec := func(d time.Duration) float64 {
			if d <= 0 {
				return math.Inf(1)
			}
			return float64(k) / d.Seconds()
		}
		fmt.Fprintf(w, "%6d %14.1f %14.1f %9.1fx %14d %14d\n",
			k, perSec(sessTime), perSec(freshTime),
			float64(freshTime)/float64(sessTime),
			sessLed.TotalOf(rounds.Charged), freshLed.TotalOf(rounds.Charged))
	}
	fmt.Fprintln(w, "\nclaim shape: rebuild-per-RHS pays the sparsifier chain k times; the session")
	fmt.Fprintln(w, "pays it once, so throughput scales with k while charged solve rounds match.")
	return nil
}

func e11TraceProfile(w io.Writer, quick bool) error {
	for _, wl := range e11Workloads(quick) {
		tr := trace.New()
		if err := wl.Run(tr); err != nil {
			return fmt.Errorf("e11: %s: %w", wl.Name, err)
		}
		fmt.Fprintf(w, "-- %s --\n", wl.Name)
		fmt.Fprintln(w, tr.Summary())
	}
	fmt.Fprintln(w, "claim shape: every measured/charged round lands in a named span; the")
	fmt.Fprintln(w, "per-phase split shows where each theorem's round budget actually goes.")
	return nil
}

// --- E13 ------------------------------------------------------------------

// e13FaultSweep measures what fault tolerance costs: the Theorem 1.1 solver
// and the Theorem 1.4 orientation run under FaultPlans of increasing drop
// rate with the reliable retransmission layer restoring delivery. Outputs
// are bit-identical to the clean run at every rate (the differential tests
// pin this); the table shows the only thing that changes — rounds.
func e13FaultSweep(w io.Writer, quick bool) error {
	n, m := 64, 200
	if quick {
		n, m = 40, 110
	}
	g, err := graph.ConnectedGNM(n, m, 29)
	if err != nil {
		return err
	}
	eg, err := graph.RandomEulerian(n, n/8+2, 3, 31)
	if err != nil {
		return err
	}
	b := linalg.NewVec(n)
	b[0], b[n-1] = 1, -1
	drops := []float64{0, 0.005, 0.01, 0.02, 0.05}
	if quick {
		drops = []float64{0, 0.01, 0.05}
	}

	type workload struct {
		name string
		run  func(plan *cc.FaultPlan) (int64, error)
	}
	workloads := []workload{
		{"lapsolver (Thm 1.1)", func(plan *cc.FaultPlan) (int64, error) {
			led := rounds.New()
			s, err := lapsolver.NewSolver(g.Clone(), lapsolver.Options{Ledger: led, Faults: plan})
			if err != nil {
				return 0, err
			}
			if _, _, err := s.Solve(b, 1e-8); err != nil {
				return 0, err
			}
			return led.Total(), nil
		}},
		{"euler orient (Thm 1.4)", func(plan *cc.FaultPlan) (int64, error) {
			led := rounds.New()
			if _, _, err := euler.Orient(eg, nil, euler.Options{Ledger: led, Faults: plan}); err != nil {
				return 0, err
			}
			return led.Total(), nil
		}},
	}

	fmt.Fprintf(w, "n=%d; reliable delivery under seed-deterministic message drops (seed 47)\n", n)
	fmt.Fprintf(w, "%-22s %8s %10s %10s\n", "workload", "drop", "rounds", "overhead")
	for _, wl := range workloads {
		var clean int64
		for _, d := range drops {
			var plan *cc.FaultPlan
			if d > 0 {
				plan = &cc.FaultPlan{Seed: 47, Drop: d}
			}
			tot, err := wl.run(plan)
			if err != nil {
				return fmt.Errorf("e13: %s drop=%g: %w", wl.name, d, err)
			}
			if d == 0 {
				clean = tot
			}
			overhead := "-"
			if d > 0 && clean > 0 {
				overhead = fmt.Sprintf("%+.1f%%", 100*float64(tot-clean)/float64(clean))
			}
			fmt.Fprintf(w, "%-22s %7.1f%% %10d %10s\n", wl.name, 100*d, tot, overhead)
		}
	}
	fmt.Fprintln(w, "\nclaim shape: retransmission cost grows smoothly with the drop rate — a few")
	fmt.Fprintln(w, "percent loss costs a bounded round premium, never correctness (outputs stay")
	fmt.Fprintln(w, "bit-identical; see the fault differential tests).")
	return nil
}
