package cc

import (
	"errors"
	"fmt"

	"lapcc/internal/rounds"
)

// This file implements the reliable delivery layer: Lenzen routing wrapped
// in a sequence-numbered, checksummed, acknowledged retransmission protocol
// that restores the lossless-clique delivery guarantee on top of a lossy
// FaultPlan. The protocol is the classical stop-and-wait-per-wave scheme:
//
//	wave 0: route every packet, each framed as [seq, checksum, payload...];
//	        receivers discard frames whose checksum fails (corruption) and
//	        deduplicate by sequence number, then acknowledge in one round;
//	wave w: wait 2^(w-1) backoff rounds, then retransmit exactly the
//	        unacknowledged packets.
//
// Acknowledgements themselves ride the faulty network: a lost ack causes a
// spurious retransmission that the receiver's dedup table absorbs. After
// FaultPlan.MaxRetries retransmission waves with packets still outstanding
// the protocol gives up with ErrDeliveryFailed.
//
// Because retries continue until every packet is delivered exactly once and
// the final per-destination order is canonicalized the same way Route's is,
// the delivered multiset — and therefore any algorithm output computed from
// it — is bit-identical to a clean run; only the round cost grows. The extra
// rounds are recorded under the derived tags "<tag>-ack", "<tag>-retry",
// and "<tag>-backoff", so ledger reports separate protocol overhead from
// useful work.

// ReliableResult reports how a reliable routing invocation went.
type ReliableResult struct {
	// RouteResult aggregates the underlying routing invocations of all
	// waves (the initial attempt and every retransmission).
	RouteResult
	// Attempts is the number of transmission waves executed (1 = no
	// retransmission was needed).
	Attempts int
	// Retransmitted counts packet retransmissions (sum over retry waves of
	// the packets resent).
	Retransmitted int64
	// AckRounds and BackoffRounds are the protocol-overhead rounds charged
	// on top of the routing rounds.
	AckRounds     int64
	BackoffRounds int64
	// Faults counts the injected message faults the protocol absorbed
	// (including lost acknowledgements, which count as Dropped).
	Faults FaultStats
}

// Per-call salt for acknowledgement fates (see faults.go for the others).
const saltAck = 0x3c79ac49

// reliable header layout: word 0 = sequence number, word 1 = checksum.
const reliableHeaderWords = 2

// reliableChecksum covers the frame's routing envelope, sequence number,
// and payload, so a bit flip anywhere in the frame is detected.
func reliableChecksum(src, dst int, seq int64, payload []int64) int64 {
	h := splitmix64(0x8f1bbcdc ^ uint64(src)<<32 ^ uint64(dst))
	h = splitmix64(h ^ uint64(seq))
	for _, w := range payload {
		h = splitmix64(h ^ uint64(w))
	}
	return int64(h >> 1) // keep it non-negative for readability in dumps
}

// encodeReliable frames packet p with sequence number seq.
func encodeReliable(p Packet, seq int) []int64 {
	data := make([]int64, reliableHeaderWords+len(p.Data))
	data[0] = int64(seq)
	data[1] = reliableChecksum(p.Src, p.Dst, int64(seq), p.Data)
	copy(data[reliableHeaderWords:], p.Data)
	return data
}

// decodeReliable validates a received frame and returns its sequence number
// and payload (aliasing the frame's backing array). ok is false when the
// frame is malformed or fails its checksum.
func decodeReliable(p Packet) (seq int64, payload []int64, ok bool) {
	if len(p.Data) < reliableHeaderWords {
		return 0, nil, false
	}
	seq = p.Data[0]
	payload = p.Data[reliableHeaderWords:]
	if p.Data[1] != reliableChecksum(p.Src, p.Dst, seq, payload) {
		return 0, nil, false
	}
	return seq, payload, true
}

// router abstracts Route vs RouteBatched for the wave loop.
type routerFunc func(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error)

// ReliableRoute is Route with delivery guarantees under a fault plan: it
// delivers every packet exactly once even when plan drops, corrupts,
// duplicates, or delays messages, by retransmitting unacknowledged packets
// with exponential round backoff. A nil plan (or a plan with all message
// rates zero) delegates to Route unchanged — same rounds, same output. The
// packet set must satisfy the Lenzen admissibility condition, exactly as
// for Route.
func ReliableRoute(n int, packets []Packet, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([][]Packet, ReliableResult, error) {
	return ReliableRouteVia(nil, n, packets, ledger, tag, plan)
}

// ReliableRouteVia is ReliableRoute with every wave — data and
// retransmissions alike — physically carried by t (see RouteVia); packet
// fates, charged rounds, and the delivered multiset are bit-identical to the
// in-process version. A nil transport is plain ReliableRoute.
func ReliableRouteVia(t Transport, n int, packets []Packet, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([][]Packet, ReliableResult, error) {
	out, res, err := reliableDeliver(n, packets, ledger, tag, plan, routerFor(t, false))
	if plan.messageFates() {
		instrumentsFor(globalMetrics.Load()).recordReliable(res, errors.Is(err, ErrDeliveryFailed))
	}
	return out, res, err
}

// ReliableRouteBatched is RouteBatched with the same delivery guarantees as
// ReliableRoute; arbitrary packet sets are split into admissible batches per
// wave.
func ReliableRouteBatched(n int, packets []Packet, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([][]Packet, ReliableResult, error) {
	return ReliableRouteBatchedVia(nil, n, packets, ledger, tag, plan)
}

// ReliableRouteBatchedVia is ReliableRouteBatched over a transport, with the
// same bit-identity contract as ReliableRouteVia.
func ReliableRouteBatchedVia(t Transport, n int, packets []Packet, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([][]Packet, ReliableResult, error) {
	out, res, err := reliableDeliver(n, packets, ledger, tag, plan, routerFor(t, true))
	if plan.messageFates() {
		instrumentsFor(globalMetrics.Load()).recordReliable(res, errors.Is(err, ErrDeliveryFailed))
	}
	return out, res, err
}

func reliableDeliver(n int, packets []Packet, ledger *rounds.Ledger, tag string, plan *FaultPlan, route routerFunc) ([][]Packet, ReliableResult, error) {
	var agg ReliableResult
	if !plan.messageFates() {
		out, res, err := route(n, packets, ledger, tag)
		agg.RouteResult = res
		agg.Attempts = 1
		return out, agg, err
	}
	if err := plan.Validate(); err != nil {
		return nil, agg, err
	}

	out := make([][]Packet, n)
	accepted := make([]bool, len(packets)) // receiver-side dedup by sequence number
	acked := make([]bool, len(packets))    // sender-side: stop retransmitting
	pending := make([]int, len(packets))
	for i := range pending {
		pending[i] = i
	}
	wire := make([]Packet, 0, len(packets))
	maxRetries := plan.maxRetries()

	for wave := 0; len(pending) > 0; wave++ {
		if wave > maxRetries {
			return nil, agg, fmt.Errorf("%w: %d of %d packets undelivered after %d retries (%s)",
				ErrDeliveryFailed, len(pending), len(packets), maxRetries, tag)
		}
		waveTag := tag
		if wave > 0 {
			// Exponential backoff: the sender waits out 2^(wave-1) silent
			// rounds before retransmitting; the clique is synchronized, so
			// the wait is itself rounds on the clock.
			backoff := int64(1) << uint(wave-1)
			agg.BackoffRounds += backoff
			if ledger != nil {
				ledger.Add(tag+"-backoff", rounds.Measured, backoff, "reliable-delivery retransmit backoff")
			}
			agg.Retransmitted += int64(len(pending))
			waveTag = tag + "-retry"
		}
		agg.Attempts++

		wire = wire[:0]
		for _, idx := range pending {
			wire = append(wire, Packet{
				Src:  packets[idx].Src,
				Dst:  packets[idx].Dst,
				Data: encodeReliable(packets[idx], idx),
			})
		}
		delivered, res, err := route(n, wire, ledger, waveTag)
		if err != nil {
			return nil, agg, err
		}
		agg.Executed += res.Executed
		agg.Charged += res.Charged
		agg.LinkMessages += res.LinkMessages
		agg.Overflowed = agg.Overflowed || res.Overflowed

		// Apply the plan's fates to this wave's transmissions. Every fate is
		// a pure function of (sequence number, wave), so the replay is
		// deterministic regardless of routing internals.
		for d := 0; d < n; d++ {
			for _, frame := range delivered[d] {
				if len(frame.Data) < reliableHeaderWords {
					continue
				}
				seq := int(frame.Data[0])
				if seq < 0 || seq >= len(packets) {
					continue
				}
				kind, _ := plan.packetFate(seq, wave)
				copies := 1
				switch kind {
				case faultDrop:
					agg.Faults.Dropped++
					continue
				case faultDelay:
					// Arrived after the acknowledgement deadline: for the
					// protocol this wave, indistinguishable from a drop (the
					// dedup table absorbs the late copy).
					agg.Faults.Delayed++
					continue
				case faultCorrupt:
					agg.Faults.Corrupted++
					h := int(plan.hash(saltCorrupt, uint64(seq), uint64(wave), 0) >> 1)
					frame.Data[h%len(frame.Data)] ^= 1 << uint((h/len(frame.Data))%64)
				case faultDuplicate:
					agg.Faults.Duplicated++
					copies = 2
				}
				for c := 0; c < copies; c++ {
					gotSeq, payload, ok := decodeReliable(frame)
					if !ok {
						continue // checksum failure: receiver discards, no ack
					}
					idx := int(gotSeq)
					if idx < 0 || idx >= len(packets) || accepted[idx] {
						continue // duplicate or stale: dedup absorbs it
					}
					accepted[idx] = true
					out[packets[idx].Dst] = append(out[packets[idx].Dst], Packet{
						Src:  packets[idx].Src,
						Dst:  packets[idx].Dst,
						Data: payload,
					})
				}
			}
		}

		// Acknowledgement round: each receiver reports the sequence numbers
		// it accepted. Acks are tiny (a bitmap over the sender's in-flight
		// window) and fit one clique round, but they ride the same faulty
		// network — a lost ack leaves the packet unacked and triggers a
		// spurious retransmission that dedup absorbs.
		agg.AckRounds++
		if ledger != nil {
			ledger.Add(tag+"-ack", rounds.Measured, 1, "reliable-delivery acknowledgement round")
		}
		next := pending[:0]
		for _, idx := range pending {
			ackKind, _ := plan.fate(saltAck, uint64(idx), uint64(wave), 0)
			ackLost := ackKind == faultDrop || ackKind == faultDelay
			if accepted[idx] && !ackLost {
				acked[idx] = true
				continue
			}
			if accepted[idx] && ackLost {
				agg.Faults.Dropped++ // the ack, not the data, was lost
			}
			next = append(next, idx)
		}
		pending = next
	}

	// Canonical per-destination order, matching Route's: by source, then
	// payload. With every packet delivered exactly once this makes the
	// result bit-identical to a clean Route of the same set.
	canonicalOrder(out)
	return out, agg, nil
}

// ReliableBroadcastAll is BroadcastAll under a fault plan: the one-round
// all-to-all announcement followed by targeted retransmissions to the
// (deterministically chosen) receiver pairs that missed it. A nil or
// fault-free plan delegates to BroadcastAll unchanged.
func ReliableBroadcastAll(n int, values []int64, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([]int64, ReliableResult, error) {
	return ReliableBroadcastAllVia(nil, n, values, ledger, tag, plan)
}

// ReliableBroadcastAllVia is ReliableBroadcastAll with the announcement and
// every retransmission wave physically carried by t, with the same
// bit-identity contract as ReliableRouteVia. A nil transport is plain
// ReliableBroadcastAll.
func ReliableBroadcastAllVia(t Transport, n int, values []int64, ledger *rounds.Ledger, tag string, plan *FaultPlan) ([]int64, ReliableResult, error) {
	var agg ReliableResult
	if !plan.messageFates() {
		vals, err := BroadcastAllVia(t, n, values, ledger, tag)
		agg.Attempts = 1
		return vals, agg, err
	}
	if len(values) != n {
		return nil, agg, fmt.Errorf("cc: %d values for %d nodes", len(values), n)
	}
	if err := plan.Validate(); err != nil {
		return nil, agg, err
	}
	// Wave 0: the plain broadcast round.
	vals, err := BroadcastAllVia(t, n, values, ledger, tag)
	if err != nil {
		return nil, agg, err
	}
	agg.Attempts = 1
	// Decide which ordered pairs missed the broadcast; any non-clean fate
	// forces a retransmission (corrupted and late copies are useless to the
	// receiver, duplicates are harmless).
	var failed []Packet
	for src := 0; src < n; src++ {
		for dst := 0; dst < n; dst++ {
			if src == dst {
				continue
			}
			kind, _ := plan.packetFate(src*n+dst, -1)
			switch kind {
			case faultDrop:
				agg.Faults.Dropped++
			case faultCorrupt:
				agg.Faults.Corrupted++
			case faultDelay:
				agg.Faults.Delayed++
			case faultDuplicate:
				agg.Faults.Duplicated++
				continue
			default:
				continue
			}
			failed = append(failed, Packet{Src: src, Dst: dst, Data: []int64{values[src]}})
		}
	}
	if len(failed) > 0 {
		_, res, err := reliableDeliver(n, failed, ledger, tag+"-retry", plan, routerFor(t, true))
		if err != nil {
			instrumentsFor(globalMetrics.Load()).recordReliable(agg, errors.Is(err, ErrDeliveryFailed))
			return nil, agg, err
		}
		agg.RouteResult = res.RouteResult
		agg.Attempts += res.Attempts
		agg.Retransmitted += int64(len(failed)) + res.Retransmitted
		agg.AckRounds += res.AckRounds
		agg.BackoffRounds += res.BackoffRounds
		agg.Faults.add(res.Faults)
	}
	instrumentsFor(globalMetrics.Load()).recordReliable(agg, false)
	return vals, agg, nil
}
