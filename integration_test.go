package lapcc_test

// End-to-end integration scenarios across the whole stack, exercising the
// public facade exactly as a downstream user would (see README quickstart).

import (
	"math"
	"testing"

	"lapcc/internal/core"
	"lapcc/internal/euler"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
)

// TestScenarioElectricalToFlow runs the two halves of the paper back to
// back on one graph family: first Laplacian solving on the undirected
// support, then exact max flow on a directed version — confirming the
// shared substrate works for both consumers.
func TestScenarioElectricalToFlow(t *testing.T) {
	// Undirected half: solve for potentials on a 2-cluster topology.
	g, err := graph.TwoClusters(24, 4, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[0] = 1
	b[g.N()-1] = -1
	lres, err := core.SolveLaplacianWith(g, b, 1e-8, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := linalg.NewLaplacian(g)
	lx := linalg.NewVec(g.N())
	l.Apply(lx, lres.X)
	if r := lx.Sub(b).Norm2(); r > 1e-6 {
		t.Fatalf("laplacian residual %v", r)
	}

	// Directed half: max flow across the same two-cluster shape via a
	// layered network.
	dg := graph.LayeredDAG(3, 5, 2, 7, 7)
	s, tt := 0, dg.N()-1
	want, _, err := maxflow.Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	fres, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fres.Value != want {
		t.Fatalf("flow %d != oracle %d", fres.Value, want)
	}
	if fres.Rounds.Total <= 0 {
		t.Fatal("no rounds accounted")
	}
}

// TestScenarioLogisticsPipeline models a small logistics problem: route
// supplies at min cost, then verify the same assignment by independent
// max-flow feasibility.
func TestScenarioLogisticsPipeline(t *testing.T) {
	// 5 depots ship one unit each to 5 stores over a sparse cost network.
	const depots, stores = 5, 5
	dg := graph.NewDi(depots + stores)
	sigma := make([]int64, depots+stores)
	costs := []int64{4, 9, 2, 7, 5, 8, 3, 6, 1, 10, 11, 2, 9, 4, 6}
	ci := 0
	for d := 0; d < depots; d++ {
		for k := 0; k < 3; k++ {
			dg.MustAddArc(d, depots+(d+k*2)%stores, 1, costs[ci%len(costs)])
			ci++
		}
		sigma[d] = 1
		sigma[depots+d]--
	}
	res, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	_, oracle, err := mcmf.Solve(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != oracle {
		t.Fatalf("cost %d != oracle %d", res.Cost, oracle)
	}
	// Feasibility cross-check: the chosen arcs form a perfect assignment,
	// i.e. a max flow of value = number of depots in the 0/1 network.
	used := graph.NewDi(depots + stores + 2)
	S, T := depots+stores, depots+stores+1
	for i, a := range dg.Arcs() {
		if res.Flow[i] == 1 {
			used.MustAddArc(a.From, a.To, 1, 0)
		}
	}
	for d := 0; d < depots; d++ {
		used.MustAddArc(S, d, 1, 0)
		used.MustAddArc(depots+d, T, 1, 0)
	}
	value, _, err := maxflow.Dinic(used, S, T)
	if err != nil {
		t.Fatal(err)
	}
	if value != depots {
		t.Fatalf("assignment routes %d of %d units", value, depots)
	}
}

// TestScenarioRoundingChain verifies the Theorem 1.4 -> Lemma 4.2 chain on
// a fractional flow produced by an electrical solve, mirroring how the IPMs
// consume rounding.
func TestScenarioRoundingChain(t *testing.T) {
	g, err := graph.RandomEulerian(48, 10, 4, 13)
	if err != nil {
		t.Fatal(err)
	}
	ores, err := core.EulerianOrientWith(g, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := euler.CheckOrientation(g, ores.Orient); v != -1 {
		t.Fatalf("unbalanced at %d", v)
	}

	// A fractional two-path s-t flow rounded to integers.
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 4, 1)
	dg.MustAddArc(1, 3, 4, 1)
	dg.MustAddArc(0, 2, 4, 5)
	dg.MustAddArc(2, 3, 4, 5)
	f := []float64{0.625, 0.625, 0.375, 0.375}
	rres, err := core.RoundFlowWith(core.RoundFlowRequest{Graph: dg, Flow: f, Source: 0, Sink: 3, Delta: 1.0 / 8, UseCosts: true}, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var value int64
	for _, ai := range dg.Out(0) {
		value += rres.Flow[ai]
	}
	if value < 1 {
		t.Fatalf("rounded value %d < input value 1", value)
	}
	// Cost-aware: the cheap path should win the rounded unit.
	var cost float64
	for i, a := range dg.Arcs() {
		cost += float64(a.Cost) * float64(rres.Flow[i])
	}
	inputCost := 0.625*2 + 0.375*10
	if cost > inputCost+1e-9 {
		t.Fatalf("rounded cost %v exceeds input %v", cost, inputCost)
	}
	if math.IsNaN(cost) {
		t.Fatal("nan cost")
	}
}
