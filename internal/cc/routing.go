package cc

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lapcc/internal/rounds"
)

// Packet is a source-routed message for the Lenzen routing primitive.
type Packet struct {
	Src, Dst int
	Data     []int64
}

// RouteResult reports how a routing invocation was executed and charged.
type RouteResult struct {
	// Executed is the number of rounds the simulator's two-phase relay
	// scheduler actually used.
	Executed int64
	// LinkMessages is the number of physical link messages moved (relay
	// hops count; locally-held packets do not) — the message-complexity
	// counterpart to the round counts.
	LinkMessages int64
	// Charged is the number of rounds recorded in the ledger:
	// min(Executed, rounds.LenzenRoundBound). Lenzen's theorem [Len13]
	// guarantees a (more intricate) deterministic scheduler delivers any
	// admissible message set in at most 16 rounds, so charging that bound
	// when our simple relay needs longer is faithful to the paper's
	// accounting; the Executed figure is kept for transparency.
	Charged int64
	// Overflowed records whether Executed exceeded the Lenzen bound.
	Overflowed bool
}

// ErrRoutingOverload reports a message set violating the admissibility
// condition of Lenzen routing: some node is the source or destination of
// more than n messages.
var ErrRoutingOverload = errors.New("cc: node exceeds n messages in routing instance")

// routeScratch holds the reusable working state of one Route invocation:
// count/offset tables, the counting-sort arenas that replace the old
// per-source and per-intermediate slice-of-slices, and the epoch-stamped
// per-destination multiplicity table that replaces the old per-intermediate
// map[int]int64. Instances are recycled through routePool so steady-state
// Route calls allocate only their output.
type routeScratch struct {
	srcCount, dstCount []int
	srcOff             []int
	interCount         []int
	interOff           []int
	bySrc              []Packet
	atInter            []Packet

	perDst      []int64
	perDstStamp []int64
	perDstEpoch int64
}

var routePool = sync.Pool{New: func() any { return new(routeScratch) }}

func (s *routeScratch) resize(n, m int) {
	if cap(s.srcCount) < n {
		s.srcCount = make([]int, n)
		s.dstCount = make([]int, n)
		s.srcOff = make([]int, n+1)
		s.interCount = make([]int, n)
		s.interOff = make([]int, n+1)
		s.perDst = make([]int64, n)
		s.perDstStamp = make([]int64, n)
		s.perDstEpoch = 0
	}
	s.srcCount = s.srcCount[:n]
	s.dstCount = s.dstCount[:n]
	s.srcOff = s.srcOff[:n+1]
	s.interCount = s.interCount[:n]
	s.interOff = s.interOff[:n+1]
	s.perDst = s.perDst[:n]
	s.perDstStamp = s.perDstStamp[:n]
	for i := 0; i < n; i++ {
		s.srcCount[i] = 0
		s.dstCount[i] = 0
		s.interCount[i] = 0
	}
	if cap(s.bySrc) < m {
		s.bySrc = make([]Packet, m)
		s.atInter = make([]Packet, m)
	}
	s.bySrc = s.bySrc[:m]
	s.atInter = s.atInter[:m]
}

// release zeroes the packet arenas' payload pointers so pooled scratch does
// not pin caller data, then returns the scratch to the pool.
func (s *routeScratch) release() {
	for i := range s.bySrc {
		s.bySrc[i] = Packet{}
	}
	for i := range s.atInter {
		s.atInter[i] = Packet{}
	}
	routePool.Put(s)
}

// Route delivers the packets on an n-clique using a two-phase relay
// (round-robin distribution to intermediates, then delivery), enforcing the
// model's one-message-per-ordered-pair-per-round constraint in every phase.
// It requires the Lenzen admissibility condition: every node is the source
// of at most n packets and the destination of at most n packets.
//
// The returned slice is indexed by destination; packets for the same
// destination preserve no particular order (the model delivers a round's
// messages as a set). The ledger, if non-nil, is charged Result.Charged
// measured rounds under the given tag.
func Route(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	s := routePool.Get().(*routeScratch)
	defer s.release()
	s.resize(n, len(packets))

	srcCount, dstCount := s.srcCount, s.dstCount
	for _, p := range packets {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			return nil, RouteResult{}, fmt.Errorf("%w: packet %d -> %d with n=%d", ErrBadRecipient, p.Src, p.Dst, n)
		}
		srcCount[p.Src]++
		dstCount[p.Dst]++
	}
	for v := 0; v < n; v++ {
		if srcCount[v] > n || dstCount[v] > n {
			return nil, RouteResult{}, fmt.Errorf("%w: node %d sends %d, receives %d (n=%d)",
				ErrRoutingOverload, v, srcCount[v], dstCount[v], n)
		}
	}

	// Phase 1 (1 round): source s relays its j-th packet to intermediate
	// (s+j+1) mod n; the ≤ n packets of one source go to distinct
	// intermediates, so each ordered pair carries at most one message.
	// Packets whose intermediate equals the source or the destination stay
	// put / go direct without consuming the pair twice.
	//
	// Grouping is a stable counting sort into the recycled bySrc arena, so
	// within a source the original packet order is preserved — the same
	// order the old slice-of-slices append produced.
	srcOff := s.srcOff
	sum := 0
	for v := 0; v < n; v++ {
		srcOff[v] = sum
		sum += srcCount[v]
	}
	srcOff[n] = sum
	bySrc := s.bySrc
	for _, p := range packets {
		bySrc[srcOff[p.Src]] = p
		srcOff[p.Src]++
	}
	// srcOff[v] now points one past source v's segment, i.e. at the start
	// index of v+1; recover segment starts from srcOff[v-1].
	var executed int64
	var linkMessages int64
	phase1Sent := false
	interCount := s.interCount
	segStart := 0
	for v := 0; v < n; v++ {
		for j := segStart; j < srcOff[v]; j++ {
			inter := (v + (j - segStart) + 1) % n
			if inter != v {
				phase1Sent = true
				linkMessages++
			}
			interCount[inter]++
		}
		segStart = srcOff[v]
	}
	if phase1Sent {
		executed++
	}
	interOff := s.interOff
	sum = 0
	for v := 0; v < n; v++ {
		interOff[v] = sum
		sum += interCount[v]
	}
	interOff[n] = sum
	atInter := s.atInter
	segStart = 0
	for v := 0; v < n; v++ {
		for j := segStart; j < srcOff[v]; j++ {
			inter := (v + (j - segStart) + 1) % n
			atInter[interOff[inter]] = bySrc[j]
			interOff[inter]++
		}
		segStart = srcOff[v]
	}

	// Phase 2: intermediates deliver to destinations, one message per
	// ordered pair per round. The number of rounds is the maximum, over
	// intermediates w, of the largest per-destination multiplicity at w.
	// The multiplicity table is a flat epoch-stamped array: bumping the
	// epoch per intermediate replaces clearing (or reallocating) a map.
	out := make([][]Packet, n)
	for d := 0; d < n; d++ {
		if dstCount[d] > 0 {
			out[d] = make([]Packet, 0, dstCount[d])
		}
	}
	var phase2 int64
	perDst, perDstStamp := s.perDst, s.perDstStamp
	segStart = 0
	for w := 0; w < n; w++ {
		s.perDstEpoch++
		for j := segStart; j < interOff[w]; j++ {
			p := atInter[j]
			if p.Dst == w {
				out[w] = append(out[w], p) // already local: no round needed
				continue
			}
			linkMessages++
			if perDstStamp[p.Dst] != s.perDstEpoch {
				perDstStamp[p.Dst] = s.perDstEpoch
				perDst[p.Dst] = 0
			}
			perDst[p.Dst]++
			if perDst[p.Dst] > phase2 {
				phase2 = perDst[p.Dst]
			}
			out[p.Dst] = append(out[p.Dst], p)
		}
		segStart = interOff[w]
	}
	executed += phase2

	res := RouteResult{Executed: executed, Charged: executed, LinkMessages: linkMessages}
	if executed > rounds.LenzenRoundBound {
		res.Charged = rounds.LenzenRoundBound
		res.Overflowed = true
	}
	if ledger != nil && res.Charged > 0 {
		ledger.Add(tag, rounds.Measured, res.Charged, rounds.CiteLenzen)
	}
	mi := instrumentsFor(globalMetrics.Load())
	if mi != nil || (ledger != nil && ledger.HasSink()) {
		var words int64
		for _, p := range packets {
			words += 1 + int64(len(p.Data))
		}
		if ledger != nil && ledger.HasSink() {
			ledger.AddTraffic(tag, res.LinkMessages, words)
		}
		mi.recordRoute(res, words)
	}
	// Deterministic per-destination order (by source, then payload) so the
	// overall simulation is reproducible even though the model itself
	// delivers unordered sets.
	canonicalOrder(out)
	return out, res, nil
}

// canonicalOrder sorts every destination's packets by (source, payload) —
// the deterministic order Route, the reliable layer, and the transport-backed
// variants all promise, which is what makes their outputs interchangeable.
func canonicalOrder(out [][]Packet) {
	for d := range out {
		sort.Slice(out[d], func(i, j int) bool {
			if out[d][i].Src != out[d][j].Src {
				return out[d][i].Src < out[d][j].Src
			}
			return lessData(out[d][i].Data, out[d][j].Data)
		})
	}
}

func lessData(a, b []int64) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// BroadcastAll performs the one-round primitive in which every node
// announces one word to all others; it returns the announced values and
// charges one measured round. This is the "each node broadcasts its ID"
// step used when constructing product demand graphs (Theorem 3.3).
func BroadcastAll(n int, values []int64, ledger *rounds.Ledger, tag string) ([]int64, error) {
	if len(values) != n {
		return nil, fmt.Errorf("cc: %d values for %d nodes", len(values), n)
	}
	if ledger != nil {
		ledger.Add(tag, rounds.Measured, 1, "all-to-all broadcast, 1 round")
	}
	if mi := instrumentsFor(globalMetrics.Load()); mi != nil {
		mi.broadcasts.Inc()
		mi.routeRounds.Inc()
		mi.routeMessages.Add(int64(n) * int64(n-1))
		mi.routeWords.Add(int64(n) * int64(n-1))
	}
	return append([]int64(nil), values...), nil
}
