package rounds

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
)

func TestLedgerAccumulates(t *testing.T) {
	l := New()
	l.Add("cheby-iter", Measured, 1, "")
	l.Add("cheby-iter", Measured, 1, "")
	l.Add("apsp", Charged, 5, CiteAPSP)
	if got := l.Total(); got != 7 {
		t.Fatalf("Total = %d, want 7", got)
	}
	if got := l.TotalOf(Measured); got != 2 {
		t.Fatalf("measured = %d, want 2", got)
	}
	if got := l.TotalOf(Charged); got != 5 {
		t.Fatalf("charged = %d, want 5", got)
	}
	es := l.Entries()
	if len(es) != 2 {
		t.Fatalf("entries = %d, want 2", len(es))
	}
	if es[0].Tag != "cheby-iter" || es[0].Calls != 2 {
		t.Fatalf("first entry = %+v", es[0])
	}
}

func TestLedgerReportMentionsCites(t *testing.T) {
	l := New()
	l.Add("apsp", Charged, 3, CiteAPSP)
	r := l.Report()
	if !strings.Contains(r, "CKKL+19") {
		t.Fatalf("report missing citation: %s", r)
	}
	if !strings.Contains(r, "charged 3") {
		t.Fatalf("report missing charged total: %s", r)
	}
}

func TestLedgerReset(t *testing.T) {
	l := New()
	l.Add("x", Measured, 1, "")
	l.Reset()
	if l.Total() != 0 || len(l.Entries()) != 0 {
		t.Fatal("reset did not clear ledger")
	}
}

func TestLedgerNegativeChargeRecordsError(t *testing.T) {
	l := New()
	l.Add("x", Measured, -1, "")
	if !errors.Is(l.Err(), ErrNegativeCharge) {
		t.Fatalf("Err() = %v, want ErrNegativeCharge", l.Err())
	}
	if l.Total() != 0 {
		t.Fatalf("offending record was applied: total %d", l.Total())
	}
	// The first error sticks; later ones do not overwrite it.
	l.Add("x", Charged, 1, "")
	l.Add("x", Measured, 1, "")
	if !errors.Is(l.Err(), ErrNegativeCharge) {
		t.Fatalf("first error lost: %v", l.Err())
	}
}

func TestLedgerNegativePanicsInDebug(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative charge should panic in debug mode")
		}
	}()
	l := New()
	l.SetDebug(true)
	l.Add("x", Measured, -1, "")
}

func TestLedgerConcurrent(t *testing.T) {
	l := New()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.Add("par", Measured, 1, "")
			}
		}()
	}
	wg.Wait()
	if got := l.Total(); got != 5000 {
		t.Fatalf("Total = %d, want 5000", got)
	}
}

func TestLedgerRejectsKindConflict(t *testing.T) {
	l := New()
	l.Add("apsp", Charged, 3, CiteAPSP)
	l.Add("apsp", Measured, 1, "")
	if !errors.Is(l.Err(), ErrKindConflict) {
		t.Fatalf("Err() = %v, want ErrKindConflict", l.Err())
	}
	if l.Total() != 3 {
		t.Fatalf("conflicting record was merged: total %d, want 3", l.Total())
	}
}

func TestLedgerKindConflictPanicsInDebug(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("kind conflict should panic in debug mode")
		}
	}()
	l := New()
	l.SetDebug(true)
	l.Add("apsp", Charged, 3, CiteAPSP)
	l.Add("apsp", Measured, 1, "")
}

// TestLedgerReportConsistentUnderConcurrentAdds hammers Add from many
// goroutines while repeatedly rendering reports; every report's header
// total must equal the sum of its own rows (the totals come from one
// snapshot, not three separate lock acquisitions). Run under -race this
// also stresses the locking itself.
func TestLedgerReportConsistentUnderConcurrentAdds(t *testing.T) {
	l := New()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tag := []string{"alpha", "beta", "gamma", "delta"}[i%4]
			kind := Measured
			if i%4 >= 2 {
				kind = Charged
			}
			for {
				select {
				case <-stop:
					return
				default:
					l.Add(tag, kind, 3, "")
				}
			}
		}(i)
	}
	for rep := 0; rep < 200; rep++ {
		r := l.Report()
		var headTotal, headMeasured, headCharged int64
		if _, err := fmt.Sscanf(r, "total rounds: %d (measured %d, charged %d)",
			&headTotal, &headMeasured, &headCharged); err != nil {
			t.Fatalf("unparseable report header: %v\n%s", err, r)
		}
		if headTotal != headMeasured+headCharged {
			t.Fatalf("header disagrees with itself: %d != %d + %d\n%s",
				headTotal, headMeasured, headCharged, r)
		}
		var rowTotal int64
		for _, line := range strings.Split(r, "\n")[1:] {
			if strings.TrimSpace(line) == "" {
				continue
			}
			var tag string
			var rounds, calls int64
			if _, err := fmt.Sscanf(line, "%s %d rounds %d calls", &tag, &rounds, &calls); err != nil {
				t.Fatalf("unparseable row %q: %v", line, err)
			}
			rowTotal += rounds
		}
		if rowTotal != headTotal {
			t.Fatalf("report header total %d disagrees with row sum %d:\n%s", headTotal, rowTotal, r)
		}
	}
	close(stop)
	wg.Wait()
}

func TestAPSPRounds(t *testing.T) {
	if got := APSPRounds(1); got != 1 {
		t.Fatalf("APSPRounds(1) = %d", got)
	}
	// n = 1000: 1000^0.158 ~ 2.98 -> 3.
	if got := APSPRounds(1000); got != 3 {
		t.Fatalf("APSPRounds(1000) = %d, want 3", got)
	}
	if APSPRounds(1_000_000) <= APSPRounds(1000) {
		t.Fatal("APSPRounds should grow with n")
	}
}

func TestTrivialGatherRounds(t *testing.T) {
	if got := TrivialGatherRounds(1, 100, 1); got != 0 {
		t.Fatalf("single node = %d, want 0", got)
	}
	// Dense graph: m = n(n-1)/2 with unit weights needs about 1 round of
	// words... n=10, m=45: words = 45*2 = 90, perRound = 90 -> 1.
	if got := TrivialGatherRounds(10, 45, 1); got != 1 {
		t.Fatalf("TrivialGatherRounds(10,45,1) = %d, want 1", got)
	}
	// Bigger weights need more words per edge.
	if TrivialGatherRounds(10, 45, 1<<40) <= TrivialGatherRounds(10, 45, 1) {
		t.Fatal("weight growth should increase rounds")
	}
}

func TestFordFulkersonRounds(t *testing.T) {
	if got := FordFulkersonRounds(10, 1000); got != 30 {
		t.Fatalf("FF rounds = %d, want 30", got)
	}
}

func TestExpanderDecompRounds(t *testing.T) {
	r1 := ExpanderDecompRounds(1000, 0.5, 0.1)
	r2 := ExpanderDecompRounds(1000, 0.25, 0.1)
	if r2 <= r1 {
		t.Fatal("smaller eps should cost more")
	}
	if ExpanderDecompRounds(1, 0.5, 0.1) != 1 {
		t.Fatal("n=1 should cost 1")
	}
}

func TestLogStar(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 2, 16: 3, 65536: 4}
	for n, want := range cases {
		if got := LogStar(n); got != want {
			t.Fatalf("LogStar(%d) = %d, want %d", n, got, want)
		}
	}
	if LogStar(1<<62) > 5 {
		t.Fatal("log* of any int should be <= 5")
	}
}

func TestKindString(t *testing.T) {
	if Measured.String() != "measured" || Charged.String() != "charged" {
		t.Fatal("Kind strings wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Fatal("unknown kind string wrong")
	}
}

func TestRelatedWorkFormulasShapes(t *testing.T) {
	// CONGEST costs must exceed clique-style costs and grow with n.
	if CongestLaplacianRounds(1024, 10, 1e-8) <= 302 {
		t.Fatal("CONGEST Laplacian formula implausibly small")
	}
	if CongestLaplacianRounds(4096, 12, 1e-8) <= CongestLaplacianRounds(256, 8, 1e-8) {
		t.Fatal("CONGEST Laplacian should grow with n")
	}
	if CongestMaxFlowRounds(4096, 8*4096, 8, 12) <= CongestMaxFlowRounds(256, 8*256, 8, 8) {
		t.Fatal("CONGEST max flow should grow with n")
	}
	if CongestMinCostFlowRounds(1024, 8192, 64, 10) <= 0 {
		t.Fatal("CONGEST min-cost formula non-positive")
	}
	// BCC sqrt(n) shape: quadrupling n roughly doubles the bound (up to
	// polylog drift).
	r1, r4 := BCCMinCostFlowRounds(1024), BCCMinCostFlowRounds(4096)
	if ratio := float64(r4) / float64(r1); ratio < 1.9 || ratio > 3.5 {
		t.Fatalf("BCC growth ratio %v, want ~2x per 4x n", ratio)
	}
}
