package experiments

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"lapcc/internal/cc"
	"lapcc/internal/graph"
	"lapcc/internal/mcmf"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
)

// --- E14 ------------------------------------------------------------------

// e14LiveMetrics exercises the observability path end to end: it starts the
// same debug HTTP server the -debug-addr flag starts, runs the min-cost
// flow solver under FaultPlans of increasing drop rate, and after each run
// scrapes /metrics over real HTTP — the way an operator (or Prometheus)
// would. The table shows the reliable-delivery counters read back from the
// scrape; their growth with the drop rate is the live-counter view of the
// same retransmission cost E13 measures from the ledger totals.
func e14LiveMetrics(w io.Writer, quick bool) error {
	drops := []float64{0, 0.005, 0.01, 0.02, 0.05}
	if quick {
		drops = []float64{0, 0.01, 0.05}
	}

	reg := metrics.NewRegistry()
	prev := cc.MetricsRegistry()
	cc.SetMetrics(reg) // route/reliable/fault counters come from the cc layer
	defer cc.SetMetrics(prev)
	srv, err := metrics.StartDebugServer("127.0.0.1:0", reg)
	if err != nil {
		return fmt.Errorf("e14: debug server: %w", err)
	}
	defer srv.Close()
	fmt.Fprintf(w, "debug server on http://%s; one /metrics scrape per run\n\n", srv.Addr())

	// The BENCH_faults.json min-cost workload: 6-vertex unit-capacity
	// demand instance, nearly all of whose measured rounds are routing —
	// exactly the rounds the reliable layer has to protect.
	instance := func() (*graph.DiGraph, []int64) {
		dg := graph.NewDi(6)
		dg.MustAddArc(0, 2, 1, 3)
		dg.MustAddArc(0, 3, 1, 1)
		dg.MustAddArc(1, 3, 1, 2)
		dg.MustAddArc(1, 4, 1, 4)
		dg.MustAddArc(3, 5, 1, 1)
		dg.MustAddArc(2, 5, 1, 2)
		dg.MustAddArc(4, 5, 1, 1)
		return dg, []int64{1, 1, 0, 0, 0, -2}
	}

	// Counters are cumulative across the sweep (one registry, like one
	// long-lived process): per-run figures are deltas between scrapes.
	tracked := []string{
		"lapcc_reliable_waves_total",
		"lapcc_reliable_retransmitted_packets_total",
		`lapcc_engine_faults_total{type="dropped"}`,
	}
	last := make(map[string]float64, len(tracked))

	fmt.Fprintf(w, "%8s %8s %10s %14s %10s\n", "drop", "rounds", "waves", "retransmitted", "dropped")
	var cleanRounds int64
	for _, d := range drops {
		var plan *cc.FaultPlan
		if d > 0 {
			plan = &cc.FaultPlan{Seed: 53, Drop: d}
		}
		dg, sigma := instance()
		led := rounds.New()
		if _, err := mcmf.MinCostFlow(dg, sigma, mcmf.Options{Ledger: led, Faults: plan, Metrics: reg}); err != nil {
			return fmt.Errorf("e14: drop=%g: %w", d, err)
		}
		if d == 0 {
			cleanRounds = led.Total()
		}
		scraped, err := scrapeMetrics("http://" + srv.Addr() + "/metrics")
		if err != nil {
			return fmt.Errorf("e14: scrape: %w", err)
		}
		delta := make(map[string]float64, len(tracked))
		for _, name := range tracked {
			v, ok := scraped[name]
			if !ok {
				return fmt.Errorf("e14: scrape missing %s", name)
			}
			delta[name] = v - last[name]
			last[name] = v
		}
		fmt.Fprintf(w, "%7.1f%% %8d %10.0f %14.0f %10.0f\n",
			100*d, led.Total(),
			delta["lapcc_reliable_waves_total"],
			delta["lapcc_reliable_retransmitted_packets_total"],
			delta[`lapcc_engine_faults_total{type="dropped"}`])
	}
	fmt.Fprintf(w, "\nclean run: %d rounds; every extra round in the sweep is retransmission\n", cleanRounds)
	fmt.Fprintln(w, "claim shape: the scraped retransmit-wave and dropped-packet counters grow")
	fmt.Fprintln(w, "with the drop rate, tracking the E13 ledger overheads — the live /metrics")
	fmt.Fprintln(w, "view and the round accounting agree on what fault tolerance costs.")
	return nil
}

// scrapeMetrics GETs a Prometheus text exposition and returns every sample
// line as "name" or `name{labels}` -> value.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	out := map[string]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		out[line[:i]] = v
	}
	return out, sc.Err()
}
