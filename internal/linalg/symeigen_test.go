package linalg

import (
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
)

func TestSymEigenDiagonal(t *testing.T) {
	d := NewDense(3)
	d.Set(0, 0, 3)
	d.Set(1, 1, 1)
	d.Set(2, 2, 2)
	lams, vecs, err := d.SymEigen()
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(lams[i]-want[i]) > 1e-10 {
			t.Fatalf("lams = %v, want %v", lams, want)
		}
	}
	// Eigenvectors must be orthonormal.
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			var dot float64
			for k := 0; k < 3; k++ {
				dot += vecs.At(k, i) * vecs.At(k, j)
			}
			want := 0.0
			if i == j {
				want = 1
			}
			if math.Abs(dot-want) > 1e-10 {
				t.Fatalf("vecs not orthonormal at (%d,%d): %v", i, j, dot)
			}
		}
	}
}

func TestSymEigenKnown2x2(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 0, 2)
	d.Set(0, 1, 1)
	d.Set(1, 0, 1)
	d.Set(1, 1, 2)
	lams, _, err := d.SymEigen()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lams[0]-1) > 1e-10 || math.Abs(lams[1]-3) > 1e-10 {
		t.Fatalf("lams = %v, want [1 3]", lams)
	}
}

func TestSymEigenLaplacianSpectrum(t *testing.T) {
	// Complete graph K_n: eigenvalues {0, n, ..., n}.
	n := 10
	lams, _, err := NewLaplacian(graph.Complete(n)).Dense().SymEigen()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lams[0]) > 1e-9 {
		t.Fatalf("smallest = %v, want 0", lams[0])
	}
	for i := 1; i < n; i++ {
		if math.Abs(lams[i]-float64(n)) > 1e-9 {
			t.Fatalf("lams[%d] = %v, want %d", i, lams[i], n)
		}
	}
}

func TestSymEigenReconstruction(t *testing.T) {
	// A = V diag(lams) V^T must reproduce the input.
	rng := rand.New(rand.NewSource(5))
	n := 12
	a := NewDense(n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			a.Set(i, j, v)
			a.Set(j, i, v)
		}
	}
	lams, vecs, err := a.SymEigen()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			for k := 0; k < n; k++ {
				s += vecs.At(i, k) * lams[k] * vecs.At(j, k)
			}
			if math.Abs(s-a.At(i, j)) > 1e-8 {
				t.Fatalf("reconstruction off at (%d,%d): %v vs %v", i, j, s, a.At(i, j))
			}
		}
	}
}

func TestSymEigenRejectsAsymmetric(t *testing.T) {
	d := NewDense(2)
	d.Set(0, 1, 1)
	if _, _, err := d.SymEigen(); err == nil {
		t.Fatal("asymmetric matrix accepted")
	}
}

func TestPencilEigenDenseScaledPair(t *testing.T) {
	g, err := graph.ConnectedGNM(14, 30, 9)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(g)
	h := graph.New(g.N())
	for _, e := range g.Edges() {
		h.MustAddEdge(e.U, e.V, 4*e.W)
	}
	lams, err := PencilEigenDense(lg.Dense(), NewLaplacian(h).Dense(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	for _, lam := range lams {
		if math.Abs(lam-0.25) > 1e-8 {
			t.Fatalf("pencil eigenvalue %v, want 0.25", lam)
		}
	}
}

// The decisive test: the iterative pencil estimators against the dense
// oracle on the perturbed-sandwich family.
func TestPencilEstimatorsAgainstDenseOracle(t *testing.T) {
	g, err := graph.ConnectedGNM(20, 45, 23)
	if err != nil {
		t.Fatal(err)
	}
	lg := NewLaplacian(graph.WithRandomWeights(g, 5, 24))
	const p = 0.5
	h := graph.New(g.N())
	for i, e := range lg.Graph().Edges() {
		w := e.W
		if i%2 == 0 {
			w *= 1 + p
		} else {
			w /= 1 + p
		}
		h.MustAddEdge(e.U, e.V, w)
	}
	lh := NewLaplacian(h)
	exact, err := PencilEigenDense(lg.Dense(), lh.Dense(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	exLo, exHi := exact[0], exact[len(exact)-1]

	aSolve := LaplacianCGSolver(lg, 1e-12)
	bSolve := LaplacianCGSolver(lh, 1e-12)
	pLo, pHi, err := PencilBounds(lg, lh, aSolve, bSolve, 500)
	if err != nil {
		t.Fatal(err)
	}
	lLo, lHi, err := PencilBoundsLanczos(lg, lh, aSolve, bSolve, 40)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exact [%v, %v]; power [%v, %v]; lanczos [%v, %v]", exLo, exHi, pLo, pHi, lLo, lHi)
	for name, got := range map[string][2]float64{
		"power":   {pLo, pHi},
		"lanczos": {lLo, lHi},
	} {
		// Estimators approach from inside; they must stay within the exact
		// interval and find most of it.
		if got[0] < exLo-1e-6 || got[1] > exHi+1e-6 {
			t.Fatalf("%s [%v, %v] escapes exact [%v, %v]", name, got[0], got[1], exLo, exHi)
		}
		if got[1] < 0.9*exHi || got[0] > 1.2*exLo {
			t.Fatalf("%s [%v, %v] misses the exact extremes [%v, %v]", name, got[0], got[1], exLo, exHi)
		}
	}
}
