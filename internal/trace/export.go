package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// JSONL event records. One struct per event kind so encoding/json emits a
// fixed field order; none carries a wall-clock field, which is what makes
// the JSONL stream byte-identical across runs of the same seeded workload.

type jsonlBegin struct {
	Ev     string `json:"ev"`
	Seq    int    `json:"seq"`
	Span   int    `json:"span"`
	Parent int    `json:"parent"`
	Name   string `json:"name"`
	Path   string `json:"path"`
}

type jsonlEnd struct {
	Ev       string `json:"ev"`
	Seq      int    `json:"seq"`
	Span     int    `json:"span"`
	Measured int64  `json:"measured"`
	Charged  int64  `json:"charged"`
}

type jsonlCost struct {
	Ev     string `json:"ev"`
	Seq    int    `json:"seq"`
	Span   int    `json:"span"`
	Tag    string `json:"tag"`
	Kind   string `json:"kind"`
	Rounds int64  `json:"rounds"`
}

type jsonlTraffic struct {
	Ev       string `json:"ev"`
	Seq      int    `json:"seq"`
	Span     int    `json:"span"`
	Tag      string `json:"tag"`
	Messages int64  `json:"messages"`
	Words    int64  `json:"words"`
}

type jsonlRound struct {
	Ev       string `json:"ev"`
	Seq      int    `json:"seq"`
	Span     int    `json:"span"`
	Messages int64  `json:"messages"`
	Words    int64  `json:"words"`
	MaxOut   int    `json:"maxOut"`
	MaxIn    int    `json:"maxIn"`
}

type jsonlMark struct {
	Ev      string `json:"ev"`
	Seq     int    `json:"seq"`
	Span    int    `json:"span"`
	Name    string `json:"name"`
	Barrier uint64 `json:"barrier"`
	Epoch   uint64 `json:"epoch"`
	Node    int    `json:"node"`
}

// WriteJSONL writes the event stream as one JSON object per line, in
// recording order with explicit sequence numbers. The stream is
// deterministic: it carries span structure and costs but no wall-clock
// fields, so two runs of the same seeded workload produce byte-identical
// output. A nil tracer writes nothing.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return nil
	}
	spans, evs, _, _ := t.snapshot()
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw) // Encoder appends the newline per record
	for seq, ev := range evs {
		var rec any
		switch ev.kind {
		case evBegin:
			s := spans[ev.span]
			parent := -1
			if s.parent != nil {
				parent = s.parent.id
			}
			rec = jsonlBegin{Ev: "begin", Seq: seq, Span: s.id, Parent: parent, Name: s.name, Path: s.path}
		case evEnd:
			s := spans[ev.span]
			rec = jsonlEnd{Ev: "end", Seq: seq, Span: s.id, Measured: s.measured, Charged: s.charged}
		case evCost:
			rec = jsonlCost{Ev: "cost", Seq: seq, Span: ev.span, Tag: ev.tag, Kind: ev.costKind.String(), Rounds: ev.rounds}
		case evTraffic:
			rec = jsonlTraffic{Ev: "traffic", Seq: seq, Span: ev.span, Tag: ev.tag, Messages: ev.messages, Words: ev.words}
		case evRound:
			rec = jsonlRound{Ev: "round", Seq: seq, Span: ev.span, Messages: ev.messages, Words: ev.words, MaxOut: ev.maxOut, MaxIn: ev.maxIn}
		case evMark:
			rec = jsonlMark{Ev: "mark", Seq: seq, Span: ev.span, Name: ev.tag, Barrier: ev.barrier, Epoch: ev.epoch, Node: ev.node}
		default:
			return fmt.Errorf("trace: unknown event kind %v", ev.kind)
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Caveat on evEnd above: the end record reports the span's *final* totals
// (stable across runs), not a mid-stream snapshot, because costs recorded
// after a forgiving close would otherwise make the stream order-sensitive.

// Chrome trace_event records, per the Trace Event Format spec. Complete
// ("X") events carry each span; instant ("i") events mark ledger costs.
// Timestamps are microseconds of wall clock, so this export is not
// deterministic — it exists to be *looked at* in chrome://tracing or
// Perfetto, not diffed.

type chromeEvent struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat"`
	Ph    string         `json:"ph"`
	Ts    float64        `json:"ts"`
	Dur   *float64       `json:"dur,omitempty"`
	Scope string         `json:"s,omitempty"`
	Pid   int            `json:"pid"`
	Tid   int            `json:"tid"`
	Args  map[string]any `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

func usec(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }

// WriteChromeTrace writes the span tree in Chrome trace_event JSON
// (object form, {"traceEvents": [...]}), loadable in chrome://tracing and
// Perfetto. Spans become complete ("X") events on one track; ledger costs
// become instant ("i") events. A nil tracer writes an empty trace.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	file := chromeFile{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if t != nil {
		spans, evs, _, _ := t.snapshot()
		for i := range spans {
			s := &spans[i]
			dur := usec(s.end - s.start)
			file.TraceEvents = append(file.TraceEvents, chromeEvent{
				Name: s.name, Cat: "span", Ph: "X",
				Ts: usec(s.start), Dur: &dur, Pid: 1, Tid: 1,
				Args: map[string]any{
					"path":         s.path,
					"measured":     s.measured,
					"charged":      s.charged,
					"engineRounds": s.engineRounds,
					"messages":     s.messages,
					"words":        s.words,
					"maxOut":       s.maxOut,
					"maxIn":        s.maxIn,
				},
			})
		}
		for _, ev := range evs {
			switch ev.kind {
			case evCost:
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: ev.tag, Cat: "cost", Ph: "i",
					Ts: usec(ev.at), Scope: "t", Pid: 1, Tid: 1,
					Args: map[string]any{
						"kind":   ev.costKind.String(),
						"rounds": ev.rounds,
					},
				})
			case evMark:
				file.TraceEvents = append(file.TraceEvents, chromeEvent{
					Name: ev.tag, Cat: "mark", Ph: "i",
					Ts: usec(ev.at), Scope: "g", Pid: 1, Tid: 1,
					Args: map[string]any{
						"barrier": ev.barrier,
						"epoch":   ev.epoch,
						"node":    ev.node,
					},
				})
			}
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// phaseAgg aggregates spans sharing one path for the summary table.
type phaseAgg struct {
	path     string
	calls    int
	measured int64
	charged  int64
	messages int64
	wall     time.Duration
}

// Summary renders a per-phase table: spans aggregated by path in
// first-opened order, with the unattributed bucket and the attribution
// fraction appended. It replaces ad-hoc per-experiment printing. A nil
// tracer summarizes to a single line.
func (t *Tracer) Summary() string {
	if t == nil {
		return "trace: disabled\n"
	}
	spans, _, unM, unC := t.snapshot()
	byPath := map[string]*phaseAgg{}
	var order []string
	for i := range spans {
		s := &spans[i]
		a, ok := byPath[s.path]
		if !ok {
			a = &phaseAgg{path: s.path}
			byPath[s.path] = a
			order = append(order, s.path)
		}
		a.calls++
		a.measured += s.measured
		a.charged += s.charged
		a.messages += s.messages
		a.wall += s.end - s.start
	}
	var attributed int64
	for _, p := range order {
		attributed += byPath[p].measured + byPath[p].charged
	}
	unattributed := unM + unC
	total := attributed + unattributed

	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %6s %10s %10s %12s %12s\n",
		"span", "calls", "measured", "charged", "messages", "wall")
	for _, p := range order {
		a := byPath[p]
		fmt.Fprintf(&b, "%-44s %6d %10d %10d %12d %12s\n",
			indentPath(a.path), a.calls, a.measured, a.charged, a.messages, a.wall.Round(time.Microsecond))
	}
	if unattributed > 0 {
		fmt.Fprintf(&b, "%-44s %6s %10d %10d\n", "(unattributed)", "", unM, unC)
	}
	if total > 0 {
		fmt.Fprintf(&b, "attributed to spans: %d/%d rounds (%.1f%%)\n",
			attributed, total, 100*float64(attributed)/float64(total))
	} else {
		fmt.Fprintf(&b, "attributed to spans: no rounds recorded\n")
	}
	return b.String()
}

// indentPath renders "a/b/c" as "    c" style nesting for the table while
// keeping leaf names readable.
func indentPath(path string) string {
	depth := strings.Count(path, "/")
	if depth == 0 {
		return path
	}
	leaf := path[strings.LastIndexByte(path, '/')+1:]
	return strings.Repeat("  ", depth) + leaf
}

// Phases returns the aggregated per-path rows of Summary for programmatic
// use, sorted by descending total rounds.
func (t *Tracer) Phases() []PhaseStats {
	if t == nil {
		return nil
	}
	spans, _, _, _ := t.snapshot()
	byPath := map[string]*phaseAgg{}
	var order []string
	for i := range spans {
		s := &spans[i]
		a, ok := byPath[s.path]
		if !ok {
			a = &phaseAgg{path: s.path}
			byPath[s.path] = a
			order = append(order, s.path)
		}
		a.calls++
		a.measured += s.measured
		a.charged += s.charged
		a.messages += s.messages
		a.wall += s.end - s.start
	}
	out := make([]PhaseStats, 0, len(order))
	for _, p := range order {
		a := byPath[p]
		out = append(out, PhaseStats{
			Path: a.path, Calls: a.calls,
			MeasuredRounds: a.measured, ChargedRounds: a.charged,
			Messages: a.messages, WallTime: a.wall,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return out[i].MeasuredRounds+out[i].ChargedRounds > out[j].MeasuredRounds+out[j].ChargedRounds
	})
	return out
}

// PhaseStats is one aggregated row of the per-phase summary.
type PhaseStats struct {
	Path           string
	Calls          int
	MeasuredRounds int64
	ChargedRounds  int64
	Messages       int64
	WallTime       time.Duration
}
