package linalg

import (
	"sync/atomic"

	"lapcc/internal/metrics"
)

// The linalg metrics binding mirrors the cc package's: one process-wide
// registry installed with SetMetrics, instruments resolved once per registry
// and cached behind an atomic pointer, and a disabled registry costing a
// single atomic load plus nil check per kernel call. Per-kernel counters are
// the live counterpart of the scaling benchmarks: they say which kernels the
// solver stack is actually leaning on while a run is in flight.

// globalMetrics is the process-wide registry for linalg kernel accounting.
var globalMetrics atomic.Pointer[metrics.Registry]

// globalInstr caches the instruments resolved from globalMetrics.
var globalInstr atomic.Pointer[linalgInstruments]

// Kernel identifiers for the per-kernel call counters.
const (
	kernelApply = iota
	kernelDot
	kernelSum
	kernelAXPY
	kernelScale
	kernelRemoveMean
	numKernels
)

var kernelNames = [numKernels]string{
	kernelApply:      "apply",
	kernelDot:        "dot",
	kernelSum:        "sum",
	kernelAXPY:       "axpy",
	kernelScale:      "scale",
	kernelRemoveMean: "remove_mean",
}

// linalgInstruments is every instrument the package records into, resolved
// once per registry.
type linalgInstruments struct {
	reg     *metrics.Registry
	kernels [numKernels]*metrics.Counter
	forCall *metrics.Counter
}

// SetMetrics installs reg as the process-wide metrics registry for the
// linalg kernels (Laplacian.Apply and the pooled Vec kernels). A nil reg
// disables recording. Safe for concurrent use; kernels pick up the change
// on their next call.
func SetMetrics(reg *metrics.Registry) {
	globalMetrics.Store(reg)
	globalInstr.Store(nil)
}

// MetricsRegistry returns the registry installed by SetMetrics (nil when
// disabled).
func MetricsRegistry() *metrics.Registry { return globalMetrics.Load() }

func resolveLinalgInstruments(reg *metrics.Registry) *linalgInstruments {
	in := &linalgInstruments{reg: reg}
	for k := 0; k < numKernels; k++ {
		in.kernels[k] = reg.Counter("lapcc_linalg_kernel_calls_total",
			"Numerical kernel invocations, by kernel.", "kernel", kernelNames[k])
	}
	in.forCall = reg.Counter("lapcc_linalg_parallel_dispatch_total",
		"Blocked loops dispatched onto a worker pool (sequential runs excluded).")
	return in
}

// instruments returns the cached instruments for the global registry,
// resolving them on first use after SetMetrics. Nil when disabled.
func instruments() *linalgInstruments {
	reg := globalMetrics.Load()
	if reg == nil {
		return nil
	}
	if in := globalInstr.Load(); in != nil && in.reg == reg {
		return in
	}
	in := resolveLinalgInstruments(reg)
	globalInstr.Store(in)
	return in
}

// kernelCalls counts one invocation of the given kernel. No-op when metrics
// are disabled.
func kernelCalls(kernel int) {
	if in := instruments(); in != nil {
		in.kernels[kernel].Inc()
	}
}

// dispatchCount counts one pooled (non-sequential) blocked-loop dispatch.
func dispatchCount() {
	if in := instruments(); in != nil {
		in.forCall.Inc()
	}
}
