package trace

import (
	"strings"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/rounds"
)

func TestNilTracerIsSafeAndSilent(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	sp := tr.Start("a")
	if sp != nil {
		t.Fatal("nil tracer returned a non-nil span")
	}
	sp = tr.Startf("b-%d", 7)
	if sp != nil {
		t.Fatal("nil tracer Startf returned a non-nil span")
	}
	sp.End() // must not panic
	if sp.Name() != "" || sp.Path() != "" {
		t.Fatal("nil span has a name or path")
	}
	tr.RoundCost("x", rounds.Measured, 3)
	tr.LinkTraffic("x", 1, 2)
	if tr.Attach(rounds.New()) != nil {
		t.Fatal("nil tracer Attach returned non-nil")
	}
	if tr.Observer() != nil {
		t.Fatal("nil tracer Observer must return nil to keep the engine fast path")
	}
	if tr.SpanCount() != 0 {
		t.Fatal("nil tracer has spans")
	}
	if f := tr.AttributedFraction(); f != 1 {
		t.Fatalf("nil tracer attribution %v, want 1", f)
	}
	if got := tr.Summary(); got != "trace: disabled\n" {
		t.Fatalf("nil tracer summary %q", got)
	}
	if tr.Phases() != nil {
		t.Fatal("nil tracer has phases")
	}
}

func TestAttachNilLedgerDoesNotInstallSink(t *testing.T) {
	tr := New()
	if tr.Attach(nil) != tr {
		t.Fatal("Attach(nil) must return the tracer unchanged")
	}
	var nilTr *Tracer
	led := rounds.New()
	nilTr.Attach(led)
	if led.HasSink() {
		t.Fatal("nil tracer must not be installed as a ledger sink")
	}
}

func TestSpanNestingAndPaths(t *testing.T) {
	tr := New()
	a := tr.Start("a")
	b := tr.Start("b")
	c := tr.Startf("c-%d", 1)
	if got := c.Path(); got != "a/b/c-1" {
		t.Fatalf("path %q, want a/b/c-1", got)
	}
	c.End()
	b.End()
	if got := tr.Start("d").Path(); got != "a/d" {
		t.Fatalf("path after closing b: %q, want a/d", got)
	}
	a.End() // forgiving close of d too
	if got := tr.Start("root2").Path(); got != "root2" {
		t.Fatalf("path after closing root: %q, want root2", got)
	}
	if n := tr.SpanCount(); n != 5 {
		t.Fatalf("span count %d, want 5", n)
	}
}

func TestForgivingEndClosesDescendants(t *testing.T) {
	tr := New()
	a := tr.Start("a")
	tr.Start("b")
	tr.Start("c")
	a.End()
	spans, _, _, _ := tr.snapshot()
	for _, s := range spans {
		if s.open {
			t.Fatalf("span %s still open after closing the root", s.path)
		}
	}
	a.End() // double End is a no-op
	if got := tr.Start("x").Path(); got != "x" {
		t.Fatalf("new span path %q, want root x", got)
	}
}

func TestEndOffChainClosesOnlyItself(t *testing.T) {
	tr := New()
	a := tr.Start("a")
	a.End()
	b := tr.Start("b")
	inner := tr.Start("inner")
	a.End() // a is already closed and off the chain: no-op
	spans, _, _, _ := tr.snapshot()
	if !spans[b.id].open || !spans[inner.id].open {
		t.Fatal("ending a closed span disturbed the open chain")
	}
}

func TestCostAttribution(t *testing.T) {
	tr := New()
	led := rounds.New()
	tr.Attach(led)

	led.Add("pre", rounds.Measured, 2, "before any span")
	sp := tr.Start("work")
	led.Add("inside", rounds.Measured, 5, "in span")
	led.Add("cited", rounds.Charged, 7, "in span")
	inner := tr.Start("inner")
	led.Add("deep", rounds.Measured, 1, "in inner")
	inner.End()
	sp.End()
	led.Add("post", rounds.Charged, 3, "after all spans")

	att, unatt := tr.AttributedRounds()
	if att != 13 || unatt != 5 {
		t.Fatalf("attributed %d unattributed %d, want 13 and 5", att, unatt)
	}
	spans, _, _, _ := tr.snapshot()
	if spans[sp.id].measured != 5 || spans[sp.id].charged != 7 {
		t.Fatalf("outer span got measured=%d charged=%d, want 5 and 7",
			spans[sp.id].measured, spans[sp.id].charged)
	}
	if spans[inner.id].measured != 1 {
		t.Fatalf("inner span measured %d, want 1", spans[inner.id].measured)
	}
	if f := tr.AttributedFraction(); f <= 0.7 || f >= 0.73 {
		t.Fatalf("fraction %v, want 13/18", f)
	}
}

func TestTrafficAttribution(t *testing.T) {
	tr := New()
	led := rounds.New()
	tr.Attach(led)
	if !led.HasSink() {
		t.Fatal("Attach did not install the sink")
	}
	sp := tr.Start("route")
	led.AddTraffic("lenzen", 10, 40)
	sp.End()
	spans, _, _, _ := tr.snapshot()
	if spans[sp.id].messages != 10 || spans[sp.id].words != 40 {
		t.Fatalf("span traffic %d msgs %d words, want 10 and 40",
			spans[sp.id].messages, spans[sp.id].words)
	}
}

func TestObserverAttribution(t *testing.T) {
	tr := New()
	obs := tr.Observer()
	sp := tr.Start("engine")
	obs(cc.RoundStats{Round: 0, Messages: 6, Words: 12, MaxOut: 3, MaxIn: 2})
	obs(cc.RoundStats{Round: 1, Messages: 4, Words: 4, MaxOut: 1, MaxIn: 4})
	sp.End()
	spans, _, _, _ := tr.snapshot()
	s := spans[sp.id]
	if s.engineRounds != 2 || s.messages != 10 || s.words != 16 || s.maxOut != 3 || s.maxIn != 4 {
		t.Fatalf("engine attribution %+v", s)
	}
}

func TestSummaryAggregatesByPath(t *testing.T) {
	tr := New()
	led := rounds.New()
	tr.Attach(led)
	for i := 0; i < 3; i++ {
		sp := tr.Start("phase")
		led.Add("tag", rounds.Measured, 2, "why")
		sp.End()
	}
	sum := tr.Summary()
	if !strings.Contains(sum, "phase") || !strings.Contains(sum, "attributed to spans: 6/6 rounds (100.0%)") {
		t.Fatalf("summary:\n%s", sum)
	}
	ph := tr.Phases()
	if len(ph) != 1 || ph[0].Calls != 3 || ph[0].MeasuredRounds != 6 {
		t.Fatalf("phases %+v", ph)
	}
}

// TestDisabledTracerAllocatesNothing is the acceptance bar for threading
// tracers through hot paths unconditionally: the nil fast path must not
// allocate.
func TestDisabledTracerAllocatesNothing(t *testing.T) {
	var tr *Tracer
	led := rounds.New()
	allocs := testing.AllocsPerRun(1000, func() {
		tr.Attach(led)
		sp := tr.Startf("span-%d", 17)
		tr.RoundCost("tag", rounds.Measured, 1)
		tr.LinkTraffic("tag", 1, 1)
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %v per op, want 0", allocs)
	}
}
