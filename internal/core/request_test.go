package core

import (
	"errors"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// Do must be a pure dispatcher: for every op, the response carries exactly
// the result the typed entry point returns, bit for bit.
func TestDoMatchesTypedEntryPoints(t *testing.T) {
	g, err := graph.RandomRegular(32, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(32)
	b[0], b[31] = 1, -1

	direct, err := SolveLaplacianWith(g.Clone(), b, 1e-8, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := Do(Request{Op: OpSolve, Graph: g.Clone(), Args: Args{B: b, Eps: 1e-8}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Op != OpSolve || resp.Laplacian == nil {
		t.Fatalf("bad response shape: %+v", resp)
	}
	for i := range direct.X {
		if resp.Laplacian.X[i] != direct.X[i] {
			t.Fatalf("x[%d]: Do %v != typed %v", i, resp.Laplacian.X[i], direct.X[i])
		}
	}
	if resp.Rounds != resp.Laplacian.Rounds {
		t.Fatal("Response.Rounds must mirror the result's report")
	}
	if resp.Rounds.Total != direct.Rounds.Total || resp.Rounds.Charged != direct.Rounds.Charged {
		t.Fatalf("rounds: Do %+v != typed %+v", resp.Rounds, direct.Rounds)
	}

	dg := graph.LayeredDAG(2, 4, 2, 6, 3)
	s, tt := 0, dg.N()-1
	mfDirect, err := MaxFlowWith(dg, s, tt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mfResp, err := Do(Request{Op: OpMaxFlow, DiGraph: dg, Args: Args{Source: s, Sink: tt}})
	if err != nil {
		t.Fatal(err)
	}
	if mfResp.MaxFlow == nil || mfResp.MaxFlow.Value != mfDirect.Value {
		t.Fatalf("maxflow: Do %+v != typed %+v", mfResp.MaxFlow, mfDirect)
	}
	for i := range mfDirect.Flow {
		if mfResp.MaxFlow.Flow[i] != mfDirect.Flow[i] {
			t.Fatalf("flow[%d] differs", i)
		}
	}
}

// Every malformed request must fail Validate with an error wrapping
// ErrBadRequest, before any solver is constructed.
func TestRequestValidation(t *testing.T) {
	g, err := graph.RandomRegular(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	dg := graph.LayeredDAG(2, 2, 2, 4, 1)
	cases := []struct {
		name string
		req  Request
	}{
		{"unknown op", Request{Op: Op("bogus")}},
		{"solve without graph", Request{Op: OpSolve, Args: Args{Eps: 1e-8}}},
		{"solve bad rhs length", Request{Op: OpSolve, Graph: g, Args: Args{B: linalg.NewVec(3), Eps: 1e-8}}},
		{"solve bad eps", Request{Op: OpSolve, Graph: g, Args: Args{B: linalg.NewVec(16), Eps: 2}}},
		{"sparsify without graph", Request{Op: OpSparsify}},
		{"maxflow without digraph", Request{Op: OpMaxFlow}},
		{"maxflow equal poles", Request{Op: OpMaxFlow, DiGraph: dg, Args: Args{Source: 1, Sink: 1}}},
		{"mincost bad sigma", Request{Op: OpMinCostFlow, DiGraph: dg, Args: Args{Sigma: []int64{1}}}},
		{"roundflow bad flow length", Request{Op: OpRoundFlow, DiGraph: dg, Args: Args{Sink: 1, Delta: 0.5, Flow: []float64{1}}}},
		{"roundflow bad delta", Request{Op: OpRoundFlow, DiGraph: dg, Args: Args{Sink: 1, Flow: make([]float64, dg.M())}}},
	}
	for _, tc := range cases {
		if _, err := Do(tc.req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
}
