package sparsify

import (
	"errors"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

func TestSparsifyRejectsEmpty(t *testing.T) {
	if _, err := Sparsify(graph.New(4), Options{}); !errors.Is(err, ErrEmptyGraph) {
		t.Fatalf("error = %v, want ErrEmptyGraph", err)
	}
}

func TestSparsifyKeepsVertexSetAndConnectivity(t *testing.T) {
	g, err := graph.RandomRegular(96, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.N() != g.N() {
		t.Fatalf("sparsifier has n=%d, want %d", res.H.N(), g.N())
	}
	if !res.H.IsConnected() {
		t.Fatal("sparsifier of a connected graph must be connected")
	}
	if res.LeftoverEdges != 0 {
		t.Fatalf("%d leftover edges on a healthy run", res.LeftoverEdges)
	}
}

func TestSparsifyShrinksDenseGraphs(t *testing.T) {
	// On a clique, the sparsifier must be much smaller than m = n(n-1)/2.
	g := graph.Complete(128)
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.M() >= g.M()/2 {
		t.Fatalf("sparsifier has %d edges for input %d; expected substantial shrinkage", res.H.M(), g.M())
	}
	t.Logf("K128: m=%d sparsifier=%d levels=%d parts=%d", g.M(), res.H.M(), res.Levels, res.Parts)
}

func TestSparsifyAlphaModerate(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    func() *graph.Graph
	}{
		{"complete64", func() *graph.Graph { return graph.Complete(64) }},
		{"regular", func() *graph.Graph {
			g, err := graph.RandomRegular(80, 8, 11)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"twoClusters", func() *graph.Graph {
			g, err := graph.TwoClusters(40, 6, 2, 13)
			if err != nil {
				t.Fatal(err)
			}
			return g
		}},
		{"grid", func() *graph.Graph { return graph.Grid(9, 9) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			g := tc.g()
			res, err := Sparsify(g, Options{})
			if err != nil {
				t.Fatal(err)
			}
			alpha, err := MeasureAlpha(g, res.H, 200)
			if err != nil {
				t.Fatal(err)
			}
			t.Logf("%s: m=%d -> %d edges, alpha=%.2f", tc.name, g.M(), res.H.M(), alpha)
			if alpha > 1e4 {
				t.Fatalf("alpha = %v is uselessly large", alpha)
			}
		})
	}
}

func TestSparsifySandwichOnRandomVectors(t *testing.T) {
	g, err := graph.RandomRegular(64, 6, 17)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := MeasureAlpha(g, res.H, 250)
	if err != nil {
		t.Fatal(err)
	}
	lg := linalg.NewLaplacian(g)
	lh := linalg.NewLaplacian(res.H)
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 30; trial++ {
		x := linalg.NewVec(g.N())
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		qg, qh := lg.Quad(x), lh.Quad(x)
		if qh == 0 {
			continue
		}
		ratio := qg / qh
		if ratio > alpha*1.01 || ratio < 1/(alpha*1.01) {
			t.Fatalf("trial %d: Rayleigh ratio %v outside [1/%v, %v]", trial, ratio, alpha, alpha)
		}
	}
}

func TestSparsifyWeightedClasses(t *testing.T) {
	// Weights spanning several binary classes must still give a finite,
	// moderate alpha.
	base, err := graph.RandomRegular(60, 6, 23)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.WithRandomWeights(base, 64, 29)
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.H.IsConnected() {
		t.Fatal("sparsifier disconnected")
	}
	alpha, err := MeasureAlpha(g, res.H, 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("weighted: m=%d -> %d edges, alpha=%.2f", g.M(), res.H.M(), alpha)
	if alpha > 1e4 {
		t.Fatalf("alpha = %v too large", alpha)
	}
}

func TestSparsifyChargesRounds(t *testing.T) {
	g := graph.Complete(48)
	led := rounds.New()
	if _, err := Sparsify(g, Options{Ledger: led}); err != nil {
		t.Fatal(err)
	}
	if led.TotalOf(rounds.Charged) == 0 {
		t.Fatal("no charged decomposition rounds recorded")
	}
	if led.TotalOf(rounds.Measured) == 0 {
		t.Fatal("no measured broadcast rounds recorded")
	}
}

func TestSparsifySmallGraphExact(t *testing.T) {
	// Tiny parts keep exact product demand graphs; alpha should be small.
	g := graph.Complete(12)
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	alpha, err := MeasureAlpha(g, res.H, 300)
	if err != nil {
		t.Fatal(err)
	}
	if alpha > 10 {
		t.Fatalf("alpha = %v for K12; expected close to 1", alpha)
	}
}

func TestMeasureAlphaDimensionMismatch(t *testing.T) {
	if _, err := MeasureAlpha(graph.Complete(4), graph.Complete(5), 50); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestMeasureAlphaLanczosAgreesWithPowerIteration(t *testing.T) {
	g, err := graph.RandomRegular(72, 8, 33)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	aPow, err := MeasureAlpha(g, res.H, 250)
	if err != nil {
		t.Fatal(err)
	}
	aLan, err := MeasureAlphaLanczos(g, res.H, 60)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("alpha: power=%.3f lanczos=%.3f", aPow, aLan)
	// Both measure the same pencil; they must agree within the estimators'
	// slack (Lanczos usually sees slightly more of the spectrum).
	if aLan < aPow*0.8 || aLan > aPow*1.5 {
		t.Fatalf("estimators disagree: power=%v lanczos=%v", aPow, aLan)
	}
}

func TestMeasureAlphaLanczosDimensionMismatch(t *testing.T) {
	if _, err := MeasureAlphaLanczos(graph.Complete(4), graph.Complete(5), 20); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

// Ground truth for the alpha measurement: the dense generalized-eigenvalue
// oracle on a real sparsifier pencil. This pins that MeasureAlpha is
// neither optimistic (missing spectrum) nor the Lanczos artifacts real.
func TestMeasureAlphaAgainstDenseOracle(t *testing.T) {
	g, err := graph.RandomRegular(72, 8, 33)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Sparsify(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	exact, err := linalg.PencilEigenDense(
		linalg.NewLaplacian(g).Dense(), linalg.NewLaplacian(res.H).Dense(), 1e-10)
	if err != nil {
		t.Fatal(err)
	}
	exLo, exHi := exact[0], exact[len(exact)-1]
	exactAlpha := linalg.EffectiveAlpha(exLo, exHi)
	measured, err := MeasureAlpha(g, res.H, 250)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("exact pencil [%v, %v] -> alpha %.3f; MeasureAlpha %.3f", exLo, exHi, exactAlpha, measured)
	if measured < exactAlpha/1.3 {
		t.Fatalf("MeasureAlpha %v underestimates exact %v", measured, exactAlpha)
	}
	if measured > exactAlpha*1.3 {
		t.Fatalf("MeasureAlpha %v overestimates exact %v", measured, exactAlpha)
	}
}
