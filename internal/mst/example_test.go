package mst_test

import (
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/mst"
)

// ExampleBoruvka computes a spanning tree of a weighted triangle with the
// congested-clique Boruvka algorithm.
func ExampleBoruvka() {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 3)
	res, _ := mst.Boruvka(g, nil)
	fmt.Println("tree weight:", res.Weight)
	// Output: tree weight: 3
}
