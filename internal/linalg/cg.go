package linalg

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoConvergence reports that an iterative solver hit its iteration cap
// before reaching the requested tolerance.
var ErrNoConvergence = errors.New("linalg: iterative solver did not converge")

// ErrStagnated reports that an iterative solver's residual plateaued: the
// best residual seen failed to improve meaningfully over a trailing window
// of iterations. Callers distinguish it from ErrNoConvergence because a
// plateau means more iterations will not help — the cure is a better
// preconditioner or an exact solve, not a larger iteration cap.
var ErrStagnated = errors.New("linalg: iterative solver stagnated")

// stagnationImprovement is the minimum relative improvement of the best
// residual that counts as progress for plateau detection: anything below 1%
// per window is treated as noise around a floor.
const stagnationImprovement = 0.01

// CGOptions configures conjugate-gradient solves.
type CGOptions struct {
	// Tol is the relative residual tolerance ||b - Ax|| <= Tol * ||b||.
	// Zero means 1e-12.
	Tol float64
	// MaxIter caps iterations. Zero means 20*n + 200.
	MaxIter int
	// Precond, if non-nil, holds the diagonal of a Jacobi preconditioner;
	// entries must be positive.
	Precond Vec
	// ProjectMean, when true, keeps iterates orthogonal to the all-ones
	// vector — required when A is a connected graph's Laplacian so that CG
	// computes the pseudoinverse action.
	ProjectMean bool
	// X0, if non-nil, warm-starts the iteration from the given guess
	// instead of zero (the session layer seeds it with the previous solve's
	// potentials). X0 is read, never modified. Convergence is still judged
	// by the true relative residual ||b - Ax|| / ||b||, so a warm start can
	// only reduce the iteration count, never the achieved accuracy.
	X0 Vec
	// Scratch, if non-nil, provides reusable internal work vectors, removing
	// the per-call scratch allocations. The solution vector is still
	// allocated fresh — it is handed to the caller. Intended for session
	// layers issuing many solves of one dimension; the arithmetic is
	// unchanged, so results are bit-identical with or without it.
	Scratch *CGScratch
	// StagnationWindow, when positive, enables plateau detection: if the
	// best relative residual fails to improve by at least 1% over that many
	// consecutive iterations, SolveCG aborts with an error unwrapping to
	// ErrStagnated instead of burning the remaining iteration budget. The
	// guarded-recovery ladder in lapsolver uses this to escalate early.
	// Zero disables the check.
	StagnationWindow int
	// Pool, if non-nil, runs the solve's vector kernels (dots, AXPYs, mean
	// projections, the preconditioner sweep) on the given worker pool. The
	// iteration is bit-identical with and without a pool — reductions use the
	// fixed-block schedule of parallel.go either way — so Pool only changes
	// wall clock, never results. Nil runs sequentially.
	Pool *Pool
}

// CGScratch holds SolveCG's internal work vectors across calls. The zero
// value is ready to use; vectors are (re)allocated on first use or on a
// dimension change. A CGScratch must not be shared by concurrent solves.
type CGScratch struct {
	rhs, r, z, p, ap Vec
}

// take returns *v resized to n, allocating only when the dimension changed.
func (s *CGScratch) take(v *Vec, n int) Vec {
	if len(*v) != n {
		*v = NewVec(n)
	}
	return *v
}

// CGResult reports how a CG solve went.
type CGResult struct {
	Iterations int
	Residual   float64 // final relative residual
}

// SolveCG solves A x = b for a symmetric positive (semi-)definite operator
// using preconditioned conjugate gradients. For Laplacians, set
// opts.ProjectMean and pass a right-hand side orthogonal to the all-ones
// vector (SolveCG projects b defensively as well).
func SolveCG(a Operator, b Vec, opts CGOptions) (Vec, CGResult, error) {
	n := a.Dim()
	if len(b) != n {
		return nil, CGResult{}, fmt.Errorf("linalg: rhs length %d for operator dimension %d", len(b), n)
	}
	tol := opts.Tol
	if tol == 0 {
		tol = 1e-12
	}
	maxIter := opts.MaxIter
	if maxIter == 0 {
		maxIter = 20*n + 200
	}

	scratch := opts.Scratch
	if scratch == nil {
		scratch = &CGScratch{}
	}
	pool := opts.Pool

	rhs := scratch.take(&scratch.rhs, n)
	copy(rhs, b)
	if opts.ProjectMean {
		pool.RemoveMean(rhs)
	}
	bnorm := pool.Norm2(rhs)
	x := NewVec(n)
	if bnorm == 0 {
		return x, CGResult{}, nil
	}
	if opts.X0 != nil {
		if len(opts.X0) != n {
			return nil, CGResult{}, fmt.Errorf("linalg: warm start length %d for operator dimension %d", len(opts.X0), n)
		}
		copy(x, opts.X0)
		if opts.ProjectMean {
			pool.RemoveMean(x)
		}
	}

	applyPrecond := func(dst, r Vec) {
		if opts.Precond == nil {
			copy(dst, r)
			return
		}
		pool.Range(len(dst), func(lo, hi int) {
			d, rs, pc := dst[lo:hi], r[lo:hi], opts.Precond[lo:hi]
			for i := range d {
				d[i] = rs[i] / pc[i]
			}
		})
	}

	r := scratch.take(&scratch.r, n)
	copy(r, rhs)
	z := scratch.take(&scratch.z, n)
	z.Zero()
	if opts.X0 != nil {
		// r = b - A x0; from here the iteration is the standard one.
		a.Apply(z, x)
		pool.AXPY(r, -1, z)
		if opts.ProjectMean {
			pool.RemoveMean(r)
		}
		if res := pool.Norm2(r) / bnorm; res <= tol {
			return x, CGResult{Iterations: 0, Residual: res}, nil
		}
		z.Zero()
	}
	applyPrecond(z, r)
	if opts.ProjectMean {
		pool.RemoveMean(z)
	}
	p := scratch.take(&scratch.p, n)
	copy(p, z)
	ap := scratch.take(&scratch.ap, n)
	rz := pool.Dot(r, z)

	var res CGResult
	bestRes := math.Inf(1)
	bestIter := 0
	for k := 0; k < maxIter; k++ {
		a.Apply(ap, p)
		pap := pool.Dot(p, ap)
		if pap <= 0 {
			// Numerically singular direction; bail with what we have.
			res.Iterations = k
			res.Residual = pool.Norm2(r) / bnorm
			if res.Residual <= tol {
				return x, res, nil
			}
			return x, res, fmt.Errorf("%w: curvature %v at iteration %d (residual %v)",
				ErrNoConvergence, pap, k, res.Residual)
		}
		alpha := rz / pap
		pool.AXPY(x, alpha, p)
		pool.AXPY(r, -alpha, ap)
		if opts.ProjectMean {
			pool.RemoveMean(r)
		}
		res.Iterations = k + 1
		res.Residual = pool.Norm2(r) / bnorm
		if res.Residual <= tol {
			if opts.ProjectMean {
				pool.RemoveMean(x)
			}
			return x, res, nil
		}
		if opts.StagnationWindow > 0 {
			if res.Residual < bestRes*(1-stagnationImprovement) {
				bestRes = res.Residual
				bestIter = k
			} else if k-bestIter >= opts.StagnationWindow {
				if opts.ProjectMean {
					pool.RemoveMean(x)
				}
				return x, res, fmt.Errorf("%w: residual stuck at %v for %d iterations (best %v at iteration %d)",
					ErrStagnated, res.Residual, k-bestIter, bestRes, bestIter+1)
			}
		}
		applyPrecond(z, r)
		if opts.ProjectMean {
			pool.RemoveMean(z)
		}
		rzNew := pool.Dot(r, z)
		beta := rzNew / rz
		rz = rzNew
		pool.Range(n, func(lo, hi int) {
			ps, zs := p[lo:hi], z[lo:hi]
			for i := range ps {
				ps[i] = zs[i] + beta*ps[i]
			}
		})
	}
	if opts.ProjectMean {
		pool.RemoveMean(x)
	}
	return x, res, fmt.Errorf("%w: residual %v after %d iterations (tol %v)",
		ErrNoConvergence, res.Residual, res.Iterations, tol)
}

// LaplacianCGSolver returns a high-precision internal solver for a graph
// Laplacian: a closure mapping b to an approximate L^+ b. It uses Jacobi-
// preconditioned CG with mean projection. This models a node solving a
// globally-known sparsifier internally, which costs zero communication
// rounds in the congested clique.
func LaplacianCGSolver(l *Laplacian, tol float64) func(Vec) (Vec, error) {
	precond := l.Degrees().Clone()
	for i := range precond {
		if precond[i] <= 0 {
			precond[i] = 1 // isolated vertex: identity row in the preconditioner
		}
	}
	return func(b Vec) (Vec, error) {
		x, _, err := SolveCG(l, b, CGOptions{Tol: tol, Precond: precond, ProjectMean: true, Pool: l.Pool()})
		if err != nil {
			return nil, fmt.Errorf("linalg: internal sparsifier solve: %w", err)
		}
		return x, nil
	}
}
