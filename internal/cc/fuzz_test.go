package cc

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"testing"
)

// FuzzReliableFrameCodec fuzzes the reliable layer's frame format: any
// (src, dst, seq, payload) must survive encode/decode bit-exactly, and any
// single-bit corruption of the frame must be detected by the checksum.
func FuzzReliableFrameCodec(f *testing.F) {
	f.Add(0, 1, 0, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	f.Add(3, 3, 7, []byte{}) // zero-length self-send
	f.Add(200, 0, 1<<20, []byte{255, 255, 255, 255, 255, 255, 255, 255, 0, 0, 0, 0, 0, 0, 0, 1})
	f.Fuzz(func(t *testing.T, src, dst, seq int, raw []byte) {
		if seq < 0 {
			seq = -seq
		}
		if seq < 0 { // math.MinInt negation overflow
			seq = 0
		}
		if len(raw) > 8*64 {
			raw = raw[:8*64]
		}
		payload := make([]int64, len(raw)/8)
		for i := range payload {
			payload[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
		}
		p := Packet{Src: src, Dst: dst, Data: payload}
		frame := encodeReliable(p, seq)
		gotSeq, gotPayload, ok := decodeReliable(Packet{Src: src, Dst: dst, Data: frame})
		if !ok {
			t.Fatalf("clean frame rejected: src=%d dst=%d seq=%d", src, dst, seq)
		}
		if gotSeq != int64(seq) {
			t.Fatalf("seq round trip: %d != %d", gotSeq, seq)
		}
		if len(gotPayload) != len(payload) {
			t.Fatalf("payload length: %d != %d", len(gotPayload), len(payload))
		}
		for i := range payload {
			if gotPayload[i] != payload[i] {
				t.Fatalf("payload word %d: %d != %d", i, gotPayload[i], payload[i])
			}
		}
		// Truncated frames are rejected, never sliced out of range.
		for cut := 0; cut < reliableHeaderWords && cut < len(frame); cut++ {
			if _, _, ok := decodeReliable(Packet{Src: src, Dst: dst, Data: frame[:cut]}); ok {
				t.Fatalf("truncated frame of %d words accepted", cut)
			}
		}
		// Single bit flips are detected.
		for w := 0; w < len(frame); w++ {
			bit := uint(seq+w) % 64
			frame[w] ^= 1 << bit
			if _, _, ok := decodeReliable(Packet{Src: src, Dst: dst, Data: frame}); ok {
				t.Fatalf("bit flip in word %d undetected", w)
			}
			frame[w] ^= 1 << bit
		}
	})
}

// FuzzRouteRoundTrip fuzzes the routing primitives end to end: an arbitrary
// byte string decodes to a packet set (in-range and out-of-range endpoints,
// zero-length payloads, self-sends), and Route, RouteBatched, and
// ReliableRoute must either reject the set (bad endpoints) or deliver
// exactly the input multiset — with the reliable layer bit-identical to the
// clean one.
func FuzzRouteRoundTrip(f *testing.F) {
	f.Add(uint8(4), uint8(0), []byte{0, 1, 1, 2, 2, 3})
	f.Add(uint8(3), uint8(3), []byte{0, 0, 0})  // self-send, zero payload
	f.Add(uint8(2), uint8(50), []byte{0, 7, 1}) // out-of-range destination
	f.Add(uint8(8), uint8(10), []byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Fuzz(func(t *testing.T, nRaw, seed uint8, raw []byte) {
		n := 2 + int(nRaw%7) // 2..8 nodes
		if len(raw) > 96 {
			raw = raw[:96]
		}
		var pkts []Packet
		valid := true
		srcLoad := make([]int, n)
		dstLoad := make([]int, n)
		for i := 0; i+1 < len(raw); i += 3 {
			src, dst := int(raw[i]), int(raw[i+1])
			// Map most packets into range, but let some stay wild so the
			// error path is exercised too.
			if src >= 2*n {
				src %= n
			}
			if dst >= 2*n {
				dst %= n
			}
			if src < 0 || src >= n || dst < 0 || dst >= n {
				valid = false
			} else {
				srcLoad[src]++
				dstLoad[dst]++
			}
			var data []int64
			if i+2 < len(raw) && raw[i+2]%3 != 0 { // every third packet: zero-length
				data = []int64{int64(raw[i+2]), int64(i)}
			}
			pkts = append(pkts, Packet{Src: src, Dst: dst, Data: data})
		}
		// Route (unlike RouteBatched) requires Lenzen admissibility: every
		// node sources and receives at most n packets.
		admissible := true
		for v := 0; v < n; v++ {
			if srcLoad[v] > n || dstLoad[v] > n {
				admissible = false
			}
		}
		canon := func(out [][]Packet) []string {
			var s []string
			for d, inbox := range out {
				for _, p := range inbox {
					s = append(s, fmt.Sprintf("%d|%d|%v", d, p.Src, p.Data))
				}
			}
			sort.Strings(s)
			return s
		}
		want := make([]string, 0, len(pkts))
		for _, p := range pkts {
			want = append(want, fmt.Sprintf("%d|%d|%v", p.Dst, p.Src, p.Data))
		}
		sort.Strings(want)

		check := func(name string, needsAdmissible bool, out [][]Packet, err error) {
			if !valid {
				if err == nil {
					t.Fatalf("%s accepted out-of-range endpoints", name)
				}
				return
			}
			if needsAdmissible && !admissible {
				if !errors.Is(err, ErrRoutingOverload) {
					t.Fatalf("%s on overloaded set: want ErrRoutingOverload, got %v", name, err)
				}
				return
			}
			if err != nil {
				t.Fatalf("%s rejected a valid set: %v", name, err)
			}
			got := canon(out)
			if len(got) != len(want) {
				t.Fatalf("%s delivered %d packets, want %d", name, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s multiset differs at %d: %q vs %q", name, i, got[i], want[i])
				}
			}
		}
		out, _, err := Route(n, pkts, nil, "fuzz")
		check("Route", true, out, err)
		out, _, err = RouteBatched(n, pkts, nil, "fuzz")
		check("RouteBatched", false, out, err)
		plan := &FaultPlan{Seed: uint64(seed), Drop: 0.1, Corrupt: 0.05, Duplicate: 0.05, Delay: 0.05}
		rout, _, err := ReliableRouteBatched(n, pkts, nil, "fuzz", plan)
		check("ReliableRouteBatched", false, rout, err)
	})
}
