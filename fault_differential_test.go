package lapcc_test

// Differential fault-injection tests: every headline algorithm must produce
// a bit-identical answer when its network primitives run under a lossy
// FaultPlan with the reliable retransmission layer, paying only extra
// rounds. This is the acceptance gate of the robustness subsystem — faults
// may cost rounds, never correctness.

import (
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// dropPlan is the canonical 1%-drop plan of the differential suite (same
// rate BENCH_faults.json reports overhead for).
func dropPlan(seed uint64) *cc.FaultPlan {
	return &cc.FaultPlan{Seed: seed, Drop: 0.01}
}

func TestFaultDifferentialLapsolver(t *testing.T) {
	g, err := graph.ConnectedGNM(48, 140, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1
	clean, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Faults: dropPlan(101)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.X {
		if clean.X[i] != faulty.X[i] {
			t.Fatalf("potentials diverge at %d: %v != %v", i, clean.X[i], faulty.X[i])
		}
	}
	if faulty.Rounds.Total < clean.Rounds.Total {
		t.Fatalf("faulty run cheaper than clean: %d < %d rounds", faulty.Rounds.Total, clean.Rounds.Total)
	}
}

func TestFaultDifferentialMaxflow(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	s, tt := 0, dg.N()-1
	clean, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Faults: dropPlan(102)})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Value != faulty.Value {
		t.Fatalf("values diverge: %d != %d", clean.Value, faulty.Value)
	}
	for i := range clean.Flow {
		if clean.Flow[i] != faulty.Flow[i] {
			t.Fatalf("flows diverge at arc %d", i)
		}
	}
	if faulty.Rounds.Total < clean.Rounds.Total {
		t.Fatalf("faulty run cheaper than clean: %d < %d rounds", faulty.Rounds.Total, clean.Rounds.Total)
	}
}

func TestFaultDifferentialMinCostFlow(t *testing.T) {
	dg := graph.NewDi(6)
	dg.MustAddArc(0, 2, 1, 3)
	dg.MustAddArc(0, 3, 1, 1)
	dg.MustAddArc(1, 3, 1, 2)
	dg.MustAddArc(1, 4, 1, 4)
	dg.MustAddArc(3, 5, 1, 1)
	dg.MustAddArc(2, 5, 1, 2)
	dg.MustAddArc(4, 5, 1, 1)
	sigma := []int64{1, 1, 0, 0, 0, -2}
	clean, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := core.MinCostFlowWith(dg, sigma, core.RunOptions{Faults: dropPlan(103)})
	if err != nil {
		t.Fatal(err)
	}
	if clean.Cost != faulty.Cost {
		t.Fatalf("costs diverge: %d != %d", clean.Cost, faulty.Cost)
	}
	for i := range clean.Flow {
		if clean.Flow[i] != faulty.Flow[i] {
			t.Fatalf("flows diverge at arc %d", i)
		}
	}
	if faulty.Rounds.Total < clean.Rounds.Total {
		t.Fatalf("faulty run cheaper than clean: %d < %d rounds", faulty.Rounds.Total, clean.Rounds.Total)
	}
}

func TestFaultDifferentialEuler(t *testing.T) {
	g, err := graph.RandomEulerian(32, 8, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	clean, err := core.EulerianOrientWith(g, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := core.EulerianOrientWith(g, core.RunOptions{Faults: dropPlan(104)})
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean.Orient {
		if clean.Orient[i] != faulty.Orient[i] {
			t.Fatalf("orientations diverge at edge %d", i)
		}
	}
	if faulty.Rounds.Total < clean.Rounds.Total {
		t.Fatalf("faulty run cheaper than clean: %d < %d rounds", faulty.Rounds.Total, clean.Rounds.Total)
	}
}

// TestFaultDifferentialSeedSweep re-runs the lapsolver differential across
// several plan seeds: determinism must hold for every fault pattern, not one
// lucky draw. `make stress` runs this under -race.
func TestFaultDifferentialSeedSweep(t *testing.T) {
	g, err := graph.ConnectedGNM(32, 90, 19)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(32)
	b[0], b[31] = 1, -1
	clean, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []uint64{1, 7, 42, 1000, 65537} {
		faulty, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{
			Faults: &cc.FaultPlan{Seed: seed, Drop: 0.02, Corrupt: 0.005, Duplicate: 0.01, Delay: 0.01},
		})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range clean.X {
			if clean.X[i] != faulty.X[i] {
				t.Fatalf("seed %d: potentials diverge at %d", seed, i)
			}
		}
	}
}
