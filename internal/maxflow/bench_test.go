package maxflow

import (
	"testing"

	"lapcc/internal/electrical"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// The session/fresh-build pair behind BENCH_solver.json: the same full IPM
// run (FastSolve path), differing only in whether each iteration's
// electrical solve reuses the build-once session or rebuilds the support
// graph and Laplacian from scratch. Charged rounds are identical by
// construction (see TestMaxFlowSessionMatchesFreshBuild); the benchmark
// isolates the wall-clock and allocation win.

func benchIPMInstance() (*graph.DiGraph, int, int) {
	return graph.RandomDiGraph(96, 800, 23, 1, 9), 0, 95
}

func benchIPM(b *testing.B, fresh bool) {
	dg, s, t := benchIPMInstance()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := MaxFlow(dg, s, t, Options{FastSolve: true, FreshBuild: fresh})
		if err != nil {
			b.Fatal(err)
		}
		if res.Value == 0 {
			b.Fatal("degenerate instance")
		}
	}
}

func BenchmarkIPMSession(b *testing.B)    { benchIPM(b, false) }
func BenchmarkIPMFreshBuild(b *testing.B) { benchIPM(b, true) }

// The solve-sequence pair isolates exactly what the session layer replaces:
// the per-iteration support-graph + Laplacian construction and electrical
// solve. A real FastSolve run's (w, b) schedule is captured once through the
// solveHook seam, then replayed through each path. The whole-run pair above
// includes the one-time final rounding stage, which dominates wall clock and
// masks the per-iteration win.

type solveCall struct {
	w    []float64
	b    linalg.Vec
	slot string
}

func captureSolveSequence(b *testing.B) (*ipmState, []solveCall) {
	dg, s, t := benchIPMInstance()
	opts := Options{FastSolve: true}
	opts.defaults()
	fstar, _, err := Dinic(dg, s, t)
	if err != nil {
		b.Fatal(err)
	}
	st, err := newIPMState(dg, s, t, fstar, opts)
	if err != nil {
		b.Fatal(err)
	}
	var seq []solveCall
	st.solveHook = func(w []float64, rhs linalg.Vec, slot string) {
		wc := make([]float64, len(w))
		copy(wc, w)
		seq = append(seq, solveCall{wc, rhs.Clone(), slot})
	}
	res := &Result{Flow: make([]int64, dg.M())}
	if err := st.run(res); err != nil {
		b.Fatal(err)
	}
	if len(seq) == 0 {
		b.Fatal("captured no solves")
	}
	freshState := func() *ipmState {
		st, err := newIPMState(dg, s, t, fstar, opts)
		if err != nil {
			b.Fatal(err)
		}
		return st
	}
	return freshState(), seq
}

func BenchmarkIPMSolveSequenceSession(b *testing.B) {
	proto, seq := captureSolveSequence(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st := *proto
		st.sess = nil // build once per replay, reweight thereafter
		for _, c := range seq {
			if _, err := st.sessionSolve(c.w, c.b, c.slot); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkIPMSolveSequenceFreshBuild(b *testing.B) {
	proto, seq := captureSolveSequence(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range seq {
			if _, err := proto.solveFreshBaseline(c.w, c.b); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// The serving configuration: same captured workload through an
// electrical.Session with WarmStart, each solve seeded from the previous
// potentials of its slot. Answers hold the same eps certificate and the
// Theorem 1.1 round formula charges per solve call, so charged totals match
// the cold paths; only wall clock moves. The shipping IPM keeps WarmStart
// off so its trajectory stays bit-identical to the fresh build (see
// sessionSolve); this benchmark is the repeated-solve workload where that
// constraint does not apply.
func BenchmarkIPMSolveSequenceSessionWarm(b *testing.B) {
	proto, seq := captureSolveSequence(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sess, err := electrical.NewSession(proto.supportGraph(seq[0].w), electrical.SessionOptions{WarmStart: true})
		if err != nil {
			b.Fatal(err)
		}
		for j, c := range seq {
			if j > 0 {
				if err := sess.Reweight(c.w); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := sess.Potentials(c.b, proto.opts.SolveEps, c.slot); err != nil {
				b.Fatal(err)
			}
		}
	}
}
