package cc

import (
	"fmt"
	"testing"

	"lapcc/internal/metrics"
)

// broadcastStyleStep returns the benchmark workload of the acceptance
// criteria: an n-node broadcast-style program in which every node sends a
// 3-word message to every other node for rounds rounds — the densest legal
// traffic pattern the model admits (full all-to-all each round). The
// payload slice is passed through with ... so the caller allocates nothing
// per send; all remaining allocation cost is the engine's own.
func broadcastStyleStep(n, rounds int) Step {
	payload := []int64{1, 2, 3}
	return func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round >= rounds {
			return true
		}
		for v := 0; v < n; v++ {
			if v != node {
				send(v, payload...)
			}
		}
		return false
	}
}

// BenchmarkEngineRun compares the worker-pool engine (default and
// sequential modes) against the retained legacy map-based implementation on
// the n=256 broadcast-style program. The parallel/sequential variants reuse
// one Engine across iterations, which is the production pattern and what
// makes the steady state allocation-free.
func BenchmarkEngineRun(b *testing.B) {
	const n = 256
	const rounds = 4
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			e := NewEngine(n)
			if _, err := e.runReference(broadcastStyleStep(n, rounds), rounds+1); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, mode := range []string{"sequential", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			e := NewEngine(n)
			if mode == "sequential" {
				e.SetSequential(true)
			}
			step := broadcastStyleStep(n, rounds)
			if _, err := e.Run(step, rounds+1); err != nil { // warm the recycled buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(step, rounds+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRunMetrics measures the metrics registry's overhead on
// the engine hot path: the same n=256 broadcast-style program as
// BenchmarkEngineRun, once with metrics disabled (the default — one nil
// check per round) and once recording into a live registry (atomic adds
// into pre-resolved instruments plus the per-round payload-word scan).
// Both variants must stay at the engine's steady-state allocation floor.
func BenchmarkEngineRunMetrics(b *testing.B) {
	const n = 256
	const rounds = 4
	for _, variant := range []string{"disabled", "enabled"} {
		b.Run(variant, func(b *testing.B) {
			e := NewEngine(n)
			e.SetSequential(true)
			if variant == "enabled" {
				e.SetMetrics(metrics.NewRegistry())
			}
			step := broadcastStyleStep(n, rounds)
			if _, err := e.Run(step, rounds+1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := e.Run(step, rounds+1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineRunSparse is the light-traffic counterpart: each node
// talks to 8 neighbors per round, the shape of the repo's ring/relay
// primitives.
func BenchmarkEngineRunSparse(b *testing.B) {
	const n = 256
	const rounds = 16
	payload := []int64{7, 8}
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round >= rounds {
			return true
		}
		for i := 1; i <= 8; i++ {
			send((node+i)%n, payload...)
		}
		return false
	}
	e := NewEngine(n)
	if _, err := e.Run(step, rounds+1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(step, rounds+1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRoute measures the Lenzen relay on an admissible all-to-many
// instance: every node sends one packet to each of 32 destinations.
func BenchmarkRoute(b *testing.B) {
	for _, n := range []int{64, 256} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			payload := []int64{1, 2}
			pkts := make([]Packet, 0, 32*n)
			for s := 0; s < n; s++ {
				for k := 0; k < 32; k++ {
					pkts = append(pkts, Packet{Src: s, Dst: (s + 1 + k) % n, Data: payload})
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := Route(n, pkts, nil, ""); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkRouteBatched measures the batching wrapper on an inadmissible
// instance (one hot source) that splits into several Route batches.
func BenchmarkRouteBatched(b *testing.B) {
	const n = 128
	payload := []int64{3}
	pkts := make([]Packet, 0, 4*n)
	for k := 0; k < 4*n; k++ {
		pkts = append(pkts, Packet{Src: 0, Dst: 1 + k%(n-1), Data: payload})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := RouteBatched(n, pkts, nil, ""); err != nil {
			b.Fatal(err)
		}
	}
}
