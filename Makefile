# Build/verify entry points. `make check` is the CI gate: it checks
# formatting, vets, builds, runs the full test suite under the race detector
# (continuously validating the parallel engine and the concurrent round
# ledger), and smoke-runs every benchmark once so the benchmark programs
# themselves cannot rot.

GO ?= go

.PHONY: all build fmt-check vet test race bench-smoke bench-engine bench-baseline bench-solver check experiments trace-smoke stress bench-faults

all: build

build:
	$(GO) build ./...

# Fail if any file is not gofmt-clean (prints the offenders).
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every benchmark exactly once as a smoke test (no timing fidelity).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The engine/routing microbenchmarks behind BENCH_engine.json.
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngineRun|BenchmarkRoute' -benchmem -benchtime 2s ./internal/cc/

# Refresh the recorded baseline (see BENCH_engine.json for the format).
bench-baseline:
	$(GO) test -run xxx -bench 'BenchmarkEngineRun|BenchmarkRoute' -benchmem -benchtime 2s ./internal/cc/ | tee /tmp/bench_engine.txt

# The session-layer benchmarks behind BENCH_solver.json: build-once/solve-many
# vs rebuild-per-solve through the max-flow IPM and the many-RHS solver.
bench-solver:
	$(GO) test -run xxx -bench 'BenchmarkIPM|BenchmarkSolverSession' -benchmem -benchtime 2s ./internal/maxflow/ ./internal/lapsolver/

experiments:
	$(GO) run ./cmd/experiments

# Fault-injection stress gate: the differential suite (bit-identical outputs
# under lossy FaultPlans, multiple plan seeds) plus the fault/reliable-layer
# unit tests, all under the race detector. See DESIGN.md §9.
stress:
	$(GO) test -race -count=1 -run 'FaultDifferential' .
	$(GO) test -race -count=1 -run 'Fault|Reliable|Stall|Crash' ./internal/cc/

# Re-measure the reliable-delivery round overhead behind BENCH_faults.json.
bench-faults:
	$(GO) run ./cmd/experiments -run E13

# One traced solve per algorithm layer; validates the JSONL event stream
# against the schema and enforces the >= 95% span-attribution bar.
trace-smoke:
	$(GO) test -count=1 -run TestTraceSmoke ./internal/trace/

check: fmt-check vet build race bench-smoke trace-smoke
