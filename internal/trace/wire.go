package trace

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// The distributed wire form: a worker process cannot share a *Tracer with
// the coordinator, so it records a flat stream of Recs — the serializable
// projection of the span/event model — and ships them inside a FrameTrace
// when its barrier shard is complete. The coordinator replays the stream
// into the caller's Tracer under a "node-%d" prefix span (Tracer.Merge), so
// a distributed run exports one timeline whose JSONL bytes are as
// deterministic as a local run's: Recs carry no wall-clock fields and the
// merge order is fixed (node index first, then each node's span open
// sequence).

// RecKind tags one wire record.
type RecKind uint8

const (
	// RecBegin opens a span named Name nested under the previously open one.
	RecBegin RecKind = 1 + iota
	// RecEnd closes the innermost open span of the stream.
	RecEnd
	// RecTraffic attributes A messages / B payload words to the innermost
	// open span under tag Name.
	RecTraffic
	// RecMark is a point event (supervision transitions and the like) named
	// Name with Barrier/Epoch/Node tags.
	RecMark
)

// Rec is one serializable trace record. The zero fields of a kind are
// ignored by Merge but still travel (fixed-width encoding keeps the codec
// trivial and the frames small — a worker emits a handful per barrier).
type Rec struct {
	Kind RecKind
	Name string // begin: span name; traffic: tag; mark: event name
	A, B int64  // traffic: messages, words

	Barrier, Epoch uint64 // mark tags
	Node           int    // mark tag (-1: not node-scoped)
}

// Defensive decode limits, mirroring internal/transport's: a corrupt count
// or length must not drive allocation.
const (
	maxRecs    = 1 << 20
	maxRecName = 1 << 12
)

// ErrBadRecs reports a structurally invalid Rec blob.
var ErrBadRecs = errors.New("trace: malformed rec blob")

// AppendRecs encodes recs and appends the bytes to buf (little-endian,
// fixed-width):
//
//	blob := u32 count | count × rec
//	rec  := u8 kind | u16 len(name) | name | i64 a | i64 b |
//	        u64 barrier | u64 epoch | i32 node
func AppendRecs(buf []byte, recs []Rec) ([]byte, error) {
	if len(recs) > maxRecs {
		return buf, fmt.Errorf("%w: %d records", ErrBadRecs, len(recs))
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(recs)))
	for _, r := range recs {
		if len(r.Name) > maxRecName {
			return buf, fmt.Errorf("%w: name of %d bytes", ErrBadRecs, len(r.Name))
		}
		buf = append(buf, byte(r.Kind))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(r.Name)))
		buf = append(buf, r.Name...)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.A))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.B))
		buf = binary.LittleEndian.AppendUint64(buf, r.Barrier)
		buf = binary.LittleEndian.AppendUint64(buf, r.Epoch)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(r.Node)))
	}
	return buf, nil
}

// DecodeRecs decodes an AppendRecs blob. The whole input must be consumed;
// trailing bytes are an error, like the frame codec's.
func DecodeRecs(b []byte) ([]Rec, error) {
	if len(b) < 4 {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadRecs, len(b))
	}
	count := binary.LittleEndian.Uint32(b)
	off := 4
	if count > maxRecs {
		return nil, fmt.Errorf("%w: count %d", ErrBadRecs, count)
	}
	// Each rec needs at least 39 bytes; reject counts the remaining bytes
	// cannot hold before allocating.
	if int64(count)*39 > int64(len(b)-off) {
		return nil, fmt.Errorf("%w: count %d exceeds %d bytes", ErrBadRecs, count, len(b)-off)
	}
	recs := make([]Rec, 0, count)
	for i := uint32(0); i < count; i++ {
		if off+3 > len(b) {
			return nil, fmt.Errorf("%w: rec %d truncated", ErrBadRecs, i)
		}
		kind := RecKind(b[off])
		nameLen := int(binary.LittleEndian.Uint16(b[off+1:]))
		off += 3
		if kind < RecBegin || kind > RecMark {
			return nil, fmt.Errorf("%w: rec %d kind %d", ErrBadRecs, i, kind)
		}
		if nameLen > maxRecName || off+nameLen+36 > len(b) {
			return nil, fmt.Errorf("%w: rec %d truncated", ErrBadRecs, i)
		}
		name := string(b[off : off+nameLen])
		off += nameLen
		r := Rec{Kind: kind, Name: name}
		r.A = int64(binary.LittleEndian.Uint64(b[off:]))
		r.B = int64(binary.LittleEndian.Uint64(b[off+8:]))
		r.Barrier = binary.LittleEndian.Uint64(b[off+16:])
		r.Epoch = binary.LittleEndian.Uint64(b[off+24:])
		r.Node = int(int32(binary.LittleEndian.Uint32(b[off+32:])))
		off += 36
		recs = append(recs, r)
	}
	if off != len(b) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRecs, len(b)-off)
	}
	return recs, nil
}

// Buffer is the worker-side recorder: a stack-disciplined Rec stream with
// no clock, no mutex, and no span objects — a worker's delivery loop is
// single-threaded and its spans never outlive a barrier. All methods are
// safe on a nil *Buffer (tracing disabled: no-ops, no allocation).
type Buffer struct {
	recs  []Rec
	depth int
}

// NewBuffer returns an empty enabled buffer.
func NewBuffer() *Buffer { return &Buffer{} }

// Begin opens a span named name.
func (b *Buffer) Begin(name string) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, Rec{Kind: RecBegin, Name: name})
	b.depth++
}

// Beginf is Begin with a formatted name; formatting is skipped on nil.
func (b *Buffer) Beginf(format string, args ...any) {
	if b == nil {
		return
	}
	b.Begin(fmt.Sprintf(format, args...))
}

// End closes the innermost open span. Unbalanced Ends are dropped.
func (b *Buffer) End() {
	if b == nil || b.depth == 0 {
		return
	}
	b.recs = append(b.recs, Rec{Kind: RecEnd})
	b.depth--
}

// Traffic attributes messages/words to the innermost open span.
func (b *Buffer) Traffic(tag string, messages, words int64) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, Rec{Kind: RecTraffic, Name: tag, A: messages, B: words})
}

// Mark records a point event with barrier/epoch/node tags.
func (b *Buffer) Mark(name string, barrier, epoch uint64, node int) {
	if b == nil {
		return
	}
	b.recs = append(b.recs, Rec{Kind: RecMark, Name: name, Barrier: barrier, Epoch: epoch, Node: node})
}

// Len returns the number of buffered records (0 on nil).
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	return len(b.recs)
}

// Take closes any still-open spans and returns the buffered stream,
// resetting the buffer for the next barrier.
func (b *Buffer) Take() []Rec {
	if b == nil {
		return nil
	}
	for b.depth > 0 {
		b.End()
	}
	recs := b.recs
	b.recs = nil
	return recs
}

// Merge replays a worker's Rec stream into the tracer as a subtree rooted
// at a fresh span named name (e.g. "node-2"), nested under the innermost
// open span. Replay preserves the stream's open sequence; callers merging
// several workers fix the cross-worker order by calling Merge in node-index
// order, which is the deterministic merge-order contract of the distributed
// trace plane. A nil tracer ignores the stream.
func (t *Tracer) Merge(name string, recs []Rec) {
	if t == nil || len(recs) == 0 {
		return
	}
	root := t.Start(name)
	var stack []*Span
	for _, r := range recs {
		switch r.Kind {
		case RecBegin:
			stack = append(stack, t.Start(r.Name))
		case RecEnd:
			if len(stack) > 0 {
				stack[len(stack)-1].End()
				stack = stack[:len(stack)-1]
			}
		case RecTraffic:
			t.LinkTraffic(r.Name, r.A, r.B)
		case RecMark:
			t.Mark(r.Name, r.Barrier, r.Epoch, r.Node)
		}
	}
	// Forgiving close: ending the root also ends unbalanced descendants.
	root.End()
}
