package cc

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lapcc/internal/rounds"
)

// flatten renders a delivery result as a canonical list of strings for
// comparison (the per-destination order is already canonical).
func flatten(out [][]Packet) []string {
	var s []string
	for d, inbox := range out {
		for _, p := range inbox {
			s = append(s, fmt.Sprintf("d%d s%d %v", d, p.Src, p.Data))
		}
	}
	return s
}

func randomPackets(rng *rand.Rand, n, m int) []Packet {
	pkts := make([]Packet, m)
	for i := range pkts {
		width := rng.Intn(4) // includes zero-length payloads
		data := make([]int64, width)
		for j := range data {
			data[j] = rng.Int63n(1 << 30)
		}
		pkts[i] = Packet{Src: rng.Intn(n), Dst: rng.Intn(n), Data: data}
	}
	return pkts
}

// TestReliableRouteBitIdenticalToClean is the routing-layer differential:
// across seeds and fault rates, the reliable layer's delivered set is
// bit-identical to a clean Route of the same packets, at a strictly larger
// round cost.
func TestReliableRouteBitIdenticalToClean(t *testing.T) {
	const n = 12
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		pkts := randomPackets(rng, n, 1+rng.Intn(3*n))
		cleanLed := rounds.New()
		clean, cleanRes, err := Route(n, pkts, cleanLed, "x")
		if err != nil {
			t.Fatalf("trial %d clean: %v", trial, err)
		}
		plan := &FaultPlan{
			Seed:      uint64(trial + 1),
			Drop:      0.05,
			Corrupt:   0.03,
			Duplicate: 0.03,
			Delay:     0.03,
		}
		faultLed := rounds.New()
		got, res, err := ReliableRoute(n, pkts, faultLed, "x", plan)
		if err != nil {
			t.Fatalf("trial %d reliable: %v", trial, err)
		}
		want, have := flatten(clean), flatten(got)
		if len(want) != len(have) {
			t.Fatalf("trial %d: delivered %d packets, want %d", trial, len(have), len(want))
		}
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("trial %d: delivery diverges at %d: %q vs %q", trial, i, have[i], want[i])
			}
		}
		if res.Faults.Total() > 0 && faultLed.Total() <= cleanLed.Total() {
			t.Fatalf("trial %d: faulty run cost %d rounds, clean cost %d — retries must cost extra",
				trial, faultLed.Total(), cleanLed.Total())
		}
		// Lost or mangled data (anything but a pure duplicate) forces at
		// least one retransmission wave.
		if res.Faults.Dropped+res.Faults.Corrupted+res.Faults.Delayed > 0 && res.Attempts < 2 {
			t.Fatalf("trial %d: data faults injected but only %d attempt", trial, res.Attempts)
		}
		_ = cleanRes
	}
}

// TestReliableRouteBatchedBitIdentical mirrors the differential for the
// batched variant, with overloaded sources forcing multiple batches.
func TestReliableRouteBatchedBitIdentical(t *testing.T) {
	const n = 6
	var pkts []Packet
	for i := 0; i < 3*n*n; i++ { // node 0 sources 3n^2 packets: needs batching
		pkts = append(pkts, Packet{Src: 0, Dst: i % n, Data: []int64{int64(i)}})
	}
	clean, _, err := RouteBatched(n, pkts, nil, "y")
	if err != nil {
		t.Fatalf("clean: %v", err)
	}
	plan := &FaultPlan{Seed: 5, Drop: 0.05, Duplicate: 0.05}
	got, res, err := ReliableRouteBatched(n, pkts, nil, "y", plan)
	if err != nil {
		t.Fatalf("reliable: %v", err)
	}
	want, have := flatten(clean), flatten(got)
	if len(want) != len(have) {
		t.Fatalf("delivered %d, want %d", len(have), len(want))
	}
	for i := range want {
		if want[i] != have[i] {
			t.Fatalf("diverges at %d: %q vs %q", i, have[i], want[i])
		}
	}
	if res.Faults.Total() == 0 {
		t.Fatal("plan injected nothing at 5% rates over thousands of packets")
	}
}

// TestReliableRouteNilPlanDelegates: nil and zero-rate plans must be free.
func TestReliableRouteNilPlanDelegates(t *testing.T) {
	const n = 8
	pkts := []Packet{{Src: 1, Dst: 2, Data: []int64{7}}, {Src: 3, Dst: 3}}
	cleanLed := rounds.New()
	clean, cleanRes, err := Route(n, pkts, cleanLed, "z")
	if err != nil {
		t.Fatal(err)
	}
	for _, plan := range []*FaultPlan{nil, {Seed: 1}, {Stalls: []Stall{{Node: 1, From: 0, For: 2}}}} {
		led := rounds.New()
		got, res, err := ReliableRoute(n, pkts, led, "z", plan)
		if err != nil {
			t.Fatalf("plan %v: %v", plan, err)
		}
		if res.Attempts != 1 || res.Executed != cleanRes.Executed {
			t.Fatalf("plan %v: result %+v, want clean %+v", plan, res.RouteResult, cleanRes)
		}
		if led.Total() != cleanLed.Total() {
			t.Fatalf("plan %v: charged %d, clean charges %d", plan, led.Total(), cleanLed.Total())
		}
		w, h := flatten(clean), flatten(got)
		if len(w) != len(h) {
			t.Fatalf("plan %v: delivery differs", plan)
		}
	}
}

// TestReliableRouteExhaustsRetries: Drop=1 can never deliver; the protocol
// must give up with the typed error instead of looping.
func TestReliableRouteExhaustsRetries(t *testing.T) {
	const n = 4
	pkts := []Packet{{Src: 0, Dst: 1, Data: []int64{1}}}
	plan := &FaultPlan{Drop: 1, MaxRetries: 3}
	_, res, err := ReliableRoute(n, pkts, nil, "dead", plan)
	if !errors.Is(err, ErrDeliveryFailed) {
		t.Fatalf("want ErrDeliveryFailed, got %v", err)
	}
	if res.Attempts != 4 { // initial + 3 retries
		t.Fatalf("attempts %d, want 4", res.Attempts)
	}
	if res.BackoffRounds != 1+2+4 {
		t.Fatalf("backoff rounds %d, want 7 (exponential)", res.BackoffRounds)
	}
}

// TestReliableRouteChargesRetryTags: the overhead is split into the derived
// ledger tags so reports can separate protocol cost from useful work.
func TestReliableRouteChargesRetryTags(t *testing.T) {
	const n = 8
	rng := rand.New(rand.NewSource(2))
	pkts := randomPackets(rng, n, 40)
	plan := &FaultPlan{Seed: 11, Drop: 0.3}
	led := rounds.New()
	_, res, err := ReliableRoute(n, pkts, led, "work", plan)
	if err != nil {
		t.Fatal(err)
	}
	if res.Retransmitted == 0 {
		t.Fatal("30% drop over 40 packets retransmitted nothing")
	}
	tags := map[string]int64{}
	for _, e := range led.Entries() {
		tags[e.Tag] = e.Rounds
	}
	for _, tag := range []string{"work", "work-ack", "work-retry", "work-backoff"} {
		if tags[tag] == 0 {
			t.Fatalf("tag %q missing from ledger: %v", tag, tags)
		}
	}
}

// TestReliableBroadcastAll: the broadcast variant returns the same values a
// clean broadcast would, with measured retransmission overhead.
func TestReliableBroadcastAll(t *testing.T) {
	const n = 10
	values := make([]int64, n)
	for i := range values {
		values[i] = int64(100 + i)
	}
	clean, err := BroadcastAll(n, values, nil, "bc")
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Seed: 21, Drop: 0.1, Corrupt: 0.05}
	led := rounds.New()
	got, res, err := ReliableBroadcastAll(n, values, led, "bc", plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range clean {
		if got[i] != clean[i] {
			t.Fatalf("value %d: %d != clean %d", i, got[i], clean[i])
		}
	}
	if res.Faults.Total() == 0 {
		t.Fatal("no faults injected on 90 pairs at 15% rates")
	}
	if led.Total() < 2 {
		t.Fatalf("faulty broadcast charged %d rounds; retransmission must cost extra", led.Total())
	}
}

// TestReliableSelfSendDelivers: Src == Dst packets stay local in Route;
// the reliable layer must handle them identically.
func TestReliableSelfSendDelivers(t *testing.T) {
	const n = 4
	pkts := []Packet{{Src: 2, Dst: 2, Data: []int64{9}}, {Src: 2, Dst: 2}}
	plan := &FaultPlan{Seed: 8, Drop: 0.5}
	got, _, err := ReliableRoute(n, pkts, nil, "self", plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(got[2]) != 2 {
		t.Fatalf("node 2 got %d packets, want its 2 self-sends", len(got[2]))
	}
}

// TestReliableCodecRoundTrip pins the frame format directly (the fuzz
// harness in fuzz_test.go explores it adversarially).
func TestReliableCodecRoundTrip(t *testing.T) {
	cases := []Packet{
		{Src: 0, Dst: 1, Data: []int64{1, 2, 3}},
		{Src: 3, Dst: 3, Data: nil}, // zero-length self-send
		{Src: 7, Dst: 0, Data: []int64{-1, 0, 1 << 62}},
	}
	for i, p := range cases {
		frame := encodeReliable(p, i)
		seq, payload, ok := decodeReliable(Packet{Src: p.Src, Dst: p.Dst, Data: frame})
		if !ok || seq != int64(i) || len(payload) != len(p.Data) {
			t.Fatalf("case %d: decode (%d, %v, %v)", i, seq, payload, ok)
		}
		for j := range payload {
			if payload[j] != p.Data[j] {
				t.Fatalf("case %d: payload word %d corrupted", i, j)
			}
		}
		// Any single bit flip must be detected.
		for w := range frame {
			frame[w] ^= 1 << uint(w%64)
			if _, _, ok := decodeReliable(Packet{Src: p.Src, Dst: p.Dst, Data: frame}); ok {
				t.Fatalf("case %d: bit flip in word %d undetected", i, w)
			}
			frame[w] ^= 1 << uint(w%64)
		}
		// A frame rerouted to the wrong destination fails its checksum too.
		if _, _, ok := decodeReliable(Packet{Src: p.Src, Dst: p.Dst + 1, Data: frame}); ok {
			t.Fatalf("case %d: wrong-destination frame accepted", i)
		}
	}
}
