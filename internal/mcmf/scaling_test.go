package mcmf

import (
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func e6Instance(l int, maxCost int64, seed int64) (*graph.DiGraph, []int64) {
	rng := rand.New(rand.NewSource(seed))
	dg := graph.NewDi(2 * l)
	sigma := make([]int64, 2*l)
	for u := 0; u < l; u++ {
		partner := u % l
		dg.MustAddArc(u, l+partner, 1, 1+rng.Int63n(maxCost))
		for d := 1; d < 3; d++ {
			dg.MustAddArc(u, l+rng.Intn(l), 1, 1+rng.Int63n(maxCost))
		}
		sigma[u] = 1
		sigma[l+partner]--
	}
	return dg, sigma
}

func TestE6Sizes(t *testing.T) {
	for _, l := range []int{4, 6, 8, 12} {
		dg, sigma := e6Instance(l, 16, int64(l))
		_, want, err := Solve(dg, sigma)
		if err != nil {
			t.Fatalf("l=%d oracle: %v", l, err)
		}
		led := rounds.New()
		res, err := MinCostFlow(dg, sigma, Options{Ledger: led})
		if err != nil {
			t.Fatalf("l=%d: %v", l, err)
		}
		if res.Cost != want {
			t.Fatalf("l=%d: cost %d != %d", l, res.Cost, want)
		}
		t.Logf("l=%d ok: cost=%d prog=%d repairs=%d cancels=%d rounds=%d",
			l, res.Cost, res.ProgressIterations, res.RepairAugmentations, res.CyclesCancelled, led.Total())
	}
}
