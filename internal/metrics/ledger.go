package metrics

import (
	"lapcc/internal/rounds"
)

// ledgerSink mirrors a rounds.Ledger's cost and traffic stream into
// registry counters. One adapter exists per registry (cached in
// Registry.sink), so attaching the same registry to a ledger twice — or to
// the shared ledger of a session that rebuilds its solver — stays
// idempotent under Ledger.AttachSink's identity check.
type ledgerSink struct {
	measured *Counter
	charged  *Counter
	other    *Counter
	messages *Counter
	words    *Counter
}

// RoundCost implements rounds.Sink.
func (s *ledgerSink) RoundCost(tag string, kind rounds.Kind, r int64) {
	switch kind {
	case rounds.Measured:
		s.measured.Add(r)
	case rounds.Charged:
		s.charged.Add(r)
	default:
		s.other.Add(r)
	}
}

// LinkTraffic implements rounds.TrafficSink.
func (s *ledgerSink) LinkTraffic(tag string, messages, words int64) {
	s.messages.Add(messages)
	s.words.Add(words)
}

// LedgerSink returns the registry's rounds.Sink adapter, creating it on
// first use. The same *Registry always returns the same adapter, which is
// what makes rounds.Ledger.AttachSink idempotent for it. Returns nil on a
// nil registry (and rounds.Ledger.AttachSink ignores nil).
func (r *Registry) LedgerSink() rounds.Sink {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	if s, ok := r.sink.(*ledgerSink); ok {
		r.mu.Unlock()
		return s
	}
	r.mu.Unlock()
	// Build outside the lock: Counter re-takes it. Two racers both build;
	// the second CAS-style check below keeps one canonical adapter.
	s := &ledgerSink{
		measured: r.Counter("lapcc_ledger_rounds_total", "Rounds recorded in the accounting ledger by kind.", "kind", "measured"),
		charged:  r.Counter("lapcc_ledger_rounds_total", "Rounds recorded in the accounting ledger by kind.", "kind", "charged"),
		other:    r.Counter("lapcc_ledger_rounds_total", "Rounds recorded in the accounting ledger by kind.", "kind", "other"),
		messages: r.Counter("lapcc_ledger_traffic_messages_total", "Link messages reported to the ledger's traffic seam."),
		words:    r.Counter("lapcc_ledger_traffic_words_total", "Link payload words reported to the ledger's traffic seam."),
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if have, ok := r.sink.(*ledgerSink); ok {
		return have
	}
	r.sink = s
	return s
}

// MirrorLedger attaches the registry's ledger adapter to led, so every
// cost and traffic record the ledger sees is mirrored into
// lapcc_ledger_* counters. Safe (and a no-op) on a nil registry or nil
// ledger; composes with an installed tracer via AttachSink.
func (r *Registry) MirrorLedger(led *rounds.Ledger) {
	if r == nil || led == nil {
		return
	}
	led.AttachSink(r.LedgerSink())
}
