// Package shortestpath provides the shortest-path and reachability
// subroutines the flow algorithms consume, together with their
// congested-clique round accounting.
//
// The paper computes augmenting paths and potentials with the
// O(n^0.158)-round (1+o(1))-approximate weighted directed APSP of
// Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela [CKKL+19], a
// fast-matrix-multiplication result whose distributed implementation is far
// outside any reproduction's scope. Following DESIGN.md ("Substitutions"),
// the paths themselves are computed exactly (Dijkstra / Bellman-Ford /
// BFS, internal to the simulation) and each invocation charges the cited
// O(n^0.158) rounds to the ledger.
package shortestpath

import (
	"container/heap"
	"errors"
	"math"

	"lapcc/internal/rounds"
)

// Inf is the distance assigned to unreachable vertices.
const Inf = math.MaxInt64 / 4

// Arc is one outgoing arc of the adjacency representation used here: a
// target vertex, a weight, and an opaque id the caller uses to map paths
// back to its own arc numbering.
type Arc struct {
	To     int
	Weight int64
	ID     int
}

// ErrNegativeWeight reports a negative arc weight passed to Dijkstra.
var ErrNegativeWeight = errors.New("shortestpath: negative weight in Dijkstra")

// ErrNegativeCycle reports a negative cycle detected by Bellman-Ford.
var ErrNegativeCycle = errors.New("shortestpath: negative cycle")

// Result carries distances and the predecessor structure of one
// single-source computation.
type Result struct {
	// Dist[v] is the distance from the source set; Inf if unreachable.
	Dist []int64
	// ParentArc[v] is the ID of the arc entering v on a shortest path, or
	// -1 for sources and unreachable vertices.
	ParentArc []int
	// ParentVertex[v] is the tail of ParentArc[v], or -1.
	ParentVertex []int
}

// ChargeAPSP records one CKKL+19 APSP invocation for an n-node clique.
func ChargeAPSP(led *rounds.Ledger, n int) {
	if led != nil {
		led.Add("apsp", rounds.Charged, rounds.APSPRounds(n), rounds.CiteAPSP)
	}
}

type pqItem struct {
	v    int
	dist int64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// Dijkstra computes shortest paths from the given sources over the
// adjacency lists adj (adj[v] lists arcs leaving v). All weights must be
// non-negative.
func Dijkstra(adj [][]Arc, sources []int) (*Result, error) {
	n := len(adj)
	res := &Result{
		Dist:         make([]int64, n),
		ParentArc:    make([]int, n),
		ParentVertex: make([]int, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = Inf
		res.ParentArc[v] = -1
		res.ParentVertex[v] = -1
	}
	h := &pq{}
	for _, s := range sources {
		res.Dist[s] = 0
		heap.Push(h, pqItem{v: s, dist: 0})
	}
	for h.Len() > 0 {
		it := heap.Pop(h).(pqItem)
		if it.dist > res.Dist[it.v] {
			continue
		}
		for _, a := range adj[it.v] {
			if a.Weight < 0 {
				return nil, ErrNegativeWeight
			}
			nd := it.dist + a.Weight
			if nd < res.Dist[a.To] {
				res.Dist[a.To] = nd
				res.ParentArc[a.To] = a.ID
				res.ParentVertex[a.To] = it.v
				heap.Push(h, pqItem{v: a.To, dist: nd})
			}
		}
	}
	return res, nil
}

// BellmanFord computes shortest paths allowing negative weights; it returns
// ErrNegativeCycle if one is reachable from the sources.
func BellmanFord(adj [][]Arc, sources []int) (*Result, error) {
	n := len(adj)
	res := &Result{
		Dist:         make([]int64, n),
		ParentArc:    make([]int, n),
		ParentVertex: make([]int, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = Inf
		res.ParentArc[v] = -1
		res.ParentVertex[v] = -1
	}
	for _, s := range sources {
		res.Dist[s] = 0
	}
	for round := 0; round < n; round++ {
		changed := false
		for v := 0; v < n; v++ {
			if res.Dist[v] >= Inf {
				continue
			}
			for _, a := range adj[v] {
				nd := res.Dist[v] + a.Weight
				if nd < res.Dist[a.To] {
					res.Dist[a.To] = nd
					res.ParentArc[a.To] = a.ID
					res.ParentVertex[a.To] = v
					changed = true
				}
			}
		}
		if !changed {
			return res, nil
		}
	}
	return nil, ErrNegativeCycle
}

// BFS computes hop distances (all weights 1) from the sources.
func BFS(adj [][]Arc, sources []int) *Result {
	n := len(adj)
	res := &Result{
		Dist:         make([]int64, n),
		ParentArc:    make([]int, n),
		ParentVertex: make([]int, n),
	}
	for v := 0; v < n; v++ {
		res.Dist[v] = Inf
		res.ParentArc[v] = -1
		res.ParentVertex[v] = -1
	}
	queue := make([]int, 0, n)
	for _, s := range sources {
		res.Dist[s] = 0
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, a := range adj[v] {
			if res.Dist[a.To] >= Inf {
				res.Dist[a.To] = res.Dist[v] + 1
				res.ParentArc[a.To] = a.ID
				res.ParentVertex[a.To] = v
				queue = append(queue, a.To)
			}
		}
	}
	return res
}

// PathTo reconstructs the arc-ID path from the source set to v, or nil if v
// is unreachable.
func (r *Result) PathTo(v int) []int {
	if r.Dist[v] >= Inf {
		return nil
	}
	var path []int
	for r.ParentArc[v] != -1 {
		path = append(path, r.ParentArc[v])
		v = r.ParentVertex[v]
	}
	// Reverse into source-to-target order.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}
