// Package cc simulates the congested clique model of Lotker, Patt-Shamir,
// Pavlov, and Peleg [LPSPP05]: n processors communicate in synchronous
// rounds, and in each round every ordered pair of nodes may exchange one
// message of O(log n) bits.
//
// The simulator enforces the model's two constraints — at most one message
// per ordered pair per round, and a bounded number of machine words per
// message (a constant number of words is O(log n) bits for any realistic n)
// — and counts rounds. Algorithms are expressed as per-node step functions;
// the engine runs them in lockstep and delivers messages at round
// boundaries, exactly as the synchronous model prescribes.
//
// # Execution model
//
// The engine partitions the n nodes into contiguous blocks, one per worker,
// and steps each block on its own goroutine; a barrier at the end of every
// round merges the workers' private outboxes into the next round's inboxes
// in ascending node order. Because the merge order depends only on node
// indices — never on goroutine scheduling — a program observes exactly the
// same rounds, message counts, and per-inbox message order as a fully
// sequential execution. SetSequential(true) forces single-worker, inline
// execution (no goroutines) as an escape hatch; SetWorkers overrides the
// worker count, which defaults to GOMAXPROCS.
//
// Step functions run concurrently across nodes within a round, as the model
// intends: a step may freely read and write per-node state (for example,
// distinct elements of a shared slice indexed by node) but must not mutate
// state shared across nodes without its own synchronization.
//
// The engine recycles all per-round state — send buffers, payload arenas,
// inbox slices, and the duplicate-pair stamp tables that replace the old
// per-round maps — so steady-state rounds allocate nothing. Consequently
// inbox payloads are only valid during the step call that receives them;
// a node that wants to keep a payload across rounds must copy it.
package cc

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"lapcc/internal/metrics"
)

// DefaultMaxWords is the default per-message budget in 64-bit words. Three
// words comfortably encode (tag, key, value) triples and is O(log n) bits.
const DefaultMaxWords = 3

// Message is a message delivered to a node at the start of a round. Data is
// backed by an engine-owned arena that is recycled once the receiving step
// returns: copy it if it must outlive the step call.
type Message struct {
	From int
	Data []int64
}

// Step is a per-node program step. The engine calls it once per node per
// round with the messages that arrived at the start of the round. The node
// sends messages via send (delivered at the start of the next round) and
// returns true when it is done. A node that has returned done is still shown
// late-arriving messages and may resume work by returning false again.
//
// Steps for distinct nodes may run concurrently (see the package comment);
// the send function passed to a step is only valid for that step call.
type Step func(node, round int, inbox []Message, send func(to int, data ...int64)) (done bool)

// RoundStats describes one engine round for the instrumentation hook. All
// count fields are deterministic (identical in sequential and parallel
// execution); the durations are wall-clock measurements.
type RoundStats struct {
	// Round is the round index within the current Run call.
	Round int
	// Messages is the number of messages sent in this round (delivered at
	// the start of the next round).
	Messages int
	// Words is the total payload words across those messages.
	Words int
	// MaxOut is the maximum number of messages sent by a single node — the
	// per-link load never exceeds 1 in the clique, so this is the node's
	// outgoing link load.
	MaxOut int
	// MaxIn is the maximum number of messages received by a single node.
	MaxIn int
	// Busy is the number of nodes that returned done=false this round.
	Busy int
	// WidthHist[w] counts messages whose payload is exactly w words
	// (w ranges over 0..maxWords).
	WidthHist []int
	// StepDuration is the wall time of the compute phase (all step calls).
	StepDuration time.Duration
	// MergeDuration is the wall time of the barrier merge phase.
	MergeDuration time.Duration
	// Faults counts the faults injected this round (all zero unless a
	// FaultPlan is installed; see Engine.SetFaults).
	Faults FaultStats
}

// Engine runs step-function programs on a simulated clique.
type Engine struct {
	n         int
	maxWords  int
	rounds    int64
	messages  int64
	broadcast bool

	sequential bool
	workers    int // configured worker count; 0 means GOMAXPROCS
	observer   func(RoundStats)

	// Metrics binding (see metrics.go). metricsReg, when non-nil, overrides
	// the package-wide registry; mi caches the resolved instruments.
	metricsReg *metrics.Registry
	mi         *ccInstruments

	// Fault-injection state (nil/empty without a plan; see faults.go).
	faults     *FaultPlan
	faultStats FaultStats   // cumulative across rounds and Run calls
	delayQ     []delayedMsg // in-flight delayed messages
	stallBuf   [][]Message  // per-node buffers for messages to stalled nodes
	stallHeld  int          // total messages across stallBuf
	injFlat    []Message    // fault-injector snapshot of one round's inboxes
	injOff     []int        // per-destination offsets into injFlat

	// Delivery backend (see transport.go): local is the default in-process
	// merge, external overrides it when set via SetTransport.
	local    localTransport
	external Transport

	// Reusable execution state, lazily sized on first Run and recycled
	// across rounds and across Run calls.
	ws        []*workerState
	outView   []Outbox // per-worker outbox views handed to the transport
	inboxFlat []Message
	inboxes   [][]Message
	dstCount  []int
	dstOff    []int
	srcCount  []int // only filled when an observer is installed
}

// Model violations are errors, not panics: an algorithm exceeding the
// bandwidth budget is a bug the tests assert on ("failure injection" for
// this non-faulty model).
var (
	// ErrMessageTooWide reports a message exceeding the per-message word budget.
	ErrMessageTooWide = errors.New("cc: message exceeds word budget")
	// ErrDuplicatePair reports two messages on the same ordered pair in one round.
	ErrDuplicatePair = errors.New("cc: more than one message on an ordered pair in one round")
	// ErrBadRecipient reports a send to an out-of-range node.
	ErrBadRecipient = errors.New("cc: recipient out of range")
	// ErrRoundLimit reports that a program exceeded its round budget.
	ErrRoundLimit = errors.New("cc: round limit exceeded")
	// ErrNotBroadcast reports distinct per-recipient messages in Broadcast
	// Congested Clique mode.
	ErrNotBroadcast = errors.New("cc: node sent distinct messages in one round (BCC mode)")
)

// NewEngine returns a clique of n nodes with the default message width.
func NewEngine(n int) *Engine {
	e := &Engine{n: n, maxWords: DefaultMaxWords}
	e.local.e = e
	return e
}

// N returns the number of nodes.
func (e *Engine) N() int { return e.n }

// Rounds returns the number of communication rounds executed so far.
func (e *Engine) Rounds() int64 { return e.rounds }

// Messages returns the total number of messages delivered so far — the
// message-complexity counterpart to Rounds.
func (e *Engine) Messages() int64 { return e.messages }

// SetMaxWords overrides the per-message word budget (for tests).
func (e *Engine) SetMaxWords(w int) { e.maxWords = w }

// SetBroadcastOnly switches the engine into the Broadcast Congested Clique
// model [DKO12]: in each round, every node must send the *same* message to
// all other nodes. The paper's section 1.1 discusses why Eulerian
// orientation — and hence flow rounding — seems hard under this
// restriction; the simulator makes the restriction checkable.
func (e *Engine) SetBroadcastOnly(b bool) { e.broadcast = b }

// SetSequential forces single-worker, inline execution: every step of every
// round runs on the calling goroutine, in ascending node order, with no
// goroutines spawned. Results are identical to parallel execution (the
// merge is deterministic either way); the switch exists as an escape hatch
// for step functions that are not safe to call concurrently and for
// debugging.
func (e *Engine) SetSequential(s bool) {
	e.sequential = s
	e.ws = nil // force repartition on next Run
}

// SetWorkers overrides the number of parallel workers (default: GOMAXPROCS).
// k <= 0 restores the default. Ignored while sequential mode is on.
func (e *Engine) SetWorkers(k int) {
	if k < 0 {
		k = 0
	}
	e.workers = k
	e.ws = nil // force repartition on next Run
}

// SetFaults installs (or, with nil, removes) a fault plan consulted once per
// round for every message and node; see FaultPlan for the taxonomy. The plan
// is deterministic, so a faulty run replays identically across worker counts
// and repeated executions. Installing a plan disables the zero-allocation
// merge fast path; the clean path is untouched when no plan is set.
func (e *Engine) SetFaults(p *FaultPlan) { e.faults = p }

// Faults returns the currently installed fault plan (nil when clean).
func (e *Engine) Faults() *FaultPlan { return e.faults }

// FaultStats returns the cumulative fault counters across all rounds
// executed so far.
func (e *Engine) FaultStats() FaultStats { return e.faultStats }

// delayedMsg is a message held back by a delay fault: data is an
// engine-owned copy (the sender's arena is recycled before release), and
// release is the round at whose start the message is delivered.
type delayedMsg struct {
	from, to int32
	release  int
	data     []int64
}

// SetObserver installs an instrumentation hook invoked once per committed
// round (after the merge barrier, on the Run goroutine) with that round's
// RoundStats. A nil observer (the default) disables instrumentation and its
// small bookkeeping cost. The WidthHist slice is freshly allocated per call
// and may be retained.
func (e *Engine) SetObserver(obs func(RoundStats)) { e.observer = obs }

// workerState is the private per-worker execution state. Workers own the
// contiguous node block [lo, hi); nothing here is shared across goroutines
// during the compute phase.
type workerState struct {
	e      *Engine
	lo, hi int

	outbox []OutMsg
	// arena double-buffers payload words by round parity: the arena written
	// in round r is read (through inbox Data slices) during round r+1 while
	// the worker writes the other arena.
	arena [2][]int64

	// stamp[to] == epoch marks "current node already sent to `to` this
	// round"; epoch increments per node step, so the table never needs
	// clearing. This replaces the old per-round map[[2]int]bool.
	stamp []int64
	epoch int64

	// Per-step scratch for the BCC same-payload check.
	bccFirst []int64
	bccSet   bool

	curNode int
	round   int
	parity  int
	notDone int
	stalled int // node-steps skipped by stall faults this round
	err     error
	errNode int
	send    func(to int, data ...int64)
}

func newWorkerState(e *Engine, lo, hi int) *workerState {
	w := &workerState{
		e:       e,
		lo:      lo,
		hi:      hi,
		stamp:   make([]int64, e.n),
		errNode: -1,
	}
	// One closure per worker for the whole engine lifetime; the old engine
	// allocated a fresh closure per node per round.
	w.send = func(to int, data ...int64) { w.doSend(to, data) }
	return w
}

func (w *workerState) fail(err error) {
	if w.err == nil {
		w.err = err
		w.errNode = w.curNode
	}
}

func (w *workerState) doSend(to int, data []int64) {
	if w.err != nil {
		return
	}
	e := w.e
	v := w.curNode
	if to < 0 || to >= e.n || to == v {
		w.fail(fmt.Errorf("%w: node %d -> %d (n=%d)", ErrBadRecipient, v, to, e.n))
		return
	}
	if len(data) > e.maxWords {
		w.fail(fmt.Errorf("%w: node %d sent %d words (budget %d)",
			ErrMessageTooWide, v, len(data), e.maxWords))
		return
	}
	if e.broadcast {
		if w.bccSet {
			if !equalWords(w.bccFirst, data) {
				w.fail(fmt.Errorf("%w: node %d in round %d", ErrNotBroadcast, v, w.round))
				return
			}
		} else {
			w.bccFirst = append(w.bccFirst[:0], data...)
			w.bccSet = true
		}
	}
	if w.stamp[to] == w.epoch {
		w.fail(fmt.Errorf("%w: %d -> %d in round %d", ErrDuplicatePair, v, to, w.round))
		return
	}
	w.stamp[to] = w.epoch
	a := w.arena[w.parity]
	off := len(a)
	w.arena[w.parity] = append(a, data...)
	w.outbox = append(w.outbox, OutMsg{
		From: int32(v), To: int32(to), Off: int32(off), Width: int32(len(data)),
	})
}

// runRound steps the worker's node block for round r. On a model violation
// the worker records the error and the offending node and stops stepping
// its remaining nodes, mirroring the sequential engine.
func (w *workerState) runRound(step Step, r int, inboxes [][]Message) {
	w.err = nil
	w.errNode = -1
	w.notDone = 0
	w.stalled = 0
	w.round = r
	w.parity = r & 1
	w.outbox = w.outbox[:0]
	w.arena[w.parity] = w.arena[w.parity][:0]
	faults := w.e.faults
	for v := w.lo; v < w.hi; v++ {
		if faults != nil && faults.stalledAt(v, r) {
			if !faults.crashedAt(v, r) {
				// A stalled node skips its step but keeps the program
				// alive: it counts as busy until the stall expires. A
				// crashed node counts as done forever.
				w.notDone++
				w.stalled++
			}
			continue
		}
		w.curNode = v
		w.epoch++
		w.bccSet = false
		if !step(v, r, inboxes[v], w.send) {
			w.notDone++
		}
		if w.err != nil {
			return
		}
	}
}

// workerCount resolves the effective worker count for this run.
func (e *Engine) workerCount() int {
	if e.sequential {
		return 1
	}
	k := e.workers
	if k <= 0 {
		k = runtime.GOMAXPROCS(0)
	}
	if k > e.n {
		k = e.n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// ensureState (re)builds the recycled execution state if the worker count
// or n changed since the last Run.
func (e *Engine) ensureState(workers int) {
	if len(e.ws) != workers || (len(e.ws) > 0 && e.ws[0].e != e) {
		e.ws = make([]*workerState, workers)
		for i := 0; i < workers; i++ {
			lo := i * e.n / workers
			hi := (i + 1) * e.n / workers
			e.ws[i] = newWorkerState(e, lo, hi)
		}
	}
	if len(e.outView) != len(e.ws) {
		e.outView = make([]Outbox, len(e.ws))
	}
	if len(e.inboxes) != e.n {
		e.inboxes = make([][]Message, e.n)
		e.dstCount = make([]int, e.n)
		e.dstOff = make([]int, e.n+1)
		e.srcCount = make([]int, e.n)
	}
}

// transport resolves the delivery backend for this Run: the external one
// when installed, the engine's own in-process merge otherwise.
func (e *Engine) transport() Transport {
	if e.external != nil {
		return e.external
	}
	return &e.local
}

// Run executes the program until every node reports done in the same round
// and no messages are in flight, or until the program attempts to use more
// than maxRounds communication rounds. A program that completes without
// communicating in its final step costs no round for that step, so a
// zero-communication program succeeds even with maxRounds = 0. It returns
// the number of rounds consumed by this run.
func (e *Engine) Run(step Step, maxRounds int) (int64, error) {
	workers := e.workerCount()
	e.ensureState(workers)
	start := e.rounds
	for v := range e.inboxes {
		e.inboxes[v] = nil
	}
	e.delayQ = e.delayQ[:0]
	e.stallHeld = 0
	if e.faults != nil {
		if err := e.faults.Validate(); err != nil {
			return 0, err
		}
		if len(e.stallBuf) != e.n {
			e.stallBuf = make([][]Message, e.n)
		}
		for v := range e.stallBuf {
			e.stallBuf[v] = e.stallBuf[v][:0]
		}
	}
	mi := e.bindMetrics()
	instr := e.observer != nil || mi != nil
	tr := e.transport()
	inboxes := e.inboxes
	var wg sync.WaitGroup
	for r := 0; ; r++ {
		var t0 time.Time
		if instr {
			t0 = time.Now()
		}
		if workers == 1 {
			e.ws[0].runRound(step, r, inboxes)
		} else {
			for _, w := range e.ws {
				wg.Add(1)
				// inboxes rides along as an argument: capturing the
				// reassigned variable would force it to the heap and cost
				// the zero-alloc path one allocation per Run.
				go func(w *workerState, inb [][]Message) {
					defer wg.Done()
					w.runRound(step, r, inb)
				}(w, inboxes)
			}
			wg.Wait()
		}
		var stepDur time.Duration
		if instr {
			stepDur = time.Since(t0)
		}

		// Resolve the round's outcome deterministically: the error at the
		// lowest node index wins, exactly as if the nodes had stepped in
		// order on one goroutine.
		errNode := -1
		var roundErr error
		busy := 0
		sent := 0
		for _, w := range e.ws {
			if w.err != nil && (errNode < 0 || w.errNode < errNode) {
				errNode, roundErr = w.errNode, w.err
			}
			busy += w.notDone
			sent += len(w.outbox)
		}
		if roundErr != nil {
			// Count only the messages a sequential execution would have
			// sent before failing: those from nodes up to the erroring one.
			for _, w := range e.ws {
				for _, m := range w.outbox {
					if int(m.From) <= errNode {
						e.messages++
					}
				}
			}
			return e.rounds - start, roundErr
		}
		if busy == 0 && sent == 0 && len(e.delayQ) == 0 && e.stallHeld == 0 {
			// The final step consumed no communication and no faulted
			// messages are still in flight; it is internal computation and
			// costs no round.
			return e.rounds - start, nil
		}
		// The round performed communication (or left nodes busy, or faults
		// hold undelivered messages), so it must fit in the budget. Checking
		// here — after the completion check — lets a communication-free
		// finish at r == maxRounds succeed instead of spuriously hitting the
		// limit.
		if r >= maxRounds {
			return e.rounds - start, fmt.Errorf("%w: %d rounds", ErrRoundLimit, maxRounds)
		}
		e.messages += int64(sent)

		if instr {
			t0 = time.Now()
		}
		for i, w := range e.ws {
			e.outView[i] = Outbox{Msgs: w.outbox, Arena: w.arena[w.parity]}
		}
		delivered, _, err := tr.Deliver(r, e.n, e.outView)
		if err != nil {
			return e.rounds - start, fmt.Errorf("cc: transport delivery in round %d: %w", r, err)
		}
		var roundFaults FaultStats
		if e.faults != nil {
			// The plan injects above the transport boundary: whatever backend
			// carried the round, its clean delivery is faulted here, so all
			// backends replay the same fault schedule bit for bit.
			roundFaults = e.injectFaults(r, delivered)
			for _, w := range e.ws {
				roundFaults.StalledSteps += int64(w.stalled)
			}
			e.faultStats.add(roundFaults)
		}
		inboxes = delivered
		e.rounds++
		var mergeDur time.Duration
		if instr {
			mergeDur = time.Since(t0)
		}
		if mi != nil {
			// The merged outboxes stay intact until the next round's step
			// phase, so the payload-word scan here reads settled data. The
			// whole block is atomic adds over a linear scan: no allocation,
			// keeping the enabled path as cheap as the observer's.
			words := 0
			for _, w := range e.ws {
				for _, m := range w.outbox {
					words += int(m.Width)
				}
			}
			mi.rounds.Inc()
			mi.messages.Add(int64(sent))
			mi.words.Add(int64(words))
			mi.roundMessages.Observe(int64(sent))
			mi.roundWords.Observe(int64(words))
			mi.stepNs.ObserveDuration(stepDur)
			mi.mergeNs.ObserveDuration(mergeDur)
			if e.faults != nil {
				mi.recordFaults(roundFaults)
			}
		}
		if e.observer != nil {
			e.emitStats(r, sent, busy, stepDur, mergeDur, roundFaults, inboxes)
		}
	}
}

// injectFaults applies the plan's per-message fates and stall/crash
// buffering rules to one round's cleanly delivered inboxes, rewriting inb in
// place. It runs on the Run goroutine after the transport barrier, so the
// injected faults — decided by (round, from, to) alone — are identical for
// every worker count and every delivery backend. Unlike the clean path it
// allocates (fault mode trades the zero-allocation guarantee for the richer
// delivery semantics). It returns this round's fault counters (stall-step
// counts are added by the caller).
//
// Per destination the rebuilt inbox is [stall-flush][released delays][fresh
// sends], each segment in ascending source order — exactly the order the
// pre-transport engine produced.
func (e *Engine) injectFaults(r int, inb [][]Message) FaultStats {
	var fs FaultStats
	next := r + 1
	// Snapshot the fresh deliveries: the per-destination slices are about to
	// be rebuilt in place (they are views into transport-owned buffers, so
	// truncate-and-append reuses their storage when nothing is prepended).
	flat := e.injFlat[:0]
	if len(e.injOff) != len(inb)+1 {
		e.injOff = make([]int, len(inb)+1)
	}
	off := e.injOff
	for d, msgs := range inb {
		off[d] = len(flat)
		flat = append(flat, msgs...)
		inb[d] = inb[d][:0]
	}
	off[len(inb)] = len(flat)
	// Wake-up flushes first: messages buffered while a node was stalled are
	// older than anything sent this round, so they land at the front of the
	// inbox. A node that crashed while holding a buffer loses it.
	if e.stallHeld > 0 {
		for d := range e.stallBuf {
			if len(e.stallBuf[d]) == 0 {
				continue
			}
			if e.faults.crashedAt(d, next) {
				fs.Dropped += int64(len(e.stallBuf[d]))
				e.stallHeld -= len(e.stallBuf[d])
				e.stallBuf[d] = e.stallBuf[d][:0]
				continue
			}
			if e.faults.stalledAt(d, next) {
				continue
			}
			inb[d] = append(inb[d], e.stallBuf[d]...)
			e.stallHeld -= len(e.stallBuf[d])
			e.stallBuf[d] = e.stallBuf[d][:0]
		}
	}
	deliver := func(to int, m Message) {
		if e.faults.crashedAt(to, next) {
			fs.Dropped++
			return
		}
		if e.faults.stalledAt(to, next) {
			// Buffered payloads must survive buffer recycling: copy.
			cp := Message{From: m.From, Data: append([]int64(nil), m.Data...)}
			e.stallBuf[to] = append(e.stallBuf[to], cp)
			e.stallHeld++
			return
		}
		inb[to] = append(inb[to], m)
	}
	// Delayed messages whose release round arrived deliver before this
	// round's fresh sends (they were sent earlier).
	if len(e.delayQ) > 0 {
		keep := e.delayQ[:0]
		for _, dm := range e.delayQ {
			if dm.release <= next {
				deliver(int(dm.to), Message{From: int(dm.from), Data: dm.data})
			} else {
				keep = append(keep, dm)
			}
		}
		e.delayQ = keep
	}
	// Fresh deliveries, per destination in ascending source order — the
	// transport contract guarantees that is the order of the snapshot.
	for d := 0; d < len(inb); d++ {
		for _, m := range flat[off[d]:off[d+1]] {
			kind, delay := e.faults.engineFate(r, m.From, d)
			switch kind {
			case faultDrop:
				fs.Dropped++
				continue
			case faultCorrupt:
				if len(m.Data) > 0 {
					// The payload slot is exclusive to this message; flip a
					// deterministically chosen bit in place.
					h := int(e.faults.hash(saltCorrupt, uint64(r), uint64(m.From), uint64(d)) >> 1)
					m.Data[h%len(m.Data)] ^= 1 << uint((h/len(m.Data))%64)
					fs.Corrupted++
				}
			case faultDuplicate:
				fs.Duplicated++
				deliver(d, m)
			case faultDelay:
				fs.Delayed++
				e.delayQ = append(e.delayQ, delayedMsg{
					from: int32(m.From), to: int32(d), release: next + delay,
					data: append([]int64(nil), m.Data...),
				})
				continue
			}
			deliver(d, m)
		}
	}
	// Drop the snapshot's payload pointers so the recycled scratch does not
	// pin transport buffers across rounds.
	for i := range flat {
		flat[i] = Message{}
	}
	e.injFlat = flat[:0]
	return fs
}

// emitStats assembles the deterministic per-round statistics for the
// observer. Only runs when instrumentation is on.
func (e *Engine) emitStats(r, sent, busy int, stepDur, mergeDur time.Duration, faults FaultStats, inboxes [][]Message) {
	sc := e.srcCount
	for i := range sc {
		sc[i] = 0
	}
	words := 0
	hist := make([]int, e.maxWords+1)
	maxOut, maxIn := 0, 0
	for _, w := range e.ws {
		for _, m := range w.outbox {
			sc[m.From]++
			if sc[m.From] > maxOut {
				maxOut = sc[m.From]
			}
			words += int(m.Width)
			if int(m.Width) < len(hist) {
				hist[m.Width]++
			}
		}
	}
	for _, msgs := range inboxes {
		if len(msgs) > maxIn {
			maxIn = len(msgs)
		}
	}
	e.observer(RoundStats{
		Round:         r,
		Messages:      sent,
		Words:         words,
		MaxOut:        maxOut,
		MaxIn:         maxIn,
		Busy:          busy,
		WidthHist:     hist,
		StepDuration:  stepDur,
		MergeDuration: mergeDur,
		Faults:        faults,
	})
}

func equalWords(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
