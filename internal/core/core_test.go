package core

import (
	"testing"

	"lapcc/internal/euler"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/maxflow"
	"lapcc/internal/mcmf"
)

func TestSolveLaplacianFacade(t *testing.T) {
	g, err := graph.RandomRegular(48, 6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1
	res, err := SolveLaplacianWith(g, b, 1e-8, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	l := linalg.NewLaplacian(g)
	lx := linalg.NewVec(48)
	l.Apply(lx, res.X)
	if r := lx.Sub(b).Norm2(); r > 1e-6 {
		t.Fatalf("residual %v", r)
	}
	if res.Rounds.Total != res.Rounds.Measured+res.Rounds.Charged {
		t.Fatalf("round report inconsistent: %+v", res.Rounds)
	}
	if res.Rounds.Total == 0 || res.SparsifierEdges == 0 {
		t.Fatalf("suspicious report: %+v", res)
	}
}

func TestLaplacianSessionFacade(t *testing.T) {
	g, err := graph.RandomRegular(48, 6, 2)
	if err != nil {
		t.Fatal(err)
	}
	sess, err := NewLaplacianSession(g, SessionOptions{Warm: true})
	if err != nil {
		t.Fatal(err)
	}
	pre := sess.Rounds()
	if pre.Total == 0 {
		t.Fatal("preprocessing reported zero rounds")
	}

	check := func(res *LaplacianResult, b linalg.Vec) {
		t.Helper()
		l := linalg.NewLaplacian(g)
		lx := linalg.NewVec(48)
		l.Apply(lx, res.X)
		if r := lx.Sub(b).Norm2(); r > 1e-6 {
			t.Fatalf("residual %v", r)
		}
		if res.Rounds.Total != res.Rounds.Measured+res.Rounds.Charged {
			t.Fatalf("per-call report inconsistent: %+v", res.Rounds)
		}
		if res.Rounds.Total == 0 {
			t.Fatal("per-call report empty")
		}
	}

	var deltas int64
	for i := 0; i < 3; i++ {
		b := linalg.NewVec(48)
		b[i], b[47-i] = 1, -1
		res, err := sess.Solve(b, 1e-8)
		if err != nil {
			t.Fatal(err)
		}
		check(res, b)
		deltas += res.Rounds.Total
	}
	if total := sess.Rounds().Total; total != pre.Total+deltas {
		t.Fatalf("cumulative %d != preprocessing %d + per-call deltas %d", total, pre.Total, deltas)
	}

	// Reweight on the fixed topology, then solve the reweighted system.
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 2.5
	}
	if err := sess.Reweight(w); err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1
	res, err := sess.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	gw := g.Clone()
	for i := range w {
		if err := gw.SetWeight(i, w[i]); err != nil {
			t.Fatal(err)
		}
	}
	l := linalg.NewLaplacian(gw)
	lx := linalg.NewVec(48)
	l.Apply(lx, res.X)
	if r := lx.Sub(b).Norm2(); r > 1e-6 {
		t.Fatalf("reweighted residual %v", r)
	}
}

func TestSparsifyFacade(t *testing.T) {
	g := graph.Complete(64)
	res, err := SparsifyWith(g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.H.M() >= g.M() {
		t.Fatalf("sparsifier not smaller: %d >= %d", res.H.M(), g.M())
	}
	if res.Alpha < 1 {
		t.Fatalf("alpha = %v < 1", res.Alpha)
	}
}

func TestEulerianFacade(t *testing.T) {
	g, err := graph.RandomEulerian(64, 10, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EulerianOrientWith(g, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := euler.CheckOrientation(g, res.Orient); v != -1 {
		t.Fatalf("unbalanced at %d", v)
	}
	if res.Rounds.Charged != 0 {
		t.Fatalf("Theorem 1.4 must be fully measured, got %d charged rounds", res.Rounds.Charged)
	}
}

func TestRoundFlowFacade(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 4, 1)
	dg.MustAddArc(1, 2, 4, 1)
	res, err := RoundFlowWith(RoundFlowRequest{Graph: dg, Flow: []float64{0.75, 0.75}, Source: 0, Sink: 2, Delta: 0.25}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Flow[0] != 1 || res.Flow[1] != 1 {
		t.Fatalf("flow = %v", res.Flow)
	}
}

func TestMaxFlowFacade(t *testing.T) {
	dg := graph.LayeredDAG(2, 4, 2, 6, 3)
	s, tt := 0, dg.N()-1
	want, _, err := maxflow.Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxFlowWith(dg, s, tt, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want {
		t.Fatalf("value %d != %d", res.Value, want)
	}
	if _, err := maxflow.CheckFlow(dg, res.Flow, s, tt); err != nil {
		t.Fatal(err)
	}
}

func TestMinCostFlowFacade(t *testing.T) {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 5)
	dg.MustAddArc(1, 2, 1, 5)
	dg.MustAddArc(0, 3, 1, 1)
	dg.MustAddArc(3, 2, 1, 1)
	sigma := []int64{1, 0, -1, 0}
	res, err := MinCostFlowWith(dg, sigma, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Fatalf("cost = %d, want 2", res.Cost)
	}
	if _, err := mcmf.CheckRouting(dg, res.Flow, sigma); err != nil {
		t.Fatal(err)
	}
}
