package electrical

import (
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

func sessionTestGraph(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.RandomRegular(n, 6, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// freshInternalSolve is the pre-session internal path: build the Laplacian
// and the Jacobi-preconditioned CG solver from scratch, exactly as the
// FastSolve IPM paths used to per iteration.
func freshInternalSolve(t *testing.T, g *graph.Graph, b linalg.Vec, eps float64) linalg.Vec {
	t.Helper()
	solver := linalg.LaplacianCGSolver(linalg.NewLaplacian(g), eps)
	x, err := solver(b)
	if err != nil {
		t.Fatal(err)
	}
	return x
}

// A cold session solve on the internal path must be bit-identical to a
// fresh build: same edge order, same degree summation order, same
// deterministic CG.
func TestSessionColdBitIdentity(t *testing.T) {
	g := sessionTestGraph(t, 48, 11)
	sess, err := NewSession(g.Clone(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[0] = 1
	b[g.N()-1] = -1
	const eps = 1e-10

	got, err := sess.Potentials(b, eps, "test")
	if err != nil {
		t.Fatal(err)
	}
	want := freshInternalSolve(t, g, b, eps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phi[%d] = %v, fresh build gives %v (not bit-identical)", i, got[i], want[i])
		}
	}
}

// A reweighted session solve must be bit-identical to a fresh build on the
// new weights, including the degenerate-conductance clamp the IPMs rely on.
func TestSessionReweightBitIdentity(t *testing.T) {
	g := sessionTestGraph(t, 48, 12)
	sess, err := NewSession(g.Clone(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(13))
	w := make([]float64, g.M())
	for i := range w {
		w[i] = math.Exp(rng.NormFloat64())
	}
	w[0] = 0           // clamped to 1e-12
	w[1] = math.Inf(1) // clamped
	w[2] = math.NaN()  // clamped
	if err := sess.Reweight(w); err != nil {
		t.Fatal(err)
	}

	fresh := g.Clone()
	for i, wi := range w {
		if wi <= 0 || math.IsInf(wi, 0) || math.IsNaN(wi) {
			wi = 1e-12
		}
		if err := fresh.SetWeight(i, wi); err != nil {
			t.Fatal(err)
		}
	}

	b := linalg.NewVec(g.N())
	b[3] = 1
	b[7] = -1
	const eps = 1e-10
	got, err := sess.Potentials(b, eps, "test")
	if err != nil {
		t.Fatal(err)
	}
	want := freshInternalSolve(t, fresh, b, eps)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phi[%d] = %v after reweight, fresh build gives %v", i, got[i], want[i])
		}
	}
	if st := sess.Stats(); st.Solves != 1 || st.Reweights != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// Warm starting changes the seed, not the answer's quality: the solve must
// still meet the residual tolerance on the current Laplacian.
func TestSessionWarmStartStaysAccurate(t *testing.T) {
	g := sessionTestGraph(t, 48, 14)
	sess, err := NewSession(g.Clone(), SessionOptions{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	const eps = 1e-10
	rng := rand.New(rand.NewSource(15))
	w := make([]float64, g.M())
	b := linalg.NewVec(g.N())
	b[1] = 1
	b[5] = -1
	for iter := 0; iter < 4; iter++ {
		for i := range w {
			w[i] = 1 + 0.2*float64(iter)*rng.Float64()
		}
		if err := sess.Reweight(w); err != nil {
			t.Fatal(err)
		}
		phi, err := sess.Potentials(b, eps, "loop")
		if err != nil {
			t.Fatal(err)
		}
		r := b.Clone()
		av := linalg.NewVec(g.N())
		sess.Laplacian().Apply(av, phi)
		r.AXPY(-1, av)
		r.RemoveMean()
		if res := r.Norm2() / b.Norm2(); res > eps {
			t.Fatalf("iter %d: warm-started residual %g > %g", iter, res, eps)
		}
	}
}

// Full mode drives the complete Theorem 1.1 stack through the same session
// surface: reweight, solve, and check the answer against the internal path.
func TestSessionFullModeReweight(t *testing.T) {
	g := sessionTestGraph(t, 48, 16)
	sess, err := NewSession(g.Clone(), SessionOptions{Full: true})
	if err != nil {
		t.Fatal(err)
	}
	if sess.Solver() == nil {
		t.Fatal("full mode without a solver")
	}
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1.25
	}
	if err := sess.Reweight(w); err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[2] = 1
	b[9] = -1
	const eps = 1e-8
	phi, err := sess.Potentials(b, eps, "full")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSession(sess.Graph().Clone(), SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Potentials(b, 1e-12, "ref")
	if err != nil {
		t.Fatal(err)
	}
	diff := phi.Clone()
	diff.AXPY(-1, want)
	diff.RemoveMean()
	if rel := diff.Norm2() / want.Norm2(); rel > 1e-4 {
		t.Fatalf("full-mode potentials off by %g relative", rel)
	}
}

func TestSessionReweightLengthMismatch(t *testing.T) {
	g := sessionTestGraph(t, 32, 17)
	sess, err := NewSession(g, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Reweight(make([]float64, 2)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestPotentialsBatchMatchesSequential pins the batch API's contract: a
// PotentialsBatch over distinct slots returns, per slot, bit-for-bit what
// the same Potentials calls issued sequentially return — warm seeds are
// read pre-batch and lanes written post-barrier, so interleaving cannot
// leak into the numerics. Checked at several worker counts, including the
// sequential pool.
func TestPotentialsBatchMatchesSequential(t *testing.T) {
	g := sessionTestGraph(t, 48, 21)
	mkRHS := func() []linalg.Vec {
		bs := make([]linalg.Vec, 3)
		for i := range bs {
			b := linalg.NewVec(g.N())
			b[i] = 1
			b[g.N()-1-i] = -1
			bs[i] = b
		}
		return bs
	}
	slots := []string{"aug", "fix", "probe"}
	const eps = 1e-10

	for _, workers := range []int{1, 2, 8} {
		// Sequential reference: one warm session driven slot by slot, twice
		// (the second round exercises the warm lanes).
		ref, err := NewSession(g.Clone(), SessionOptions{WarmStart: true})
		if err != nil {
			t.Fatal(err)
		}
		var want [][]linalg.Vec
		for round := 0; round < 2; round++ {
			bs := mkRHS()
			xs := make([]linalg.Vec, len(bs))
			for i := range bs {
				if xs[i], err = ref.Potentials(bs[i], eps, slots[i]); err != nil {
					t.Fatal(err)
				}
			}
			want = append(want, xs)
		}

		sess, err := NewSession(g.Clone(), SessionOptions{WarmStart: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 2; round++ {
			got, err := sess.PotentialsBatch(mkRHS(), eps, slots)
			if err != nil {
				t.Fatal(err)
			}
			for s := range got {
				for i := range got[s] {
					if got[s][i] != want[round][s][i] {
						t.Fatalf("workers=%d round=%d slot %q: phi[%d] = %v, sequential gives %v",
							workers, round, slots[s], i, got[s][i], want[round][s][i])
					}
				}
			}
		}
		if st := sess.Stats(); st.Solves != 6 {
			t.Fatalf("workers=%d: stats.Solves = %d, want 6", workers, st.Solves)
		}
	}
}

// TestPotentialsBatchValidation pins the batch API's error contract:
// mismatched lengths and duplicate slots are rejected before any solve runs.
func TestPotentialsBatchValidation(t *testing.T) {
	g := sessionTestGraph(t, 24, 22)
	sess, err := NewSession(g, SessionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[0], b[1] = 1, -1
	if _, err := sess.PotentialsBatch([]linalg.Vec{b, b}, 1e-8, []string{"only"}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := sess.PotentialsBatch([]linalg.Vec{b, b}, 1e-8, []string{"dup", "dup"}); err == nil {
		t.Fatal("duplicate slots accepted: two lanes would race on one warm seed")
	}
	if st := sess.Stats(); st.Solves != 0 {
		t.Fatalf("rejected batches must not count solves: %+v", st.Solves)
	}
}

// TestPotentialsBatchFullMode checks the Full-mode degradation: the batch
// serializes through the stateful chain solver and still returns one result
// per slot, matching sequential Potentials on a fresh identical session.
func TestPotentialsBatchFullMode(t *testing.T) {
	g := sessionTestGraph(t, 32, 23)
	mk := func() *Session {
		sess, err := NewSession(g.Clone(), SessionOptions{Full: true, Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		return sess
	}
	bs := make([]linalg.Vec, 2)
	for i := range bs {
		b := linalg.NewVec(g.N())
		b[i] = 1
		b[g.N()-1-i] = -1
		bs[i] = b
	}
	const eps = 1e-6
	got, err := mk().PotentialsBatch(bs, eps, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	ref := mk()
	for i := range bs {
		want, err := ref.Potentials(bs[i], eps, string(rune('a'+i)))
		if err != nil {
			t.Fatal(err)
		}
		for j := range want {
			if got[i][j] != want[j] {
				t.Fatalf("full-mode batch slot %d: phi[%d] = %v, sequential %v", i, j, got[i][j], want[j])
			}
		}
	}
}
