package serve

import (
	"net"
	"net/http"
	"testing"
	"time"
)

// TestConnBackoffDeterministic pins the transport-retry backoff: replayable
// (pure function of request index and attempt), exponential with a cap, and
// jittered below 50% of the base.
func TestConnBackoffDeterministic(t *testing.T) {
	for req := 0; req < 4; req++ {
		for attempt := 1; attempt <= 9; attempt++ {
			d := connBackoff(req, attempt)
			if d != connBackoff(req, attempt) {
				t.Fatalf("connBackoff(%d,%d) is not deterministic", req, attempt)
			}
			shift := attempt - 1
			if shift > 6 {
				shift = 6
			}
			base := 10 * time.Millisecond << uint(shift)
			if d < base || d >= base+base/2 {
				t.Fatalf("connBackoff(%d,%d) = %v outside [%v, %v)", req, attempt, d, base, base+base/2)
			}
		}
	}
	if a, b := connBackoff(0, 1), connBackoff(1, 1); a == b {
		t.Fatalf("jitter does not separate concurrent requests: %v == %v", a, b)
	}
}

// TestLoadConnRetry boots the load generator against a port with no
// listener, then brings the daemon up behind its back: with ConnRetries the
// refused connections are absorbed by backoff and the run finishes with
// zero errors — the ride-through a restarting lapccd needs.
func TestLoadConnRetry(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close() // free the port: the first wave of requests must be refused

	type outcome struct {
		res *LoadResult
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := RunLoad(LoadOptions{
			BaseURL:     "http://" + addr,
			Requests:    6,
			Concurrency: 2,
			N:           16,
			Mix:         map[string]int{"solve": 1},
			ConnRetries: 12,
		})
		done <- outcome{res, err}
	}()

	time.Sleep(100 * time.Millisecond)
	ln, err = net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("rebinding %s: %v", addr, err)
	}
	s := New(Options{})
	hs := &http.Server{Handler: s.Handler()}
	go hs.Serve(ln)
	defer hs.Close()

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if o.res.Errors != 0 {
		t.Fatalf("%d/%d requests failed despite conn retries: %+v", o.res.Errors, o.res.Requests, o.res.PerOp)
	}
	if o.res.ConnRetries == 0 {
		t.Fatal("the daemon came up late but no transport retries were recorded")
	}
}
