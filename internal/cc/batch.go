package cc

import (
	"lapcc/internal/rounds"
)

// RouteBatched delivers an arbitrary packet set by splitting it into
// admissible batches (every node source and destination of at most n packets
// per batch) and routing each batch with Route. Nodes owning many virtual
// objects (e.g. a flow-network vertex with many parallel edges) legitimately
// need more rounds to move proportionally more messages; batching charges
// exactly that.
func RouteBatched(n int, packets []Packet, ledger *rounds.Ledger, tag string) ([][]Packet, RouteResult, error) {
	out := make([][]Packet, n)
	var agg RouteResult
	srcCount := make([]int, n)
	dstCount := make([]int, n)
	var batch []Packet

	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		delivered, res, err := Route(n, batch, ledger, tag)
		if err != nil {
			return err
		}
		agg.Executed += res.Executed
		agg.Charged += res.Charged
		agg.LinkMessages += res.LinkMessages
		agg.Overflowed = agg.Overflowed || res.Overflowed
		for d := 0; d < n; d++ {
			out[d] = append(out[d], delivered[d]...)
		}
		batch = batch[:0]
		for i := range srcCount {
			srcCount[i] = 0
			dstCount[i] = 0
		}
		return nil
	}

	for _, p := range packets {
		if p.Src < 0 || p.Src >= n || p.Dst < 0 || p.Dst >= n {
			// Let Route produce the canonical error for bad endpoints. The
			// continue is load-bearing: without it a (hypothetically)
			// non-erroring delegated call would fall through to the
			// srcCount/dstCount indexing below and panic on a negative or
			// out-of-range index.
			if err := flush(); err != nil {
				return nil, agg, err
			}
			if _, _, err := Route(n, []Packet{p}, nil, tag); err != nil {
				return nil, agg, err
			}
			continue
		}
		if srcCount[p.Src] >= n || dstCount[p.Dst] >= n {
			if err := flush(); err != nil {
				return nil, agg, err
			}
		}
		srcCount[p.Src]++
		dstCount[p.Dst]++
		batch = append(batch, p)
	}
	if err := flush(); err != nil {
		return nil, agg, err
	}
	return out, agg, nil
}
