package cc

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/rounds"
)

func TestRouteBatchedSmallSetMatchesRoute(t *testing.T) {
	n := 8
	pkts := []Packet{
		{Src: 0, Dst: 3, Data: []int64{1}},
		{Src: 1, Dst: 3, Data: []int64{2}},
		{Src: 2, Dst: 5, Data: []int64{3}},
	}
	out, res, err := RouteBatched(n, pkts, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(out[3]) != 2 || len(out[5]) != 1 {
		t.Fatalf("delivery counts wrong: %d, %d", len(out[3]), len(out[5]))
	}
	if res.Executed == 0 {
		t.Fatal("no rounds executed")
	}
}

func TestRouteBatchedOverloadedNodeSplits(t *testing.T) {
	// A single node sending 3n messages must be split into >= 3 batches,
	// costing proportionally more rounds — the model's honest price.
	n := 6
	var pkts []Packet
	for k := 0; k < 3*n; k++ {
		pkts = append(pkts, Packet{Src: 0, Dst: 1 + k%(n-1), Data: []int64{int64(k)}})
	}
	led := rounds.New()
	out, res, err := RouteBatched(n, pkts, led, "batched")
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for d := range out {
		total += len(out[d])
	}
	if total != 3*n {
		t.Fatalf("delivered %d of %d", total, 3*n)
	}
	// A single admissible batch would be <= LenzenRoundBound; three batches
	// may exceed it.
	single, _, err := Route(n, pkts[:n], nil, "")
	if err != nil {
		t.Fatal(err)
	}
	_ = single
	if res.Charged < 3 {
		t.Fatalf("3 batches charged only %d rounds", res.Charged)
	}
}

func TestRouteBatchedRejectsBadEndpoint(t *testing.T) {
	_, _, err := RouteBatched(4, []Packet{{Src: 0, Dst: 9}}, nil, "")
	if !errors.Is(err, ErrBadRecipient) {
		t.Fatalf("error = %v, want ErrBadRecipient", err)
	}
}

func TestRouteBatchedEmpty(t *testing.T) {
	out, res, err := RouteBatched(4, nil, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if res.Executed != 0 {
		t.Fatalf("executed %d rounds for empty set", res.Executed)
	}
	for d := range out {
		if len(out[d]) != 0 {
			t.Fatal("phantom delivery")
		}
	}
}

// Property: arbitrary (even inadmissible-in-one-shot) packet sets are fully
// delivered by batching.
func TestRouteBatchedDeliveryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(10)
		count := rng.Intn(5 * n)
		var pkts []Packet
		for k := 0; k < count; k++ {
			s := rng.Intn(n)
			d := rng.Intn(n)
			pkts = append(pkts, Packet{Src: s, Dst: d, Data: []int64{int64(k)}})
		}
		out, _, err := RouteBatched(n, pkts, nil, "")
		if err != nil {
			return false
		}
		got := 0
		for d := range out {
			got += len(out[d])
			for _, p := range out[d] {
				if p.Dst != d {
					return false
				}
			}
		}
		return got == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
