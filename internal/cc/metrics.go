package cc

import (
	"sync/atomic"

	"lapcc/internal/metrics"
)

// The engine's metrics binding follows the same discipline as the observer
// hook: everything is resolved before the round loop, so the per-round cost
// with metrics enabled is a handful of atomic adds and with metrics
// disabled is one nil check. Instruments are registered once per registry
// and cached by registry identity, never looked up inside Run.

// globalMetrics is the process-wide default registry, used by every Engine
// without an explicit SetMetrics and by the package-level routing
// primitives (the reliable-delivery layer), which have no engine to hang a
// registry on.
var globalMetrics atomic.Pointer[metrics.Registry]

// globalInstr caches the instruments resolved from globalMetrics so the
// reliable layer does not re-register on every call.
var globalInstr atomic.Pointer[ccInstruments]

// SetMetrics installs reg as the process-wide default metrics registry for
// the cc package: engines without a per-engine registry and the
// reliable-delivery primitives record into it. A nil reg disables
// recording. Safe for concurrent use with running engines — an engine picks
// up the change at its next Run call.
func SetMetrics(reg *metrics.Registry) {
	globalMetrics.Store(reg)
	globalInstr.Store(nil)
}

// MetricsRegistry returns the registry installed by SetMetrics (nil when
// disabled).
func MetricsRegistry() *metrics.Registry { return globalMetrics.Load() }

// ccInstruments is every instrument the cc package records into, resolved
// once per registry.
type ccInstruments struct {
	reg *metrics.Registry

	// Engine per-round accounting.
	rounds        *metrics.Counter
	messages      *metrics.Counter
	words         *metrics.Counter
	roundMessages *metrics.Histogram
	roundWords    *metrics.Histogram
	stepNs        *metrics.Histogram
	mergeNs       *metrics.Histogram

	// Injected-fault counters (mirror FaultStats).
	faultDropped    *metrics.Counter
	faultCorrupted  *metrics.Counter
	faultDuplicated *metrics.Counter
	faultDelayed    *metrics.Counter
	faultStalled    *metrics.Counter

	// Reliable-delivery protocol counters.
	relWaves         *metrics.Counter
	relRetransmitted *metrics.Counter
	relAckRounds     *metrics.Counter
	relBackoffRounds *metrics.Counter
	relFailures      *metrics.Counter

	// Routing-primitive accounting (Route/RouteBatched/BroadcastAll — the
	// model-level primitives the solver stack executes its measured rounds
	// through).
	routeRounds   *metrics.Counter
	routeMessages *metrics.Counter
	routeWords    *metrics.Counter
	routeCallMsgs *metrics.Histogram
	broadcasts    *metrics.Counter
}

func resolveInstruments(reg *metrics.Registry) *ccInstruments {
	faultHelp := "Faults injected by the engine's fault plan, by type."
	return &ccInstruments{
		reg: reg,

		rounds:        reg.Counter("lapcc_engine_rounds_total", "Communication rounds executed by the clique engine."),
		messages:      reg.Counter("lapcc_engine_messages_total", "Messages sent on the clique, summed over rounds."),
		words:         reg.Counter("lapcc_engine_words_total", "Payload words sent on the clique, summed over rounds."),
		roundMessages: reg.Histogram("lapcc_engine_round_messages", "Messages sent per engine round."),
		roundWords:    reg.Histogram("lapcc_engine_round_words", "Payload words sent per engine round."),
		stepNs:        reg.Histogram("lapcc_engine_step_duration_ns", "Wall time of the compute phase per round, nanoseconds."),
		mergeNs:       reg.Histogram("lapcc_engine_merge_duration_ns", "Wall time of the merge phase per round, nanoseconds."),

		faultDropped:    reg.Counter("lapcc_engine_faults_total", faultHelp, "type", "dropped"),
		faultCorrupted:  reg.Counter("lapcc_engine_faults_total", faultHelp, "type", "corrupted"),
		faultDuplicated: reg.Counter("lapcc_engine_faults_total", faultHelp, "type", "duplicated"),
		faultDelayed:    reg.Counter("lapcc_engine_faults_total", faultHelp, "type", "delayed"),
		faultStalled:    reg.Counter("lapcc_engine_faults_total", faultHelp, "type", "stalled_steps"),

		relWaves:         reg.Counter("lapcc_reliable_waves_total", "Transmission waves (first sends plus retransmit waves) of the reliable-delivery layer."),
		relRetransmitted: reg.Counter("lapcc_reliable_retransmitted_packets_total", "Packets retransmitted after a missing acknowledgement."),
		relAckRounds:     reg.Counter("lapcc_reliable_ack_rounds_total", "Acknowledgement rounds spent by the reliable-delivery layer."),
		relBackoffRounds: reg.Counter("lapcc_reliable_backoff_rounds_total", "Backoff rounds waited out by the reliable-delivery layer."),
		relFailures:      reg.Counter("lapcc_reliable_delivery_failures_total", "Reliable deliveries abandoned after exhausting retries."),

		routeRounds:   reg.Counter("lapcc_route_rounds_total", "Measured clique rounds executed by the Lenzen routing primitives."),
		routeMessages: reg.Counter("lapcc_route_messages_total", "Link messages sent by the routing primitives."),
		routeWords:    reg.Counter("lapcc_route_words_total", "Payload words sent by the routing primitives."),
		routeCallMsgs: reg.Histogram("lapcc_route_call_messages", "Link messages per routing-primitive call."),
		broadcasts:    reg.Counter("lapcc_route_broadcasts_total", "All-to-all broadcast rounds executed."),
	}
}

// instrumentsFor returns the cached instruments for the global registry,
// resolving them on first use after SetMetrics. Returns nil when metrics
// are disabled.
func instrumentsFor(reg *metrics.Registry) *ccInstruments {
	if reg == nil {
		return nil
	}
	if in := globalInstr.Load(); in != nil && in.reg == reg {
		return in
	}
	in := resolveInstruments(reg)
	globalInstr.Store(in)
	return in
}

// SetMetrics pins reg as this engine's registry, overriding the package
// default for this engine only (nil reverts to the package default). Like
// SetObserver, call it before Run.
func (e *Engine) SetMetrics(reg *metrics.Registry) {
	e.metricsReg = reg
	e.mi = nil
}

// bindMetrics resolves the engine's instruments for this Run call: the
// pinned registry if set, the package default otherwise. The resolution is
// cached by registry identity so repeated Runs do no registry lookups.
func (e *Engine) bindMetrics() *ccInstruments {
	reg := e.metricsReg
	if reg == nil {
		reg = globalMetrics.Load()
	}
	if reg == nil {
		e.mi = nil
		return nil
	}
	if e.mi == nil || e.mi.reg != reg {
		e.mi = resolveInstruments(reg)
	}
	return e.mi
}

// recordFaults mirrors one round's FaultStats into the fault counters.
func (mi *ccInstruments) recordFaults(f FaultStats) {
	mi.faultDropped.Add(f.Dropped)
	mi.faultCorrupted.Add(f.Corrupted)
	mi.faultDuplicated.Add(f.Duplicated)
	mi.faultDelayed.Add(f.Delayed)
	mi.faultStalled.Add(f.StalledSteps)
}

// recordRoute mirrors one Route call into the routing-primitive counters.
// A nil receiver (metrics disabled) records nothing.
func (mi *ccInstruments) recordRoute(res RouteResult, words int64) {
	if mi == nil {
		return
	}
	mi.routeRounds.Add(res.Executed)
	mi.routeMessages.Add(res.LinkMessages)
	mi.routeWords.Add(words)
	mi.routeCallMsgs.Observe(res.LinkMessages)
}

// recordReliable mirrors one public reliable-delivery call's aggregate
// result into the protocol counters. Called with the global registry's
// instruments; a nil receiver (metrics disabled) records nothing.
func (mi *ccInstruments) recordReliable(agg ReliableResult, failed bool) {
	if mi == nil {
		return
	}
	mi.relWaves.Add(int64(agg.Attempts))
	mi.relRetransmitted.Add(agg.Retransmitted)
	mi.relAckRounds.Add(agg.AckRounds)
	mi.relBackoffRounds.Add(agg.BackoffRounds)
	if failed {
		mi.relFailures.Inc()
	}
	mi.recordFaults(agg.Faults)
}
