package graph

import (
	"fmt"
	"math/rand"
)

// Generators for the workload families used by the experiments in
// EXPERIMENTS.md. All randomized generators take an explicit seed so every
// experiment is reproducible; the algorithms themselves stay deterministic.

// Path returns the path graph 0-1-...-(n-1) with unit weights.
func Path(n int) *Graph {
	g := New(n)
	for i := 0; i+1 < n; i++ {
		g.MustAddEdge(i, i+1, 1)
	}
	return g
}

// Cycle returns the cycle graph on n >= 3 vertices with unit weights.
func Cycle(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("graph: cycle needs n >= 3, got %d", n)
	}
	g := New(n)
	for i := 0; i < n; i++ {
		g.MustAddEdge(i, (i+1)%n, 1)
	}
	return g, nil
}

// Grid returns the rows x cols grid graph with unit weights.
// Vertex (r,c) has index r*cols+c.
func Grid(rows, cols int) *Graph {
	g := New(rows * cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			v := r*cols + c
			if c+1 < cols {
				g.MustAddEdge(v, v+1, 1)
			}
			if r+1 < rows {
				g.MustAddEdge(v, v+cols, 1)
			}
		}
	}
	return g
}

// Complete returns the complete graph K_n with unit weights.
func Complete(n int) *Graph {
	g := New(n)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			g.MustAddEdge(u, v, 1)
		}
	}
	return g
}

// Star returns the star graph with center 0 and n-1 leaves, unit weights.
func Star(n int) *Graph {
	g := New(n)
	for v := 1; v < n; v++ {
		g.MustAddEdge(0, v, 1)
	}
	return g
}

// Circulant returns the circulant graph on n vertices where vertex i is
// joined to i±j (mod n) for each jump j. Circulants with geometric jump
// sequences are classic deterministic expanders and serve as the internal
// sparsifier building block (see internal/sparsify).
func Circulant(n int, jumps []int, w float64) (*Graph, error) {
	g := New(n)
	for _, j := range jumps {
		if j <= 0 || 2*j > n && j != n/2 {
			if j <= 0 || j >= n {
				return nil, fmt.Errorf("graph: circulant jump %d out of range for n=%d", j, n)
			}
		}
		for i := 0; i < n; i++ {
			u, v := i, (i+j)%n
			if u == v {
				continue
			}
			// Avoid double-adding the same {i, i+n/2} pair when j == n/2.
			if 2*j == n && u > v {
				continue
			}
			g.MustAddEdge(u, v, w)
		}
	}
	return g, nil
}

// GeometricJumps returns the jump set {1, 2, 4, ..., <= n/2} used for
// circulant expanders.
func GeometricJumps(n int) []int {
	var js []int
	for j := 1; 2*j <= n; j *= 2 {
		js = append(js, j)
	}
	if len(js) == 0 {
		js = []int{1}
	}
	return js
}

// RandomRegular returns a random d-regular simple graph on n vertices with
// unit weights. It starts from a circulant d-regular base and randomizes it
// with double-edge swaps (which preserve regularity and simplicity), so it
// succeeds for every valid (n, d): n*d even and d < n.
func RandomRegular(n, d int, seed int64) (*Graph, error) {
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: n*d must be even (n=%d d=%d)", n, d)
	}
	if d >= n {
		return nil, fmt.Errorf("graph: need d < n (n=%d d=%d)", n, d)
	}
	if d <= 0 {
		return nil, fmt.Errorf("graph: need d >= 1, got %d", d)
	}
	// Circulant base: jumps 1..d/2, plus the antipodal matching when d is
	// odd (n is even in that case because n*d is even).
	var jumps []int
	for j := 1; j <= d/2; j++ {
		jumps = append(jumps, j)
	}
	if d%2 == 1 {
		jumps = append(jumps, n/2)
	}
	edges := make([][2]int, 0, n*d/2)
	used := make(map[[2]int]bool, n*d/2)
	addPair := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		key := [2]int{u, v}
		if used[key] {
			return
		}
		used[key] = true
		edges = append(edges, key)
	}
	for _, j := range jumps {
		for i := 0; i < n; i++ {
			if 2*j == n && i >= n/2 {
				continue // antipodal matching: add each pair once
			}
			addPair(i, (i+j)%n)
		}
	}
	if len(edges) != n*d/2 {
		return nil, fmt.Errorf("graph: circulant base has %d edges, want %d (n=%d d=%d)", len(edges), n*d/2, n, d)
	}
	// Randomize with double-edge swaps: (a-b, c-e) -> (a-e, c-b).
	rng := rand.New(rand.NewSource(seed))
	key := func(u, v int) [2]int {
		if u > v {
			u, v = v, u
		}
		return [2]int{u, v}
	}
	for swap := 0; swap < 12*len(edges); swap++ {
		i := rng.Intn(len(edges))
		j := rng.Intn(len(edges))
		if i == j {
			continue
		}
		a, b := edges[i][0], edges[i][1]
		c, e := edges[j][0], edges[j][1]
		if rng.Intn(2) == 1 {
			c, e = e, c
		}
		if a == e || c == b || a == c || b == e {
			continue
		}
		if used[key(a, e)] || used[key(c, b)] {
			continue
		}
		delete(used, edges[i])
		delete(used, edges[j])
		edges[i] = key(a, e)
		edges[j] = key(c, b)
		used[edges[i]] = true
		used[edges[j]] = true
	}
	g := New(n)
	for _, e := range edges {
		g.MustAddEdge(e[0], e[1], 1)
	}
	return g, nil
}

// GNM returns a random simple graph with n vertices and m distinct edges,
// unit weights.
func GNM(n, m int, seed int64) (*Graph, error) {
	maxM := n * (n - 1) / 2
	if m > maxM {
		return nil, fmt.Errorf("graph: m=%d exceeds max %d for n=%d", m, maxM, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	used := make(map[[2]int]bool, m)
	for g.M() < m {
		u := rng.Intn(n)
		v := rng.Intn(n)
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if used[[2]int{u, v}] {
			continue
		}
		used[[2]int{u, v}] = true
		g.MustAddEdge(u, v, 1)
	}
	return g, nil
}

// ConnectedGNM returns a connected random graph: a random spanning tree plus
// m-(n-1) extra random edges. m must be at least n-1.
func ConnectedGNM(n, m int, seed int64) (*Graph, error) {
	if m < n-1 {
		return nil, fmt.Errorf("graph: connected graph needs m >= n-1 (n=%d m=%d)", n, m)
	}
	if maxM := n * (n - 1) / 2; m > maxM {
		return nil, fmt.Errorf("graph: m=%d exceeds max %d for n=%d", m, maxM, n)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	perm := rng.Perm(n)
	used := make(map[[2]int]bool)
	add := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		if u == v || used[[2]int{u, v}] {
			return false
		}
		used[[2]int{u, v}] = true
		g.MustAddEdge(u, v, 1)
		return true
	}
	for i := 1; i < n; i++ {
		// Attach each vertex to a random earlier vertex in the permutation.
		add(perm[i], perm[rng.Intn(i)])
	}
	for g.M() < m {
		add(rng.Intn(n), rng.Intn(n))
	}
	return g, nil
}

// WithRandomWeights returns a copy of g whose edge weights are independent
// uniform integers in {1, ..., maxW}.
func WithRandomWeights(g *Graph, maxW int64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	c := New(g.n)
	for _, e := range g.edges {
		c.MustAddEdge(e.U, e.V, float64(1+rng.Int63n(maxW)))
	}
	return c
}

// TwoClusters returns a graph made of two dense random clusters of the given
// size joined by `bridges` edges. It is the canonical hard instance for
// expander decomposition tests: the minimum-conductance cut separates the
// clusters.
func TwoClusters(size, degree, bridges int, seed int64) (*Graph, error) {
	a, err := RandomRegular(size, degree, seed)
	if err != nil {
		return nil, err
	}
	b, err := RandomRegular(size, degree, seed+1)
	if err != nil {
		return nil, err
	}
	g := New(2 * size)
	for _, e := range a.Edges() {
		g.MustAddEdge(e.U, e.V, 1)
	}
	for _, e := range b.Edges() {
		g.MustAddEdge(e.U+size, e.V+size, 1)
	}
	rng := rand.New(rand.NewSource(seed + 2))
	for i := 0; i < bridges; i++ {
		g.MustAddEdge(rng.Intn(size), size+rng.Intn(size), 1)
	}
	return g, nil
}

// RandomEulerian returns a graph that is a union of `cycles` random simple
// cycles on n vertices (so every vertex has even degree). Parallel edges may
// occur; that is fine for Eulerian orientation.
func RandomEulerian(n, cycles, minLen int, seed int64) (*Graph, error) {
	if minLen < 3 || minLen > n {
		return nil, fmt.Errorf("graph: cycle length must be in [3, n]")
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(n)
	for c := 0; c < cycles; c++ {
		l := minLen + rng.Intn(n-minLen+1)
		perm := rng.Perm(n)[:l]
		for i := 0; i < l; i++ {
			g.MustAddEdge(perm[i], perm[(i+1)%l], 1)
		}
	}
	return g, nil
}

// LayeredDAG returns a directed layered network for max-flow experiments:
// a source (vertex 0), `layers` layers of `width` vertices, and a sink
// (last vertex). Consecutive layers are joined by `density` random arcs per
// vertex with capacities uniform in {1..maxCap}.
func LayeredDAG(layers, width, density int, maxCap int64, seed int64) *DiGraph {
	rng := rand.New(rand.NewSource(seed))
	n := 2 + layers*width
	g := NewDi(n)
	s, t := 0, n-1
	layerVertex := func(l, i int) int { return 1 + l*width + i }
	cap1 := func() int64 { return 1 + rng.Int63n(maxCap) }
	for i := 0; i < width; i++ {
		g.MustAddArc(s, layerVertex(0, i), cap1(), 1)
	}
	for l := 0; l+1 < layers; l++ {
		for i := 0; i < width; i++ {
			for d := 0; d < density; d++ {
				g.MustAddArc(layerVertex(l, i), layerVertex(l+1, rng.Intn(width)), cap1(), 1)
			}
		}
	}
	for i := 0; i < width; i++ {
		g.MustAddArc(layerVertex(layers-1, i), t, cap1(), 1)
	}
	return g
}

// RandomDiGraph returns a random directed graph with m arcs, capacities in
// {1..maxCap} and costs in {1..maxCost}. A directed s-t path through all
// vertices is always included so that vertex 0 reaches vertex n-1.
func RandomDiGraph(n, m int, maxCap, maxCost int64, seed int64) *DiGraph {
	rng := rand.New(rand.NewSource(seed))
	g := NewDi(n)
	for i := 0; i+1 < n && g.M() < m; i++ {
		g.MustAddArc(i, i+1, 1+rng.Int63n(maxCap), 1+rng.Int63n(maxCost))
	}
	for g.M() < m {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		g.MustAddArc(u, v, 1+rng.Int63n(maxCap), 1+rng.Int63n(maxCost))
	}
	return g
}

// RandomUnitBipartite returns a unit-capacity directed bipartite graph for
// the min-cost-flow experiments: `left` sources each with `degree` arcs to
// random right vertices, costs uniform in {1..maxCost}. The demand vector
// pairs with mcmf: each left vertex supplies one unit, each right vertex
// absorbs what it receives in a perfect matching sense. Arcs go left->right;
// vertex i in [0,left) is a left vertex, left+j is a right vertex.
func RandomUnitBipartite(left, right, degree int, maxCost int64, seed int64) *DiGraph {
	rng := rand.New(rand.NewSource(seed))
	g := NewDi(left + right)
	for u := 0; u < left; u++ {
		seen := map[int]bool{}
		for d := 0; d < degree; d++ {
			v := rng.Intn(right)
			if seen[v] {
				continue
			}
			seen[v] = true
			g.MustAddArc(u, left+v, 1, 1+rng.Int63n(maxCost))
		}
	}
	return g
}

// Hypercube returns the d-dimensional hypercube graph on 2^d vertices with
// unit weights — a classic bounded-degree expander-like topology.
func Hypercube(d int) (*Graph, error) {
	if d < 1 || d > 20 {
		return nil, fmt.Errorf("graph: hypercube dimension %d outside [1, 20]", d)
	}
	n := 1 << d
	g := New(n)
	for v := 0; v < n; v++ {
		for b := 0; b < d; b++ {
			u := v ^ (1 << b)
			if v < u {
				g.MustAddEdge(v, u, 1)
			}
		}
	}
	return g, nil
}

// BipartiteRegular returns a bipartite d-regular graph on two sides of k
// vertices each (vertex i on the left, k+j on the right), randomized by
// permutations; unit weights.
func BipartiteRegular(k, d int, seed int64) (*Graph, error) {
	if d < 1 || d > k {
		return nil, fmt.Errorf("graph: bipartite degree %d outside [1, %d]", d, k)
	}
	rng := rand.New(rand.NewSource(seed))
	g := New(2 * k)
	used := make(map[[2]int]bool, k*d)
	for r := 0; r < d; r++ {
		// Each round adds a perfect matching; retry a bounded number of
		// permutations to avoid duplicating an earlier matching edge.
		placed := false
		for attempt := 0; attempt < 200 && !placed; attempt++ {
			perm := rng.Perm(k)
			ok := true
			for i := 0; i < k; i++ {
				if used[[2]int{i, perm[i]}] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			for i := 0; i < k; i++ {
				used[[2]int{i, perm[i]}] = true
				g.MustAddEdge(i, k+perm[i], 1)
			}
			placed = true
		}
		if !placed {
			return nil, fmt.Errorf("graph: failed to place matching %d of %d", r+1, d)
		}
	}
	return g, nil
}

// GridFlowNetwork returns a directed grid flow network: source 0, sink
// rows*cols+1, arcs rightward and downward through an interior rows x cols
// grid with capacities uniform in {1..maxCap}. A standard max-flow workload
// with many crossing min cuts.
func GridFlowNetwork(rows, cols int, maxCap int64, seed int64) *DiGraph {
	rng := rand.New(rand.NewSource(seed))
	n := rows*cols + 2
	dg := NewDi(n)
	s, t := 0, n-1
	at := func(r, c int) int { return 1 + r*cols + c }
	cap1 := func() int64 { return 1 + rng.Int63n(maxCap) }
	for r := 0; r < rows; r++ {
		dg.MustAddArc(s, at(r, 0), cap1(), 1)
		dg.MustAddArc(at(r, cols-1), t, cap1(), 1)
		for c := 0; c+1 < cols; c++ {
			dg.MustAddArc(at(r, c), at(r, c+1), cap1(), 1)
		}
	}
	for c := 0; c < cols; c++ {
		for r := 0; r+1 < rows; r++ {
			dg.MustAddArc(at(r, c), at(r+1, c), cap1(), 1)
			dg.MustAddArc(at(r+1, c), at(r, c), cap1(), 1)
		}
	}
	return dg
}
