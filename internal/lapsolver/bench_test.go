package lapsolver

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

// Many-RHS serving: k right-hand sides through one warm-started session vs
// a freshly built solver per right-hand side. The second half of
// BENCH_solver.json.

const benchRHS = 8

func benchSolverGraph(b *testing.B) *graph.Graph {
	g, err := graph.RandomRegular(128, 8, 55)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func benchRHSVec(n, i int) linalg.Vec {
	v := linalg.NewVec(n)
	v[i%n] = 1
	v[(i+n/2)%n] = -1
	return v
}

func BenchmarkSolverSessionManyRHS(b *testing.B) {
	g := benchSolverGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s, err := NewSolver(g, Options{WarmStart: true})
		if err != nil {
			b.Fatal(err)
		}
		for k := 0; k < benchRHS; k++ {
			if _, _, err := s.Solve(benchRHSVec(g.N(), k), 1e-8); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkSolverSessionRebuildPerRHS(b *testing.B) {
	g := benchSolverGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for k := 0; k < benchRHS; k++ {
			s, err := NewSolver(g, Options{})
			if err != nil {
				b.Fatal(err)
			}
			if _, _, err := s.Solve(benchRHSVec(g.N(), k), 1e-8); err != nil {
				b.Fatal(err)
			}
		}
	}
}
