package mst

import (
	"math"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func TestKruskalKnown(t *testing.T) {
	// Triangle with weights 1,2,3: MST = {1,2} edges, weight 3.
	g := graph.New(3)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 2)
	g.MustAddEdge(0, 2, 3)
	ids, w := Kruskal(g)
	if len(ids) != 2 || w != 3 {
		t.Fatalf("ids=%v w=%v", ids, w)
	}
}

func TestKruskalForestOnDisconnected(t *testing.T) {
	g := graph.New(5)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(2, 3, 2)
	ids, w := Kruskal(g)
	if len(ids) != 2 || w != 3 {
		t.Fatalf("ids=%v w=%v", ids, w)
	}
}

func TestBoruvkaMatchesKruskal(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		base, err := graph.ConnectedGNM(40, 100, seed)
		if err != nil {
			t.Fatal(err)
		}
		g := graph.WithRandomWeights(base, 50, seed+100)
		led := rounds.New()
		res, err := Boruvka(g, led)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		_, want := Kruskal(g)
		if math.Abs(res.Weight-want) > 1e-9 {
			t.Fatalf("seed %d: Boruvka weight %v != Kruskal %v", seed, res.Weight, want)
		}
		if len(res.EdgeIDs) != g.N()-1 {
			t.Fatalf("seed %d: %d tree edges for n=%d", seed, len(res.EdgeIDs), g.N())
		}
		if led.Total() == 0 {
			t.Fatal("no rounds recorded")
		}
	}
}

func TestBoruvkaEqualWeights(t *testing.T) {
	// All-equal weights exercise the deterministic tie-breaking; any
	// spanning tree of K8 has weight 7.
	g := graph.Complete(8)
	res, err := Boruvka(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 7 || len(res.EdgeIDs) != 7 {
		t.Fatalf("weight %v edges %d", res.Weight, len(res.EdgeIDs))
	}
}

func TestBoruvkaDisconnectedForest(t *testing.T) {
	g := graph.New(6)
	g.MustAddEdge(0, 1, 3)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 2)
	g.MustAddEdge(3, 4, 5)
	res, err := Boruvka(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Components {0,1,2}: MST edges weight 1+2; {3,4}: 5; {5}: none.
	if math.Abs(res.Weight-8) > 1e-9 || len(res.EdgeIDs) != 3 {
		t.Fatalf("weight %v edges %v", res.Weight, res.EdgeIDs)
	}
}

func TestBoruvkaPhasesLogarithmic(t *testing.T) {
	base, err := graph.ConnectedGNM(256, 1024, 9)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.WithRandomWeights(base, 1000, 10)
	res, err := Boruvka(g, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Phases > 10 { // log2(256) = 8, plus slack
		t.Fatalf("%d phases for n=256; want <= log n + slack", res.Phases)
	}
}

func TestBoruvkaRoundsScaleLogarithmically(t *testing.T) {
	roundsAt := func(n int) int64 {
		base, err := graph.ConnectedGNM(n, 3*n, int64(n))
		if err != nil {
			t.Fatal(err)
		}
		g := graph.WithRandomWeights(base, 100, int64(n))
		led := rounds.New()
		if _, err := Boruvka(g, led); err != nil {
			t.Fatal(err)
		}
		return led.Total()
	}
	r64, r1024 := roundsAt(64), roundsAt(1024)
	if r1024 > 4*r64 {
		t.Fatalf("rounds grew %d -> %d; want logarithmic growth", r64, r1024)
	}
}

func TestLotkerRoundsShape(t *testing.T) {
	if LotkerRounds(2) != 1 {
		t.Fatal("tiny n should cost 1")
	}
	// log log shape: going from 2^8 to 2^64 should only double-ish.
	r8 := LotkerRounds(1 << 8)
	r64 := LotkerRounds(1 << 62)
	if r64 > 3*r8 {
		t.Fatalf("LotkerRounds grew %d -> %d; want log log growth", r8, r64)
	}
}

// Property: Boruvka equals Kruskal in weight on random weighted graphs.
func TestBoruvkaKruskalProperty(t *testing.T) {
	f := func(seed int64) bool {
		base, err := graph.ConnectedGNM(16, 40, seed)
		if err != nil {
			return false
		}
		g := graph.WithRandomWeights(base, 9, seed+1)
		res, err := Boruvka(g, nil)
		if err != nil {
			return false
		}
		_, want := Kruskal(g)
		return math.Abs(res.Weight-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
