package expander

import (
	"errors"
	"math"
	"testing"

	"lapcc/internal/graph"
)

func TestConductanceSimpleCut(t *testing.T) {
	// Two triangles joined by one edge: cutting between them gives
	// conductance 1/7 (cut 1, each side volume 7).
	g := graph.New(6)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(0, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(3, 5, 1)
	g.MustAddEdge(2, 3, 1)
	inS := []bool{true, true, true, false, false, false}
	phi, err := Conductance(g, inS)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1.0/7.0) > 1e-12 {
		t.Fatalf("conductance = %v, want 1/7", phi)
	}
}

func TestConductanceErrors(t *testing.T) {
	g := graph.Path(3)
	if _, err := Conductance(g, []bool{true}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if _, err := Conductance(g, []bool{false, false, false}); !errors.Is(err, ErrNoCut) {
		t.Fatalf("empty side error = %v", err)
	}
}

func TestGraphConductanceMatchesKnownValues(t *testing.T) {
	// The cycle C_n has conductance 2/floor(vol/2)... for C_6: best cut
	// splits into two paths of 3: cut=2, min vol=6, phi=1/3.
	g, err := graph.Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	phi, _, err := GraphConductance(g)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phi-1.0/3.0) > 1e-12 {
		t.Fatalf("C6 conductance = %v, want 1/3", phi)
	}
	// Complete graph K_5: conductance = (floor(n/2)*ceil(n/2)) / (min side
	// volume) = (2*3)/(2*4) = 0.75.
	k := graph.Complete(5)
	phiK, _, err := GraphConductance(k)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(phiK-0.75) > 1e-12 {
		t.Fatalf("K5 conductance = %v, want 0.75", phiK)
	}
}

func TestGraphConductanceRejectsLargeN(t *testing.T) {
	if _, _, err := GraphConductance(graph.Path(25)); err == nil {
		t.Fatal("n > 20 should error")
	}
}

func TestSweepCutFindsBottleneck(t *testing.T) {
	// Dumbbell: sweep cut of the Fiedler vector must find (nearly) the
	// bridge cut.
	g, err := graph.TwoClusters(12, 4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	embed := FiedlerVector(g, 500)
	phi, side, err := SweepCut(g, embed)
	if err != nil {
		t.Fatal(err)
	}
	// Bridge cut conductance = 1 / (12*4+1) ~ 0.0204.
	if phi > 0.05 {
		t.Fatalf("sweep conductance = %v, want ~0.02 (bridge)", phi)
	}
	// The cut should separate the clusters exactly or nearly.
	leftInS := 0
	for v := 0; v < 12; v++ {
		if side[v] {
			leftInS++
		}
	}
	if leftInS != 0 && leftInS != 12 {
		t.Logf("note: cut splits cluster A %d/12 (allowed but unexpected)", leftInS)
	}
}

func TestSweepCutTrivialGraphs(t *testing.T) {
	if _, _, err := SweepCut(graph.New(1), []float64{0}); !errors.Is(err, ErrNoCut) {
		t.Fatalf("single vertex error = %v", err)
	}
	if _, _, err := SweepCut(graph.New(3), []float64{0, 1, 2}); !errors.Is(err, ErrNoCut) {
		t.Fatalf("edgeless error = %v", err)
	}
}

func TestDecomposeSeparatesClusters(t *testing.T) {
	// Bridge conductance 1/(32*6+1) ~ 0.005 is well below the phi target
	// (~0.013 at this size), so the decomposition must split here.
	g, err := graph.TwoClusters(32, 6, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	phi := PhiForEps(0.5, g.M())
	d, err := Decompose(g, phi)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Parts) < 2 {
		t.Fatalf("expected the bridge cut to split the graph, got %d part(s)", len(d.Parts))
	}
	if frac := d.CrossingFraction(g.M()); frac > 0.5 {
		t.Fatalf("crossing fraction %v > eps 0.5", frac)
	}
	assertPartition(t, g.N(), d.Parts)
}

func TestDecomposeExpanderStaysWhole(t *testing.T) {
	// A good expander should not be split at a low phi target.
	g, err := graph.RandomRegular(64, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Decompose(g, PhiForEps(0.5, g.M()))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Parts) != 1 {
		t.Fatalf("8-regular random graph split into %d parts at phi=%v", len(d.Parts), d.Phi)
	}
	if len(d.Crossing) != 0 {
		t.Fatalf("%d crossing edges for a single part", len(d.Crossing))
	}
}

func TestDecomposePartsCertifiedBySweep(t *testing.T) {
	// Every multi-vertex part must have no sweep cut below phi (that is the
	// certification); verify by recomputing.
	g, err := graph.TwoClusters(10, 4, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	phi := PhiForEps(0.5, g.M())
	d, err := Decompose(g, phi)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range d.Parts {
		if len(part) < 2 {
			continue
		}
		sub, _, err := g.Subgraph(part)
		if err != nil {
			t.Fatal(err)
		}
		if sub.M() == 0 {
			continue
		}
		embed := FiedlerVector(sub, 800)
		phiCut, _, err := SweepCut(sub, embed)
		if err != nil {
			t.Fatal(err)
		}
		if phiCut < phi*0.5 {
			t.Fatalf("part of size %d has sweep cut %v, well below target %v", len(part), phiCut, phi)
		}
	}
	assertPartition(t, g.N(), d.Parts)
}

func TestDecomposeDisconnected(t *testing.T) {
	g := graph.New(7)
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	// vertices 5, 6 isolated
	d, err := Decompose(g, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	assertPartition(t, g.N(), d.Parts)
	if len(d.Crossing) != 0 {
		t.Fatalf("component splits must not produce crossing edges, got %d", len(d.Crossing))
	}
}

func TestDecomposeRejectsBadPhi(t *testing.T) {
	if _, err := Decompose(graph.Path(3), 0); err == nil {
		t.Fatal("phi = 0 should error")
	}
}

func TestPhiForEpsMonotone(t *testing.T) {
	if PhiForEps(0.5, 1000) <= PhiForEps(0.25, 1000) {
		t.Fatal("larger eps should allow larger phi")
	}
	if PhiForEps(0.5, 100) <= PhiForEps(0.5, 100000) {
		t.Fatal("more edges should lower phi")
	}
}

func assertPartition(t *testing.T, n int, parts [][]int) {
	t.Helper()
	seen := make([]bool, n)
	for _, p := range parts {
		for _, v := range p {
			if v < 0 || v >= n {
				t.Fatalf("vertex %d out of range", v)
			}
			if seen[v] {
				t.Fatalf("vertex %d in two parts", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Fatalf("vertex %d missing from partition", v)
		}
	}
}

// Property: on small random graphs, the sweep cut of the Fiedler embedding
// stays within the Cheeger guarantee of the exact conductance: sweep
// conductance <= sqrt(8 * phi_exact) (the discrete Cheeger inequality with
// a safety constant), and never below phi_exact.
func TestSweepCutCheegerProperty(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		g, err := graph.ConnectedGNM(10, 16, seed)
		if err != nil {
			t.Fatal(err)
		}
		exact, _, err := GraphConductance(g)
		if err != nil {
			t.Fatal(err)
		}
		embed := FiedlerVector(g, 600)
		sweep, _, err := SweepCut(g, embed)
		if err != nil {
			t.Fatal(err)
		}
		if sweep < exact-1e-9 {
			t.Fatalf("seed %d: sweep %v below exact conductance %v", seed, sweep, exact)
		}
		if sweep > math.Sqrt(8*exact)+1e-9 {
			t.Fatalf("seed %d: sweep %v above Cheeger bound sqrt(8*%v)=%v",
				seed, sweep, exact, math.Sqrt(8*exact))
		}
	}
}

// Every decomposition part of >= 2 vertices must have true conductance at
// least phi^2/4 (the certification claim), checkable exactly at this size.
func TestDecomposeCertificationExact(t *testing.T) {
	g, err := graph.TwoClusters(8, 4, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	phi := PhiForEps(0.5, g.M())
	d, err := Decompose(g, phi)
	if err != nil {
		t.Fatal(err)
	}
	for _, part := range d.Parts {
		if len(part) < 2 || len(part) > 20 {
			continue
		}
		sub, _, err := g.Subgraph(part)
		if err != nil {
			t.Fatal(err)
		}
		if sub.M() == 0 || sub.N() < 2 {
			continue
		}
		exact, _, err := GraphConductance(sub)
		if err != nil {
			continue // single-vertex style degenerate cuts
		}
		if exact < phi*phi/4-1e-12 {
			t.Fatalf("part %v has conductance %v < phi^2/4 = %v", part, exact, phi*phi/4)
		}
	}
}
