package cc

import (
	"errors"
	"testing"
)

// gossipStep builds a simple gossip program: for `rounds` rounds, every node
// sends (round, node) to its clockwise neighbor and records what it hears.
// Returns the step plus the per-node transcript of received words.
func gossipStep(n, roundsWanted int) (Step, [][]int64) {
	heard := make([][]int64, n)
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		for _, m := range inbox {
			heard[node] = append(heard[node], int64(m.From), m.Data[0], m.Data[1])
		}
		if round < roundsWanted {
			send((node+1)%n, int64(round), int64(node))
			return false
		}
		return true
	}
	return step, heard
}

func TestFaultPlanDeterministicFates(t *testing.T) {
	p := &FaultPlan{Seed: 42, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1, Delay: 0.1}
	q := &FaultPlan{Seed: 42, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1, Delay: 0.1}
	counts := map[int]int{}
	for r := 0; r < 50; r++ {
		for from := 0; from < 8; from++ {
			for to := 0; to < 8; to++ {
				k1, d1 := p.engineFate(r, from, to)
				k2, d2 := q.engineFate(r, from, to)
				if k1 != k2 || d1 != d2 {
					t.Fatalf("fate diverged at (%d,%d,%d): (%d,%d) vs (%d,%d)", r, from, to, k1, d1, k2, d2)
				}
				counts[k1]++
			}
		}
	}
	// With 3200 draws at these rates every fate must occur.
	for _, k := range []int{faultNone, faultDrop, faultCorrupt, faultDuplicate, faultDelay} {
		if counts[k] == 0 {
			t.Fatalf("fate %d never drawn: %v", k, counts)
		}
	}
	// A different seed must produce a different fate sequence.
	diff := &FaultPlan{Seed: 43, Drop: 0.2, Corrupt: 0.1, Duplicate: 0.1, Delay: 0.1}
	same := 0
	total := 0
	for r := 0; r < 20; r++ {
		for from := 0; from < 8; from++ {
			for to := 0; to < 8; to++ {
				k1, _ := p.engineFate(r, from, to)
				k2, _ := diff.engineFate(r, from, to)
				total++
				if k1 == k2 {
					same++
				}
			}
		}
	}
	if same == total {
		t.Fatal("seed change did not change any fate")
	}
}

func TestFaultPlanValidate(t *testing.T) {
	bad := []*FaultPlan{
		{Drop: -0.1},
		{Drop: 1.1},
		{Drop: 0.6, Delay: 0.6},
		{MaxDelay: -1},
		{MaxRetries: -2},
		{Stalls: []Stall{{Node: -1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); !errors.Is(err, ErrBadFaultPlan) {
			t.Errorf("plan %d: want ErrBadFaultPlan, got %v", i, err)
		}
	}
	ok := &FaultPlan{Drop: 0.5, Corrupt: 0.2, Duplicate: 0.2, Delay: 0.1, Stalls: []Stall{{Node: 0, From: 2, For: -1}}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
}

// TestEngineFaultsDeterministicAcrossWorkers pins the core determinism
// contract: a faulty run observes identical rounds, fault counters, and
// per-node transcripts for every worker count, including sequential mode.
func TestEngineFaultsDeterministicAcrossWorkers(t *testing.T) {
	const n = 16
	plan := &FaultPlan{Seed: 7, Drop: 0.1, Corrupt: 0.05, Duplicate: 0.05, Delay: 0.1, MaxDelay: 3}
	type result struct {
		rounds int64
		stats  FaultStats
		heard  [][]int64
	}
	run := func(configure func(*Engine)) result {
		e := NewEngine(n)
		configure(e)
		e.SetFaults(plan)
		step, heard := gossipStep(n, 12)
		got, err := e.Run(step, 100)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return result{rounds: got, stats: e.FaultStats(), heard: heard}
	}
	base := run(func(e *Engine) { e.SetSequential(true) })
	if base.stats.Total() == 0 {
		t.Fatal("plan injected no faults at these rates")
	}
	for _, workers := range []int{1, 2, 3, 8} {
		got := run(func(e *Engine) { e.SetWorkers(workers) })
		if got.rounds != base.rounds {
			t.Fatalf("workers=%d: rounds %d != sequential %d", workers, got.rounds, base.rounds)
		}
		if got.stats != base.stats {
			t.Fatalf("workers=%d: fault stats %+v != sequential %+v", workers, got.stats, base.stats)
		}
		for v := range got.heard {
			if len(got.heard[v]) != len(base.heard[v]) {
				t.Fatalf("workers=%d: node %d heard %d words, sequential heard %d",
					workers, v, len(got.heard[v]), len(base.heard[v]))
			}
			for i := range got.heard[v] {
				if got.heard[v][i] != base.heard[v][i] {
					t.Fatalf("workers=%d: node %d transcript diverges at %d", workers, v, i)
				}
			}
		}
	}
}

// TestEngineDropAllSilencesNetwork: with Drop=1 nothing is ever delivered.
func TestEngineDropAllSilencesNetwork(t *testing.T) {
	const n = 6
	e := NewEngine(n)
	e.SetFaults(&FaultPlan{Drop: 1})
	received := 0
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		received += len(inbox)
		if round == 0 {
			send((node+1)%n, 1)
			return false
		}
		return true
	}
	e.SetSequential(true)
	if _, err := e.Run(step, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	if received != 0 {
		t.Fatalf("received %d messages under Drop=1", received)
	}
	if got := e.FaultStats().Dropped; got != n {
		t.Fatalf("dropped %d, want %d", got, n)
	}
}

// TestEngineDelayDeliversLate: a delayed message still arrives, late, and
// the engine keeps running until the queue drains.
func TestEngineDelayDeliversLate(t *testing.T) {
	const n = 4
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetFaults(&FaultPlan{Delay: 1, MaxDelay: 3})
	arrivals := map[int]int{} // node -> round the message arrived
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		for range inbox {
			arrivals[node] = round
		}
		if round == 0 {
			send((node+1)%n, int64(node))
		}
		return true
	}
	if _, err := e.Run(step, 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(arrivals) != n {
		t.Fatalf("only %d of %d delayed messages arrived: %v", len(arrivals), n, arrivals)
	}
	for node, r := range arrivals {
		if r < 2 {
			t.Fatalf("node %d received its message in round %d; delay must push past round 1", node, r)
		}
	}
	if got := e.FaultStats().Delayed; got != n {
		t.Fatalf("delayed %d, want %d", got, n)
	}
}

// TestEngineStallBuffersAndReplays: messages to a stalled node are buffered
// and replayed on wake; the stalled node counts as busy meanwhile.
func TestEngineStallBuffersAndReplays(t *testing.T) {
	const n = 4
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetFaults(&FaultPlan{Stalls: []Stall{{Node: 2, From: 1, For: 4}}})
	var node2Inbox []int64
	node2Rounds := []int{}
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		if node == 2 {
			node2Rounds = append(node2Rounds, round)
			for _, m := range inbox {
				node2Inbox = append(node2Inbox, m.Data[0])
			}
		}
		if round == 0 && node != 2 {
			send(2, int64(10+node))
		}
		return true
	}
	if _, err := e.Run(step, 20); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Node 2 steps in round 0, is silent for rounds 1-4, and wakes in round
	// 5 with the three buffered messages.
	if len(node2Rounds) < 2 || node2Rounds[1] != 5 {
		t.Fatalf("node 2 stepped in rounds %v, want wake at round 5", node2Rounds)
	}
	if len(node2Inbox) != 3 {
		t.Fatalf("node 2 heard %v, want the 3 buffered messages", node2Inbox)
	}
	if got := e.FaultStats().StalledSteps; got != 4 {
		t.Fatalf("stalled steps %d, want 4", got)
	}
}

// TestEngineCrashDropsTraffic: a crashed node counts as done and its mail is
// discarded, so the rest of the program still terminates.
func TestEngineCrashDropsTraffic(t *testing.T) {
	const n = 4
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetFaults(&FaultPlan{Stalls: []Stall{{Node: 1, From: 0, For: -1}}})
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		if node == 1 {
			t.Errorf("crashed node stepped in round %d", round)
		}
		if round == 0 {
			send(1, int64(node))
		}
		return true
	}
	if _, err := e.Run(step, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got := e.FaultStats().Dropped; got != 3 {
		t.Fatalf("dropped %d, want 3 (messages to the crashed node)", got)
	}
}

// TestEngineCorruptFlipsBit: corruption changes exactly the payload, never
// the message count.
func TestEngineCorruptFlipsBit(t *testing.T) {
	const n = 2
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetFaults(&FaultPlan{Corrupt: 1})
	var got []int64
	step := func(node, round int, inbox []Message, send func(to int, data ...int64)) bool {
		for _, m := range inbox {
			got = append(got, m.Data...)
		}
		if round == 0 && node == 0 {
			send(1, 1000)
		}
		return true
	}
	if _, err := e.Run(step, 10); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("received %d words, want 1", len(got))
	}
	if got[0] == 1000 {
		t.Fatal("payload was not corrupted under Corrupt=1")
	}
	if e.FaultStats().Corrupted != 1 {
		t.Fatalf("corrupted %d, want 1", e.FaultStats().Corrupted)
	}
}

// TestEngineFaultRoundStats: the observer sees per-round fault deltas that
// sum to the engine's cumulative counters.
func TestEngineFaultRoundStats(t *testing.T) {
	const n = 8
	e := NewEngine(n)
	e.SetSequential(true)
	e.SetFaults(&FaultPlan{Seed: 3, Drop: 0.3, Duplicate: 0.2})
	var sum FaultStats
	e.SetObserver(func(rs RoundStats) { sum.add(rs.Faults) })
	step, _ := gossipStep(n, 10)
	if _, err := e.Run(step, 100); err != nil {
		t.Fatalf("run: %v", err)
	}
	if sum != e.FaultStats() {
		t.Fatalf("observer sum %+v != engine cumulative %+v", sum, e.FaultStats())
	}
	if sum.Dropped == 0 || sum.Duplicated == 0 {
		t.Fatalf("expected drops and duplicates at these rates: %+v", sum)
	}
}

// TestEngineCleanPlanMatchesNoPlan: a zero-rate plan must not perturb the
// program at all (same rounds, same transcripts as no plan).
func TestEngineCleanPlanMatchesNoPlan(t *testing.T) {
	const n = 8
	run := func(plan *FaultPlan) (int64, [][]int64) {
		e := NewEngine(n)
		e.SetSequential(true)
		e.SetFaults(plan)
		step, heard := gossipStep(n, 6)
		r, err := e.Run(step, 50)
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		return r, heard
	}
	cleanRounds, cleanHeard := run(nil)
	faultRounds, faultHeard := run(&FaultPlan{Seed: 99})
	if cleanRounds != faultRounds {
		t.Fatalf("zero-rate plan changed rounds: %d vs %d", faultRounds, cleanRounds)
	}
	for v := range cleanHeard {
		if len(cleanHeard[v]) != len(faultHeard[v]) {
			t.Fatalf("zero-rate plan changed node %d transcript", v)
		}
	}
}

func TestParseFaultPlan(t *testing.T) {
	p, err := ParseFaultPlan("seed=9,drop=0.01,corrupt=0.002,dup=0.003,delay=0.004,maxdelay=5,retries=4,stall=2:1:3,stall=0:0:-1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	want := FaultPlan{Seed: 9, Drop: 0.01, Corrupt: 0.002, Duplicate: 0.003, Delay: 0.004,
		MaxDelay: 5, MaxRetries: 4, Stalls: []Stall{{2, 1, 3}, {0, 0, -1}}}
	if p.Seed != want.Seed || p.Drop != want.Drop || p.Corrupt != want.Corrupt ||
		p.Duplicate != want.Duplicate || p.Delay != want.Delay ||
		p.MaxDelay != want.MaxDelay || p.MaxRetries != want.MaxRetries || len(p.Stalls) != 2 {
		t.Fatalf("parsed %+v, want %+v", p, want)
	}
	// Round trip through String.
	q, err := ParseFaultPlan(p.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", p.String(), err)
	}
	if q.String() != p.String() {
		t.Fatalf("string round trip: %q vs %q", q.String(), p.String())
	}
	// Bare number shorthand.
	if p, err = ParseFaultPlan("0.05"); err != nil || p.Drop != 0.05 {
		t.Fatalf("shorthand: %+v, %v", p, err)
	}
	// Empty string is a nil plan.
	if p, err = ParseFaultPlan(""); err != nil || p != nil {
		t.Fatalf("empty: %+v, %v", p, err)
	}
	for _, bad := range []string{"drop=x", "nope=1", "stall=1:2", "drop=2"} {
		if _, err := ParseFaultPlan(bad); err == nil {
			t.Errorf("ParseFaultPlan(%q) accepted", bad)
		}
	}
}
