package transport

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"testing/iotest"
)

// sampleFrames covers every frame type with representative field content.
func sampleFrames() []*Frame {
	return []*Frame{
		{Type: FrameHello, Node: 2, Addr: "127.0.0.1:4242"},
		{Type: FramePeers, Addrs: []string{"127.0.0.1:1", "127.0.0.1:2", "127.0.0.1:3"}},
		{Type: FrameReady, Node: 0},
		{Type: FrameRound, Round: 7, Msgs: []Msg{
			{From: 0, To: 3, Data: []int64{1, -2, 1 << 62}},
			{From: 1, To: 0, Data: nil},
			{From: 2, To: 2, Data: []int64{-9}},
		}},
		{Type: FrameData, Round: 9, Node: 1, Seq: 2, Total: 5, Msgs: []Msg{
			{From: 5, To: 6, Data: []int64{42}},
		}},
		{Type: FrameData, Round: 10, Node: 2, Seq: 0, Total: 1}, // empty chunk
		{Type: FrameAck, Round: 9, Node: 3, Seq: 5},
		{Type: FrameInbox, Round: 9, Node: 2, Msgs: []Msg{{From: 0, To: 2, Data: []int64{3, 4}}},
			Stats: WireStats{Frames: 12, FrameBytes: 480, Retransmits: 1, Acks: 6}},
		{Type: FrameShutdown},
		{Type: FrameError, Addr: "node 3: mesh bootstrap failed"},
		{Type: FramePing},
		{Type: FramePong, Node: 1},
	}
}

// normalize zeroes the fields a frame type does not encode, so decoded
// frames can be compared against the originals.
func normalize(f *Frame) *Frame {
	c := *f
	switch f.Type {
	case FrameReady, FrameShutdown, FramePing, FramePong:
		c = Frame{Type: f.Type}
	}
	return &c
}

func TestFrameRoundTrip(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := Append(nil, f)
		if err != nil {
			t.Fatalf("type %d: append: %v", f.Type, err)
		}
		got, consumed, err := Decode(buf)
		if err != nil {
			t.Fatalf("type %d: decode: %v", f.Type, err)
		}
		if consumed != len(buf) {
			t.Fatalf("type %d: consumed %d of %d bytes", f.Type, consumed, len(buf))
		}
		if want := normalize(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("type %d: round trip diverges:\n got %+v\nwant %+v", f.Type, got, want)
		}
	}
}

// TestFrameDecodeTruncated: every strict prefix of a valid frame reports
// ErrTruncated — the retryable "need more bytes" signal — never corruption
// and never a bogus success.
func TestFrameDecodeTruncated(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := Append(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		for cut := 0; cut < len(buf); cut++ {
			if _, _, err := Decode(buf[:cut]); !errors.Is(err, ErrTruncated) {
				t.Fatalf("type %d: prefix %d/%d: got %v, want ErrTruncated", f.Type, cut, len(buf), err)
			}
		}
	}
}

// TestFrameDecodeCorrupt: flipping any single bit of a frame must surface an
// error (checksum mismatch for payload damage; length/framing errors for
// header damage). No flip may decode silently.
func TestFrameDecodeCorrupt(t *testing.T) {
	for _, f := range sampleFrames() {
		buf, err := Append(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		for i := range buf {
			for bit := 0; bit < 8; bit++ {
				mut := append([]byte(nil), buf...)
				mut[i] ^= 1 << bit
				if _, _, err := Decode(mut); err == nil {
					t.Fatalf("type %d: flipping byte %d bit %d decoded cleanly", f.Type, i, bit)
				}
			}
		}
	}
}

func TestFrameDecodeRejects(t *testing.T) {
	valid, err := Append(nil, &Frame{Type: FrameReady})
	if err != nil {
		t.Fatal(err)
	}
	huge := append([]byte(nil), valid...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	cases := []struct {
		name string
		buf  []byte
		want error
	}{
		{"length over limit", huge, ErrFrameTooLarge},
		{"zero-length payload", []byte{0, 0, 0, 0, 0, 0, 0, 0}, ErrBadFrame},
	}
	for _, tc := range cases {
		if _, _, err := Decode(tc.buf); !errors.Is(err, tc.want) {
			t.Fatalf("%s: got %v, want %v", tc.name, err, tc.want)
		}
	}
	if _, err := Append(nil, &Frame{Type: FrameType(200)}); !errors.Is(err, ErrBadFrame) {
		t.Fatalf("unknown type on encode: got %v", err)
	}
	wide := &Frame{Type: FrameData, Total: 1, Msgs: []Msg{{Data: make([]int64, MaxFrameBytes/8)}}}
	if _, err := Append(nil, wide); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("oversized frame on encode: got %v", err)
	}
}

// TestReadFramePartialWrites: a reader must reassemble frames from
// arbitrarily fragmented reads — here the worst case, one byte at a time.
func TestReadFramePartialWrites(t *testing.T) {
	var stream []byte
	frames := sampleFrames()
	for _, f := range frames {
		var err error
		stream, err = Append(stream, f)
		if err != nil {
			t.Fatal(err)
		}
	}
	r := iotest.OneByteReader(bytes.NewReader(stream))
	for i, f := range frames {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := normalize(f); !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d diverges:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("after last frame: got %v, want io.EOF", err)
	}
}

func TestReadFrameMidFrameEOF(t *testing.T) {
	buf, err := Append(nil, &Frame{Type: FrameError, Addr: "boom"})
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{frameHeaderLen, len(buf) - 1} {
		if _, err := ReadFrame(bytes.NewReader(buf[:cut])); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: got %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
	if _, err := ReadFrame(bytes.NewReader(buf[:3])); err != io.ErrUnexpectedEOF {
		t.Fatalf("mid-header cut: got %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameReorderedDelivery: frames are self-contained, so a stream
// reassembled in a different frame order still decodes every frame intact —
// the property the TCP backend's retransmission path leans on when chunks
// arrive out of sequence.
func TestFrameReorderedDelivery(t *testing.T) {
	frames := sampleFrames()
	perm := []int{4, 0, 9, 11, 2, 7, 1, 10, 8, 3, 6, 5}
	var stream []byte
	for _, i := range perm {
		var err error
		stream, err = Append(stream, frames[i])
		if err != nil {
			t.Fatal(err)
		}
	}
	off := 0
	for _, i := range perm {
		got, consumed, err := Decode(stream[off:])
		if err != nil {
			t.Fatalf("frame %d at offset %d: %v", i, off, err)
		}
		off += consumed
		if want := normalize(frames[i]); !reflect.DeepEqual(got, want) {
			t.Fatalf("frame %d diverges after reorder:\n got %+v\nwant %+v", i, got, want)
		}
	}
	if off != len(stream) {
		t.Fatalf("consumed %d of %d bytes", off, len(stream))
	}
}

// FuzzFrameDecode: Decode must never panic or over-read on arbitrary input,
// and anything it accepts must re-encode to exactly the bytes it consumed
// (the codec is canonical). Seeds cover every frame type plus corrupted
// variants; the checked-in corpus under testdata extends them.
func FuzzFrameDecode(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := Append(nil, fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
		if len(buf) > 10 {
			f.Add(buf[:10])
		}
		mut := append([]byte(nil), buf...)
		mut[len(mut)/2] ^= 0x40
		f.Add(mut)
	}
	f.Fuzz(func(t *testing.T, b []byte) {
		fr, consumed, err := Decode(b)
		if err != nil {
			if fr != nil || consumed != 0 {
				t.Fatalf("error %v returned frame %v / consumed %d", err, fr, consumed)
			}
			return
		}
		if consumed <= 0 || consumed > len(b) {
			t.Fatalf("consumed %d of %d", consumed, len(b))
		}
		re, err := Append(nil, fr)
		if err != nil {
			t.Fatalf("re-encoding accepted frame: %v", err)
		}
		if !bytes.Equal(re, b[:consumed]) {
			t.Fatalf("decode/encode not canonical:\n in  %x\n out %x", b[:consumed], re)
		}
	})
}
