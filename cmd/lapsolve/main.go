// Command lapsolve solves a Laplacian system L_G x = b with the
// deterministic congested-clique solver (Theorem 1.1) on a graph read from
// a file (or a built-in generator) and reports the solution poles and the
// round breakdown.
//
// Graph file format: one edge per line, "u v weight" (0-indexed vertices);
// lines starting with '#' are ignored. The right-hand side is the two-pole
// vector +1 at -source, -1 at -sink.
//
//	go run ./cmd/lapsolve -gen regular -n 256 -eps 1e-8
//	go run ./cmd/lapsolve -graph edges.txt -source 0 -sink 9
//	go run ./cmd/lapsolve -trace out.json   # load out.json in Perfetto
//	go run ./cmd/lapsolve -faults seed=1,drop=0.01   # 1% message drops
//	go run ./cmd/lapsolve -budget rounds=500         # hard round ceiling
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lapsolve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		path          = flag.String("graph", "", "edge-list file (u v w per line)")
		gen           = flag.String("gen", "regular", "generator when no file given: regular|grid|complete")
		n             = flag.Int("n", 128, "generator size")
		eps           = flag.Float64("eps", 1e-8, "target relative error in the L_G norm")
		source        = flag.Int("source", 0, "pole with +1 charge")
		sink          = flag.Int("sink", -1, "pole with -1 charge (default n-1)")
		trOut         = flag.String("trace", "", "write a Chrome trace_event file (load in Perfetto / chrome://tracing)")
		trEv          = flag.String("trace-events", "", "write the deterministic JSONL span/cost event stream")
		nRHS          = flag.Int("rhs", 1, "number of right-hand sides; >1 solves pole pairs (source, source+i) through one session")
		faults        = flag.String("faults", "", "deterministic fault plan, e.g. 'seed=1,drop=0.01' or bare drop rate '0.01' (see cc.ParseFaultPlan)")
		budget        = flag.String("budget", "", "abort when exhausted: 'rounds=N,wall=DUR' or bare round count 'N'")
		debugAddr     = flag.String("debug-addr", "", "serve /metrics, /metrics.json and /debug/pprof on this address (e.g. localhost:6060) for the duration of the run")
		debugHold     = flag.Duration("debug-hold", 0, "keep the -debug-addr server up this long after the run (for scraping short runs)")
		workers       = flag.Int("workers", 0, "worker count for the numerical core (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at any setting")
		transportSpec = flag.String("transport", "local", "delivery backend: 'local', 'mem' (in-process wire codec), or 'tcp[,procs=N][,bin=PATH][,supervise=1]' (multi-process loopback clique); results are bit-identical across backends")
		chaosSpec     = flag.String("chaos", "", "socket-level chaos plan for the tcp backend, e.g. 'seed=7,reset=0.002,partial=0.05,kill=3:1' (see transport.ParseChaosPlan); implies supervision, results stay bit-identical")
		flightPath    = flag.String("flight", "", "attach a transport flight recorder (tcp backend): its wall-clock event ring is written here at exit and auto-dumped on unrecoverable failure; also served at /debug/flight with -debug-addr")
	)
	flag.Parse()

	var fl *trace.Flight
	if *flightPath != "" {
		fl = trace.NewFlight(trace.DefaultFlightSize)
	}
	var ro core.RunOptions
	ro.Workers = *workers
	if *debugAddr != "" {
		srv, reg, err := startDebug(*debugAddr, fl)
		if err != nil {
			return err
		}
		defer holdAndClose(srv, *debugHold)
		ro.Metrics = reg
	}
	if *faults != "" {
		plan, err := cc.ParseFaultPlan(*faults)
		if err != nil {
			return err
		}
		ro.Faults = plan
		fmt.Printf("faults: %s\n", plan)
	}
	if *budget != "" {
		b, err := rounds.ParseBudget(*budget)
		if err != nil {
			return err
		}
		ro.Budget = b
	}
	var meshT *tcp.Transport
	if *transportSpec != "" && *transportSpec != "local" {
		var chaos *transport.ChaosPlan
		if *chaosSpec != "" {
			var err error
			if chaos, err = transport.ParseChaosPlan(*chaosSpec); err != nil {
				return err
			}
		}
		bt, err := tcp.OpenWith(*transportSpec, chaos)
		if err != nil {
			return err
		}
		if bt != nil {
			defer bt.Close()
			ro.Transport = bt
			fmt.Printf("transport: %s\n", *transportSpec)
			if tt, ok := bt.(*tcp.Transport); ok {
				meshT = tt
				if fl != nil {
					tt.SetFlight(fl, *flightPath)
				}
				if chaos != nil {
					fmt.Printf("transport: chaos %s\n", chaos)
					// Runs after the report: the smoke gates filter '^transport:'.
					defer func() {
						rec := tt.Recovery()
						fmt.Printf("transport: recovery kills=%d restarts=%d respawns=%d replayed-barriers=%d heartbeat-failures=%d epoch=%d\n",
							rec.Kills, rec.Restarts, rec.Respawns, rec.ReplayedBarriers, rec.HeartbeatFailures, tt.Epoch())
					}()
				}
			}
		}
	} else if *chaosSpec != "" {
		return fmt.Errorf("-chaos requires a tcp -transport")
	} else if *flightPath != "" {
		return fmt.Errorf("-flight requires a tcp -transport")
	}

	var g *graph.Graph
	var err error
	if *path != "" {
		g, err = readGraph(*path)
	} else {
		g, err = generate(*gen, *n)
	}
	if err != nil {
		return err
	}
	t := *sink
	if t < 0 {
		t = g.N() - 1
	}
	if *source < 0 || *source >= g.N() || t < 0 || t >= g.N() || *source == t {
		return fmt.Errorf("bad poles %d, %d for n=%d", *source, t, g.N())
	}

	var tr *trace.Tracer
	if *trOut != "" || *trEv != "" {
		tr = trace.New()
		if meshT != nil {
			// With a traced tcp mesh, the coordinator asks every worker
			// for its local span records at each barrier and merges them
			// as node-%d subtrees, so the files below hold one global
			// timeline.
			meshT.SetTracer(tr)
		}
	}
	ro.Trace = tr
	fmt.Printf("graph: n=%d m=%d; eps=%g\n", g.N(), g.M(), *eps)
	if *nRHS > 1 {
		if err := runSession(g, *source, t, *eps, *nRHS, ro); err != nil {
			return err
		}
	} else {
		b := linalg.NewVec(g.N())
		b[*source] = 1
		b[t] = -1
		res, err := core.SolveLaplacianWith(g, b, *eps, ro)
		if err != nil {
			return err
		}
		fmt.Printf("x[%d] - x[%d] = %.9f (effective resistance between the poles)\n",
			*source, t, res.X[*source]-res.X[t])
		fmt.Printf("sparsifier: %d edges; chebyshev iterations: %d\n", res.SparsifierEdges, res.Iterations)
		fmt.Println(res.Rounds.Breakdown)
	}
	if tr.Enabled() {
		fmt.Println(tr.Summary())
		if err := tr.WriteFiles(*trOut, *trEv); err != nil {
			return err
		}
		for _, p := range []string{*trOut, *trEv} {
			if p != "" {
				fmt.Printf("trace: wrote %s\n", p)
			}
		}
	}
	if fl != nil {
		if err := fl.DumpFile(*flightPath); err != nil {
			return err
		}
		fmt.Printf("flight: wrote %s (%d events)\n", *flightPath, fl.Len())
	}
	return nil
}

// runSession pushes k pole-pair right-hand sides (source, source+i mod n)
// through one LaplacianSession: the sparsifier is preprocessed once and the
// per-solve round delta is reported for each right-hand side.
func runSession(g *graph.Graph, source, sink int, eps float64, k int, ro core.RunOptions) (err error) {
	sess, err := core.NewLaplacianSession(g, core.SessionOptions{Run: ro, Warm: true})
	if err != nil {
		return err
	}
	pre := sess.Rounds()
	fmt.Printf("session: preprocessed in %d rounds (measured %d, charged %d)\n",
		pre.Total, pre.Measured, pre.Charged)
	n := g.N()
	for i := 0; i < k; i++ {
		t := sink
		if i > 0 {
			t = (source + i) % n
			if t == source {
				t = (t + 1) % n
			}
		}
		b := linalg.NewVec(n)
		b[source] = 1
		b[t] = -1
		res, err := sess.Solve(b, eps)
		if err != nil {
			return err
		}
		fmt.Printf("rhs %2d: x[%d] - x[%d] = %.9f  (%d cheby iterations, +%d rounds)\n",
			i, source, t, res.X[source]-res.X[t], res.Iterations, res.Rounds.Total)
	}
	tot := sess.Rounds()
	fmt.Printf("session: %d right-hand sides in %d total rounds (measured %d, charged %d)\n",
		k, tot.Total, tot.Measured, tot.Charged)
	return nil
}

// startDebug creates the process-wide metrics registry, points the clique
// engine at it, and serves the debug endpoints on addr (plus the flight
// recorder on /debug/flight when one is attached).
func startDebug(addr string, fl *trace.Flight) (*metrics.DebugServer, *metrics.Registry, error) {
	reg := metrics.NewRegistry()
	cc.SetMetrics(reg)
	linalg.SetMetrics(reg)
	srv, err := metrics.StartDebugServerWith(addr, reg, map[string]http.Handler{
		"/debug/flight": fl.Handler(),
	})
	if err != nil {
		return nil, nil, err
	}
	fmt.Printf("debug: serving /metrics and /debug/pprof on http://%s\n", srv.Addr())
	return srv, reg, nil
}

// holdAndClose keeps the debug server up for the grace period (so short
// runs can still be scraped) and shuts it down.
func holdAndClose(srv *metrics.DebugServer, hold time.Duration) {
	if hold > 0 {
		fmt.Printf("debug: holding %s for scrapes of http://%s\n", hold, srv.Addr())
		time.Sleep(hold)
	}
	srv.Close()
	cc.SetMetrics(nil)
	linalg.SetMetrics(nil)
}

func generate(kind string, n int) (*graph.Graph, error) {
	switch kind {
	case "regular":
		return graph.RandomRegular(n, 8, 1)
	case "grid":
		side := 1
		for side*side < n {
			side++
		}
		return graph.Grid(side, side), nil
	case "complete":
		return graph.Complete(n), nil
	default:
		return nil, fmt.Errorf("unknown generator %q", kind)
	}
}

func readGraph(path string) (*graph.Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadEdgeList(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}
