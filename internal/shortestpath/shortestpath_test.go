package shortestpath

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/rounds"
)

func diamond() [][]Arc {
	// 0 -> 1 (1), 0 -> 2 (4), 1 -> 2 (1), 1 -> 3 (5), 2 -> 3 (1).
	return [][]Arc{
		{{To: 1, Weight: 1, ID: 0}, {To: 2, Weight: 4, ID: 1}},
		{{To: 2, Weight: 1, ID: 2}, {To: 3, Weight: 5, ID: 3}},
		{{To: 3, Weight: 1, ID: 4}},
		nil,
	}
}

func TestDijkstraDiamond(t *testing.T) {
	res, err := Dijkstra(diamond(), []int{0})
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 2, 3}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("dist[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
	path := res.PathTo(3)
	wantPath := []int{0, 2, 4}
	if len(path) != len(wantPath) {
		t.Fatalf("path = %v, want %v", path, wantPath)
	}
	for i := range path {
		if path[i] != wantPath[i] {
			t.Fatalf("path = %v, want %v", path, wantPath)
		}
	}
}

func TestDijkstraUnreachable(t *testing.T) {
	adj := [][]Arc{{{To: 1, Weight: 1, ID: 0}}, nil, nil}
	res, err := Dijkstra(adj, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != Inf {
		t.Fatalf("dist[2] = %d, want Inf", res.Dist[2])
	}
	if res.PathTo(2) != nil {
		t.Fatal("unreachable vertex should have nil path")
	}
}

func TestDijkstraMultiSource(t *testing.T) {
	adj := [][]Arc{
		{{To: 2, Weight: 10, ID: 0}},
		{{To: 2, Weight: 1, ID: 1}},
		nil,
	}
	res, err := Dijkstra(adj, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[2] != 1 {
		t.Fatalf("dist[2] = %d, want 1 (via source 1)", res.Dist[2])
	}
}

func TestDijkstraRejectsNegative(t *testing.T) {
	adj := [][]Arc{{{To: 1, Weight: -1, ID: 0}}, nil}
	if _, err := Dijkstra(adj, []int{0}); !errors.Is(err, ErrNegativeWeight) {
		t.Fatalf("error = %v, want ErrNegativeWeight", err)
	}
}

func TestBellmanFordNegativeWeights(t *testing.T) {
	// 0 -> 1 (4), 0 -> 2 (1), 2 -> 1 (-3): dist[1] = -2.
	adj := [][]Arc{
		{{To: 1, Weight: 4, ID: 0}, {To: 2, Weight: 1, ID: 1}},
		nil,
		{{To: 1, Weight: -3, ID: 2}},
	}
	res, err := BellmanFord(adj, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if res.Dist[1] != -2 {
		t.Fatalf("dist[1] = %d, want -2", res.Dist[1])
	}
}

func TestBellmanFordDetectsNegativeCycle(t *testing.T) {
	adj := [][]Arc{
		{{To: 1, Weight: 1, ID: 0}},
		{{To: 0, Weight: -2, ID: 1}},
	}
	if _, err := BellmanFord(adj, []int{0}); !errors.Is(err, ErrNegativeCycle) {
		t.Fatalf("error = %v, want ErrNegativeCycle", err)
	}
}

func TestBFSHopDistances(t *testing.T) {
	res := BFS(diamond(), []int{0})
	want := []int64{0, 1, 1, 2}
	for v, d := range want {
		if res.Dist[v] != d {
			t.Fatalf("hops[%d] = %d, want %d", v, res.Dist[v], d)
		}
	}
}

func TestChargeAPSP(t *testing.T) {
	led := rounds.New()
	ChargeAPSP(led, 1000)
	if led.Total() != rounds.APSPRounds(1000) {
		t.Fatalf("charged %d, want %d", led.Total(), rounds.APSPRounds(1000))
	}
	ChargeAPSP(nil, 10) // must not panic
}

// Property: Dijkstra and Bellman-Ford agree on random non-negative graphs.
func TestDijkstraBellmanFordAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		adj := make([][]Arc, n)
		id := 0
		for v := 0; v < n; v++ {
			for k := 0; k < rng.Intn(4); k++ {
				w := rng.Intn(n)
				if w == v {
					continue
				}
				adj[v] = append(adj[v], Arc{To: w, Weight: int64(rng.Intn(20)), ID: id})
				id++
			}
		}
		d, err := Dijkstra(adj, []int{0})
		if err != nil {
			return false
		}
		b, err := BellmanFord(adj, []int{0})
		if err != nil {
			return false
		}
		for v := 0; v < n; v++ {
			if d.Dist[v] != b.Dist[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
