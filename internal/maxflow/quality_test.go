package maxflow

import (
	"testing"

	"lapcc/internal/graph"
)

// TestIPMConvergenceQuality pins the paper-shaped behaviour of the IPM on a
// mid-size layered network: the interior point method plus rounding must
// deliver a flow so close to optimal that at most one augmenting path
// remains (Theorem 1.2's final stage needs exactly one).
func TestIPMConvergenceQuality(t *testing.T) {
	dg := graph.LayeredDAG(4, 6, 3, 16, 7)
	s, tt := 0, dg.N()-1
	want, _, err := Dinic(dg, s, tt)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MaxFlow(dg, s, tt, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("F*=%d ipmIters=%d budget=%d boosts=%d ipmValue=%.3f outOfRange=%d finalAugs=%d",
		want, res.IPMIterations, res.IterBudget, res.Boostings, res.IPMValue, res.NegativeArcs, res.FinalAugmentations)
	if res.Value != want {
		t.Fatalf("value %d != %d", res.Value, want)
	}
	if res.FinalAugmentations > 1 {
		t.Fatalf("IPM left %d augmenting paths for the final stage; the paper's shape allows 1", res.FinalAugmentations)
	}
	if res.IPMIterations > res.IterBudget {
		t.Fatalf("iterations %d exceeded budget %d", res.IPMIterations, res.IterBudget)
	}
}

// TestIPMGadgetEncoding checks the three-edge initialization gadget
// bookkeeping: the demand equals fstar + sum(capacities) + 2mU and the
// recovered flow is exact on a tiny instance where everything is checkable
// by hand.
func TestIPMGadgetEncoding(t *testing.T) {
	// Single arc s -> t with capacity 3: F* = 3.
	dg := graph.NewDi(2)
	dg.MustAddArc(0, 1, 3, 0)
	res, err := MaxFlow(dg, 0, 1, Options{FastSolve: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 3 || res.Flow[0] != 3 {
		t.Fatalf("value=%d flow=%v, want 3", res.Value, res.Flow)
	}
}
