package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"lapcc/internal/core"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
)

// DefaultEps is the solve precision used when a request carries none.
const DefaultEps = 1e-8

// Options configures a Server. The zero value serves with the documented
// defaults.
type Options struct {
	// PoolSize bounds each session pool (solve sessions and sparsify
	// chains separately) with LRU eviction. Default 8.
	PoolSize int
	// MaxInflight bounds concurrently admitted requests; excess load is
	// shed with a typed 429 ("overloaded") instead of queueing. Default
	// 2*GOMAXPROCS.
	MaxInflight int
	// Workers is the numerical core's worker count per request
	// (core.RunOptions.Workers).
	Workers int
	// Metrics, if non-nil, receives the serving-layer instruments
	// (request/shed/pool counters, per-op latency histograms) plus the
	// solver-stack instruments of every run, and is exposed on the
	// daemon's /metrics endpoints.
	Metrics *metrics.Registry
}

// Server implements the solver-as-a-service HTTP surface. Construct with
// New and mount Handler on an http.Server (or httptest.Server).
type Server struct {
	opts     Options
	inflight chan struct{}
	solve    *sessionPool
	sparse   *sessionPool
	reg      *metrics.Registry

	requests   atomic.Int64
	shed       atomic.Int64
	poolHits   atomic.Int64
	poolMisses atomic.Int64
	panics     atomic.Int64

	// hold, when non-nil, blocks every admitted request until the channel
	// is closed. Test hook for deterministically filling the inflight
	// slots; never set in production.
	hold chan struct{}
	// failpoint, when non-nil, runs after admission with the request's op.
	// Test hook for driving the panic-recovery path; never set in
	// production.
	failpoint func(op string)
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 8
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	return &Server{
		opts:     opts,
		inflight: make(chan struct{}, opts.MaxInflight),
		solve:    newSessionPool(opts.PoolSize),
		sparse:   newSessionPool(opts.PoolSize),
		reg:      opts.Metrics,
	}
}

// Stats is the /v1/stats body: serving-layer counters for tests and
// operators. Pool hits count requests that found a built session for their
// exact topology; every hit skips the Theorem 3.3 preprocessing.
type Stats struct {
	Requests       int64 `json:"requests"`
	Shed           int64 `json:"shed"`
	PoolHits       int64 `json:"pool_hits"`
	PoolMisses     int64 `json:"pool_misses"`
	Panics         int64 `json:"panics"`
	SolveSessions  int   `json:"solve_sessions"`
	SparsifyChains int   `json:"sparsify_chains"`
	MaxInflight    int   `json:"max_inflight"`
}

// Stats returns a snapshot of the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Requests:       s.requests.Load(),
		Shed:           s.shed.Load(),
		PoolHits:       s.poolHits.Load(),
		PoolMisses:     s.poolMisses.Load(),
		Panics:         s.panics.Load(),
		SolveSessions:  s.solve.size(),
		SparsifyChains: s.sparse.size(),
		MaxInflight:    s.opts.MaxInflight,
	}
}

// Handler returns the daemon's mux:
//
//	POST /v1/solve        SolveRequest  -> SolveResponse
//	POST /v1/sparsify     SparsifyRequest -> SparsifyResponse
//	POST /v1/orient       OrientRequest -> OrientResponse
//	POST /v1/maxflow      MaxFlowRequest -> MaxFlowResponse
//	POST /v1/mincostflow  MinCostFlowRequest -> MinCostFlowResponse
//	GET  /v1/stats        serving counters
//	GET  /healthz         liveness
//
// With a metrics registry, /metrics, /metrics.json, and /debug/pprof/ are
// mounted from the shared debug handler (internal/metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.admit("solve", s.handleSolve))
	mux.HandleFunc("/v1/sparsify", s.admit("sparsify", s.handleSparsify))
	mux.HandleFunc("/v1/orient", s.admit("orient", s.handleOrient))
	mux.HandleFunc("/v1/maxflow", s.admit("maxflow", s.handleMaxFlow))
	mux.HandleFunc("/v1/mincostflow", s.admit("mincostflow", s.handleMinCostFlow))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.reg != nil {
		dbg := metrics.Handler(s.reg)
		mux.Handle("/metrics", dbg)
		mux.Handle("/metrics.json", dbg)
		mux.Handle("/debug/pprof/", dbg)
	}
	return mux
}

// admit wraps an op handler with the admission layer: method check, load
// shedding at MaxInflight, and per-op request/latency instruments.
func (s *Server) admit(op string, fn http.HandlerFunc) http.HandlerFunc {
	var (
		reqs = s.reg.Counter("lapcc_serve_requests_total", "Admitted requests by op.", "op", op)
		lat  = s.reg.Histogram("lapcc_serve_latency_ns", "Request latency by op.", "op", op)
	)
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, "bad_request", "POST required", 0)
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			s.shed.Add(1)
			s.reg.Counter("lapcc_serve_shed_total", "Requests shed at the admission gate.").Inc()
			writeError(w, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("all %d slots busy", s.opts.MaxInflight), 0)
			return
		}
		defer func() { <-s.inflight }()
		if s.hold != nil {
			<-s.hold
		}
		s.requests.Add(1)
		reqs.Inc()
		t0 := time.Now()
		// Per-request panic recovery: a handler bug must cost one 500 in
		// the error envelope, not the daemon. http.ErrAbortHandler keeps
		// its net/http meaning (abort the connection, no response).
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.panics.Add(1)
				s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "panic").Inc()
				writeError(w, http.StatusInternalServerError, "internal",
					fmt.Sprintf("%s: recovered panic: %v", op, rec), 0)
			}
			lat.ObserveDuration(time.Since(t0))
		}()
		if s.failpoint != nil {
			s.failpoint(op)
		}
		fn(w, r)
	}
}

func (s *Server) run(budget *rounds.Budget) core.RunOptions {
	return core.RunOptions{Budget: budget, Workers: s.opts.Workers, Metrics: s.reg}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	var req SolveRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	if len(req.RHS) == 0 {
		writeError(w, http.StatusBadRequest, "bad_request", "rhs: need at least one right-hand side", 0)
		return
	}
	for i, b := range req.RHS {
		if len(b) != g.N() {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("rhs[%d]: %d entries for n=%d", i, len(b), g.N()), 0)
			return
		}
	}
	eps := req.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	e, _ := s.solve.acquire(g.Fingerprint())
	e.mu.Lock()
	defer e.mu.Unlock()
	cached := e.built(g)
	var before core.RoundReport
	if cached {
		s.poolHit(true)
		before = e.sess.Rounds()
		e.sess.SetBudget(budget)
		if err := e.sess.Reweight(g.Weights()); err != nil {
			e.sess.SetBudget(nil)
			s.fail(w, err)
			return
		}
	} else {
		s.poolHit(false)
		// Pooled sessions run cold (no warm start) with exact-only chain
		// reuse, so every response is bit-identical to a direct one-shot
		// facade call — see the package comment.
		sess, err := core.NewLaplacianSession(g, core.SessionOptions{
			Run:        s.run(budget),
			ExactReuse: true,
		})
		if err != nil {
			s.fail(w, err)
			return
		}
		e.sess, e.chain, e.led, e.guard = sess, nil, nil, g
		e.builds++
	}
	defer e.sess.SetBudget(nil)

	resp := SolveResponse{Cached: cached}
	for _, b := range req.RHS {
		res, err := e.sess.Solve(linalg.Vec(b), eps)
		if err != nil {
			s.fail(w, err)
			return
		}
		resp.X = append(resp.X, res.X)
		resp.Iterations = append(resp.Iterations, res.Iterations)
		resp.SparsifierEdges = res.SparsifierEdges
	}
	after := e.sess.Rounds()
	resp.Rounds = WireRounds{
		Total:    after.Total - before.Total,
		Measured: after.Measured - before.Measured,
		Charged:  after.Charged - before.Charged,
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSparsify(w http.ResponseWriter, r *http.Request) {
	var req SparsifyRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	e, _ := s.sparse.acquire(g.Fingerprint())
	e.mu.Lock()
	defer e.mu.Unlock()
	cached := e.built(g)
	var snap rounds.Snapshot
	if cached {
		s.poolHit(true)
		snap = rounds.Snap(e.led)
		e.chain.SetBudget(budget)
		if _, err := e.chain.Reweight(g.Weights()); err != nil {
			e.chain.SetBudget(nil)
			s.fail(w, err)
			return
		}
	} else {
		s.poolHit(false)
		led := rounds.New()
		snap = rounds.Snap(led)
		chain, err := sparsify.NewChain(g.Clone(), sparsify.ChainOptions{
			ExactOnly: true,
			Sparsify: sparsify.Options{
				Ledger: led, Budget: budget,
				Workers: s.opts.Workers, Metrics: s.reg,
			},
		})
		if err != nil {
			s.fail(w, err)
			return
		}
		e.chain, e.led, e.sess, e.guard = chain, led, nil, g
		e.builds++
	}
	defer e.chain.SetBudget(nil)

	alpha := 0.0
	if g.IsConnected() {
		alpha, err = sparsify.MeasureAlpha(g, e.chain.H(), 150)
		if err != nil {
			s.fail(w, err)
			return
		}
	}
	d := snap.Stats()
	writeJSON(w, http.StatusOK, SparsifyResponse{
		H:      ToWireGraph(e.chain.H()),
		Alpha:  alpha,
		Cached: cached,
		Rounds: WireRounds{Total: d.TotalRounds(), Measured: d.MeasuredRounds, Charged: d.ChargedRounds},
	})
}

func (s *Server) handleOrient(w http.ResponseWriter, r *http.Request) {
	var req OrientRequest
	if !decode(w, r, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{Op: core.OpOrient, Graph: g, Run: s.run(budget)})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, OrientResponse{
		Orient:     resp.Eulerian.Orient,
		Iterations: resp.Eulerian.Iterations,
		Rounds:     toWireRounds(resp.Rounds),
	})
}

func (s *Server) handleMaxFlow(w http.ResponseWriter, r *http.Request) {
	var req MaxFlowRequest
	if !decode(w, r, &req) {
		return
	}
	dg, err := req.Graph.DiGraph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{
		Op: core.OpMaxFlow, DiGraph: dg,
		Args: core.Args{Source: req.Source, Sink: req.Sink},
		Run:  s.run(budget),
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MaxFlowResponse{
		Value:              resp.MaxFlow.Value,
		Flow:               resp.MaxFlow.Flow,
		IPMIterations:      resp.MaxFlow.IPMIterations,
		FinalAugmentations: resp.MaxFlow.FinalAugmentations,
		Rounds:             toWireRounds(resp.Rounds),
	})
}

func (s *Server) handleMinCostFlow(w http.ResponseWriter, r *http.Request) {
	var req MinCostFlowRequest
	if !decode(w, r, &req) {
		return
	}
	dg, err := req.Graph.DiGraph()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{
		Op: core.OpMinCostFlow, DiGraph: dg,
		Args: core.Args{Sigma: req.Sigma},
		Run:  s.run(budget),
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	writeJSON(w, http.StatusOK, MinCostFlowResponse{
		Flow:                resp.MinCostFlow.Flow,
		Cost:                resp.MinCostFlow.Cost,
		ProgressIterations:  resp.MinCostFlow.ProgressIterations,
		RepairAugmentations: resp.MinCostFlow.RepairAugmentations,
		Rounds:              toWireRounds(resp.Rounds),
	})
}

func (s *Server) poolHit(hit bool) {
	outcome := "miss"
	if hit {
		s.poolHits.Add(1)
		outcome = "hit"
	} else {
		s.poolMisses.Add(1)
	}
	s.reg.Counter("lapcc_serve_pool_total", "Session-pool lookups by outcome.", "outcome", outcome).Inc()
}

// fail maps a solver error onto the wire: budget exhaustion is a client-
// visible 429 carrying the partial rounds, request-shape problems are 400,
// everything else is 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var be *rounds.BudgetError
	switch {
	case errors.As(err, &be):
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "budget_exceeded").Inc()
		writeError(w, http.StatusTooManyRequests, "budget_exceeded", err.Error(),
			be.Partial.MeasuredRounds+be.Partial.ChargedRounds)
	case errors.Is(err, core.ErrBadRequest):
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "bad_request").Inc()
		writeError(w, http.StatusBadRequest, "bad_request", err.Error(), 0)
	default:
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "internal").Inc()
		writeError(w, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

func toWireRounds(r core.RoundReport) WireRounds {
	return WireRounds{Total: r.Total, Measured: r.Measured, Charged: r.Charged}
}

func decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "body: "+err.Error(), 0)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, code, msg string, partialRounds int64) {
	writeJSON(w, status, errorEnvelope{Error: WireError{Code: code, Message: msg, Rounds: partialRounds}})
}
