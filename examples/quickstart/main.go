// Quickstart: solve a Laplacian system on a random regular graph with the
// deterministic congested-clique solver (Theorem 1.1) and print the round
// breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const n = 128
	g, err := graph.RandomRegular(n, 8, 1)
	if err != nil {
		return err
	}

	// A right-hand side orthogonal to the all-ones vector: one unit of
	// "charge" spread between two poles.
	b := linalg.NewVec(n)
	b[0] = 1
	b[n-1] = -1

	const eps = 1e-8
	res, err := core.SolveLaplacianWith(g, b, eps, core.RunOptions{})
	if err != nil {
		return err
	}

	// Verify the residual ourselves.
	l := linalg.NewLaplacian(g)
	lx := linalg.NewVec(n)
	l.Apply(lx, res.X)
	resid := lx.Sub(b)

	fmt.Printf("solved L x = b on a %d-node, %d-edge graph to eps = %g\n", g.N(), g.M(), eps)
	fmt.Printf("  potential difference x[0]-x[%d] = %.6f\n", n-1, res.X[0]-res.X[n-1])
	fmt.Printf("  residual |Lx - b|_2 = %.2e\n", resid.Norm2())
	fmt.Printf("  sparsifier: %d edges (input %d)\n", res.SparsifierEdges, g.M())
	fmt.Printf("  chebyshev iterations: %d\n", res.Iterations)
	fmt.Printf("  rounds: %d total (%d measured + %d charged)\n",
		res.Rounds.Total, res.Rounds.Measured, res.Rounds.Charged)
	fmt.Println()
	fmt.Print(res.Rounds.Breakdown)
	return nil
}
