package cc

import (
	"errors"
	"testing"
)

func TestEngineBroadcastProgram(t *testing.T) {
	// Node 0 broadcasts a value; every node records it; 1 round total.
	n := 8
	e := NewEngine(n)
	got := make([]int64, n)
	got[0] = 42
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		switch round {
		case 0:
			if node == 0 {
				for v := 1; v < n; v++ {
					send(v, 42)
				}
			}
			return node == 0
		default:
			for _, m := range inbox {
				got[node] = m.Data[0]
			}
			return true
		}
	}
	used, err := e.Run(step, 10)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("broadcast used %d rounds, want 1", used)
	}
	for v := 0; v < n; v++ {
		if got[v] != 42 {
			t.Fatalf("node %d missed broadcast: %d", v, got[v])
		}
	}
}

func TestEngineAllToAllInOneRound(t *testing.T) {
	// Every ordered pair exchanges a message simultaneously: legal in the
	// clique, must cost exactly one round.
	n := 6
	e := NewEngine(n)
	received := make([]int, n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 {
			for v := 0; v < n; v++ {
				if v != node {
					send(v, int64(node))
				}
			}
			return false
		}
		received[node] = len(inbox)
		return true
	}
	used, err := e.Run(step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("all-to-all used %d rounds, want 1", used)
	}
	for v := 0; v < n; v++ {
		if received[v] != n-1 {
			t.Fatalf("node %d received %d messages, want %d", v, received[v], n-1)
		}
	}
}

func TestEngineRejectsDuplicatePair(t *testing.T) {
	e := NewEngine(3)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1)
			send(1, 2) // second message on the same ordered pair: violation
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrDuplicatePair) {
		t.Fatalf("error = %v, want ErrDuplicatePair", err)
	}
}

func TestEngineRejectsWideMessage(t *testing.T) {
	e := NewEngine(3)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1, 2, 3, 4) // exceeds DefaultMaxWords = 3
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrMessageTooWide) {
		t.Fatalf("error = %v, want ErrMessageTooWide", err)
	}
}

func TestEngineRejectsBadRecipient(t *testing.T) {
	for _, to := range []int{-1, 3, 0} { // 0 is a self-send from node 0
		e := NewEngine(3)
		step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
			if node == 0 && round == 0 {
				send(to, 1)
			}
			return true
		}
		if _, err := e.Run(step, 5); !errors.Is(err, ErrBadRecipient) {
			t.Fatalf("send to %d: error = %v, want ErrBadRecipient", to, err)
		}
	}
}

func TestEngineRoundLimit(t *testing.T) {
	e := NewEngine(2)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		send(1-node, int64(round)) // ping forever
		return false
	}
	if _, err := e.Run(step, 7); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("error = %v, want ErrRoundLimit", err)
	}
	if e.Rounds() != 7 {
		t.Fatalf("rounds = %d, want 7", e.Rounds())
	}
}

func TestEngineZeroRoundProgram(t *testing.T) {
	// Pure internal computation: all nodes done immediately, no sends.
	e := NewEngine(4)
	used, err := e.Run(func(int, int, []Message, func(int, ...int64)) bool { return true }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Fatalf("internal-only program used %d rounds, want 0", used)
	}
}

func TestEngineAccumulatesAcrossRuns(t *testing.T) {
	e := NewEngine(2)
	ping := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 7)
			return false
		}
		return true
	}
	if _, err := e.Run(ping, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ping, 5); err != nil {
		t.Fatal(err)
	}
	if e.Rounds() != 2 {
		t.Fatalf("cumulative rounds = %d, want 2", e.Rounds())
	}
}
