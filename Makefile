# Build/verify entry points. `make check` is the CI gate: it vets, builds,
# runs the full test suite under the race detector (continuously validating
# the parallel engine and the concurrent round ledger), and smoke-runs every
# benchmark once so the benchmark programs themselves cannot rot.

GO ?= go

.PHONY: all build vet test race bench-smoke bench-engine bench-baseline check experiments

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Run every benchmark exactly once as a smoke test (no timing fidelity).
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# The engine/routing microbenchmarks behind BENCH_engine.json.
bench-engine:
	$(GO) test -run xxx -bench 'BenchmarkEngineRun|BenchmarkRoute' -benchmem -benchtime 2s ./internal/cc/

# Refresh the recorded baseline (see BENCH_engine.json for the format).
bench-baseline:
	$(GO) test -run xxx -bench 'BenchmarkEngineRun|BenchmarkRoute' -benchmem -benchtime 2s ./internal/cc/ | tee /tmp/bench_engine.txt

experiments:
	$(GO) run ./cmd/experiments

check: vet build race bench-smoke
