package lapcc_test

// Differential transport tests: the headline algorithms must produce
// bit-identical answers and identical charged ledgers no matter which
// delivery backend carries their messages — the in-process merge, the
// in-process wire codec (transport.Mem), or the multi-process TCP clique
// with every worker in its own OS process. Combined with a fault plan this
// is the acceptance gate of the transport boundary: the backend may change
// how bytes move, never what arrives or what it costs.

import (
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

var nodeBin struct {
	once sync.Once
	path string
	err  error
}

// nodeBinary builds cmd/lapccnode once per test binary and returns its path,
// so the TCP cases run real worker subprocesses.
func nodeBinary(t *testing.T) string {
	t.Helper()
	nodeBin.once.Do(func() {
		dir, err := os.MkdirTemp("", "lapccnode")
		if err != nil {
			nodeBin.err = err
			return
		}
		bin := filepath.Join(dir, "lapccnode")
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/lapccnode")
		if out, err := cmd.CombinedOutput(); err != nil {
			nodeBin.err = err
			t.Logf("go build ./cmd/lapccnode: %s", out)
			return
		}
		nodeBin.path = bin
	})
	if nodeBin.err != nil {
		t.Fatalf("building lapccnode: %v", nodeBin.err)
	}
	return nodeBin.path
}

// backends yields the wire-carrying delivery backends under test, each as a
// fresh instance: the codec round-trip and a 4-process TCP clique running
// the built lapccnode binary.
func backends(t *testing.T) map[string]func() cc.Transport {
	t.Helper()
	bin := nodeBinary(t)
	return map[string]func() cc.Transport{
		"mem": func() cc.Transport { return transport.NewMem() },
		"tcp": func() cc.Transport {
			tr, err := tcp.New(tcp.Options{Procs: 4, Binary: bin})
			if err != nil {
				t.Fatalf("booting tcp transport: %v", err)
			}
			return tr
		},
	}
}

func sameRounds(t *testing.T, label string, want, got core.RoundReport) {
	t.Helper()
	if want != got {
		t.Fatalf("%s: round report diverges: %+v != %+v", label, got, want)
	}
}

// TestTransportDifferentialLapsolver pins SolveLaplacianWith across
// backends under an injected fault plan: potentials and the full round
// report (total, measured, charged) must be bit-identical to the in-process
// run.
func TestTransportDifferentialLapsolver(t *testing.T) {
	g, err := graph.ConnectedGNM(48, 140, 11)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(48)
	b[0], b[47] = 1, -1
	base, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Faults: dropPlan(101)})
	if err != nil {
		t.Fatal(err)
	}
	for name, open := range backends(t) {
		tr := open()
		got, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{
			Faults: dropPlan(101), Transport: tr,
		})
		if cerr := tr.Close(); cerr != nil {
			t.Fatalf("%s: close: %v", name, cerr)
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range base.X {
			if base.X[i] != got.X[i] {
				t.Fatalf("%s: potentials diverge at %d: %v != %v", name, i, got.X[i], base.X[i])
			}
		}
		sameRounds(t, name, base.Rounds, got.Rounds)
	}
}

// TestTransportDifferentialMaxflow pins MaxFlowWith the same way: value,
// per-arc flow, and charged rounds are backend-independent under faults.
func TestTransportDifferentialMaxflow(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 21)
	s, tt := 0, dg.N()-1
	base, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Faults: dropPlan(102)})
	if err != nil {
		t.Fatal(err)
	}
	for name, open := range backends(t) {
		tr := open()
		got, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Faults: dropPlan(102), Transport: tr})
		if cerr := tr.Close(); cerr != nil {
			t.Fatalf("%s: close: %v", name, cerr)
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if base.Value != got.Value {
			t.Fatalf("%s: values diverge: %d != %d", name, got.Value, base.Value)
		}
		for i := range base.Flow {
			if base.Flow[i] != got.Flow[i] {
				t.Fatalf("%s: flows diverge at arc %d", name, i)
			}
		}
		sameRounds(t, name, base.Rounds, got.Rounds)
	}
}

// TestTransportDifferentialEulerClean covers the fault-free path over the
// wire backends too: orientation and rounds identical with no reliable
// layer in between.
func TestTransportDifferentialEulerClean(t *testing.T) {
	g, err := graph.RandomEulerian(32, 8, 3, 13)
	if err != nil {
		t.Fatal(err)
	}
	base, err := core.EulerianOrientWith(g, core.RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for name, open := range backends(t) {
		tr := open()
		got, err := core.EulerianOrientWith(g, core.RunOptions{Transport: tr})
		if cerr := tr.Close(); cerr != nil {
			t.Fatalf("%s: close: %v", name, cerr)
		}
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for i := range base.Orient {
			if base.Orient[i] != got.Orient[i] {
				t.Fatalf("%s: orientations diverge at edge %d", name, i)
			}
		}
		sameRounds(t, name, base.Rounds, got.Rounds)
	}
}
