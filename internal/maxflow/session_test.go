package maxflow

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// The session path (build the electrical session once, reweight per
// iteration) must be a pure wall-clock optimization over the FreshBuild
// oracle: identical flow value, a feasible flow, and an identical charged
// round total across the full IPM run.
func TestMaxFlowSessionMatchesFreshBuild(t *testing.T) {
	cases := []struct {
		name string
		dg   *graph.DiGraph
		s, t int
	}{
		{"random-12", graph.RandomDiGraph(12, 40, 9, 1, 5), 0, 11},
		{"random-16", graph.RandomDiGraph(16, 60, 41, 1, 8), 0, 15},
		{"layered", layeredDAG(4, 3, 7), 0, 4*3 + 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sessLed := rounds.New()
			sess, err := MaxFlow(tc.dg, tc.s, tc.t, Options{Ledger: sessLed, FastSolve: true})
			if err != nil {
				t.Fatal(err)
			}
			freshLed := rounds.New()
			fresh, err := MaxFlow(tc.dg, tc.s, tc.t, Options{Ledger: freshLed, FastSolve: true, FreshBuild: true})
			if err != nil {
				t.Fatal(err)
			}

			if sess.Value != fresh.Value {
				t.Fatalf("session value %d != fresh-build value %d", sess.Value, fresh.Value)
			}
			if got, err := CheckFlow(tc.dg, sess.Flow, tc.s, tc.t); err != nil || got != sess.Value {
				t.Fatalf("session flow infeasible: value %d, err %v", got, err)
			}
			if sc, fc := sessLed.TotalOf(rounds.Charged), freshLed.TotalOf(rounds.Charged); sc != fc {
				t.Fatalf("charged rounds differ: session %d, fresh build %d", sc, fc)
			}
			if sm, fm := sessLed.TotalOf(rounds.Measured), freshLed.TotalOf(rounds.Measured); sm != fm {
				t.Fatalf("measured rounds differ: session %d, fresh build %d", sm, fm)
			}
			if sess.IPMIterations != fresh.IPMIterations {
				t.Fatalf("iteration trajectories diverged: session %d, fresh build %d",
					sess.IPMIterations, fresh.IPMIterations)
			}
		})
	}
}

// layeredDAG builds the layered DAG of TestMaxFlowIPMLayeredDAG's shape:
// source -> layer_1 -> ... -> layer_k -> sink with full bipartite stages.
func layeredDAG(layers, width int, cap int64) *graph.DiGraph {
	n := layers*width + 2
	dg := graph.NewDi(n)
	src, snk := 0, n-1
	for j := 0; j < width; j++ {
		dg.MustAddArc(src, 1+j, cap, 0)
	}
	for l := 0; l+1 < layers; l++ {
		for a := 0; a < width; a++ {
			for b := 0; b < width; b++ {
				dg.MustAddArc(1+l*width+a, 1+(l+1)*width+b, cap, 0)
			}
		}
	}
	for j := 0; j < width; j++ {
		dg.MustAddArc(1+(layers-1)*width+j, snk, cap, 0)
	}
	return dg
}
