package sparsify_test

import (
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/sparsify"
)

// ExampleSparsify builds the Theorem 3.3 sparsifier of a clique and shows
// the size reduction.
func ExampleSparsify() {
	g := graph.Complete(64)
	res, _ := sparsify.Sparsify(g, sparsify.Options{})
	fmt.Println("input edges:", g.M(), "> sparsifier edges:", res.H.M())
	// Output: input edges: 2016 > sparsifier edges: 352
}
