package cc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
)

// FaultPlan describes a deterministic fault schedule for the simulator: a
// seed-driven program deciding, per round and per ordered node pair, whether
// a message is dropped, corrupted, duplicated, or delayed, and which nodes
// are stalled or crashed in which rounds. Every decision is a pure function
// of (Seed, round, endpoints), so a plan replays identically across runs,
// worker counts, and sequential/parallel execution — no math/rand global
// state is consulted anywhere.
//
// A plan is installed on an engine with Engine.SetFaults (engine-level
// message faults and node stalls) and consumed by the reliable routing layer
// (ReliableRoute and friends), which restores delivery guarantees on top of
// a lossy plan via acknowledgements and bounded retransmission.
type FaultPlan struct {
	// Seed drives every fault decision. Two plans with equal rates and
	// seeds inject exactly the same faults.
	Seed uint64
	// Drop, Corrupt, Duplicate, Delay are per-message fault probabilities
	// in [0, 1]. At most one fault applies to a message; when the rates sum
	// to more than 1 the plan is invalid. Precedence of the single uniform
	// draw: drop, then corrupt, then duplicate, then delay.
	Drop      float64
	Corrupt   float64
	Duplicate float64
	Delay     float64
	// MaxDelay bounds the extra rounds a delayed message waits before
	// delivery (default 2). The actual delay of a delayed message is a
	// deterministic value in 1..MaxDelay.
	MaxDelay int
	// MaxRetries bounds the retransmission waves of the reliable routing
	// layer after the initial attempt (default 8). ReliableRoute returns
	// ErrDeliveryFailed when packets remain undelivered after this many
	// retries.
	MaxRetries int
	// Stalls lists node stall/crash windows (engine-level only).
	Stalls []Stall
}

// Stall silences one node: during rounds [From, From+For) node Node does not
// execute its step (it counts as busy so the program cannot terminate around
// it), and messages addressed to it are buffered by the engine and delivered
// when it wakes. For < 0 crashes the node instead: from round From on it
// never steps again, counts as done, and messages to it are dropped.
// Round indices are relative to the Run call the plan is active in.
type Stall struct {
	Node int
	From int
	For  int
}

// FaultStats counts injected faults. Engine counters are cumulative across
// rounds; RoundStats carries the per-round delta.
type FaultStats struct {
	// Dropped counts messages destroyed in flight (including messages
	// addressed to crashed nodes).
	Dropped int64
	// Corrupted counts messages whose payload was bit-flipped.
	Corrupted int64
	// Duplicated counts messages delivered twice.
	Duplicated int64
	// Delayed counts messages held back at least one extra round.
	Delayed int64
	// StalledSteps counts node-rounds in which a stalled node skipped its
	// step.
	StalledSteps int64
}

func (s *FaultStats) add(o FaultStats) {
	s.Dropped += o.Dropped
	s.Corrupted += o.Corrupted
	s.Duplicated += o.Duplicated
	s.Delayed += o.Delayed
	s.StalledSteps += o.StalledSteps
}

// Total returns the total number of injected faults.
func (s FaultStats) Total() int64 {
	return s.Dropped + s.Corrupted + s.Duplicated + s.Delayed + s.StalledSteps
}

// ErrBadFaultPlan reports an invalid fault plan (rates outside [0,1] or
// summing past 1).
var ErrBadFaultPlan = errors.New("cc: invalid fault plan")

// ErrDeliveryFailed reports that the reliable routing layer exhausted its
// retransmission budget with packets still undelivered.
var ErrDeliveryFailed = errors.New("cc: reliable delivery exhausted retries")

// Validate checks the plan's rates and stall windows.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	for _, r := range [...]float64{p.Drop, p.Corrupt, p.Duplicate, p.Delay} {
		if r < 0 || r > 1 || r != r {
			return fmt.Errorf("%w: rate %v outside [0,1]", ErrBadFaultPlan, r)
		}
	}
	if sum := p.Drop + p.Corrupt + p.Duplicate + p.Delay; sum > 1 {
		return fmt.Errorf("%w: rates sum to %v > 1", ErrBadFaultPlan, sum)
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("%w: MaxDelay %d", ErrBadFaultPlan, p.MaxDelay)
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("%w: MaxRetries %d", ErrBadFaultPlan, p.MaxRetries)
	}
	for _, s := range p.Stalls {
		if s.Node < 0 || s.From < 0 {
			return fmt.Errorf("%w: stall %+v", ErrBadFaultPlan, s)
		}
	}
	return nil
}

// messageFates reports whether the plan can fault messages at all; a plan
// with only stalls leaves the message path clean.
func (p *FaultPlan) messageFates() bool {
	return p != nil && p.Drop+p.Corrupt+p.Duplicate+p.Delay > 0
}

func (p *FaultPlan) maxDelay() int {
	if p.MaxDelay > 0 {
		return p.MaxDelay
	}
	return 2
}

func (p *FaultPlan) maxRetries() int {
	if p.MaxRetries > 0 {
		return p.MaxRetries
	}
	return 8
}

// splitmix64 is the finalizer of the SplitMix64 generator: a bijective
// avalanche mix used as the plan's stateless hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// hash folds the plan seed with up to four coordinates into one 64-bit value.
func (p *FaultPlan) hash(a, b, c, d uint64) uint64 {
	h := splitmix64(p.Seed ^ 0x6c62272e07bb0142)
	h = splitmix64(h ^ a)
	h = splitmix64(h ^ b)
	h = splitmix64(h ^ c)
	h = splitmix64(h ^ d)
	return h
}

// u01 maps a hash to a uniform draw in [0, 1).
func u01(h uint64) float64 {
	return float64(h>>11) / float64(uint64(1)<<53)
}

// Fault fates. At most one fate applies per message.
const (
	faultNone = iota
	faultDrop
	faultCorrupt
	faultDuplicate
	faultDelay
)

// Domain salts keep the engine's per-pair draws and the reliable layer's
// per-packet draws independent streams of the same seed.
const (
	saltEngine   = 0x9d8f3a27
	saltPacket   = 0x51c6e7b9
	saltDelayAmt = 0x2f0b4c85
	saltCorrupt  = 0xb7e15162
)

// fate resolves a single message's fate from one uniform draw.
func (p *FaultPlan) fate(salt, a, b, c uint64) (kind, delay int) {
	u := u01(p.hash(salt, a, b, c))
	switch {
	case u < p.Drop:
		return faultDrop, 0
	case u < p.Drop+p.Corrupt:
		return faultCorrupt, 0
	case u < p.Drop+p.Corrupt+p.Duplicate:
		return faultDuplicate, 0
	case u < p.Drop+p.Corrupt+p.Duplicate+p.Delay:
		d := 1 + int(p.hash(saltDelayAmt, a, b, c)%uint64(p.maxDelay()))
		return faultDelay, d
	}
	return faultNone, 0
}

// engineFate decides the fate of the engine message from->to sent in round r.
func (p *FaultPlan) engineFate(r, from, to int) (kind, delay int) {
	return p.fate(saltEngine, uint64(r), uint64(from), uint64(to))
}

// packetFate decides the fate of reliable-layer packet seq on retransmission
// wave w.
func (p *FaultPlan) packetFate(seq, wave int) (kind, delay int) {
	return p.fate(saltPacket, uint64(seq), uint64(wave), 0)
}

// stalledAt reports whether node is silenced in round r (stalled or
// crashed).
func (p *FaultPlan) stalledAt(node, r int) bool {
	if p == nil {
		return false
	}
	for _, s := range p.Stalls {
		if s.Node != node || r < s.From {
			continue
		}
		if s.For < 0 || r < s.From+s.For {
			return true
		}
	}
	return false
}

// crashedAt reports whether node is permanently down in round r.
func (p *FaultPlan) crashedAt(node, r int) bool {
	if p == nil {
		return false
	}
	for _, s := range p.Stalls {
		if s.Node == node && s.For < 0 && r >= s.From {
			return true
		}
	}
	return false
}

// ParseFaultPlan parses the -faults flag syntax: a comma-separated list of
// key=value pairs with keys seed, drop, corrupt, dup, delay, maxdelay,
// retries, and stall (stall=node:from:for, repeatable; for=-1 crashes the
// node). The shorthand of a bare number is a drop rate: "-faults 0.01" is
// "-faults drop=0.01". An empty string returns a nil plan.
func ParseFaultPlan(s string) (*FaultPlan, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, nil
	}
	p := &FaultPlan{}
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		p.Drop = v
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return p, nil
	}
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return nil, fmt.Errorf("%w: field %q is not key=value", ErrBadFaultPlan, field)
		}
		switch key {
		case "seed":
			u, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: seed %q", ErrBadFaultPlan, val)
			}
			p.Seed = u
		case "drop", "corrupt", "dup", "delay":
			f, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: %s %q", ErrBadFaultPlan, key, val)
			}
			switch key {
			case "drop":
				p.Drop = f
			case "corrupt":
				p.Corrupt = f
			case "dup":
				p.Duplicate = f
			case "delay":
				p.Delay = f
			}
		case "maxdelay", "retries":
			i, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("%w: %s %q", ErrBadFaultPlan, key, val)
			}
			if key == "maxdelay" {
				p.MaxDelay = i
			} else {
				p.MaxRetries = i
			}
		case "stall":
			parts := strings.Split(val, ":")
			if len(parts) != 3 {
				return nil, fmt.Errorf("%w: stall %q is not node:from:for", ErrBadFaultPlan, val)
			}
			var nums [3]int
			for i, part := range parts {
				x, err := strconv.Atoi(part)
				if err != nil {
					return nil, fmt.Errorf("%w: stall %q", ErrBadFaultPlan, val)
				}
				nums[i] = x
			}
			p.Stalls = append(p.Stalls, Stall{Node: nums[0], From: nums[1], For: nums[2]})
		default:
			return nil, fmt.Errorf("%w: unknown key %q", ErrBadFaultPlan, key)
		}
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// String renders the plan in ParseFaultPlan syntax.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	var parts []string
	if p.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed=%d", p.Seed))
	}
	for _, kv := range [...]struct {
		k string
		v float64
	}{{"drop", p.Drop}, {"corrupt", p.Corrupt}, {"dup", p.Duplicate}, {"delay", p.Delay}} {
		if kv.v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%v", kv.k, kv.v))
		}
	}
	if p.MaxDelay > 0 {
		parts = append(parts, fmt.Sprintf("maxdelay=%d", p.MaxDelay))
	}
	if p.MaxRetries > 0 {
		parts = append(parts, fmt.Sprintf("retries=%d", p.MaxRetries))
	}
	for _, s := range p.Stalls {
		parts = append(parts, fmt.Sprintf("stall=%d:%d:%d", s.Node, s.From, s.For))
	}
	return strings.Join(parts, ",")
}
