// Maximum flow on a layered transport network (Theorem 1.2), compared
// against the two deterministic baselines of section 1.1: Ford-Fulkerson
// with O(n^0.158)-round reachability, and the trivial gather-everything
// algorithm.
//
//	go run ./examples/maxflow
package main

import (
	"fmt"
	"os"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/maxflow"
	"lapcc/internal/rounds"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "maxflow:", err)
		os.Exit(1)
	}
}

func run() error {
	// A 4-layer, 6-wide freight network with capacities up to 16.
	dg := graph.LayeredDAG(4, 6, 3, 16, 7)
	s, t := 0, dg.N()-1
	fmt.Printf("network: n=%d m=%d U=%d, source %d -> sink %d\n",
		dg.N(), dg.M(), dg.MaxCapacity(), s, t)

	res, err := core.MaxFlowWith(dg, s, t, core.RunOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("maximum flow value: %d\n", res.Value)
	fmt.Printf("  interior-point iterations: %d, final augmenting paths: %d\n",
		res.IPMIterations, res.FinalAugmentations)
	fmt.Printf("  rounds (ours):          %8d\n", res.Rounds.Total)

	ff, err := maxflow.FordFulkerson(dg, s, t, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  rounds (Ford-Fulkerson):%8d  (%d augmentations x %d)\n",
		ff.Rounds, ff.Augmentations, rounds.APSPRounds(dg.N()))
	fmt.Printf("  rounds (trivial gather):%8d\n", maxflow.TrivialRounds(dg))

	// Saturated arcs out of the source tell the operator where the
	// bottleneck is.
	saturated := 0
	for _, ai := range dg.Out(s) {
		if res.Flow[ai] == dg.Arc(ai).Cap {
			saturated++
		}
	}
	fmt.Printf("saturated source arcs: %d of %d\n", saturated, dg.OutDegree(s))
	return nil
}
