// Parallel runtime of the linalg package: a small shared worker pool plus
// blocked kernels with deterministic reduction order, porting the
// worker-pool/arena idiom of internal/cc into the numerical core.
//
// The determinism contract is the same one the cc engine honors for message
// merges: results are bit-identical at any worker count, including the
// sequential path. Three mechanisms deliver it:
//
//   - Fixed block partition. Every reduction splits its input into blocks of
//     exactly reduceBlock elements (the last block ragged). The partition
//     depends only on the vector length, never on the worker count, so the
//     partial sums are the same numbers no matter who computes them.
//   - Fixed-order tree combine. Block partials are folded pairwise in block
//     order (parts[0]+parts[1], parts[2]+parts[3], ...), a schedule that is a
//     pure function of the block count. Workers race only to *fill* the
//     partial slots, never to combine them.
//   - Owner-computes writes. Elementwise kernels and the blocked
//     Laplacian.Apply partition the *output* index space; each entry is
//     written by exactly one worker with the same floating-point operation
//     sequence as the sequential loop, so no merge step exists at all.
//
// A nil *Pool is the sequential runtime: every kernel method works on a nil
// receiver and runs the plain loop. Workers=1 therefore restores today's
// exact code path, and because vectors shorter than reduceBlock occupy a
// single block, small-n results (everything the differential and fault
// suites pin) are bit-for-bit the historical left-to-right sums even for
// the blocked kernels.
package linalg

import (
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// reduceBlock is the fixed reduction block size, in elements. It is part of
// the numeric contract: changing it changes the bits of blocked reductions
// on vectors longer than one block. 4096 float64 reads are 32 KiB — half an
// L1d — so a block is also the natural unit of per-worker cache residency.
const reduceBlock = 4096

// Pool is a reusable team of workers executing blocked loops. The zero
// of the type is not used; pools come from SharedPool. A nil *Pool is valid
// everywhere and means "run sequentially on the caller".
//
// Pools are safe for concurrent use from multiple goroutines: each ForBlocks
// call carries its own atomic cursor and wait group, and the persistent
// workers pull one closure per call. Nested ForBlocks calls (a pooled kernel
// inside a pooled solve) cannot deadlock: when the persistent workers are
// busy the dispatch falls back to fresh goroutines, and the caller always
// participates in its own loop.
type Pool struct {
	workers int
	tasks   chan func()
}

// sharedPools registers one pool per worker count for the whole process, so
// sessions and solvers that resolve the same Workers knob share one team of
// goroutines instead of leaking a pool per build.
var (
	sharedMu    sync.Mutex
	sharedPools = map[int]*Pool{}
)

// ResolveWorkers maps the user-facing Workers knob to an effective worker
// count: 0 (or negative) means GOMAXPROCS, 1 means sequential, and any
// other value is taken as given.
func ResolveWorkers(workers int) int {
	if workers == 1 {
		return 1
	}
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// SharedPool returns the process-wide pool for the given Workers knob,
// creating it on first use. A resolved count of 1 returns nil — the
// sequential runtime — so callers thread the result unconditionally.
func SharedPool(workers int) *Pool {
	w := ResolveWorkers(workers)
	if w <= 1 {
		return nil
	}
	sharedMu.Lock()
	defer sharedMu.Unlock()
	if p, ok := sharedPools[w]; ok {
		return p
	}
	p := &Pool{workers: w, tasks: make(chan func())}
	for i := 1; i < w; i++ {
		go func() {
			for task := range p.tasks {
				task()
			}
		}()
	}
	sharedPools[w] = p
	return p
}

// Workers returns the pool's worker count (1 for the nil, sequential pool).
func (p *Pool) Workers() int {
	if p == nil {
		return 1
	}
	return p.workers
}

// ForBlocks runs fn(b) for every block index b in [0, numBlocks). Blocks are
// claimed from an atomic cursor, so the assignment of blocks to workers is
// racy by design — fn must make that harmless by writing only state owned by
// block b (the owner-computes rule). The caller participates as a worker and
// the call returns when every block is done.
func (p *Pool) ForBlocks(numBlocks int, fn func(b int)) {
	if p == nil || p.workers <= 1 || numBlocks <= 1 {
		for b := 0; b < numBlocks; b++ {
			fn(b)
		}
		return
	}
	dispatchCount()
	k := p.workers
	if k > numBlocks {
		k = numBlocks
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	run := func() {
		defer wg.Done()
		for {
			b := int(next.Add(1)) - 1
			if b >= numBlocks {
				return
			}
			fn(b)
		}
	}
	wg.Add(k)
	for i := 1; i < k; i++ {
		select {
		case p.tasks <- run:
		default:
			// Every persistent worker is busy (nested parallelism, or
			// concurrent sessions sharing the pool): spawn instead of
			// queueing behind work that may itself be waiting on us.
			go run()
		}
	}
	run()
	wg.Wait()
}

// Range runs fn(lo, hi) over a fixed partition of [0, n) into reduceBlock
// spans. It is the elementwise counterpart of the blocked reductions: the
// partition depends only on n, and each index is written by exactly one
// invocation.
func (p *Pool) Range(n int, fn func(lo, hi int)) {
	nb := reduceBlocks(n)
	if nb <= 1 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	p.ForBlocks(nb, func(b int) {
		lo, hi := blockSpan(n, b)
		fn(lo, hi)
	})
}

// reduceBlocks returns the number of fixed-size blocks covering n elements.
func reduceBlocks(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + reduceBlock - 1) / reduceBlock
}

// blockSpan returns the half-open index range of block b.
func blockSpan(n, b int) (lo, hi int) {
	lo = b * reduceBlock
	hi = lo + reduceBlock
	if hi > n {
		hi = n
	}
	return lo, hi
}

// treeReduce folds block partials pairwise in block order:
// (p0+p1), (p2+p3), ... then recursively over the halved slice. The schedule
// is a pure function of len(parts), so the result is bit-identical no matter
// how many workers filled the slots. It consumes parts as scratch.
func treeReduce(parts []float64) float64 {
	if len(parts) == 0 {
		return 0
	}
	for n := len(parts); n > 1; {
		half := (n + 1) / 2
		for i := 0; i < n/2; i++ {
			parts[i] = parts[2*i] + parts[2*i+1]
		}
		if n%2 == 1 {
			parts[n/2] = parts[n-1]
		}
		n = half
	}
	return parts[0]
}

// partsPool recycles block-partial slices so pooled reductions allocate only
// on growth, mirroring the cc engine's per-worker arenas.
var partsPool = sync.Pool{New: func() any { s := make([]float64, 0, 64); return &s }}

func getParts(n int) *[]float64 {
	sp := partsPool.Get().(*[]float64)
	if cap(*sp) < n {
		*sp = make([]float64, n)
	}
	*sp = (*sp)[:n]
	return sp
}

// Dot returns the inner product of v and w under the pool's blocked,
// fixed-order reduction. This is the single numeric definition of a dot
// product in the package: Vec.Dot delegates here with a nil pool.
func (p *Pool) Dot(v, w Vec) float64 {
	kernelCalls(kernelDot)
	n := len(v)
	if n <= reduceBlock {
		var s float64
		for i := range v {
			s += v[i] * w[i]
		}
		return s
	}
	nb := reduceBlocks(n)
	sp := getParts(nb)
	parts := *sp
	p.ForBlocks(nb, func(b int) {
		lo, hi := blockSpan(n, b)
		var s float64
		for i := lo; i < hi; i++ {
			s += v[i] * w[i]
		}
		parts[b] = s
	})
	r := treeReduce(parts)
	partsPool.Put(sp)
	return r
}

// Norm2 returns the Euclidean norm of v via the pool's blocked Dot.
func (p *Pool) Norm2(v Vec) float64 { return math.Sqrt(p.Dot(v, v)) }

// Sum returns the entry sum of v under the blocked, fixed-order reduction.
func (p *Pool) Sum(v Vec) float64 {
	kernelCalls(kernelSum)
	n := len(v)
	if n <= reduceBlock {
		var s float64
		for _, x := range v {
			s += x
		}
		return s
	}
	nb := reduceBlocks(n)
	sp := getParts(nb)
	parts := *sp
	p.ForBlocks(nb, func(b int) {
		lo, hi := blockSpan(n, b)
		var s float64
		for i := lo; i < hi; i++ {
			s += v[i]
		}
		parts[b] = s
	})
	r := treeReduce(parts)
	partsPool.Put(sp)
	return r
}

// AXPY sets v = v + a*w with the output range partitioned across workers.
// Elementwise writes are owner-computes, so the result is trivially
// bit-identical to the sequential loop.
func (p *Pool) AXPY(v Vec, a float64, w Vec) {
	kernelCalls(kernelAXPY)
	if p == nil || len(v) <= reduceBlock {
		for i := range v {
			v[i] += a * w[i]
		}
		return
	}
	p.Range(len(v), func(lo, hi int) {
		vs, ws := v[lo:hi], w[lo:hi]
		for i := range vs {
			vs[i] += a * ws[i]
		}
	})
}

// Scale sets v = a*v with the output range partitioned across workers.
func (p *Pool) Scale(v Vec, a float64) {
	kernelCalls(kernelScale)
	if p == nil || len(v) <= reduceBlock {
		for i := range v {
			v[i] *= a
		}
		return
	}
	p.Range(len(v), func(lo, hi int) {
		vs := v[lo:hi]
		for i := range vs {
			vs[i] *= a
		}
	})
}

// RemoveMean subtracts the mean from every entry of v: a blocked Sum for
// the mean, then an owner-computes subtraction sweep.
func (p *Pool) RemoveMean(v Vec) {
	kernelCalls(kernelRemoveMean)
	if len(v) == 0 {
		return
	}
	m := p.Sum(v) / float64(len(v))
	if p == nil || len(v) <= reduceBlock {
		for i := range v {
			v[i] -= m
		}
		return
	}
	p.Range(len(v), func(lo, hi int) {
		vs := v[lo:hi]
		for i := range vs {
			vs[i] -= m
		}
	})
}
