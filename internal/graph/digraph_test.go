package graph

import (
	"errors"
	"testing"
)

func TestDiGraphBasics(t *testing.T) {
	g := NewDi(4)
	id, err := g.AddArc(0, 1, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if id != 0 {
		t.Fatalf("first arc id = %d, want 0", id)
	}
	g.MustAddArc(1, 2, 3, 1)
	g.MustAddArc(1, 3, 7, 4)
	if g.M() != 3 {
		t.Fatalf("M() = %d, want 3", g.M())
	}
	if g.OutDegree(1) != 2 || g.InDegree(1) != 1 {
		t.Fatalf("degrees of 1: out=%d in=%d, want 2, 1", g.OutDegree(1), g.InDegree(1))
	}
	if g.MaxCapacity() != 7 {
		t.Fatalf("MaxCapacity = %d, want 7", g.MaxCapacity())
	}
	if g.MaxCost() != 4 {
		t.Fatalf("MaxCost = %d, want 4", g.MaxCost())
	}
}

func TestDiGraphErrors(t *testing.T) {
	g := NewDi(3)
	if _, err := g.AddArc(0, 3, 1, 0); !errors.Is(err, ErrVertexRange) {
		t.Fatalf("range error = %v", err)
	}
	if _, err := g.AddArc(1, 1, 1, 0); !errors.Is(err, ErrSelfLoop) {
		t.Fatalf("self loop error = %v", err)
	}
	if _, err := g.AddArc(0, 1, -1, 0); err == nil {
		t.Fatal("negative capacity should error")
	}
}

func TestDiGraphMaxCostAbsolute(t *testing.T) {
	g := NewDi(3)
	g.MustAddArc(0, 1, 1, -9)
	g.MustAddArc(1, 2, 1, 3)
	if g.MaxCost() != 9 {
		t.Fatalf("MaxCost = %d, want 9 (absolute)", g.MaxCost())
	}
}

func TestDiGraphClone(t *testing.T) {
	g := NewDi(3)
	g.MustAddArc(0, 1, 1, 1)
	c := g.Clone()
	c.MustAddArc(1, 2, 1, 1)
	if g.M() != 1 || c.M() != 2 {
		t.Fatal("clone not independent")
	}
}

func TestDiGraphUndirected(t *testing.T) {
	g := NewDi(3)
	g.MustAddArc(0, 1, 1, 1)
	g.MustAddArc(2, 1, 1, 1)
	g.MustAddArc(0, 2, 1, 1)
	u, err := g.Undirected(func(i int) float64 {
		if i == 2 {
			return 0 // dropped
		}
		return float64(i + 1)
	})
	if err != nil {
		t.Fatal(err)
	}
	if u.M() != 2 {
		t.Fatalf("undirected m = %d, want 2", u.M())
	}
	if u.Edge(1).W != 2 {
		t.Fatalf("weight = %v, want 2", u.Edge(1).W)
	}
}

// TestMustAddArcPanicsOnError pins the documented Must* split (see the
// MustAddEdge test in graph_test.go).
func TestMustAddArcPanicsOnError(t *testing.T) {
	g := NewDi(3)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAddArc did not panic on a negative capacity")
		}
	}()
	g.MustAddArc(0, 1, -1, 0)
}
