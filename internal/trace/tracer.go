// Package trace is the structured round-tracing subsystem for the
// congested-clique algorithm stack.
//
// A Tracer records a tree of named spans — one per algorithm phase
// (sparsifier level, Chebyshev attempt, IPM iteration, contraction level) —
// and attributes every cost recorded while a span is open to that span:
//
//   - measured and charged rounds, fed from rounds.Ledger via Ledger.SetSink
//     (the Tracer implements rounds.Sink and rounds.TrafficSink);
//   - engine-level message/word/link-load counters, fed from cc.Engine via
//     SetObserver (use Tracer.Observer) and from the routing primitives'
//     link-traffic reports;
//   - wall-clock time per span.
//
// Span names compose into slash-separated paths such as
// "lapsolve/sparsify/class-0/level-3" or "maxflow/ipm/iter-17"; the path of
// a span is its parent's path plus its own name.
//
// All methods are safe on a nil *Tracer and a nil *Span: a disabled trace
// is a nil pointer, costs nothing, and allocates nothing — callers thread
// tracers unconditionally instead of guarding every call site. A Tracer is
// safe for concurrent use; recording takes one uncontended mutex.
//
// Exports: WriteJSONL (deterministic event stream, no wall-clock fields),
// WriteChromeTrace (Chrome trace_event JSON loadable in chrome://tracing or
// Perfetto), and Summary (per-phase text table).
package trace

import (
	"fmt"
	"sync"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/rounds"
)

// Span is one node in the trace tree: a named phase of an execution, open
// from Start to End, accumulating the costs recorded while it is the
// innermost open span. All methods are nil-safe.
type Span struct {
	tr     *Tracer
	id     int
	parent *Span
	name   string
	path   string

	open       bool
	start, end time.Duration // offsets from the tracer epoch

	measured int64 // rounds attributed while innermost
	charged  int64

	engineRounds int64 // cc.Engine rounds observed while innermost
	messages     int64 // engine messages + routing link messages
	words        int64 // payload words across those messages
	maxOut       int   // max per-node outgoing link load seen
	maxIn        int   // max per-node incoming link load seen
}

type eventKind uint8

const (
	evBegin eventKind = iota + 1
	evEnd
	evCost
	evTraffic
	evRound
	evMark
)

func (k eventKind) String() string {
	switch k {
	case evBegin:
		return "begin"
	case evEnd:
		return "end"
	case evCost:
		return "cost"
	case evTraffic:
		return "traffic"
	case evRound:
		return "round"
	case evMark:
		return "mark"
	default:
		return fmt.Sprintf("eventKind(%d)", int(k))
	}
}

// event is one record in the flat stream backing the JSONL export. Wall
// times (at) are recorded for the Chrome export but never serialized to
// JSONL, which must be byte-identical across runs of the same workload.
type event struct {
	kind eventKind
	span int // span id; -1 for costs recorded with no span open
	at   time.Duration

	tag      string      // cost, traffic
	costKind rounds.Kind // cost
	rounds   int64       // cost

	messages int64 // traffic, round
	words    int64 // traffic, round
	maxOut   int   // round
	maxIn    int   // round

	barrier uint64 // mark: barrier index at the transition
	epoch   uint64 // mark: mesh epoch at the transition
	node    int    // mark: worker index, -1 when not node-scoped
}

// Tracer records spans and events. The zero value is not usable; call New.
// A nil *Tracer is a valid, disabled tracer. A Tracer is intended for one
// logical execution: Start/End from the driving goroutine establish the
// span tree, while cost and observer callbacks may arrive from any
// goroutine and are attributed to the innermost open span.
type Tracer struct {
	mu    sync.Mutex
	epoch time.Time
	spans []*Span
	evs   []event
	cur   *Span // innermost open span

	unattrMeasured int64 // rounds recorded with no span open
	unattrCharged  int64
}

// New returns an empty, enabled tracer.
func New() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Enabled reports whether the tracer records anything; callers use it to
// skip building span names that would otherwise be formatted and discarded.
func (t *Tracer) Enabled() bool { return t != nil }

// Start opens a span named name as a child of the innermost open span (or
// as a root) and makes it the innermost. Returns nil on a nil tracer.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	s := &Span{
		tr:     t,
		id:     len(t.spans),
		parent: t.cur,
		name:   name,
		open:   true,
		start:  time.Since(t.epoch),
	}
	if s.parent != nil {
		s.path = s.parent.path + "/" + name
	} else {
		s.path = name
	}
	t.spans = append(t.spans, s)
	t.cur = s
	t.evs = append(t.evs, event{kind: evBegin, span: s.id, at: s.start})
	t.mu.Unlock()
	return s
}

// Startf is Start with a formatted name; on a nil tracer the formatting is
// skipped entirely.
func (t *Tracer) Startf(format string, args ...any) *Span {
	if t == nil {
		return nil
	}
	return t.Start(fmt.Sprintf(format, args...))
}

// End closes the span and restores its parent as the innermost open span.
// Ending a span that is not the innermost also ends every still-open
// descendant (mis-nested ends are forgiven rather than corrupting the
// tree). Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tr
	t.mu.Lock()
	if s.open {
		onChain := false
		for c := t.cur; c != nil; c = c.parent {
			if c == s {
				onChain = true
				break
			}
		}
		if onChain {
			// Close any still-open descendants first, innermost outward.
			for t.cur != s {
				t.closeLocked(t.cur)
				t.cur = t.cur.parent
			}
			t.closeLocked(s)
			t.cur = s.parent
		} else {
			t.closeLocked(s)
		}
	}
	t.mu.Unlock()
}

func (t *Tracer) closeLocked(s *Span) {
	if !s.open {
		return
	}
	s.open = false
	s.end = time.Since(t.epoch)
	t.evs = append(t.evs, event{kind: evEnd, span: s.id, at: s.end})
}

// Name returns the span's own name ("" on nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Path returns the slash-separated path from the root ("" on nil).
func (s *Span) Path() string {
	if s == nil {
		return ""
	}
	return s.path
}

// RoundCost implements rounds.Sink: it attributes r rounds of the given
// kind to the innermost open span (or to the unattributed bucket when no
// span is open) and appends a cost event. Safe on a nil tracer so that a
// nil *Tracer stored in a rounds.Sink interface stays harmless.
func (t *Tracer) RoundCost(tag string, kind rounds.Kind, r int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := -1
	if s := t.cur; s != nil {
		id = s.id
		switch kind {
		case rounds.Measured:
			s.measured += r
		case rounds.Charged:
			s.charged += r
		}
	} else {
		switch kind {
		case rounds.Measured:
			t.unattrMeasured += r
		case rounds.Charged:
			t.unattrCharged += r
		}
	}
	t.evs = append(t.evs, event{
		kind: evCost, span: id, at: time.Since(t.epoch),
		tag: tag, costKind: kind, rounds: r,
	})
	t.mu.Unlock()
}

// LinkTraffic implements rounds.TrafficSink: it attributes routed message
// and payload-word counts to the innermost open span.
func (t *Tracer) LinkTraffic(tag string, messages, words int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := -1
	if s := t.cur; s != nil {
		id = s.id
		s.messages += messages
		s.words += words
	}
	t.evs = append(t.evs, event{
		kind: evTraffic, span: id, at: time.Since(t.epoch),
		tag: tag, messages: messages, words: words,
	})
	t.mu.Unlock()
}

// Mark records a point event — a supervision transition such as a chaos
// kill, mesh teardown/respawn, or checkpoint replay — attributed to the
// innermost open span and tagged with the barrier index, mesh epoch, and
// worker index it concerns (node -1 for coordinator-scoped transitions).
// Marks carry no wall-clock or error text in the JSONL export, so a traced
// chaos run with a fixed kill schedule stays byte-deterministic;
// nondeterministic detail belongs in the flight recorder instead.
func (t *Tracer) Mark(name string, barrier, epoch uint64, node int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	id := -1
	if s := t.cur; s != nil {
		id = s.id
	}
	t.evs = append(t.evs, event{
		kind: evMark, span: id, at: time.Since(t.epoch),
		tag: name, barrier: barrier, epoch: epoch, node: node,
	})
	t.mu.Unlock()
}

// Attach installs the tracer as the ledger's sink so every Ledger.Add flows
// into the span tree. Nil tracer or nil ledger is a no-op (in particular, a
// nil *Tracer is never installed as a non-nil Sink interface). Returns the
// tracer for chaining.
func (t *Tracer) Attach(led *rounds.Ledger) *Tracer {
	if t == nil || led == nil {
		return t
	}
	led.AttachSink(t)
	return t
}

// Observer returns an engine instrumentation hook (for cc.Engine.SetObserver)
// that attributes per-round engine statistics to the innermost open span.
// On a nil tracer it returns nil, which keeps the engine on its
// observer-disabled fast path — zero added cost, zero allocations.
func (t *Tracer) Observer() func(cc.RoundStats) {
	if t == nil {
		return nil
	}
	return func(rs cc.RoundStats) {
		t.mu.Lock()
		id := -1
		if s := t.cur; s != nil {
			id = s.id
			s.engineRounds++
			s.messages += int64(rs.Messages)
			s.words += int64(rs.Words)
			if rs.MaxOut > s.maxOut {
				s.maxOut = rs.MaxOut
			}
			if rs.MaxIn > s.maxIn {
				s.maxIn = rs.MaxIn
			}
		}
		t.evs = append(t.evs, event{
			kind: evRound, span: id, at: time.Since(t.epoch),
			messages: int64(rs.Messages), words: int64(rs.Words),
			maxOut: rs.MaxOut, maxIn: rs.MaxIn,
		})
		t.mu.Unlock()
	}
}

// SpanCount returns the number of spans recorded so far (0 on nil).
func (t *Tracer) SpanCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// AttributedRounds returns the rounds recorded inside some span and the
// rounds recorded with no span open.
func (t *Tracer) AttributedRounds() (attributed, unattributed int64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for _, s := range t.spans {
		attributed += s.measured + s.charged
	}
	return attributed, t.unattrMeasured + t.unattrCharged
}

// AttributedFraction returns the fraction of recorded rounds attributed to
// a named span (1 when nothing was recorded). The acceptance bar for a
// traced solve is >= 0.95.
func (t *Tracer) AttributedFraction() float64 {
	a, u := t.AttributedRounds()
	if a+u == 0 {
		return 1
	}
	return float64(a) / float64(a+u)
}

// snapshot copies the mutable state out under the lock so exports can
// format without holding it.
func (t *Tracer) snapshot() ([]Span, []event, int64, int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	for i, s := range t.spans {
		spans[i] = *s
		if s.open {
			// Present open spans as ending "now" so exports of a live
			// tracer are well-formed.
			spans[i].end = time.Since(t.epoch)
		}
	}
	evs := make([]event, len(t.evs))
	copy(evs, t.evs)
	return spans, evs, t.unattrMeasured, t.unattrCharged
}
