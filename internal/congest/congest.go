// Package congest simulates the CONGEST model [Pel00] — the paper's §2.1
// contrast to the congested clique: nodes may exchange O(log n)-bit
// messages only with their *neighbors in the input topology*, one per edge
// per round. The §1.1 comparisons (and experiment E9) rest on CONGEST
// algorithms paying sqrt(n) + D per phase where the clique pays O(1); this
// package makes the D-dependence measurable rather than merely charged.
//
// The engine mirrors internal/cc's step-function interface so algorithms
// read the same way; the only change is the topology restriction. A
// distributed BFS (the primitive under every D-term in the cited CONGEST
// bounds) ships with it.
package congest

import (
	"errors"
	"fmt"

	"lapcc/internal/graph"
)

// DefaultMaxWords matches the congested-clique message budget: a constant
// number of 64-bit words is O(log n) bits.
const DefaultMaxWords = 3

// Message is a message delivered to a node at the start of a round.
type Message struct {
	From int
	Data []int64
}

// Step is a per-node program step, as in internal/cc; sends are restricted
// to topology neighbors.
type Step func(node, round int, inbox []Message, send func(to int, data ...int64)) (done bool)

// Engine runs step programs over a fixed topology.
type Engine struct {
	g        *graph.Graph
	neighbor []map[int]bool
	maxWords int
	rounds   int64
	messages int64
}

// Model violations, as in internal/cc.
var (
	// ErrNotNeighbor reports a send to a non-adjacent node — the defining
	// CONGEST restriction.
	ErrNotNeighbor = errors.New("congest: recipient is not a topology neighbor")
	// ErrMessageTooWide reports a message exceeding the word budget.
	ErrMessageTooWide = errors.New("congest: message exceeds word budget")
	// ErrDuplicatePair reports two messages on one ordered pair in a round.
	ErrDuplicatePair = errors.New("congest: more than one message per edge direction per round")
	// ErrRoundLimit reports an exceeded round budget.
	ErrRoundLimit = errors.New("congest: round limit exceeded")
)

// NewEngine returns a CONGEST network over the given topology.
func NewEngine(g *graph.Graph) *Engine {
	nb := make([]map[int]bool, g.N())
	for v := 0; v < g.N(); v++ {
		nb[v] = make(map[int]bool, g.Degree(v))
		for _, h := range g.Adj(v) {
			nb[v][h.To] = true
		}
	}
	return &Engine{g: g, neighbor: nb, maxWords: DefaultMaxWords}
}

// Rounds returns the rounds executed so far.
func (e *Engine) Rounds() int64 { return e.rounds }

// Messages returns the messages delivered so far.
func (e *Engine) Messages() int64 { return e.messages }

// Run executes the program to quiescence or the round budget, returning
// rounds consumed by this run.
func (e *Engine) Run(step Step, maxRounds int) (int64, error) {
	n := e.g.N()
	inboxes := make([][]Message, n)
	start := e.rounds
	for r := 0; ; r++ {
		if r >= maxRounds {
			return e.rounds - start, fmt.Errorf("%w: %d rounds", ErrRoundLimit, maxRounds)
		}
		next := make([][]Message, n)
		sentPair := make(map[[2]int]bool)
		var sendErr error
		allDone := true
		anySent := false
		for v := 0; v < n; v++ {
			node := v
			send := func(to int, data ...int64) {
				if sendErr != nil {
					return
				}
				if to < 0 || to >= n || !e.neighbor[node][to] {
					sendErr = fmt.Errorf("%w: %d -> %d", ErrNotNeighbor, node, to)
					return
				}
				if len(data) > e.maxWords {
					sendErr = fmt.Errorf("%w: node %d sent %d words", ErrMessageTooWide, node, len(data))
					return
				}
				key := [2]int{node, to}
				if sentPair[key] {
					sendErr = fmt.Errorf("%w: %d -> %d in round %d", ErrDuplicatePair, node, to, r)
					return
				}
				sentPair[key] = true
				anySent = true
				e.messages++
				next[to] = append(next[to], Message{From: node, Data: append([]int64(nil), data...)})
			}
			if !step(node, r, inboxes[v], send) {
				allDone = false
			}
			if sendErr != nil {
				return e.rounds - start, sendErr
			}
		}
		if allDone && !anySent {
			return e.rounds - start, nil
		}
		e.rounds++
		inboxes = next
	}
}

// BFSResult reports a distributed BFS.
type BFSResult struct {
	// Dist[v] is the hop distance from the source (-1 if unreachable).
	Dist []int64
	// Rounds is the number of CONGEST rounds used: the eccentricity of the
	// source plus one quiescence round — the "D" in every §1.1 CONGEST
	// bound, measured.
	Rounds int64
}

// BFS runs the textbook distributed breadth-first search from source: the
// frontier floods distance announcements along topology edges.
func BFS(g *graph.Graph, source int) (*BFSResult, error) {
	if source < 0 || source >= g.N() {
		return nil, fmt.Errorf("congest: source %d out of range (n=%d)", source, g.N())
	}
	n := g.N()
	e := NewEngine(g)
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[source] = 0
	announced := make([]bool, n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		for _, m := range inbox {
			if d := m.Data[0] + 1; dist[node] == -1 || d < dist[node] {
				dist[node] = d
			}
		}
		if dist[node] >= 0 && !announced[node] {
			announced[node] = true
			for _, h := range g.Adj(node) {
				send(h.To, dist[node])
			}
			return false
		}
		return true
	}
	used, err := e.Run(step, 4*n+8)
	if err != nil {
		return nil, err
	}
	return &BFSResult{Dist: dist, Rounds: used}, nil
}

// Diameter returns the hop diameter of a connected graph by running BFS
// from every vertex (a measurement utility, not a distributed algorithm).
func Diameter(g *graph.Graph) (int64, error) {
	var diam int64
	for s := 0; s < g.N(); s++ {
		res, err := BFS(g, s)
		if err != nil {
			return 0, err
		}
		for _, d := range res.Dist {
			if d < 0 {
				return 0, errors.New("congest: graph is disconnected")
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam, nil
}
