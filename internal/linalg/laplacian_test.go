package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
)

func randomGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.ConnectedGNM(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestLaplacianDegrees(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	l := NewLaplacian(g)
	deg := l.Degrees()
	want := Vec{2, 5, 3}
	for i := range want {
		if deg[i] != want[i] {
			t.Fatalf("deg = %v, want %v", deg, want)
		}
	}
}

func TestLaplacianApplyMatchesDense(t *testing.T) {
	g := randomGraph(t, 12, 25, 3)
	wg := graph.WithRandomWeights(g, 10, 4)
	l := NewLaplacian(wg)
	d := l.Dense()
	rng := rand.New(rand.NewSource(5))
	x := NewVec(12)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	y1 := NewVec(12)
	y2 := NewVec(12)
	l.Apply(y1, x)
	d.Apply(y2, x)
	for i := range y1 {
		if math.Abs(y1[i]-y2[i]) > 1e-9 {
			t.Fatalf("matrix-free and dense disagree at %d: %v vs %v", i, y1[i], y2[i])
		}
	}
}

// Property: L*1 = 0 and x^T L x >= 0 for any x (PSD with ones-nullspace).
func TestLaplacianPSDProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		maxExtra := n*(n-1)/2 - (n - 1)
		g, err := graph.ConnectedGNM(n, n-1+rng.Intn(maxExtra), seed)
		if err != nil {
			return false
		}
		l := NewLaplacian(graph.WithRandomWeights(g, 9, seed+1))
		ones := NewVec(n)
		for i := range ones {
			ones[i] = 1
		}
		out := NewVec(n)
		l.Apply(out, ones)
		if out.NormInf() > 1e-9 {
			return false
		}
		x := NewVec(n)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		if l.Quad(x) < -1e-9 {
			return false
		}
		// Quad must agree with x^T (L x).
		l.Apply(out, x)
		return math.Abs(l.Quad(x)-x.Dot(out)) < 1e-6*(1+math.Abs(l.Quad(x)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLaplacianNorm(t *testing.T) {
	g := graph.Path(3)
	l := NewLaplacian(g)
	// x = (0,1,2): quad = (0-1)^2 + (1-2)^2 = 2.
	x := Vec{0, 1, 2}
	if got := l.Quad(x); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Quad = %v, want 2", got)
	}
	if got := l.Norm(x); math.Abs(got-math.Sqrt2) > 1e-12 {
		t.Fatalf("Norm = %v, want sqrt(2)", got)
	}
}

func TestScaledOperator(t *testing.T) {
	g := graph.Path(4)
	l := NewLaplacian(g)
	s := &ScaledOperator{A: l, C: 2.5}
	if s.Dim() != 4 {
		t.Fatalf("Dim = %d", s.Dim())
	}
	x := Vec{1, 0, 0, 0}
	y1 := NewVec(4)
	y2 := NewVec(4)
	l.Apply(y1, x)
	s.Apply(y2, x)
	for i := range y1 {
		if math.Abs(2.5*y1[i]-y2[i]) > 1e-12 {
			t.Fatalf("scaled mismatch at %d", i)
		}
	}
}

func TestSumOperator(t *testing.T) {
	a := NewLaplacian(graph.Path(4))
	b := NewLaplacian(graph.Star(4))
	s, err := NewSumOperator(a, b)
	if err != nil {
		t.Fatal(err)
	}
	x := Vec{1, -1, 2, 0}
	ya, yb, ys := NewVec(4), NewVec(4), NewVec(4)
	a.Apply(ya, x)
	b.Apply(yb, x)
	s.Apply(ys, x)
	for i := range ys {
		if math.Abs(ys[i]-(ya[i]+yb[i])) > 1e-12 {
			t.Fatalf("sum mismatch at %d", i)
		}
	}
	if _, err := NewSumOperator(); err == nil {
		t.Fatal("empty sum should error")
	}
	if _, err := NewSumOperator(a, NewLaplacian(graph.Path(5))); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}
