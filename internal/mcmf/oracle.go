// Package mcmf implements the deterministic congested-clique unit-capacity
// minimum cost flow algorithm of Theorem 1.3 — the Cohen-Mądry-Sankowski-
// Vladu [CMSV17] interior point method on the bipartite lifting, driven by
// the Theorem 1.1 Laplacian solver, with Cohen flow rounding and the
// Repairing augmentation stage — plus an independent successive-shortest-
// path oracle used as the correctness reference.
package mcmf

import (
	"container/heap"
	"errors"
	"fmt"

	"lapcc/internal/graph"
)

// ErrBadDemand reports a demand vector that does not sum to zero or has the
// wrong length.
var ErrBadDemand = errors.New("mcmf: demand vector must have length n and sum to zero")

// ErrInfeasible reports that the demands cannot be routed.
var ErrInfeasible = errors.New("mcmf: demands are infeasible")

// checkDemand validates sigma against dg.
func checkDemand(dg *graph.DiGraph, sigma []int64) error {
	if len(sigma) != dg.N() {
		return fmt.Errorf("%w: length %d for n=%d", ErrBadDemand, len(sigma), dg.N())
	}
	var sum int64
	for _, s := range sigma {
		sum += s
	}
	if sum != 0 {
		return fmt.Errorf("%w: sum %d", ErrBadDemand, sum)
	}
	return nil
}

// ssArc is the internal residual arc of the oracle.
type ssArc struct {
	to   int
	cap  int64
	cost int64
}

type ssNet struct {
	n    int
	arcs []ssArc
	adj  [][]int
}

func (net *ssNet) add(from, to int, capacity, cost int64) int {
	id := len(net.arcs)
	net.arcs = append(net.arcs, ssArc{to: to, cap: capacity, cost: cost})
	net.adj[from] = append(net.adj[from], id)
	net.arcs = append(net.arcs, ssArc{to: from, cap: 0, cost: -cost})
	net.adj[to] = append(net.adj[to], id+1)
	return id
}

// Solve computes the exact minimum-cost routing of the demand vector sigma
// on the unit-capacity digraph dg via successive shortest paths with
// Johnson potentials. It returns the per-arc 0/1 flow and the total cost.
func Solve(dg *graph.DiGraph, sigma []int64) ([]int64, int64, error) {
	if err := checkDemand(dg, sigma); err != nil {
		return nil, 0, err
	}
	n := dg.N()
	net := &ssNet{n: n + 2, adj: make([][]int, n+2)}
	S, T := n, n+1
	arcIDs := make([]int, dg.M())
	for i, a := range dg.Arcs() {
		if a.Cost < 0 {
			return nil, 0, fmt.Errorf("mcmf: negative arc cost %d (Theorem 1.3 takes costs in {1..W})", a.Cost)
		}
		arcIDs[i] = net.add(a.From, a.To, a.Cap, a.Cost)
	}
	var need int64
	for v, s := range sigma {
		if s > 0 {
			net.add(S, v, s, 0)
			need += s
		} else if s < 0 {
			net.add(v, T, -s, 0)
		}
	}

	// Successive shortest paths with potentials; all costs non-negative so
	// plain Dijkstra works from the start.
	pot := make([]int64, net.n)
	dist := make([]int64, net.n)
	parent := make([]int, net.n)
	const inf = int64(1) << 60
	var total int64
	var routed int64
	for routed < need {
		for i := range dist {
			dist[i] = inf
			parent[i] = -1
		}
		dist[S] = 0
		h := &costPQ{{v: S}}
		for h.Len() > 0 {
			it := heap.Pop(h).(costItem)
			if it.d > dist[it.v] {
				continue
			}
			for _, ai := range net.adj[it.v] {
				a := net.arcs[ai]
				if a.cap <= 0 {
					continue
				}
				nd := it.d + a.cost + pot[it.v] - pot[a.to]
				if nd < dist[a.to] {
					dist[a.to] = nd
					parent[a.to] = ai
					heap.Push(h, costItem{v: a.to, d: nd})
				}
			}
		}
		if dist[T] >= inf {
			return nil, 0, ErrInfeasible
		}
		for v := 0; v < net.n; v++ {
			if dist[v] < inf {
				pot[v] += dist[v]
			}
		}
		// Bottleneck and augment.
		bottleneck := need - routed
		for v := T; v != S; {
			ai := parent[v]
			if net.arcs[ai].cap < bottleneck {
				bottleneck = net.arcs[ai].cap
			}
			v = net.arcs[ai^1].to
		}
		for v := T; v != S; {
			ai := parent[v]
			net.arcs[ai].cap -= bottleneck
			net.arcs[ai^1].cap += bottleneck
			total += bottleneck * net.arcs[ai].cost
			v = net.arcs[ai^1].to
		}
		routed += bottleneck
	}
	flow := make([]int64, dg.M())
	for i, id := range arcIDs {
		flow[i] = net.arcs[id^1].cap
	}
	return flow, total, nil
}

type costItem struct {
	v int
	d int64
}

type costPQ []costItem

func (p costPQ) Len() int            { return len(p) }
func (p costPQ) Less(i, j int) bool  { return p[i].d < p[j].d }
func (p costPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *costPQ) Push(x interface{}) { *p = append(*p, x.(costItem)) }
func (p *costPQ) Pop() interface{} {
	old := *p
	n := len(old)
	x := old[n-1]
	*p = old[:n-1]
	return x
}

// CheckRouting verifies that flow routes sigma on dg within unit capacities
// and returns its cost.
func CheckRouting(dg *graph.DiGraph, flow []int64, sigma []int64) (int64, error) {
	if len(flow) != dg.M() {
		return 0, fmt.Errorf("mcmf: %d flow values for %d arcs", len(flow), dg.M())
	}
	imbalance := make([]int64, dg.N())
	var cost int64
	for i, a := range dg.Arcs() {
		if flow[i] < 0 || flow[i] > a.Cap {
			return 0, fmt.Errorf("mcmf: arc %d flow %d outside [0, %d]", i, flow[i], a.Cap)
		}
		imbalance[a.From] -= flow[i]
		imbalance[a.To] += flow[i]
		cost += flow[i] * a.Cost
	}
	for v := range imbalance {
		if imbalance[v] != -sigma[v] {
			return 0, fmt.Errorf("mcmf: vertex %d routes %d, demand %d", v, -imbalance[v], sigma[v])
		}
	}
	return cost, nil
}
