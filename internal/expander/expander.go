// Package expander provides conductance computations and a deterministic
// expander decomposition.
//
// The paper invokes the Chang-Saranurak [CS20] CONGEST decomposition as a
// black box: a partition of the vertex set such that every part induces a
// phi-expander and at most an eps fraction of edges cross between parts.
// What the downstream sparsifier (Theorem 3.3) consumes is exactly that
// output contract, so this package substitutes a deterministic recursive
// spectral procedure that certifies the same contract:
//
//   - an approximate Fiedler vector of the normalized Laplacian is computed
//     by deterministic power iteration (fixed start vector, degree-vector
//     deflation);
//   - the best sweep cut of that vector either exhibits a cut of
//     conductance < phi (recurse on both sides) or certifies, via the sweep
//     -cut direction of Cheeger's inequality, that the part's conductance
//     is at least phi^2/4;
//   - the charging argument bounding crossing edges is enforced by the
//     choice phi = eps / (4 (log2(2m) + 1)).
//
// The *round complexity* of finding the decomposition is CS20's
// contribution; callers charge it through rounds.ExpanderDecompRounds. See
// DESIGN.md ("Substitutions") for the full argument.
package expander

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"lapcc/internal/graph"
)

// ErrNoCut reports conductance queries on trivial vertex sets.
var ErrNoCut = errors.New("expander: cut side is empty or full")

// Conductance returns the conductance of the cut (S, V\S) in g using
// unweighted degrees: |e(S, S̄)| / min(vol(S), vol(S̄)). Both sides must be
// non-empty and the graph must have at least one edge.
func Conductance(g *graph.Graph, inS []bool) (float64, error) {
	if len(inS) != g.N() {
		return 0, fmt.Errorf("expander: side labels length %d for n=%d", len(inS), g.N())
	}
	volS, volT := 0, 0
	cut := 0
	for v := 0; v < g.N(); v++ {
		if inS[v] {
			volS += g.Degree(v)
		} else {
			volT += g.Degree(v)
		}
	}
	for _, e := range g.Edges() {
		if inS[e.U] != inS[e.V] {
			cut++
		}
	}
	minVol := volS
	if volT < minVol {
		minVol = volT
	}
	if minVol == 0 {
		return 0, ErrNoCut
	}
	return float64(cut) / float64(minVol), nil
}

// GraphConductance returns the exact conductance of g by exhaustive search
// over all 2^(n-1)-1 cuts. Intended for test oracles only; n must be at
// most 20.
func GraphConductance(g *graph.Graph) (float64, []bool, error) {
	n := g.N()
	if n > 20 {
		return 0, nil, fmt.Errorf("expander: exhaustive conductance needs n <= 20, got %d", n)
	}
	if g.M() == 0 || n < 2 {
		return 0, nil, ErrNoCut
	}
	best := math.Inf(1)
	var bestCut []bool
	inS := make([]bool, n)
	// Fix vertex 0 on the S̄ side to halve the search space.
	for mask := 1; mask < 1<<(n-1); mask++ {
		for v := 1; v < n; v++ {
			inS[v] = mask&(1<<(v-1)) != 0
		}
		phi, err := Conductance(g, inS)
		if err != nil {
			continue
		}
		if phi < best {
			best = phi
			bestCut = append([]bool(nil), inS...)
		}
	}
	if bestCut == nil {
		return 0, nil, ErrNoCut
	}
	return best, bestCut, nil
}

// FiedlerVector returns a deterministic approximation of the second
// eigenvector of the normalized Laplacian of g, computed by power iteration
// on 2I - D^{-1/2} L D^{-1/2} with the top eigenvector (D^{1/2} 1) deflated.
// Entries of isolated vertices are zero. g must be connected for the result
// to be meaningful; callers decompose per component.
func FiedlerVector(g *graph.Graph, iters int) []float64 {
	n := g.N()
	deg := make([]float64, n)
	for v := 0; v < n; v++ {
		deg[v] = float64(g.Degree(v))
	}
	sqrtDeg := make([]float64, n)
	for v := range deg {
		sqrtDeg[v] = math.Sqrt(deg[v])
	}
	// Deterministic start vector.
	x := make([]float64, n)
	for i := range x {
		x[i] = math.Sin(float64(i)*2.399963 + 0.7)
	}
	y := make([]float64, n)
	deflate := func(v []float64) {
		// Remove the D^{1/2}1 component (the top eigenvector of M).
		var num, den float64
		for i := range v {
			num += v[i] * sqrtDeg[i]
			den += sqrtDeg[i] * sqrtDeg[i]
		}
		if den == 0 {
			return
		}
		c := num / den
		for i := range v {
			v[i] -= c * sqrtDeg[i]
		}
	}
	normalize := func(v []float64) {
		var s float64
		for _, a := range v {
			s += a * a
		}
		s = math.Sqrt(s)
		if s == 0 {
			return
		}
		for i := range v {
			v[i] /= s
		}
	}
	deflate(x)
	normalize(x)
	for k := 0; k < iters; k++ {
		// y = (2I - Lnorm) x  =  2x - D^{-1/2} L D^{-1/2} x.
		for i := range y {
			y[i] = 2 * x[i]
			if deg[i] > 0 {
				y[i] -= x[i] // diagonal of Lnorm is 1 for non-isolated vertices
			}
		}
		for _, e := range g.Edges() {
			if sqrtDeg[e.U] == 0 || sqrtDeg[e.V] == 0 {
				continue
			}
			w := e.W / (sqrtDeg[e.U] * sqrtDeg[e.V])
			y[e.U] += w * x[e.V]
			y[e.V] += w * x[e.U]
		}
		deflate(y)
		normalize(y)
		x, y = y, x
	}
	// Return the embedding D^{-1/2} x, whose sweep cuts Cheeger's
	// inequality speaks about.
	out := make([]float64, n)
	for i := range out {
		if sqrtDeg[i] > 0 {
			out[i] = x[i] / sqrtDeg[i]
		}
	}
	return out
}

// SweepCut returns the minimum-conductance prefix cut of the given vertex
// embedding, as (conductance, side labels). It considers all n-1 prefixes
// of the vertices sorted by embedding value.
func SweepCut(g *graph.Graph, embed []float64) (float64, []bool, error) {
	n := g.N()
	if n < 2 || g.M() == 0 {
		return 0, nil, ErrNoCut
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		if embed[order[i]] != embed[order[j]] {
			return embed[order[i]] < embed[order[j]]
		}
		return order[i] < order[j]
	})
	totalVol := 2 * g.M()
	inS := make([]bool, n)
	volS := 0
	cut := 0
	best := math.Inf(1)
	bestK := -1
	for k := 0; k < n-1; k++ {
		v := order[k]
		inS[v] = true
		volS += g.Degree(v)
		for _, h := range g.Adj(v) {
			if inS[h.To] {
				cut -= 1
			} else {
				cut += 1
			}
		}
		minVol := volS
		if totalVol-volS < minVol {
			minVol = totalVol - volS
		}
		if minVol == 0 {
			continue
		}
		phi := float64(cut) / float64(minVol)
		if phi < best {
			best = phi
			bestK = k
		}
	}
	if bestK < 0 {
		return 0, nil, ErrNoCut
	}
	side := make([]bool, n)
	for k := 0; k <= bestK; k++ {
		side[order[k]] = true
	}
	return best, side, nil
}

// Decomposition is the output of Decompose: a partition of the vertices
// into parts, each certified to induce an expander, plus the edges crossing
// between parts.
type Decomposition struct {
	// Parts lists the vertex sets of the partition.
	Parts [][]int
	// Crossing lists the edge indices (into the input graph) that cross
	// between parts.
	Crossing []int
	// Phi is the sweep-cut conductance target each part met; by the sweep-
	// cut direction of Cheeger's inequality, each part's true conductance
	// is at least Phi^2/4.
	Phi float64
}

// CrossingFraction returns |Crossing| / m for a graph with m edges.
func (d *Decomposition) CrossingFraction(m int) float64 {
	if m == 0 {
		return 0
	}
	return float64(len(d.Crossing)) / float64(m)
}

// PhiForEps returns the sweep conductance target that makes the recursive
// charging argument bound crossing edges by eps*m.
func PhiForEps(eps float64, m int) float64 {
	if m < 2 {
		m = 2
	}
	return eps / (4 * (math.Log2(float64(2*m)) + 1))
}

// Decompose recursively partitions g until the best sweep cut of every part
// has conductance at least phi. Parts of one vertex (or without internal
// edges) are trivially expanders. The procedure is fully deterministic.
func Decompose(g *graph.Graph, phi float64) (*Decomposition, error) {
	if phi <= 0 {
		return nil, fmt.Errorf("expander: phi must be positive, got %v", phi)
	}
	d := &Decomposition{Phi: phi}
	var crossing []int

	// recurse partitions the vertex set vs whose internal edges are exactly
	// edgeIDs (ids into g); edge lists are threaded through the recursion so
	// each edge is touched O(depth) times rather than O(parts) times.
	var recurse func(vs []int, edgeIDs []int) error
	recurse = func(vs []int, edgeIDs []int) error {
		if len(vs) <= 1 {
			d.Parts = append(d.Parts, vs)
			return nil
		}
		if len(edgeIDs) == 0 {
			// No internal edges: each vertex is its own trivial part.
			for _, v := range vs {
				d.Parts = append(d.Parts, []int{v})
			}
			return nil
		}
		idx := make(map[int]int, len(vs))
		for i, v := range vs {
			idx[v] = i
		}
		sub := graph.New(len(vs))
		for _, id := range edgeIDs {
			e := g.Edge(id)
			sub.MustAddEdge(idx[e.U], idx[e.V], e.W)
		}
		// Split disconnected parts along components first (a component
		// boundary is a conductance-0 cut).
		if comps := sub.Components(); len(comps) > 1 {
			compOf := make([]int, len(vs))
			for ci, comp := range comps {
				for _, v := range comp {
					compOf[v] = ci
				}
			}
			edgesOf := make([][]int, len(comps))
			for _, id := range edgeIDs {
				e := g.Edge(id)
				edgesOf[compOf[idx[e.U]]] = append(edgesOf[compOf[idx[e.U]]], id)
			}
			for ci, comp := range comps {
				sel := make([]int, len(comp))
				for i, v := range comp {
					sel[i] = vs[v]
				}
				if err := recurse(sel, edgesOf[ci]); err != nil {
					return err
				}
			}
			return nil
		}
		iters := 60*int(math.Ceil(math.Log2(float64(sub.N()+2)))) + 60
		embed := FiedlerVector(sub, iters)
		phiCut, side, err := SweepCut(sub, embed)
		if err != nil {
			return err
		}
		if phiCut >= phi {
			// Certified: the sweep cut of the (approximate) Fiedler vector
			// cannot do better than phi, so the part stays whole.
			d.Parts = append(d.Parts, vs)
			return nil
		}
		var left, right []int
		for i, v := range vs {
			if side[i] {
				left = append(left, v)
			} else {
				right = append(right, v)
			}
		}
		var leftEdges, rightEdges []int
		for _, id := range edgeIDs {
			e := g.Edge(id)
			su, sv := side[idx[e.U]], side[idx[e.V]]
			switch {
			case su && sv:
				leftEdges = append(leftEdges, id)
			case !su && !sv:
				rightEdges = append(rightEdges, id)
			default:
				crossing = append(crossing, id)
			}
		}
		if err := recurse(left, leftEdges); err != nil {
			return err
		}
		return recurse(right, rightEdges)
	}

	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	allEdges := make([]int, g.M())
	for i := range allEdges {
		allEdges[i] = i
	}
	if err := recurse(all, allEdges); err != nil {
		return nil, err
	}
	sort.Ints(crossing)
	d.Crossing = crossing
	return d, nil
}
