package lapcc_test

import "math/rand"

func newBenchRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
