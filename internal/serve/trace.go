package serve

import (
	"bytes"
	"fmt"
	"net/http"
	"sync"
	"time"

	"lapcc/internal/trace"
)

// RequestIDHeader carries the request's ID on every response, so a client
// can join a failure to the daemon's access-log line without parsing the
// body.
const RequestIDHeader = "X-Lapcc-Request-Id"

// TraceHeader is the header form of the ?trace=1 query parameter: any
// non-empty value asks for the request to run under a per-request Tracer.
const TraceHeader = "X-Lapcc-Trace"

// DefaultTraceRing is how many recent request traces /v1/trace/{id} can
// serve when Options.TraceRing is zero.
const DefaultTraceRing = 32

// reqCtx is the per-request serving context: the deterministic request ID
// (sequence number, extended with the graph fingerprint once the body is
// decoded), the optional per-request tracer, and the outcome fields the
// access log reports.
type reqCtx struct {
	op     string
	seq    int64
	id     string
	traced bool
	tr     *trace.Tracer // nil unless traced

	status int
	code   string // error code; "" on success
}

func (s *Server) newReqCtx(op string, r *http.Request) *reqCtx {
	seq := s.seq.Add(1)
	rc := &reqCtx{op: op, seq: seq, id: fmt.Sprintf("r%06d", seq)}
	if r.URL.Query().Get("trace") == "1" || r.Header.Get(TraceHeader) != "" {
		rc.traced = true
		rc.tr = trace.New()
	}
	return rc
}

// bind extends the request ID with the decoded graph's structural
// fingerprint — the "sequence + fingerprint" form that makes an ID
// self-describing: the suffix identifies the topology across runs while
// the prefix orders requests within one daemon. Updates the already-set
// response header in place (headers are mutable until the first write).
func (rc *reqCtx) bind(w http.ResponseWriter, fp uint64) {
	rc.id = fmt.Sprintf("r%06d-%016x", rc.seq, fp)
	w.Header().Set(RequestIDHeader, rc.id)
}

// finishTrace seals a traced request: the JSONL stream is stashed in the
// trace ring under the request ID (served by /v1/trace/{id}) and the span
// summary is rendered into the response's trace block. Returns nil for an
// untraced request, so callers assign unconditionally.
func (s *Server) finishTrace(rc *reqCtx) *WireTrace {
	if rc.tr == nil {
		return nil
	}
	var buf bytes.Buffer
	if err := rc.tr.WriteJSONL(&buf); err == nil {
		s.traces.put(rc.id, buf.Bytes())
	}
	wt := &WireTrace{ID: rc.id, Attributed: rc.tr.AttributedFraction()}
	for _, ph := range rc.tr.Phases() {
		wt.Spans = append(wt.Spans, WirePhase{
			Path: ph.Path, Calls: ph.Calls,
			Measured: ph.MeasuredRounds, Charged: ph.ChargedRounds,
			Messages: ph.Messages,
		})
	}
	return wt
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (sw *statusWriter) WriteHeader(code int) {
	if sw.status == 0 {
		sw.status = code
	}
	sw.ResponseWriter.WriteHeader(code)
}

func (sw *statusWriter) Write(b []byte) (int, error) {
	if sw.status == 0 {
		sw.status = http.StatusOK
	}
	return sw.ResponseWriter.Write(b)
}

// accessRecord is one access-log line: one JSON object, written to the
// Options.AccessLog writer when set (lapccd -access-log sends it to
// stderr). The ID joins the line to the client side (loadgen prints the
// same ID for failed requests) and to /v1/trace/{id}.
type accessRecord struct {
	T      string  `json:"t"`
	ID     string  `json:"id"`
	Op     string  `json:"op"`
	Status int     `json:"status"`
	Code   string  `json:"code,omitempty"`
	Traced bool    `json:"traced,omitempty"`
	MS     float64 `json:"ms"`
}

// traceRing holds the JSONL streams of the last max traced requests, FIFO
// evicted, keyed by request ID.
type traceRing struct {
	mu   sync.Mutex
	max  int
	ids  []string
	data map[string][]byte
}

func newTraceRing(max int) *traceRing {
	if max <= 0 {
		max = DefaultTraceRing
	}
	return &traceRing{max: max, data: make(map[string][]byte, max)}
}

func (tr *traceRing) put(id string, jsonl []byte) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	if _, ok := tr.data[id]; !ok {
		tr.ids = append(tr.ids, id)
		for len(tr.ids) > tr.max {
			delete(tr.data, tr.ids[0])
			tr.ids = tr.ids[1:]
		}
	}
	tr.data[id] = jsonl
}

func (tr *traceRing) get(id string) ([]byte, bool) {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	b, ok := tr.data[id]
	return b, ok
}

func (tr *traceRing) size() int {
	tr.mu.Lock()
	defer tr.mu.Unlock()
	return len(tr.ids)
}

func nowRFC3339() string { return time.Now().UTC().Format(time.RFC3339Nano) }
