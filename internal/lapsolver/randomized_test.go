package lapsolver

import (
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

func TestRandomizedSolverCorrect(t *testing.T) {
	g, err := graph.RandomRegular(64, 8, 61)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{Randomized: true, RandomSeed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(64, 63)
	x, st, err := s.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	want, err := linalg.LaplacianPseudoSolve(s.Laplacian().Dense(), b)
	if err != nil {
		t.Fatal(err)
	}
	diff := x.Sub(want)
	if rel := s.Laplacian().Norm(diff) / s.Laplacian().Norm(want); rel > 1e-8 {
		t.Fatalf("relative error %v (kappa=%v)", rel, st.KappaUsed)
	}
}

func TestRandomizedSolverFewerIterations(t *testing.T) {
	// The randomized sparsifier's tighter alpha must pay off in Chebyshev
	// iterations (the sqrt(kappa) factor of Corollary 2.3).
	g, err := graph.RandomRegular(128, 8, 71)
	if err != nil {
		t.Fatal(err)
	}
	b := meanFreeVec(128, 73)

	// NoEscalation pins the prescribed iteration counts; the default mode's
	// stagnation window truncates both runs at the floating-point floor,
	// hiding the sqrt(kappa) gap this test measures.
	det, err := NewSolver(g, Options{NoEscalation: true})
	if err != nil {
		t.Fatal(err)
	}
	_, detStats, err := det.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}

	rnd, err := NewSolver(g, Options{Randomized: true, RandomSeed: 7, NoEscalation: true})
	if err != nil {
		t.Fatal(err)
	}
	_, rndStats, err := rnd.Solve(b, 1e-8)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("iterations: deterministic=%d randomized=%d", detStats.Iterations, rndStats.Iterations)
	if rndStats.Iterations > detStats.Iterations {
		t.Fatalf("randomized sparsifier gave more iterations (%d) than deterministic (%d)",
			rndStats.Iterations, detStats.Iterations)
	}
}

func TestRandomizedSolverChargesFV22(t *testing.T) {
	g, err := graph.RandomRegular(64, 8, 81)
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	if _, err := NewSolver(g, Options{Randomized: true, RandomSeed: 1, Ledger: led}); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range led.Entries() {
		if e.Tag == "sparsify-randomized" {
			found = true
		}
		if e.Tag == "sparsify-decomp" {
			t.Fatal("randomized mode charged deterministic decomposition rounds")
		}
	}
	if !found {
		t.Fatal("randomized sparsifier charge missing")
	}
}
