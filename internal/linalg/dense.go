package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Dense is a square dense matrix in row-major order, used for small-scale
// verification (exact solves that the tests compare iterative results
// against) and for the internal solves of globally-known sparsifiers when n
// is small.
type Dense struct {
	n int
	a []float64
}

var _ Operator = (*Dense)(nil)

// ErrNotPD reports a Cholesky factorization attempted on a matrix that is
// not (numerically) positive definite.
var ErrNotPD = errors.New("linalg: matrix is not positive definite")

// NewDense returns the n x n zero matrix.
func NewDense(n int) *Dense { return &Dense{n: n, a: make([]float64, n*n)} }

// Dim returns n.
func (d *Dense) Dim() int { return d.n }

// At returns element (i,j).
func (d *Dense) At(i, j int) float64 { return d.a[i*d.n+j] }

// Set assigns element (i,j).
func (d *Dense) Set(i, j int, v float64) { d.a[i*d.n+j] = v }

// Add increments element (i,j) by v.
func (d *Dense) Add(i, j int, v float64) { d.a[i*d.n+j] += v }

// Apply computes dst = D*src.
func (d *Dense) Apply(dst, src Vec) {
	for i := 0; i < d.n; i++ {
		row := d.a[i*d.n : (i+1)*d.n]
		var s float64
		for j, v := range src {
			s += row[j] * v
		}
		dst[i] = s
	}
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	c := NewDense(d.n)
	copy(c.a, d.a)
	return c
}

// Cholesky computes the lower-triangular factor of a symmetric positive
// definite matrix, returning a solver for systems with it.
func (d *Dense) Cholesky() (*CholeskyFactor, error) {
	n := d.n
	l := d.Clone()
	for j := 0; j < n; j++ {
		diag := l.At(j, j)
		for k := 0; k < j; k++ {
			diag -= l.At(j, k) * l.At(j, k)
		}
		if diag <= 0 || math.IsNaN(diag) {
			return nil, fmt.Errorf("%w: pivot %d is %v", ErrNotPD, j, diag)
		}
		diag = math.Sqrt(diag)
		l.Set(j, j, diag)
		for i := j + 1; i < n; i++ {
			s := l.At(i, j)
			for k := 0; k < j; k++ {
				s -= l.At(i, k) * l.At(j, k)
			}
			l.Set(i, j, s/diag)
		}
	}
	// Zero the (unused) upper triangle for cleanliness.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			l.Set(i, j, 0)
		}
	}
	return &CholeskyFactor{l: l}, nil
}

// CholeskyFactor is a lower-triangular Cholesky factor L with A = L L^T.
type CholeskyFactor struct {
	l *Dense
}

// Solve computes x with A x = b via forward/back substitution.
func (c *CholeskyFactor) Solve(b Vec) Vec {
	n := c.l.n
	y := b.Clone()
	for i := 0; i < n; i++ {
		s := y[i]
		for k := 0; k < i; k++ {
			s -= c.l.At(i, k) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for k := i + 1; k < n; k++ {
			s -= c.l.At(k, i) * y[k]
		}
		y[i] = s / c.l.At(i, i)
	}
	return y
}

// LaplacianPseudoSolve solves L x = b for a connected graph's Laplacian
// given as a dense matrix, where b must be orthogonal to the all-ones
// vector. It uses the identity L^+ b = (L + (1/n) J)^{-1} b, which holds
// because J annihilates range(L) and LL^+ projects onto it. The returned x
// has zero mean. This is the reference exact solver the tests compare
// iterative solvers against.
func LaplacianPseudoSolve(l *Dense, b Vec) (Vec, error) {
	n := l.Dim()
	if len(b) != n {
		return nil, fmt.Errorf("linalg: rhs length %d for matrix dimension %d", len(b), n)
	}
	shift := l.Clone()
	inv := 1.0 / float64(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			shift.Add(i, j, inv)
		}
	}
	f, err := shift.Cholesky()
	if err != nil {
		return nil, fmt.Errorf("linalg: pseudo-solve shift factorization (graph disconnected?): %w", err)
	}
	bb := b.Clone()
	bb.RemoveMean()
	x := f.Solve(bb)
	x.RemoveMean()
	return x, nil
}
