package maxflow

import (
	"math"
	"testing"

	"lapcc/internal/graph"
)

func newTestState(t *testing.T, dg *graph.DiGraph, s, tt int, fstar int64) *ipmState {
	t.Helper()
	st, err := newIPMState(dg, s, tt, fstar, Options{IterBudgetFactor: 8, SolveEps: 1e-10})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func TestGadgetConstructionShape(t *testing.T) {
	// Arc (1,2) away from s=0,t=3: full three-edge gadget.
	dg := graph.NewDi(4)
	dg.MustAddArc(1, 2, 5, 0)
	st := newTestState(t, dg, 0, 3, 0)
	// edges: original (1,2), gadget (s=0,2), gadget (1,t=3), 1 precon (t,s).
	if st.total != 4 {
		t.Fatalf("total edges = %d, want 4", st.total)
	}
	if st.from[1] != 0 || st.to[1] != 2 {
		t.Fatalf("gadget 1 = (%d,%d), want (0,2)", st.from[1], st.to[1])
	}
	if st.from[2] != 1 || st.to[2] != 3 {
		t.Fatalf("gadget 2 = (%d,%d), want (1,3)", st.from[2], st.to[2])
	}
	if st.from[3] != 3 || st.to[3] != 0 {
		t.Fatalf("precon = (%d,%d), want (3,0)", st.from[3], st.to[3])
	}
	// Demand = fstar + sum(cap) + 2mU = 0 + 5 + 2*1*5.
	if st.demand != 15 {
		t.Fatalf("demand = %v, want 15", st.demand)
	}
}

func TestGadgetDropsSelfLoops(t *testing.T) {
	// Arc out of s: the (s, head) gadget edge survives but (s,t)=(from=s
	// case is fine); arc INTO s: the (s, head=s) edge is a self-loop and
	// must be dropped.
	dg := graph.NewDi(3)
	dg.MustAddArc(1, 0, 4, 0) // into s=0
	st := newTestState(t, dg, 0, 2, 0)
	for i := 0; i < st.total; i++ {
		if st.from[i] == st.to[i] {
			t.Fatalf("edge %d is a self-loop (%d,%d)", i, st.from[i], st.to[i])
		}
	}
	// original + (1, t) gadget + precon = 3 edges; the (s, s) gadget gone.
	if st.total != 3 {
		t.Fatalf("total = %d, want 3", st.total)
	}
	// Demand still counts the dropped gadget's shipping.
	if st.demand != 4+2*4 {
		t.Fatalf("demand = %v, want 12", st.demand)
	}
}

func TestCancelCyclesRemovesCirculation(t *testing.T) {
	// Triangle circulation on the original arcs must cancel to zero.
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 10, 0)
	dg.MustAddArc(1, 2, 10, 0)
	dg.MustAddArc(2, 0, 10, 0)
	st := newTestState(t, dg, 0, 2, 0)
	st.f[0], st.f[1], st.f[2] = 3, 3, 3 // pure circulation
	st.cancelCycles(1e-9)
	for i := 0; i < 3; i++ {
		if math.Abs(st.f[i]) > 1e-9 {
			t.Fatalf("arc %d kept %v after cancellation", i, st.f[i])
		}
	}
}

func TestCancelCyclesPreservesDivergence(t *testing.T) {
	dg := graph.LayeredDAG(2, 3, 2, 5, 9)
	s, tt := 0, dg.N()-1
	st := newTestState(t, dg, s, tt, 3)
	// Random-ish flow with a deliberate 2-cycle between an original arc
	// used backward and forward mass elsewhere.
	for i := 0; i < st.total; i++ {
		st.f[i] = float64((i%5))*0.25 - 0.5
		// stay strictly inside the box
		if st.f[i] >= st.hi[i] {
			st.f[i] = st.hi[i] - 0.25
		}
		if st.f[i] <= st.lo[i] {
			st.f[i] = st.lo[i] + 0.25
		}
	}
	div := func() []float64 {
		d := make([]float64, dg.N())
		for i := 0; i < st.total; i++ {
			d[st.from[i]] -= st.f[i]
			d[st.to[i]] += st.f[i]
		}
		return d
	}
	before := div()
	st.cancelCycles(1e-9)
	after := div()
	for v := range before {
		if math.Abs(before[v]-after[v]) > 1e-6 {
			t.Fatalf("divergence changed at %d: %v -> %v", v, before[v], after[v])
		}
	}
}

func TestRecoveredOnExactEncoding(t *testing.T) {
	// Encode g = 3 on a single arc of capacity 5 through the gadget:
	// f(orig) = g - u = -2, gadget edges at +u, precon saturated s->t.
	dg := graph.NewDi(2)
	dg.MustAddArc(0, 1, 5, 0)
	st := newTestState(t, dg, 0, 1, 3)
	st.f[0] = 3 - 5
	value, overflow := st.recovered()
	if overflow != 0 {
		t.Fatalf("overflow = %v", overflow)
	}
	if value != 3 {
		t.Fatalf("recovered value = %v, want 3", value)
	}
}

func TestMaxSubflowExtractsBestLegalFlow(t *testing.T) {
	dg := graph.NewDi(4)
	a0 := dg.MustAddArc(0, 1, 5, 0)
	a1 := dg.MustAddArc(1, 3, 5, 0)
	a2 := dg.MustAddArc(0, 2, 5, 0)
	a3 := dg.MustAddArc(2, 3, 5, 0)
	// Candidate: broken conservation (arc a2 has 3 but a3 only 1).
	candidate := make([]int64, dg.M())
	candidate[a0], candidate[a1] = 2, 2
	candidate[a2], candidate[a3] = 3, 1
	out := maxSubflow(dg, candidate, 0, 3)
	if _, err := CheckFlow(dg, out, 0, 3); err != nil {
		t.Fatal(err)
	}
	var value int64
	for _, ai := range dg.Out(0) {
		value += out[ai]
	}
	if value != 3 { // 2 via top path + 1 via bottom
		t.Fatalf("extracted value %d, want 3", value)
	}
}

func TestMaxSubflowClampsOutOfRange(t *testing.T) {
	dg := graph.NewDi(2)
	dg.MustAddArc(0, 1, 2, 0)
	out := maxSubflow(dg, []int64{99}, 0, 1) // above capacity
	if out[0] != 2 {
		t.Fatalf("flow %d, want clamped 2", out[0])
	}
	out = maxSubflow(dg, []int64{-5}, 0, 1) // negative
	if out[0] != 0 {
		t.Fatalf("flow %d, want 0", out[0])
	}
}
