// Package ccalgo implements the deterministic symmetry-breaking subroutines
// of Theorem 1.4: Cole-Vishkin 3-coloring of rings in O(log* n) rounds
// [CV86, GPS87] and the maximal matching derived from it. The rings are
// "virtual": their slots live on clique nodes and consecutive slots may be
// owned by arbitrary node pairs, so every neighbor exchange is delivered
// with the (batched) Lenzen routing primitive of internal/cc, which enforces
// the congested-clique bandwidth constraints and accounts rounds.
package ccalgo

import (
	"errors"
	"fmt"

	"lapcc/internal/cc"
	"lapcc/internal/rounds"
)

// Rings is a collection of disjoint directed rings whose slots are hosted on
// the nodes of an n-clique. Slot i is owned by clique node Owner[i]; its
// ring successor is slot Succ[i] and predecessor Pred[i]. Slots with
// Alive[i] == false are ignored. A slot with Succ[i] == i is a (terminal)
// self-ring and is skipped by the ring algorithms.
type Rings struct {
	CliqueN int
	Owner   []int
	Succ    []int
	Pred    []int
	Alive   []bool
	// Faults, if non-nil, routes every neighbor exchange through the
	// reliable retransmission layer under the given fault plan. Delivered
	// values — and therefore colors and matchings — are bit-identical to a
	// fault-free run; only the round cost grows.
	Faults *cc.FaultPlan
	// Transport, if non-nil, physically carries every exchange through the
	// given delivery backend (see cc.Transport); nil keeps the in-process
	// path. Results are bit-identical either way.
	Transport cc.Transport
}

// ErrInconsistentRings reports a rings structure whose Succ/Pred pointers do
// not invert each other.
var ErrInconsistentRings = errors.New("ccalgo: Succ and Pred are not inverse")

// Validate checks structural invariants: array lengths match, owners are in
// range, and Pred inverts Succ on alive slots.
func (r *Rings) Validate() error {
	s := len(r.Owner)
	if len(r.Succ) != s || len(r.Pred) != s || len(r.Alive) != s {
		return fmt.Errorf("ccalgo: slot array lengths differ: owner=%d succ=%d pred=%d alive=%d",
			len(r.Owner), len(r.Succ), len(r.Pred), len(r.Alive))
	}
	for i := 0; i < s; i++ {
		if !r.Alive[i] {
			continue
		}
		if r.Owner[i] < 0 || r.Owner[i] >= r.CliqueN {
			return fmt.Errorf("ccalgo: slot %d owner %d out of range (n=%d)", i, r.Owner[i], r.CliqueN)
		}
		if r.Succ[i] < 0 || r.Succ[i] >= s || !r.Alive[r.Succ[i]] {
			return fmt.Errorf("ccalgo: slot %d has bad successor %d", i, r.Succ[i])
		}
		if r.Pred[r.Succ[i]] != i {
			return fmt.Errorf("%w: slot %d -> %d -> back %d", ErrInconsistentRings, i, r.Succ[i], r.Pred[r.Succ[i]])
		}
	}
	return nil
}

// ringSlots returns the alive slots that are on proper rings (length >= 2).
func (r *Rings) ringSlots() []int {
	var out []int
	for i := range r.Owner {
		if r.Alive[i] && r.Succ[i] != i {
			out = append(out, i)
		}
	}
	return out
}

// exchange sends, for every slot in slots, the value vals[slot] to the slot
// named by target(slot), and returns the received value per receiving slot.
// One invocation is one batched routing step.
func (r *Rings) exchange(slots []int, vals []int64, target func(int) int, led *rounds.Ledger, tag string) (map[int]int64, error) {
	pkts := make([]cc.Packet, 0, len(slots))
	for _, s := range slots {
		t := target(s)
		pkts = append(pkts, cc.Packet{
			Src:  r.Owner[s],
			Dst:  r.Owner[t],
			Data: []int64{int64(t), vals[s]},
		})
	}
	var delivered [][]cc.Packet
	var err error
	if r.Faults != nil {
		delivered, _, err = cc.ReliableRouteBatchedVia(r.Transport, r.CliqueN, pkts, led, tag, r.Faults)
	} else {
		delivered, _, err = cc.RouteBatchedVia(r.Transport, r.CliqueN, pkts, led, tag)
	}
	if err != nil {
		return nil, fmt.Errorf("ccalgo: %s exchange: %w", tag, err)
	}
	got := make(map[int]int64, len(slots))
	for _, inbox := range delivered {
		for _, p := range inbox {
			got[int(p.Data[0])] = p.Data[1]
		}
	}
	return got, nil
}

// ThreeColor computes a proper 3-coloring (colors 0..2) of every ring using
// the deterministic Cole-Vishkin bit-reduction, in O(log* S) neighbor
// exchanges where S is the number of slots. Self-rings receive color 0.
func (r *Rings) ThreeColor(led *rounds.Ledger) ([]int, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	s := len(r.Owner)
	colors := make([]int64, s)
	for i := range colors {
		colors[i] = int64(i) // unique ids = proper coloring
	}
	slots := r.ringSlots()
	if len(slots) == 0 {
		return toIntColors(colors), nil
	}

	// Bit-reduction phase: O(log* S) iterations bring colors below 6.
	maxIter := rounds.LogStar(s) + 5
	for iter := 0; ; iter++ {
		maxColor := int64(0)
		for _, i := range slots {
			if colors[i] > maxColor {
				maxColor = colors[i]
			}
		}
		if maxColor < 6 {
			break
		}
		if iter >= maxIter {
			return nil, fmt.Errorf("ccalgo: Cole-Vishkin did not reduce below 6 colors in %d iterations", maxIter)
		}
		succColor, err := r.exchange(slots, colors, func(i int) int { return r.Pred[i] }, led, "cv-color")
		if err != nil {
			return nil, err
		}
		// Slot i now knows its successor's color (its successor sent to
		// pred = i). New color: 2k + bit_k, k = lowest differing bit.
		next := make([]int64, s)
		copy(next, colors)
		for _, i := range slots {
			sc, ok := succColor[i]
			if !ok {
				return nil, fmt.Errorf("ccalgo: slot %d missed successor color", i)
			}
			diff := colors[i] ^ sc
			if diff == 0 {
				return nil, fmt.Errorf("ccalgo: coloring not proper at slot %d (color %d)", i, colors[i])
			}
			k := int64(0)
			for diff&1 == 0 {
				diff >>= 1
				k++
			}
			next[i] = 2*k + (colors[i]>>uint(k))&1
		}
		colors = next
	}

	// Shift-down phase: eliminate colors 3, 4, 5 one at a time. Each round,
	// slots of the doomed color learn both neighbors' colors and take the
	// smallest free color in {0,1,2}; same-color slots are never adjacent,
	// so simultaneous recoloring stays proper.
	for doomed := int64(3); doomed <= 5; doomed++ {
		fromSucc, err := r.exchange(slots, colors, func(i int) int { return r.Pred[i] }, led, "cv-shiftdown")
		if err != nil {
			return nil, err
		}
		fromPred, err := r.exchange(slots, colors, func(i int) int { return r.Succ[i] }, led, "cv-shiftdown")
		if err != nil {
			return nil, err
		}
		for _, i := range slots {
			if colors[i] != doomed {
				continue
			}
			used := [3]bool{}
			if c, ok := fromSucc[i]; ok && c < 3 {
				used[c] = true
			}
			if c, ok := fromPred[i]; ok && c < 3 {
				used[c] = true
			}
			for c := int64(0); c < 3; c++ {
				if !used[c] {
					colors[i] = c
					break
				}
			}
		}
	}
	for _, i := range slots {
		if colors[i] > 2 {
			return nil, fmt.Errorf("ccalgo: slot %d kept color %d after shift-down", i, colors[i])
		}
	}
	return toIntColors(colors), nil
}

func toIntColors(colors []int64) []int {
	out := make([]int, len(colors))
	for i, c := range colors {
		out[i] = int(c)
	}
	return out
}

// MaximalMatching computes a maximal matching on the ring edges
// (slot, Succ[slot]) from a 3-coloring, in O(1) neighbor exchanges. The
// result maps each slot to true when it is matched *with its successor*.
// Every slot is in at most one matched pair, and maximality holds: no two
// adjacent slots are both unmatched.
func (r *Rings) MaximalMatching(led *rounds.Ledger) ([]bool, error) {
	colors, err := r.ThreeColor(led)
	if err != nil {
		return nil, err
	}
	s := len(r.Owner)
	matchSucc := make([]bool, s)
	matched := make([]bool, s)
	slots := r.ringSlots()

	for phase := 0; phase < 3; phase++ {
		// Proposal: unmatched slots of this phase's color offer to their
		// successor (1 = proposing). Neighbors have different colors, so no
		// slot both proposes and is proposed to by a same-phase proposer
		// chain; each slot receives at most one proposal (unique pred).
		proposal := make([]int64, s)
		var proposers []int
		for _, i := range slots {
			if colors[i] == phase && !matched[i] {
				proposal[i] = 1
				proposers = append(proposers, i)
			}
		}
		if len(proposers) == 0 {
			continue
		}
		received, err := r.exchange(proposers, proposal, func(i int) int { return r.Succ[i] }, led, "match-propose")
		if err != nil {
			return nil, err
		}
		// Acceptance: an unmatched slot accepts the (unique) proposal.
		// Iterate in slot order (not map order) so packet batching — and
		// hence the round count — is deterministic run to run.
		accept := make([]int64, s)
		var accepters []int
		for _, i := range slots {
			if received[i] == 1 && !matched[i] {
				accept[i] = 1
				accepters = append(accepters, i)
				matched[i] = true
			}
		}
		if len(accepters) == 0 {
			continue
		}
		acks, err := r.exchange(accepters, accept, func(i int) int { return r.Pred[i] }, led, "match-accept")
		if err != nil {
			return nil, err
		}
		for i, v := range acks {
			if v == 1 {
				matched[i] = true
				matchSucc[i] = true
			}
		}
	}
	return matchSucc, nil
}
