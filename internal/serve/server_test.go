package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lapcc/internal/graph"
	"lapcc/internal/metrics"
)

func solveBody(t *testing.T, g *graph.Graph) []byte {
	t.Helper()
	wg := ToWireGraph(g)
	b := make([]float64, g.N())
	b[0], b[g.N()-1] = 1, -1
	raw, err := json.Marshal(SolveRequest{Graph: &wg, RHS: [][]float64{b}})
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestPoolReuseSkipsRebuild pins the tentpole's warm path from the inside:
// a second solve on a repeated topology (same structure, new weights in the
// same binary class) must reuse the pooled session — one lifetime build,
// one exact chain reuse, zero rebuilds — instead of re-running the
// Theorem 3.3 preprocessing.
func TestPoolReuseSkipsRebuild(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	post := func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(solveBody(t, g)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
	}
	post()
	for i := 0; i < g.M(); i++ {
		if err := g.SetWeight(i, 1.25+float64(i%4)/8); err != nil {
			t.Fatal(err)
		}
	}
	post()

	e, existed := s.solve.acquire(g.Fingerprint())
	if !existed {
		t.Fatal("no pooled entry for the topology")
	}
	if e.builds != 1 {
		t.Fatalf("entry saw %d builds, want 1 (second request must reuse)", e.builds)
	}
	cs := e.sess.ChainStats()
	if cs.ExactReuses != 1 || cs.Rebuilds != 0 {
		t.Fatalf("chain stats %+v: want exactly one exact reuse and no rebuilds", cs)
	}
	if st := s.Stats(); st.PoolHits != 1 || st.PoolMisses != 1 {
		t.Fatalf("stats %+v: want one hit, one miss", st)
	}
}

// TestAdmissionSheds pins load shedding deterministically via the hold
// hook: with one inflight slot occupied, the next request is refused with a
// typed 429 before any solver work runs.
func TestAdmissionSheds(t *testing.T) {
	s := New(Options{MaxInflight: 1})
	s.hold = make(chan struct{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	body := solveBody(t, g)

	first := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
		if err == nil {
			resp.Body.Close()
		}
		first <- err
	}()
	// Wait until the held request owns the only slot.
	deadline := time.Now().Add(5 * time.Second)
	for len(s.inflight) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("first request never acquired the slot")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	var env errorEnvelope
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.Code != "overloaded" {
		t.Fatalf("code %q, want overloaded", env.Error.Code)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter %d, want 1", s.Stats().Shed)
	}

	close(s.hold)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
}

// TestPoolEviction pins the LRU bound: with capacity 2, a third topology
// evicts the least-recently-used entry.
func TestPoolEviction(t *testing.T) {
	p := newSessionPool(2)
	a, existed := p.acquire(1)
	if existed || a == nil {
		t.Fatal("fresh acquire must create")
	}
	p.acquire(2)
	p.acquire(1) // touch 1 so 2 is now LRU
	p.acquire(3) // evicts 2
	if p.size() != 2 {
		t.Fatalf("size %d, want 2", p.size())
	}
	if _, existed := p.acquire(2); existed {
		t.Fatal("entry 2 should have been evicted")
	}
}

// TestServeMetrics checks the serving instruments reach the registry and
// the /metrics endpoint is mounted.
func TestServeMetrics(t *testing.T) {
	reg := metrics.NewRegistry()
	s := New(Options{Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(16, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader(solveBody(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mr.Body); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("lapcc_serve_requests_total")) {
		t.Fatal("serve counters missing from /metrics exposition")
	}
}

// TestWireGraphRoundTrip pins the wire encoding: edge ids and weights
// survive Graph -> WireGraph -> Graph, and fingerprints agree.
func TestWireGraphRoundTrip(t *testing.T) {
	g, err := graph.RandomRegular(24, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	wg := ToWireGraph(g)
	back, err := wg.Graph()
	if err != nil {
		t.Fatal(err)
	}
	if back.Fingerprint() != g.Fingerprint() {
		t.Fatal("fingerprint changed across the wire")
	}
	for i, e := range g.Edges() {
		if be := back.Edge(i); be != e {
			t.Fatalf("edge %d: %v != %v", i, be, e)
		}
	}

	dg := graph.LayeredDAG(2, 3, 2, 5, 4)
	wd := ToWireDiGraph(dg)
	dback, err := wd.DiGraph()
	if err != nil {
		t.Fatal(err)
	}
	if dback.Fingerprint() != dg.Fingerprint() {
		t.Fatal("digraph fingerprint changed across the wire")
	}
}
