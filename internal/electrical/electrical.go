// Package electrical exposes the electrical-network primitives the
// Laplacian paradigm is used for: node potentials, electrical flows, edge
// currents, effective resistances, and energy — all driven by the
// Theorem 1.1 congested-clique solver. Both interior point methods
// (Theorems 1.2 and 1.3) consume exactly these primitives once per
// iteration; this package is their clean standalone form.
package electrical

import (
	"errors"
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/lapsolver"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
	"lapcc/internal/trace"
)

// Network is a resistive network: an undirected graph whose edge weights
// are conductances (1/resistance). It is backed by a Session (build once,
// solve and reweight many times); Session() exposes it for callers that
// drive the reweight-per-iteration loop themselves.
type Network struct {
	g      *graph.Graph
	sess   *Session
	ledger *rounds.Ledger
}

// ErrSamePole reports injection and extraction at the same vertex.
var ErrSamePole = errors.New("electrical: poles must differ")

// Options configures NewNetwork.
type Options struct {
	// Solver configures the underlying Laplacian solver.
	Solver lapsolver.Options
	// Ledger, if non-nil, receives round costs (also wired into the
	// solver when its own ledger is unset).
	Ledger *rounds.Ledger
	// Trace, if non-nil, receives hierarchical span and cost events for
	// this call (see internal/trace); a nil tracer records nothing and
	// costs nothing.
	Trace *trace.Tracer
}

// NewNetwork prepares a network for repeated electrical queries; the
// sparsifier is built once and amortized across solves and, via Reweight,
// across conductance changes on the fixed topology.
func NewNetwork(g *graph.Graph, opts Options) (*Network, error) {
	if opts.Ledger != nil && opts.Solver.Ledger == nil {
		opts.Solver.Ledger = opts.Ledger
	}
	if opts.Trace != nil && opts.Solver.Trace == nil {
		opts.Solver.Trace = opts.Trace
	}
	sess, err := NewSession(g.Clone(), SessionOptions{Full: true, Solver: opts.Solver})
	if err != nil {
		return nil, fmt.Errorf("electrical: %w", err)
	}
	// The session owns its working copy; Currents/Energy read it so they
	// always see the conductances of the latest Reweight.
	return &Network{g: sess.Graph(), sess: sess, ledger: opts.Ledger}, nil
}

// Graph returns the network's working graph, carrying the current
// conductances. The caller must not mutate it; use Reweight.
func (nw *Network) Graph() *graph.Graph { return nw.g }

// Session returns the underlying build-once/solve-many session.
func (nw *Network) Session() *Session { return nw.sess }

// Reweight swaps the per-edge conductances in place, reusing the session's
// structure (sparsifier chain, scratch) per the α-drift policy; see
// Session.Reweight.
func (nw *Network) Reweight(w []float64) error {
	return nw.sess.Reweight(w)
}

// Potentials returns node potentials phi for the given current-demand
// vector b (b[v] = net current injected at v; must sum to zero), to
// relative precision eps in the L_G norm.
func (nw *Network) Potentials(b linalg.Vec, eps float64) (linalg.Vec, error) {
	phi, err := nw.sess.Potentials(b, eps, "network")
	if err != nil {
		return nil, fmt.Errorf("electrical: potentials: %w", err)
	}
	return phi, nil
}

// PolePotentials returns potentials for one ampere injected at source and
// extracted at sink.
func (nw *Network) PolePotentials(source, sink int, eps float64) (linalg.Vec, error) {
	if source == sink {
		return nil, ErrSamePole
	}
	b := linalg.NewVec(nw.g.N())
	b[source] = 1
	b[sink] = -1
	return nw.Potentials(b, eps)
}

// Currents returns the per-edge currents of the potential vector phi:
// current on edge {U,V} is (phi[U]-phi[V]) * conductance, positive in the
// U -> V direction.
func (nw *Network) Currents(phi linalg.Vec) []float64 {
	out := make([]float64, nw.g.M())
	for i, e := range nw.g.Edges() {
		out[i] = (phi[e.U] - phi[e.V]) * e.W
	}
	return out
}

// EffectiveResistance returns the effective resistance between two
// vertices (the potential difference under unit current).
func (nw *Network) EffectiveResistance(u, v int, eps float64) (float64, error) {
	phi, err := nw.PolePotentials(u, v, eps)
	if err != nil {
		return 0, err
	}
	return phi[u] - phi[v], nil
}

// Energy returns the dissipated energy of the potential vector phi:
// sum_e conductance * (potential drop)^2 = phi^T L phi.
func (nw *Network) Energy(phi linalg.Vec) float64 {
	return nw.sess.Laplacian().Quad(phi)
}

// MaxCurrentEdge returns the index and magnitude of the most loaded edge —
// the congestion quantity the flow IPMs steer by.
func (nw *Network) MaxCurrentEdge(phi linalg.Vec) (int, float64) {
	best, bestAbs := -1, 0.0
	for i, c := range nw.Currents(phi) {
		a := c
		if a < 0 {
			a = -a
		}
		if a > bestAbs {
			best, bestAbs = i, a
		}
	}
	return best, bestAbs
}
