package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/linalg"
	"lapcc/internal/metrics"
	"lapcc/internal/rounds"
	"lapcc/internal/sparsify"
	"lapcc/internal/trace"
)

// DefaultEps is the solve precision used when a request carries none.
const DefaultEps = 1e-8

// Options configures a Server. The zero value serves with the documented
// defaults.
type Options struct {
	// PoolSize bounds each session pool (solve sessions and sparsify
	// chains separately) with LRU eviction. Default 8.
	PoolSize int
	// MaxInflight bounds concurrently admitted requests; excess load is
	// shed with a typed 429 ("overloaded") instead of queueing. Default
	// 2*GOMAXPROCS.
	MaxInflight int
	// Workers is the numerical core's worker count per request
	// (core.RunOptions.Workers).
	Workers int
	// Metrics, if non-nil, receives the serving-layer instruments
	// (request/shed/pool counters, per-op latency histograms) plus the
	// solver-stack instruments of every run, and is exposed on the
	// daemon's /metrics endpoints.
	Metrics *metrics.Registry
	// AccessLog, if non-nil, receives one JSON object per completed
	// request (see accessRecord): timestamp, request ID, op, status,
	// error code, and latency. lapccd -access-log points it at stderr.
	AccessLog io.Writer
	// TraceRing bounds how many recent traced requests /v1/trace/{id} can
	// serve. Default DefaultTraceRing.
	TraceRing int
	// Flight, if non-nil, is the daemon's transport flight recorder,
	// exposed read-only on /debug/flight.
	Flight *trace.Flight
	// Transport, if non-nil, physically carries every solver run through
	// the given delivery backend (core.RunOptions.Transport). The backend
	// serializes one barrier at a time, so New clamps MaxInflight to 1
	// when a transport is set — requests queue at the admission gate
	// instead of interleaving barriers.
	Transport cc.Transport
	// TransportStats, if non-nil, snapshots the transport backend's
	// recovery and chaos counters for /v1/stats and the
	// lapcc_transport_* gauges. lapccd wires it to the TCP coordinator's
	// Recovery()/Epoch() and the process chaos counters.
	TransportStats func() TransportStats
}

// Server implements the solver-as-a-service HTTP surface. Construct with
// New and mount Handler on an http.Server (or httptest.Server).
type Server struct {
	opts     Options
	inflight chan struct{}
	solve    *sessionPool
	sparse   *sessionPool
	reg      *metrics.Registry

	requests   atomic.Int64
	shed       atomic.Int64
	poolHits   atomic.Int64
	poolMisses atomic.Int64
	panics     atomic.Int64

	// seq numbers requests within this daemon; the access log, the
	// X-Lapcc-Request-Id header, and error envelopes all carry the
	// resulting deterministic ID (see reqCtx).
	seq    atomic.Int64
	traces *traceRing
	logMu  sync.Mutex

	// hold, when non-nil, blocks every admitted request until the channel
	// is closed. Test hook for deterministically filling the inflight
	// slots; never set in production.
	hold chan struct{}
	// failpoint, when non-nil, runs after admission with the request's op.
	// Test hook for driving the panic-recovery path; never set in
	// production.
	failpoint func(op string)
}

// New returns a Server with the given options.
func New(opts Options) *Server {
	if opts.PoolSize <= 0 {
		opts.PoolSize = 8
	}
	if opts.MaxInflight <= 0 {
		opts.MaxInflight = 2 * runtime.GOMAXPROCS(0)
	}
	if opts.Transport != nil {
		// A delivery backend runs one barrier at a time; concurrent runs
		// over it would interleave. Queue at the admission gate instead.
		opts.MaxInflight = 1
	}
	return &Server{
		opts:     opts,
		inflight: make(chan struct{}, opts.MaxInflight),
		solve:    newSessionPool(opts.PoolSize),
		sparse:   newSessionPool(opts.PoolSize),
		reg:      opts.Metrics,
		traces:   newTraceRing(opts.TraceRing),
	}
}

// Stats is the /v1/stats body: serving-layer counters for tests and
// operators. Pool hits count requests that found a built session for their
// exact topology; every hit skips the Theorem 3.3 preprocessing.
type Stats struct {
	Requests       int64 `json:"requests"`
	Shed           int64 `json:"shed"`
	PoolHits       int64 `json:"pool_hits"`
	PoolMisses     int64 `json:"pool_misses"`
	Panics         int64 `json:"panics"`
	SolveSessions  int   `json:"solve_sessions"`
	SparsifyChains int   `json:"sparsify_chains"`
	MaxInflight    int   `json:"max_inflight"`
	TracedRequests int   `json:"traced_requests"`
	// Transport reports the delivery backend's recovery and chaos
	// counters when the daemon runs over one (Options.TransportStats).
	Transport *TransportStats `json:"transport,omitempty"`
}

// TransportStats snapshots a delivery backend's supervision and chaos
// counters for /v1/stats: mesh incarnations, executed kills and respawns,
// replayed barriers, and the socket-level faults the chaos plan injected
// in this process. Mirrored onto the lapcc_transport_* gauges at every
// Stats call.
type TransportStats struct {
	Epoch             uint64 `json:"epoch"`
	Kills             uint64 `json:"kills"`
	Restarts          uint64 `json:"restarts"`
	Respawns          uint64 `json:"respawns"`
	ReplayedBarriers  uint64 `json:"replayed_barriers"`
	HeartbeatFailures uint64 `json:"heartbeat_failures"`
	ChaosResets       uint64 `json:"chaos_resets"`
	ChaosPartials     uint64 `json:"chaos_partials"`
	ChaosStalls       uint64 `json:"chaos_stalls"`
}

// Stats returns a snapshot of the serving counters, refreshing the
// lapcc_transport_* gauges as a side effect when a transport is wired.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:       s.requests.Load(),
		Shed:           s.shed.Load(),
		PoolHits:       s.poolHits.Load(),
		PoolMisses:     s.poolMisses.Load(),
		Panics:         s.panics.Load(),
		SolveSessions:  s.solve.size(),
		SparsifyChains: s.sparse.size(),
		MaxInflight:    s.opts.MaxInflight,
		TracedRequests: s.traces.size(),
	}
	if s.opts.TransportStats != nil {
		ts := s.opts.TransportStats()
		st.Transport = &ts
		set := func(name, help string, v uint64) {
			s.reg.Gauge(name, help).Set(int64(v))
		}
		set("lapcc_transport_epoch", "Mesh incarnation of the daemon's transport backend.", ts.Epoch)
		set("lapcc_transport_kills", "Scheduled chaos kills executed by the supervisor.", ts.Kills)
		set("lapcc_transport_restarts", "Full mesh restarts.", ts.Restarts)
		set("lapcc_transport_respawns", "Workers spawned beyond the initial boot.", ts.Respawns)
		set("lapcc_transport_replayed_barriers", "Barrier replay attempts after failed deliveries.", ts.ReplayedBarriers)
		set("lapcc_transport_heartbeat_failures", "Liveness probes that found a dead mesh.", ts.HeartbeatFailures)
		set("lapcc_transport_chaos_resets", "Chaos-injected connection resets in this process.", ts.ChaosResets)
		set("lapcc_transport_chaos_partials", "Chaos-fragmented frame writes in this process.", ts.ChaosPartials)
		set("lapcc_transport_chaos_stalls", "Chaos-stalled frame writes in this process.", ts.ChaosStalls)
	}
	return st
}

// Handler returns the daemon's mux:
//
//	POST /v1/solve        SolveRequest  -> SolveResponse
//	POST /v1/sparsify     SparsifyRequest -> SparsifyResponse
//	POST /v1/orient       OrientRequest -> OrientResponse
//	POST /v1/maxflow      MaxFlowRequest -> MaxFlowResponse
//	POST /v1/mincostflow  MinCostFlowRequest -> MinCostFlowResponse
//	GET  /v1/stats        serving counters
//	GET  /v1/trace/{id}   JSONL trace stream of a recent traced request
//	GET  /debug/flight    transport flight-recorder dump (404 when unwired)
//	GET  /healthz         liveness
//
// Any solve-family request may ask to run under a per-request tracer with
// ?trace=1 or the X-Lapcc-Trace header; the response then carries a span
// summary and the full JSONL stream is retained for /v1/trace/{id}.
//
// With a metrics registry, /metrics, /metrics.json, and /debug/pprof/ are
// mounted from the shared debug handler (internal/metrics).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/solve", s.admit("solve", s.handleSolve))
	mux.HandleFunc("/v1/sparsify", s.admit("sparsify", s.handleSparsify))
	mux.HandleFunc("/v1/orient", s.admit("orient", s.handleOrient))
	mux.HandleFunc("/v1/maxflow", s.admit("maxflow", s.handleMaxFlow))
	mux.HandleFunc("/v1/mincostflow", s.admit("mincostflow", s.handleMinCostFlow))
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/v1/trace/", func(w http.ResponseWriter, r *http.Request) {
		id := strings.TrimPrefix(r.URL.Path, "/v1/trace/")
		b, ok := s.traces.get(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, errorEnvelope{Error: WireError{
				Code: "not_found", Message: "no retained trace for id", RequestID: id,
			}})
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(b)
	})
	mux.Handle("/debug/flight", s.opts.Flight.Handler())
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.reg != nil {
		dbg := metrics.Handler(s.reg)
		scrape := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			s.Stats() // refresh the lapcc_transport_* gauges before the scrape
			dbg.ServeHTTP(w, r)
		})
		mux.Handle("/metrics", scrape)
		mux.Handle("/metrics.json", scrape)
		mux.Handle("/debug/pprof/", dbg)
	}
	return mux
}

// opHandler is an op handler running under a per-request context: the
// deterministic request ID, the optional tracer, and the outcome fields
// the access log reports.
type opHandler func(http.ResponseWriter, *http.Request, *reqCtx)

// admit wraps an op handler with the admission layer: request-ID
// assignment, method check, load shedding at MaxInflight, per-op
// request/latency instruments, and the access-log line on the way out.
func (s *Server) admit(op string, fn opHandler) http.HandlerFunc {
	var (
		reqs = s.reg.Counter("lapcc_serve_requests_total", "Admitted requests by op.", "op", op)
		lat  = s.reg.Histogram("lapcc_serve_latency_ns", "Request latency by op.", "op", op)
	)
	return func(w http.ResponseWriter, r *http.Request) {
		rc := s.newReqCtx(op, r)
		sw := &statusWriter{ResponseWriter: w}
		sw.Header().Set(RequestIDHeader, rc.id)
		tStart := time.Now()
		defer func() {
			rc.status = sw.status
			s.logAccess(rc, time.Since(tStart))
		}()
		if r.Method != http.MethodPost {
			s.error(sw, rc, http.StatusMethodNotAllowed, "bad_request", "POST required", 0)
			return
		}
		select {
		case s.inflight <- struct{}{}:
		default:
			s.shed.Add(1)
			s.reg.Counter("lapcc_serve_shed_total", "Requests shed at the admission gate.").Inc()
			s.error(sw, rc, http.StatusTooManyRequests, "overloaded",
				fmt.Sprintf("all %d slots busy", s.opts.MaxInflight), 0)
			return
		}
		defer func() { <-s.inflight }()
		if s.hold != nil {
			<-s.hold
		}
		s.requests.Add(1)
		reqs.Inc()
		t0 := time.Now()
		// Per-request panic recovery: a handler bug must cost one 500 in
		// the error envelope, not the daemon. http.ErrAbortHandler keeps
		// its net/http meaning (abort the connection, no response).
		defer func() {
			if rec := recover(); rec != nil {
				if rec == http.ErrAbortHandler {
					panic(rec)
				}
				s.panics.Add(1)
				s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "panic").Inc()
				s.error(sw, rc, http.StatusInternalServerError, "internal",
					fmt.Sprintf("%s: recovered panic: %v", op, rec), 0)
			}
			lat.ObserveDuration(time.Since(t0))
		}()
		if s.failpoint != nil {
			s.failpoint(op)
		}
		fn(sw, r, rc)
	}
}

// logAccess emits the request's access-log line (one JSON object) when
// Options.AccessLog is set; writes are serialized so concurrent requests
// never interleave bytes within a line.
func (s *Server) logAccess(rc *reqCtx, d time.Duration) {
	if s.opts.AccessLog == nil {
		return
	}
	line, err := json.Marshal(accessRecord{
		T: nowRFC3339(), ID: rc.id, Op: rc.op,
		Status: rc.status, Code: rc.code, Traced: rc.traced,
		MS: float64(d.Microseconds()) / 1e3,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	_, _ = s.opts.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}

func (s *Server) run(budget *rounds.Budget, tr *trace.Tracer) core.RunOptions {
	return core.RunOptions{
		Trace: tr, Transport: s.opts.Transport,
		Budget: budget, Workers: s.opts.Workers, Metrics: s.reg,
	}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	var req SolveRequest
	if !s.decode(w, r, rc, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rc.bind(w, g.Fingerprint())
	if len(req.RHS) == 0 {
		s.error(w, rc, http.StatusBadRequest, "bad_request", "rhs: need at least one right-hand side", 0)
		return
	}
	for i, b := range req.RHS {
		if len(b) != g.N() {
			s.error(w, rc, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("rhs[%d]: %d entries for n=%d", i, len(b), g.N()), 0)
			return
		}
	}
	eps := req.Eps
	if eps == 0 {
		eps = DefaultEps
	}
	budget, err := req.Budget.Budget()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	if rc.traced {
		// A traced request bypasses the pool: a fresh cold session is the
		// exact code path a pooled miss takes (no warm start, exact-only
		// reuse), so the answer stays bit-identical to the untraced run
		// while the per-request tracer observes every phase.
		sess, err := core.NewLaplacianSession(g, core.SessionOptions{
			Run:        s.run(budget, rc.tr),
			ExactReuse: true,
		})
		if err != nil {
			s.fail(w, rc, err)
			return
		}
		s.poolHit(false)
		resp := SolveResponse{Cached: false}
		for _, b := range req.RHS {
			res, err := sess.Solve(linalg.Vec(b), eps)
			if err != nil {
				s.fail(w, rc, err)
				return
			}
			resp.X = append(resp.X, res.X)
			resp.Iterations = append(resp.Iterations, res.Iterations)
			resp.SparsifierEdges = res.SparsifierEdges
		}
		after := sess.Rounds()
		resp.Rounds = WireRounds{Total: after.Total, Measured: after.Measured, Charged: after.Charged}
		resp.Trace = s.finishTrace(rc)
		writeJSON(w, http.StatusOK, resp)
		return
	}

	e, _ := s.solve.acquire(g.Fingerprint())
	e.mu.Lock()
	defer e.mu.Unlock()
	cached := e.built(g)
	var before core.RoundReport
	if cached {
		s.poolHit(true)
		before = e.sess.Rounds()
		e.sess.SetBudget(budget)
		if err := e.sess.Reweight(g.Weights()); err != nil {
			e.sess.SetBudget(nil)
			s.fail(w, rc, err)
			return
		}
	} else {
		s.poolHit(false)
		// Pooled sessions run cold (no warm start) with exact-only chain
		// reuse, so every response is bit-identical to a direct one-shot
		// facade call — see the package comment.
		sess, err := core.NewLaplacianSession(g, core.SessionOptions{
			Run:        s.run(budget, nil),
			ExactReuse: true,
		})
		if err != nil {
			s.fail(w, rc, err)
			return
		}
		e.sess, e.chain, e.led, e.guard = sess, nil, nil, g
		e.builds++
	}
	defer e.sess.SetBudget(nil)

	resp := SolveResponse{Cached: cached}
	for _, b := range req.RHS {
		res, err := e.sess.Solve(linalg.Vec(b), eps)
		if err != nil {
			s.fail(w, rc, err)
			return
		}
		resp.X = append(resp.X, res.X)
		resp.Iterations = append(resp.Iterations, res.Iterations)
		resp.SparsifierEdges = res.SparsifierEdges
	}
	after := e.sess.Rounds()
	resp.Rounds = WireRounds{
		Total:    after.Total - before.Total,
		Measured: after.Measured - before.Measured,
		Charged:  after.Charged - before.Charged,
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleSparsify(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	var req SparsifyRequest
	if !s.decode(w, r, rc, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rc.bind(w, g.Fingerprint())
	budget, err := req.Budget.Budget()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}

	if rc.traced {
		// As with solve: a fresh exact-only chain is exactly the pooled
		// miss path, so tracing never perturbs the response bytes.
		led := rounds.New()
		snap := rounds.Snap(led)
		chain, err := sparsify.NewChain(g.Clone(), sparsify.ChainOptions{
			ExactOnly: true,
			Sparsify: sparsify.Options{
				Ledger: led, Budget: budget,
				Workers: s.opts.Workers, Metrics: s.reg, Trace: rc.tr,
			},
		})
		if err != nil {
			s.fail(w, rc, err)
			return
		}
		s.poolHit(false)
		alpha := 0.0
		if g.IsConnected() {
			alpha, err = sparsify.MeasureAlpha(g, chain.H(), 150)
			if err != nil {
				s.fail(w, rc, err)
				return
			}
		}
		d := snap.Stats()
		writeJSON(w, http.StatusOK, SparsifyResponse{
			H:      ToWireGraph(chain.H()),
			Alpha:  alpha,
			Cached: false,
			Rounds: WireRounds{Total: d.TotalRounds(), Measured: d.MeasuredRounds, Charged: d.ChargedRounds},
			Trace:  s.finishTrace(rc),
		})
		return
	}

	e, _ := s.sparse.acquire(g.Fingerprint())
	e.mu.Lock()
	defer e.mu.Unlock()
	cached := e.built(g)
	var snap rounds.Snapshot
	if cached {
		s.poolHit(true)
		snap = rounds.Snap(e.led)
		e.chain.SetBudget(budget)
		if _, err := e.chain.Reweight(g.Weights()); err != nil {
			e.chain.SetBudget(nil)
			s.fail(w, rc, err)
			return
		}
	} else {
		s.poolHit(false)
		led := rounds.New()
		snap = rounds.Snap(led)
		chain, err := sparsify.NewChain(g.Clone(), sparsify.ChainOptions{
			ExactOnly: true,
			Sparsify: sparsify.Options{
				Ledger: led, Budget: budget,
				Workers: s.opts.Workers, Metrics: s.reg,
			},
		})
		if err != nil {
			s.fail(w, rc, err)
			return
		}
		e.chain, e.led, e.sess, e.guard = chain, led, nil, g
		e.builds++
	}
	defer e.chain.SetBudget(nil)

	alpha := 0.0
	if g.IsConnected() {
		alpha, err = sparsify.MeasureAlpha(g, e.chain.H(), 150)
		if err != nil {
			s.fail(w, rc, err)
			return
		}
	}
	d := snap.Stats()
	writeJSON(w, http.StatusOK, SparsifyResponse{
		H:      ToWireGraph(e.chain.H()),
		Alpha:  alpha,
		Cached: cached,
		Rounds: WireRounds{Total: d.TotalRounds(), Measured: d.MeasuredRounds, Charged: d.ChargedRounds},
	})
}

func (s *Server) handleOrient(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	var req OrientRequest
	if !s.decode(w, r, rc, &req) {
		return
	}
	g, err := req.Graph.Graph()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rc.bind(w, g.Fingerprint())
	budget, err := req.Budget.Budget()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{Op: core.OpOrient, Graph: g, Run: s.run(budget, rc.tr)})
	if err != nil {
		s.fail(w, rc, err)
		return
	}
	writeJSON(w, http.StatusOK, OrientResponse{
		Orient:     resp.Eulerian.Orient,
		Iterations: resp.Eulerian.Iterations,
		Rounds:     toWireRounds(resp.Rounds),
		Trace:      s.finishTrace(rc),
	})
}

func (s *Server) handleMaxFlow(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	var req MaxFlowRequest
	if !s.decode(w, r, rc, &req) {
		return
	}
	dg, err := req.Graph.DiGraph()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rc.bind(w, dg.Fingerprint())
	budget, err := req.Budget.Budget()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{
		Op: core.OpMaxFlow, DiGraph: dg,
		Args: core.Args{Source: req.Source, Sink: req.Sink},
		Run:  s.run(budget, rc.tr),
	})
	if err != nil {
		s.fail(w, rc, err)
		return
	}
	writeJSON(w, http.StatusOK, MaxFlowResponse{
		Value:              resp.MaxFlow.Value,
		Flow:               resp.MaxFlow.Flow,
		IPMIterations:      resp.MaxFlow.IPMIterations,
		FinalAugmentations: resp.MaxFlow.FinalAugmentations,
		Rounds:             toWireRounds(resp.Rounds),
		Trace:              s.finishTrace(rc),
	})
}

func (s *Server) handleMinCostFlow(w http.ResponseWriter, r *http.Request, rc *reqCtx) {
	var req MinCostFlowRequest
	if !s.decode(w, r, rc, &req) {
		return
	}
	dg, err := req.Graph.DiGraph()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	rc.bind(w, dg.Fingerprint())
	budget, err := req.Budget.Budget()
	if err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
		return
	}
	resp, err := core.Do(core.Request{
		Op: core.OpMinCostFlow, DiGraph: dg,
		Args: core.Args{Sigma: req.Sigma},
		Run:  s.run(budget, rc.tr),
	})
	if err != nil {
		s.fail(w, rc, err)
		return
	}
	writeJSON(w, http.StatusOK, MinCostFlowResponse{
		Flow:                resp.MinCostFlow.Flow,
		Cost:                resp.MinCostFlow.Cost,
		ProgressIterations:  resp.MinCostFlow.ProgressIterations,
		RepairAugmentations: resp.MinCostFlow.RepairAugmentations,
		Rounds:              toWireRounds(resp.Rounds),
		Trace:               s.finishTrace(rc),
	})
}

func (s *Server) poolHit(hit bool) {
	outcome := "miss"
	if hit {
		s.poolHits.Add(1)
		outcome = "hit"
	} else {
		s.poolMisses.Add(1)
	}
	s.reg.Counter("lapcc_serve_pool_total", "Session-pool lookups by outcome.", "outcome", outcome).Inc()
}

// fail maps a solver error onto the wire: budget exhaustion is a client-
// visible 429 carrying the partial rounds, request-shape problems are 400,
// everything else is 500.
func (s *Server) fail(w http.ResponseWriter, rc *reqCtx, err error) {
	var be *rounds.BudgetError
	switch {
	case errors.As(err, &be):
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "budget_exceeded").Inc()
		s.error(w, rc, http.StatusTooManyRequests, "budget_exceeded", err.Error(),
			be.Partial.MeasuredRounds+be.Partial.ChargedRounds)
	case errors.Is(err, core.ErrBadRequest):
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "bad_request").Inc()
		s.error(w, rc, http.StatusBadRequest, "bad_request", err.Error(), 0)
	default:
		s.reg.Counter("lapcc_serve_errors_total", "Request failures by code.", "code", "internal").Inc()
		s.error(w, rc, http.StatusInternalServerError, "internal", err.Error(), 0)
	}
}

func toWireRounds(r core.RoundReport) WireRounds {
	return WireRounds{Total: r.Total, Measured: r.Measured, Charged: r.Charged}
}

func (s *Server) decode(w http.ResponseWriter, r *http.Request, rc *reqCtx, dst any) bool {
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		s.error(w, rc, http.StatusBadRequest, "bad_request", "body: "+err.Error(), 0)
		return false
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

// error writes the request's error envelope: the typed code plus the
// request ID, so a failure joins to the access-log line and the client
// side (loadgen prints the ID for failed requests).
func (s *Server) error(w http.ResponseWriter, rc *reqCtx, status int, code, msg string, partialRounds int64) {
	rc.code = code
	writeJSON(w, status, errorEnvelope{Error: WireError{
		Code: code, Message: msg, Rounds: partialRounds, RequestID: rc.id,
	}})
}
