package linalg

import (
	"math"
	"testing"
	"testing/quick"
)

func TestVecBasicOps(t *testing.T) {
	v := Vec{1, 2, 3}
	w := Vec{4, 5, 6}
	if got := v.Dot(w); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
	if got := v.Sum(); got != 6 {
		t.Fatalf("Sum = %v, want 6", got)
	}
	if got := v.Mean(); got != 2 {
		t.Fatalf("Mean = %v, want 2", got)
	}
	if got := w.NormInf(); got != 6 {
		t.Fatalf("NormInf = %v, want 6", got)
	}
	s := v.Sub(w)
	if s[0] != -3 || s[1] != -3 || s[2] != -3 {
		t.Fatalf("Sub = %v", s)
	}
	a := v.Add(w)
	if a[0] != 5 || a[1] != 7 || a[2] != 9 {
		t.Fatalf("Add = %v", a)
	}
	v.AXPY(2, w)
	if v[0] != 9 || v[1] != 12 || v[2] != 15 {
		t.Fatalf("AXPY = %v", v)
	}
	v.Scale(0.5)
	if v[0] != 4.5 {
		t.Fatalf("Scale = %v", v)
	}
	v.Zero()
	if v.Norm2() != 0 {
		t.Fatalf("Zero left %v", v)
	}
}

func TestVecCloneIndependent(t *testing.T) {
	v := Vec{1, 2}
	c := v.Clone()
	c[0] = 99
	if v[0] != 1 {
		t.Fatal("clone aliases original")
	}
}

func TestVecMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Dot length mismatch should panic")
		}
	}()
	Vec{1}.Dot(Vec{1, 2})
}

func TestRemoveMean(t *testing.T) {
	v := Vec{1, 2, 3, 6}
	v.RemoveMean()
	if math.Abs(v.Sum()) > 1e-12 {
		t.Fatalf("sum after RemoveMean = %v", v.Sum())
	}
}

func TestRemoveMeanOn(t *testing.T) {
	v := Vec{1, 3, 10, 30}
	comp := []int{0, 0, 1, 1}
	v.RemoveMeanOn(comp, 2)
	if v[0] != -1 || v[1] != 1 {
		t.Fatalf("component 0 = %v %v", v[0], v[1])
	}
	if v[2] != -10 || v[3] != 10 {
		t.Fatalf("component 1 = %v %v", v[2], v[3])
	}
}

func TestIsFinite(t *testing.T) {
	if !(Vec{1, 2}).IsFinite() {
		t.Fatal("finite vector reported non-finite")
	}
	if (Vec{1, math.NaN()}).IsFinite() {
		t.Fatal("NaN not detected")
	}
	if (Vec{math.Inf(1)}).IsFinite() {
		t.Fatal("Inf not detected")
	}
}

// Property: RemoveMean is idempotent and norm-nonincreasing.
func TestRemoveMeanProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		v := Vec(raw).Clone()
		for i := range v {
			if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
				v[i] = 0
			}
			// Bound magnitudes so the mean subtraction stays well-conditioned.
			v[i] = math.Mod(v[i], 1e6)
		}
		before := v.Norm2()
		v.RemoveMean()
		after := v.Norm2()
		once := v.Clone()
		v.RemoveMean()
		for i := range v {
			if math.Abs(v[i]-once[i]) > 1e-9*(1+math.Abs(once[i])) {
				return false
			}
		}
		return after <= before*(1+1e-12)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
