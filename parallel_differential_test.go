package lapcc_test

// Differential worker-count tests: every numerical layer must produce a
// bit-identical answer at any Workers setting. This is the acceptance gate
// of the parallel runtime — parallelism may change wall clock, never
// results. Workers=1 is the historical sequential code path, so pinning
// equality against it also pins equality against the pre-parallel tree.
//
// The suite runs in `make stress` under -race alongside the fault
// differentials (parallelism and fault injection are the two subsystems
// whose only permitted effect is on cost, never on answers).

import (
	"fmt"
	"math"
	"testing"

	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/sparsify"
)

// diffWorkers is the worker sweep of the differential suite; 3 exercises an
// odd split of the fixed block partition, 8 oversubscribes the host.
var diffWorkers = []int{2, 3, 8}

// vecHash folds a vector's exact bit patterns into one word, so a
// divergence anywhere shows up as a hash mismatch even before the per-entry
// comparison pinpoints it.
func vecHash(v linalg.Vec) uint64 {
	h := uint64(1469598103934665603)
	for _, x := range v {
		h ^= math.Float64bits(x)
		h *= 1099511628211
	}
	return h
}

func mustGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := graph.ConnectedGNM(n, m, seed)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func requireSameVec(t *testing.T, label string, want, got linalg.Vec) {
	t.Helper()
	if vecHash(want) == vecHash(got) {
		return
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: entry %d = %v, sequential gives %v (not bit-identical)", label, i, got[i], want[i])
		}
	}
	t.Fatalf("%s: hash mismatch without entry mismatch (length %d vs %d?)", label, len(want), len(got))
}

// TestParallelDifferentialApply: the blocked CSR Apply against the
// sequential pair loop, on a graph big enough that the row blocks split.
func TestParallelDifferentialApply(t *testing.T) {
	g := mustGraph(t, 3000, 15000, 31)
	src := linalg.NewVec(g.N())
	for i := range src {
		src[i] = math.Sin(float64(i) * 0.37)
	}
	l := linalg.NewLaplacian(g)
	want := linalg.NewVec(g.N())
	l.Apply(want, src)

	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			lp := linalg.NewLaplacian(g)
			lp.SetPool(linalg.SharedPool(w))
			lp.Refresh()
			got := linalg.NewVec(g.N())
			lp.Apply(got, src)
			requireSameVec(t, "Apply", want, got)
		})
	}
}

// TestParallelDifferentialCG: a full Jacobi-CG solve, iterate for iterate.
func TestParallelDifferentialCG(t *testing.T) {
	g := mustGraph(t, 2000, 9000, 32)
	b := linalg.NewVec(g.N())
	b[7], b[1234] = 1, -1
	solve := func(workers int) (linalg.Vec, linalg.CGResult) {
		l := linalg.NewLaplacian(g)
		l.SetPool(linalg.SharedPool(workers))
		l.Refresh()
		x, res, err := linalg.SolveCG(l, b, linalg.CGOptions{
			Tol: 1e-10, Precond: l.Degrees().Clone(), ProjectMean: true, Pool: l.Pool(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return x, res
	}
	want, wantRes := solve(1)
	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			got, gotRes := solve(w)
			if gotRes != wantRes {
				t.Fatalf("CG result %+v, sequential %+v", gotRes, wantRes)
			}
			requireSameVec(t, "CG", want, got)
		})
	}
}

// TestParallelDifferentialSolver: the full Theorem 1.1 solver stack —
// sparsifier chain build, Chebyshev iteration, round ledger — through the
// core facade at every worker count. Rounds must match exactly too:
// parallelism is internal computation, free in the congested-clique model.
func TestParallelDifferentialSolver(t *testing.T) {
	g := mustGraph(t, 48, 140, 33)
	b := linalg.NewVec(g.N())
	b[0], b[47] = 1, -1
	want, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			got, err := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			requireSameVec(t, "solver potentials", want.X, got.X)
			if got.Iterations != want.Iterations {
				t.Fatalf("iterations %d, sequential %d", got.Iterations, want.Iterations)
			}
			if got.SparsifierEdges != want.SparsifierEdges {
				t.Fatalf("sparsifier edges %d, sequential %d", got.SparsifierEdges, want.SparsifierEdges)
			}
			if got.Rounds.Total != want.Rounds.Total {
				t.Fatalf("rounds %d, sequential %d (parallelism must be round-free)", got.Rounds.Total, want.Rounds.Total)
			}
		})
	}
}

// TestParallelDifferentialSparsify: the spectral sparsifier itself — same
// edges, same weights, same certified part count, same rounds — with the
// per-part builds fanned out.
func TestParallelDifferentialSparsify(t *testing.T) {
	g := mustGraph(t, 64, 400, 34)
	build := func(workers int) *sparsify.Result {
		res, err := sparsify.Sparsify(g.Clone(), sparsify.Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := build(1)
	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			got := build(w)
			if got.H.M() != want.H.M() || got.Parts != want.Parts {
				t.Fatalf("sparsifier shape m=%d parts=%d, sequential m=%d parts=%d",
					got.H.M(), got.Parts, want.H.M(), want.Parts)
			}
			for i := 0; i < want.H.M(); i++ {
				we, ge := want.H.Edge(i), got.H.Edge(i)
				if we != ge {
					t.Fatalf("sparsifier edge %d = %+v, sequential %+v (merge order leaked)", i, ge, we)
				}
			}
		})
	}
}

// TestParallelDifferentialMaxflow: the full max-flow IPM end to end — flow
// values, per-arc flows, iteration counts, and round totals all pinned.
func TestParallelDifferentialMaxflow(t *testing.T) {
	dg := graph.LayeredDAG(3, 4, 2, 8, 35)
	s, tt := 0, dg.N()-1
	want, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			got, err := core.MaxFlowWith(dg, s, tt, core.RunOptions{Workers: w})
			if err != nil {
				t.Fatal(err)
			}
			if got.Value != want.Value || got.IPMIterations != want.IPMIterations {
				t.Fatalf("value=%d iters=%d, sequential value=%d iters=%d",
					got.Value, got.IPMIterations, want.Value, want.IPMIterations)
			}
			for i := range want.Flow {
				if got.Flow[i] != want.Flow[i] {
					t.Fatalf("flow diverges at arc %d: %d != %d", i, got.Flow[i], want.Flow[i])
				}
			}
			if got.Rounds.Total != want.Rounds.Total {
				t.Fatalf("rounds %d, sequential %d", got.Rounds.Total, want.Rounds.Total)
			}
		})
	}
}

// TestParallelDifferentialChebyshev: the preconditioned Chebyshev iteration
// (the solver's outer loop) with pooled vector kernels against the
// sequential path, over an exact inner solver so only the pooled kernels
// can diverge.
func TestParallelDifferentialChebyshev(t *testing.T) {
	g := mustGraph(t, 40, 120, 36)
	b := linalg.NewVec(g.N())
	b[1], b[38] = 1, -1
	run := func(workers int) linalg.Vec {
		l := linalg.NewLaplacian(g)
		pool := linalg.SharedPool(workers)
		l.SetPool(pool)
		l.Refresh()
		solver := linalg.LaplacianCGSolver(l, 1e-12)
		x, _, err := linalg.PreconCheby(l, solver, b, linalg.ChebyOptions{
			Eps: 1e-8, Kappa: 16, Pool: pool,
		})
		if err != nil {
			t.Fatal(err)
		}
		return x
	}
	want := run(1)
	for _, w := range diffWorkers {
		t.Run(fmt.Sprintf("workers=%d", w), func(t *testing.T) {
			requireSameVec(t, "Chebyshev", want, run(w))
		})
	}
}
