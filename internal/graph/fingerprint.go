package graph

import "strconv"

// Fingerprint returns a deterministic 64-bit hash of the graph's *structure*:
// the vertex count and the edge list's endpoint pairs in edge-id order,
// weights excluded. Two graphs share a fingerprint exactly when an edge-id-
// preserving weight assignment maps one onto the other — the invariant the
// session layer cares about, since sessions split topology (expensive, built
// once) from weights (cheap, swapped per Reweight). Consequently SetWeight
// and SetWeights never change the fingerprint, while AddEdge and RewireEdge
// always do.
//
// The hash is 64-bit FNV-1a over a canonical byte encoding, so it is stable
// across processes and platforms and fit for use as a cache key (the serving
// layer's session LRU); callers that cannot tolerate the 2^-64 collision
// chance must compare SameStructure on hit.
func (g *Graph) Fingerprint() uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(g.n))
	h = fnvMix(h, uint64(len(g.edges)))
	for _, e := range g.edges {
		h = fnvMix(h, uint64(e.U))
		h = fnvMix(h, uint64(e.V))
	}
	return h
}

// SameStructure reports whether o has identical n and endpoint pairs per
// edge id (weights ignored) — the exact equality Fingerprint approximates.
func (g *Graph) SameStructure(o *Graph) bool {
	if g.n != o.n || len(g.edges) != len(o.edges) {
		return false
	}
	for i, e := range g.edges {
		if oe := o.edges[i]; e.U != oe.U || e.V != oe.V {
			return false
		}
	}
	return true
}

// Fingerprint returns a deterministic 64-bit hash of the directed graph's
// full instance shape: vertex count plus every arc's endpoints, capacity,
// and cost in arc-id order. Unlike the undirected form, capacities and costs
// are included — the flow theorems take them as part of the instance, and
// the flow solvers hold no cheap "reweight" path that would make a
// capacity-excluded key useful.
func (g *DiGraph) Fingerprint() uint64 {
	h := fnvOffset
	h = fnvMix(h, uint64(g.n))
	h = fnvMix(h, uint64(len(g.arcs)))
	for _, a := range g.arcs {
		h = fnvMix(h, uint64(a.From))
		h = fnvMix(h, uint64(a.To))
		h = fnvMix(h, uint64(a.Cap))
		h = fnvMix(h, uint64(a.Cost))
	}
	return h
}

// SameStructure reports whether o has identical n and per-arc
// (from, to, cap, cost) tuples — the exact equality Fingerprint approximates.
func (g *DiGraph) SameStructure(o *DiGraph) bool {
	if g.n != o.n || len(g.arcs) != len(o.arcs) {
		return false
	}
	for i, a := range g.arcs {
		if a != o.arcs[i] {
			return false
		}
	}
	return true
}

// FingerprintString renders a fingerprint in the fixed-width hex form used by
// the serving layer's wire format and logs.
func FingerprintString(fp uint64) string {
	s := strconv.FormatUint(fp, 16)
	for len(s) < 16 {
		s = "0" + s
	}
	return s
}

// 64-bit FNV-1a over the 8 little-endian bytes of each word. Inlined rather
// than hash/fnv so the per-edge loop allocates nothing.
const (
	fnvOffset uint64 = 14695981039346656037
	fnvPrime  uint64 = 1099511628211
)

func fnvMix(h, w uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= w & 0xff
		h *= fnvPrime
		w >>= 8
	}
	return h
}
