package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"

	"lapcc/internal/cc"
	"lapcc/internal/rounds"
)

func mustStat(t *testing.T, path string) int64 {
	t.Helper()
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	return fi.Size()
}

// populated builds a tracer exercising every event kind.
func populated() *Tracer {
	tr := New()
	led := rounds.New()
	tr.Attach(led)
	obs := tr.Observer()
	led.Add("pre", rounds.Measured, 1, "unattributed")
	a := tr.Start("a")
	led.Add("work", rounds.Measured, 4, "matvec")
	led.AddTraffic("route", 3, 9)
	obs(cc.RoundStats{Messages: 2, Words: 2, MaxOut: 1, MaxIn: 1})
	b := tr.Start("b")
	led.Add("cited", rounds.Charged, 6, "black box")
	b.End()
	a.End()
	return tr
}

func TestJSONLRoundTripValidates(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("generated stream fails validation: %v\n%s", err, buf.String())
	}
	// Every line must decode as a JSON object with an "ev" field.
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if _, ok := m["ev"]; !ok {
			t.Fatalf("line %q lacks ev", line)
		}
	}
}

func TestJSONLNilTracerWritesNothing(t *testing.T) {
	var tr *Tracer
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("nil tracer wrote %q", buf.String())
	}
	if err := ValidateJSONL(&buf); err != nil {
		t.Fatalf("empty stream must validate: %v", err)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("chrome export is not JSON: %v", err)
	}
	var complete, instant int
	for _, ev := range file.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete++
		case "i":
			instant++
		}
	}
	if complete != 2 {
		t.Fatalf("%d complete events, want 2 spans", complete)
	}
	if instant != 3 {
		t.Fatalf("%d instant events, want 3 costs", instant)
	}

	buf.Reset()
	var nilTr *Tracer
	if err := nilTr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("nil chrome export is not JSON: %v", err)
	}
	if len(file.TraceEvents) != 0 {
		t.Fatalf("nil tracer exported %d events", len(file.TraceEvents))
	}
}

func TestWriteFiles(t *testing.T) {
	dir := t.TempDir()
	chrome := dir + "/out.json"
	events := dir + "/out.jsonl"
	if err := populated().WriteFiles(chrome, events); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{chrome, events} {
		if fi := mustStat(t, p); fi == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
	// Skipping both paths writes nothing and succeeds.
	if err := populated().WriteFiles("", ""); err != nil {
		t.Fatal(err)
	}
}

func TestValidateJSONLRejectsMalformedStreams(t *testing.T) {
	cases := map[string]string{
		"not json":         "hello\n",
		"unknown kind":     `{"ev":"mystery","seq":0}` + "\n",
		"seq gap":          `{"ev":"begin","seq":1,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n",
		"end before begin": `{"ev":"end","seq":0,"span":0,"measured":0,"charged":0}` + "\n",
		"double begin": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"begin","seq":1,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n",
		"bad parent":           `{"ev":"begin","seq":0,"span":0,"parent":5,"name":"a","path":"a"}` + "\n",
		"unclosed span at EOF": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n",
		"negative rounds": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"cost","seq":1,"span":0,"tag":"t","kind":"measured","rounds":-1}` + "\n" +
			`{"ev":"end","seq":2,"span":0,"measured":0,"charged":0}` + "\n",
		"bad cost kind": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"cost","seq":1,"span":0,"tag":"t","kind":"imagined","rounds":1}` + "\n" +
			`{"ev":"end","seq":2,"span":0,"measured":0,"charged":0}` + "\n",
		"cost on unknown span": `{"ev":"cost","seq":0,"span":9,"tag":"t","kind":"measured","rounds":1}` + "\n",
		"truncated line": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"end","seq":1,"span":0,"meas`,
		"out-of-order close": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"begin","seq":1,"span":1,"parent":0,"name":"b","path":"a/b"}` + "\n" +
			`{"ev":"end","seq":2,"span":0,"measured":0,"charged":0}` + "\n" +
			`{"ev":"end","seq":3,"span":1,"measured":0,"charged":0}` + "\n",
		"unknown field on begin": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a","t":123}` + "\n",
		"unknown field on cost": `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n" +
			`{"ev":"cost","seq":1,"span":0,"tag":"t","kind":"measured","rounds":1,"wall_ns":5}` + "\n" +
			`{"ev":"end","seq":2,"span":0,"measured":1,"charged":0}` + "\n",
	}
	for name, in := range cases {
		if err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
}

// TestValidateJSONLRejectsTruncatedStream chops a real exported stream at
// every byte boundary inside its final line: a writer killed mid-record
// must never validate (the cut line is not a complete JSON object).
func TestValidateJSONLRejectsTruncatedStream(t *testing.T) {
	var buf bytes.Buffer
	if err := populated().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	if err := ValidateJSONL(bytes.NewReader(full)); err != nil {
		t.Fatalf("intact stream must validate: %v", err)
	}
	// Find the start of the final record (the stream ends with '\n').
	body := full[:len(full)-1]
	last := bytes.LastIndexByte(body, '\n') + 1
	for cut := last + 1; cut < len(body); cut++ {
		if err := ValidateJSONL(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("stream truncated at byte %d/%d validated", cut, len(full))
		}
	}
}

// TestValidateJSONLMarkEvents pins the mark record's schema: a point event
// attributed to an open span (or -1 for none), with a non-empty name,
// non-negative barrier/epoch, and node >= -1 — exactly the fields the
// distributed supervision marks carry.
func TestValidateJSONLMarkEvents(t *testing.T) {
	const open = `{"ev":"begin","seq":0,"span":0,"parent":-1,"name":"a","path":"a"}` + "\n"
	const close = `{"ev":"end","seq":2,"span":0,"measured":0,"charged":0}` + "\n"
	ok := open +
		`{"ev":"mark","seq":1,"span":0,"name":"chaos-kill","barrier":3,"epoch":1,"node":2}` + "\n" +
		close
	if err := ValidateJSONL(strings.NewReader(ok)); err != nil {
		t.Fatalf("valid mark rejected: %v", err)
	}
	unattributed := `{"ev":"mark","seq":0,"span":-1,"name":"mesh-respawn","barrier":0,"epoch":1,"node":-1}` + "\n"
	if err := ValidateJSONL(strings.NewReader(unattributed)); err != nil {
		t.Fatalf("span -1 mark must validate: %v", err)
	}

	bad := map[string]string{
		"empty name":      open + `{"ev":"mark","seq":1,"span":0,"name":"","barrier":0,"epoch":0,"node":-1}` + "\n" + close,
		"missing barrier": open + `{"ev":"mark","seq":1,"span":0,"name":"m","epoch":0,"node":-1}` + "\n" + close,
		"negative epoch":  open + `{"ev":"mark","seq":1,"span":0,"name":"m","barrier":0,"epoch":-1,"node":-1}` + "\n" + close,
		"bad node":        open + `{"ev":"mark","seq":1,"span":0,"name":"m","barrier":0,"epoch":0,"node":-2}` + "\n" + close,
		"unknown span":    open + `{"ev":"mark","seq":1,"span":9,"name":"m","barrier":0,"epoch":0,"node":-1}` + "\n" + close,
		"unknown field":   open + `{"ev":"mark","seq":1,"span":0,"name":"m","barrier":0,"epoch":0,"node":-1,"t":1}` + "\n" + close,
	}
	for name, in := range bad {
		if err := ValidateJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: validated but should not", name)
		}
	}
}

func TestValidateJSONLAcceptsUnattributedCost(t *testing.T) {
	in := `{"ev":"cost","seq":0,"span":-1,"tag":"t","kind":"charged","rounds":2}` + "\n"
	if err := ValidateJSONL(strings.NewReader(in)); err != nil {
		t.Fatalf("span -1 cost must validate: %v", err)
	}
}
