// Package maxflow implements the deterministic congested-clique maximum
// flow algorithm of Theorem 1.2 — Mądry's interior-point method driven by
// the Theorem 1.1 Laplacian solver, with Cohen flow rounding and a final
// augmenting-path stage — together with the exact combinatorial algorithms
// the paper compares against in section 1.1 (Ford-Fulkerson with
// O(n^0.158)-round reachability, and the trivial gather-everything
// algorithm), which double as correctness oracles for the tests.
package maxflow

import (
	"errors"
	"fmt"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// ErrBadEndpoints reports s == t or out-of-range endpoints.
var ErrBadEndpoints = errors.New("maxflow: bad source/sink")

// residualNet is a standard residual network over paired arcs: arc 2i is
// the forward copy of input arc i, arc 2i+1 its reverse.
type residualNet struct {
	n    int
	head []int // arc -> target vertex
	cap  []int64
	adj  [][]int // vertex -> arc ids
}

func newResidual(dg *graph.DiGraph) *residualNet {
	r := &residualNet{
		n:    dg.N(),
		head: make([]int, 0, 2*dg.M()),
		cap:  make([]int64, 0, 2*dg.M()),
		adj:  make([][]int, dg.N()),
	}
	for _, a := range dg.Arcs() {
		r.addPair(a.From, a.To, a.Cap)
	}
	return r
}

func (r *residualNet) addPair(from, to int, capacity int64) {
	r.adj[from] = append(r.adj[from], len(r.head))
	r.head = append(r.head, to)
	r.cap = append(r.cap, capacity)
	r.adj[to] = append(r.adj[to], len(r.head))
	r.head = append(r.head, from)
	r.cap = append(r.cap, 0)
}

// flowOn returns the flow pushed through input arc i (the reverse copy's
// residual capacity).
func (r *residualNet) flowOn(i int) int64 { return r.cap[2*i+1] }

// Dinic computes the exact maximum s-t flow value and per-arc flows. It is
// the correctness oracle for the IPM path and the engine behind the final
// augmentation stage.
func Dinic(dg *graph.DiGraph, s, t int) (int64, []int64, error) {
	if err := checkEndpoints(dg, s, t); err != nil {
		return 0, nil, err
	}
	r := newResidual(dg)
	total := r.run(s, t)
	flows := make([]int64, dg.M())
	for i := range flows {
		flows[i] = r.flowOn(i)
	}
	return total, flows, nil
}

func (r *residualNet) run(s, t int) int64 {
	var total int64
	level := make([]int, r.n)
	iter := make([]int, r.n)
	for r.bfs(s, t, level) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			pushed := r.dfs(s, t, int64(1)<<62, level, iter)
			if pushed == 0 {
				break
			}
			total += pushed
		}
	}
	return total
}

func (r *residualNet) bfs(s, t int, level []int) bool {
	for i := range level {
		level[i] = -1
	}
	level[s] = 0
	queue := []int{s}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, ai := range r.adj[v] {
			if r.cap[ai] > 0 && level[r.head[ai]] < 0 {
				level[r.head[ai]] = level[v] + 1
				queue = append(queue, r.head[ai])
			}
		}
	}
	return level[t] >= 0
}

func (r *residualNet) dfs(v, t int, limit int64, level, iter []int) int64 {
	if v == t {
		return limit
	}
	for ; iter[v] < len(r.adj[v]); iter[v]++ {
		ai := r.adj[v][iter[v]]
		w := r.head[ai]
		if r.cap[ai] <= 0 || level[w] != level[v]+1 {
			continue
		}
		lim := limit
		if r.cap[ai] < lim {
			lim = r.cap[ai]
		}
		pushed := r.dfs(w, t, lim, level, iter)
		if pushed > 0 {
			r.cap[ai] -= pushed
			r.cap[ai^1] += pushed
			return pushed
		}
	}
	return 0
}

// FordFulkersonResult reports the section 1.1 baseline run.
type FordFulkersonResult struct {
	Value int64
	// Augmentations is the number of augmenting-path iterations |f*|-ish;
	// the baseline's round count is Augmentations * APSPRounds(n).
	Augmentations int
	// Rounds is the charged round count of the baseline.
	Rounds int64
}

// FordFulkerson runs the Edmonds-Karp variant (BFS augmenting paths,
// augmenting by the bottleneck), counting iterations and charging
// O(n^0.158) reachability rounds per iteration, exactly as section 1.1
// prices the baseline. The ledger may be nil.
func FordFulkerson(dg *graph.DiGraph, s, t int, led *rounds.Ledger) (*FordFulkersonResult, error) {
	if err := checkEndpoints(dg, s, t); err != nil {
		return nil, err
	}
	r := newResidual(dg)
	res := &FordFulkersonResult{}
	parent := make([]int, r.n)
	for {
		for i := range parent {
			parent[i] = -1
		}
		parent[s] = -2
		queue := []int{s}
		for len(queue) > 0 && parent[t] == -1 {
			v := queue[0]
			queue = queue[1:]
			for _, ai := range r.adj[v] {
				w := r.head[ai]
				if r.cap[ai] > 0 && parent[w] == -1 {
					parent[w] = ai
					queue = append(queue, w)
				}
			}
		}
		if parent[t] == -1 {
			break
		}
		res.Augmentations++
		res.Rounds += rounds.APSPRounds(r.n)
		if led != nil {
			led.Add("ff-reachability", rounds.Charged, rounds.APSPRounds(r.n), rounds.CiteFF)
		}
		// Bottleneck along the found path.
		bottleneck := int64(1) << 62
		for v := t; v != s; {
			ai := parent[v]
			if r.cap[ai] < bottleneck {
				bottleneck = r.cap[ai]
			}
			v = r.head[ai^1]
		}
		for v := t; v != s; {
			ai := parent[v]
			r.cap[ai] -= bottleneck
			r.cap[ai^1] += bottleneck
			v = r.head[ai^1]
		}
		res.Value += bottleneck
	}
	return res, nil
}

// TrivialRounds returns the charged round count of the gather-everything
// baseline for this instance (section 1.1).
func TrivialRounds(dg *graph.DiGraph) int64 {
	return rounds.TrivialGatherRounds(dg.N(), dg.M(), dg.MaxCapacity())
}

func checkEndpoints(dg *graph.DiGraph, s, t int) error {
	if s < 0 || s >= dg.N() || t < 0 || t >= dg.N() || s == t {
		return fmt.Errorf("%w: s=%d t=%d n=%d", ErrBadEndpoints, s, t, dg.N())
	}
	return nil
}

// CheckFlow verifies that f is a feasible s-t flow on dg and returns its
// value. It reports capacity violations, negative flows, and conservation
// violations as errors.
func CheckFlow(dg *graph.DiGraph, f []int64, s, t int) (int64, error) {
	if len(f) != dg.M() {
		return 0, fmt.Errorf("maxflow: %d flow values for %d arcs", len(f), dg.M())
	}
	imbalance := make([]int64, dg.N())
	for i, a := range dg.Arcs() {
		if f[i] < 0 {
			return 0, fmt.Errorf("maxflow: negative flow %d on arc %d", f[i], i)
		}
		if f[i] > a.Cap {
			return 0, fmt.Errorf("maxflow: arc %d flow %d exceeds capacity %d", i, f[i], a.Cap)
		}
		imbalance[a.From] -= f[i]
		imbalance[a.To] += f[i]
	}
	for v, d := range imbalance {
		if v != s && v != t && d != 0 {
			return 0, fmt.Errorf("maxflow: conservation violated at vertex %d (imbalance %d)", v, d)
		}
	}
	return -imbalance[s], nil
}
