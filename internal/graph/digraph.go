package graph

import (
	"fmt"
)

// Arc is a directed edge with integer capacity and cost, as used by the flow
// algorithms (Theorems 1.2 and 1.3 of the paper take integer capacities
// 1..U and integer costs 1..W).
type Arc struct {
	From, To int
	Cap      int64
	Cost     int64
}

// DiGraph is a directed multigraph on n vertices with integer capacities and
// costs. Out- and in-adjacency are both maintained.
type DiGraph struct {
	n    int
	arcs []Arc
	out  [][]int // arc indices leaving v
	in   [][]int // arc indices entering v
}

// NewDi returns an empty directed graph on n vertices.
func NewDi(n int) *DiGraph {
	return &DiGraph{n: n, out: make([][]int, n), in: make([][]int, n)}
}

// N returns the number of vertices.
func (g *DiGraph) N() int { return g.n }

// M returns the number of arcs.
func (g *DiGraph) M() int { return len(g.arcs) }

// Arcs returns the arc list. The caller must not modify it.
func (g *DiGraph) Arcs() []Arc { return g.arcs }

// Arc returns the arc with the given index.
func (g *DiGraph) Arc(i int) Arc { return g.arcs[i] }

// Out returns the indices of arcs leaving v. The caller must not modify it.
func (g *DiGraph) Out(v int) []int { return g.out[v] }

// In returns the indices of arcs entering v. The caller must not modify it.
func (g *DiGraph) In(v int) []int { return g.in[v] }

// OutDegree returns the number of arcs leaving v.
func (g *DiGraph) OutDegree(v int) int { return len(g.out[v]) }

// InDegree returns the number of arcs entering v.
func (g *DiGraph) InDegree(v int) int { return len(g.in[v]) }

// AddArc adds a directed arc and returns its index. Self-loops are rejected;
// capacity must be non-negative.
func (g *DiGraph) AddArc(from, to int, capacity, cost int64) (int, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return 0, fmt.Errorf("%w: (%d,%d) with n=%d", ErrVertexRange, from, to, g.n)
	}
	if from == to {
		return 0, fmt.Errorf("%w: vertex %d", ErrSelfLoop, from)
	}
	if capacity < 0 {
		return 0, fmt.Errorf("graph: negative capacity %d on arc (%d,%d)", capacity, from, to)
	}
	id := len(g.arcs)
	g.arcs = append(g.arcs, Arc{From: from, To: to, Cap: capacity, Cost: cost})
	g.out[from] = append(g.out[from], id)
	g.in[to] = append(g.in[to], id)
	return id, nil
}

// MustAddArc is AddArc that panics on error; for tests and generators with
// statically valid inputs only. Code building digraphs from external or
// user-supplied input must use AddArc and handle the returned error.
func (g *DiGraph) MustAddArc(from, to int, capacity, cost int64) int {
	id, err := g.AddArc(from, to, capacity, cost)
	if err != nil {
		panic(err)
	}
	return id
}

// MaxCapacity returns the largest arc capacity U, or 0 if there are no arcs.
func (g *DiGraph) MaxCapacity() int64 {
	var u int64
	for _, a := range g.arcs {
		if a.Cap > u {
			u = a.Cap
		}
	}
	return u
}

// MaxCost returns the largest absolute arc cost W, or 0 if there are no arcs.
func (g *DiGraph) MaxCost() int64 {
	var w int64
	for _, a := range g.arcs {
		c := a.Cost
		if c < 0 {
			c = -c
		}
		if c > w {
			w = c
		}
	}
	return w
}

// Clone returns a deep copy of the directed graph.
func (g *DiGraph) Clone() *DiGraph {
	c := NewDi(g.n)
	c.arcs = append([]Arc(nil), g.arcs...)
	for v := 0; v < g.n; v++ {
		c.out[v] = append([]int(nil), g.out[v]...)
		c.in[v] = append([]int(nil), g.in[v]...)
	}
	return c
}

// Undirected returns the undirected weighted graph obtained by forgetting
// arc directions and using the given per-arc weights (e.g. electrical
// conductances). Arcs with weight 0 are dropped.
func (g *DiGraph) Undirected(weight func(arc int) float64) (*Graph, error) {
	u := New(g.n)
	for i := range g.arcs {
		w := weight(i)
		if w == 0 {
			continue
		}
		if _, err := u.AddEdge(g.arcs[i].From, g.arcs[i].To, w); err != nil {
			return nil, err
		}
	}
	return u, nil
}
