package mcmf

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

// bipartiteInstance returns a unit-capacity bipartite assignment instance:
// each left vertex supplies one unit, demands land on right vertices that
// are reachable (built from a random perfect-ish assignment so it is
// feasible).
func bipartiteInstance(left, right, degree int, maxCost int64, seed int64) (*graph.DiGraph, []int64) {
	rng := rand.New(rand.NewSource(seed))
	dg := graph.NewDi(left + right)
	sigma := make([]int64, left+right)
	for u := 0; u < left; u++ {
		// One guaranteed arc to a designated partner plus random extras.
		partner := u % right
		dg.MustAddArc(u, left+partner, 1, 1+rng.Int63n(maxCost))
		for d := 1; d < degree; d++ {
			v := rng.Intn(right)
			dg.MustAddArc(u, left+v, 1, 1+rng.Int63n(maxCost))
		}
		sigma[u] = 1
		sigma[left+partner]--
	}
	return dg, sigma
}

func TestSolveOracleSimple(t *testing.T) {
	// Two paths of different costs; demand 1 from 0 to 2.
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 5)
	dg.MustAddArc(1, 2, 1, 5)
	dg.MustAddArc(0, 3, 1, 1)
	dg.MustAddArc(3, 2, 1, 1)
	sigma := []int64{1, 0, -1, 0}
	flow, cost, err := Solve(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	if cost != 2 {
		t.Fatalf("cost = %d, want 2 (cheap path)", cost)
	}
	if flow[2] != 1 || flow[3] != 1 || flow[0] != 0 {
		t.Fatalf("flow = %v", flow)
	}
}

func TestSolveOracleInfeasible(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 1, 1)
	sigma := []int64{1, 0, -1}
	if _, _, err := Solve(dg, sigma); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestSolveOracleBadDemand(t *testing.T) {
	dg := graph.NewDi(2)
	if _, _, err := Solve(dg, []int64{1}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("length error = %v", err)
	}
	if _, _, err := Solve(dg, []int64{1, 1}); !errors.Is(err, ErrBadDemand) {
		t.Fatalf("sum error = %v", err)
	}
}

func TestLiftedStructure(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 1, 3)
	dg.MustAddArc(1, 2, 1, 4)
	sigma := []int64{1, 0, -1}
	l, err := newLifted(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	// Every Q vertex demands exactly 1; P demands are half the G1 degree.
	for q := 0; q < l.nQ; q++ {
		if l.b[l.nP+q] != 1 {
			t.Fatalf("Q demand = %d", l.b[l.nP+q])
		}
	}
	var bp, bq int64
	for u := 0; u < l.nP; u++ {
		bp += l.b[u]
	}
	for q := 0; q < l.nQ; q++ {
		bq += l.b[l.nP+q]
	}
	if bp != bq {
		t.Fatalf("unbalanced lifting: P=%d Q=%d", bp, bq)
	}
}

func TestLiftedRejectsNonUnit(t *testing.T) {
	dg := graph.NewDi(2)
	dg.MustAddArc(0, 1, 2, 1)
	if _, err := newLifted(dg, []int64{0, 0}); err == nil {
		t.Fatal("non-unit capacity accepted")
	}
}

func TestMinCostFlowMatchesOracleSmall(t *testing.T) {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 5)
	dg.MustAddArc(1, 2, 1, 5)
	dg.MustAddArc(0, 3, 1, 1)
	dg.MustAddArc(3, 2, 1, 1)
	sigma := []int64{1, 0, -1, 0}
	led := rounds.New()
	res, err := MinCostFlow(dg, sigma, Options{Ledger: led})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != 2 {
		t.Fatalf("cost = %d, want 2", res.Cost)
	}
	if led.Total() == 0 {
		t.Fatal("no rounds recorded")
	}
}

func TestMinCostFlowBipartiteAssignments(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		dg, sigma := bipartiteInstance(6, 5, 3, 9, seed)
		_, wantCost, err := Solve(dg, sigma)
		if err != nil {
			t.Fatalf("seed %d oracle: %v", seed, err)
		}
		res, err := MinCostFlow(dg, sigma, Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res.Cost != wantCost {
			t.Fatalf("seed %d: cost %d != oracle %d", seed, res.Cost, wantCost)
		}
		if got, err := CheckRouting(dg, res.Flow, sigma); err != nil || got != wantCost {
			t.Fatalf("seed %d: returned flow invalid: %d, %v", seed, got, err)
		}
		t.Logf("seed %d: cost=%d progress=%d perturb=%d repairs=%d cancels=%d mu=%.4g",
			seed, res.Cost, res.ProgressIterations, res.Perturbations,
			res.RepairAugmentations, res.CyclesCancelled, res.FinalMu)
	}
}

func TestMinCostFlowGeneralDemands(t *testing.T) {
	// A path-with-chords instance where several vertices supply/absorb.
	dg := graph.NewDi(6)
	dg.MustAddArc(0, 1, 1, 2)
	dg.MustAddArc(1, 2, 1, 2)
	dg.MustAddArc(2, 3, 1, 2)
	dg.MustAddArc(3, 4, 1, 2)
	dg.MustAddArc(4, 5, 1, 2)
	dg.MustAddArc(0, 2, 1, 7)
	dg.MustAddArc(1, 3, 1, 1)
	dg.MustAddArc(2, 4, 1, 1)
	dg.MustAddArc(0, 5, 1, 20)
	sigma := []int64{2, 0, 0, 0, -1, -1}
	_, wantCost, err := Solve(dg, sigma)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MinCostFlow(dg, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost != wantCost {
		t.Fatalf("cost %d != oracle %d", res.Cost, wantCost)
	}
}

func TestMinCostFlowInfeasible(t *testing.T) {
	dg := graph.NewDi(3)
	dg.MustAddArc(0, 1, 1, 1)
	sigma := []int64{1, 0, -1}
	if _, err := MinCostFlow(dg, sigma, Options{}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("error = %v, want ErrInfeasible", err)
	}
}

func TestMinCostFlowIPMAblation(t *testing.T) {
	dg, sigma := bipartiteInstance(5, 4, 3, 7, 11)
	with, err := MinCostFlow(dg, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := MinCostFlow(dg, sigma, Options{DisableIPM: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Cost != without.Cost {
		t.Fatalf("ablation changed optimum: %d vs %d", with.Cost, without.Cost)
	}
	if without.ProgressIterations != 0 {
		t.Fatal("IPM disabled but Progress ran")
	}
}

// Property: pipeline matches oracle on random feasible bipartite instances.
func TestMinCostFlowMatchesOracleProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("IPM property test is slow")
	}
	f := func(seed int64) bool {
		dg, sigma := bipartiteInstance(4, 4, 2, 5, seed)
		_, wantCost, err := Solve(dg, sigma)
		if err != nil {
			return true // skip infeasible draws (guaranteed arc makes most feasible)
		}
		res, err := MinCostFlow(dg, sigma, Options{})
		if err != nil {
			return false
		}
		return res.Cost == wantCost
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
