package cc

import (
	"errors"
	"testing"
)

func TestEngineBroadcastProgram(t *testing.T) {
	// Node 0 broadcasts a value; every node records it; 1 round total.
	n := 8
	e := NewEngine(n)
	got := make([]int64, n)
	got[0] = 42
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		switch round {
		case 0:
			if node == 0 {
				for v := 1; v < n; v++ {
					send(v, 42)
				}
			}
			return node == 0
		default:
			for _, m := range inbox {
				got[node] = m.Data[0]
			}
			return true
		}
	}
	used, err := e.Run(step, 10)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("broadcast used %d rounds, want 1", used)
	}
	for v := 0; v < n; v++ {
		if got[v] != 42 {
			t.Fatalf("node %d missed broadcast: %d", v, got[v])
		}
	}
}

func TestEngineAllToAllInOneRound(t *testing.T) {
	// Every ordered pair exchanges a message simultaneously: legal in the
	// clique, must cost exactly one round.
	n := 6
	e := NewEngine(n)
	received := make([]int, n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 {
			for v := 0; v < n; v++ {
				if v != node {
					send(v, int64(node))
				}
			}
			return false
		}
		received[node] = len(inbox)
		return true
	}
	used, err := e.Run(step, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 1 {
		t.Fatalf("all-to-all used %d rounds, want 1", used)
	}
	for v := 0; v < n; v++ {
		if received[v] != n-1 {
			t.Fatalf("node %d received %d messages, want %d", v, received[v], n-1)
		}
	}
}

func TestEngineRejectsDuplicatePair(t *testing.T) {
	e := NewEngine(3)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1)
			send(1, 2) // second message on the same ordered pair: violation
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrDuplicatePair) {
		t.Fatalf("error = %v, want ErrDuplicatePair", err)
	}
}

func TestEngineRejectsWideMessage(t *testing.T) {
	e := NewEngine(3)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1, 2, 3, 4) // exceeds DefaultMaxWords = 3
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrMessageTooWide) {
		t.Fatalf("error = %v, want ErrMessageTooWide", err)
	}
}

func TestEngineRejectsBadRecipient(t *testing.T) {
	for _, to := range []int{-1, 3, 0} { // 0 is a self-send from node 0
		e := NewEngine(3)
		step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
			if node == 0 && round == 0 {
				send(to, 1)
			}
			return true
		}
		if _, err := e.Run(step, 5); !errors.Is(err, ErrBadRecipient) {
			t.Fatalf("send to %d: error = %v, want ErrBadRecipient", to, err)
		}
	}
}

func TestEngineRoundLimit(t *testing.T) {
	e := NewEngine(2)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		send(1-node, int64(round)) // ping forever
		return false
	}
	if _, err := e.Run(step, 7); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("error = %v, want ErrRoundLimit", err)
	}
	if e.Rounds() != 7 {
		t.Fatalf("rounds = %d, want 7", e.Rounds())
	}
}

func TestEngineZeroRoundProgram(t *testing.T) {
	// Pure internal computation: all nodes done immediately, no sends.
	e := NewEngine(4)
	used, err := e.Run(func(int, int, []Message, func(int, ...int64)) bool { return true }, 5)
	if err != nil {
		t.Fatal(err)
	}
	if used != 0 {
		t.Fatalf("internal-only program used %d rounds, want 0", used)
	}
}

// TestEngineZeroBudgetZeroCommunication is the regression test for the
// round-limit ordering bug: a program that completes without any
// communication costs zero rounds and must succeed even with maxRounds = 0
// (the limit check used to fire before the zero-cost completion check).
func TestEngineZeroBudgetZeroCommunication(t *testing.T) {
	e := NewEngine(4)
	used, err := e.Run(func(int, int, []Message, func(int, ...int64)) bool { return true }, 0)
	if err != nil {
		t.Fatalf("zero-communication program with zero budget: %v", err)
	}
	if used != 0 {
		t.Fatalf("used %d rounds, want 0", used)
	}
}

// TestEngineCompletionAtExactBudget: a program whose final step performs no
// communication and lands exactly on r == maxRounds succeeds — the free
// final step must not be charged against the budget.
func TestEngineCompletionAtExactBudget(t *testing.T) {
	n := 4
	e := NewEngine(n)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 && node == 0 {
			for v := 1; v < n; v++ {
				send(v, 9)
			}
		}
		return round >= 1 // round 0 communicates; round 1 only consumes
	}
	used, err := e.Run(step, 1)
	if err != nil {
		t.Fatalf("1-round program with budget 1: %v", err)
	}
	if used != 1 {
		t.Fatalf("used %d rounds, want 1", used)
	}
}

// TestEngineZeroBudgetRejectsCommunication: with budget 0 any send is over
// budget.
func TestEngineZeroBudgetRejectsCommunication(t *testing.T) {
	e := NewEngine(2)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 1)
		}
		return true
	}
	if _, err := e.Run(step, 0); !errors.Is(err, ErrRoundLimit) {
		t.Fatalf("error = %v, want ErrRoundLimit", err)
	}
}

// TestEngineSequentialMatchesDefault: the SetSequential escape hatch runs
// the same program to the same result.
func TestEngineSequentialMatchesDefault(t *testing.T) {
	run := func(configure func(*Engine)) (int64, int64, []int64) {
		n := 8
		e := NewEngine(n)
		configure(e)
		got := make([]int64, n)
		got[0] = 42
		step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
			if round == 0 {
				if node == 0 {
					for v := 1; v < n; v++ {
						send(v, 42)
					}
				}
				return node == 0
			}
			for _, m := range inbox {
				got[node] = m.Data[0]
			}
			return true
		}
		used, err := e.Run(step, 10)
		if err != nil {
			t.Fatal(err)
		}
		return used, e.Messages(), got
	}
	u1, m1, g1 := run(func(e *Engine) { e.SetSequential(true) })
	u2, m2, g2 := run(func(e *Engine) { e.SetWorkers(4) })
	if u1 != u2 || m1 != m2 {
		t.Fatalf("sequential (%d rounds, %d msgs) != parallel (%d rounds, %d msgs)", u1, m1, u2, m2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatalf("node %d: sequential got %d, parallel got %d", i, g1[i], g2[i])
		}
	}
}

// TestEngineParallelDetectsViolations: model violations surface identically
// under multiple workers, attributed to the lowest offending node.
func TestEngineParallelDetectsViolations(t *testing.T) {
	e := NewEngine(8)
	e.SetWorkers(4)
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 && node >= 4 {
			send(0, 1)
			send(0, 2) // duplicate pair from every node in the last block
		}
		return true
	}
	if _, err := e.Run(step, 5); !errors.Is(err, ErrDuplicatePair) {
		t.Fatalf("error = %v, want ErrDuplicatePair", err)
	}
}

// TestEngineObserverStats: the instrumentation hook reports deterministic
// per-round message counts and link loads.
func TestEngineObserverStats(t *testing.T) {
	n := 6
	e := NewEngine(n)
	var stats []RoundStats
	e.SetObserver(func(s RoundStats) { stats = append(stats, s) })
	step := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if round == 0 {
			for v := 0; v < n; v++ {
				if v != node {
					send(v, int64(node), int64(round))
				}
			}
			return false
		}
		return true
	}
	if _, err := e.Run(step, 5); err != nil {
		t.Fatal(err)
	}
	if len(stats) != 1 {
		t.Fatalf("observer saw %d rounds, want 1", len(stats))
	}
	s := stats[0]
	if s.Messages != n*(n-1) {
		t.Fatalf("Messages = %d, want %d", s.Messages, n*(n-1))
	}
	if s.Words != 2*n*(n-1) {
		t.Fatalf("Words = %d, want %d", s.Words, 2*n*(n-1))
	}
	if s.MaxOut != n-1 || s.MaxIn != n-1 {
		t.Fatalf("MaxOut/MaxIn = %d/%d, want %d/%d", s.MaxOut, s.MaxIn, n-1, n-1)
	}
	if s.Busy != n {
		t.Fatalf("Busy = %d, want %d", s.Busy, n)
	}
	if s.WidthHist[2] != n*(n-1) {
		t.Fatalf("WidthHist = %v, want all %d messages at width 2", s.WidthHist, n*(n-1))
	}
}

func TestEngineAccumulatesAcrossRuns(t *testing.T) {
	e := NewEngine(2)
	ping := func(node, round int, inbox []Message, send func(int, ...int64)) bool {
		if node == 0 && round == 0 {
			send(1, 7)
			return false
		}
		return true
	}
	if _, err := e.Run(ping, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(ping, 5); err != nil {
		t.Fatal(err)
	}
	if e.Rounds() != 2 {
		t.Fatalf("cumulative rounds = %d, want 2", e.Rounds())
	}
}
