package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadEdgeListBasic(t *testing.T) {
	in := `# comment
0 1 2.5

1 2
`
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.M() != 2 {
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if g.Edge(0).W != 2.5 {
		t.Fatalf("weight %v", g.Edge(0).W)
	}
	if g.Edge(1).W != 1 {
		t.Fatalf("default weight %v", g.Edge(1).W)
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []string{
		"0",            // too few fields
		"0 1 2 3",      // too many
		"x 1",          // bad vertex
		"0 y",          // bad vertex
		"0 1 z",        // bad weight
		"0 0",          // self loop (graph layer rejects)
		"0 1 -3",       // bad weight value
		"0 1 2\n1 1 1", // self loop later
	}
	for _, in := range cases {
		if _, err := ReadEdgeList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		g, err := ConnectedGNM(12, 20, seed)
		if err != nil {
			return false
		}
		wg := WithRandomWeights(g, 9, seed)
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, wg); err != nil {
			return false
		}
		back, err := ReadEdgeList(&buf)
		if err != nil {
			return false
		}
		if back.N() != wg.N() || back.M() != wg.M() {
			return false
		}
		for i := 0; i < wg.M(); i++ {
			if back.Edge(i) != wg.Edge(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestReadArcListBasic(t *testing.T) {
	in := "0 1 5 2\n1 2 3\n"
	dg, err := ReadArcList(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if dg.N() != 3 || dg.M() != 2 {
		t.Fatalf("n=%d m=%d", dg.N(), dg.M())
	}
	if a := dg.Arc(0); a.Cap != 5 || a.Cost != 2 {
		t.Fatalf("arc %+v", a)
	}
	if a := dg.Arc(1); a.Cost != 0 {
		t.Fatalf("default cost %+v", a)
	}
}

func TestReadArcListErrors(t *testing.T) {
	cases := []string{
		"0 1",       // too few
		"0 1 2 3 4", // too many
		"a 1 2",
		"0 b 2",
		"0 1 c",
		"0 1 2 d",
		"0 1 -2", // negative capacity
		"1 1 2",  // self loop
	}
	for _, in := range cases {
		if _, err := ReadArcList(strings.NewReader(in)); err == nil {
			t.Fatalf("input %q accepted", in)
		}
	}
}

func TestArcListRoundTrip(t *testing.T) {
	dg := RandomDiGraph(10, 25, 7, 5, 3)
	var buf bytes.Buffer
	if err := WriteArcList(&buf, dg); err != nil {
		t.Fatal(err)
	}
	back, err := ReadArcList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.M() != dg.M() {
		t.Fatalf("m=%d want %d", back.M(), dg.M())
	}
	for i := 0; i < dg.M(); i++ {
		if back.Arc(i) != dg.Arc(i) {
			t.Fatalf("arc %d: %+v vs %+v", i, back.Arc(i), dg.Arc(i))
		}
	}
}
