package trace

import (
	"bytes"
	"fmt"
	"os"
)

// WriteFiles writes the Chrome trace_event file to chromePath and the
// deterministic JSONL event stream to eventsPath; an empty path skips that
// export. The JSONL stream is validated against the schema before it
// touches disk, so a written file is always loadable. Convenience for the
// cmd-level -trace / -trace-events flags; a nil tracer writes valid empty
// exports.
func (t *Tracer) WriteFiles(chromePath, eventsPath string) error {
	if chromePath != "" {
		f, err := os.Create(chromePath)
		if err != nil {
			return err
		}
		if err := t.WriteChromeTrace(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if eventsPath != "" {
		var buf bytes.Buffer
		if err := t.WriteJSONL(&buf); err != nil {
			return err
		}
		if err := ValidateJSONL(bytes.NewReader(buf.Bytes())); err != nil {
			return fmt.Errorf("trace: generated JSONL failed validation: %w", err)
		}
		if err := os.WriteFile(eventsPath, buf.Bytes(), 0o644); err != nil {
			return err
		}
	}
	return nil
}
