// Command lapccnode is one worker process of a multi-process congested
// clique. It is not run by hand: the TCP transport coordinator (an engine
// configured with -transport tcp, or the net-smoke harness) execs one
// lapccnode per worker, hands it the coordinator address, and the process
// serves delivery barriers until it is shut down. A supervising coordinator
// additionally passes its timeouts, the mesh epoch, and the chaos plan, so
// a respawned worker rejoins with exactly the settings of the mesh it
// replaces.
package main

import (
	"flag"
	"fmt"
	"os"

	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

func main() {
	coord := flag.String("coord", "", "coordinator address (host:port)")
	id := flag.Int("id", -1, "worker id in [0, procs)")
	procs := flag.Int("procs", 0, "total worker count")
	dialTimeout := flag.Duration("dial-timeout", 0, "coordinator/mesh dial and accept timeout (0: default)")
	ackTimeout := flag.Duration("ack-timeout", 0, "base retransmission timeout (0: default)")
	retries := flag.Int("retries", 0, "max retransmission waves per stream (0: default)")
	epoch := flag.Uint64("epoch", 0, "coordinator mesh incarnation")
	chaosSpec := flag.String("chaos", "", "socket-level chaos plan for mesh connections (see transport.ParseChaosPlan)")
	flag.Parse()

	if *coord == "" || *id < 0 || *procs <= 0 || *id >= *procs {
		fmt.Fprintln(os.Stderr, "lapccnode: -coord, -id, and -procs are required (0 <= id < procs)")
		os.Exit(2)
	}
	chaos, err := transport.ParseChaosPlan(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lapccnode: %v\n", err)
		os.Exit(2)
	}
	cfg := tcp.NodeConfig{
		AckTimeout:  *ackTimeout,
		MaxRetries:  *retries,
		DialTimeout: *dialTimeout,
		Epoch:       *epoch,
		Chaos:       chaos,
	}
	if err := tcp.RunNodeWith(*coord, *id, *procs, cfg); err != nil {
		fmt.Fprintf(os.Stderr, "lapccnode: %v\n", err)
		os.Exit(1)
	}
}
