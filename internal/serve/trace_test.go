package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/metrics"
	"lapcc/internal/trace"
)

// doSolve posts a solve for g and returns the parsed response plus the
// X-Lapcc-Request-Id header.
func doSolve(t *testing.T, url string, g *graph.Graph, query string) (SolveResponse, string, int) {
	t.Helper()
	resp, err := http.Post(url+"/v1/solve"+query, "application/json", bytes.NewReader(solveBody(t, g)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var sr SolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("decoding %s: %v", body, err)
		}
	}
	return sr, resp.Header.Get(RequestIDHeader), resp.StatusCode
}

// TestTracedRequestCarriesSpanSummary: ?trace=1 attaches a per-request
// tracer, the response carries the span summary, the full stream is
// retained at /v1/trace/{id}, and the traced answer is bit-identical to
// the untraced one (the traced path runs the exact pooled-miss code).
func TestTracedRequestCarriesSpanSummary(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}

	plain, plainID, code := doSolve(t, ts.URL, g, "")
	if code != 200 {
		t.Fatalf("untraced solve status %d", code)
	}
	if plain.Trace != nil {
		t.Fatal("untraced response carries a trace block")
	}
	if plainID == "" {
		t.Fatal("untraced response missing request-ID header")
	}

	traced, id, code := doSolve(t, ts.URL, g, "?trace=1")
	if code != 200 {
		t.Fatalf("traced solve status %d", code)
	}
	if traced.Trace == nil {
		t.Fatal("traced response missing trace block")
	}
	if traced.Trace.ID != id {
		t.Fatalf("trace block ID %q != header %q", traced.Trace.ID, id)
	}
	if !strings.Contains(id, "-") {
		t.Fatalf("bound request ID %q missing fingerprint suffix", id)
	}
	if len(traced.Trace.Spans) == 0 || traced.Trace.Attributed <= 0 {
		t.Fatalf("empty span summary: %+v", traced.Trace)
	}
	for i := range plain.X {
		for j := range plain.X[i] {
			if plain.X[i][j] != traced.X[i][j] {
				t.Fatalf("traced solution diverges at [%d][%d]", i, j)
			}
		}
	}

	// The full stream is retained in the ring and is schema-clean.
	resp, err := http.Get(ts.URL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/trace/%s status %d", id, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace Content-Type %q", ct)
	}
	if err := trace.ValidateJSONL(resp.Body); err != nil {
		t.Fatalf("retained stream invalid: %v", err)
	}

	// Unknown IDs are a typed 404 carrying the *probing* request's own ID.
	resp2, err := http.Get(ts.URL + "/v1/trace/r999999-0000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 404 {
		t.Fatalf("unknown trace ID served %d", resp2.StatusCode)
	}

	if st := s.Stats(); st.TracedRequests != 1 {
		t.Fatalf("stats count %d traced requests, want 1", st.TracedRequests)
	}
}

// TestTraceHeaderEnablesTracing: the X-Lapcc-Trace header is equivalent to
// ?trace=1.
func TestTraceHeaderEnablesTracing(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g, err := graph.RandomRegular(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	req, _ := http.NewRequest("POST", ts.URL+"/v1/solve", bytes.NewReader(solveBody(t, g)))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TraceHeader, "1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	if sr.Trace == nil {
		t.Fatal("header-traced response missing trace block")
	}
}

// TestTraceRingEviction: the ring holds the last TraceRing streams;
// older ones evict FIFO.
func TestTraceRingEviction(t *testing.T) {
	s := New(Options{TraceRing: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	g, err := graph.RandomRegular(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i := 0; i < 3; i++ {
		_, id, code := doSolve(t, ts.URL, g, "?trace=1")
		if code != 200 {
			t.Fatalf("solve %d status %d", i, code)
		}
		ids = append(ids, id)
	}
	status := func(id string) int {
		resp, err := http.Get(ts.URL + "/v1/trace/" + id)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if status(ids[0]) != 404 {
		t.Fatalf("oldest trace %s not evicted from a ring of 2", ids[0])
	}
	if status(ids[1]) != 200 || status(ids[2]) != 200 {
		t.Fatal("recent traces evicted early")
	}
}

// TestErrorEnvelopeCarriesRequestID: failures echo the request ID in both
// the envelope and the header, so a loadgen line joins to the access log.
func TestErrorEnvelopeCarriesRequestID(t *testing.T) {
	s := New(Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var env struct {
		Error WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatal(err)
	}
	if env.Error.RequestID == "" {
		t.Fatalf("error envelope missing request_id: %+v", env.Error)
	}
	if hdr := resp.Header.Get(RequestIDHeader); hdr != env.Error.RequestID {
		t.Fatalf("header ID %q != envelope ID %q", hdr, env.Error.RequestID)
	}
}

// TestAccessLog: one JSON line per request on the configured writer,
// including failed ones, carrying the bound ID and status.
func TestAccessLog(t *testing.T) {
	var logBuf bytes.Buffer
	s := New(Options{AccessLog: &logBuf})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	g, err := graph.RandomRegular(32, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, okID, _ := doSolve(t, ts.URL, g, "?trace=1")
	resp, err := http.Post(ts.URL+"/v1/solve", "application/json", strings.NewReader("{"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	lines := strings.Split(strings.TrimSpace(logBuf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logBuf.String())
	}
	var first, second accessRecord
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &second); err != nil {
		t.Fatal(err)
	}
	if first.ID != okID || first.Op != "solve" || first.Status != 200 || !first.Traced {
		t.Fatalf("first access line %+v: want traced solve %s status 200", first, okID)
	}
	if second.Status != 400 || second.Code != "bad_request" {
		t.Fatalf("second access line %+v: want status 400 bad_request", second)
	}
	if second.ID == "" || second.ID == okID {
		t.Fatalf("failed request's log ID %q unusable", second.ID)
	}
}

// TestStatsTransportBlock: when a TransportStats closure is wired, the
// /v1/stats payload and the lapcc_transport_* gauges expose it.
func TestStatsTransportBlock(t *testing.T) {
	s := New(Options{
		Metrics: metrics.NewRegistry(),
		TransportStats: func() TransportStats {
			return TransportStats{Epoch: 3, Kills: 2, Respawns: 8, ReplayedBarriers: 5, ChaosResets: 11}
		},
	})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Transport == nil {
		t.Fatal("stats missing transport block")
	}
	if st.Transport.Epoch != 3 || st.Transport.Kills != 2 || st.Transport.ChaosResets != 11 {
		t.Fatalf("transport block %+v", st.Transport)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"lapcc_transport_epoch 3",
		"lapcc_transport_kills 2",
		"lapcc_transport_replayed_barriers 5",
		"lapcc_transport_chaos_resets 11",
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, text)
		}
	}
}

// TestDebugFlightRoute: the handler mounts /debug/flight — 404 when no
// recorder is configured, NDJSON dump when one is.
func TestDebugFlightRoute(t *testing.T) {
	bare := httptest.NewServer(New(Options{}).Handler())
	defer bare.Close()
	resp, err := http.Get(bare.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 404 {
		t.Fatalf("flightless /debug/flight served %d", resp.StatusCode)
	}

	fl := trace.NewFlight(8)
	fl.Record(trace.FlightEvent{Kind: "kill", Barrier: 1, Node: 2})
	wired := httptest.NewServer(New(Options{Flight: fl}).Handler())
	defer wired.Close()
	resp2, err := http.Get(wired.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != 200 {
		t.Fatalf("/debug/flight served %d", resp2.StatusCode)
	}
	if err := trace.ValidateFlightJSONL(resp2.Body); err != nil {
		t.Fatalf("flight route payload invalid: %v", err)
	}
}
