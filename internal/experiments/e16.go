package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"lapcc/internal/cc"
	"lapcc/internal/core"
	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/trace"
	"lapcc/internal/transport"
	"lapcc/internal/transport/tcp"
)

// --- E16 ------------------------------------------------------------------

// e16DistributedTrace exercises the distributed trace plane and the crash
// flight recorder end to end (DESIGN.md §15): the Theorem 1.1 solver runs
// over a supervised 4-worker mesh whose chaos plan kills two workers
// mid-solve, with a tracer attached to both the run and the transport. The
// tables show (a) the merged phase profile — coordinator phases plus the
// node-N worker subtrees — with the supervision mark counts, and (b) the
// flight recorder's event histogram, the wall-clock half of the story. The
// headline check is the determinism contract: the merged JSONL timeline of
// a second same-seed chaotic run must be byte-identical.
func e16DistributedTrace(w io.Writer, quick bool) error {
	const n, m, seed = 48, 140, 11
	g, err := graph.ConnectedGNM(n, m, seed)
	if err != nil {
		return err
	}
	b := linalg.NewVec(n)
	b[0], b[n-1] = 1, -1
	// The deterministic drop plan forces retransmission rounds, so the
	// solve spans several barriers and the kill schedule lands.
	faults := &cc.FaultPlan{Seed: 101, Drop: 0.01}

	run := func() (string, *trace.Tracer, *trace.Flight, tcp.RecoveryStats, error) {
		tr, err := tcp.New(tcp.Options{
			Procs: 4, Supervise: true, BarrierTimeout: 30 * time.Second,
			Chaos: &transport.ChaosPlan{Seed: 7, Kills: []transport.Kill{
				{Barrier: 1, Proc: 1}, {Barrier: 2, Proc: 3},
			}},
			Stderr: io.Discard,
		})
		if err != nil {
			return "", nil, nil, tcp.RecoveryStats{}, err
		}
		tracer := trace.New()
		tr.SetTracer(tracer)
		fl := trace.NewFlight(512)
		tr.SetFlight(fl, "")
		_, serr := core.SolveLaplacianWith(g.Clone(), b, 1e-8, core.RunOptions{
			Transport: tr, Trace: tracer, Faults: faults,
		})
		rec := tr.Recovery()
		tr.Close()
		if serr != nil {
			return "", nil, nil, rec, serr
		}
		var buf bytes.Buffer
		if err := tracer.WriteJSONL(&buf); err != nil {
			return "", nil, nil, rec, err
		}
		return buf.String(), tracer, fl, rec, nil
	}

	jsonl, tracer, fl, rec, err := run()
	if err != nil {
		return fmt.Errorf("e16: chaotic traced solve: %w", err)
	}
	if err := trace.ValidateJSONL(strings.NewReader(jsonl)); err != nil {
		return fmt.Errorf("e16: merged timeline invalid: %w", err)
	}
	fmt.Fprintf(w, "supervised 4-worker mesh, kills at barriers 1 and 2: %d kills, %d respawns, %d replayed barriers, final epoch %d\n\n",
		rec.Kills, rec.Respawns, rec.ReplayedBarriers, rec.HeartbeatFailures+rec.Restarts)

	fmt.Fprintf(w, "-- merged phase profile (per-phase round attribution; node-N rows are worker subtrees) --\n")
	fmt.Fprintf(w, "%-44s %6s %9s %8s %10s\n", "phase", "calls", "measured", "charged", "messages")
	phases := tracer.Phases()
	limit := len(phases)
	if quick && limit > 8 {
		limit = 8
	}
	for _, ph := range phases[:limit] {
		fmt.Fprintf(w, "%-44s %6d %9d %8d %10d\n", clipPath(ph.Path, 44), ph.Calls, ph.MeasuredRounds, ph.ChargedRounds, ph.Messages)
	}
	fmt.Fprintf(w, "attributed fraction: %.3f\n\n", tracer.AttributedFraction())

	marks := map[string]int{}
	for _, line := range strings.Split(jsonl, "\n") {
		if strings.Contains(line, `"ev":"mark"`) {
			for _, kind := range []string{"chaos-kill", "mesh-teardown", "mesh-respawn", "barrier-failed", "replay-verified", "replay"} {
				if strings.Contains(line, `"name":"`+kind+`"`) {
					marks[kind]++
					break
				}
			}
		}
	}
	fmt.Fprintf(w, "-- supervision marks in the deterministic timeline --\n")
	printHistogram(w, marks)

	kinds := map[string]int{}
	for _, ev := range fl.Events() {
		kinds[ev.Kind]++
	}
	fmt.Fprintf(w, "\n-- flight recorder (wall-clock side channel, %d events held) --\n", fl.Len())
	printHistogram(w, kinds)

	// The determinism contract: a second same-seed chaotic run merges to
	// byte-identical JSONL.
	jsonl2, _, _, _, err := run()
	if err != nil {
		return fmt.Errorf("e16: second run: %w", err)
	}
	identical := "yes"
	if jsonl2 != jsonl {
		identical = "NO"
	}
	fmt.Fprintf(w, "\nmerged timeline: %d JSONL lines; byte-identical across same-seed chaotic runs: %s\n",
		strings.Count(jsonl, "\n"), identical)
	if identical != "yes" {
		return fmt.Errorf("e16: merged trace timelines diverge across same-seed runs")
	}
	fmt.Fprintln(w, "\nclaim shape: one schema-valid merged timeline with node-N worker subtrees and")
	fmt.Fprintln(w, "supervision marks, byte-identical across same-seed chaotic runs; wall-clock")
	fmt.Fprintln(w, "detail (timestamps, error text) appears only in the flight recorder")
	return nil
}

func clipPath(p string, max int) string {
	if len(p) <= max {
		return p
	}
	return "..." + p[len(p)-(max-3):]
}

func printHistogram(w io.Writer, counts map[string]int) {
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%-24s %4d\n", k, counts[k])
	}
}
