// Package graph provides the weighted graph representations used throughout
// the library: undirected weighted graphs for spectral algorithms
// (sparsification, Laplacian solving) and directed capacitated graphs for
// flow algorithms.
//
// Vertices are identified by dense integer indices 0..n-1, matching the
// congested-clique convention that node i of the clique hosts vertex i and
// initially knows exactly the edges incident to it.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Edge is an undirected weighted edge between vertices U and V.
// The pair is stored with U < V after normalization.
type Edge struct {
	U, V int
	W    float64
}

// Graph is an undirected weighted multigraph on n vertices. It keeps both an
// edge list (for algorithms that iterate edges, e.g. sparsification) and an
// adjacency structure (for traversals). Self-loops are rejected because they
// contribute nothing to a Laplacian; parallel edges are allowed.
type Graph struct {
	n     int
	edges []Edge
	adj   [][]Half
	gen   uint64 // topology generation; bumped by edge-endpoint mutations
}

// Half is one endpoint's view of an undirected edge: the opposite endpoint
// and the index of the edge in the graph's edge list.
type Half struct {
	To   int
	Edge int
}

// ErrVertexRange reports a vertex index outside 0..n-1.
var ErrVertexRange = errors.New("graph: vertex index out of range")

// ErrSelfLoop reports an attempt to add a self-loop.
var ErrSelfLoop = errors.New("graph: self-loops are not allowed")

// ErrBadWeight reports a non-positive or non-finite edge weight.
var ErrBadWeight = errors.New("graph: edge weight must be positive and finite")

// New returns an empty undirected graph on n vertices.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]Half, n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of edges.
func (g *Graph) M() int { return len(g.edges) }

// Edges returns the graph's edge list. The caller must not modify it.
func (g *Graph) Edges() []Edge { return g.edges }

// Edge returns the edge with the given index.
func (g *Graph) Edge(i int) Edge { return g.edges[i] }

// Adj returns the adjacency list of vertex v. The caller must not modify it.
func (g *Graph) Adj(v int) []Half { return g.adj[v] }

// Degree returns the number of edge endpoints at v (parallel edges count
// separately).
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// WeightedDegree returns the sum of weights of edges incident to v.
func (g *Graph) WeightedDegree(v int) float64 {
	var d float64
	for _, h := range g.adj[v] {
		d += g.edges[h.Edge].W
	}
	return d
}

// AddEdge adds an undirected edge {u,v} with weight w and returns its index.
func (g *Graph) AddEdge(u, v int, w float64) (int, error) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return 0, fmt.Errorf("%w: {%d,%d} with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return 0, fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if !(w > 0) || w != w || w > 1e300 {
		return 0, fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	if u > v {
		u, v = v, u
	}
	id := len(g.edges)
	g.edges = append(g.edges, Edge{U: u, V: v, W: w})
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: id})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: id})
	g.gen++
	return id, nil
}

// Gen returns the graph's topology generation: a counter bumped by every
// mutation that changes edge endpoints (AddEdge, RewireEdge) but not by
// weight-only updates (SetWeight, SetWeights). Caches keyed on the topology
// — the Laplacian's coalesced pair groups foremost — compare generations
// instead of edge counts, so a rewire that keeps M constant still
// invalidates them.
func (g *Graph) Gen() uint64 { return g.gen }

// RewireEdge moves edge i to the endpoints {u,v}, keeping its index and
// weight. The endpoints are validated exactly like AddEdge's and normalized
// to U < V; the adjacency halves of the old endpoints are removed and the
// new ones appended. Rewiring changes the topology without changing M, so it
// bumps the generation counter — operators caching topology-derived state
// must Refresh against Gen, not M.
func (g *Graph) RewireEdge(i, u, v int) error {
	if i < 0 || i >= len(g.edges) {
		return fmt.Errorf("graph: edge index %d out of range (m=%d)", i, len(g.edges))
	}
	if u < 0 || u >= g.n || v < 0 || v >= g.n {
		return fmt.Errorf("%w: {%d,%d} with n=%d", ErrVertexRange, u, v, g.n)
	}
	if u == v {
		return fmt.Errorf("%w: vertex %d", ErrSelfLoop, u)
	}
	if u > v {
		u, v = v, u
	}
	old := g.edges[i]
	g.dropHalf(old.U, i)
	g.dropHalf(old.V, i)
	g.edges[i].U, g.edges[i].V = u, v
	g.adj[u] = append(g.adj[u], Half{To: v, Edge: i})
	g.adj[v] = append(g.adj[v], Half{To: u, Edge: i})
	g.gen++
	return nil
}

// dropHalf removes vertex w's adjacency half of edge i, preserving the
// relative order of the remaining halves.
func (g *Graph) dropHalf(w, i int) {
	hs := g.adj[w]
	for k, h := range hs {
		if h.Edge == i {
			g.adj[w] = append(hs[:k], hs[k+1:]...)
			return
		}
	}
}

// SetWeight replaces the weight of edge i in place, keeping the topology
// (endpoints, edge index, adjacency) untouched. This is the primitive behind
// the build-once/solve-many session layer: reweighting a graph whose
// structure is fixed must not reallocate anything. The weight is validated
// exactly like AddEdge's.
func (g *Graph) SetWeight(i int, w float64) error {
	if i < 0 || i >= len(g.edges) {
		return fmt.Errorf("graph: edge index %d out of range (m=%d)", i, len(g.edges))
	}
	if !(w > 0) || w != w || w > 1e300 {
		return fmt.Errorf("%w: %v", ErrBadWeight, w)
	}
	g.edges[i].W = w
	return nil
}

// SetWeights replaces every edge weight in one pass — the bulk form of
// SetWeight for session reweights, where the per-edge call overhead is
// measurable against the O(m) work itself. w is indexed by edge id and
// validated exactly like AddEdge's weights; on error the graph is left
// partially updated, matching a SetWeight loop that stops at the bad edge.
func (g *Graph) SetWeights(w []float64) error {
	if len(w) != len(g.edges) {
		return fmt.Errorf("graph: %d weights for %d edges", len(w), len(g.edges))
	}
	for i, x := range w {
		if !(x > 0) || x != x || x > 1e300 {
			return fmt.Errorf("edge %d: %w: %v", i, ErrBadWeight, x)
		}
		g.edges[i].W = x
	}
	return nil
}

// Weights returns a fresh slice with the current edge weights, indexed by
// edge id — the reference vector session layers diff against on Reweight.
func (g *Graph) Weights() []float64 {
	ws := make([]float64, len(g.edges))
	for i, e := range g.edges {
		ws[i] = e.W
	}
	return ws
}

// MustAddEdge is AddEdge for construction code with statically valid inputs.
// It panics on error and is intended for tests and generators only; code
// building graphs from external or user-supplied input must use AddEdge and
// handle the returned error, which is always one of the typed sentinels
// (ErrVertexRange, ErrSelfLoop, ErrBadWeight).
func (g *Graph) MustAddEdge(u, v int, w float64) int {
	id, err := g.AddEdge(u, v, w)
	if err != nil {
		panic(err)
	}
	return id
}

// TotalWeight returns the sum of all edge weights.
func (g *Graph) TotalWeight() float64 {
	var t float64
	for _, e := range g.edges {
		t += e.W
	}
	return t
}

// MaxWeight returns the maximum edge weight, or 0 for an empty graph.
func (g *Graph) MaxWeight() float64 {
	var mx float64
	for _, e := range g.edges {
		if e.W > mx {
			mx = e.W
		}
	}
	return mx
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := New(g.n)
	c.edges = append([]Edge(nil), g.edges...)
	for v := range g.adj {
		c.adj[v] = append([]Half(nil), g.adj[v]...)
	}
	c.gen = g.gen
	return c
}

// Subgraph returns the induced subgraph on the given vertices, along with the
// mapping from new vertex indices to original ones. Vertices may be given in
// any order; duplicates are an error.
func (g *Graph) Subgraph(vs []int) (*Graph, []int, error) {
	idx := make(map[int]int, len(vs))
	orig := make([]int, len(vs))
	for i, v := range vs {
		if v < 0 || v >= g.n {
			return nil, nil, fmt.Errorf("%w: %d", ErrVertexRange, v)
		}
		if _, dup := idx[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d in subgraph", v)
		}
		idx[v] = i
		orig[i] = v
	}
	s := New(len(vs))
	for _, e := range g.edges {
		iu, uok := idx[e.U]
		iv, vok := idx[e.V]
		if uok && vok {
			s.MustAddEdge(iu, iv, e.W)
		}
	}
	return s, orig, nil
}

// Components returns the connected components as slices of vertex indices,
// each sorted ascending, ordered by smallest contained vertex.
func (g *Graph) Components() [][]int {
	seen := make([]bool, g.n)
	var comps [][]int
	queue := make([]int, 0, g.n)
	for s := 0; s < g.n; s++ {
		if seen[s] {
			continue
		}
		seen[s] = true
		queue = append(queue[:0], s)
		comp := []int{s}
		for len(queue) > 0 {
			v := queue[len(queue)-1]
			queue = queue[:len(queue)-1]
			for _, h := range g.adj[v] {
				if !seen[h.To] {
					seen[h.To] = true
					comp = append(comp, h.To)
					queue = append(queue, h.To)
				}
			}
		}
		sort.Ints(comp)
		comps = append(comps, comp)
	}
	return comps
}

// IsConnected reports whether the graph has exactly one connected component
// (the empty graph on 0 vertices counts as connected).
func (g *Graph) IsConnected() bool {
	if g.n == 0 {
		return true
	}
	return len(g.Components()) == 1
}

// IsEulerian reports whether every vertex has even degree. (Connectivity is
// not required: the Eulerian orientation algorithm works per component.)
func (g *Graph) IsEulerian() bool {
	for v := 0; v < g.n; v++ {
		if len(g.adj[v])%2 != 0 {
			return false
		}
	}
	return true
}

// Volume returns the sum of degrees of the given vertex set.
func (g *Graph) Volume(vs []int) int {
	var vol int
	for _, v := range vs {
		vol += len(g.adj[v])
	}
	return vol
}
