package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lapcc/internal/graph"
)

// LoadOptions configures a load-generation run against a serving daemon.
// The workload is deterministic per Seed: the same options produce the same
// request bodies in the same order, so recorded latency baselines compare
// like against like.
type LoadOptions struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Client is the HTTP client (http.DefaultClient if nil).
	Client *http.Client
	// Requests is the total request count across all ops (default 64).
	Requests int
	// Concurrency is the number of client workers (default 4).
	Concurrency int
	// Mix weights the operations; zero-weight ops are skipped. Default:
	// solve=6, sparsify=1, orient=1, maxflow=1, mincostflow=1 — the
	// solve-heavy profile the session pool is built for.
	Mix map[string]int
	// Topologies is the number of distinct solve/sparsify topologies the
	// workload cycles through (default 2). Fewer topologies than solve
	// requests means repeat topologies, exercising the pooled reweight
	// path.
	Topologies int
	// N is the vertex count of the generated graphs (default 48).
	N int
	// Seed drives every generated instance (default 1).
	Seed int64
	// Budget, if non-nil, rides on every request.
	Budget *WireBudget
	// ConnRetries bounds per-request retries of transport-level failures
	// (connection refused or reset — typically the daemon restarting
	// underneath the generator). Each retry backs off exponentially from
	// 10ms with deterministic jitter keyed on the request index, so
	// concurrent workers do not reconnect in lockstep yet replays stay
	// reproducible. 0 disables: a transport error immediately fails the
	// request.
	ConnRetries int
	// TraceSample, when positive, runs every TraceSample-th request of
	// the schedule (indices 0, TraceSample, 2*TraceSample, ...) with
	// ?trace=1, so the daemon returns a span summary and retains the
	// JSONL stream for /v1/trace/{id}. The per-op latency split of traced
	// vs untraced requests yields LoadResult.TraceOverhead. 0 disables.
	TraceSample int
}

func (o *LoadOptions) defaults() {
	if o.Client == nil {
		o.Client = http.DefaultClient
	}
	if o.Requests <= 0 {
		o.Requests = 64
	}
	if o.Concurrency <= 0 {
		o.Concurrency = 4
	}
	if o.Topologies <= 0 {
		o.Topologies = 2
	}
	if o.N <= 0 {
		o.N = 48
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Mix == nil {
		o.Mix = map[string]int{"solve": 6, "sparsify": 1, "orient": 1, "maxflow": 1, "mincostflow": 1}
	}
}

// OpStats aggregates the latencies of one op across a run.
type OpStats struct {
	Count  int           `json:"count"`
	Errors int           `json:"errors"`
	P50    time.Duration `json:"p50_ns"`
	P99    time.Duration `json:"p99_ns"`
	Mean   time.Duration `json:"mean_ns"`
}

// RequestFailure identifies one failed request of a run: the schedule
// index, the daemon-assigned request ID (joinable to the daemon's
// access-log lines and /v1/trace/{id}), and the typed error. The ID is
// empty when the failure never reached the daemon (transport error).
type RequestFailure struct {
	Op     string `json:"op"`
	Index  int    `json:"index"`
	ID     string `json:"id,omitempty"`
	Status int    `json:"status,omitempty"`
	Code   string `json:"code,omitempty"`
}

// RequestRetry identifies one request that succeeded only after absorbing
// shed (429 "overloaded") or transport-level retries. ID is the request ID
// of the attempt that finally went through.
type RequestRetry struct {
	Op          string `json:"op"`
	Index       int    `json:"index"`
	ID          string `json:"id,omitempty"`
	Retries     int    `json:"retries,omitempty"`
	ConnRetries int    `json:"conn_retries,omitempty"`
}

// LoadResult is the outcome of RunLoad.
type LoadResult struct {
	PerOp    map[string]OpStats `json:"per_op"`
	Requests int                `json:"requests"`
	Errors   int                `json:"errors"`
	// Retries counts 429 "overloaded" responses absorbed by backoff — the
	// admission gate working as intended, not failures. Retried time counts
	// toward the request's latency (the client-observed figure).
	Retries int `json:"retries"`
	// ConnRetries counts transport-level failures absorbed by the
	// LoadOptions.ConnRetries backoff before the request went through.
	ConnRetries int           `json:"conn_retries"`
	Elapsed     time.Duration `json:"elapsed_ns"`
	// NsPerRequest is the inverse throughput of the whole run: wall time
	// divided by completed requests — the figure BENCH_serve.json gates.
	NsPerRequest float64 `json:"ns_per_request"`
	// Failures lists every failed request with its daemon-assigned ID, in
	// schedule order; Retried likewise lists requests that needed retries.
	Failures []RequestFailure `json:"failures,omitempty"`
	Retried  []RequestRetry   `json:"retried,omitempty"`
	// Traced counts requests sent with ?trace=1 (LoadOptions.TraceSample).
	Traced int `json:"traced,omitempty"`
	// TraceOverhead is the mean-latency ratio of traced to untraced
	// requests, averaged over ops that saw both (informational — recorded
	// in BENCH_serve.json but never gated). 0 when nothing was traced.
	TraceOverhead float64 `json:"trace_overhead,omitempty"`
}

// workItem is one scheduled request.
type workItem struct {
	op   string
	body []byte
}

// solveWeights returns the deterministic per-edge weights of solve request
// r: all within [1.1, 1.9), i.e. one binary weight class, so repeat
// topologies stay on the chain's exact-reuse tier.
func solveWeights(m int, r int) []float64 {
	w := make([]float64, m)
	for i := range w {
		h := uint64(i)*2654435761 + uint64(r)*40503 + 17
		w[i] = 1.1 + 0.8*float64(h%1024)/1024
	}
	return w
}

// buildSchedule materializes the deterministic request sequence.
func buildSchedule(o *LoadOptions) ([]workItem, error) {
	ops := make([]string, 0, 8)
	for _, op := range []string{"solve", "sparsify", "orient", "maxflow", "mincostflow"} {
		for i := 0; i < o.Mix[op]; i++ {
			ops = append(ops, op)
		}
	}
	if len(ops) == 0 {
		return nil, fmt.Errorf("loadgen: empty op mix")
	}

	// Shared instances, generated once per topology slot.
	solveGraphs := make([]*graph.Graph, o.Topologies)
	for t := range solveGraphs {
		g, err := graph.RandomRegular(o.N, 6, o.Seed+int64(t))
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		solveGraphs[t] = g
	}
	flowNet := graph.LayeredDAG(2, 4, 2, 4, o.Seed)
	unitNet := graph.LayeredDAG(2, 4, 2, 1, o.Seed+1)
	sigma := make([]int64, unitNet.N())
	sigma[0], sigma[unitNet.N()-1] = 1, -1

	items := make([]workItem, o.Requests)
	for r := 0; r < o.Requests; r++ {
		op := ops[r%len(ops)]
		var body any
		switch op {
		case "solve":
			g := solveGraphs[r%o.Topologies]
			wg := ToWireGraph(g)
			for i, w := range solveWeights(g.M(), r) {
				wg.Edges[i][2] = w
			}
			b := make([]float64, g.N())
			b[r%g.N()], b[(r+1)%g.N()] = 1, -1
			body = SolveRequest{Graph: &wg, RHS: [][]float64{b}, Eps: 1e-8, Budget: o.Budget}
		case "sparsify":
			g := solveGraphs[r%o.Topologies]
			wg := ToWireGraph(g)
			body = SparsifyRequest{Graph: &wg, Budget: o.Budget}
		case "orient":
			g := solveGraphs[r%o.Topologies]
			wg := ToWireGraph(g)
			body = OrientRequest{Graph: &wg, Budget: o.Budget}
		case "maxflow":
			wd := ToWireDiGraph(flowNet)
			body = MaxFlowRequest{Graph: &wd, Source: 0, Sink: flowNet.N() - 1, Budget: o.Budget}
		case "mincostflow":
			wd := ToWireDiGraph(unitNet)
			body = MinCostFlowRequest{Graph: &wd, Sigma: sigma, Budget: o.Budget}
		}
		raw, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("loadgen: %w", err)
		}
		items[r] = workItem{op: op, body: raw}
	}
	return items, nil
}

// RunLoad replays the deterministic mixed workload against the daemon at
// opts.BaseURL with opts.Concurrency client workers and aggregates per-op
// latency percentiles and run throughput.
func RunLoad(opts LoadOptions) (*LoadResult, error) {
	opts.defaults()
	items, err := buildSchedule(&opts)
	if err != nil {
		return nil, err
	}

	var (
		next        atomic.Int64
		mu          sync.Mutex
		latencies   = map[string][]time.Duration{}
		tracedLats  = map[string][]time.Duration{}
		errCounts   = map[string]int{}
		retries     int
		connRetries int
		tracedN     int
		failures    []RequestFailure
		retried     []RequestRetry
		wg          sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < opts.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(items) {
					return
				}
				it := items[i]
				url := opts.BaseURL + "/v1/" + it.op
				traced := opts.TraceSample > 0 && i%opts.TraceSample == 0
				if traced {
					url += "?trace=1"
				}
				start := time.Now()
				pr := post(opts.Client, url, it.body, opts.ConnRetries, i)
				lat := time.Since(start)
				mu.Lock()
				if traced {
					tracedN++
					tracedLats[it.op] = append(tracedLats[it.op], lat)
				} else {
					latencies[it.op] = append(latencies[it.op], lat)
				}
				retries += pr.retries
				connRetries += pr.conn
				if !pr.ok {
					errCounts[it.op]++
					failures = append(failures, RequestFailure{
						Op: it.op, Index: i, ID: pr.id, Status: pr.status, Code: pr.code,
					})
				} else if pr.retries > 0 || pr.conn > 0 {
					retried = append(retried, RequestRetry{
						Op: it.op, Index: i, ID: pr.id, Retries: pr.retries, ConnRetries: pr.conn,
					})
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(t0)

	sort.Slice(failures, func(i, j int) bool { return failures[i].Index < failures[j].Index })
	sort.Slice(retried, func(i, j int) bool { return retried[i].Index < retried[j].Index })
	res := &LoadResult{
		PerOp: map[string]OpStats{}, Requests: len(items),
		Retries: retries, ConnRetries: connRetries, Elapsed: elapsed,
		Failures: failures, Retried: retried, Traced: tracedN,
	}
	res.TraceOverhead = traceOverhead(latencies, tracedLats)
	// Fold traced latencies back into the per-op stats after the overhead
	// split: percentiles describe the whole run.
	for op, lats := range tracedLats {
		latencies[op] = append(latencies[op], lats...)
	}
	for op, lats := range latencies {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		res.PerOp[op] = OpStats{
			Count:  len(lats),
			Errors: errCounts[op],
			P50:    quantile(lats, 0.50),
			P99:    quantile(lats, 0.99),
			Mean:   sum / time.Duration(len(lats)),
		}
		res.Errors += errCounts[op]
	}
	if res.Requests > 0 {
		res.NsPerRequest = float64(elapsed.Nanoseconds()) / float64(res.Requests)
	}
	return res, nil
}

// postResult is the outcome of one scheduled request: whether it finally
// succeeded, how many shed and transport retries it absorbed, and the
// daemon-assigned request ID, status, and error code of the last response
// (ID empty when no response ever arrived).
type postResult struct {
	ok            bool
	retries, conn int
	id            string
	status        int
	code          string
}

// post sends one request, absorbing 429 "overloaded" responses with
// bounded backoff: load shedding is the admission gate's contract, and a
// replay client's job is to wait for a slot, not to count it as a failure.
// Transport-level errors (connection refused or reset — the daemon
// restarting) are likewise absorbed up to connRetries times with
// exponential backoff. Budget-exceeded 429s (and everything else non-200)
// are real errors.
func post(client *http.Client, url string, body []byte, connRetries, req int) (pr postResult) {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			if pr.conn >= connRetries {
				return pr
			}
			pr.conn++
			time.Sleep(connBackoff(req, pr.conn))
			continue
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pr.id = resp.Header.Get(RequestIDHeader)
		pr.status = resp.StatusCode
		if resp.StatusCode == http.StatusOK {
			pr.ok, pr.code = true, ""
			return pr
		}
		var env errorEnvelope
		if json.Unmarshal(data, &env) == nil {
			pr.code = env.Error.Code
			if env.Error.RequestID != "" {
				pr.id = env.Error.RequestID
			}
		}
		if resp.StatusCode == http.StatusTooManyRequests &&
			bytes.Contains(data, []byte(`"overloaded"`)) && attempt < 200 {
			pr.retries++
			time.Sleep(time.Duration(1+attempt%10) * time.Millisecond)
			continue
		}
		return pr
	}
}

// traceOverhead is the mean-latency ratio of traced to untraced requests,
// averaged over the ops that saw both kinds. Informational: with small
// samples under concurrency it carries queueing noise, like the per-op
// percentiles.
func traceOverhead(plain, traced map[string][]time.Duration) float64 {
	mean := func(lats []time.Duration) float64 {
		var sum time.Duration
		for _, l := range lats {
			sum += l
		}
		return float64(sum) / float64(len(lats))
	}
	var ratioSum float64
	var ops int
	for op, tl := range traced {
		pl := plain[op]
		if len(tl) == 0 || len(pl) == 0 {
			continue
		}
		if m := mean(pl); m > 0 {
			ratioSum += mean(tl) / m
			ops++
		}
	}
	if ops == 0 {
		return 0
	}
	return ratioSum / float64(ops)
}

// connBackoff is the sleep before transport-error retry attempt (1-based)
// of request req: exponential from 10ms, capped at 640ms, plus a
// deterministic sub-50% jitter keyed on (req, attempt). Deterministic
// jitter keeps replayed runs byte-comparable while still de-synchronizing
// the reconnect stampede of concurrent workers.
func connBackoff(req, attempt int) time.Duration {
	shift := attempt - 1
	if shift > 6 {
		shift = 6
	}
	base := 10 * time.Millisecond << uint(shift)
	h := uint64(req)*0x9e3779b97f4a7c15 + uint64(attempt)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 29
	return base + time.Duration(h%uint64(base/2))
}

// quantile returns the q-th latency of a sorted sample (nearest-rank).
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// NsMetrics flattens the result into a benchmark-name -> ns/op map: per-op
// p50 and p99 latencies plus the whole-run inverse throughput. Only the
// throughput entry is gated in BENCH_serve.json (per-op percentiles under
// concurrency are queueing-noise-dominated); the rest is for display and
// tests.
func (r *LoadResult) NsMetrics() map[string]float64 {
	out := map[string]float64{}
	for op, st := range r.PerOp {
		out["Serve/"+op+"@p50"] = float64(st.P50.Nanoseconds())
		out["Serve/"+op+"@p99"] = float64(st.P99.Nanoseconds())
	}
	out["Serve/throughput"] = r.NsPerRequest
	return out
}

// WaitReady polls baseURL/healthz until it answers 200 or the timeout
// elapses. cmd/loadgen uses it so `make serve-smoke` can start the daemon
// and the generator back to back.
func WaitReady(client *http.Client, baseURL string, timeout time.Duration) error {
	if client == nil {
		client = http.DefaultClient
	}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(baseURL + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready after %s", baseURL, timeout)
		}
		time.Sleep(50 * time.Millisecond)
	}
}
