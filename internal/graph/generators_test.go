package graph

import (
	"testing"
	"testing/quick"
)

func TestPathStructure(t *testing.T) {
	g := Path(5)
	if g.M() != 4 {
		t.Fatalf("path on 5 has %d edges, want 4", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("path should be connected")
	}
	if g.Degree(0) != 1 || g.Degree(4) != 1 || g.Degree(2) != 2 {
		t.Fatal("path degrees wrong")
	}
}

func TestCycleStructure(t *testing.T) {
	g, err := Cycle(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 6 {
		t.Fatalf("cycle on 6 has %d edges, want 6", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 2 {
			t.Fatalf("cycle degree(%d) = %d, want 2", v, g.Degree(v))
		}
	}
	if _, err := Cycle(2); err == nil {
		t.Fatal("Cycle(2) should error")
	}
}

func TestGridStructure(t *testing.T) {
	g := Grid(3, 4)
	if g.N() != 12 {
		t.Fatalf("grid n = %d, want 12", g.N())
	}
	// 3*3 horizontal per row? rows*(cols-1) + (rows-1)*cols = 3*3 + 2*4 = 17.
	if g.M() != 17 {
		t.Fatalf("grid m = %d, want 17", g.M())
	}
	if !g.IsConnected() {
		t.Fatal("grid should be connected")
	}
}

func TestCompleteStructure(t *testing.T) {
	g := Complete(6)
	if g.M() != 15 {
		t.Fatalf("K6 has %d edges, want 15", g.M())
	}
	for v := 0; v < 6; v++ {
		if g.Degree(v) != 5 {
			t.Fatalf("K6 degree(%d) = %d, want 5", v, g.Degree(v))
		}
	}
}

func TestCirculantIsRegularAndConnected(t *testing.T) {
	n := 32
	g, err := Circulant(n, GeometricJumps(n), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("circulant should be connected")
	}
	d0 := g.Degree(0)
	for v := 1; v < n; v++ {
		if g.Degree(v) != d0 {
			t.Fatalf("circulant not regular: deg(%d)=%d deg(0)=%d", v, g.Degree(v), d0)
		}
	}
}

func TestCirculantRejectsBadJump(t *testing.T) {
	if _, err := Circulant(8, []int{0}, 1); err == nil {
		t.Fatal("jump 0 should error")
	}
	if _, err := Circulant(8, []int{8}, 1); err == nil {
		t.Fatal("jump n should error")
	}
}

func TestRandomRegular(t *testing.T) {
	g, err := RandomRegular(50, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 50; v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d, want 4", v, g.Degree(v))
		}
	}
	if _, err := RandomRegular(5, 3, 1); err == nil {
		t.Fatal("odd n*d should error")
	}
	if _, err := RandomRegular(4, 4, 1); err == nil {
		t.Fatal("d >= n should error")
	}
}

func TestRandomRegularDeterministicForSeed(t *testing.T) {
	a, err := RandomRegular(30, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomRegular(30, 4, 42)
	if err != nil {
		t.Fatal(err)
	}
	if a.M() != b.M() {
		t.Fatal("same seed should give same graph")
	}
	for i := 0; i < a.M(); i++ {
		if a.Edge(i) != b.Edge(i) {
			t.Fatalf("edge %d differs between identical seeds", i)
		}
	}
}

func TestGNM(t *testing.T) {
	g, err := GNM(20, 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	if g.M() != 30 {
		t.Fatalf("GNM m = %d, want 30", g.M())
	}
	if _, err := GNM(4, 100, 3); err == nil {
		t.Fatal("impossible m should error")
	}
}

func TestConnectedGNM(t *testing.T) {
	g, err := ConnectedGNM(40, 60, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !g.IsConnected() {
		t.Fatal("ConnectedGNM should be connected")
	}
	if g.M() != 60 {
		t.Fatalf("m = %d, want 60", g.M())
	}
	if _, err := ConnectedGNM(10, 5, 1); err == nil {
		t.Fatal("m < n-1 should error")
	}
}

func TestWithRandomWeights(t *testing.T) {
	g := Path(10)
	w := WithRandomWeights(g, 100, 5)
	if w.M() != g.M() {
		t.Fatal("weight randomization changed edge count")
	}
	for _, e := range w.Edges() {
		if e.W < 1 || e.W > 100 {
			t.Fatalf("weight %v out of [1,100]", e.W)
		}
		if e.W != float64(int64(e.W)) {
			t.Fatalf("weight %v not integral", e.W)
		}
	}
}

func TestTwoClusters(t *testing.T) {
	g, err := TwoClusters(20, 4, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 40 {
		t.Fatalf("n = %d, want 40", g.N())
	}
	// Bridge count: total edges = 2 * (20*4/2) + 3.
	if g.M() != 83 {
		t.Fatalf("m = %d, want 83", g.M())
	}
}

func TestRandomEulerianAllDegreesEven(t *testing.T) {
	f := func(seed int64) bool {
		g, err := RandomEulerian(20, 5, 3, seed)
		if err != nil {
			return false
		}
		return g.IsEulerian()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayeredDAG(t *testing.T) {
	g := LayeredDAG(3, 4, 2, 10, 17)
	if g.N() != 2+3*4 {
		t.Fatalf("n = %d", g.N())
	}
	if g.OutDegree(0) != 4 {
		t.Fatalf("source out-degree = %d, want 4", g.OutDegree(0))
	}
	if g.InDegree(g.N()-1) != 4 {
		t.Fatalf("sink in-degree = %d, want 4", g.InDegree(g.N()-1))
	}
	for _, a := range g.Arcs() {
		if a.Cap < 1 || a.Cap > 10 {
			t.Fatalf("capacity %d out of range", a.Cap)
		}
	}
}

func TestRandomDiGraph(t *testing.T) {
	g := RandomDiGraph(10, 30, 5, 7, 13)
	if g.M() != 30 {
		t.Fatalf("m = %d, want 30", g.M())
	}
	if g.MaxCapacity() > 5 {
		t.Fatalf("max capacity %d > 5", g.MaxCapacity())
	}
	if g.MaxCost() > 7 {
		t.Fatalf("max cost %d > 7", g.MaxCost())
	}
}

func TestRandomUnitBipartite(t *testing.T) {
	g := RandomUnitBipartite(5, 6, 3, 9, 21)
	if g.N() != 11 {
		t.Fatalf("n = %d, want 11", g.N())
	}
	for _, a := range g.Arcs() {
		if a.Cap != 1 {
			t.Fatalf("capacity %d, want 1", a.Cap)
		}
		if a.From >= 5 || a.To < 5 {
			t.Fatalf("arc (%d,%d) not left->right", a.From, a.To)
		}
	}
}

func TestHypercube(t *testing.T) {
	g, err := Hypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 || g.M() != 32 { // n*d/2 = 16*4/2
		t.Fatalf("n=%d m=%d", g.N(), g.M())
	}
	if !g.IsConnected() {
		t.Fatal("hypercube disconnected")
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 4 {
			t.Fatalf("degree(%d) = %d", v, g.Degree(v))
		}
	}
	if _, err := Hypercube(0); err == nil {
		t.Fatal("dimension 0 accepted")
	}
}

func TestBipartiteRegular(t *testing.T) {
	g, err := BipartiteRegular(12, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 3 {
			t.Fatalf("degree(%d) = %d, want 3", v, g.Degree(v))
		}
	}
	for _, e := range g.Edges() {
		if (e.U < 12) == (e.V < 12) {
			t.Fatalf("edge {%d,%d} not crossing the bipartition", e.U, e.V)
		}
	}
	if _, err := BipartiteRegular(4, 5, 1); err == nil {
		t.Fatal("d > k accepted")
	}
}

func TestGridFlowNetwork(t *testing.T) {
	dg := GridFlowNetwork(3, 4, 9, 7)
	if dg.N() != 14 {
		t.Fatalf("n = %d", dg.N())
	}
	if dg.OutDegree(0) != 3 {
		t.Fatalf("source out-degree %d, want rows=3", dg.OutDegree(0))
	}
	if dg.InDegree(13) != 3 {
		t.Fatalf("sink in-degree %d, want rows=3", dg.InDegree(13))
	}
	for _, a := range dg.Arcs() {
		if a.Cap < 1 || a.Cap > 9 {
			t.Fatalf("capacity %d out of range", a.Cap)
		}
	}
}
