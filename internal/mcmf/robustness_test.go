package mcmf

import (
	"errors"
	"strings"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/rounds"
)

func budgetTestInstance() (*graph.DiGraph, []int64) {
	dg := graph.NewDi(4)
	dg.MustAddArc(0, 1, 1, 5)
	dg.MustAddArc(1, 2, 1, 5)
	dg.MustAddArc(0, 3, 1, 1)
	dg.MustAddArc(3, 2, 1, 1)
	return dg, []int64{1, 0, -1, 0}
}

// TestMinCostFlowBudgetExhaustion: a one-round budget must abort the CMSV
// IPM at an iteration boundary with the typed error.
func TestMinCostFlowBudgetExhaustion(t *testing.T) {
	dg, sigma := budgetTestInstance()
	led := rounds.New()
	_, err := MinCostFlow(dg, sigma, Options{
		Ledger: led,
		Budget: rounds.NewBudget(1, 0),
	})
	if !errors.Is(err, rounds.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
	var be *rounds.BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want *BudgetError, got %T", err)
	}
	// Rounds are first charged inside iteration 0, so exhaustion surfaces
	// either at the session's solve boundary (same iteration) or at the
	// next IPM iteration boundary — both are metered checkpoints.
	if !strings.HasPrefix(be.Phase, "mcmf-iter-") && be.Phase != "potentials" {
		t.Fatalf("exhausted at %q, want an IPM or solve boundary", be.Phase)
	}
}

// TestMinCostFlowBudgetAllowsCompletion: a generous budget must not perturb
// the routing at all.
func TestMinCostFlowBudgetAllowsCompletion(t *testing.T) {
	dg, sigma := budgetTestInstance()
	want, err := MinCostFlow(dg, sigma, Options{})
	if err != nil {
		t.Fatal(err)
	}
	led := rounds.New()
	got, err := MinCostFlow(dg, sigma, Options{
		Ledger: led,
		Budget: rounds.NewBudget(100_000_000, 0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Cost != want.Cost {
		t.Fatalf("budgeted cost %d != unbudgeted %d", got.Cost, want.Cost)
	}
	for i := range want.Flow {
		if got.Flow[i] != want.Flow[i] {
			t.Fatalf("budgeted flow diverged at arc %d", i)
		}
	}
}
