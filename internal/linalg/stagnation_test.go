package linalg

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"lapcc/internal/graph"
)

func stagnationTestLaplacian(t *testing.T, n int, seed int64) *Laplacian {
	t.Helper()
	g, err := graph.ConnectedGNM(n, 3*n, seed)
	if err != nil {
		t.Fatal(err)
	}
	return NewLaplacian(graph.WithRandomWeights(g, 10, seed+1))
}

// quantizedOp wraps an operator with a fixed-point Apply: results are
// rounded to a grid of the given step. The rounding noise caps the residual
// any Krylov method can reach, giving a deterministic plateau for the
// stagnation detector to find.
type quantizedOp struct {
	op   Operator
	step float64
}

func (q quantizedOp) Dim() int { return q.op.Dim() }

func (q quantizedOp) Apply(dst, src Vec) {
	q.op.Apply(dst, src)
	for i := range dst {
		dst[i] = math.Round(dst[i]/q.step) * q.step
	}
}

// TestSolveCGStagnationDetected: a noise floor in the operator makes the
// residual plateau far above the requested tolerance; with a window set, CG
// must return ErrStagnated promptly instead of spinning to MaxIter.
func TestSolveCGStagnationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 40
	l := stagnationTestLaplacian(t, n, 7)
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	const maxIter = 100000
	x, res, err := SolveCG(quantizedOp{op: l, step: 1e-7}, b, CGOptions{
		Tol:              1e-12, // below the quantization floor
		MaxIter:          maxIter,
		ProjectMean:      true,
		StagnationWindow: 25,
	})
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("want ErrStagnated, got %v (res %+v)", err, res)
	}
	if res.Iterations >= maxIter {
		t.Fatal("stagnation detection did not cut the iteration count")
	}
	// The iterate handed back is still the converged-to-floor solution.
	if x == nil || res.Residual > 1e-4 {
		t.Fatalf("plateau iterate unusable: residual %v", res.Residual)
	}
}

// TestSolveCGStagnationDisabledByDefault: without a window the historical
// contract holds — the cap is exhausted and ErrNoConvergence is returned.
func TestSolveCGStagnationDisabledByDefault(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	n := 24
	l := stagnationTestLaplacian(t, n, 7)
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	_, res, err := SolveCG(quantizedOp{op: l, step: 1e-7}, b, CGOptions{
		Tol: 1e-12, MaxIter: 300, ProjectMean: true,
	})
	if errors.Is(err, ErrStagnated) {
		t.Fatal("stagnation tripped with a zero window")
	}
	if !errors.Is(err, ErrNoConvergence) {
		t.Fatalf("want ErrNoConvergence at the cap, got %v", err)
	}
	if res.Iterations != 300 {
		t.Fatalf("iterations %d, want the full cap 300", res.Iterations)
	}
}

// TestPreconChebyStagnationDetected: the preconditioner solve's own
// tolerance floors the achievable residual, so a generously padded MaxIter
// plateaus; the window must stop the burn with the floored iterate intact.
func TestPreconChebyStagnationDetected(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 30
	l := stagnationTestLaplacian(t, n, 7)
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	exact := LaplacianCGSolver(l, 1e-13)
	iters := 0
	const maxIter = 5000
	x, res, err := PreconCheby(l, exact, b, ChebyOptions{
		Kappa:            4,
		Eps:              1e-6,
		MaxIter:          maxIter, // far past convergence to the floor
		OnIteration:      func() { iters++ },
		StagnationWindow: 15,
	})
	if !errors.Is(err, ErrStagnated) {
		t.Fatalf("want ErrStagnated, got %v after %d iterations", err, iters)
	}
	if res.Iterations >= maxIter {
		t.Fatalf("ran all %d padded iterations — detection is useless", res.Iterations)
	}
	// The returned iterate is already an excellent solution.
	av := NewVec(n)
	l.Apply(av, x)
	av.AXPY(-1, b)
	if rel := av.Norm2() / b.Norm2(); rel > 1e-6 {
		t.Fatalf("stagnated iterate residual %v, want converged", rel)
	}
}

// TestPreconChebyStagnationWindowScalesWithKappa: a window sized to the
// method's natural sqrt(kappa) timescale must NOT fire on a legitimately
// (slowly) converging run.
func TestPreconChebyStagnationWindowScalesWithKappa(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	n := 30
	l := stagnationTestLaplacian(t, n, 9)
	b := NewVec(n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	b.RemoveMean()
	exact := LaplacianCGSolver(l, 1e-13)
	kappa := 100.0
	window := StagnationWindowFor(kappa)
	x, _, err := PreconCheby(l, exact, b, ChebyOptions{
		Kappa:            kappa,
		Eps:              1e-8,
		StagnationWindow: window,
	})
	if err != nil {
		t.Fatalf("kappa-scaled window %d fired on a converging run: %v", window, err)
	}
	av := NewVec(n)
	l.Apply(av, x)
	av.AXPY(-1, b)
	if rel := av.Norm2() / b.Norm2(); rel > 1e-6 {
		t.Fatalf("residual %v after full run", rel)
	}
}
