package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"
)

// Flight is the crash flight recorder: a fixed-size in-memory ring of
// recent transport events (barrier commits, chaos fates, supervision
// transitions, heartbeat failures) kept cheap enough to leave on in
// production and dumped to JSONL only when something dies. It is the
// deliberate complement of the trace plane's determinism contract: the
// trace timeline carries only seed-reproducible content, so everything
// wall-clock-shaped or failure-specific — timestamps, retransmit waves,
// error strings — lands here instead, where nobody diffs the bytes.
//
// All methods are safe on a nil *Flight (recording disabled, zero cost)
// and safe for concurrent use. Record does not allocate: the ring is
// pre-sized and event fields are plain values, so a disabled-or-enabled
// ring adds 0 allocs/op to the TCP barrier path (pinned by test).
type Flight struct {
	mu   sync.Mutex
	ring []FlightEvent
	seq  uint64 // total events ever recorded; ring holds the last len(ring)
}

// FlightEvent is one recorded transport event. Kind is a short static
// string ("barrier-commit", "kill", "mesh-restart", "replay", ...); Detail
// carries free-form nondeterministic context such as error text.
type FlightEvent struct {
	Seq     uint64
	At      time.Time
	Kind    string
	Barrier uint64
	Epoch   uint64
	Node    int // -1 when not node-scoped
	Detail  string

	// Cumulative or per-barrier counters, meaningful per kind; zero
	// otherwise.
	Messages    int64
	Frames      int64
	Retransmits int64
	Acks        int64
}

// DefaultFlightSize is the ring capacity CLIs use for -flight: at a few
// events per barrier it covers thousands of recent barriers, and at ~150
// bytes per slot it costs well under a megabyte.
const DefaultFlightSize = 4096

// NewFlight returns a recorder holding the last size events (size <= 0
// selects DefaultFlightSize). The ring is allocated up front so Record
// never does.
func NewFlight(size int) *Flight {
	if size <= 0 {
		size = DefaultFlightSize
	}
	return &Flight{ring: make([]FlightEvent, size)}
}

// Enabled reports whether the recorder stores anything.
func (f *Flight) Enabled() bool { return f != nil }

// Record appends ev to the ring, stamping its sequence number and, if
// ev.At is zero, the current time. Safe on nil; does not allocate.
func (f *Flight) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.At.IsZero() {
		ev.At = time.Now()
	}
	f.mu.Lock()
	ev.Seq = f.seq
	f.ring[f.seq%uint64(len(f.ring))] = ev
	f.seq++
	f.mu.Unlock()
}

// Len returns the number of events currently held (0 on nil).
func (f *Flight) Len() int {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.seq < uint64(len(f.ring)) {
		return int(f.seq)
	}
	return len(f.ring)
}

// Events returns the held events oldest-first (nil on a nil or empty
// recorder). The slice is a copy; the ring keeps recording.
func (f *Flight) Events() []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	n := uint64(len(f.ring))
	count := f.seq
	if count > n {
		count = n
	}
	if count == 0 {
		return nil
	}
	out := make([]FlightEvent, 0, count)
	for i := f.seq - count; i < f.seq; i++ {
		out = append(out, f.ring[i%n])
	}
	return out
}

// jsonlFlight fixes the JSONL field order for one flight event. Unlike the
// trace stream this one is openly nondeterministic (wall-clock timestamps,
// error text); ValidateFlightJSONL checks structure, not bytes.
type jsonlFlight struct {
	Seq         uint64 `json:"seq"`
	T           string `json:"t"`
	Kind        string `json:"kind"`
	Barrier     uint64 `json:"barrier"`
	Epoch       uint64 `json:"epoch"`
	Node        int    `json:"node"`
	Detail      string `json:"detail,omitempty"`
	Messages    int64  `json:"messages,omitempty"`
	Frames      int64  `json:"frames,omitempty"`
	Retransmits int64  `json:"retransmits,omitempty"`
	Acks        int64  `json:"acks,omitempty"`
}

// WriteJSONL writes the held events oldest-first, one JSON object per
// line. A nil or empty recorder writes nothing.
func (f *Flight) WriteJSONL(w io.Writer) error {
	evs := f.Events()
	if len(evs) == 0 {
		return nil
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range evs {
		rec := jsonlFlight{
			Seq: ev.Seq, T: ev.At.UTC().Format(time.RFC3339Nano), Kind: ev.Kind,
			Barrier: ev.Barrier, Epoch: ev.Epoch, Node: ev.Node, Detail: ev.Detail,
			Messages: ev.Messages, Frames: ev.Frames, Retransmits: ev.Retransmits, Acks: ev.Acks,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// DumpFile writes the ring to path (truncating), the coordinator's
// unrecoverable-failure path. A nil recorder or empty path is a no-op.
func (f *Flight) DumpFile(path string) error {
	if f == nil || path == "" {
		return nil
	}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := f.WriteJSONL(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}

// Handler serves the ring as application/x-ndjson — mounted at
// /debug/flight by the CLIs. A nil recorder serves 404 so the route can be
// registered unconditionally.
func (f *Flight) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if f == nil {
			http.Error(w, "flight recorder disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = f.WriteJSONL(w)
	})
}

// ValidateFlightJSONL checks a flight dump's structure: every line a JSON
// object with exactly the known fields, sequence numbers strictly
// increasing (NOT necessarily from 0 — a wrapped ring starts mid-stream),
// a parseable RFC 3339 timestamp, and a non-empty kind. Counter fields are
// omitempty, so they are optional but must be non-negative when present.
func ValidateFlightJSONL(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	var lastSeq int64 = -1
	for sc.Scan() {
		line++
		var raw map[string]json.RawMessage
		if err := json.Unmarshal(sc.Bytes(), &raw); err != nil {
			return fmt.Errorf("trace: flight line %d: not a JSON object: %w", line, err)
		}
		for key := range raw {
			if !flightFields[key] {
				return fmt.Errorf("trace: flight line %d: unknown field %q", line, key)
			}
		}
		seq, err := intField(raw, "seq", line)
		if err != nil {
			return err
		}
		if seq <= lastSeq {
			return fmt.Errorf("trace: flight line %d: seq %d not increasing (previous %d)", line, seq, lastSeq)
		}
		lastSeq = seq
		ts, err := strField(raw, "t", line)
		if err != nil {
			return err
		}
		if _, err := time.Parse(time.RFC3339Nano, ts); err != nil {
			return fmt.Errorf("trace: flight line %d: bad timestamp: %w", line, err)
		}
		kind, err := strField(raw, "kind", line)
		if err != nil {
			return err
		}
		if kind == "" {
			return fmt.Errorf("trace: flight line %d: empty kind", line)
		}
		for _, f := range []string{"barrier", "epoch"} {
			if v, err := intField(raw, f, line); err != nil {
				return err
			} else if v < 0 {
				return fmt.Errorf("trace: flight line %d: negative %s %d", line, f, v)
			}
		}
		if node, err := intField(raw, "node", line); err != nil {
			return err
		} else if node < -1 {
			return fmt.Errorf("trace: flight line %d: bad node %d", line, node)
		}
		for _, f := range []string{"messages", "frames", "retransmits", "acks"} {
			if _, ok := raw[f]; !ok {
				continue
			}
			if v, err := intField(raw, f, line); err != nil {
				return err
			} else if v < 0 {
				return fmt.Errorf("trace: flight line %d: negative %s %d", line, f, v)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("trace: reading flight stream: %w", err)
	}
	return nil
}

// flightFields is the exact field set of a flight JSONL record, mirroring
// jsonlFlight.
var flightFields = set("seq", "t", "kind", "barrier", "epoch", "node",
	"detail", "messages", "frames", "retransmits", "acks")
