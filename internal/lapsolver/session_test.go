package lapsolver

import (
	"math/rand"
	"testing"

	"lapcc/internal/graph"
	"lapcc/internal/linalg"
	"lapcc/internal/rounds"
)

// residualCheck verifies x solves L_g x = b to the given relative 2-norm
// residual — the solver's own certificate is in the preconditioner norm, so
// a loose 2-norm check is the right external validation.
func residualCheck(t *testing.T, g *graph.Graph, x, b linalg.Vec, bound float64) {
	t.Helper()
	l := linalg.NewLaplacian(g)
	r := b.Clone()
	av := linalg.NewVec(g.N())
	l.Apply(av, x)
	r.AXPY(-1, av)
	r.RemoveMean()
	if res := r.Norm2() / b.Norm2(); res > bound {
		t.Fatalf("relative residual %g > %g", res, bound)
	}
}

// Reweight must make the solver answer for the *new* weights: the solution
// after a reweight solves the reweighted system, and matches a from-scratch
// solver on the same weights to solver precision.
func TestSolverReweightSolvesNewSystem(t *testing.T) {
	g, err := graph.RandomRegular(64, 8, 21)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[0] = 1
	b[63] = -1
	const eps = 1e-8

	rng := rand.New(rand.NewSource(22))
	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1 + rng.Float64() // stays within class 0: chain reuses exactly
	}
	if err := s.Reweight(w); err != nil {
		t.Fatal(err)
	}
	x, _, err := s.Solve(b, eps)
	if err != nil {
		t.Fatal(err)
	}

	fresh := g.Clone()
	for i := range w {
		if err := fresh.SetWeight(i, w[i]); err != nil {
			t.Fatal(err)
		}
	}
	residualCheck(t, fresh, x, b, 1e-4)

	st := s.ChainStats()
	if st.Reweights != 1 || st.ExactReuses != 1 {
		t.Fatalf("chain stats = %+v, want one exact reuse", st)
	}
}

// A reweighted solve must charge exactly the rounds a fresh build-and-solve
// charges: reuse buys wall clock, not charged rounds.
func TestSolverReweightChargedParity(t *testing.T) {
	g, err := graph.RandomRegular(64, 8, 23)
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[1] = 1
	b[40] = -1
	const eps = 1e-6

	w := make([]float64, g.M())
	for i := range w {
		w[i] = 1.75
	}

	sessLed := rounds.New()
	s, err := NewSolver(g, Options{Ledger: sessLed})
	if err != nil {
		t.Fatal(err)
	}
	preCharged := sessLed.TotalOf(rounds.Charged)
	if err := s.Reweight(w); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Solve(b, eps); err != nil {
		t.Fatal(err)
	}
	sessCharged := sessLed.TotalOf(rounds.Charged) - preCharged

	freshLed := rounds.New()
	fresh := g.Clone()
	for i := range w {
		if err := fresh.SetWeight(i, w[i]); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := NewSolver(fresh, Options{Ledger: freshLed})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := fs.Solve(b, eps); err != nil {
		t.Fatal(err)
	}
	if freshCharged := freshLed.TotalOf(rounds.Charged); sessCharged != freshCharged {
		t.Fatalf("reweighted path charged %d rounds, fresh build-and-solve charges %d", sessCharged, freshCharged)
	}
}

// Warm-started repeat solves stay correct and do not take more Chebyshev
// iterations than the first (cold) solve of the same right-hand side.
func TestSolverWarmStartRepeatSolves(t *testing.T) {
	g, err := graph.RandomRegular(64, 8, 24)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{WarmStart: true})
	if err != nil {
		t.Fatal(err)
	}
	b := linalg.NewVec(g.N())
	b[2] = 1
	b[50] = -1
	const eps = 1e-8

	_, first, err := s.Solve(b, eps)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		x, st, err := s.Solve(b, eps)
		if err != nil {
			t.Fatal(err)
		}
		residualCheck(t, s.Graph(), x, b, 1e-4)
		if st.Iterations > first.Iterations {
			t.Fatalf("repeat solve %d took %d iterations, first took %d", i, st.Iterations, first.Iterations)
		}
		if st.Attempts > first.Attempts {
			t.Fatalf("repeat solve %d escalated kappa %d times, first %d", i, st.Attempts, first.Attempts)
		}
	}
}

func TestSolverReweightLengthMismatch(t *testing.T) {
	g, err := graph.RandomRegular(32, 4, 25)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolver(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Reweight(make([]float64, 5)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
