package trace

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestFlightNilSafety(t *testing.T) {
	var f *Flight
	if f.Enabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	f.Record(FlightEvent{Kind: "kill"})
	if f.Len() != 0 || f.Events() != nil {
		t.Fatal("nil recorder holds events")
	}
	if err := f.WriteJSONL(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if err := f.DumpFile(filepath.Join(t.TempDir(), "never.jsonl")); err != nil {
		t.Fatal(err)
	}

	// The nil handler serves 404 so CLIs can mount /debug/flight
	// unconditionally.
	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 404 {
		t.Fatalf("nil handler served %d, want 404", rr.Code)
	}
}

func TestFlightRingWrap(t *testing.T) {
	f := NewFlight(4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Kind: "barrier-commit", Barrier: uint64(i), Node: -1})
	}
	if f.Len() != 4 {
		t.Fatalf("ring of 4 holds %d", f.Len())
	}
	evs := f.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Seq != want || ev.Barrier != want {
			t.Fatalf("event %d: seq=%d barrier=%d, want %d (oldest-first after wrap)", i, ev.Seq, ev.Barrier, want)
		}
	}

	// A wrapped ring's dump starts mid-stream; the validator accepts any
	// strictly increasing seq origin.
	var buf bytes.Buffer
	if err := f.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightJSONL(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("wrapped dump invalid: %v\n%s", err, buf.String())
	}
}

func TestFlightDumpFileAndHandler(t *testing.T) {
	f := NewFlight(8)
	f.Record(FlightEvent{Kind: "kill", Barrier: 1, Epoch: 0, Node: 2})
	f.Record(FlightEvent{Kind: "unrecoverable", Barrier: 1, Epoch: 3, Node: -1,
		Detail: "connection reset by peer", Messages: 12, Frames: 4})

	path := filepath.Join(t.TempDir(), "flight.jsonl")
	if err := f.DumpFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateFlightJSONL(bytes.NewReader(data)); err != nil {
		t.Fatalf("dump invalid: %v\n%s", err, data)
	}
	for _, want := range []string{`"kind":"kill"`, `"detail":"connection reset by peer"`, `"messages":12`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("dump missing %s:\n%s", want, data)
		}
	}
	// An empty dump path is the disabled configuration, not an error.
	if err := f.DumpFile(""); err != nil {
		t.Fatal(err)
	}

	rr := httptest.NewRecorder()
	f.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/debug/flight", nil))
	if rr.Code != 200 {
		t.Fatalf("handler served %d", rr.Code)
	}
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("handler Content-Type %q", ct)
	}
	if rr.Body.String() != string(data) {
		t.Fatal("handler body differs from the file dump")
	}
}

func TestValidateFlightJSONLRejects(t *testing.T) {
	now := time.Now().UTC().Format(time.RFC3339Nano)
	cases := map[string]string{
		"not json":        "nope\n",
		"unknown field":   `{"seq":0,"t":"` + now + `","kind":"kill","barrier":0,"epoch":0,"node":-1,"extra":1}` + "\n",
		"missing kind":    `{"seq":0,"t":"` + now + `","barrier":0,"epoch":0,"node":-1}` + "\n",
		"empty kind":      `{"seq":0,"t":"` + now + `","kind":"","barrier":0,"epoch":0,"node":-1}` + "\n",
		"bad timestamp":   `{"seq":0,"t":"yesterday","kind":"kill","barrier":0,"epoch":0,"node":-1}` + "\n",
		"bad node":        `{"seq":0,"t":"` + now + `","kind":"kill","barrier":0,"epoch":0,"node":-2}` + "\n",
		"negative frames": `{"seq":0,"t":"` + now + `","kind":"kill","barrier":0,"epoch":0,"node":-1,"frames":-1}` + "\n",
		"seq not increasing": `{"seq":5,"t":"` + now + `","kind":"a","barrier":0,"epoch":0,"node":-1}` + "\n" +
			`{"seq":5,"t":"` + now + `","kind":"b","barrier":0,"epoch":0,"node":-1}` + "\n",
	}
	for name, in := range cases {
		if err := ValidateFlightJSONL(strings.NewReader(in)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	ok := `{"seq":3,"t":"` + now + `","kind":"kill","barrier":0,"epoch":0,"node":-1}` + "\n" +
		`{"seq":9,"t":"` + now + `","kind":"replay","barrier":0,"epoch":1,"node":-1,"acks":4}` + "\n"
	if err := ValidateFlightJSONL(strings.NewReader(ok)); err != nil {
		t.Errorf("valid stream rejected: %v", err)
	}
}
